// The first monitoring architecture: LSL-scripted virtual sensors.
//
// Writes a custom LSL sensor script (a proximity counter that also reports
// positions), deploys a self-healing grid on Apfel Land, and shows both the
// collected data and the platform limits in action. Compare with
// bench/arch_sensor_vs_crawler for the full fidelity comparison.
#include <cstdio>

#include "sensors/collector.hpp"
#include "sensors/deployment.hpp"
#include "sensors/object_runtime.hpp"
#include "world/archetypes.hpp"
#include "world/engine.hpp"

int main() {
  using namespace slmob;

  auto world = make_world(LandArchetype::kApfelLand, 21);
  SimNetwork network;
  HttpCollector collector(network, world->land().name());
  ObjectRuntime runtime(*world, network);

  // A custom script: counts everything it ever saw and reports batches of
  // position fixes. Written in the same LSL subset the paper's sensors used.
  const std::string script = R"LSL(
string gBatch = "";
integer gTotalSeen = 0;

default {
    state_entry() {
        llSensorRepeat("", "", AGENT, 96.0, PI, 10.0);
        llSetTimerEvent(60.0);
    }
    sensor(integer n) {
        gTotalSeen = gTotalSeen + n;
        integer i;
        string t = (string)llGetUnixTime();
        for (i = 0; i < n; i = i + 1) {
            vector p = llDetectedPos(i);
            string rec = t + "," + llDetectedKey(i) + "," + (string)p.x + "," +
                (string)p.y + "," + (string)p.z + "\n";
            if (llGetFreeMemory() > llStringLength(rec) + 2048) {
                gBatch += rec;
            }
        }
    }
    timer() {
        if (llStringLength(gBatch) > 0) {
            llHTTPRequest("http://collector.example/report", [], gBatch);
            gBatch = "";
        }
    }
    http_response(key k, integer status, list meta, string body) {
        if (status != 200) {
            llOwnerSay("flush failed: " + (string)status);
        }
    }
}
)LSL";

  SensorGridConfig grid_cfg;
  grid_cfg.grid_side = 2;
  SensorGridDeployment grid(runtime, world->land(), collector.address(), grid_cfg);

  // Deploy the custom script manually at the grid positions.
  std::size_t deployed = 0;
  for (const Vec3& pos : grid.positions()) {
    if (runtime.deploy(pos, script, collector.address(), 0.0, {}, false) ==
        DeployResult::kOk) {
      ++deployed;
    }
  }
  std::printf("deployed %zu custom LSL sensors on %s (object lifetime %.0f s)\n",
              deployed, world->land().name().c_str(), world->land().object_lifetime());

  SimEngine engine(1.0);
  engine.add(kPriorityWorld, [&](Seconds now, Seconds dt) { world->tick(now, dt); });
  engine.add(kPriorityServer, [&](Seconds now, Seconds dt) { runtime.tick(now, dt); });
  engine.add(kPriorityNetwork, [&](Seconds now, Seconds dt) { network.tick(now, dt); });

  std::printf("running 2 virtual hours...\n");
  engine.run_until(2.0 * kSecondsPerHour);

  std::printf("\ncollector received %llu HTTP requests, %llu position records\n",
              static_cast<unsigned long long>(collector.stats().requests),
              static_cast<unsigned long long>(collector.stats().records));
  const Trace trace = collector.build_trace(10.0);
  const TraceSummary summary = trace.summary();
  std::printf("sensed trace: %zu unique users, avg %.1f concurrent\n",
              summary.unique_users, summary.avg_concurrent);

  for (const auto& object : runtime.objects()) {
    const auto& s = object->stats();
    std::printf("sensor %u at (%.0f,%.0f): %llu sweeps, %llu detections "
                "(%llu lost to 16-cap), %llu HTTP (%llu throttled), mem %zu B\n",
                object->id().value, object->position().x, object->position().y,
                static_cast<unsigned long long>(s.sweeps),
                static_cast<unsigned long long>(s.detections),
                static_cast<unsigned long long>(s.detections_truncated),
                static_cast<unsigned long long>(s.http_requests),
                static_cast<unsigned long long>(s.http_throttled),
                object->memory_usage());
  }
  std::printf("\nNote: these objects will expire after %.0f s on this public land —\n"
              "SensorGridDeployment::tick() re-deploys them (the paper's replication\n"
              "strategy). Try the same deploy on Dance Island: it is refused.\n",
              world->land().object_lifetime());
  return 0;
}
