// Quickstart: run the paper's measurement end-to-end on one land.
//
// Simulates Dance Island for two virtual hours, crawls it exactly as the
// paper's instrument did (tau = 10 s minimap sampling over the wire
// protocol), computes every §3 metric, and saves the trace for later
// trace-driven experiments.
//
//   ./examples/quickstart [hours]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "trace/serialize.hpp"

int main(int argc, char** argv) {
  using namespace slmob;

  const double hours = argc > 1 ? std::atof(argv[1]) : 2.0;

  ExperimentConfig cfg;
  cfg.archetype = LandArchetype::kDanceIsland;
  cfg.duration = hours * kSecondsPerHour;
  cfg.seed = 2008;

  std::printf("Crawling %s for %.1f virtual hours...\n",
              archetype_name(cfg.archetype).c_str(), hours);
  const ExperimentResults res = run_experiment(cfg);

  std::printf("\n--- trace summary ---\n");
  std::printf("unique visitors: %zu\n", res.summary.unique_users);
  std::printf("avg concurrent:  %.1f (max %zu)\n", res.summary.avg_concurrent,
              res.summary.max_concurrent);
  std::printf("snapshots:       %zu (every %.0f s)\n", res.summary.snapshot_count,
              res.trace.sampling_interval());

  std::printf("\n--- contact opportunities ---\n");
  for (const auto& [range, contacts] : res.contacts) {
    const auto median = [](const Ecdf& e) { return e.empty() ? 0.0 : e.median(); };
    std::printf("r=%2.0fm: %6zu contacts | median CT %5.0fs | median ICT %5.0fs | "
                "median FT %5.0fs\n",
                range, contacts.intervals.size(), median(contacts.contact_times),
                median(contacts.inter_contact_times),
                median(contacts.first_contact_times));
  }

  std::printf("\n--- line-of-sight networks ---\n");
  for (const auto& [range, graphs] : res.graphs) {
    std::printf("r=%2.0fm: median degree %.0f | %4.1f%% isolated | median diameter %.0f "
                "| median clustering %.2f\n",
                range, graphs.degrees.empty() ? 0.0 : graphs.degrees.median(),
                graphs.isolated_fraction * 100.0,
                graphs.diameters.empty() ? 0.0 : graphs.diameters.median(),
                graphs.clustering.empty() ? 0.0 : graphs.clustering.median());
  }

  std::printf("\n--- space & trips ---\n");
  std::printf("empty 20m cells: %.1f%% | busiest cell: %zu users\n",
              res.zones.empty_fraction * 100.0, res.zones.max_occupancy);
  if (!res.trips.travel_lengths.empty()) {
    std::printf("travel length: median %.0fm, p90 %.0fm | session: median %.0fs, max %.0fs\n",
                res.trips.travel_lengths.median(), res.trips.travel_lengths.quantile(0.9),
                res.trips.travel_times.median(), res.trips.travel_times.max());
  }

  const std::string path = "dance_island.slt";
  save_trace(res.trace, path);
  std::printf("\ntrace saved to %s (binary; trace_to_csv() exports CSV)\n", path.c_str());
  return 0;
}
