// Building your own target land.
//
// The library is not limited to the three lands of the paper: define any
// land geometry (POIs, spawn points, policies), a population and mobility
// parameters, wire a world manually, and run the same measurement pipeline.
// Here: a virtual university campus with two lecture halls, a cafeteria and
// a quad, with lecture-length dwell times.
#include <cstdio>
#include <memory>

#include "analysis/contacts.hpp"
#include "analysis/zones.hpp"
#include "core/testbed.hpp"
#include "trace/sessions.hpp"

int main() {
  using namespace slmob;

  // 1. Land geometry.
  Land campus("Virtual Campus");
  campus.set_access(LandAccess::kPublic);
  campus.add_poi({"lecture hall A", {70.0, 180.0, 22.0}, 12.0, 1.0});
  campus.add_poi({"lecture hall B", {180.0, 180.0, 22.0}, 12.0, 0.8});
  campus.add_poi({"cafeteria", {128.0, 80.0, 22.0}, 14.0, 0.9});
  campus.add_poi({"quad", {128.0, 140.0, 22.0}, 20.0, 0.4});
  campus.add_spawn_point({128.0, 16.0, 22.0});

  // 2. Mobility: students sit through lectures (long pauses), hop between
  // halls and the cafeteria, and return to "their" hall.
  PoiGravityParams mobility;
  mobility.p_switch_poi = 0.25;
  mobility.p_return_home = 0.5;
  mobility.pause_xm = 300.0;  // lectures are long
  mobility.pause_alpha = 1.3;
  mobility.pause_cap = 3600.0;
  mobility.idler_fraction = 0.05;
  mobility.explorer_fraction = 0.02;

  // 3. Population: ~400 students/day, 45 min median stays, campus rhythm.
  PopulationParams population;
  population.target_unique_users = 400.0;
  population.session_median = 2700.0;
  population.session_sigma = 0.6;
  population.revisit_probability = 0.5;  // students come back between classes
  population.diurnal_depth = 0.5;

  // 4. Wire the world into the standard testbed by hand.
  auto model = std::make_unique<PoiGravityModel>(campus, mobility);
  World world(std::move(campus), std::move(model), population, /*seed=*/7);

  SimEngine engine(1.0);
  GroundTruthRecorder recorder(world, 10.0);
  engine.add(kPriorityWorld, [&](Seconds now, Seconds dt) { world.tick(now, dt); });
  engine.add(kPriorityMonitor, [&](Seconds now, Seconds dt) { recorder.tick(now, dt); });

  std::printf("Simulating 6 h of campus life...\n");
  engine.run_until(6.0 * kSecondsPerHour);

  const Trace trace = recorder.take_trace();
  const TraceSummary summary = trace.summary();
  std::printf("students seen: %zu | avg on campus: %.1f\n", summary.unique_users,
              summary.avg_concurrent);

  const ContactAnalysis contacts = analyze_contacts(trace, 10.0);
  std::printf("contacts at 10 m: %zu | median contact %.0f s (lecture co-attendance)\n",
              contacts.intervals.size(),
              contacts.contact_times.empty() ? 0.0 : contacts.contact_times.median());

  const ZoneAnalysis zones = analyze_zones(trace);
  std::printf("busiest 20 m cell holds %zu students; %.0f%% of campus is empty\n",
              zones.max_occupancy, zones.empty_fraction * 100.0);

  const auto sessions = extract_sessions(trace);
  std::printf("sessions: %zu (revisits make them outnumber unique students)\n",
              sessions.size());
  return 0;
}
