// The paper's motivating application: use the collected mobility traces to
// drive a Delay-Tolerant-Network simulation ("the study of epidemics and
// information diffusion in wireless networks", abstract).
//
// Collects a trace from the Isle Of View event (or loads one saved by
// quickstart), then races three forwarding schemes over the same contacts.
//
//   ./examples/epidemic_dtn [trace.slt]
#include <cstdio>

#include "core/experiment.hpp"
#include "dtn/dtn_simulator.hpp"
#include "trace/serialize.hpp"

int main(int argc, char** argv) {
  using namespace slmob;

  Trace trace;
  if (argc > 1) {
    std::printf("Loading trace from %s...\n", argv[1]);
    trace = load_trace(argv[1]);
  } else {
    std::printf("Collecting a 3 h Isle Of View trace (pass a .slt file to reuse one)...\n");
    ExperimentConfig cfg;
    cfg.archetype = LandArchetype::kIsleOfView;
    cfg.duration = 3.0 * kSecondsPerHour;
    cfg.seed = 14;
    cfg.ranges = {};  // we only need the raw trace here
    trace = run_experiment(cfg).trace;
  }
  const TraceSummary summary = trace.summary();
  std::printf("trace: %s, %zu users, %.1f concurrent, %.1f h\n\n",
              trace.land_name().c_str(), summary.unique_users, summary.avg_concurrent,
              summary.duration / kSecondsPerHour);

  std::printf("%-12s %10s %12s %12s %14s\n", "scheme", "delivery", "delay med(s)",
              "delay p90(s)", "copies/message");
  for (const RoutingScheme scheme : {RoutingScheme::kEpidemic, RoutingScheme::kTwoHopRelay,
                                     RoutingScheme::kDirectDelivery}) {
    DtnConfig cfg;
    cfg.scheme = scheme;
    cfg.range = kBluetoothRange;  // Bluetooth-class devices, as in the paper
    cfg.message_count = 400;
    cfg.seed = 99;
    const DtnResults res = simulate_dtn(trace, cfg);
    std::printf("%-12s %9.1f%% %12.0f %12.0f %14.1f\n", routing_scheme_name(scheme),
                res.delivery_ratio * 100.0,
                res.delays.empty() ? 0.0 : res.delays.median(),
                res.delays.empty() ? 0.0 : res.delays.quantile(0.9),
                res.mean_copies_per_message);
  }
  std::printf("\nNote how user churn (sessions of minutes, not days) caps delivery:\n"
              "a destination that logs out is gone, no matter the scheme.\n");
  return 0;
}
