#include "sensors/http.hpp"
#include "sensors/http_transport.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

TEST(Http, RequestSerializeParseRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/report";
  req.headers.push_back({"X-Request-Key", "abc"});
  req.body = "line1\nline2\n";
  const auto parsed = parse_http_request(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->path, "/report");
  EXPECT_EQ(parsed->header("x-request-key"), "abc");
  EXPECT_EQ(parsed->body, "line1\nline2\n");
}

TEST(Http, ResponseSerializeParseRoundTrip) {
  HttpResponse resp;
  resp.status = 499;
  resp.reason = "Throttled";
  resp.body = "slow down";
  const auto parsed = parse_http_response(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 499);
  EXPECT_EQ(parsed->reason, "Throttled");
  EXPECT_EQ(parsed->body, "slow down");
}

TEST(Http, ContentLengthBoundsBody) {
  const std::string raw =
      "HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nabXtrailing";
  const auto parsed = parse_http_response(raw);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body, "ab");
}

TEST(Http, MalformedInputsRejected) {
  EXPECT_FALSE(parse_http_request("").has_value());
  EXPECT_FALSE(parse_http_request("GET /\r\n\r\n").has_value());       // no version
  EXPECT_FALSE(parse_http_request("GET / HTTP/1.0\r\nbadheader\r\n\r\n").has_value());
  EXPECT_FALSE(parse_http_response("NOTHTTP 200 OK\r\n\r\n").has_value());
  EXPECT_FALSE(parse_http_response("HTTP/1.0 9999 X\r\n\r\n").has_value());
  // Content-Length larger than available body.
  EXPECT_FALSE(
      parse_http_response("HTTP/1.0 200 OK\r\nContent-Length: 50\r\n\r\nshort").has_value());
}

TEST(Http, EmptyBodyAllowed) {
  HttpResponse resp;
  const auto parsed = parse_http_response(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->body.empty());
}

TEST(Transport, SingleFragmentRoundTrip) {
  const auto frags = fragment_http_message(1, "hello");
  ASSERT_EQ(frags.size(), 1u);
  HttpReassembler r;
  const auto message = r.feed(0, frags[0]);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(*message, "hello");
}

TEST(Transport, MultiFragmentRoundTrip) {
  std::string big(kHttpFragmentPayload * 3 + 100, 'x');
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>('a' + i % 26);
  const auto frags = fragment_http_message(7, big);
  ASSERT_EQ(frags.size(), 4u);
  HttpReassembler r;
  std::optional<std::string> message;
  for (const auto& f : frags) message = r.feed(3, f);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(*message, big);
}

TEST(Transport, OutOfOrderFragmentsReassemble) {
  const std::string big(kHttpFragmentPayload * 2 + 10, 'q');
  auto frags = fragment_http_message(9, big);
  ASSERT_EQ(frags.size(), 3u);
  HttpReassembler r;
  EXPECT_FALSE(r.feed(1, frags[2]).has_value());
  EXPECT_FALSE(r.feed(1, frags[0]).has_value());
  const auto message = r.feed(1, frags[1]);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(*message, big);
}

TEST(Transport, MissingFragmentNeverCompletes) {
  const std::string big(kHttpFragmentPayload * 2, 'z');
  const auto frags = fragment_http_message(11, big);
  HttpReassembler r;
  EXPECT_FALSE(r.feed(1, frags[0]).has_value());
  // Fragment 1 lost: nothing completes, gc() keeps memory bounded.
  r.gc(0);
  // Re-sending fragment 0 alone still does not complete.
  EXPECT_FALSE(r.feed(1, frags[0]).has_value());
}

TEST(Transport, InterleavedSendersKeptApart) {
  const std::string m1(kHttpFragmentPayload + 1, 'a');
  const std::string m2(kHttpFragmentPayload + 1, 'b');
  const auto f1 = fragment_http_message(5, m1);
  const auto f2 = fragment_http_message(5, m2);  // same id, different sender
  HttpReassembler r;
  EXPECT_FALSE(r.feed(1, f1[0]).has_value());
  EXPECT_FALSE(r.feed(2, f2[0]).has_value());
  EXPECT_EQ(r.feed(2, f2[1]), m2);
  EXPECT_EQ(r.feed(1, f1[1]), m1);
}

TEST(Transport, DuplicateFragmentIdempotent) {
  const std::string big(kHttpFragmentPayload * 2, 'd');
  const auto frags = fragment_http_message(2, big);
  HttpReassembler r;
  EXPECT_FALSE(r.feed(1, frags[0]).has_value());
  EXPECT_FALSE(r.feed(1, frags[0]).has_value());  // dup
  EXPECT_EQ(r.feed(1, frags[1]), big);
}

TEST(Transport, MalformedFragmentCounted) {
  HttpReassembler r;
  const std::vector<std::uint8_t> junk{1, 2};
  EXPECT_FALSE(r.feed(1, junk).has_value());
  EXPECT_EQ(r.malformed(), 1u);
}

TEST(Transport, EmptyMessageStillOneFragment) {
  const auto frags = fragment_http_message(3, "");
  ASSERT_EQ(frags.size(), 1u);
  HttpReassembler r;
  EXPECT_EQ(r.feed(1, frags[0]), "");
}

}  // namespace
}  // namespace slmob
