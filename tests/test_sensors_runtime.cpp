#include "sensors/object_runtime.hpp"

#include <gtest/gtest.h>

#include "sensors/collector.hpp"
#include "sensors/deployment.hpp"
#include "world/archetypes.hpp"

namespace slmob {
namespace {

struct RuntimeRig {
  explicit RuntimeRig(LandArchetype archetype)
      : world(make_world(archetype, 1)),
        net({}, 2),
        collector(net, "test"),
        runtime(*world, net) {}

  void pump(Seconds duration) {
    const Seconds until = now + duration;
    for (; now < until; now += 1.0) {
      world->tick(now, 1.0);
      runtime.tick(now, 1.0);
      net.tick(now, 1.0);
    }
  }

  std::unique_ptr<World> world;
  SimNetwork net;
  HttpCollector collector;
  ObjectRuntime runtime;
  Seconds now{0.0};
};

TEST(ObjectRuntime, DeployOnPublicLandSucceeds) {
  RuntimeRig rig(LandArchetype::kApfelLand);
  ObjectId id;
  const auto result = rig.runtime.deploy({64.0, 64.0, 22.0}, default_sensor_script(),
                                         rig.collector.address(), 0.0, {}, false, &id);
  EXPECT_EQ(result, DeployResult::kOk);
  EXPECT_TRUE(rig.runtime.alive(id));
  EXPECT_EQ(rig.runtime.stats().deployed, 1u);
}

TEST(ObjectRuntime, PrivateLandForbidsUnauthorizedDeployment) {
  RuntimeRig rig(LandArchetype::kDanceIsland);  // private land
  const auto result = rig.runtime.deploy({64.0, 64.0, 22.0}, default_sensor_script(),
                                         rig.collector.address(), 0.0, {}, false);
  EXPECT_EQ(result, DeployResult::kForbiddenPrivateLand);
  EXPECT_EQ(rig.runtime.stats().rejected, 1u);
  EXPECT_TRUE(rig.runtime.objects().empty());
}

TEST(ObjectRuntime, PrivateLandAllowsAuthorizedDeployment) {
  RuntimeRig rig(LandArchetype::kDanceIsland);
  const auto result = rig.runtime.deploy({64.0, 64.0, 22.0}, default_sensor_script(),
                                         rig.collector.address(), 0.0, {}, true);
  EXPECT_EQ(result, DeployResult::kOk);
}

TEST(ObjectRuntime, BadScriptRejected) {
  RuntimeRig rig(LandArchetype::kApfelLand);
  const auto result = rig.runtime.deploy({64.0, 64.0, 22.0}, "this is not lsl",
                                         rig.collector.address(), 0.0, {}, false);
  EXPECT_EQ(result, DeployResult::kBadScript);
}

TEST(ObjectRuntime, ObjectsExpireOnPublicLand) {
  RuntimeRig rig(LandArchetype::kApfelLand);  // lifetime 3600 s
  ObjectId id;
  ASSERT_EQ(rig.runtime.deploy({64.0, 64.0, 22.0}, default_sensor_script(),
                               rig.collector.address(), 0.0, {}, false, &id),
            DeployResult::kOk);
  rig.pump(3500.0);
  EXPECT_TRUE(rig.runtime.alive(id));
  rig.pump(200.0);
  EXPECT_FALSE(rig.runtime.alive(id));
  EXPECT_EQ(rig.runtime.stats().expired, 1u);
}

TEST(SensorGrid, CoversLandAndCollects) {
  RuntimeRig rig(LandArchetype::kApfelLand);
  SensorGridConfig cfg;
  cfg.grid_side = 2;
  SensorGridDeployment grid(rig.runtime, rig.world->land(), rig.collector.address(), cfg);
  EXPECT_EQ(grid.deploy_all(0.0), 4u);
  EXPECT_EQ(grid.live_sensors(), 4u);
  // Every point of the land is within 96 m of some sensor.
  for (double x = 0.0; x < 256.0; x += 16.0) {
    for (double y = 0.0; y < 256.0; y += 16.0) {
      double best = 1e9;
      for (const auto& p : grid.positions()) {
        best = std::min(best, p.distance2d_to({x, y, 22.0}));
      }
      EXPECT_LE(best, 96.0) << "uncovered point " << x << "," << y;
    }
  }
  rig.pump(1200.0);
  EXPECT_GT(rig.collector.stats().records, 0u);
}

TEST(SensorGrid, ReplicationSurvivesExpiry) {
  RuntimeRig rig(LandArchetype::kApfelLand);
  SensorGridConfig cfg;
  cfg.grid_side = 2;
  cfg.replication_interval = 60.0;
  SensorGridDeployment grid(rig.runtime, rig.world->land(), rig.collector.address(), cfg);
  grid.deploy_all(0.0);
  // Pump past the 3600 s object lifetime with the grid's tick running.
  const Seconds until = 2.0 * 3600.0;
  for (; rig.now < until; rig.now += 1.0) {
    rig.world->tick(rig.now, 1.0);
    rig.runtime.tick(rig.now, 1.0);
    grid.tick(rig.now, 1.0);
    rig.net.tick(rig.now, 1.0);
  }
  EXPECT_GT(rig.runtime.stats().expired, 0u);
  EXPECT_GT(grid.stats().redeployments, 0u);
  EXPECT_EQ(grid.live_sensors(), 4u);  // the grid healed itself
}

TEST(SensorGrid, FailsEntirelyOnPrivateLand) {
  RuntimeRig rig(LandArchetype::kDanceIsland);
  SensorGridConfig cfg;
  SensorGridDeployment grid(rig.runtime, rig.world->land(), rig.collector.address(), cfg);
  EXPECT_EQ(grid.deploy_all(0.0), 0u);
  EXPECT_EQ(grid.stats().failed_deployments, 4u);
}

}  // namespace
}  // namespace slmob
