// Streaming <-> batch equivalence: StreamingAnalyzer must reproduce the
// batch pipeline's AnalysisReport bit for bit — every Ecdf sample, interval
// and scalar — on gap-free and gapped traces, on every land archetype, under
// fault scenarios, on a salvaged torn journal, and at any thread count.
// Failures print analysis_diff, which names the first differing field.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/streaming.hpp"
#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "trace/journal.hpp"
#include "trace/serialize.hpp"
#include "util/rng.hpp"

namespace slmob {
namespace {

// Avatars random-walking around two hotspots with churn, so every analysis
// produces non-trivial output (same generator as test_core_parallel).
Trace seeded_trace(std::uint64_t seed, std::size_t snapshots, std::size_t users) {
  Rng rng(seed);
  std::vector<Vec3> pos(users);
  std::vector<bool> online(users, false);
  for (std::size_t u = 0; u < users; ++u) {
    const double cx = (u % 2 == 0) ? 64.0 : 192.0;
    pos[u] = {cx + rng.uniform(-30.0, 30.0), 128.0 + rng.uniform(-30.0, 30.0), 22.0};
    online[u] = rng.uniform(0.0, 1.0) < 0.7;
  }
  Trace t("streaming-golden", 10.0);
  for (std::size_t s = 0; s < snapshots; ++s) {
    Snapshot snap;
    snap.time = static_cast<double>(s) * 10.0;
    for (std::size_t u = 0; u < users; ++u) {
      if (rng.uniform(0.0, 1.0) < 0.02) online[u] = !online[u];
      if (!online[u]) continue;
      pos[u].x = std::clamp(pos[u].x + rng.uniform(-5.0, 5.0), 0.0, 255.0);
      pos[u].y = std::clamp(pos[u].y + rng.uniform(-5.0, 5.0), 0.0, 255.0);
      snap.fixes.push_back({AvatarId{static_cast<std::uint32_t>(u + 1)}, pos[u]});
    }
    t.add(std::move(snap));
  }
  return t;
}

AnalysisReport batch_report(const Trace& trace, std::size_t threads = 1) {
  return to_analysis_report(
      analyze_trace(Trace(trace), {kBluetoothRange, kWifiRange}, kDefaultLandSize, threads));
}

AnalysisReport stream_report(const Trace& trace, StreamingOptions options = {}) {
  MemoryTraceStream stream(trace);
  return analyze_stream(stream, options);
}

void expect_equivalent(const AnalysisReport& batch, const AnalysisReport& streamed) {
  const std::string diff = analysis_diff(batch, streamed);
  EXPECT_TRUE(diff.empty()) << diff;
  EXPECT_EQ(analysis_fingerprint(batch), analysis_fingerprint(streamed));
}

TEST(StreamingEquivalence, GapFreeTraceAt1And2And4Threads) {
  const Trace trace = seeded_trace(99, 120, 60);
  const AnalysisReport batch = batch_report(trace);
  ASSERT_FALSE(batch.contacts.at(kBluetoothRange).contact_times.empty());
  for (const std::size_t threads : {1u, 2u, 4u}) {
    StreamingOptions opt;
    opt.threads = threads;
    expect_equivalent(batch, stream_report(trace, opt));
  }
}

TEST(StreamingEquivalence, GappedTraceAt1And2And4Threads) {
  Trace trace = seeded_trace(7, 150, 50);
  trace.add_gap(295.0, 355.0);
  trace.add_gap(820.0, 900.0);
  const AnalysisReport batch = batch_report(trace);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    StreamingOptions opt;
    opt.threads = threads;
    expect_equivalent(batch, stream_report(trace, opt));
  }
}

TEST(StreamingEquivalence, BatchThreadCountDoesNotMatterEither) {
  Trace trace = seeded_trace(13, 80, 40);
  trace.add_gap(205.0, 245.0);
  expect_equivalent(batch_report(trace, 4), stream_report(trace));
}

TEST(StreamingEquivalence, StripSittingFixesMatchesWholeTraceStrip) {
  // A trace with origin fixes: streaming's per-snapshot strip must equal
  // Trace::strip_sitting_fixes on the whole trace before batch analysis.
  Trace trace = seeded_trace(21, 60, 30);
  Trace polluted(trace.land_name(), trace.sampling_interval());
  for (const auto& snap : trace.snapshots()) {
    Snapshot copy = snap;
    copy.fixes.push_back({AvatarId{9999}, {0.0, 0.0, 0.0}});
    polluted.add(std::move(copy));
  }
  Trace stripped = polluted;  // deep copy, then strip whole-trace
  stripped.strip_sitting_fixes();
  StreamingOptions opt;
  opt.strip_sitting_fixes = true;
  expect_equivalent(batch_report(stripped), stream_report(polluted, opt));
}

// One run_experiment per land / scenario, shared across tests.
struct GoldenRun {
  ExperimentResults results;
};

const GoldenRun& golden_run(LandArchetype archetype, const std::string& scenario) {
  static std::map<std::pair<int, std::string>, GoldenRun> cache;
  auto key = std::make_pair(static_cast<int>(archetype), scenario);
  auto it = cache.find(key);
  if (it == cache.end()) {
    ExperimentConfig cfg;
    cfg.archetype = archetype;
    cfg.duration = 2.0 * kSecondsPerHour;
    cfg.seed = 42;
    cfg.fault_scenario = scenario;
    it = cache.emplace(key, GoldenRun{run_experiment(cfg)}).first;
  }
  return it->second;
}

void expect_land_equivalence(LandArchetype archetype, const std::string& scenario) {
  const auto& run = golden_run(archetype, scenario);
  // run_experiment analyzed the stripped trace; results.trace IS that
  // stripped trace, so streaming it without re-stripping must match.
  const AnalysisReport batch = to_analysis_report(run.results);
  for (const std::size_t threads : {1u, 2u}) {
    StreamingOptions opt;
    opt.threads = threads;
    expect_equivalent(batch, stream_report(run.results.trace, opt));
  }
}

TEST(StreamingGolden, IsleOfView) {
  expect_land_equivalence(LandArchetype::kIsleOfView, "none");
}

TEST(StreamingGolden, DanceIsland) {
  expect_land_equivalence(LandArchetype::kDanceIsland, "none");
}

TEST(StreamingGolden, ApfelLand) {
  expect_land_equivalence(LandArchetype::kApfelLand, "none");
}

TEST(StreamingGolden, ChaosScenario) {
  const auto& run = golden_run(LandArchetype::kIsleOfView, "chaos");
  // Chaos must actually have censored something for this to test gap paths.
  EXPECT_FALSE(run.results.trace.gaps().empty());
  expect_land_equivalence(LandArchetype::kIsleOfView, "chaos");
}

TEST(StreamingGolden, CollectorCrashScenario) {
  expect_land_equivalence(LandArchetype::kIsleOfView, "collector-crash");
}

TEST(StreamingEquivalence, SalvagedTornJournal) {
  // A journal torn mid-frame streams exactly what salvage_journal keeps —
  // including the synthetic trailing gap — and analyzes identically.
  Trace trace = seeded_trace(31, 40, 25);
  const std::string path = ::testing::TempDir() + "streaming_torn.sltj";
  {
    TraceJournalWriter w(path, 400.0);
    w.begin(trace.land_name(), trace.sampling_interval());
    for (std::size_t i = 0; i < trace.snapshots().size(); ++i) {
      if (i == 10) {
        w.append_gap_open(95.0);
        w.append_gap_close(95.0, 100.0);
      }
      w.append_snapshot(trace.snapshots()[i]);
    }
    w.append_end(400.0);
  }
  // Tear off the last 31 bytes: the kEnd frame and part of the final
  // snapshot frame are lost, forcing a trailing censoring gap.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), full - 31), 0);

  const JournalSalvage salvage = salvage_journal(path);
  EXPECT_TRUE(salvage.torn);
  ASSERT_FALSE(salvage.trace.gaps().empty());  // trailing censoring gap

  StreamingProgress progress;
  const AnalysisReport streamed = analyze_stream_file(path, {}, &progress);
  expect_equivalent(batch_report(salvage.trace), streamed);
  EXPECT_EQ(progress.snapshots, salvage.trace.snapshots().size());
  std::remove(path.c_str());
}

TEST(StreamingEquivalence, SltFileMatchesInMemory) {
  Trace trace = seeded_trace(17, 50, 30);
  trace.add_gap(125.0, 165.0);
  const std::string path = ::testing::TempDir() + "streaming_file.slt";
  save_trace(trace, path);
  // Batch loads the same file: .slt stores f32 positions, so equivalence is
  // against the loaded trace, not the pre-save doubles.
  expect_equivalent(batch_report(load_trace(path)), analyze_stream_file(path));
  std::remove(path.c_str());
}

TEST(StreamingEquivalence, FlightsMatchAnalyzeFlights) {
  const Trace trace = seeded_trace(43, 100, 40);
  StreamingOptions opt;
  opt.flights = true;
  const AnalysisReport streamed = stream_report(trace, opt);
  ASSERT_TRUE(streamed.flights.has_value());

  AnalysisReport batch = batch_report(trace);
  batch.flights = analyze_flights(trace, opt.flight_options);
  expect_equivalent(batch, streamed);
  EXPECT_GT(streamed.flights->sessions_analyzed, 0u);
}

TEST(StreamingEquivalence, RelationsMatchRelationGraph) {
  const Trace trace = seeded_trace(47, 100, 40);
  StreamingOptions opt;
  opt.relations = true;
  const AnalysisReport streamed = stream_report(trace, opt);
  ASSERT_TRUE(streamed.relations.has_value());

  AnalysisReport batch = batch_report(trace);
  const RelationGraph graph(batch.contacts.at(opt.relation_range).intervals,
                            opt.relation_options);
  batch.relations = summarize_relations(graph);
  expect_equivalent(batch, streamed);
  EXPECT_GT(streamed.relations->relations.size(), 0u);
}

TEST(StreamingEquivalence, CrawlerLiveSinkMatchesBatchOnTakenTrace) {
  // The crawler feeds an attached analyzer the same events it records; at
  // take_trace time the live report must equal batch analysis of the taken
  // trace (strip enabled on both sides, as run_experiment does).
  TestbedConfig cfg;
  cfg.archetype = LandArchetype::kApfelLand;
  cfg.seed = 11;
  Testbed bed(cfg);
  ASSERT_NE(bed.crawler(), nullptr);

  StreamingOptions opt;
  opt.strip_sitting_fixes = true;
  StreamingAnalyzer live(opt);
  bed.crawler()->attach_live_sink(&live);
  bed.run_until(1.0 * kSecondsPerHour);

  Trace trace = bed.crawler()->take_trace();
  trace.strip_sitting_fixes();
  const AnalysisReport batch = batch_report(trace);
  const AnalysisReport streamed = live.finish();
  const std::string diff = analysis_diff(batch, streamed);
  EXPECT_TRUE(diff.empty()) << diff;
  EXPECT_GT(streamed.summary.snapshot_count, 0u);
}

TEST(StreamingAnalyzer, ProgressCountersTrackTheStream) {
  Trace trace = seeded_trace(3, 30, 20);
  trace.add_gap(95.0, 125.0);  // covers snapshots at t=100, 110, 120
  StreamingAnalyzer analyzer;
  MemoryTraceStream stream(trace);
  drive_stream(stream, analyzer);

  const StreamingProgress p = analyzer.progress();
  const TraceSummary want = trace.summary();
  EXPECT_EQ(p.snapshots, trace.snapshots().size());
  EXPECT_EQ(p.covered_snapshots, trace.snapshots().size() - 3);
  EXPECT_EQ(p.gaps, 1u);
  EXPECT_EQ(p.users_seen, want.unique_users);
  EXPECT_EQ(p.max_concurrent, want.max_concurrent);
  EXPECT_EQ(p.last_time, trace.snapshots().back().time);
  EXPECT_GT(p.proximity_rebuilds + p.proximity_delta_updates, 0u);

  const AnalysisReport report = analyzer.finish();
  EXPECT_EQ(report.summary.snapshot_count, want.snapshot_count);
  EXPECT_EQ(report.summary.gap_count, want.gap_count);
  EXPECT_EQ(report.summary.gap_seconds, want.gap_seconds);
}

TEST(StreamingAnalyzer, EmptyStreamYieldsEmptyReport) {
  StreamingAnalyzer analyzer;
  analyzer.on_begin("empty", 10.0);
  const AnalysisReport report = analyzer.finish();
  EXPECT_EQ(report.summary.snapshot_count, 0u);
  EXPECT_EQ(report.summary.unique_users, 0u);
  EXPECT_EQ(report.summary.duration, 0.0);
  EXPECT_TRUE(report.contacts.at(kBluetoothRange).contact_times.empty());
}

TEST(StreamingAnalyzer, FinishWithoutBeginIsAnEmptyReport) {
  StreamingAnalyzer analyzer;
  const AnalysisReport report = analyzer.finish();
  EXPECT_EQ(report.summary.snapshot_count, 0u);
}

TEST(StreamingAnalyzer, UsageErrors) {
  {
    StreamingOptions opt;
    opt.ranges = {10.0, -1.0};
    EXPECT_THROW(StreamingAnalyzer{opt}, std::invalid_argument);
  }
  {
    StreamingOptions opt;
    opt.relations = true;
    opt.relation_range = 42.0;  // not in ranges
    EXPECT_THROW(StreamingAnalyzer{opt}, std::invalid_argument);
  }
  {
    StreamingAnalyzer analyzer;
    Snapshot snap;
    EXPECT_THROW(analyzer.on_snapshot(snap), std::logic_error);
  }
  {
    StreamingAnalyzer analyzer;
    analyzer.on_begin("x", 10.0);
    (void)analyzer.finish();
    EXPECT_THROW((void)analyzer.finish(), std::logic_error);
  }
}

TEST(AnalysisReportDiff, NamesTheFirstDifferingField) {
  const Trace trace = seeded_trace(5, 20, 15);
  const AnalysisReport a = batch_report(trace);
  AnalysisReport b = a;
  EXPECT_TRUE(analysis_equal(a, b));
  b.summary.snapshot_count += 1;
  const std::string diff = analysis_diff(a, b);
  EXPECT_FALSE(diff.empty());
  EXPECT_NE(diff.find("snapshot_count"), std::string::npos) << diff;
  EXPECT_NE(analysis_fingerprint(a), analysis_fingerprint(b));
}

}  // namespace
}  // namespace slmob
