#include "analysis/zones.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

TEST(Zones, GridDimensions) {
  Trace t("x", 10.0);
  t.add(Snapshot{0.0, {}});
  const ZoneAnalysis z = analyze_zones(t, 256.0, 20.0);
  EXPECT_EQ(z.cells_per_side, 13u);  // ceil(256/20)
  EXPECT_EQ(z.mean_per_cell.size(), 169u);
}

TEST(Zones, AllCellsEmptyWithoutUsers) {
  Trace t("x", 10.0);
  t.add(Snapshot{0.0, {}});
  const ZoneAnalysis z = analyze_zones(t);
  EXPECT_DOUBLE_EQ(z.empty_fraction, 1.0);
  EXPECT_EQ(z.max_occupancy, 0u);
}

TEST(Zones, CountsUsersPerCell) {
  Trace t("x", 10.0);
  Snapshot s;
  s.time = 0.0;
  // Three users in cell (0,0), one in cell (1,0).
  s.fixes = {{AvatarId{1}, {5.0, 5.0, 22.0}},
             {AvatarId{2}, {6.0, 6.0, 22.0}},
             {AvatarId{3}, {19.9, 19.9, 22.0}},
             {AvatarId{4}, {25.0, 5.0, 22.0}}};
  t.add(std::move(s));
  const ZoneAnalysis z = analyze_zones(t);
  EXPECT_EQ(z.max_occupancy, 3u);
  EXPECT_DOUBLE_EQ(z.mean_per_cell[0], 3.0);
  EXPECT_DOUBLE_EQ(z.mean_per_cell[1], 1.0);
  EXPECT_DOUBLE_EQ(z.empty_fraction, 167.0 / 169.0);
  // The occupancy ECDF has one sample per cell per snapshot.
  EXPECT_EQ(z.occupancy.size(), 169u);
}

TEST(Zones, MeanAveragesOverSnapshots) {
  Trace t("x", 10.0);
  Snapshot s1;
  s1.time = 0.0;
  s1.fixes = {{AvatarId{1}, {5.0, 5.0, 22.0}}};
  Snapshot s2;
  s2.time = 10.0;
  // cell empties in the second snapshot
  t.add(std::move(s1));
  t.add(std::move(s2));
  const ZoneAnalysis z = analyze_zones(t);
  EXPECT_DOUBLE_EQ(z.mean_per_cell[0], 0.5);
}

TEST(Zones, OutOfRangePositionsClamped) {
  Trace t("x", 10.0);
  Snapshot s;
  s.time = 0.0;
  s.fixes = {{AvatarId{1}, {-5.0, 500.0, 22.0}}};
  t.add(std::move(s));
  const ZoneAnalysis z = analyze_zones(t);
  EXPECT_EQ(z.max_occupancy, 1u);  // counted in an edge cell, not lost
}

TEST(Zones, OccupancyCdfMatchesEmptyFraction) {
  Trace t("x", 10.0);
  Snapshot s;
  s.time = 0.0;
  s.fixes = {{AvatarId{1}, {5.0, 5.0, 22.0}}, {AvatarId{2}, {100.0, 100.0, 22.0}}};
  t.add(std::move(s));
  const ZoneAnalysis z = analyze_zones(t);
  EXPECT_DOUBLE_EQ(z.occupancy.cdf(0.0), z.empty_fraction);
  EXPECT_DOUBLE_EQ(z.occupancy.cdf(10.0), 1.0);
}

TEST(Zones, UncoveredSnapshotsExcludedFromMean) {
  Trace t("x", 10.0);
  Snapshot s1;
  s1.time = 0.0;
  s1.fixes = {{AvatarId{1}, {5.0, 5.0, 22.0}}};
  Snapshot s2;
  s2.time = 10.0;  // inside the gap: occupancy here is unknown, not zero
  Snapshot s3;
  s3.time = 20.0;
  s3.fixes = {{AvatarId{1}, {5.0, 5.0, 22.0}}};
  t.add(std::move(s1));
  t.add(std::move(s2));
  t.add(std::move(s3));
  t.add_gap(5.0, 15.0);
  const ZoneAnalysis z = analyze_zones(t);
  // Mean divides by the 2 covered snapshots, not all 3.
  EXPECT_DOUBLE_EQ(z.mean_per_cell[0], 1.0);
  EXPECT_EQ(z.occupancy.size(), 2u * 169u);
}

TEST(Zones, BadArgsThrow) {
  Trace t("x", 10.0);
  EXPECT_THROW((void)analyze_zones(t, 0.0, 20.0), std::invalid_argument);
  EXPECT_THROW((void)analyze_zones(t, 256.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace slmob
