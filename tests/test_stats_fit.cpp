#include "stats/fit.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/ecdf.hpp"
#include "stats/ks.hpp"
#include "stats/samplers.hpp"
#include "util/rng.hpp"

namespace slmob {
namespace {

TEST(Fit, PowerLawRecoversExponent) {
  ParetoSampler pareto(1.0, 1.8);
  Rng rng(1);
  std::vector<double> samples(50000);
  for (auto& s : samples) s = pareto.sample(rng);
  const PowerLawFit fit = fit_power_law(samples, 1.0);
  EXPECT_NEAR(fit.alpha, 1.8, 0.05);
  EXPECT_EQ(fit.n, samples.size());
}

TEST(Fit, PowerLawTooFewSamples) {
  const std::vector<double> samples{2.0};
  const PowerLawFit fit = fit_power_law(samples, 1.0);
  EXPECT_EQ(fit.alpha, 0.0);
}

TEST(Fit, ExponentialTailRecoversRate) {
  Rng rng(2);
  std::vector<double> samples(50000);
  for (auto& s : samples) s = 10.0 + rng.exponential(25.0);  // rate 0.04 above 10
  const ExponentialTailFit fit = fit_exponential_tail(samples, 10.0);
  EXPECT_NEAR(fit.rate, 1.0 / 25.0, 0.002);
}

TEST(Fit, TwoPhaseDetectsCrossover) {
  // Construct power-law head with hard exponential tail: X = min samples.
  Rng rng(3);
  BoundedParetoSampler head(5.0, 1.2, 400.0);
  std::vector<double> samples;
  samples.reserve(30000);
  for (int i = 0; i < 30000; ++i) {
    const double x = head.sample(rng);
    // Exponential censoring beyond ~150 (session-end cutoff).
    const double cutoff = 150.0 + rng.exponential(60.0);
    samples.push_back(std::min(x, cutoff));
  }
  const TwoPhaseFit fit = fit_two_phase(samples, 5.0);
  EXPECT_GT(fit.head.alpha, 0.5);
  EXPECT_GT(fit.tail.rate, 0.0);
  EXPECT_GT(fit.crossover, 20.0);
  EXPECT_LT(fit.crossover, 400.0);
  EXPECT_LT(fit.ks, 0.12);  // the combined model explains the data
}

TEST(Fit, TwoPhaseSmallSampleIsSafe) {
  const std::vector<double> samples{1.0, 2.0, 3.0};
  const TwoPhaseFit fit = fit_two_phase(samples, 1.0);
  EXPECT_EQ(fit.ks, 1.0);  // no usable fit
}

TEST(Ks, IdenticalDistributionsHaveZeroDistance) {
  Ecdf a({1.0, 2.0, 3.0});
  Ecdf b({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.0);
}

TEST(Ks, DisjointDistributionsHaveDistanceOne) {
  Ecdf a({1.0, 2.0});
  Ecdf b({10.0, 20.0});
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
}

TEST(Ks, AgainstAnalyticUniform) {
  Rng rng(4);
  Ecdf e;
  for (int i = 0; i < 20000; ++i) e.add(rng.uniform());
  const double d = ks_distance(e, [](double x) {
    if (x < 0.0) return 0.0;
    if (x > 1.0) return 1.0;
    return x;
  });
  EXPECT_LT(d, 0.02);
}

TEST(Ks, SensitiveToShift) {
  Rng rng(5);
  Ecdf a;
  Ecdf b;
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.uniform());
    b.add(rng.uniform() + 0.5);
  }
  EXPECT_GT(ks_distance(a, b), 0.4);
}

}  // namespace
}  // namespace slmob
