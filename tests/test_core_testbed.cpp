#include "core/testbed.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

TEST(Testbed, WiresAllComponents) {
  TestbedConfig cfg;
  cfg.archetype = LandArchetype::kApfelLand;
  cfg.seed = 1;
  cfg.with_ground_truth = true;
  Testbed bed(cfg);
  EXPECT_NE(bed.crawler(), nullptr);
  EXPECT_NE(bed.client(), nullptr);
  EXPECT_NE(bed.ground_truth(), nullptr);
  EXPECT_EQ(bed.world().land().name(), "Apfelland");
  EXPECT_EQ(bed.engine().now(), 0.0);
}

TEST(Testbed, CrawlerlessRig) {
  TestbedConfig cfg;
  cfg.with_crawler = false;
  cfg.with_ground_truth = true;
  Testbed bed(cfg);
  EXPECT_EQ(bed.crawler(), nullptr);
  EXPECT_EQ(bed.client(), nullptr);
  bed.run_until(120.0);
  EXPECT_GT(bed.ground_truth()->trace().size(), 5u);
}

TEST(Testbed, RunUntilAdvancesClock) {
  TestbedConfig cfg;
  cfg.seed = 2;
  Testbed bed(cfg);
  bed.run_until(60.0);
  EXPECT_DOUBLE_EQ(bed.engine().now(), 60.0);
  bed.run_until(120.0);
  EXPECT_DOUBLE_EQ(bed.engine().now(), 120.0);
}

TEST(Testbed, CrawlerLogsInAutomatically) {
  TestbedConfig cfg;
  cfg.seed = 3;
  Testbed bed(cfg);
  bed.run_until(30.0);
  EXPECT_TRUE(bed.client()->connected());
  // The crawler's avatar is in the world as an externally controlled one.
  const auto avatar = bed.world().find(AvatarId{bed.client()->agent_id()});
  ASSERT_TRUE(avatar.has_value());
  EXPECT_TRUE(avatar->externally_controlled);
}

TEST(Testbed, CuriosityOverrideApplied) {
  TestbedConfig cfg;
  CuriosityParams curiosity;
  curiosity.enabled = false;
  cfg.curiosity = curiosity;
  Testbed bed(cfg);
  EXPECT_FALSE(bed.world().curiosity().enabled);
}

TEST(Testbed, GroundTruthIntervalRespected) {
  TestbedConfig cfg;
  cfg.with_ground_truth = true;
  cfg.ground_truth_interval = 30.0;
  Testbed bed(cfg);
  bed.run_until(300.0);
  const auto& snaps = bed.ground_truth()->trace().snapshots();
  ASSERT_GE(snaps.size(), 2u);
  EXPECT_NEAR(snaps[1].time - snaps[0].time, 30.0, 1e-9);
}

}  // namespace
}  // namespace slmob
