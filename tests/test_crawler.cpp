#include "crawler/crawler.hpp"

#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace slmob {
namespace {

TestbedConfig quick_config() {
  TestbedConfig cfg;
  cfg.archetype = LandArchetype::kDanceIsland;
  cfg.seed = 5;
  cfg.with_ground_truth = true;
  return cfg;
}

TEST(Crawler, ProducesSnapshotsAtTau) {
  Testbed bed(quick_config());
  bed.run_until(600.0);
  const Trace& trace = bed.crawler()->trace();
  // ~1 snapshot per 10 s minus login transient.
  EXPECT_GE(trace.size(), 55u);
  EXPECT_LE(trace.size(), 61u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_NEAR(trace.snapshots()[i].time - trace.snapshots()[i - 1].time, 10.0, 1e-9);
  }
}

TEST(Crawler, ExcludesItselfFromTrace) {
  Testbed bed(quick_config());
  bed.run_until(600.0);
  const auto own_id = bed.client()->agent_id();
  ASSERT_GT(own_id, 0u);
  for (const auto& snap : bed.crawler()->trace().snapshots()) {
    for (const auto& fix : snap.fixes) {
      EXPECT_NE(fix.id.value, own_id);
    }
  }
}

TEST(Crawler, TraceNamedAfterRegion) {
  Testbed bed(quick_config());
  bed.run_until(120.0);
  EXPECT_EQ(bed.crawler()->trace().land_name(), "Dance");
}

TEST(Crawler, MimicryActs) {
  Testbed bed(quick_config());
  bed.run_until(1800.0);
  EXPECT_GT(bed.crawler()->stats().moves_made, 5u);
  EXPECT_GT(bed.crawler()->stats().chat_lines_sent, 2u);
}

TEST(Crawler, MimicryDisabled) {
  TestbedConfig cfg = quick_config();
  cfg.crawler.mimicry.enabled = false;
  Testbed bed(cfg);
  bed.run_until(1800.0);
  EXPECT_EQ(bed.crawler()->stats().moves_made, 0u);
  EXPECT_EQ(bed.crawler()->stats().chat_lines_sent, 0u);
}

TEST(Crawler, MatchesGroundTruthClosely) {
  Testbed bed(quick_config());
  bed.run_until(1800.0);
  const TraceSummary crawled = bed.crawler()->trace().summary();
  const TraceSummary truth = bed.ground_truth()->trace().summary();
  // The crawler sees the same population (within the login transient and
  // metre-level quantisation).
  EXPECT_NEAR(static_cast<double>(crawled.unique_users),
              static_cast<double>(truth.unique_users), 3.0);
  EXPECT_NEAR(crawled.avg_concurrent, truth.avg_concurrent, 2.0);
}

TEST(Crawler, PositionsAreQuantisedToWholeMetres) {
  Testbed bed(quick_config());
  bed.run_until(300.0);
  for (const auto& snap : bed.crawler()->trace().snapshots()) {
    for (const auto& fix : snap.fixes) {
      EXPECT_DOUBLE_EQ(fix.pos.x, std::floor(fix.pos.x));
      EXPECT_DOUBLE_EQ(fix.pos.y, std::floor(fix.pos.y));
    }
  }
}

TEST(Crawler, SurvivesLossyNetworkViaRelogin) {
  TestbedConfig cfg = quick_config();
  cfg.network.loss_rate = 0.55;  // brutal: circuits will die
  Testbed bed(cfg);
  bed.run_until(3600.0);
  const auto& stats = bed.crawler()->stats();
  // The crawler must keep collecting data across reconnects.
  EXPECT_GT(stats.snapshots_taken, 50u);
}

TEST(Crawler, SilentFeedTriggersReconnect) {
  TestbedConfig cfg = quick_config();
  cfg.crawler.feed_stale_timeout = 25.0;
  Testbed bed(cfg);
  // One-way partition: the server can receive but not send, so the minimap
  // feed goes silent while the crawler still looks connected.
  FaultSchedule faults;
  FaultWindow w{FaultKind::kPartitionOutbound, 200.0, 230.0};
  w.node = bed.server().address();
  faults.add(w);
  bed.network().set_faults(faults);
  bed.run_until(600.0);
  const auto& stats = bed.crawler()->stats();
  EXPECT_GE(stats.feed_reconnects, 1u);
  EXPECT_GE(stats.relogins, 1u);
  // Sampling resumed after the partition lifted.
  EXPECT_GT(bed.crawler()->trace().snapshots().back().time, 500.0);
}

TEST(Crawler, BlackoutProducesOneGapWithBackoffPacedRelogins) {
  TestbedConfig cfg = quick_config();
  Testbed bed(cfg);
  FaultSchedule faults;
  faults.add({FaultKind::kBlackout, 100.0, 400.0});
  bed.network().set_faults(faults);
  bed.run_until(700.0);
  const auto& stats = bed.crawler()->stats();
  const Trace& trace = bed.crawler()->trace();
  // Exponential backoff paces retries: a fixed 15 s cadence would burn ~10+
  // attempts over a 300 s blackout.
  EXPECT_GE(stats.relogins, 3u);
  EXPECT_LE(stats.relogins, 7u);
  EXPECT_GE(stats.backoff_resets, 1u);
  ASSERT_EQ(trace.gaps().size(), 1u);
  EXPECT_LE(trace.gaps()[0].start, 130.0);
  EXPECT_GE(trace.gaps()[0].end, 400.0);
  EXPECT_GT(trace.snapshots().back().time, 600.0);
}

TEST(Crawler, TakeTraceRecordsTrailingGap) {
  TestbedConfig cfg = quick_config();
  Testbed bed(cfg);
  FaultSchedule faults;
  faults.add({FaultKind::kBlackout, 100.0, 10000.0});  // never recovers
  bed.network().set_faults(faults);
  bed.run_until(300.0);
  EXPECT_TRUE(bed.crawler()->trace().gaps().empty());  // gap still open
  const Trace trace = bed.crawler()->take_trace();
  // The unfinished outage must be materialised, not silently dropped.
  ASSERT_EQ(trace.gaps().size(), 1u);
  EXPECT_LE(trace.gaps()[0].start, 130.0);
  EXPECT_GE(trace.gaps()[0].end, 290.0);
  EXPECT_FALSE(trace.covered_at(250.0));
}

TEST(Crawler, StopEndsSampling) {
  Testbed bed(quick_config());
  bed.run_until(300.0);
  const std::size_t before = bed.crawler()->trace().size();
  bed.crawler()->stop();
  bed.run_until(600.0);
  EXPECT_EQ(bed.crawler()->trace().size(), before);
}

}  // namespace
}  // namespace slmob
