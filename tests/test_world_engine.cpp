#include "world/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace slmob {
namespace {

TEST(Engine, RunsTicksWithCorrectTimes) {
  SimEngine engine(1.0);
  std::vector<Seconds> times;
  engine.add(0, [&](Seconds now, Seconds dt) {
    times.push_back(now);
    EXPECT_DOUBLE_EQ(dt, 1.0);
  });
  engine.run_ticks(3);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[2], 2.0);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  SimEngine engine(1.0);
  int ticks = 0;
  engine.add(0, [&](Seconds, Seconds) { ++ticks; });
  engine.run_until(10.0);
  EXPECT_EQ(ticks, 10);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
  engine.run_until(10.0);  // no-op
  EXPECT_EQ(ticks, 10);
}

TEST(Engine, PriorityOrdering) {
  SimEngine engine(1.0);
  std::vector<int> order;
  engine.add(kPriorityClient, [&](Seconds, Seconds) { order.push_back(3); });
  engine.add(kPriorityWorld, [&](Seconds, Seconds) { order.push_back(0); });
  engine.add(kPriorityNetwork, [&](Seconds, Seconds) { order.push_back(2); });
  engine.add(kPriorityServer, [&](Seconds, Seconds) { order.push_back(1); });
  engine.run_ticks(1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Engine, StablePriorityPreservesInsertionOrder) {
  SimEngine engine(1.0);
  std::vector<int> order;
  engine.add(5, [&](Seconds, Seconds) { order.push_back(1); });
  engine.add(5, [&](Seconds, Seconds) { order.push_back(2); });
  engine.run_ticks(1);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, SubSecondTicks) {
  SimEngine engine(0.5);
  int ticks = 0;
  engine.add(0, [&](Seconds, Seconds dt) {
    EXPECT_DOUBLE_EQ(dt, 0.5);
    ++ticks;
  });
  engine.run_until(2.0);
  EXPECT_EQ(ticks, 4);
}

TEST(Engine, RejectsBadArguments) {
  EXPECT_THROW(SimEngine(0.0), std::invalid_argument);
  SimEngine engine(1.0);
  EXPECT_THROW(engine.add(0, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace slmob
