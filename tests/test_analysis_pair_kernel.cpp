#include "analysis/pair_kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <tuple>
#include <vector>

#include "analysis/incremental_proximity.hpp"
#include "analysis/spatial_index.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace slmob {
namespace {

using Pair = std::pair<std::uint32_t, std::uint32_t>;

std::uint64_t bits_of(double d) {
  std::uint64_t b = 0;
  std::memcpy(&b, &d, sizeof b);
  return b;
}

// (i, j, distance bits): set equality on this triple is the "same pairs,
// same distances, bit-identical" contract the kernel promises.
using DistPair = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>;

std::set<DistPair> brute_force(const std::vector<Vec3>& positions, double r) {
  std::set<DistPair> out;
  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    for (std::uint32_t j = i + 1; j < positions.size(); ++j) {
      const double d = positions[i].distance2d_to(positions[j]);
      if (d <= r) out.insert({i, j, bits_of(d)});
    }
  }
  return out;
}

std::set<DistPair> kernel_pairs(PairKernel& kernel, const std::vector<Vec3>& positions,
                                double r) {
  kernel.run(positions, r);
  std::set<DistPair> out;
  for (const PairKernel::Hit& h : kernel.hits()) {
    EXPECT_LT(h.i, h.j);
    out.insert({h.i, h.j, bits_of(std::sqrt(h.d2))});
  }
  EXPECT_EQ(out.size(), kernel.hits().size()) << "duplicate hits reported";
  return out;
}

TEST(PairKernel, SquaredRadiusThresholdIsExactBoundary) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  for (const double r : {0.3, 1.0, 10.0, 80.0, 123.456, 1e-9, 1e9}) {
    const double t = squared_radius_threshold(r);
    EXPECT_LE(std::sqrt(t), r) << "r=" << r;
    EXPECT_GT(std::sqrt(std::nextafter(t, inf)), r) << "r=" << r;
  }
  EXPECT_THROW((void)squared_radius_threshold(0.0), std::invalid_argument);
  EXPECT_THROW((void)squared_radius_threshold(-1.0), std::invalid_argument);
}

TEST(PairKernel, EmptyAndSingleSnapshots) {
  PairKernel kernel;
  kernel.run({}, 10.0);
  EXPECT_TRUE(kernel.hits().empty());
  EXPECT_EQ(kernel.size(), 0u);

  const std::vector<Vec3> one{{5.0, 5.0, 22.0}};
  kernel.run(one, 10.0);
  EXPECT_TRUE(kernel.hits().empty());
  EXPECT_EQ(kernel.size(), 1u);

  std::vector<std::uint32_t> near;
  kernel.near({5.0, 5.0, 0.0}, near);
  EXPECT_EQ(near, std::vector<std::uint32_t>{0});
  near.clear();
  kernel.near({500.0, 500.0, 0.0}, near);
  EXPECT_TRUE(near.empty());
}

TEST(PairKernel, BoundaryTiesAtExactlyR) {
  // 3-4-5 triangle: distance is exactly 5; and one pair one ulp beyond.
  const std::vector<Vec3> positions{
      {0.0, 0.0, 0.0},
      {3.0, 4.0, 0.0},
      {std::nextafter(5.0, 6.0), 4.0, 0.0},  // just over 5 from index 1? no — from (0,4)
  };
  PairKernel kernel;
  kernel.run(positions, 5.0);
  std::set<Pair> got;
  for (const auto& h : kernel.hits()) got.insert({h.i, h.j});
  EXPECT_TRUE(got.count({0, 1})) << "tie at exactly r must be included";

  // Distance one ulp above r must be excluded even though d2 may round down.
  const double r = 10.0;
  const std::vector<Vec3> tight{{0.0, 0.0, 0.0}, {std::nextafter(r, 11.0), 0.0, 0.0}};
  kernel.run(tight, r);
  EXPECT_TRUE(kernel.hits().empty());

  const std::vector<Vec3> exact{{0.0, 0.0, 0.0}, {r, 0.0, 0.0}};
  kernel.run(exact, r);
  ASSERT_EQ(kernel.hits().size(), 1u);
  EXPECT_EQ(std::sqrt(kernel.hits()[0].d2), r);
}

TEST(PairKernel, DuplicatePositionsPairAtZeroDistance) {
  const std::vector<Vec3> positions{{7.0, 7.0, 0.0}, {7.0, 7.0, 0.0}, {7.0, 7.0, 0.0}};
  PairKernel kernel;
  kernel.run(positions, 10.0);
  std::set<Pair> got;
  for (const auto& h : kernel.hits()) {
    EXPECT_EQ(h.d2, 0.0);
    got.insert({h.i, h.j});
  }
  EXPECT_EQ(got, (std::set<Pair>{{0, 1}, {0, 2}, {1, 2}}));
}

TEST(PairKernel, MatchesBruteForceDenseWithEmptyCells) {
  // Two tight clusters far apart: most grid cells in between are empty.
  Rng rng(11);
  std::vector<Vec3> positions;
  for (int i = 0; i < 60; ++i) {
    positions.push_back({rng.uniform(0.0, 30.0), rng.uniform(0.0, 30.0), 22.0});
  }
  for (int i = 0; i < 60; ++i) {
    positions.push_back({rng.uniform(900.0, 930.0), rng.uniform(900.0, 930.0), 22.0});
  }
  PairKernel kernel;
  EXPECT_EQ(kernel_pairs(kernel, positions, 10.0), brute_force(positions, 10.0));
}

TEST(PairKernel, MatchesBruteForceSparseFallback) {
  // Points scattered over a span of ~1e8 cells at r = 1: the dense cell
  // table would be enormous, so this exercises the sorted-key path,
  // including negative coordinates.
  Rng rng(12);
  std::vector<Vec3> positions;
  for (int c = 0; c < 40; ++c) {
    const double cx = rng.uniform(-5e7, 5e7);
    const double cy = rng.uniform(-5e7, 5e7);
    const int members = 1 + static_cast<int>(rng.uniform(0.0, 3.99));
    for (int m = 0; m < members; ++m) {
      positions.push_back({cx + rng.uniform(-1.5, 1.5), cy + rng.uniform(-1.5, 1.5), 0.0});
    }
  }
  PairKernel kernel;
  EXPECT_EQ(kernel_pairs(kernel, positions, 1.0), brute_force(positions, 1.0));
}

TEST(PairKernel, ScratchReuseAcrossSnapshotsStaysExact) {
  // One kernel reused across snapshots of very different sizes and radii —
  // the persistent-scratch warm path must not leak state between runs.
  PairKernel kernel;
  Rng rng(13);
  for (const int count : {150, 3, 80, 0, 1, 200, 2}) {
    for (const double r : {1.0, 10.0, 80.0}) {
      std::vector<Vec3> positions;
      for (int i = 0; i < count; ++i) {
        positions.push_back({rng.uniform(-50.0, 300.0), rng.uniform(-50.0, 300.0), 22.0});
      }
      EXPECT_EQ(kernel_pairs(kernel, positions, r), brute_force(positions, r))
          << "count=" << count << " r=" << r;
    }
  }
}

TEST(PairKernel, ClassifyMatchesPerRadiusFilter) {
  Rng rng(14);
  std::vector<Vec3> positions;
  for (int i = 0; i < 200; ++i) {
    positions.push_back({rng.uniform(0.0, 256.0), rng.uniform(0.0, 256.0), 22.0});
  }
  const std::vector<double> ranges{10.0, 25.0, 80.0};
  PairKernel kernel;
  kernel.run(positions, ranges.back());
  std::vector<PairKernel::PairList> lists(ranges.size());
  kernel.classify(ranges, lists.data());
  for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
    std::set<Pair> got(lists[ri].begin(), lists[ri].end());
    ASSERT_EQ(got.size(), lists[ri].size());
    std::set<Pair> expected;
    for (const auto& [i, j, dbits] : brute_force(positions, ranges[ri])) {
      expected.insert({i, j});
    }
    EXPECT_EQ(got, expected) << "range " << ranges[ri];
  }
}

TEST(PairKernel, NearMatchesBruteForceScan) {
  Rng rng(15);
  std::vector<Vec3> positions;
  for (int i = 0; i < 120; ++i) {
    positions.push_back({rng.uniform(-20.0, 200.0), rng.uniform(-20.0, 200.0), 22.0});
  }
  const double r = 15.0;
  PairKernel kernel;
  kernel.build(positions, r);
  std::vector<std::uint32_t> got;
  for (int q = 0; q < 50; ++q) {
    // Query points both inside and well outside the built bounding box.
    const Vec3 p{rng.uniform(-100.0, 300.0), rng.uniform(-100.0, 300.0), 0.0};
    got.clear();
    kernel.near(p, got);
    std::sort(got.begin(), got.end());
    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < positions.size(); ++i) {
      if (p.distance2d_to(positions[i]) <= r) expected.push_back(i);
    }
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

TEST(PairKernel, SpatialGridEquivalenceWithDistances) {
  Rng rng(16);
  for (const double r : {1.0, 10.0, 80.0}) {
    std::vector<Vec3> positions;
    for (int i = 0; i < 150; ++i) {
      positions.push_back({rng.uniform(-50.0, 300.0), rng.uniform(-50.0, 300.0), 22.0});
    }
    const SpatialGrid grid(positions, r);
    std::set<DistPair> got;
    for (const auto& p : grid.pairs_within_distance()) {
      got.insert({p.i, p.j, bits_of(p.distance)});
    }
    EXPECT_EQ(got, brute_force(positions, r)) << "r=" << r;
  }
}

TEST(PairKernel, IncrementalDuplicateIdSnapshotMatchesBruteForce) {
  // A snapshot with two fixes sharing an avatar id goes through the kernel's
  // transient path inside IncrementalProximity.
  Snapshot snap;
  snap.fixes.push_back({AvatarId{1}, {0.0, 0.0, 0.0}});
  snap.fixes.push_back({AvatarId{2}, {5.0, 0.0, 0.0}});
  snap.fixes.push_back({AvatarId{1}, {5.0, 4.0, 0.0}});
  snap.fixes.push_back({AvatarId{3}, {200.0, 200.0, 0.0}});
  IncrementalProximity prox({10.0});
  prox.advance(snap);
  std::set<Pair> got(prox.pairs(0).begin(), prox.pairs(0).end());
  std::set<Pair> expected;
  std::vector<Vec3> positions;
  for (const auto& f : snap.fixes) positions.push_back(f.pos);
  for (const auto& [i, j, dbits] : brute_force(positions, 10.0)) expected.insert({i, j});
  EXPECT_EQ(got, expected);
}

TEST(PairKernel, ParallelWorkersProduceIdenticalHits) {
  // Many kernels running concurrently (the ProximityCache thread_local
  // pattern) must neither race nor diverge — exercised under TSan in CI.
  Rng rng(17);
  std::vector<std::vector<Vec3>> snaps;
  for (int s = 0; s < 32; ++s) {
    std::vector<Vec3> positions;
    const int count = 20 + 10 * (s % 5);
    for (int i = 0; i < count; ++i) {
      positions.push_back({rng.uniform(0.0, 256.0), rng.uniform(0.0, 256.0), 22.0});
    }
    snaps.push_back(std::move(positions));
  }
  std::vector<std::set<DistPair>> sequential(snaps.size());
  {
    PairKernel kernel;
    for (std::size_t s = 0; s < snaps.size(); ++s) {
      sequential[s] = kernel_pairs(kernel, snaps[s], 80.0);
    }
  }
  std::vector<std::set<DistPair>> parallel_out(snaps.size());
  ThreadPool pool(4);
  parallel_for(pool, snaps.size(), [&](std::size_t s) {
    thread_local PairKernel kernel;
    parallel_out[s] = kernel_pairs(kernel, snaps[s], 80.0);
  });
  EXPECT_EQ(parallel_out, sequential);
}

class PairKernelProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double, int>> {};

TEST_P(PairKernelProperty, MatchesBruteForceWithDistances) {
  const auto [seed, radius, count] = GetParam();
  Rng rng(seed);
  std::vector<Vec3> positions;
  for (int i = 0; i < count; ++i) {
    positions.push_back({rng.uniform(-50.0, 300.0), rng.uniform(-50.0, 300.0), 22.0});
  }
  PairKernel kernel;
  EXPECT_EQ(kernel_pairs(kernel, positions, radius), brute_force(positions, radius));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PairKernelProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4), ::testing::Values(1.0, 10.0, 80.0),
                       ::testing::Values(2, 25, 150)));

}  // namespace
}  // namespace slmob
