#include "net/fault_schedule.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"

namespace slmob {
namespace {

TEST(FaultSchedule, EmptyByDefault) {
  FaultSchedule faults;
  EXPECT_TRUE(faults.empty());
  EXPECT_FALSE(faults.drops_datagram(0.0, 1, 2));
  EXPECT_DOUBLE_EQ(faults.extra_loss_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(faults.extra_latency_at(0.0), 0.0);
  EXPECT_FALSE(faults.region_down_at(0.0));
  EXPECT_DOUBLE_EQ(faults.capacity_factor_at(0.0), 1.0);
}

TEST(FaultSchedule, WindowsAreHalfOpen) {
  FaultSchedule faults;
  faults.add({FaultKind::kBlackout, 100.0, 200.0});
  EXPECT_FALSE(faults.drops_datagram(99.9, 1, 2));
  EXPECT_TRUE(faults.drops_datagram(100.0, 1, 2));
  EXPECT_TRUE(faults.drops_datagram(199.9, 1, 2));
  EXPECT_FALSE(faults.drops_datagram(200.0, 1, 2));
}

TEST(FaultSchedule, RejectsMalformedWindows) {
  FaultSchedule faults;
  EXPECT_THROW(faults.add({FaultKind::kBlackout, 10.0, 10.0}), std::invalid_argument);
  EXPECT_THROW(faults.add({FaultKind::kBlackout, 20.0, 10.0}), std::invalid_argument);
  EXPECT_THROW(faults.add({FaultKind::kBlackout, -1.0, 10.0}), std::invalid_argument);
  EXPECT_THROW(faults.add({FaultKind::kBurstLoss, 0.0, 10.0, 1.5}), std::invalid_argument);
  EXPECT_THROW(faults.add({FaultKind::kLatencySpike, 0.0, 10.0, -0.5}),
               std::invalid_argument);
}

TEST(FaultSchedule, PartitionsAreOneWay) {
  FaultSchedule faults;
  FaultWindow inbound{FaultKind::kPartitionInbound, 0.0, 100.0};
  inbound.node = 7;  // node 7 receives nothing
  faults.add(inbound);
  EXPECT_TRUE(faults.drops_datagram(50.0, 3, 7));
  EXPECT_FALSE(faults.drops_datagram(50.0, 7, 3));

  FaultSchedule out_faults;
  FaultWindow outbound{FaultKind::kPartitionOutbound, 0.0, 100.0};
  outbound.node = 7;  // node 7 sends nothing
  out_faults.add(outbound);
  EXPECT_TRUE(out_faults.drops_datagram(50.0, 7, 3));
  EXPECT_FALSE(out_faults.drops_datagram(50.0, 3, 7));
}

TEST(FaultSchedule, BurstLossComposes) {
  FaultSchedule faults;
  faults.add({FaultKind::kBurstLoss, 0.0, 100.0, 0.5});
  faults.add({FaultKind::kBurstLoss, 50.0, 150.0, 0.5});
  EXPECT_DOUBLE_EQ(faults.extra_loss_at(25.0), 0.5);
  // Overlap: 1 - (1-0.5)(1-0.5) = 0.75, not 1.0.
  EXPECT_DOUBLE_EQ(faults.extra_loss_at(75.0), 0.75);
  EXPECT_DOUBLE_EQ(faults.extra_loss_at(125.0), 0.5);
  EXPECT_DOUBLE_EQ(faults.extra_loss_at(200.0), 0.0);
}

TEST(FaultSchedule, LatencySpikesSum) {
  FaultSchedule faults;
  faults.add({FaultKind::kLatencySpike, 0.0, 100.0, 0.5});
  faults.add({FaultKind::kLatencySpike, 50.0, 150.0, 1.0});
  EXPECT_DOUBLE_EQ(faults.extra_latency_at(75.0), 1.5);
  EXPECT_DOUBLE_EQ(faults.extra_latency_at(125.0), 1.0);
}

TEST(FaultSchedule, RegionQueriesIgnoreTransportKinds) {
  FaultSchedule faults;
  faults.add({FaultKind::kBlackout, 0.0, 100.0});
  EXPECT_FALSE(faults.region_down_at(50.0));
  faults.add({FaultKind::kRegionCrash, 200.0, 260.0});
  EXPECT_TRUE(faults.region_down_at(200.0));
  EXPECT_FALSE(faults.region_down_at(260.0));
  faults.add({FaultKind::kCapacityFlap, 300.0, 400.0, 0.25});
  EXPECT_DOUBLE_EQ(faults.capacity_factor_at(350.0), 0.25);
  EXPECT_DOUBLE_EQ(faults.capacity_factor_at(450.0), 1.0);
}

TEST(FaultSchedule, ScenariosAreDeterministicPerSeed) {
  for (const std::string& name : FaultSchedule::scenario_names()) {
    const auto a = FaultSchedule::scenario(name, 6 * 3600.0, 42);
    const auto b = FaultSchedule::scenario(name, 6 * 3600.0, 42);
    ASSERT_EQ(a.windows().size(), b.windows().size()) << name;
    for (std::size_t i = 0; i < a.windows().size(); ++i) {
      EXPECT_EQ(a.windows()[i].kind, b.windows()[i].kind) << name;
      EXPECT_DOUBLE_EQ(a.windows()[i].start, b.windows()[i].start) << name;
      EXPECT_DOUBLE_EQ(a.windows()[i].end, b.windows()[i].end) << name;
      EXPECT_DOUBLE_EQ(a.windows()[i].magnitude, b.windows()[i].magnitude) << name;
    }
  }
}

TEST(FaultSchedule, BlackoutScenarioHasTwoOutages) {
  // The canonical robustness scenario: two transport blackouts over the run.
  const auto faults = FaultSchedule::scenario("blackouts", 6 * 3600.0, 42);
  const auto windows = faults.windows_of(FaultKind::kBlackout);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_LT(windows[0].end, windows[1].start);
  for (const auto& w : windows) EXPECT_DOUBLE_EQ(w.end - w.start, 600.0);
}

TEST(FaultSchedule, UnknownScenarioThrows) {
  EXPECT_THROW((void)FaultSchedule::scenario("earthquake", 3600.0, 1),
               std::invalid_argument);
}

TEST(NetworkFaults, BlackoutDropsEverything) {
  NetworkParams params;
  FaultSchedule faults;
  faults.add({FaultKind::kBlackout, 10.0, 20.0});
  SimNetwork net(params, 1);
  net.set_faults(faults);
  int received = 0;
  const NodeId a = net.register_node(nullptr);
  const NodeId b = net.register_node(
      [&](NodeId, std::span<const std::uint8_t>) { ++received; });
  for (Seconds t = 0.0; t < 30.0; t += 1.0) {
    net.send(a, b, {1});
    net.tick(t, 1.0);
  }
  net.tick(30.0, 5.0);  // drain in-flight datagrams
  EXPECT_EQ(net.stats().fault_dropped, 10u);
  EXPECT_EQ(received, 20);
}

TEST(NetworkFaults, BurstLossDropsApproximatelyAtRate) {
  NetworkParams params;
  FaultSchedule faults;
  faults.add({FaultKind::kBurstLoss, 0.0, 1.0, 0.4});
  SimNetwork net(params, 2);
  net.set_faults(faults);
  int received = 0;
  const NodeId a = net.register_node(nullptr);
  const NodeId b = net.register_node(
      [&](NodeId, std::span<const std::uint8_t>) { ++received; });
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) net.send(a, b, {1});
  net.tick(0.0, 5.0);
  EXPECT_NEAR(received / static_cast<double>(kN), 0.6, 0.02);
}

TEST(NetworkFaults, LatencySpikeDelaysDelivery) {
  NetworkParams params;
  params.latency_min = 0.01;
  params.latency_max = 0.05;
  FaultSchedule faults;
  faults.add({FaultKind::kLatencySpike, 0.0, 10.0, 3.0});
  SimNetwork net(params, 3);
  net.set_faults(faults);
  int received = 0;
  const NodeId a = net.register_node(nullptr);
  const NodeId b = net.register_node(
      [&](NodeId, std::span<const std::uint8_t>) { ++received; });
  net.send(a, b, {1});
  net.tick(0.0, 1.0);
  EXPECT_EQ(received, 0);  // would have arrived without the spike
  net.tick(1.0, 1.0);
  net.tick(2.0, 1.0);
  net.tick(3.0, 1.0);
  net.tick(4.0, 1.0);
  EXPECT_EQ(received, 1);
}

TEST(NetworkFaults, EmptyScheduleIsBitIdentical) {
  // A network carrying an explicitly-set empty schedule must consume the
  // exact same RNG stream as one never touched by fault code.
  NetworkParams params;
  params.loss_rate = 0.5;
  SimNetwork plain(params, 77);
  SimNetwork faulted(params, 77);
  faulted.set_faults(FaultSchedule{});
  std::vector<int> got_plain;
  std::vector<int> got_faulted;
  const NodeId a1 = plain.register_node(nullptr);
  const NodeId b1 = plain.register_node(
      [&](NodeId, std::span<const std::uint8_t> p) { got_plain.push_back(p[0]); });
  const NodeId a2 = faulted.register_node(nullptr);
  const NodeId b2 = faulted.register_node(
      [&](NodeId, std::span<const std::uint8_t> p) { got_faulted.push_back(p[0]); });
  for (int i = 0; i < 200; ++i) {
    plain.send(a1, b1, {static_cast<std::uint8_t>(i)});
    faulted.send(a2, b2, {static_cast<std::uint8_t>(i)});
  }
  plain.tick(0.0, 1.0);
  faulted.tick(0.0, 1.0);
  EXPECT_EQ(got_plain, got_faulted);
}

}  // namespace
}  // namespace slmob
