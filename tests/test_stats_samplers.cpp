#include "stats/samplers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace slmob {
namespace {

TEST(Samplers, ParetoRespectsScale) {
  ParetoSampler pareto(2.0, 1.5);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(pareto.sample(rng), 2.0);
}

TEST(Samplers, ParetoTailExponent) {
  // For Pareto(xm, alpha): P[X > 2*xm] = 2^-alpha.
  ParetoSampler pareto(1.0, 2.0);
  Rng rng(2);
  int above = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    if (pareto.sample(rng) > 2.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / kN, 0.25, 0.01);
}

TEST(Samplers, ParetoRejectsBadParams) {
  EXPECT_THROW(ParetoSampler(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ParetoSampler(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ParetoSampler(-1.0, 1.0), std::invalid_argument);
}

TEST(Samplers, BoundedParetoWithinBounds) {
  BoundedParetoSampler bp(5.0, 1.2, 500.0);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const double x = bp.sample(rng);
    EXPECT_GE(x, 5.0);
    EXPECT_LE(x, 500.0);
  }
}

TEST(Samplers, BoundedParetoRejectsBadParams) {
  EXPECT_THROW(BoundedParetoSampler(5.0, 1.0, 5.0), std::invalid_argument);
  EXPECT_THROW(BoundedParetoSampler(5.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BoundedParetoSampler(0.0, 1.0, 10.0), std::invalid_argument);
}

TEST(Samplers, LogNormalMedian) {
  LogNormalSampler ln(600.0, 1.0);
  Rng rng(4);
  int below = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (ln.sample(rng) < 600.0) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / kN, 0.5, 0.01);
}

TEST(Samplers, LogNormalPositive) {
  LogNormalSampler ln(10.0, 2.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(ln.sample(rng), 0.0);
}

TEST(Samplers, ZipfFavoursLowRanks) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(6);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[5], 0);
}

TEST(Samplers, ZipfPmfSumsToOne) {
  ZipfSampler zipf(8, 1.3);
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Samplers, CategoricalMatchesWeights) {
  CategoricalSampler cat({1.0, 3.0, 0.0, 6.0});
  Rng rng(7);
  std::vector<int> counts(4, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[cat.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.6, 0.01);
}

TEST(Samplers, CategoricalRejectsBadWeights) {
  EXPECT_THROW(CategoricalSampler({}), std::invalid_argument);
  EXPECT_THROW(CategoricalSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(CategoricalSampler({1.0, -0.5}), std::invalid_argument);
}

// Property: the bounded Pareto truncated-CDF inversion matches the
// analytic CDF at several probe points, for a sweep of shapes.
class BoundedParetoProperty : public ::testing::TestWithParam<double> {};

TEST_P(BoundedParetoProperty, MatchesAnalyticCdf) {
  const double alpha = GetParam();
  const double xm = 2.0;
  const double cap = 200.0;
  BoundedParetoSampler bp(xm, alpha, cap);
  Rng rng(42);
  constexpr int kN = 100000;
  std::vector<double> samples(kN);
  for (auto& s : samples) s = bp.sample(rng);
  const auto analytic_cdf = [&](double x) {
    const double ha = std::pow(xm / cap, alpha);
    return (1.0 - std::pow(xm / x, alpha)) / (1.0 - ha);
  };
  for (const double probe : {3.0, 5.0, 20.0, 100.0}) {
    const auto below = static_cast<double>(
        std::count_if(samples.begin(), samples.end(), [&](double s) { return s <= probe; }));
    EXPECT_NEAR(below / kN, analytic_cdf(probe), 0.01) << "alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BoundedParetoProperty,
                         ::testing::Values(0.8, 1.05, 1.3, 1.7, 2.5));

}  // namespace
}  // namespace slmob
