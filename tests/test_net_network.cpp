#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace slmob {
namespace {

TEST(Network, DeliversWithinLatencyBound) {
  NetworkParams params;
  params.latency_min = 0.01;
  params.latency_max = 0.05;
  SimNetwork net(params, 1);
  std::vector<std::vector<std::uint8_t>> received;
  const NodeId a = net.register_node(nullptr);
  const NodeId b = net.register_node([&](NodeId, std::span<const std::uint8_t> bytes) {
    received.emplace_back(bytes.begin(), bytes.end());
  });
  net.send(a, b, {1, 2, 3});
  net.tick(0.0, 1.0);  // latency < 1 tick: must arrive
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Network, NotDeliveredBeforeLatency) {
  NetworkParams params;
  params.latency_min = 5.0;
  params.latency_max = 6.0;
  SimNetwork net(params, 1);
  int received = 0;
  const NodeId a = net.register_node(nullptr);
  const NodeId b = net.register_node(
      [&](NodeId, std::span<const std::uint8_t>) { ++received; });
  net.send(a, b, {1});
  net.tick(0.0, 1.0);
  EXPECT_EQ(received, 0);
  for (Seconds t = 1.0; t < 8.0; t += 1.0) net.tick(t, 1.0);
  EXPECT_EQ(received, 1);
}

TEST(Network, LossDropsApproximatelyAtRate) {
  NetworkParams params;
  params.loss_rate = 0.3;
  SimNetwork net(params, 2);
  int received = 0;
  const NodeId a = net.register_node(nullptr);
  const NodeId b = net.register_node(
      [&](NodeId, std::span<const std::uint8_t>) { ++received; });
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) net.send(a, b, {1});
  net.tick(0.0, 5.0);
  EXPECT_NEAR(received / static_cast<double>(kN), 0.7, 0.02);
  EXPECT_EQ(net.stats().lost + net.stats().delivered, static_cast<std::uint64_t>(kN));
}

TEST(Network, OversizeDatagramDropped) {
  NetworkParams params;
  params.mtu = 100;
  SimNetwork net(params, 3);
  int received = 0;
  const NodeId a = net.register_node(nullptr);
  const NodeId b = net.register_node(
      [&](NodeId, std::span<const std::uint8_t>) { ++received; });
  net.send(a, b, std::vector<std::uint8_t>(101, 0));
  net.tick(0.0, 1.0);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().oversize_dropped, 1u);
}

TEST(Network, UnknownDestinationThrows) {
  SimNetwork net({}, 4);
  const NodeId a = net.register_node(nullptr);
  EXPECT_THROW(net.send(a, 42, {1}), std::invalid_argument);
}

TEST(Network, SourceNodeIsReported) {
  SimNetwork net({}, 5);
  NodeId seen_from = 999;
  const NodeId a = net.register_node(nullptr);
  const NodeId b = net.register_node(
      [&](NodeId from, std::span<const std::uint8_t>) { seen_from = from; });
  net.send(a, b, {1});
  net.tick(0.0, 1.0);
  EXPECT_EQ(seen_from, a);
}

TEST(Network, DeterministicForSeed) {
  NetworkParams params;
  params.loss_rate = 0.5;
  SimNetwork n1(params, 77);
  SimNetwork n2(params, 77);
  std::vector<int> got1;
  std::vector<int> got2;
  const NodeId a1 = n1.register_node(nullptr);
  const NodeId b1 = n1.register_node(
      [&](NodeId, std::span<const std::uint8_t> p) { got1.push_back(p[0]); });
  const NodeId a2 = n2.register_node(nullptr);
  const NodeId b2 = n2.register_node(
      [&](NodeId, std::span<const std::uint8_t> p) { got2.push_back(p[0]); });
  for (int i = 0; i < 100; ++i) {
    n1.send(a1, b1, {static_cast<std::uint8_t>(i)});
    n2.send(a2, b2, {static_cast<std::uint8_t>(i)});
  }
  n1.tick(0.0, 1.0);
  n2.tick(0.0, 1.0);
  EXPECT_EQ(got1, got2);
}

TEST(Network, RejectsBadParams) {
  NetworkParams params;
  params.loss_rate = 1.5;
  EXPECT_THROW(SimNetwork(params, 1), std::invalid_argument);
  params = {};
  params.latency_min = 0.5;
  params.latency_max = 0.1;
  EXPECT_THROW(SimNetwork(params, 1), std::invalid_argument);
}

}  // namespace
}  // namespace slmob
