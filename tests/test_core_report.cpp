#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace slmob {
namespace {

ExperimentResults quick_results() {
  ExperimentConfig cfg;
  cfg.archetype = LandArchetype::kDanceIsland;
  cfg.duration = 0.5 * kSecondsPerHour;
  cfg.seed = 8;
  return run_experiment(cfg);
}

TEST(Report, ContainsAllSections) {
  const std::string report = render_report(quick_results());
  EXPECT_NE(report.find("# Mobility measurement report: Dance"), std::string::npos);
  EXPECT_NE(report.find("## Trace"), std::string::npos);
  EXPECT_NE(report.find("## Contact opportunities"), std::string::npos);
  EXPECT_NE(report.find("## Line-of-sight networks"), std::string::npos);
  EXPECT_NE(report.find("## Space and trips"), std::string::npos);
  EXPECT_NE(report.find("contact time (r=10m, s)"), std::string::npos);
  EXPECT_NE(report.find("contact time (r=80m, s)"), std::string::npos);
  EXPECT_NE(report.find("travel length (m)"), std::string::npos);
}

TEST(Report, SeriesOptIn) {
  const ExperimentResults res = quick_results();
  EXPECT_EQ(render_report(res).find("<details>"), std::string::npos);
  ReportOptions options;
  options.include_series = true;
  EXPECT_NE(render_report(res, options).find("<details>"), std::string::npos);
}

TEST(Report, HandlesEmptyResults) {
  // An empty trace analysed directly must not crash the renderer.
  ExperimentResults res = analyze_trace(Trace("empty", 10.0), {10.0});
  const std::string report = render_report(res);
  EXPECT_NE(report.find("| unique visitors | 0 |"), std::string::npos);
  EXPECT_NE(report.find("| contact time (r=10m, s) | 0 | - |"), std::string::npos);
}

TEST(Report, WriteToFile) {
  const std::string path = ::testing::TempDir() + "/slmob_report_test.md";
  write_report(quick_results(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("# Mobility measurement report"), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

TEST(Report, WriteToBadPathThrows) {
  EXPECT_THROW(write_report(quick_results(), "/nonexistent/dir/report.md"),
               std::runtime_error);
}

}  // namespace
}  // namespace slmob
