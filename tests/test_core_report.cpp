#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace slmob {
namespace {

ExperimentResults quick_results() {
  ExperimentConfig cfg;
  cfg.archetype = LandArchetype::kDanceIsland;
  cfg.duration = 0.5 * kSecondsPerHour;
  cfg.seed = 8;
  return run_experiment(cfg);
}

TEST(Report, ContainsAllSections) {
  const std::string report = render_report(quick_results());
  EXPECT_NE(report.find("# Mobility measurement report: Dance"), std::string::npos);
  EXPECT_NE(report.find("## Trace"), std::string::npos);
  EXPECT_NE(report.find("## Contact opportunities"), std::string::npos);
  EXPECT_NE(report.find("## Line-of-sight networks"), std::string::npos);
  EXPECT_NE(report.find("## Space and trips"), std::string::npos);
  EXPECT_NE(report.find("contact time (r=10m, s)"), std::string::npos);
  EXPECT_NE(report.find("contact time (r=80m, s)"), std::string::npos);
  EXPECT_NE(report.find("travel length (m)"), std::string::npos);
}

TEST(Report, TransportSectionSurfacesCircuitAndNetworkStats) {
  const ExperimentResults res = quick_results();
  const std::string report = render_report(res);
  EXPECT_NE(report.find("## Transport"), std::string::npos);
  EXPECT_NE(report.find("| datagrams sent | "), std::string::npos);
  EXPECT_NE(report.find("| retransmits | "), std::string::npos);
  EXPECT_NE(report.find("| RTT samples | "), std::string::npos);
  // A real crawler run moves real packets; the section must not be all-zero.
  EXPECT_GT(res.circuit_stats.packets_sent, 0u);
  EXPECT_GT(res.circuit_stats.rtt_samples, 0u);
  EXPECT_GT(res.network_stats.sent, 0u);
}

TEST(Report, ShardStatsCsvOneRowPerShard) {
  std::vector<ShardResult> shards(2);
  shards[0].archetype = LandArchetype::kApfelLand;
  shards[0].seed = 1;
  shards[0].circuit_stats.retransmits = 7;
  shards[0].network_stats.fault_dropped = 13;
  shards[1].archetype = LandArchetype::kDanceIsland;
  shards[1].seed = 2;
  const std::string csv = shard_stats_csv(shards);

  std::size_t lines = 0;
  for (const char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, 3u);  // header + 2 shards
  EXPECT_NE(csv.find("retransmits"), std::string::npos);
  EXPECT_NE(csv.find("net_fault_dropped"), std::string::npos);
  EXPECT_NE(csv.find("Apfelland,1,"), std::string::npos);
  EXPECT_NE(csv.find(",7,"), std::string::npos);
}

TEST(Report, SeriesOptIn) {
  const ExperimentResults res = quick_results();
  EXPECT_EQ(render_report(res).find("<details>"), std::string::npos);
  ReportOptions options;
  options.include_series = true;
  EXPECT_NE(render_report(res, options).find("<details>"), std::string::npos);
}

TEST(Report, HandlesEmptyResults) {
  // An empty trace analysed directly must not crash the renderer.
  ExperimentResults res = analyze_trace(Trace("empty", 10.0), {10.0});
  const std::string report = render_report(res);
  EXPECT_NE(report.find("| unique visitors | 0 |"), std::string::npos);
  EXPECT_NE(report.find("| contact time (r=10m, s) | 0 | - |"), std::string::npos);
}

TEST(Report, WriteToFile) {
  const std::string path = ::testing::TempDir() + "/slmob_report_test.md";
  write_report(quick_results(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("# Mobility measurement report"), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

TEST(Report, WriteToBadPathThrows) {
  EXPECT_THROW(write_report(quick_results(), "/nonexistent/dir/report.md"),
               std::runtime_error);
}

}  // namespace
}  // namespace slmob
