// Streaming trace access (trace/stream.hpp): every TraceStream flavour must
// emit the same events as walking the finished Trace, honouring the ordering
// contract — a gap [start, end) is emitted before any snapshot with
// time >= start — and a torn journal must stream exactly what
// salvage_journal would reconstruct.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/journal.hpp"
#include "trace/serialize.hpp"
#include "trace/stream.hpp"
#include "util/rng.hpp"

namespace slmob {
namespace {

Trace small_trace(std::uint64_t seed, std::size_t snapshots, std::size_t users) {
  Rng rng(seed);
  Trace t("stream-test", 10.0);
  for (std::size_t s = 0; s < snapshots; ++s) {
    Snapshot snap;
    snap.time = static_cast<double>(s) * 10.0;
    for (std::size_t u = 0; u < users; ++u) {
      if (rng.uniform(0.0, 1.0) < 0.3) continue;
      snap.fixes.push_back({AvatarId{static_cast<std::uint32_t>(u + 1)},
                            {rng.uniform(0.0, 255.0), rng.uniform(0.0, 255.0), 22.0}});
    }
    t.add(std::move(snap));
  }
  return t;
}

// Flattened event record for sequence comparison across stream kinds.
struct Recorded {
  StreamEventKind kind;
  Seconds time;
  std::size_t fixes;   // kSnapshot only
  Seconds gap_end;     // kGap only
};

std::vector<Recorded> drain(TraceStream& stream) {
  std::vector<Recorded> out;
  for (;;) {
    const StreamEvent ev = stream.next();
    if (ev.kind == StreamEventKind::kEnd) break;
    Recorded r{ev.kind, 0.0, 0, 0.0};
    switch (ev.kind) {
      case StreamEventKind::kSnapshot:
        r.time = ev.snapshot->time;
        r.fixes = ev.snapshot->fixes.size();
        break;
      case StreamEventKind::kGap:
        r.time = ev.gap.start;
        r.gap_end = ev.gap.end;
        break;
      case StreamEventKind::kSessionEvent:
      case StreamEventKind::kRateChange:
        r.time = ev.time;
        break;
      case StreamEventKind::kEnd:
        break;
    }
    out.push_back(r);
  }
  // kEnd must be sticky.
  EXPECT_EQ(stream.next().kind, StreamEventKind::kEnd);
  return out;
}

void expect_same_events(const std::vector<Recorded>& a, const std::vector<Recorded>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].kind, b[i].kind) << "event " << i;
    ASSERT_EQ(a[i].time, b[i].time) << "event " << i;
    ASSERT_EQ(a[i].fixes, b[i].fixes) << "event " << i;
    ASSERT_EQ(a[i].gap_end, b[i].gap_end) << "event " << i;
  }
}

// Asserts the stream ordering contract over a recorded sequence.
void expect_gap_contract(const std::vector<Recorded>& events) {
  for (std::size_t g = 0; g < events.size(); ++g) {
    if (events[g].kind != StreamEventKind::kGap) continue;
    for (std::size_t s = 0; s < g; ++s) {
      if (events[s].kind != StreamEventKind::kSnapshot) continue;
      EXPECT_LT(events[s].time, events[g].time)
          << "snapshot at " << events[s].time << " emitted before gap ["
          << events[g].time << ", " << events[g].gap_end << ")";
    }
  }
}

struct TempPath {
  std::string path;
  explicit TempPath(const char* name)
      : path(::testing::TempDir() + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

TEST(MemoryTraceStream, EmitsSnapshotsInOrder) {
  const Trace trace = small_trace(1, 12, 8);
  MemoryTraceStream stream(trace);
  EXPECT_EQ(stream.land_name(), "stream-test");
  EXPECT_EQ(stream.sampling_interval(), 10.0);
  const auto events = drain(stream);
  ASSERT_EQ(events.size(), trace.snapshots().size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, StreamEventKind::kSnapshot);
    EXPECT_EQ(events[i].time, trace.snapshots()[i].time);
    EXPECT_EQ(events[i].fixes, trace.snapshots()[i].fixes.size());
  }
}

TEST(MemoryTraceStream, GapsMergeOrderedPerContract) {
  Trace trace = small_trace(2, 20, 6);
  trace.add_gap(35.0, 55.0);    // between snapshots 3 and 6
  trace.add_gap(120.0, 130.0);  // contains snapshot 12
  MemoryTraceStream stream(trace);
  const auto events = drain(stream);
  ASSERT_EQ(events.size(), trace.snapshots().size() + 2);
  expect_gap_contract(events);
  // The first gap precedes the snapshot at t=40 (first snapshot >= 35).
  const auto gap_it = std::find_if(events.begin(), events.end(), [](const Recorded& e) {
    return e.kind == StreamEventKind::kGap;
  });
  ASSERT_NE(gap_it, events.end());
  const auto next_snap = std::find_if(gap_it, events.end(), [](const Recorded& e) {
    return e.kind == StreamEventKind::kSnapshot;
  });
  ASSERT_NE(next_snap, events.end());
  EXPECT_EQ(next_snap->time, 40.0);
}

TEST(MemoryTraceStream, OwningConstructorOutlivesSource) {
  Trace trace = small_trace(3, 5, 4);
  const std::size_t want = trace.snapshots().size();
  MemoryTraceStream stream(std::move(trace));
  EXPECT_EQ(drain(stream).size(), want);
}

TEST(SltFileStream, MatchesMemoryStreamExactly) {
  Trace trace = small_trace(4, 30, 10);
  trace.add_gap(95.0, 115.0);
  TempPath tmp("stream_roundtrip.slt");
  save_trace(trace, tmp.path);

  SltFileStream file_stream(tmp.path);
  EXPECT_EQ(file_stream.land_name(), trace.land_name());
  EXPECT_EQ(file_stream.sampling_interval(), trace.sampling_interval());
  MemoryTraceStream mem_stream(trace);
  expect_same_events(drain(file_stream), drain(mem_stream));
}

TEST(SltFileStream, FixContentsSurviveRoundTrip) {
  TempPath tmp("stream_fixes.slt");
  save_trace(small_trace(5, 6, 5), tmp.path);
  // Compare against the batch loader: the .slt format stores positions as
  // f32, so the stream must agree with load_trace, not the pre-save trace.
  const Trace trace = load_trace(tmp.path);
  SltFileStream stream(tmp.path);
  for (const auto& want : trace.snapshots()) {
    const StreamEvent ev = stream.next();
    ASSERT_EQ(ev.kind, StreamEventKind::kSnapshot);
    ASSERT_EQ(ev.snapshot->fixes.size(), want.fixes.size());
    for (std::size_t i = 0; i < want.fixes.size(); ++i) {
      EXPECT_EQ(ev.snapshot->fixes[i].id, want.fixes[i].id);
      EXPECT_EQ(ev.snapshot->fixes[i].pos.x, want.fixes[i].pos.x);
      EXPECT_EQ(ev.snapshot->fixes[i].pos.y, want.fixes[i].pos.y);
      EXPECT_EQ(ev.snapshot->fixes[i].pos.z, want.fixes[i].pos.z);
    }
  }
  EXPECT_EQ(stream.next().kind, StreamEventKind::kEnd);
}

TEST(SltFileStream, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW(SltFileStream("/nonexistent/path.slt"), std::runtime_error);
  TempPath tmp("stream_corrupt.slt");
  std::FILE* f = std::fopen(tmp.path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  ASSERT_EQ(std::fclose(f), 0);
  EXPECT_ANY_THROW(SltFileStream{tmp.path});
}

TEST(JournalFileStream, CleanJournalStreamsLikeSalvagedTrace) {
  const Trace trace = small_trace(6, 15, 8);
  TempPath tmp("stream_clean.sltj");
  {
    TraceJournalWriter w(tmp.path, 150.0);
    w.begin(trace.land_name(), trace.sampling_interval());
    for (std::size_t i = 0; i < trace.snapshots().size(); ++i) {
      if (i == 4) {
        w.append_gap_open(38.0);
        w.append_gap_close(38.0, 40.0);
      }
      w.append_snapshot(trace.snapshots()[i]);
    }
    w.append_session(100.0, SessionEvent::kRelogin, "test");
    w.append_end(150.0);
  }

  const JournalSalvage salvage = salvage_journal(tmp.path);
  EXPECT_FALSE(salvage.torn);
  EXPECT_TRUE(salvage.clean_end);

  JournalFileStream stream(tmp.path);
  const auto events = drain(stream);
  EXPECT_TRUE(stream.clean_end());
  EXPECT_FALSE(stream.torn());
  EXPECT_EQ(stream.snapshot_frames(), trace.snapshots().size());
  EXPECT_EQ(stream.session_events(), 1u);
  EXPECT_EQ(stream.bytes_kept(), salvage.bytes_kept);
  expect_gap_contract(events);

  // Dropping session events, the sequence equals streaming the salvaged trace.
  std::vector<Recorded> data_events;
  for (const auto& e : events) {
    if (e.kind != StreamEventKind::kSessionEvent) data_events.push_back(e);
  }
  MemoryTraceStream mem(salvage.trace);
  expect_same_events(data_events, drain(mem));
}

TEST(JournalFileStream, TornTailMatchesSalvageAtEveryTruncation) {
  const Trace trace = small_trace(7, 10, 6);
  TempPath tmp("stream_torn.sltj");
  {
    TraceJournalWriter w(tmp.path, 100.0);
    w.begin(trace.land_name(), trace.sampling_interval());
    for (const auto& snap : trace.snapshots()) w.append_snapshot(snap);
    w.append_end(100.0);
  }
  std::FILE* f = std::fopen(tmp.path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  std::fclose(f);

  // Truncate at a spread of offsets (every 7 bytes); the streamed events must
  // equal salvage_journal's reconstruction at each one.
  TempPath cut("stream_torn_cut.sltj");
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(full));
  f = std::fopen(tmp.path.c_str(), "rb");
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  std::fclose(f);
  // A file truncated inside the header or kBegin frame is rejected by both
  // salvage and streaming (never held one complete record); start tearing
  // after the first frame: 6-byte header + 8-byte frame header + payload.
  const long first_frame_end =
      6 + 8 +
      static_cast<long>(bytes[6] | (bytes[7] << 8) | (bytes[8] << 16) | (bytes[9] << 24));
  for (long len = first_frame_end; len < full; len += 7) {
    std::FILE* out = std::fopen(cut.path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, static_cast<std::size_t>(len), out),
              static_cast<std::size_t>(len));
    ASSERT_EQ(std::fclose(out), 0);

    const JournalSalvage salvage = salvage_journal(cut.path);
    JournalFileStream stream(cut.path);
    std::vector<Recorded> data_events;
    for (const auto& e : drain(stream)) {
      if (e.kind != StreamEventKind::kSessionEvent) data_events.push_back(e);
    }
    EXPECT_EQ(stream.torn(), salvage.torn) << "len " << len;
    EXPECT_EQ(stream.bytes_kept(), salvage.bytes_kept) << "len " << len;
    MemoryTraceStream mem(salvage.trace);
    expect_same_events(data_events, drain(mem));
  }
}

TEST(GapTracker, AnswersLikeTraceOnTheSameGaps) {
  Trace trace("gap-test", 10.0);
  for (int i = 0; i < 30; ++i) {
    Snapshot s;
    s.time = i * 10.0;
    trace.add(std::move(s));
  }
  trace.add_gap(45.0, 75.0);
  trace.add_gap(200.0, 230.0);

  GapTracker tracker;
  for (const auto& g : trace.gaps()) tracker.add(g.start, g.end);
  EXPECT_TRUE(tracker.any());
  EXPECT_EQ(tracker.gaps().size(), 2u);
  EXPECT_EQ(tracker.gap_seconds(), 60.0);
  for (double t = 0.0; t <= 300.0; t += 5.0) {
    EXPECT_EQ(tracker.covered_at(t), trace.covered_at(t)) << "t=" << t;
  }
  for (double t0 = 0.0; t0 <= 280.0; t0 += 20.0) {
    EXPECT_EQ(tracker.spans_gap(t0, t0 + 30.0), trace.spans_gap(t0, t0 + 30.0));
  }
  // Truncation point: start of the first gap ending after t.
  EXPECT_EQ(tracker.next_gap_start(10.0), 45.0);
  EXPECT_EQ(tracker.next_gap_start(100.0), 200.0);
  EXPECT_EQ(tracker.next_gap_start(250.0), 250.0);  // past the last gap
}

TEST(GapTracker, RejectsInvalidGaps) {
  GapTracker tracker;
  EXPECT_THROW(tracker.add(10.0, 10.0), std::invalid_argument);
  tracker.add(10.0, 20.0);
  EXPECT_THROW(tracker.add(15.0, 30.0), std::invalid_argument);  // overlap
  EXPECT_THROW(tracker.add(5.0, 8.0), std::invalid_argument);    // out of order
}

TEST(OpenTraceStream, DispatchesOnExtension) {
  Trace trace = small_trace(8, 8, 5);
  trace.add_gap(25.0, 45.0);

  TempPath slt("dispatch.slt");
  save_trace(trace, slt.path);
  auto a = open_trace_stream(slt.path);
  EXPECT_NE(dynamic_cast<SltFileStream*>(a.get()), nullptr);

  TempPath csv("dispatch.csv");
  std::FILE* f = std::fopen(csv.path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const std::string text = trace_to_csv(trace);
  ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
  ASSERT_EQ(std::fclose(f), 0);
  auto b = open_trace_stream(csv.path);
  EXPECT_NE(dynamic_cast<MemoryTraceStream*>(b.get()), nullptr);

  TempPath sltj("dispatch.sltj");
  {
    TraceJournalWriter w(sltj.path, 0.0);
    w.begin(trace.land_name(), trace.sampling_interval());
    for (const auto& snap : trace.snapshots()) w.append_snapshot(snap);
    w.append_end(80.0);
  }
  auto c = open_trace_stream(sltj.path);
  EXPECT_NE(dynamic_cast<JournalFileStream*>(c.get()), nullptr);

  // All three agree on the snapshot sequence.
  const auto ea = drain(*a);
  const auto eb = drain(*b);
  auto snaps_of = [](const std::vector<Recorded>& evs) {
    std::vector<Recorded> out;
    for (const auto& e : evs) {
      if (e.kind == StreamEventKind::kSnapshot) out.push_back(e);
    }
    return out;
  };
  expect_same_events(snaps_of(ea), snaps_of(eb));
  expect_same_events(snaps_of(ea), snaps_of(drain(*c)));
}

TEST(DriveStream, PumpsEveryEventIntoTheSink) {
  Trace trace = small_trace(9, 10, 5);
  trace.add_gap(42.0, 58.0);

  struct RecordingSink final : LiveTraceSink {
    std::string land;
    Seconds interval{0.0};
    std::size_t begins{0};
    std::vector<Seconds> snapshot_times;
    std::vector<CoverageGap> gaps;
    void on_begin(const std::string& land_name, Seconds sampling_interval) override {
      ++begins;
      land = land_name;
      interval = sampling_interval;
    }
    void on_snapshot(const Snapshot& snapshot) override {
      snapshot_times.push_back(snapshot.time);
    }
    void on_gap(Seconds start, Seconds end) override { gaps.push_back({start, end}); }
  } sink;

  MemoryTraceStream stream(trace);
  drive_stream(stream, sink);
  EXPECT_EQ(sink.begins, 1u);
  EXPECT_EQ(sink.land, trace.land_name());
  EXPECT_EQ(sink.interval, trace.sampling_interval());
  ASSERT_EQ(sink.snapshot_times.size(), trace.snapshots().size());
  for (std::size_t i = 0; i < sink.snapshot_times.size(); ++i) {
    EXPECT_EQ(sink.snapshot_times[i], trace.snapshots()[i].time);
  }
  ASSERT_EQ(sink.gaps.size(), 1u);
  EXPECT_EQ(sink.gaps[0].start, 42.0);
  EXPECT_EQ(sink.gaps[0].end, 58.0);
}

}  // namespace
}  // namespace slmob
