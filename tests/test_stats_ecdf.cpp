#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace slmob {
namespace {

TEST(Ecdf, EmptyBehaviour) {
  const Ecdf e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.cdf(1.0), 0.0);
  EXPECT_EQ(e.ccdf(1.0), 1.0);
  EXPECT_THROW((void)e.median(), std::logic_error);
  EXPECT_THROW((void)e.min(), std::logic_error);
  EXPECT_THROW((void)e.mean(), std::logic_error);
}

TEST(Ecdf, CdfStep) {
  Ecdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.ccdf(2.5), 0.5);
}

TEST(Ecdf, QuantilesLowerConvention) {
  Ecdf e({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(e.median(), 20.0);
}

TEST(Ecdf, AddKeepsOrderIndependence) {
  Ecdf a;
  Ecdf b;
  for (const double x : {5.0, 1.0, 3.0}) a.add(x);
  for (const double x : {1.0, 3.0, 5.0}) b.add(x);
  EXPECT_DOUBLE_EQ(a.median(), b.median());
  EXPECT_DOUBLE_EQ(a.cdf(3.0), b.cdf(3.0));
}

TEST(Ecdf, MinMaxMean) {
  Ecdf e({2.0, 8.0, 5.0});
  EXPECT_DOUBLE_EQ(e.min(), 2.0);
  EXPECT_DOUBLE_EQ(e.max(), 8.0);
  EXPECT_DOUBLE_EQ(e.mean(), 5.0);
}

// Regression: mean() used to sum in insertion order, but ensure_sorted()
// reorders samples_ in place lazily — so calling median() (or any sorting
// accessor) first changed mean()'s float sum. With catastrophic
// cancellation the difference is not just ULPs: summing {1e16, -1e16, 1.0}
// in insertion order gives 1.0, in sorted order 0.0. mean() must give the
// same bits regardless of accessor call order.
TEST(Ecdf, MeanIndependentOfAccessorCallOrder) {
  const std::vector<double> adversarial{1e16, -1e16, 1.0};

  Ecdf fresh;
  for (const double x : adversarial) fresh.add(x);
  const double mean_before_sort = fresh.mean();

  Ecdf sorted_first;
  for (const double x : adversarial) sorted_first.add(x);
  (void)sorted_first.median();  // forces the lazy in-place sort
  const double mean_after_sort = sorted_first.mean();

  EXPECT_EQ(mean_before_sort, mean_after_sort);  // bitwise, not NEAR
}

TEST(Ecdf, CdfIsMonotone) {
  Rng rng(1);
  Ecdf e;
  for (int i = 0; i < 1000; ++i) e.add(rng.uniform(0.0, 100.0));
  double prev = -1.0;
  for (double x = 0.0; x <= 100.0; x += 0.5) {
    const double c = e.cdf(x);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST(Ecdf, CdfSeriesSpansRange) {
  Ecdf e({1.0, 2.0, 10.0});
  const auto series = e.cdf_series(11);
  ASSERT_EQ(series.size(), 11u);
  EXPECT_DOUBLE_EQ(series.front().x, 1.0);
  EXPECT_DOUBLE_EQ(series.back().x, 10.0);
  EXPECT_DOUBLE_EQ(series.back().y, 1.0);
}

TEST(Ecdf, CcdfLogSeriesIsLogSpaced) {
  Ecdf e({1.0, 10.0, 100.0, 1000.0});
  const auto series = e.ccdf_log_series(4);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_NEAR(series[1].x / series[0].x, series[2].x / series[1].x, 1e-9);
  for (const auto& p : series) {
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(Ecdf, FormatSeries) {
  const std::vector<EcdfPoint> series{{1.0, 0.5}, {2.0, 0.25}};
  const std::string text = format_series(series);
  EXPECT_EQ(text, "1\t0.5\n2\t0.25\n");
}

// Property sweep: for any sample set, quantile and cdf are inverse-ish.
class EcdfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcdfProperty, QuantileCdfConsistency) {
  Rng rng(GetParam());
  Ecdf e;
  const int n = 50 + static_cast<int>(rng.uniform_int(0, 200));
  for (int i = 0; i < n; ++i) e.add(rng.uniform(-50.0, 50.0));
  for (double q = 0.05; q < 1.0; q += 0.05) {
    const double x = e.quantile(q);
    // At least a fraction q of the samples are <= x.
    EXPECT_GE(e.cdf(x) + 1e-12, q);
    // And removing one sample's worth breaks it (tightness).
    EXPECT_LT(e.cdf(x) - 1.0 / static_cast<double>(n) - 1e-12, q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace slmob
