// Integration: both monitoring architectures observing the same world,
// scored against protocol-free ground truth — the §2 comparison as a test.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "sensors/collector.hpp"
#include "sensors/deployment.hpp"
#include "sensors/object_runtime.hpp"

namespace slmob {
namespace {

struct DualRig {
  explicit DualRig(LandArchetype archetype, Seconds duration)
      : bed(make_config(archetype)) {
    collector = std::make_unique<HttpCollector>(bed.network(), "sensed");
    runtime = std::make_unique<ObjectRuntime>(bed.world(), bed.network(), 5);
    SensorGridConfig grid_cfg;
    grid_cfg.grid_side = 2;
    grid = std::make_unique<SensorGridDeployment>(*runtime, bed.world().land(),
                                                  collector->address(), grid_cfg);
    deployed = grid->deploy_all(0.0);
    bed.engine().add(kPriorityServer,
                     [this](Seconds now, Seconds dt) { runtime->tick(now, dt); });
    bed.engine().add(kPriorityMonitor,
                     [this](Seconds now, Seconds dt) { grid->tick(now, dt); });
    bed.run_until(duration);
  }

  static TestbedConfig make_config(LandArchetype archetype) {
    TestbedConfig cfg;
    cfg.archetype = archetype;
    cfg.seed = 77;
    cfg.with_ground_truth = true;
    return cfg;
  }

  Testbed bed;
  std::unique_ptr<HttpCollector> collector;
  std::unique_ptr<ObjectRuntime> runtime;
  std::unique_ptr<SensorGridDeployment> grid;
  std::size_t deployed{0};
};

TEST(DualInstruments, PublicLandBothInstrumentsAgreeWithTruth) {
  DualRig rig(LandArchetype::kApfelLand, 1800.0);
  ASSERT_EQ(rig.deployed, 4u);

  const TraceSummary truth = rig.bed.ground_truth()->trace().summary();
  const TraceSummary crawled = rig.bed.crawler()->trace().summary();
  const Trace sensed_trace = rig.collector->build_trace(10.0);
  const TraceSummary sensed = sensed_trace.summary();

  ASSERT_GT(truth.unique_users, 10u);
  // Crawler: complete coverage.
  EXPECT_NEAR(static_cast<double>(crawled.unique_users),
              static_cast<double>(truth.unique_users), 2.0);
  // Sensors on a sparse land: nearly complete (16-cap rarely binds).
  EXPECT_GE(sensed.unique_users + 2, truth.unique_users);
}

TEST(DualInstruments, PrivateLandOnlyCrawlerWorks) {
  DualRig rig(LandArchetype::kDanceIsland, 900.0);
  EXPECT_EQ(rig.deployed, 0u);  // deployment refused on private land
  EXPECT_EQ(rig.collector->stats().records, 0u);
  EXPECT_GT(rig.bed.crawler()->trace().summary().unique_users, 10u);
}

TEST(DualInstruments, CrowdedLandSensorsUndercount) {
  DualRig rig(LandArchetype::kIsleOfView, 1800.0);
  ASSERT_EQ(rig.deployed, 4u);
  std::uint64_t truncated = 0;
  for (const auto& obj : rig.runtime->objects()) {
    truncated += obj->stats().detections_truncated;
  }
  // The 16-avatar sweep cap must actually bind in the event crowd.
  EXPECT_GT(truncated, 100u);

  // And the crawler still sees everyone the world saw.
  const TraceSummary truth = rig.bed.ground_truth()->trace().summary();
  const TraceSummary crawled = rig.bed.crawler()->trace().summary();
  EXPECT_NEAR(static_cast<double>(crawled.unique_users),
              static_cast<double>(truth.unique_users), 2.0);
}

}  // namespace
}  // namespace slmob
