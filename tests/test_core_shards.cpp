#include "core/shards.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "trace/serialize.hpp"
#include "util/bytes.hpp"

namespace slmob {
namespace {

// The golden 3-land experiment: every archetype once, consecutive seeds —
// the same shape `slmob run --land apfel,dance,isle` produces.
std::vector<ExperimentConfig> three_lands(const std::string& faults = "none",
                                          Seconds duration = 900.0) {
  const LandArchetype lands[] = {LandArchetype::kApfelLand, LandArchetype::kDanceIsland,
                                 LandArchetype::kIsleOfView};
  std::vector<ExperimentConfig> shards;
  for (std::size_t i = 0; i < 3; ++i) {
    ExperimentConfig cfg;
    cfg.archetype = lands[i];
    cfg.duration = duration;
    cfg.seed = 42 + i;
    cfg.fault_scenario = faults;
    cfg.ranges = {};
    shards.push_back(cfg);
  }
  return shards;
}

// Bit-identity is judged on the serialized raw trace, exactly as it would
// land on disk.
std::vector<std::uint32_t> digests(const std::vector<ShardResult>& results) {
  std::vector<std::uint32_t> out;
  for (const auto& r : results) out.push_back(crc32(encode_trace(r.trace)));
  return out;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Shards, TracesBitIdenticalAcrossThreadCounts) {
  const auto shards = three_lands();
  ShardRunOptions serial_options;
  serial_options.threads = 1;
  const auto serial = digests(run_sharded(shards, serial_options));
  ASSERT_EQ(serial.size(), 3u);
  // Distinct lands/seeds must not collapse to the same trace.
  EXPECT_NE(serial[0], serial[1]);
  EXPECT_NE(serial[1], serial[2]);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    ShardRunOptions options;
    options.threads = threads;
    EXPECT_EQ(digests(run_sharded(shards, options)), serial)
        << "thread count " << threads;
  }
}

TEST(Shards, ChaosFaultScenarioBitIdenticalAcrossThreadCounts) {
  // The all-faults scenario exercises every RNG stream (world, network,
  // faults, crawler backoff); sharding must not reorder a single draw.
  const auto shards = three_lands("chaos");
  ShardRunOptions serial_options;
  serial_options.threads = 1;
  const auto serial = digests(run_sharded(shards, serial_options));
  ShardRunOptions options;
  options.threads = 4;
  EXPECT_EQ(digests(run_sharded(shards, options)), serial);
}

TEST(Shards, ShardMatchesStandaloneRun) {
  // A shard is a pure function of its config: running Dance alongside two
  // other lands yields the same bytes as running Dance alone.
  const auto shards = three_lands();
  ShardRunOptions options;
  options.threads = 4;
  const auto together = digests(run_sharded(shards, options));

  const std::vector<ExperimentConfig> alone{shards[1]};
  ShardRunOptions alone_options;
  alone_options.threads = 1;
  const auto standalone = digests(run_sharded(alone, alone_options));
  EXPECT_EQ(together[1], standalone[0]);
}

TEST(Shards, DurableKillAndResumeBitIdentical) {
  const auto shards = three_lands("chaos");
  ShardRunOptions reference_options;
  reference_options.threads = 4;
  const auto reference = digests(run_sharded(shards, reference_options));

  const std::string dir = fresh_dir("shards_resume");
  ShardRunOptions options;
  options.threads = 4;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 200.0;
  options.kill_at = 450.0;
  options.out_paths = {"a.slt", "b.slt", "c.slt"};
  const auto killed = run_sharded(shards, options);
  ASSERT_EQ(killed.size(), 3u);
  for (const auto& r : killed) EXPECT_TRUE(r.killed);

  const auto resumed = resume_sharded(dir, 2);
  ASSERT_EQ(resumed.size(), 3u);
  EXPECT_EQ(digests(resumed), reference);
  // Identity and destination ride along in each shard's checkpoint.
  EXPECT_EQ(resumed[1].archetype, LandArchetype::kDanceIsland);
  EXPECT_EQ(resumed[1].seed, 43u);
  EXPECT_EQ(resumed[0].out_path, "a.slt");
  EXPECT_EQ(resumed[2].out_path, "c.slt");
  for (const auto& r : resumed) EXPECT_FALSE(r.killed);
}

TEST(Shards, ResumeAcceptsSingleShardDirectory) {
  const std::vector<ExperimentConfig> shards{three_lands()[1]};
  ShardRunOptions reference_options;
  reference_options.threads = 1;
  const auto reference = digests(run_sharded(shards, reference_options));

  const std::string dir = fresh_dir("shards_resume_single");
  ShardRunOptions options;
  options.threads = 1;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 200.0;
  options.kill_at = 400.0;
  ASSERT_TRUE(run_sharded(shards, options).front().killed);

  // Point resume at the shard's own directory, the layout a single-land
  // `slmob run --checkpoint DIR` writes.
  const auto resumed =
      resume_sharded(dir + "/" + shard_dir_name(0, shards[0].archetype));
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_EQ(digests(resumed), reference);
}

TEST(Shards, ResumeRejectsEmptyDirectory) {
  const std::string dir = fresh_dir("shards_resume_empty");
  std::filesystem::create_directories(dir);
  EXPECT_THROW(resume_sharded(dir), std::runtime_error);
}

TEST(Shards, ShardDirNamesSortInShardOrder) {
  EXPECT_EQ(shard_dir_name(0, LandArchetype::kApfelLand), "shard-00-apfelland");
  EXPECT_EQ(shard_dir_name(3, LandArchetype::kDanceIsland), "shard-03-dance");
  EXPECT_EQ(shard_dir_name(12, LandArchetype::kIsleOfView), "shard-12-isle-of-view");
}

TEST(Shards, ExperimentsShardedMatchSerial) {
  // Full experiment cells (sim + analysis) through the sharded driver:
  // summary statistics are thread-count independent.
  auto cells = three_lands("none", 600.0);
  for (auto& cfg : cells) cfg.ranges = {10.0};
  const auto serial = run_experiments_sharded(cells, 1);
  const auto parallel = run_experiments_sharded(cells, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(encode_trace(serial[i].trace), encode_trace(parallel[i].trace));
    EXPECT_EQ(serial[i].summary.unique_users, parallel[i].summary.unique_users);
    EXPECT_EQ(serial[i].contacts.at(10.0).intervals.size(),
              parallel[i].contacts.at(10.0).intervals.size());
  }
}

}  // namespace
}  // namespace slmob
