#include "analysis/spatial_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace slmob {
namespace {

using Pair = std::pair<std::uint32_t, std::uint32_t>;

std::set<Pair> brute_force_pairs(const std::vector<Vec3>& positions, double r) {
  std::set<Pair> out;
  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    for (std::uint32_t j = i + 1; j < positions.size(); ++j) {
      if (positions[i].distance2d_to(positions[j]) <= r) out.insert({i, j});
    }
  }
  return out;
}

TEST(SpatialGrid, EmptyInput) {
  const std::vector<Vec3> positions;
  const SpatialGrid grid(positions, 10.0);
  EXPECT_TRUE(grid.pairs_within().empty());
}

TEST(SpatialGrid, SimpleKnownPairs) {
  const std::vector<Vec3> positions{
      {0.0, 0.0, 0.0}, {5.0, 0.0, 0.0}, {100.0, 100.0, 0.0}};
  const SpatialGrid grid(positions, 10.0);
  const auto pairs = grid.pairs_within();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (Pair{0, 1}));
}

TEST(SpatialGrid, BoundaryInclusive) {
  const std::vector<Vec3> positions{{0.0, 0.0, 0.0}, {10.0, 0.0, 0.0}};
  const SpatialGrid grid(positions, 10.0);
  EXPECT_EQ(grid.pairs_within().size(), 1u);
}

TEST(SpatialGrid, IgnoresAltitude) {
  const std::vector<Vec3> positions{{0.0, 0.0, 0.0}, {3.0, 0.0, 500.0}};
  const SpatialGrid grid(positions, 10.0);
  EXPECT_EQ(grid.pairs_within().size(), 1u);
}

TEST(SpatialGrid, NeighborsOfMatchesPairs) {
  Rng rng(3);
  std::vector<Vec3> positions;
  for (int i = 0; i < 100; ++i) {
    positions.push_back({rng.uniform(0.0, 256.0), rng.uniform(0.0, 256.0), 22.0});
  }
  const SpatialGrid grid(positions, 15.0);
  const auto expected = brute_force_pairs(positions, 15.0);
  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    auto neighbors = grid.neighbors_of(i);
    std::sort(neighbors.begin(), neighbors.end());
    std::vector<std::uint32_t> expected_neighbors;
    for (const auto& [a, b] : expected) {
      if (a == i) expected_neighbors.push_back(b);
      if (b == i) expected_neighbors.push_back(a);
    }
    std::sort(expected_neighbors.begin(), expected_neighbors.end());
    EXPECT_EQ(neighbors, expected_neighbors) << "node " << i;
  }
}

TEST(SpatialGrid, ThrowsOnBadInput) {
  const std::vector<Vec3> positions{{0, 0, 0}};
  EXPECT_THROW(SpatialGrid(positions, 0.0), std::invalid_argument);
  const SpatialGrid grid(positions, 5.0);
  EXPECT_THROW((void)grid.neighbors_of(7), std::out_of_range);
}

class SpatialGridProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double, int>> {};

TEST_P(SpatialGridProperty, MatchesBruteForce) {
  const auto [seed, radius, count] = GetParam();
  Rng rng(seed);
  std::vector<Vec3> positions;
  for (int i = 0; i < count; ++i) {
    positions.push_back({rng.uniform(-50.0, 300.0), rng.uniform(-50.0, 300.0), 22.0});
  }
  const SpatialGrid grid(positions, radius);
  auto pairs = grid.pairs_within();
  std::set<Pair> got(pairs.begin(), pairs.end());
  EXPECT_EQ(got.size(), pairs.size()) << "duplicate pairs reported";
  EXPECT_EQ(got, brute_force_pairs(positions, radius));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpatialGridProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4), ::testing::Values(1.0, 10.0, 80.0),
                       ::testing::Values(2, 25, 150)));

}  // namespace
}  // namespace slmob
