#include "util/log.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().capture_to_buffer(true);
    Logger::instance().clear_captured();
    saved_level_ = Logger::instance().level();
  }
  void TearDown() override {
    Logger::instance().capture_to_buffer(false);
    Logger::instance().set_level(saved_level_);
  }
  LogLevel saved_level_{LogLevel::kWarn};
};

TEST_F(LogTest, LevelsFilter) {
  Logger::instance().set_level(LogLevel::kWarn);
  log_debug("t", "debug message");
  log_info("t", "info message");
  log_warn("t", "warn message");
  log_error("t", "error message");
  const std::string captured = Logger::instance().captured();
  EXPECT_EQ(captured.find("debug message"), std::string::npos);
  EXPECT_EQ(captured.find("info message"), std::string::npos);
  EXPECT_NE(captured.find("warn message"), std::string::npos);
  EXPECT_NE(captured.find("error message"), std::string::npos);
}

TEST_F(LogTest, DebugLevelPassesEverything) {
  Logger::instance().set_level(LogLevel::kDebug);
  log_debug("component", "hello");
  const std::string captured = Logger::instance().captured();
  EXPECT_NE(captured.find("[DEBUG] component: hello"), std::string::npos);
}

TEST_F(LogTest, OffSilencesAll) {
  Logger::instance().set_level(LogLevel::kOff);
  log_error("t", "nope");
  EXPECT_TRUE(Logger::instance().captured().empty());
}

TEST_F(LogTest, EnabledQuery) {
  Logger::instance().set_level(LogLevel::kInfo);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
}

TEST_F(LogTest, ClearCaptured) {
  Logger::instance().set_level(LogLevel::kWarn);
  log_warn("t", "one");
  Logger::instance().clear_captured();
  EXPECT_TRUE(Logger::instance().captured().empty());
}

}  // namespace
}  // namespace slmob
