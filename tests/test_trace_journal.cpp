#include "trace/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

namespace slmob {
namespace {

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  std::fclose(f);
  return bytes;
}

Snapshot make_snapshot(Seconds time, std::uint32_t base_id, std::size_t count) {
  Snapshot snap;
  snap.time = time;
  for (std::size_t i = 0; i < count; ++i) {
    snap.fixes.push_back({AvatarId{base_id + static_cast<std::uint32_t>(i)},
                          {10.0 * static_cast<double>(i), 20.0, 22.5}});
  }
  return snap;
}

std::string temp_path(const std::string& name) { return ::testing::TempDir() + "/" + name; }

TEST(TraceJournal, RoundTripCleanEnd) {
  const std::string path = temp_path("journal_roundtrip.sltj");
  {
    TraceJournalWriter writer(path, 100.0);
    writer.begin("Test Land", 10.0);
    writer.append_snapshot(make_snapshot(0.0, 1, 3));
    writer.append_snapshot(make_snapshot(10.0, 1, 2));
    writer.append_gap_open(20.0);
    writer.append_gap_close(20.0, 40.0);
    writer.append_snapshot(make_snapshot(40.0, 5, 1));
    writer.append_session(25.0, SessionEvent::kRelogin, "timeout");
    writer.append_end(100.0);
  }
  const JournalSalvage s = salvage_journal(path);
  EXPECT_TRUE(s.clean_end);
  EXPECT_FALSE(s.torn);
  EXPECT_EQ(s.snapshots, 3u);
  EXPECT_EQ(s.session_events, 1u);
  EXPECT_EQ(s.frames_read, 8u);  // begin + 3 snapshots + open + close + session + end
  EXPECT_DOUBLE_EQ(s.planned_end, 100.0);

  EXPECT_EQ(s.trace.land_name(), "Test Land");
  EXPECT_DOUBLE_EQ(s.trace.sampling_interval(), 10.0);
  ASSERT_EQ(s.trace.size(), 3u);
  EXPECT_DOUBLE_EQ(s.trace.snapshots()[1].time, 10.0);
  ASSERT_EQ(s.trace.snapshots()[0].fixes.size(), 3u);
  EXPECT_EQ(s.trace.snapshots()[0].fixes[2].id.value, 3u);
  EXPECT_DOUBLE_EQ(s.trace.snapshots()[0].fixes[2].pos.x, 20.0);
  ASSERT_EQ(s.trace.gaps().size(), 1u);
  EXPECT_EQ(s.trace.gaps()[0], (CoverageGap{20.0, 40.0}));
}

TEST(TraceJournal, FramesReadCountsEveryFrame) {
  const std::string path = temp_path("journal_frames.sltj");
  {
    TraceJournalWriter writer(path, 50.0);
    writer.begin("land", 10.0);
    writer.append_snapshot(make_snapshot(0.0, 1, 1));
    writer.append_end(50.0);
  }
  EXPECT_EQ(salvage_journal(path).frames_read, 3u);
}

// The ISSUE's acceptance bar: a SIGKILL can tear the final frame at ANY byte
// offset, and salvage must still produce a loadable trace that keeps every
// earlier frame and censors the rest of the planned run with a trailing gap.
TEST(TraceJournal, TornTailAtEveryByteOffsetSalvages) {
  const std::string path = temp_path("journal_torn.sltj");
  std::uint64_t last_frame_start = 0;
  {
    TraceJournalWriter writer(path, 100.0);
    writer.begin("land", 10.0);
    writer.append_snapshot(make_snapshot(0.0, 1, 2));
    writer.append_snapshot(make_snapshot(10.0, 1, 2));
    last_frame_start = writer.offset();
    writer.append_snapshot(make_snapshot(20.0, 1, 2));
    // No kEnd: the process died right after the last flush.
  }
  const std::vector<std::uint8_t> full = read_file_bytes(path);
  ASSERT_GT(full.size(), last_frame_start);

  // Untruncated (but end-less) journal: all three snapshots, trailing gap
  // from last snapshot + interval out to the planned end.
  {
    const JournalSalvage s = salvage_journal_bytes(full);
    EXPECT_FALSE(s.torn);
    EXPECT_FALSE(s.clean_end);
    EXPECT_EQ(s.snapshots, 3u);
    ASSERT_EQ(s.trace.gaps().size(), 1u);
    EXPECT_EQ(s.trace.gaps().back(), (CoverageGap{30.0, 100.0}));
  }

  for (std::size_t cut = last_frame_start; cut < full.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(full.data(), cut);
    JournalSalvage s;
    ASSERT_NO_THROW(s = salvage_journal_bytes(prefix)) << "cut at byte " << cut;
    EXPECT_EQ(s.snapshots, 2u) << "cut at byte " << cut;
    EXPECT_EQ(s.bytes_kept, last_frame_start) << "cut at byte " << cut;
    EXPECT_EQ(s.torn, cut != last_frame_start) << "cut at byte " << cut;
    ASSERT_EQ(s.trace.gaps().size(), 1u) << "cut at byte " << cut;
    // Last intact snapshot is t=10; coverage is censored from the next
    // sample onwards, out to the planned end of the run.
    EXPECT_EQ(s.trace.gaps().back(), (CoverageGap{20.0, 100.0})) << "cut at byte " << cut;
  }
}

TEST(TraceJournal, BitFlipInFinalFrameDropsOnlyThatFrame) {
  const std::string path = temp_path("journal_bitflip.sltj");
  std::uint64_t last_frame_start = 0;
  {
    TraceJournalWriter writer(path, 0.0);
    writer.begin("land", 10.0);
    writer.append_snapshot(make_snapshot(0.0, 1, 2));
    last_frame_start = writer.offset();
    writer.append_snapshot(make_snapshot(10.0, 1, 2));
  }
  std::vector<std::uint8_t> bytes = read_file_bytes(path);
  bytes[last_frame_start + 12] ^= 0x40;  // corrupt the payload, CRC now fails
  const JournalSalvage s = salvage_journal_bytes(bytes);
  EXPECT_TRUE(s.torn);
  EXPECT_EQ(s.snapshots, 1u);
  EXPECT_EQ(s.bytes_kept, last_frame_start);
  // planned_end unknown (0): the gap still censors at least one interval.
  ASSERT_EQ(s.trace.gaps().size(), 1u);
  EXPECT_EQ(s.trace.gaps().back(), (CoverageGap{10.0, 20.0}));
}

TEST(TraceJournal, TearAfterGapOpenUsesGapStart) {
  const std::string path = temp_path("journal_gapopen.sltj");
  {
    TraceJournalWriter writer(path, 200.0);
    writer.begin("land", 10.0);
    writer.append_snapshot(make_snapshot(0.0, 1, 1));
    writer.append_gap_open(25.0);
    // Killed during the outage: no gap_close, no further snapshots.
  }
  const JournalSalvage s = salvage_journal(path);
  EXPECT_EQ(s.snapshots, 1u);
  ASSERT_EQ(s.trace.gaps().size(), 1u);
  EXPECT_EQ(s.trace.gaps().back(), (CoverageGap{25.0, 200.0}));
}

TEST(TraceJournal, UnreadableHeaderOrBeginRejected) {
  EXPECT_THROW(salvage_journal_bytes({}), DecodeError);
  const std::vector<std::uint8_t> junk{'X', 'X', 'X', 'X', 1, 0};
  EXPECT_THROW(salvage_journal_bytes(junk), DecodeError);

  // A header with a torn kBegin frame never held a single complete record.
  const std::string path = temp_path("journal_tornbegin.sltj");
  {
    TraceJournalWriter writer(path, 100.0);
    writer.begin("land", 10.0);
  }
  std::vector<std::uint8_t> bytes = read_file_bytes(path);
  bytes.resize(bytes.size() - 1);
  EXPECT_THROW(salvage_journal_bytes(bytes), DecodeError);
}

TEST(TraceJournal, MissingFileThrows) {
  EXPECT_THROW(salvage_journal(temp_path("does_not_exist.sltj")), std::runtime_error);
}

TEST(TraceJournal, HeaderOnlyZeroFrameFileRejected) {
  // Exactly the 6-byte header, zero frames: the writer was constructed and
  // the process died before begin() ever ran. The file is structurally
  // valid, but it never held a single complete record — salvage must refuse
  // rather than invent an empty trace with no land name or interval.
  const std::vector<std::uint8_t> header{'S', 'L', 'T', 'J', 1, 0};
  EXPECT_THROW(salvage_journal_bytes(header), DecodeError);

  // Same bytes on disk, through the file path.
  const std::string path = temp_path("journal_headeronly.sltj");
  { TraceJournalWriter writer(path, 100.0); }
  EXPECT_EQ(read_file_bytes(path).size(), 6u);
  EXPECT_THROW(salvage_journal(path), DecodeError);
}

TEST(TraceJournal, BeginOnlyJournalSalvagesToEmptyTrace) {
  // One intact kBegin frame and nothing else: killed right after start-up.
  // This is the smallest salvageable journal — an empty trace with the
  // run's identity, no snapshots, and (per the crawler's convention that
  // outages before the first snapshot are a later trace start) no trailing
  // censoring gap either.
  const std::string path = temp_path("journal_beginonly.sltj");
  {
    TraceJournalWriter writer(path, 150.0);
    writer.begin("Isle of View", 10.0);
  }
  const JournalSalvage s = salvage_journal(path);
  EXPECT_FALSE(s.clean_end);
  EXPECT_FALSE(s.torn);
  EXPECT_EQ(s.frames_read, 1u);
  EXPECT_EQ(s.snapshots, 0u);
  EXPECT_EQ(s.trace.land_name(), "Isle of View");
  EXPECT_DOUBLE_EQ(s.trace.sampling_interval(), 10.0);
  EXPECT_EQ(s.trace.size(), 0u);
  EXPECT_TRUE(s.trace.gaps().empty());
}

TEST(TraceJournal, OffsetTracksFileSize) {
  const std::string path = temp_path("journal_offset.sltj");
  std::uint64_t final_offset = 0;
  {
    TraceJournalWriter writer(path, 100.0);
    writer.begin("land", 10.0);
    writer.append_snapshot(make_snapshot(0.0, 1, 4));
    writer.append_end(100.0);
    final_offset = writer.offset();
  }
  EXPECT_EQ(read_file_bytes(path).size(), final_offset);
}

TEST(TraceJournal, ResumeTruncatesDiscardedFramesAndAppends) {
  const std::string path = temp_path("journal_resume.sltj");
  std::uint64_t checkpointed = 0;
  {
    TraceJournalWriter writer(path, 100.0);
    writer.begin("land", 10.0);
    writer.append_snapshot(make_snapshot(0.0, 1, 1));
    checkpointed = writer.offset();
    // Frames past the checkpoint: discarded by resume, regenerated below.
    writer.append_snapshot(make_snapshot(10.0, 2, 1));
  }
  {
    TraceJournalWriter writer = TraceJournalWriter::resume(path, checkpointed, 100.0);
    EXPECT_TRUE(writer.begun());
    EXPECT_EQ(writer.offset(), checkpointed);
    writer.append_snapshot(make_snapshot(10.0, 9, 1));
    writer.append_end(100.0);
  }
  const JournalSalvage s = salvage_journal(path);
  EXPECT_TRUE(s.clean_end);
  ASSERT_EQ(s.trace.size(), 2u);
  EXPECT_EQ(s.trace.snapshots()[1].fixes[0].id.value, 9u);
}

TEST(TraceJournal, ResumeRejectsImpossibleOffsets) {
  const std::string path = temp_path("journal_resume_bad.sltj");
  {
    TraceJournalWriter writer(path, 100.0);
    writer.begin("land", 10.0);
  }
  const auto size = read_file_bytes(path).size();
  EXPECT_THROW(TraceJournalWriter::resume(path, size + 1, 100.0), std::runtime_error);
  EXPECT_THROW(TraceJournalWriter::resume(path, 2, 100.0), std::runtime_error);
  EXPECT_THROW(
      TraceJournalWriter::resume(temp_path("no_such_journal.sltj"), 0, 100.0),
      std::runtime_error);
}

}  // namespace
}  // namespace slmob
