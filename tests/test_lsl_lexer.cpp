#include "lsl/lexer.hpp"

#include <gtest/gtest.h>

namespace slmob::lsl {
namespace {

std::vector<TokenType> types_of(std::string_view src) {
  std::vector<TokenType> out;
  for (const auto& t : tokenize(src)) out.push_back(t.type);
  return out;
}

TEST(LslLexer, EmptyInputYieldsEof) {
  const auto tokens = tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEof);
}

TEST(LslLexer, KeywordsAndIdentifiers) {
  const auto tokens = tokenize("integer foo default state while");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[2].type, TokenType::kDefault);
  EXPECT_EQ(tokens[3].type, TokenType::kState);
  EXPECT_EQ(tokens[4].type, TokenType::kWhile);
}

TEST(LslLexer, NumericLiterals) {
  const auto tokens = tokenize("42 3.5 1e3 2.5e-2");
  EXPECT_EQ(tokens[0].type, TokenType::kIntegerLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.5);
  EXPECT_EQ(tokens[2].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.025);
}

TEST(LslLexer, StringLiteralWithEscapes) {
  const auto tokens = tokenize(R"("a\nb\"c\\d")");
  ASSERT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "a\nb\"c\\d");
}

TEST(LslLexer, UnterminatedStringThrows) {
  EXPECT_THROW((void)tokenize("\"oops"), LslError);
}

TEST(LslLexer, CommentsAreSkipped) {
  const auto types = types_of("1 // line comment\n 2 /* block\ncomment */ 3");
  EXPECT_EQ(types, (std::vector<TokenType>{TokenType::kIntegerLiteral,
                                           TokenType::kIntegerLiteral,
                                           TokenType::kIntegerLiteral, TokenType::kEof}));
}

TEST(LslLexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW((void)tokenize("/* never ends"), LslError);
}

TEST(LslLexer, OperatorsSingleAndDouble) {
  const auto types = types_of("= == != < <= > >= + += ++ - -= -- && || !");
  const std::vector<TokenType> expected{
      TokenType::kAssign, TokenType::kEq,        TokenType::kNe,
      TokenType::kLt,     TokenType::kLe,        TokenType::kGt,
      TokenType::kGe,     TokenType::kPlus,      TokenType::kPlusAssign,
      TokenType::kPlusPlus, TokenType::kMinus,   TokenType::kMinusAssign,
      TokenType::kMinusMinus, TokenType::kAndAnd, TokenType::kOrOr,
      TokenType::kNot,    TokenType::kEof};
  EXPECT_EQ(types, expected);
}

TEST(LslLexer, LineAndColumnTracking) {
  const auto tokens = tokenize("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_GT(tokens[1].column, 2);
}

TEST(LslLexer, UnknownCharacterThrows) {
  EXPECT_THROW((void)tokenize("a @ b"), LslError);
  EXPECT_THROW((void)tokenize("a & b"), LslError);  // single & unsupported
}

}  // namespace
}  // namespace slmob::lsl
