#include "client/metaverse_client.hpp"
#include "server/sim_server.hpp"

#include <gtest/gtest.h>

#include "world/archetypes.hpp"

namespace slmob {
namespace {

struct Rig {
  explicit Rig(LandArchetype archetype = LandArchetype::kDanceIsland,
               NetworkParams net_params = {}, SimServerParams server_params = {})
      : world(make_world(archetype, 1)), net(net_params, 2) {
    server = std::make_unique<SimServer>(net, *world, server_params);
  }

  MetaverseClient& add_client(const std::string& name) {
    clients.push_back(
        std::make_unique<MetaverseClient>(net, server->address(), name, "test"));
    return *clients.back();
  }

  void pump(Seconds from, Seconds to) {
    for (Seconds t = from; t < to; t += 1.0) {
      world->tick(t, 1.0);
      server->tick(t, 1.0);
      net.tick(t, 1.0);
      for (auto& c : clients) c->tick(t, 1.0);
    }
    now = to;
  }

  std::unique_ptr<World> world;
  SimNetwork net;
  std::unique_ptr<SimServer> server;
  std::vector<std::unique_ptr<MetaverseClient>> clients;
  Seconds now{0.0};
};

TEST(ServerClient, LoginHandshakeSucceeds) {
  Rig rig;
  auto& client = rig.add_client("alice");
  client.login();
  rig.pump(0.0, 5.0);
  EXPECT_TRUE(client.connected());
  EXPECT_GT(client.agent_id(), 0u);
  EXPECT_EQ(client.region_name(), "Dance");
  EXPECT_EQ(rig.server->stats().logins_accepted, 1u);
  // The client's avatar exists in the world.
  EXPECT_TRUE(rig.world->find(AvatarId{client.agent_id()}).has_value());
}

TEST(ServerClient, LoginRejectedWhenRegionFull) {
  Rig rig;
  // Region capacity is 100; fill it synthetically.
  for (int i = 0; i < 100; ++i) {
    rig.world->debug_add_synthetic(0.0, {100.0, 100.0, 22.0}, 1e9);
  }
  auto& client = rig.add_client("late");
  client.login();
  rig.pump(0.0, 5.0);
  EXPECT_EQ(client.state(), ClientState::kLoginFailed);
  EXPECT_EQ(rig.server->stats().logins_rejected, 1u);
}

TEST(ServerClient, CoarseLocationFeedArrives) {
  SimServerParams sp;
  sp.coarse_interval = 2.0;
  Rig rig(LandArchetype::kDanceIsland, {}, sp);
  rig.world->debug_add_synthetic(0.0, {50.0, 60.0, 22.0}, 1e9);
  auto& client = rig.add_client("watcher");
  int updates = 0;
  std::vector<CoarseEntry> last;
  ClientCallbacks callbacks;
  callbacks.on_coarse = [&](Seconds, const CoarseLocationUpdate& u) {
    ++updates;
    last = u.entries;
  };
  client.set_callbacks(std::move(callbacks));
  client.login();
  rig.pump(0.0, 20.0);
  EXPECT_GE(updates, 5);
  // Feed contains the synthetic avatar and the client's own avatar.
  EXPECT_GE(last.size(), 2u);
}

TEST(ServerClient, MovementSteersAvatar) {
  Rig rig;
  auto& client = rig.add_client("mover");
  client.login();
  rig.pump(0.0, 5.0);
  ASSERT_TRUE(client.connected());
  const Vec3 before = rig.world->find(AvatarId{client.agent_id()})->pos;
  client.move_to({before.x + 50.0, before.y, before.z}, 3.0);
  rig.pump(5.0, 30.0);
  const Vec3 after = rig.world->find(AvatarId{client.agent_id()})->pos;
  EXPECT_NEAR(after.x, before.x + 50.0, 1.0);
}

TEST(ServerClient, SitStandControlsCoarseQuirk) {
  SimServerParams sp;
  sp.coarse_interval = 1.0;
  Rig rig(LandArchetype::kDanceIsland, {}, sp);
  auto& client = rig.add_client("sitter");
  std::vector<CoarseEntry> last;
  ClientCallbacks callbacks;
  callbacks.on_coarse = [&](Seconds, const CoarseLocationUpdate& u) { last = u.entries; };
  client.set_callbacks(std::move(callbacks));
  client.login();
  rig.pump(0.0, 5.0);
  client.sit();
  rig.pump(5.0, 10.0);
  const auto own = [&] {
    for (const auto& e : last) {
      if (e.agent_id == client.agent_id()) return e;
    }
    return CoarseEntry{};
  };
  CoarseEntry e = own();
  EXPECT_EQ(e.x, 0);  // sitting avatars report the origin
  EXPECT_EQ(e.y, 0);
  client.stand();
  rig.pump(10.0, 15.0);
  e = own();
  EXPECT_NE(e.x + e.y, 0);
}

TEST(ServerClient, ChatReachesNearbyClientOnly) {
  SimServerParams sp;
  sp.chat_range = 20.0;
  Rig rig(LandArchetype::kDanceIsland, {}, sp);
  auto& speaker = rig.add_client("speaker");
  auto& near_client = rig.add_client("near");
  auto& far_client = rig.add_client("far");
  std::vector<std::string> near_heard;
  std::vector<std::string> far_heard;
  ClientCallbacks cb_near;
  cb_near.on_chat = [&](const ChatFromSimulator& c) { near_heard.push_back(c.message); };
  near_client.set_callbacks(std::move(cb_near));
  ClientCallbacks cb_far;
  cb_far.on_chat = [&](const ChatFromSimulator& c) { far_heard.push_back(c.message); };
  far_client.set_callbacks(std::move(cb_far));

  speaker.login();
  near_client.login();
  far_client.login();
  rig.pump(0.0, 5.0);
  ASSERT_TRUE(speaker.connected());
  ASSERT_TRUE(near_client.connected());
  ASSERT_TRUE(far_client.connected());

  // All spawn at the same point; move "far" away first.
  const Vec3 spawn = rig.world->find(AvatarId{speaker.agent_id()})->pos;
  far_client.move_to({spawn.x > 128.0 ? spawn.x - 100.0 : spawn.x + 100.0, spawn.y, spawn.z},
                     3.4);
  rig.pump(5.0, 45.0);

  speaker.say("party!");
  rig.pump(45.0, 50.0);
  ASSERT_EQ(near_heard.size(), 1u);
  EXPECT_EQ(near_heard[0], "party!");
  EXPECT_TRUE(far_heard.empty());
  EXPECT_EQ(rig.server->stats().chat_messages, 1u);
}

TEST(ServerClient, LogoutRemovesAvatar) {
  Rig rig;
  auto& client = rig.add_client("leaver");
  client.login();
  rig.pump(0.0, 5.0);
  const AvatarId id{client.agent_id()};
  ASSERT_TRUE(rig.world->find(id).has_value());
  client.logout();
  rig.pump(5.0, 10.0);
  EXPECT_FALSE(rig.world->find(id).has_value());
  EXPECT_EQ(rig.server->stats().logouts, 1u);
}

TEST(ServerClient, DeadCircuitKicksClient) {
  Rig rig;
  auto& client = rig.add_client("flaky");
  client.login();
  rig.pump(0.0, 5.0);
  ASSERT_TRUE(client.connected());
  const AvatarId id{client.agent_id()};
  // Make the link fully lossy: reliable server traffic exhausts retries and
  // the session is dropped.
  NetworkParams lossy;
  lossy.loss_rate = 1.0;
  rig.net.set_params(lossy);
  // Keep generating reliable traffic by reconnect attempts from server side:
  // chat is unreliable, so force a reliable exchange via a new login attempt.
  rig.pump(5.0, 60.0);
  // The client also notices (its own reliable traffic fails) eventually;
  // at minimum the server must not crash and the world stays consistent.
  (void)id;
  SUCCEED();
}

TEST(ServerClient, SilentClientSessionTimesOut) {
  SimServerParams sp;
  sp.session_timeout = 10.0;
  Rig rig(LandArchetype::kDanceIsland, {}, sp);
  auto& client = rig.add_client("ghost");
  client.login();
  rig.pump(0.0, 5.0);
  ASSERT_TRUE(client.connected());
  const AvatarId id{client.agent_id()};
  ASSERT_TRUE(rig.world->find(id).has_value());
  // The client goes completely silent (not ticked, nothing sent): the
  // session-timeout sweep must drop its session and retire the avatar.
  for (Seconds t = 5.0; t < 25.0; t += 1.0) {
    rig.world->tick(t, 1.0);
    rig.server->tick(t, 1.0);
    rig.net.tick(t, 1.0);
  }
  EXPECT_GE(rig.server->stats().session_timeouts, 1u);
  EXPECT_EQ(rig.server->connected_clients(), 0u);
  EXPECT_FALSE(rig.world->find(id).has_value());
}

TEST(ServerClient, RegionCrashDropsSessionsRefusesTrafficRecovers) {
  SimServerParams sp;
  sp.faults.add({FaultKind::kRegionCrash, 10.0, 20.0});
  Rig rig(LandArchetype::kDanceIsland, {}, sp);
  auto& client = rig.add_client("victim");
  client.login();
  rig.pump(0.0, 5.0);
  ASSERT_TRUE(client.connected());
  const AvatarId id{client.agent_id()};

  // Keep the oblivious client chattering so its traffic lands on the downed
  // region.
  for (Seconds t = 5.0; t < 18.0; t += 1.0) {
    if (client.connected()) client.say("anyone home?");
    rig.world->tick(t, 1.0);
    rig.server->tick(t, 1.0);
    rig.net.tick(t, 1.0);
    client.tick(t, 1.0);
  }
  EXPECT_TRUE(rig.server->down());
  EXPECT_EQ(rig.server->stats().crashes, 1u);
  EXPECT_EQ(rig.server->stats().sessions_crashed, 1u);
  EXPECT_EQ(rig.server->connected_clients(), 0u);
  EXPECT_FALSE(rig.world->find(id).has_value());
  EXPECT_GT(rig.server->stats().datagrams_ignored_down, 0u);

  // After the window the region accepts fresh logins again.
  rig.pump(18.0, 25.0);
  EXPECT_FALSE(rig.server->down());
  auto& fresh = rig.add_client("fresh");
  fresh.login();
  rig.pump(25.0, 35.0);
  EXPECT_TRUE(fresh.connected());
}

TEST(ServerClient, CapacityFlapRejectsLoginsDuringWindow) {
  SimServerParams sp;
  sp.faults.add({FaultKind::kCapacityFlap, 0.0, 50.0, 0.0});  // capacity -> 0
  Rig rig(LandArchetype::kDanceIsland, {}, sp);
  auto& client = rig.add_client("unlucky");
  client.login();
  rig.pump(0.0, 5.0);
  EXPECT_EQ(client.state(), ClientState::kLoginFailed);
  EXPECT_GE(rig.server->stats().logins_rejected, 1u);
  // Once the flap ends, the very same client can get in.
  rig.pump(5.0, 55.0);
  client.login();
  rig.pump(55.0, 65.0);
  EXPECT_TRUE(client.connected());
}

TEST(ServerClient, ReloginOverLiveSessionRetiresPhantomAvatar) {
  Rig rig;
  auto& client = rig.add_client("phoenix");
  client.login();
  rig.pump(0.0, 5.0);
  ASSERT_TRUE(client.connected());
  const AvatarId old_id{client.agent_id()};
  // Client-side drop (e.g. silent feed): the server still holds the session.
  client.force_disconnect();
  EXPECT_EQ(client.state(), ClientState::kDropped);
  ASSERT_EQ(rig.server->connected_clients(), 1u);
  client.login();
  rig.pump(5.0, 15.0);
  ASSERT_TRUE(client.connected());
  // The old avatar must not haunt the world as a phantom.
  EXPECT_FALSE(rig.world->find(old_id).has_value());
  EXPECT_TRUE(rig.world->find(AvatarId{client.agent_id()}).has_value());
  EXPECT_NE(client.agent_id(), old_id.value);
  EXPECT_EQ(rig.server->connected_clients(), 1u);
}

TEST(ServerClient, LoginUnderPacketLossEventuallySucceeds) {
  NetworkParams lossy;
  lossy.loss_rate = 0.3;
  Rig rig(LandArchetype::kDanceIsland, lossy);
  auto& client = rig.add_client("persistent");
  client.login();
  rig.pump(0.0, 30.0);
  EXPECT_TRUE(client.connected());
}

}  // namespace
}  // namespace slmob
