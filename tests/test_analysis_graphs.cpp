#include "analysis/graphs.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace slmob {
namespace {

Snapshot line_of_users(std::size_t n, double spacing) {
  Snapshot s;
  s.time = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s.fixes.push_back(
        {AvatarId{static_cast<std::uint32_t>(i + 1)}, {static_cast<double>(i) * spacing, 0.0, 22.0}});
  }
  return s;
}

TEST(LosGraph, EmptySnapshot) {
  const Snapshot s{};
  const LosGraph g(s, 10.0);
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.largest_component_diameter(), 0u);
  EXPECT_EQ(g.mean_clustering(), 0.0);
}

TEST(LosGraph, PathGraphMetrics) {
  // 5 users spaced 8 m apart with r=10: a path graph P5.
  const LosGraph g(line_of_users(5, 8.0), 10.0);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.largest_component_diameter(), 4u);
  EXPECT_EQ(g.components().size(), 1u);
  // Path graphs have zero clustering.
  EXPECT_DOUBLE_EQ(g.mean_clustering(), 0.0);
}

TEST(LosGraph, CliqueMetrics) {
  // 4 users within 10 m of each other: K4.
  Snapshot s;
  s.time = 0.0;
  s.fixes = {{AvatarId{1}, {0.0, 0.0, 22.0}},
             {AvatarId{2}, {3.0, 0.0, 22.0}},
             {AvatarId{3}, {0.0, 3.0, 22.0}},
             {AvatarId{4}, {3.0, 3.0, 22.0}}};
  const LosGraph g(s, 10.0);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.largest_component_diameter(), 1u);
  EXPECT_DOUBLE_EQ(g.mean_clustering(), 1.0);
}

TEST(LosGraph, DisconnectedComponents) {
  // Two pairs far apart.
  Snapshot s;
  s.time = 0.0;
  s.fixes = {{AvatarId{1}, {0.0, 0.0, 22.0}},
             {AvatarId{2}, {5.0, 0.0, 22.0}},
             {AvatarId{3}, {200.0, 200.0, 22.0}},
             {AvatarId{4}, {205.0, 200.0, 22.0}},
             {AvatarId{5}, {100.0, 100.0, 22.0}}};
  const LosGraph g(s, 10.0);
  EXPECT_EQ(g.components().size(), 3u);
  EXPECT_EQ(g.largest_component_diameter(), 1u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(LosGraph, TrianglePlusTailClustering) {
  // Nodes 0-1-2 form a triangle; node 3 hangs off node 2 (positions chosen
  // so only 2-3 are within range).
  Snapshot s;
  s.time = 0.0;
  s.fixes = {{AvatarId{1}, {0.0, 0.0, 22.0}},
             {AvatarId{2}, {6.0, 0.0, 22.0}},
             {AvatarId{3}, {3.0, 5.0, 22.0}},
             {AvatarId{4}, {3.0, 14.0, 22.0}}};
  const LosGraph g(s, 10.0);
  ASSERT_EQ(g.edge_count(), 4u);
  // Clustering: node0=1, node1=1, node2=1/3 (3 neighbors, 1 link), node3=0.
  EXPECT_NEAR(g.clustering(0), 1.0, 1e-12);
  EXPECT_NEAR(g.clustering(1), 1.0, 1e-12);
  EXPECT_NEAR(g.clustering(2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(g.clustering(3), 0.0, 1e-12);
  EXPECT_NEAR(g.mean_clustering(), (1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4.0, 1e-12);
}

TEST(LosGraph, SingletonDiameterZero) {
  Snapshot s;
  s.time = 0.0;
  s.fixes = {{AvatarId{1}, {10.0, 10.0, 22.0}}};
  const LosGraph g(s, 10.0);
  EXPECT_EQ(g.largest_component_diameter(), 0u);
}

TEST(AnalyzeGraphs, AggregatesOverSnapshots) {
  Trace t("x", 10.0);
  t.add(line_of_users(3, 8.0));   // P3: diameter 2
  Snapshot s2 = line_of_users(2, 5.0);  // P2: diameter 1
  s2.time = 10.0;
  t.add(std::move(s2));
  const GraphMetrics m = analyze_graphs(t, 10.0);
  EXPECT_EQ(m.snapshots_analyzed, 2u);
  EXPECT_EQ(m.degrees.size(), 5u);  // 3 + 2 degree samples
  EXPECT_EQ(m.diameters.size(), 2u);
  EXPECT_DOUBLE_EQ(m.diameters.max(), 2.0);
  EXPECT_DOUBLE_EQ(m.diameters.min(), 1.0);
}

TEST(AnalyzeGraphs, IsolatedFraction) {
  Trace t("x", 10.0);
  Snapshot s;
  s.time = 0.0;
  s.fixes = {{AvatarId{1}, {0.0, 0.0, 22.0}},
             {AvatarId{2}, {5.0, 0.0, 22.0}},
             {AvatarId{3}, {100.0, 100.0, 22.0}}};
  t.add(std::move(s));
  const GraphMetrics m = analyze_graphs(t, 10.0);
  EXPECT_NEAR(m.isolated_fraction, 1.0 / 3.0, 1e-12);
}

TEST(AnalyzeGraphs, EmptySnapshotsSkipped) {
  Trace t("x", 10.0);
  t.add(Snapshot{0.0, {}});
  t.add(line_of_users(2, 5.0));
  const GraphMetrics m = analyze_graphs(t, 10.0);
  EXPECT_EQ(m.snapshots_analyzed, 1u);
}

TEST(AnalyzeGraphs, UncoveredSnapshotsSkipped) {
  Trace t("x", 10.0);
  t.add(line_of_users(3, 8.0));
  Snapshot s2 = line_of_users(5, 8.0);  // falls inside the coverage gap
  s2.time = 10.0;
  t.add(std::move(s2));
  Snapshot s3 = line_of_users(2, 5.0);
  s3.time = 20.0;
  t.add(std::move(s3));
  t.add_gap(5.0, 15.0);
  const GraphMetrics m = analyze_graphs(t, 10.0);
  EXPECT_EQ(m.snapshots_analyzed, 2u);
  EXPECT_EQ(m.degrees.size(), 5u);  // 3 + 2, nothing from the gap snapshot
}

TEST(AnalyzeGraphs, StrideSkipsSnapshots) {
  Trace t("x", 10.0);
  for (int i = 0; i < 10; ++i) {
    Snapshot s = line_of_users(2, 5.0);
    s.time = i * 10.0;
    t.add(std::move(s));
  }
  EXPECT_EQ(analyze_graphs(t, 10.0, 1).snapshots_analyzed, 10u);
  EXPECT_EQ(analyze_graphs(t, 10.0, 3).snapshots_analyzed, 4u);
  EXPECT_THROW((void)analyze_graphs(t, 10.0, 0), std::invalid_argument);
}

TEST(AnalyzeGraphs, DiameterShrinksWithLargerRange) {
  // The paper's Fig 2(b)/(e): larger radio range, smaller diameter (for a
  // connected population).
  Trace t("x", 10.0);
  t.add(line_of_users(10, 9.0));
  const GraphMetrics small_r = analyze_graphs(t, 10.0);
  const GraphMetrics large_r = analyze_graphs(t, 80.0);
  EXPECT_GT(small_r.diameters.max(), large_r.diameters.max());
}

// Property: invariants over random snapshots.
class GraphProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphProperty, Invariants) {
  Rng rng(GetParam());
  Snapshot s;
  s.time = 0.0;
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 80));
  for (std::size_t i = 0; i < n; ++i) {
    s.fixes.push_back({AvatarId{static_cast<std::uint32_t>(i + 1)},
                       {rng.uniform(0.0, 256.0), rng.uniform(0.0, 256.0), 22.0}});
  }
  const LosGraph g(s, 20.0);
  // Diameter < n; clustering in [0,1]; degree sum = 2*edges; components
  // partition the nodes.
  EXPECT_LT(g.largest_component_diameter(), n);
  std::size_t degree_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    degree_sum += g.degree(i);
    const double c = g.clustering(i);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
  EXPECT_EQ(degree_sum, 2 * g.edge_count());
  std::size_t covered = 0;
  for (const auto& comp : g.components()) covered += comp.size();
  EXPECT_EQ(covered, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace slmob
