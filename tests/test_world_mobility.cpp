#include "world/levy_walk.hpp"
#include "world/poi_gravity.hpp"
#include "world/random_waypoint.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "world/archetypes.hpp"

namespace slmob {
namespace {

Avatar test_avatar(const Land& land) {
  Avatar a;
  a.id = AvatarId{1};
  a.pos = land.clamp({128.0, 128.0, 22.0});
  return a;
}

TEST(Kinematics, StepMovesTowardWaypoint) {
  Avatar a;
  a.pos = {0.0, 0.0, 0.0};
  a.waypoint = {10.0, 0.0, 0.0};
  a.speed = 2.0;
  a.state = AvatarState::kTravelling;
  EXPECT_FALSE(step_kinematics(a, 1.0));
  EXPECT_NEAR(a.pos.x, 2.0, 1e-12);
  EXPECT_FALSE(step_kinematics(a, 3.0));
  EXPECT_NEAR(a.pos.x, 8.0, 1e-12);
  EXPECT_TRUE(step_kinematics(a, 2.0));  // arrives exactly
  EXPECT_EQ(a.pos, a.waypoint);
}

TEST(Kinematics, PausedAvatarDoesNotMove) {
  Avatar a;
  a.pos = {5.0, 5.0, 0.0};
  a.waypoint = {10.0, 10.0, 0.0};
  a.speed = 2.0;
  a.state = AvatarState::kPaused;
  EXPECT_FALSE(step_kinematics(a, 1.0));
  EXPECT_EQ(a.pos, (Vec3{5.0, 5.0, 0.0}));
}

TEST(PoiGravity, RequiresPois) {
  Land empty("no-pois");
  EXPECT_THROW(PoiGravityModel(empty, {}), std::invalid_argument);
}

class MobilityModelTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<MobilityModel> make_model(const Land& land) const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<PoiGravityModel>(land, PoiGravityParams{});
      case 1:
        return std::make_unique<RandomWaypointModel>();
      default:
        return std::make_unique<LevyWalkModel>();
    }
  }
};

TEST_P(MobilityModelTest, DecisionsStayInLand) {
  const Land land = make_land(LandArchetype::kApfelLand);
  auto model = make_model(land);
  Rng rng(1);
  Avatar avatar = test_avatar(land);
  MobilityDecision d = model->on_login(avatar, land, rng);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(land.contains(d.waypoint)) << "iteration " << i;
    EXPECT_GT(d.speed, 0.0);
    EXPECT_GE(d.pause, 0.0);
    EXPECT_GE(d.jitter_radius, 0.0);
    avatar.pos = d.waypoint;
    avatar.current_poi = d.poi_index;
    if (avatar.home_poi < 0 && d.poi_index >= 0) avatar.home_poi = d.poi_index;
    d = model->next(avatar, land, rng);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, MobilityModelTest, ::testing::Values(0, 1, 2));

TEST(PoiGravity, RegularDecisionsTargetPois) {
  const Land land = make_land(LandArchetype::kDanceIsland);
  PoiGravityParams params;
  params.p_login_wander = 0.0;
  PoiGravityModel model(land, params);
  Rng rng(2);
  Avatar avatar = test_avatar(land);
  const MobilityDecision d = model.on_login(avatar, land, rng);
  ASSERT_GE(d.poi_index, 0);
  const Poi& poi = land.pois().at(static_cast<std::size_t>(d.poi_index));
  EXPECT_LE(d.waypoint.distance2d_to(poi.center), poi.radius + 1.0);
}

TEST(PoiGravity, KindAssignmentFractions) {
  const Land land = make_land(LandArchetype::kApfelLand);
  PoiGravityParams params;
  params.idler_fraction = 0.2;
  params.explorer_fraction = 0.1;
  PoiGravityModel model(land, params);
  Rng rng(3);
  int idlers = 0;
  int explorers = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const AvatarKind kind = model.assign_kind(rng);
    idlers += kind == AvatarKind::kIdler ? 1 : 0;
    explorers += kind == AvatarKind::kExplorer ? 1 : 0;
  }
  EXPECT_NEAR(idlers / static_cast<double>(kN), 0.2, 0.02);
  EXPECT_NEAR(explorers / static_cast<double>(kN), 0.1, 0.02);
}

TEST(PoiGravity, IdlersStayPut) {
  const Land land = make_land(LandArchetype::kApfelLand);
  PoiGravityModel model(land, PoiGravityParams{});
  Rng rng(4);
  Avatar avatar = test_avatar(land);
  avatar.kind = AvatarKind::kIdler;
  avatar.current_poi = 0;
  const MobilityDecision d = model.next(avatar, land, rng);
  EXPECT_EQ(d.waypoint, avatar.pos);
  EXPECT_EQ(d.jitter_radius, 0.0);
}

TEST(PoiGravity, HomeReturnTargetsHomePoi) {
  const Land land = make_land(LandArchetype::kDanceIsland);
  PoiGravityParams params;
  params.p_switch_poi = 1.0;    // always switch
  params.p_return_home = 1.0;   // always return home when away
  PoiGravityModel model(land, params);
  Rng rng(5);
  Avatar avatar = test_avatar(land);
  avatar.kind = AvatarKind::kRegular;
  avatar.home_poi = 0;
  avatar.current_poi = 1;
  const MobilityDecision d = model.next(avatar, land, rng);
  EXPECT_EQ(d.poi_index, 0);
}

TEST(LevyWalk, FlightLengthsAreBoundedPareto) {
  LevyWalkParams params;
  params.flight_xm = 2.0;
  params.flight_cap = 100.0;
  LevyWalkModel model(params);
  // Use a huge land so the clamp never binds and flight lengths show.
  const Land land("big", 100000.0);
  Rng rng(6);
  Avatar avatar;
  avatar.pos = land.clamp({50000.0, 50000.0, 0.0});
  for (int i = 0; i < 2000; ++i) {
    const MobilityDecision d = model.next(avatar, land, rng);
    const double flight = avatar.pos.distance2d_to(d.waypoint);
    EXPECT_GE(flight, 2.0 - 1e-9);
    EXPECT_LE(flight, 100.0 + 1e-9);
  }
}

TEST(RandomWaypoint, CoversTheLand) {
  RandomWaypointModel model;
  const Land land("x");
  Rng rng(7);
  Avatar avatar = test_avatar(land);
  bool low_x = false;
  bool high_x = false;
  for (int i = 0; i < 500; ++i) {
    const MobilityDecision d = model.next(avatar, land, rng);
    low_x = low_x || d.waypoint.x < 64.0;
    high_x = high_x || d.waypoint.x > 192.0;
  }
  EXPECT_TRUE(low_x);
  EXPECT_TRUE(high_x);
}

}  // namespace
}  // namespace slmob
