// Coverage for the extended LSL built-in library (string/list utilities).
#include "lsl/interpreter.hpp"

#include <gtest/gtest.h>

namespace slmob::lsl {
namespace {

class NullHost : public LslHost {
 public:
  void ll_say(std::int64_t, const std::string&) override {}
  void ll_owner_say(const std::string&) override {}
  void ll_set_timer_event(double) override {}
  void ll_sensor_repeat(const std::string&, const std::string&, std::int64_t, double,
                        double, double) override {}
  Vec3 ll_get_pos() override { return {}; }
  double ll_get_time() override { return 0.0; }
  std::int64_t ll_get_unix_time() override { return 0; }
  double ll_frand(double max) override { return max / 2.0; }
  std::string ll_http_request(const std::string&, const List&,
                              const std::string&) override {
    return "k";
  }
  std::int64_t ll_get_free_memory() override { return 16384; }
  std::size_t detected_count() const override { return 0; }
  Vec3 detected_pos(std::size_t) const override { return {}; }
  std::string detected_key(std::size_t) const override { return {}; }
  std::string detected_name(std::size_t) const override { return {}; }
};

// Runs a script whose state_entry assigns to global `g`, returns g.
Value run_g(const std::string& body_and_globals) {
  static NullHost host;
  Interpreter interp(body_and_globals, host);
  interp.start();
  const Value* g = interp.global("g");
  EXPECT_NE(g, nullptr);
  return g != nullptr ? *g : Value();
}

TEST(LslBuiltins, ToUpperLower) {
  EXPECT_EQ(run_g("string g; default { state_entry() { g = llToUpper(\"aBc9\"); } }")
                .as_string(),
            "ABC9");
  EXPECT_EQ(run_g("string g; default { state_entry() { g = llToLower(\"AbC9\"); } }")
                .as_string(),
            "abc9");
}

TEST(LslBuiltins, StringTrim) {
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llStringTrim(\"  x  \", STRING_TRIM); } }")
                .as_string(),
            "x");
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llStringTrim(\"  x  \", STRING_TRIM_HEAD); } }")
                .as_string(),
            "x  ");
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llStringTrim(\"  x  \", STRING_TRIM_TAIL); } }")
                .as_string(),
            "  x");
}

TEST(LslBuiltins, InsertDeleteSubString) {
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llInsertString(\"abef\", 2, \"cd\"); } }")
                .as_string(),
            "abcdef");
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llDeleteSubString(\"abcdef\", 1, 3); } }")
                .as_string(),
            "aef");
  // Negative indices count from the end.
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llDeleteSubString(\"abcdef\", -2, -1); } }")
                .as_string(),
            "abcd");
}

TEST(LslBuiltins, ParseString2List) {
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llDumpList2String(llParseString2List(\"a,b,,c\", [\",\"], []), \"|\"); } }")
                .as_string(),
            "a|b|c");  // empty fields dropped, LSL semantics
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llDumpList2String("
                  "llParseString2List(\"1+2=3\", [\"=\"], [\"+\"]), \"|\"); } }")
                .as_string(),
            "1|+|2|3");  // spacers kept as tokens
}

TEST(LslBuiltins, CsvRoundTrip) {
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llList2CSV([1, \"two\", 3]); } }")
                .as_string(),
            "1, two, 3");
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llDumpList2String(llCSV2List(\"a, b,c\"), \"|\"); } }")
                .as_string(),
            "a|b|c");
}

TEST(LslBuiltins, List2IntegerAndFloat) {
  EXPECT_EQ(run_g("integer g; default { state_entry() { "
                  "g = llList2Integer([\"7\", 8, 9.9], 0); } }")
                .as_int(),
            7);
  EXPECT_EQ(run_g("integer g; default { state_entry() { "
                  "g = llList2Integer([\"7\", 8, 9.9], -2); } }")
                .as_int(),
            8);
  EXPECT_EQ(run_g("integer g; default { state_entry() { "
                  "g = llList2Integer([1], 5); } }")
                .as_int(),
            0);  // out of range -> 0
  EXPECT_DOUBLE_EQ(run_g("float g; default { state_entry() { "
                         "g = llList2Float([\"2.5\"], 0); } }")
                       .as_float(),
                   2.5);
}

TEST(LslBuiltins, ListSortAscendingDescending) {
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llDumpList2String(llListSort([3, 1, 2], 1, TRUE), \"\"); } }")
                .as_string(),
            "123");
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llDumpList2String(llListSort([3, 1, 2], 1, FALSE), \"\"); } }")
                .as_string(),
            "321");
}

TEST(LslBuiltins, ListSortWithStrideKeepsPairs) {
  // (name, score) pairs sorted by name.
  EXPECT_EQ(run_g("string g; default { state_entry() { "
                  "g = llDumpList2String("
                  "llListSort([\"b\", 2, \"a\", 1], 2, TRUE), \"|\"); } }")
                .as_string(),
            "a|1|b|2");
}

TEST(LslBuiltins, ListFindList) {
  EXPECT_EQ(run_g("integer g; default { state_entry() { "
                  "g = llListFindList([1, 2, 3, 4], [3, 4]); } }")
                .as_int(),
            2);
  EXPECT_EQ(run_g("integer g; default { state_entry() { "
                  "g = llListFindList([1, 2], [9]); } }")
                .as_int(),
            -1);
  EXPECT_EQ(run_g("integer g; default { state_entry() { "
                  "g = llListFindList([1, 2], []); } }")
                .as_int(),
            0);
}

}  // namespace
}  // namespace slmob::lsl
