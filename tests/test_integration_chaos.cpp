// End-to-end chaos: the acceptance scenario of the fault-injection work.
//
// A 6 h Isle of View run with two scripted 10-minute transport blackouts
// must complete without crashing, the crawler must reconnect with backoff
// after each outage, the trace must carry one coverage gap per blackout, and
// the gap-aware analysis must never produce a contact or inter-contact
// observation that bridges a gap.
#include <gtest/gtest.h>

#include <map>

#include "core/experiment.hpp"
#include "net/fault_schedule.hpp"
#include "trace/sessions.hpp"

namespace slmob {
namespace {

constexpr Seconds kSixHours = 6.0 * kSecondsPerHour;

struct ChaosRun {
  ExperimentResults results;
  FaultSchedule faults;
};

const ChaosRun& blackout_run() {
  static const ChaosRun run = [] {
    ChaosRun r;
    r.faults = FaultSchedule::scenario("blackouts", kSixHours, 42);
    ExperimentConfig cfg;
    cfg.archetype = LandArchetype::kIsleOfView;
    cfg.duration = kSixHours;
    cfg.seed = 42;
    cfg.ranges = {kBluetoothRange};
    cfg.fault_scenario = "blackouts";
    r.results = run_experiment(cfg);
    return r;
  }();
  return run;
}

TEST(ChaosBlackouts, CrawlerSurvivesAndReconnects) {
  const auto& run = blackout_run();
  const auto& stats = run.results.crawler_stats;
  EXPECT_GT(stats.relogins, 0u);
  // Sampling recovered after each of the two outages.
  EXPECT_GE(stats.backoff_resets, 2u);
  // The run kept producing data to the end: ~2160 samples minus two 600 s
  // outages and the reconnect transients.
  EXPECT_GT(stats.snapshots_taken, 1800u);
}

TEST(ChaosBlackouts, TraceCarriesOneGapPerBlackout) {
  const auto& run = blackout_run();
  const Trace& trace = run.results.trace;
  const auto blackouts = run.faults.windows_of(FaultKind::kBlackout);
  ASSERT_EQ(blackouts.size(), 2u);
  ASSERT_EQ(trace.gaps().size(), 2u);
  // Each recorded gap covers its blackout window (the gap is a little wider:
  // it starts at the first sample with stale minimap data — up to two
  // sampling intervals in — and ends at the first snapshot after re-login).
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(trace.gaps()[i].start, blackouts[i].start);
    EXPECT_LE(trace.gaps()[i].start, blackouts[i].start + 30.0);
    EXPECT_GE(trace.gaps()[i].end, blackouts[i].end);
    EXPECT_LT(trace.gaps()[i].end, blackouts[i].end + 600.0);  // backoff-bounded
  }
}

TEST(ChaosBlackouts, NoSnapshotInsideAGap) {
  const Trace& trace = blackout_run().results.trace;
  for (const auto& snap : trace.snapshots()) {
    EXPECT_TRUE(trace.covered_at(snap.time)) << "snapshot at " << snap.time;
  }
}

TEST(ChaosBlackouts, NoContactSpansAGap) {
  const auto& run = blackout_run();
  const Trace& trace = run.results.trace;
  const auto& contacts = run.results.contacts.at(kBluetoothRange);
  ASSERT_GT(contacts.intervals.size(), 0u);
  for (const auto& interval : contacts.intervals) {
    EXPECT_FALSE(trace.spans_gap(interval.start, interval.end))
        << "contact [" << interval.start << ", " << interval.end << ") bridges a gap";
  }
}

TEST(ChaosBlackouts, NoInterContactSpansAGap) {
  const auto& run = blackout_run();
  const Trace& trace = run.results.trace;
  const auto& contacts = run.results.contacts.at(kBluetoothRange);
  // Reconstruct the expected ICT count: consecutive contacts of the same
  // pair contribute one sample iff the span between them is fully covered.
  std::map<std::pair<std::uint32_t, std::uint32_t>, const ContactInterval*> last;
  std::size_t expected = 0;
  for (const auto& interval : contacts.intervals) {
    const auto key = std::make_pair(interval.a.value, interval.b.value);
    const auto it = last.find(key);
    if (it != last.end() && !trace.spans_gap(it->second->end, interval.start)) {
      ++expected;
    }
    last[key] = &interval;
  }
  EXPECT_EQ(contacts.inter_contact_times.size(), expected);
}

TEST(ChaosBlackouts, NoSessionSpansAGap) {
  const auto& run = blackout_run();
  const Trace& trace = run.results.trace;
  const auto sessions = extract_sessions(trace);
  ASSERT_GT(sessions.size(), 0u);
  for (const auto& session : sessions) {
    EXPECT_FALSE(trace.spans_gap(session.login, session.logout))
        << "session of avatar " << session.avatar.value << " bridges a gap";
  }
}

TEST(ChaosBlackouts, ZonesNormalizeByCoveredSnapshots) {
  const auto& run = blackout_run();
  const Trace& trace = run.results.trace;
  std::size_t covered = 0;
  for (const auto& snap : trace.snapshots()) {
    if (trace.covered_at(snap.time)) ++covered;
  }
  // Mean occupancy summed over cells ~= average concurrent users; if the
  // divisor wrongly included gap time this would undershoot.
  double mean_total = 0.0;
  for (const double m : run.results.zones.mean_per_cell) mean_total += m;
  double fixes_per_covered = 0.0;
  for (const auto& snap : trace.snapshots()) {
    fixes_per_covered += static_cast<double>(snap.fixes.size());
  }
  fixes_per_covered /= static_cast<double>(covered);
  EXPECT_NEAR(mean_total, fixes_per_covered, 1e-6);
}

TEST(ChaosFaultFree, AnalysisBitIdenticalAcrossThreadCounts) {
  // A fault-free run records no gaps, and the gap-aware pipeline must leave
  // its results bit-identical at every thread count.
  ExperimentConfig cfg;
  cfg.archetype = LandArchetype::kDanceIsland;
  cfg.duration = 1800.0;
  cfg.seed = 7;
  cfg.ranges = {kBluetoothRange};
  cfg.analysis_threads = 1;
  const ExperimentResults one = run_experiment(cfg);
  EXPECT_EQ(one.summary.gap_count, 0u);
  cfg.analysis_threads = 4;
  const ExperimentResults four = run_experiment(cfg);

  const auto& c1 = one.contacts.at(kBluetoothRange);
  const auto& c4 = four.contacts.at(kBluetoothRange);
  ASSERT_EQ(c1.intervals.size(), c4.intervals.size());
  for (std::size_t i = 0; i < c1.intervals.size(); ++i) {
    EXPECT_EQ(c1.intervals[i].a, c4.intervals[i].a);
    EXPECT_EQ(c1.intervals[i].b, c4.intervals[i].b);
    EXPECT_EQ(c1.intervals[i].start, c4.intervals[i].start);
    EXPECT_EQ(c1.intervals[i].end, c4.intervals[i].end);
  }
  const auto s1 = c1.contact_times.sorted();
  const auto s4 = c4.contact_times.sorted();
  ASSERT_EQ(s1.size(), s4.size());
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_EQ(s1[i], s4[i]);
  const auto& g1 = one.graphs.at(kBluetoothRange);
  const auto& g4 = four.graphs.at(kBluetoothRange);
  EXPECT_EQ(g1.snapshots_analyzed, g4.snapshots_analyzed);
  EXPECT_EQ(g1.isolated_fraction, g4.isolated_fraction);
}

TEST(ChaosScenarios, AllScenariosCompleteAndAreDeterministic) {
  for (const std::string& name : FaultSchedule::scenario_names()) {
    ExperimentConfig cfg;
    cfg.archetype = LandArchetype::kDanceIsland;
    cfg.duration = 3600.0;
    cfg.seed = 11;
    cfg.ranges = {kBluetoothRange};
    cfg.fault_scenario = name;
    const ExperimentResults a = run_experiment(cfg);
    const ExperimentResults b = run_experiment(cfg);
    EXPECT_EQ(a.summary.snapshot_count, b.summary.snapshot_count) << name;
    EXPECT_EQ(a.summary.gap_count, b.summary.gap_count) << name;
    EXPECT_EQ(a.summary.gap_seconds, b.summary.gap_seconds) << name;
    EXPECT_EQ(a.contacts.at(kBluetoothRange).intervals.size(),
              b.contacts.at(kBluetoothRange).intervals.size())
        << name;
    for (const auto& interval : a.contacts.at(kBluetoothRange).intervals) {
      EXPECT_FALSE(a.trace.spans_gap(interval.start, interval.end)) << name;
    }
  }
}

}  // namespace
}  // namespace slmob
