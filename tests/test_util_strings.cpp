#include "util/csv.hpp"
#include "util/strings.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace slmob {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitEmptyInput) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("HTTP/1.0", "HTTP/"));
  EXPECT_FALSE(starts_with("HT", "HTTP/"));
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("Content-Length", "content-lengt"));
}

TEST(Strings, ParseNonNegativeInt) {
  EXPECT_EQ(parse_non_negative_int("42"), 42);
  EXPECT_EQ(parse_non_negative_int(" 42 "), 42);
  EXPECT_EQ(parse_non_negative_int("-1"), -1);
  EXPECT_EQ(parse_non_negative_int("x42"), -1);
  EXPECT_EQ(parse_non_negative_int("42x"), -1);
  EXPECT_EQ(parse_non_negative_int(""), -1);
}

TEST(Csv, WriterProducesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a", "b"});
  w.row({"1", "2"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Csv, WriterRejectsFieldsNeedingQuotes) {
  std::ostringstream os;
  CsvWriter w(os);
  EXPECT_THROW(w.row({"a,b"}), std::invalid_argument);
  EXPECT_THROW(w.row({"a\"b"}), std::invalid_argument);
  EXPECT_THROW(w.row({"a\nb"}), std::invalid_argument);
}

TEST(Csv, ParseRoundTrip) {
  const auto rows = parse_csv("a,b\n1,2\r\n\n3,4\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"3", "4"}));
}

}  // namespace
}  // namespace slmob
