// util/wallclock.hpp is the only sanctioned wall-clock entry point
// (slmob-lint's determinism/wall-clock allowlist anchor). These tests pin
// the seam's contract: monotonic real readings by default, and a swappable
// deterministic mock so watchdog/backoff logic is testable without sleeping.
#include "util/wallclock.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace {

using slmob::wallclock::TimePoint;

// The mock advances 1 ms per call so elapsed-time logic sees motion.
TimePoint fake_now() {
  static int calls = 0;
  return TimePoint{} + std::chrono::milliseconds(++calls);
}

TEST(Wallclock, RealClockIsMonotonic) {
  const TimePoint a = slmob::wallclock::now();
  const TimePoint b = slmob::wallclock::now();
  EXPECT_LE(a, b);
  EXPECT_GE(slmob::wallclock::ms_since(a), 0.0);
  EXPECT_GE(slmob::wallclock::seconds_since(a), 0.0);
}

TEST(Wallclock, MsSinceMeasuresElapsedTime) {
  const TimePoint t0 = slmob::wallclock::now();
  slmob::wallclock::sleep_ms(5.0);
  EXPECT_GE(slmob::wallclock::ms_since(t0), 4.0);  // scheduler slop tolerated
}

TEST(Wallclock, MockReplacesAndRestores) {
  const auto prev = slmob::wallclock::exchange_now_for_test(&fake_now);
  const TimePoint a = slmob::wallclock::now();
  const TimePoint b = slmob::wallclock::now();
  // Deterministic motion: exactly 1 ms per reading, no real time involved.
  EXPECT_EQ(std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count(), 1);
  EXPECT_DOUBLE_EQ(slmob::wallclock::ms_since(a), 2.0);  // one more reading

  slmob::wallclock::exchange_now_for_test(prev);
  // Restored: readings are real again (comfortably past the tiny mock epoch).
  EXPECT_GT(slmob::wallclock::now(), TimePoint{} + std::chrono::seconds(1));
}

TEST(Wallclock, ExchangeNullptrRestoresRealClock) {
  slmob::wallclock::exchange_now_for_test(&fake_now);
  slmob::wallclock::exchange_now_for_test(nullptr);
  EXPECT_GT(slmob::wallclock::now(), TimePoint{} + std::chrono::seconds(1));
}

TEST(Wallclock, SleepIgnoresNonPositive) {
  const TimePoint t0 = slmob::wallclock::now();
  slmob::wallclock::sleep_ms(0.0);
  slmob::wallclock::sleep_ms(-3.0);
  EXPECT_LT(slmob::wallclock::ms_since(t0), 100.0);
}

}  // namespace
