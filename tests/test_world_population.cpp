#include "world/population.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

TEST(Population, RejectsBadParams) {
  PopulationParams p;
  p.target_unique_users = 0.0;
  EXPECT_THROW(PopulationProcess{p}, std::invalid_argument);
  p = {};
  p.diurnal_depth = 1.0;
  EXPECT_THROW(PopulationProcess{p}, std::invalid_argument);
  p = {};
  p.revisit_probability = 1.0;
  EXPECT_THROW(PopulationProcess{p}, std::invalid_argument);
}

TEST(Population, RateScalesWithRevisits) {
  PopulationParams p;
  p.target_unique_users = 864.0;
  p.horizon = kSecondsPerDay;
  p.diurnal_depth = 0.0;
  p.revisit_probability = 0.0;
  const PopulationProcess without(p);
  p.revisit_probability = 0.5;
  const PopulationProcess with(p);
  EXPECT_NEAR(with.rate(0.0), 2.0 * without.rate(0.0), 1e-12);
}

TEST(Population, DiurnalModulationAveragesOut) {
  PopulationParams p;
  p.target_unique_users = 1000.0;
  p.revisit_probability = 0.0;
  p.diurnal_depth = 0.4;
  const PopulationProcess proc(p);
  double total = 0.0;
  constexpr int kSteps = 24 * 60;
  for (int i = 0; i < kSteps; ++i) {
    total += proc.rate(i * 60.0) * 60.0;
  }
  EXPECT_NEAR(total, 1000.0, 1.0);
}

TEST(Population, ArrivalsMatchExpectation) {
  PopulationParams p;
  p.target_unique_users = 8640.0;  // 0.1 arrivals / s
  p.revisit_probability = 0.0;
  p.diurnal_depth = 0.0;
  const PopulationProcess proc(p);
  Rng rng(1);
  std::size_t total = 0;
  constexpr int kTicks = 50000;
  for (int i = 0; i < kTicks; ++i) total += proc.arrivals(0.0, 1.0, rng);
  EXPECT_NEAR(static_cast<double>(total) / kTicks, 0.1, 0.01);
}

TEST(Population, SessionDurationsRespectBounds) {
  PopulationParams p;
  p.session_median = 600.0;
  p.session_sigma = 1.2;
  p.session_min = 20.0;
  p.session_cap = 4.0 * kSecondsPerHour;
  const PopulationProcess proc(p);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const Seconds s = proc.session_duration(rng);
    EXPECT_GE(s, 20.0);
    EXPECT_LE(s, 4.0 * kSecondsPerHour);
  }
}

TEST(Population, SessionMedianApproximatelyConfigured) {
  PopulationParams p;
  p.session_median = 600.0;
  p.session_sigma = 1.0;
  const PopulationProcess proc(p);
  Rng rng(3);
  int below = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (proc.session_duration(rng) < 600.0) ++below;
  }
  EXPECT_NEAR(below / static_cast<double>(kN), 0.5, 0.02);
}

}  // namespace
}  // namespace slmob
