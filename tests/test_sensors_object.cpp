#include "sensors/sensor_object.hpp"

#include <gtest/gtest.h>

#include "sensors/collector.hpp"
#include "sensors/deployment.hpp"
#include "world/archetypes.hpp"

namespace slmob {
namespace {

struct SensorRig {
  // populated=true uses the full Isle Of View population; false gives an
  // empty land where only debug avatars exist (for precise assertions).
  explicit SensorRig(bool populated = true)
      : world(populated ? make_world(LandArchetype::kIsleOfView, 1) : empty_world()),
        net({}, 2),
        collector(net, "Isle Of View") {}

  static std::unique_ptr<World> empty_world() {
    Land land = make_land(LandArchetype::kIsleOfView);
    auto model = std::make_unique<PoiGravityModel>(land, PoiGravityParams{});
    PopulationParams pop;
    pop.target_unique_users = 1e-6;  // effectively no arrivals
    pop.revisit_probability = 0.0;
    return std::make_unique<World>(std::move(land), std::move(model), pop, 1);
  }

  SensorObject& make_sensor(Vec3 pos, std::string_view script, SensorLimits limits = {}) {
    sensors.push_back(std::make_unique<SensorObject>(
        ObjectId{static_cast<std::uint32_t>(sensors.size() + 1)}, *world, net,
        collector.address(), pos, script, now, limits, 42));
    return *sensors.back();
  }

  void pump(Seconds duration) {
    const Seconds until = now + duration;
    for (; now < until; now += 1.0) {
      world->tick(now, 1.0);
      for (auto& s : sensors) s->tick(now, 1.0);
      net.tick(now, 1.0);
    }
  }

  std::unique_ptr<World> world;
  SimNetwork net;
  HttpCollector collector;
  std::vector<std::unique_ptr<SensorObject>> sensors;
  Seconds now{0.0};
};

TEST(SensorObject, DefaultScriptCollectsAndFlushes) {
  SensorRig rig;
  rig.make_sensor({128.0, 128.0, 22.0}, default_sensor_script(10.0));
  rig.pump(600.0);
  EXPECT_GT(rig.collector.stats().requests, 0u);
  EXPECT_GT(rig.collector.stats().records, 0u);
  EXPECT_EQ(rig.collector.stats().malformed_records, 0u);
  EXPECT_FALSE(rig.sensors[0]->failed());
}

TEST(SensorObject, DetectionCapSixteen) {
  SensorRig rig;
  // Pack 30 synthetic avatars around one point.
  for (int i = 0; i < 30; ++i) {
    rig.world->debug_add_synthetic(0.0, {128.0 + i * 0.1, 128.0, 22.0}, 1e9);
  }
  auto& sensor = rig.make_sensor({128.0, 128.0, 22.0}, default_sensor_script(10.0));
  rig.pump(25.0);
  EXPECT_GT(sensor.stats().sweeps, 0u);
  EXPECT_GT(sensor.stats().detections_truncated, 0u);
  // Every sweep reports at most 16.
  EXPECT_LE(sensor.stats().detections, sensor.stats().sweeps * 16);
}

TEST(SensorObject, RangeLimitEnforced) {
  SensorRig rig(/*populated=*/false);
  rig.world->debug_add_synthetic(0.0, {10.0, 10.0, 22.0}, 1e9);   // far corner
  rig.world->debug_add_synthetic(0.0, {130.0, 128.0, 22.0}, 1e9);  // near
  auto& sensor = rig.make_sensor({128.0, 128.0, 22.0}, R"(
integer gSeen = 0;
default {
  state_entry() { llSensorRepeat("", "", AGENT, 500.0, PI, 10.0); }
  sensor(integer n) { gSeen = n; }
}
)");
  rig.pump(25.0);
  // Requested 500 m, but the platform caps at 96 m: only the near avatar.
  EXPECT_EQ(sensor.stats().detections, sensor.stats().sweeps * 1);
}

TEST(SensorObject, HttpThrottleKicksIn) {
  SensorRig rig;
  SensorLimits limits;
  limits.http_requests_per_minute = 3;
  auto& sensor = rig.make_sensor({128.0, 128.0, 22.0}, R"(
integer gFails = 0;
default {
  state_entry() { llSetTimerEvent(1.0); }
  timer() { llHTTPRequest("http://c/r", [], "x"); }
  http_response(key k, integer status, list meta, string body) {
    if (status == 499) gFails = gFails + 1;
  }
}
)", limits);
  rig.pump(30.0);
  EXPECT_EQ(sensor.stats().http_requests, 3u);  // only 3 allowed per minute
  EXPECT_GT(sensor.stats().http_throttled, 10u);
}

TEST(SensorObject, MemoryExhaustionCrashesScript) {
  SensorRig rig;
  SensorLimits limits;
  limits.script_memory = 1024;  // tiny
  auto& sensor = rig.make_sensor({128.0, 128.0, 22.0}, R"(
string gCache = "";
default {
  state_entry() { llSetTimerEvent(1.0); }
  timer() { gCache += "0123456789abcdef0123456789abcdef"; }
}
)", limits);
  rig.pump(120.0);
  EXPECT_TRUE(sensor.failed());
  EXPECT_NE(sensor.last_error().find("stack-heap"), std::string::npos);
}

TEST(SensorObject, DefensiveScriptSurvivesMemoryPressure) {
  SensorRig rig;
  SensorLimits limits;
  limits.script_memory = 2048;
  limits.http_requests_per_minute = 0;  // flushes always throttled: cache only grows
  auto& sensor = rig.make_sensor({128.0, 128.0, 22.0}, R"(
string gCache = "";
integer gDropped = 0;
default {
  state_entry() { llSetTimerEvent(1.0); }
  timer() {
    if (llGetFreeMemory() > 128) {
      gCache += "0123456789abcdef";
    } else {
      gDropped = gDropped + 1;
    }
  }
}
)", limits);
  rig.pump(300.0);
  EXPECT_FALSE(sensor.failed());  // checks llGetFreeMemory, so never crashes
  EXPECT_GT(sensor.memory_usage(), 1024u);
}

TEST(SensorObject, TimeoutWhenCollectorUnreachable) {
  SensorRig rig;
  NetworkParams lossy;
  lossy.loss_rate = 1.0;
  rig.net.set_params(lossy);
  SensorLimits limits;
  limits.http_timeout = 5.0;
  auto& sensor = rig.make_sensor({128.0, 128.0, 22.0}, R"(
integer gTimeouts = 0;
default {
  state_entry() { llSetTimerEvent(10.0); }
  timer() { llHTTPRequest("http://c/r", [], "x"); }
  http_response(key k, integer status, list meta, string body) {
    if (status == 408) gTimeouts = gTimeouts + 1;
  }
}
)", limits);
  rig.pump(60.0);
  EXPECT_GT(sensor.stats().http_timeouts, 0u);
}

TEST(SensorObject, CollectorTraceMatchesGroundTruthPositions) {
  SensorRig rig(/*populated=*/false);
  rig.world->debug_add_synthetic(0.0, {100.0, 140.0, 22.0}, 1e9);
  rig.make_sensor({128.0, 128.0, 22.0}, default_sensor_script(10.0));
  rig.pump(400.0);
  const Trace trace = rig.collector.build_trace(10.0);
  ASSERT_FALSE(trace.empty());
  bool found = false;
  for (const auto& snap : trace.snapshots()) {
    for (const auto& fix : snap.fixes) {
      if (fix.pos.distance2d_to({100.0, 140.0, 22.0}) < 1.0) found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace slmob
