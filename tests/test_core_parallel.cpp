// Determinism of the parallel analysis pipeline: analyze_trace must produce
// bit-identical results (ECDF sample sequences, interval lists, zone and trip
// statistics) for any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/experiment.hpp"
#include "util/rng.hpp"

namespace slmob {
namespace {

// A seeded trace of avatars random-walking around two hotspots, with churn
// (avatars joining/leaving), so all analyses produce non-trivial output.
Trace seeded_trace(std::uint64_t seed, std::size_t snapshots, std::size_t users) {
  Rng rng(seed);
  std::vector<Vec3> pos(users);
  std::vector<bool> online(users, false);
  for (std::size_t u = 0; u < users; ++u) {
    const double cx = (u % 2 == 0) ? 64.0 : 192.0;
    pos[u] = {cx + rng.uniform(-30.0, 30.0), 128.0 + rng.uniform(-30.0, 30.0), 22.0};
    online[u] = rng.uniform(0.0, 1.0) < 0.7;
  }
  Trace t("determinism", 10.0);
  for (std::size_t s = 0; s < snapshots; ++s) {
    Snapshot snap;
    snap.time = static_cast<double>(s) * 10.0;
    for (std::size_t u = 0; u < users; ++u) {
      if (rng.uniform(0.0, 1.0) < 0.02) online[u] = !online[u];
      if (!online[u]) continue;
      pos[u].x = std::clamp(pos[u].x + rng.uniform(-5.0, 5.0), 0.0, 255.0);
      pos[u].y = std::clamp(pos[u].y + rng.uniform(-5.0, 5.0), 0.0, 255.0);
      snap.fixes.push_back({AvatarId{static_cast<std::uint32_t>(u + 1)}, pos[u]});
    }
    t.add(std::move(snap));
  }
  return t;
}

void expect_same_ecdf(const Ecdf& a, const Ecdf& b, const char* what) {
  const auto sa = a.sorted();
  const auto sb = b.sorted();
  ASSERT_EQ(sa.size(), sb.size()) << what;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i], sb[i]) << what << " sample " << i;  // exact, not approx
  }
}

void expect_same_results(const ExperimentResults& a, const ExperimentResults& b) {
  ASSERT_EQ(a.contacts.size(), b.contacts.size());
  for (const auto& [r, ca] : a.contacts) {
    const auto& cb = b.contacts.at(r);
    ASSERT_EQ(ca.intervals.size(), cb.intervals.size()) << "range " << r;
    for (std::size_t i = 0; i < ca.intervals.size(); ++i) {
      ASSERT_EQ(ca.intervals[i].a, cb.intervals[i].a);
      ASSERT_EQ(ca.intervals[i].b, cb.intervals[i].b);
      ASSERT_EQ(ca.intervals[i].start, cb.intervals[i].start);
      ASSERT_EQ(ca.intervals[i].end, cb.intervals[i].end);
    }
    expect_same_ecdf(ca.contact_times, cb.contact_times, "contact_times");
    expect_same_ecdf(ca.inter_contact_times, cb.inter_contact_times, "inter_contact_times");
    expect_same_ecdf(ca.first_contact_times, cb.first_contact_times, "first_contact_times");
    ASSERT_EQ(ca.users_seen, cb.users_seen);
    ASSERT_EQ(ca.users_with_contact, cb.users_with_contact);
  }
  ASSERT_EQ(a.graphs.size(), b.graphs.size());
  for (const auto& [r, ga] : a.graphs) {
    const auto& gb = b.graphs.at(r);
    expect_same_ecdf(ga.degrees, gb.degrees, "degrees");
    expect_same_ecdf(ga.diameters, gb.diameters, "diameters");
    expect_same_ecdf(ga.clustering, gb.clustering, "clustering");
    ASSERT_EQ(ga.snapshots_analyzed, gb.snapshots_analyzed);
    ASSERT_EQ(ga.isolated_fraction, gb.isolated_fraction);
  }
  expect_same_ecdf(a.zones.occupancy, b.zones.occupancy, "zone occupancy");
  ASSERT_EQ(a.zones.empty_fraction, b.zones.empty_fraction);
  ASSERT_EQ(a.zones.max_occupancy, b.zones.max_occupancy);
  ASSERT_EQ(a.zones.mean_per_cell, b.zones.mean_per_cell);
  expect_same_ecdf(a.trips.travel_lengths, b.trips.travel_lengths, "travel_lengths");
  expect_same_ecdf(a.trips.travel_times, b.trips.travel_times, "travel_times");
  ASSERT_EQ(a.trips.sessions, b.trips.sessions);
}

TEST(ParallelAnalysis, IdenticalResultsFor1And2And8Threads) {
  const Trace trace = seeded_trace(99, 120, 60);
  const auto run = [&](std::size_t threads) {
    return analyze_trace(trace, {kBluetoothRange, kWifiRange}, kDefaultLandSize, threads);
  };
  const ExperimentResults one = run(1);
  // Non-trivial workload sanity: something to actually compare.
  ASSERT_FALSE(one.contacts.at(kBluetoothRange).contact_times.empty());
  ASSERT_FALSE(one.graphs.at(kWifiRange).degrees.empty());
  expect_same_results(one, run(2));
  expect_same_results(one, run(8));
}

TEST(ParallelAnalysis, RepeatedRunsAtSameThreadCountAreIdentical) {
  const Trace trace = seeded_trace(7, 60, 40);
  const auto run = [&] {
    return analyze_trace(trace, {kBluetoothRange, kWifiRange}, kDefaultLandSize, 4);
  };
  const ExperimentResults a = run();
  const ExperimentResults b = run();
  expect_same_results(a, b);
}

TEST(ParallelAnalysis, SingleRangeAndEmptyRanges) {
  const Trace trace = seeded_trace(3, 30, 20);
  const ExperimentResults single =
      analyze_trace(trace, {10.0}, kDefaultLandSize, 4);
  EXPECT_EQ(single.contacts.size(), 1u);
  EXPECT_EQ(single.graphs.size(), 1u);
  const ExperimentResults none = analyze_trace(trace, {}, kDefaultLandSize, 4);
  EXPECT_TRUE(none.contacts.empty());
  EXPECT_TRUE(none.graphs.empty());
  EXPECT_FALSE(none.zones.mean_per_cell.empty());
}

TEST(ParallelAnalysis, DuplicateRangesCollapse) {
  const Trace trace = seeded_trace(5, 20, 20);
  const ExperimentResults res =
      analyze_trace(trace, {10.0, 10.0, 80.0}, kDefaultLandSize, 4);
  EXPECT_EQ(res.contacts.size(), 2u);
  EXPECT_EQ(res.graphs.size(), 2u);
}

TEST(ParallelAnalysis, ExperimentConfigThreadsPlumbing) {
  // run_experiment with explicit analysis_threads matches the default.
  ExperimentConfig cfg;
  cfg.archetype = LandArchetype::kApfelLand;
  cfg.duration = 0.5 * kSecondsPerHour;
  cfg.seed = 17;
  const ExperimentResults def = run_experiment(cfg);
  cfg.analysis_threads = 2;
  const ExperimentResults two = run_experiment(cfg);
  expect_same_results(def, two);
}

}  // namespace
}  // namespace slmob
