#include "dtn/dtn_simulator.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace slmob {
namespace {

// Relay scenario: A meets B, then B meets C; A never meets C. Direct
// delivery A->C must fail; epidemic and two-hop (B as relay of A's message)
// succeed.
Trace relay_trace() {
  Trace t("relay", 10.0);
  const auto add = [&](Seconds time, std::initializer_list<std::pair<int, double>> users) {
    Snapshot s;
    s.time = time;
    for (const auto& [id, x] : users) {
      s.fixes.push_back({AvatarId{static_cast<std::uint32_t>(id)}, {x, 0.0, 22.0}});
    }
    t.add(std::move(s));
  };
  // A=1, B=2, C=3. C stays far right; A far left; B shuttles.
  add(0.0, {{1, 0.0}, {2, 5.0}, {3, 200.0}});    // A-B contact
  add(10.0, {{1, 0.0}, {2, 100.0}, {3, 200.0}});
  add(20.0, {{1, 0.0}, {2, 198.0}, {3, 200.0}});  // B-C contact
  add(30.0, {{1, 0.0}, {2, 198.0}, {3, 200.0}});
  return t;
}

DtnConfig relay_config(RoutingScheme scheme) {
  DtnConfig cfg;
  cfg.scheme = scheme;
  cfg.range = 10.0;
  cfg.message_count = 1;
  cfg.seed = 1;
  cfg.creation_window = 0.05;  // create at the first snapshot
  return cfg;
}

// Forces a single A->C message by retrying seeds until src=1, dst=3.
DtnResults run_relay(RoutingScheme scheme) {
  const Trace t = relay_trace();
  for (std::uint64_t seed = 1; seed < 300; ++seed) {
    DtnConfig cfg = relay_config(scheme);
    cfg.seed = seed;
    const DtnResults r = simulate_dtn(t, cfg);
    if (r.messages_created == 1 && r.outcomes[0].src == 1 && r.outcomes[0].dst == 3) {
      return r;
    }
  }
  ADD_FAILURE() << "could not construct A->C message";
  return {};
}

TEST(Dtn, EpidemicDeliversViaRelay) {
  const DtnResults r = run_relay(RoutingScheme::kEpidemic);
  EXPECT_EQ(r.messages_delivered, 1u);
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 1.0);
  // Delivered when B meets C at t=20; created at t=0.
  EXPECT_DOUBLE_EQ(r.delays.median(), 20.0);
}

TEST(Dtn, TwoHopDeliversViaRelay) {
  const DtnResults r = run_relay(RoutingScheme::kTwoHopRelay);
  EXPECT_EQ(r.messages_delivered, 1u);
}

TEST(Dtn, DirectDeliveryFailsWithoutMeeting) {
  const DtnResults r = run_relay(RoutingScheme::kDirectDelivery);
  EXPECT_EQ(r.messages_delivered, 0u);
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 0.0);
}

TEST(Dtn, TtlExpiryBlocksLateDelivery) {
  const Trace t = relay_trace();
  for (std::uint64_t seed = 1; seed < 300; ++seed) {
    DtnConfig cfg = relay_config(RoutingScheme::kEpidemic);
    cfg.seed = seed;
    cfg.ttl = 15.0;  // expires before B meets C at t=20
    const DtnResults r = simulate_dtn(t, cfg);
    if (r.messages_created == 1 && r.outcomes[0].src == 1 && r.outcomes[0].dst == 3) {
      EXPECT_EQ(r.messages_delivered, 0u);
      return;
    }
  }
  ADD_FAILURE() << "could not construct A->C message";
}

TEST(Dtn, EpidemicCountsCopies) {
  const DtnResults r = run_relay(RoutingScheme::kEpidemic);
  ASSERT_EQ(r.messages_created, 1u);
  EXPECT_GE(r.outcomes[0].copies, 2u);  // source + relay B
}

TEST(Dtn, SchemeOrderingOnRealTrace) {
  // On a real generated trace: epidemic >= two-hop >= direct in delivery,
  // and epidemic carries the most copies.
  ExperimentConfig cfg;
  cfg.archetype = LandArchetype::kIsleOfView;
  cfg.duration = 2.0 * kSecondsPerHour;
  cfg.seed = 3;
  cfg.ranges = {};  // skip contact/graph analyses; we only need the trace
  const ExperimentResults res = run_experiment(cfg);

  DtnConfig dtn;
  dtn.range = 10.0;
  dtn.message_count = 150;
  dtn.seed = 9;
  dtn.scheme = RoutingScheme::kEpidemic;
  const DtnResults epidemic = simulate_dtn(res.trace, dtn);
  dtn.scheme = RoutingScheme::kTwoHopRelay;
  const DtnResults twohop = simulate_dtn(res.trace, dtn);
  dtn.scheme = RoutingScheme::kDirectDelivery;
  const DtnResults direct = simulate_dtn(res.trace, dtn);

  EXPECT_GE(epidemic.delivery_ratio, twohop.delivery_ratio);
  EXPECT_GE(twohop.delivery_ratio, direct.delivery_ratio);
  EXPECT_GT(epidemic.delivery_ratio, 0.3);  // dense event land spreads well
  EXPECT_GT(epidemic.mean_copies_per_message, twohop.mean_copies_per_message);
  EXPECT_DOUBLE_EQ(direct.mean_copies_per_message, 1.0);
}

TEST(Dtn, DeterministicForSeed) {
  const Trace t = relay_trace();
  DtnConfig cfg = relay_config(RoutingScheme::kEpidemic);
  const DtnResults a = simulate_dtn(t, cfg);
  const DtnResults b = simulate_dtn(t, cfg);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.messages_created, b.messages_created);
}

TEST(Dtn, RejectsBadInput) {
  const Trace empty("x", 10.0);
  EXPECT_THROW((void)simulate_dtn(empty, {}), std::invalid_argument);
  const Trace t = relay_trace();
  DtnConfig cfg;
  cfg.creation_window = 0.0;
  EXPECT_THROW((void)simulate_dtn(t, cfg), std::invalid_argument);
}

TEST(Dtn, SchemeNames) {
  EXPECT_STREQ(routing_scheme_name(RoutingScheme::kEpidemic), "epidemic");
  EXPECT_STREQ(routing_scheme_name(RoutingScheme::kTwoHopRelay), "two-hop");
  EXPECT_STREQ(routing_scheme_name(RoutingScheme::kDirectDelivery), "direct");
}

}  // namespace
}  // namespace slmob
