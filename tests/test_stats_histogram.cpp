#include "stats/histogram.hpp"
#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace slmob {
namespace {

TEST(Histogram, BinsAndCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, CountsFallInRightBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflowClampedAndCounted) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(15.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, FractionSumsToOne) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  double total = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.fraction(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, BadArgsThrow) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.bin_center(2), std::out_of_range);
}

TEST(LogHistogram, EdgesAreGeometric) {
  LogHistogram h(1.0, 1000.0, 3);
  EXPECT_NEAR(h.bin_lo(0), 1.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(1), 100.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(2), 1000.0, 1e-9);
}

TEST(LogHistogram, NonPositiveGoesToFirstBin) {
  LogHistogram h(1.0, 100.0, 2);
  h.add(0.0);
  h.add(-3.0);
  EXPECT_EQ(h.count(0), 2u);
}

TEST(LogHistogram, DensityNormalises) {
  LogHistogram h(1.0, 100.0, 2);
  h.add(5.0);
  h.add(50.0);
  // Each bin holds half the mass; density = 0.5 / width.
  EXPECT_NEAR(h.density(0) * (h.bin_hi(0) - h.bin_lo(0)), 0.5, 1e-12);
  EXPECT_NEAR(h.density(1) * (h.bin_hi(1) - h.bin_lo(1)), 0.5, 1e-12);
}

TEST(LogHistogram, BadArgsThrow) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 2), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 1.0, 2), std::invalid_argument);
}

TEST(Summary, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, KnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

}  // namespace
}  // namespace slmob
