#include "analysis/proximity_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/contacts.hpp"
#include "analysis/graphs.hpp"
#include "analysis/spatial_index.hpp"
#include "util/rng.hpp"

namespace slmob {
namespace {

using PairSet = std::set<std::pair<std::uint32_t, std::uint32_t>>;

Trace random_trace(std::uint64_t seed, std::size_t snapshots, std::size_t max_users) {
  Rng rng(seed);
  Trace t("cache-test", 10.0);
  for (std::size_t s = 0; s < snapshots; ++s) {
    Snapshot snap;
    snap.time = static_cast<double>(s) * 10.0;
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max_users)));
    for (std::size_t i = 0; i < n; ++i) {
      // Clustered positions so both radii produce non-trivial pair sets.
      const double cx = rng.uniform(0.0, 1.0) < 0.5 ? 64.0 : 192.0;
      snap.fixes.push_back({AvatarId{static_cast<std::uint32_t>(i + 1)},
                            {cx + rng.uniform(-40.0, 40.0), 128.0 + rng.uniform(-40.0, 40.0), 22.0}});
    }
    t.add(std::move(snap));
  }
  return t;
}

// O(n^2) oracle: all index pairs within `range`.
PairSet brute_force_pairs(const Snapshot& snap, double range) {
  PairSet out;
  for (std::uint32_t i = 0; i < snap.fixes.size(); ++i) {
    for (std::uint32_t j = i + 1; j < snap.fixes.size(); ++j) {
      if (snap.fixes[i].pos.distance2d_to(snap.fixes[j].pos) <= range) {
        out.insert({i, j});
      }
    }
  }
  return out;
}

PairSet to_set(const ProximityCache::PairList& pairs) {
  return {pairs.begin(), pairs.end()};
}

TEST(ProximityCache, MatchesBruteForceOracleAtEveryRadius) {
  const Trace t = random_trace(7, 40, 50);
  const ProximityCache cache(t, {10.0, 30.0, 80.0});
  for (std::size_t s = 0; s < t.size(); ++s) {
    for (const double r : {10.0, 30.0, 80.0}) {
      EXPECT_EQ(to_set(cache.pairs(s, r)), brute_force_pairs(t.snapshots()[s], r))
          << "snapshot " << s << " range " << r;
    }
  }
}

TEST(ProximityCache, SmallerRadiusIsSubsetOfLarger) {
  const Trace t = random_trace(11, 25, 60);
  const ProximityCache cache(t, {10.0, 80.0});
  for (std::size_t s = 0; s < t.size(); ++s) {
    const PairSet small = to_set(cache.pairs(s, 10.0));
    const PairSet large = to_set(cache.pairs(s, 80.0));
    EXPECT_TRUE(std::includes(large.begin(), large.end(), small.begin(), small.end()));
  }
}

TEST(ProximityCache, AgreesWithDirectSpatialGrid) {
  const Trace t = random_trace(3, 20, 40);
  const ProximityCache cache(t, {10.0, 80.0});
  for (std::size_t s = 0; s < t.size(); ++s) {
    std::vector<Vec3> positions;
    for (const auto& fix : t.snapshots()[s].fixes) positions.push_back(fix.pos);
    for (const double r : {10.0, 80.0}) {
      if (positions.empty()) {
        EXPECT_TRUE(cache.pairs(s, r).empty());
        continue;
      }
      const SpatialGrid grid(positions, r);
      PairSet grid_set;
      for (const auto& p : grid.pairs_within()) grid_set.insert(p);
      EXPECT_EQ(to_set(cache.pairs(s, r)), grid_set);
    }
  }
}

TEST(ProximityCache, ParallelBuildMatchesSequentialBuild) {
  const Trace t = random_trace(13, 30, 50);
  const ProximityCache seq(t, {10.0, 80.0}, nullptr);
  ThreadPool pool(4);
  const ProximityCache par(t, {10.0, 80.0}, &pool);
  ASSERT_EQ(seq.snapshot_count(), par.snapshot_count());
  for (std::size_t s = 0; s < seq.snapshot_count(); ++s) {
    EXPECT_EQ(seq.positions(s), par.positions(s));
    for (const double r : {10.0, 80.0}) {
      EXPECT_EQ(seq.pairs(s, r), par.pairs(s, r));  // order included
    }
  }
}

TEST(ProximityCache, RangesAreSortedAndDeduplicated) {
  const Trace t = random_trace(1, 5, 10);
  const ProximityCache cache(t, {80.0, 10.0, 80.0});
  ASSERT_EQ(cache.ranges().size(), 2u);
  EXPECT_DOUBLE_EQ(cache.ranges()[0], 10.0);
  EXPECT_DOUBLE_EQ(cache.ranges()[1], 80.0);
}

TEST(ProximityCache, UnknownRangeThrows) {
  const Trace t = random_trace(2, 3, 10);
  const ProximityCache cache(t, {10.0});
  EXPECT_THROW((void)cache.pairs(0, 80.0), std::invalid_argument);
}

TEST(ProximityCache, NonPositiveRangeThrows) {
  const Trace t = random_trace(2, 3, 10);
  EXPECT_THROW(ProximityCache(t, {0.0}), std::invalid_argument);
  EXPECT_THROW(ProximityCache(t, {-5.0}), std::invalid_argument);
}

TEST(ProximityCache, EmptyTraceAndEmptyRanges) {
  const Trace empty("e", 10.0);
  const ProximityCache cache(empty, {10.0});
  EXPECT_EQ(cache.snapshot_count(), 0u);

  const Trace t = random_trace(4, 5, 10);
  const ProximityCache no_ranges(t, {});
  EXPECT_TRUE(no_ranges.ranges().empty());
  EXPECT_EQ(no_ranges.snapshot_count(), t.size());
}

TEST(ProximityCache, ContactsViaCacheMatchDirectAnalysis) {
  const Trace t = random_trace(21, 60, 40);
  const ProximityCache cache(t, {10.0, 80.0});
  for (const double r : {10.0, 80.0}) {
    const ContactAnalysis direct = analyze_contacts(t, r);
    const ContactAnalysis cached = analyze_contacts(t, cache, r);
    ASSERT_EQ(direct.intervals.size(), cached.intervals.size());
    for (std::size_t i = 0; i < direct.intervals.size(); ++i) {
      EXPECT_EQ(direct.intervals[i].a, cached.intervals[i].a);
      EXPECT_EQ(direct.intervals[i].b, cached.intervals[i].b);
      EXPECT_DOUBLE_EQ(direct.intervals[i].start, cached.intervals[i].start);
      EXPECT_DOUBLE_EQ(direct.intervals[i].end, cached.intervals[i].end);
    }
    EXPECT_EQ(direct.users_seen, cached.users_seen);
    EXPECT_EQ(direct.users_with_contact, cached.users_with_contact);
    const auto ds = direct.contact_times.sorted();
    const auto cs = cached.contact_times.sorted();
    ASSERT_EQ(ds.size(), cs.size());
    for (std::size_t i = 0; i < ds.size(); ++i) EXPECT_DOUBLE_EQ(ds[i], cs[i]);
  }
}

TEST(ProximityCache, GraphsViaCacheMatchDirectAnalysis) {
  const Trace t = random_trace(23, 40, 40);
  const ProximityCache cache(t, {10.0, 80.0});
  for (const double r : {10.0, 80.0}) {
    const GraphMetrics direct = analyze_graphs(t, r);
    const GraphMetrics cached = analyze_graphs(t, cache, r);
    EXPECT_EQ(direct.snapshots_analyzed, cached.snapshots_analyzed);
    EXPECT_EQ(direct.degrees.size(), cached.degrees.size());
    EXPECT_DOUBLE_EQ(direct.isolated_fraction, cached.isolated_fraction);
    const auto dd = direct.degrees.sorted();
    const auto cd = cached.degrees.sorted();
    for (std::size_t i = 0; i < dd.size(); ++i) EXPECT_DOUBLE_EQ(dd[i], cd[i]);
    const auto dc = direct.clustering.sorted();
    const auto cc = cached.clustering.sorted();
    for (std::size_t i = 0; i < dc.size(); ++i) EXPECT_DOUBLE_EQ(dc[i], cc[i]);
  }
}

}  // namespace
}  // namespace slmob
