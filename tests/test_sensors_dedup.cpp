// At-least-once sensor delivery with collector-side deduplication.
//
// The failure this guards against: a sensor's flush reaches the collector
// but the 200 ack is lost or late, the script sees a 408 timeout and
// retries — and before this regression suite existed, retried records were
// silently counted twice. Sensors now freeze each flush under a stable
// (object key, sequence) identity and the collector drops whole flushes it
// has already recorded.
#include "sensors/collector.hpp"

#include <gtest/gtest.h>

#include "sensors/deployment.hpp"
#include "sensors/object_runtime.hpp"
#include "world/archetypes.hpp"

namespace slmob {
namespace {

struct CollectorRig {
  CollectorRig() : net({}, 2), collector(net, "test") {
    sender = net.register_node([](NodeId, std::span<const std::uint8_t>) {});
  }

  // Posts `body` to the collector as one HTTP request and pumps delivery.
  void post(const std::string& body) {
    HttpRequest req;
    req.path = "/report";
    req.body = body;
    for (auto& frag : fragment_http_message(next_id++, req.serialize())) {
      net.send(sender, collector.address(), std::move(frag));
    }
    for (int i = 0; i < 5; ++i) {
      net.tick(now, 1.0);
      now += 1.0;
    }
  }

  SimNetwork net;
  HttpCollector collector;
  NodeId sender{};
  std::uint32_t next_id{1};
  Seconds now{0.0};
};

TEST(CollectorDedup, RetriedFlushIsRecordedOnce) {
  CollectorRig rig;
  const std::string flush = "#sensor,object-5,seq,1\n100,avatar-7,1.0,2.0,3.0\n";
  rig.post(flush);
  EXPECT_EQ(rig.collector.stats().records, 1u);
  EXPECT_EQ(rig.collector.stats().duplicate_flushes, 0u);

  // The 408-timed-out-but-delivered retry: byte-identical flush again.
  rig.post(flush);
  EXPECT_EQ(rig.collector.stats().requests, 2u);
  EXPECT_EQ(rig.collector.stats().records, 1u);
  EXPECT_EQ(rig.collector.stats().duplicate_flushes, 1u);
  ASSERT_EQ(rig.collector.records().size(), 1u);
  EXPECT_EQ(rig.collector.records()[0].avatar, 7u);
}

TEST(CollectorDedup, SequencesAreScopedPerSensor) {
  CollectorRig rig;
  rig.post("#sensor,object-1,seq,1\n100,avatar-7,1.0,2.0,3.0\n");
  // Same sequence number from a different object is NOT a duplicate.
  rig.post("#sensor,object-2,seq,1\n100,avatar-8,4.0,5.0,6.0\n");
  // The next flush of object-1 advances its sequence.
  rig.post("#sensor,object-1,seq,2\n110,avatar-7,1.5,2.0,3.0\n");
  EXPECT_EQ(rig.collector.stats().records, 3u);
  EXPECT_EQ(rig.collector.stats().duplicate_flushes, 0u);
}

TEST(CollectorDedup, UntaggedFlushesStillRecorded) {
  // Reports without a "#sensor" header (foreign scripts) keep working; they
  // just get no duplicate protection.
  CollectorRig rig;
  rig.post("100,avatar-7,1.0,2.0,3.0\n");
  rig.post("100,avatar-7,1.0,2.0,3.0\n");
  EXPECT_EQ(rig.collector.stats().records, 2u);
  EXPECT_EQ(rig.collector.stats().duplicate_flushes, 0u);
  EXPECT_EQ(rig.collector.stats().malformed_records, 0u);
}

TEST(CollectorDedup, MalformedHeaderLineCountedNotRecorded) {
  CollectorRig rig;
  rig.post("#sensor,object-1\n100,avatar-7,1.0,2.0,3.0\n");
  EXPECT_EQ(rig.collector.stats().records, 1u);
  EXPECT_EQ(rig.collector.stats().malformed_records, 1u);
}

TEST(CollectorDedup, CollectorCrashWindowDropsAndRecovers) {
  CollectorRig rig;
  FaultSchedule faults;
  faults.add({FaultKind::kCollectorCrash, 10.0, 20.0, 1.0, {}});
  rig.collector.set_faults(std::move(faults));

  rig.collector.tick(0.0, 1.0);
  rig.post("#sensor,object-1,seq,1\n100,avatar-7,1.0,2.0,3.0\n");
  EXPECT_EQ(rig.collector.stats().records, 1u);

  rig.collector.tick(15.0, 1.0);  // inside the crash window
  rig.post("#sensor,object-1,seq,2\n110,avatar-7,1.5,2.0,3.0\n");
  EXPECT_EQ(rig.collector.stats().records, 1u);
  EXPECT_GT(rig.collector.stats().dropped_while_down, 0u);

  // Back up: the sensor's retry of the same flush finally lands, once.
  rig.collector.tick(25.0, 1.0);
  rig.post("#sensor,object-1,seq,2\n110,avatar-7,1.5,2.0,3.0\n");
  EXPECT_EQ(rig.collector.stats().records, 2u);
  EXPECT_EQ(rig.collector.stats().duplicate_flushes, 0u);
}

// End-to-end regression through the real LSL script: partition the ack path
// so a delivered flush times out on the sensor, and check the script's
// same-sequence retry is deduplicated by the collector.
TEST(CollectorDedup, LostAckRetryIsDeduplicatedEndToEnd) {
  auto world = make_world(LandArchetype::kApfelLand, 1);
  SimNetwork net({}, 2);
  HttpCollector collector(net, "test");
  ObjectRuntime runtime(*world, net);

  ObjectId id;
  ASSERT_EQ(runtime.deploy({128.0, 128.0, 22.0}, default_sensor_script(),
                           collector.address(), 0.0, {}, false, &id),
            DeployResult::kOk);
  const SensorObject* sensor = runtime.find(id);
  ASSERT_NE(sensor, nullptr);

  // Drop every datagram TO the sensor for 60 s starting after the first
  // sweeps: flushes still reach the collector, acks vanish, the script's
  // 10 s HTTP timeout fires and the 30 s timer retries the same payload.
  FaultSchedule faults;
  faults.add({FaultKind::kPartitionInbound, 40.0, 100.0, 1.0, sensor->address()});
  net.set_faults(std::move(faults));

  Seconds now = 0.0;
  for (; now < 300.0; now += 1.0) {
    world->tick(now, 1.0);
    runtime.tick(now, 1.0);
    net.tick(now, 1.0);
  }

  ASSERT_GT(collector.stats().records, 0u);
  EXPECT_GT(sensor->stats().http_timeouts, 0u);
  EXPECT_GT(collector.stats().duplicate_flushes, 0u);

  // No record may be double-counted: every stored record must be unique as
  // a (time, avatar, position) tuple coming from distinct flush contents.
  const auto& records = collector.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (std::size_t j = i + 1; j < records.size(); ++j) {
      const bool same = records[i].time == records[j].time &&
                        records[i].avatar == records[j].avatar &&
                        records[i].pos.x == records[j].pos.x &&
                        records[i].pos.y == records[j].pos.y;
      EXPECT_FALSE(same) << "record " << j << " duplicates record " << i;
    }
  }
}

}  // namespace
}  // namespace slmob
