#include "trace/sessions.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

Trace make_trace(std::initializer_list<std::pair<Seconds, std::vector<std::uint32_t>>> data) {
  Trace t("x", 10.0);
  for (const auto& [time, ids] : data) {
    Snapshot s;
    s.time = time;
    for (const auto id : ids) {
      s.fixes.push_back({AvatarId{id}, {static_cast<double>(id), 0.0, 0.0}});
    }
    t.add(std::move(s));
  }
  return t;
}

TEST(Sessions, SingleContinuousSession) {
  const Trace t = make_trace({{0.0, {1}}, {10.0, {1}}, {20.0, {1}}});
  const auto sessions = extract_sessions(t);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].avatar.value, 1u);
  EXPECT_DOUBLE_EQ(sessions[0].login, 0.0);
  EXPECT_DOUBLE_EQ(sessions[0].logout, 20.0);
  EXPECT_DOUBLE_EQ(sessions[0].duration(), 20.0);
  EXPECT_EQ(sessions[0].positions.size(), 3u);
}

TEST(Sessions, GapSplitsSessions) {
  // Absent for 40 s > threshold 30 s: two sessions.
  const Trace t = make_trace({{0.0, {1}}, {10.0, {1}}, {50.0, {1}}, {60.0, {1}}});
  const auto sessions = extract_sessions(t);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_DOUBLE_EQ(sessions[0].logout, 10.0);
  EXPECT_DOUBLE_EQ(sessions[1].login, 50.0);
}

TEST(Sessions, ShortGapIsBridged) {
  // Absent for 20 s <= threshold 30 s: one session.
  const Trace t = make_trace({{0.0, {1}}, {10.0, {1}}, {30.0, {1}}});
  const auto sessions = extract_sessions(t);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_DOUBLE_EQ(sessions[0].duration(), 30.0);
}

TEST(Sessions, MultipleAvatarsIndependent) {
  const Trace t = make_trace({{0.0, {1, 2}}, {10.0, {1}}, {20.0, {1, 2}}});
  const auto sessions = extract_sessions(t);
  // Avatar 1: one session. Avatar 2: gap of 20 <= 30 -> one session too.
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].avatar.value, 1u);
  EXPECT_EQ(sessions[1].avatar.value, 2u);
}

TEST(Sessions, CustomThreshold) {
  SessionExtractionOptions opts;
  opts.absence_threshold = 10.0;
  const Trace t = make_trace({{0.0, {1}}, {20.0, {1}}});
  const auto sessions = extract_sessions(t, opts);
  ASSERT_EQ(sessions.size(), 2u);
}

TEST(TripMetrics, StationaryUserHasZeroTravel) {
  Session s;
  s.avatar = AvatarId{1};
  s.login = 0.0;
  s.logout = 30.0;
  for (int i = 0; i <= 3; ++i) {
    s.times.push_back(i * 10.0);
    s.positions.push_back({100.0, 100.0, 22.0});
  }
  const TripMetrics m = trip_metrics(s);
  EXPECT_DOUBLE_EQ(m.travel_length, 0.0);
  EXPECT_DOUBLE_EQ(m.effective_travel_time, 0.0);
  EXPECT_DOUBLE_EQ(m.travel_time, 30.0);
}

TEST(TripMetrics, MovementBelowEpsilonIgnored) {
  Session s;
  s.avatar = AvatarId{1};
  s.login = 0.0;
  s.logout = 10.0;
  s.times = {0.0, 10.0};
  s.positions = {{100.0, 100.0, 22.0}, {100.4, 100.0, 22.0}};  // 0.4 m < 0.5
  const TripMetrics m = trip_metrics(s, 0.5);
  EXPECT_DOUBLE_EQ(m.travel_length, 0.0);
  EXPECT_DOUBLE_EQ(m.effective_travel_time, 0.0);
}

TEST(TripMetrics, PathLengthAndEffectiveTime) {
  Session s;
  s.avatar = AvatarId{1};
  s.login = 0.0;
  s.logout = 30.0;
  s.times = {0.0, 10.0, 20.0, 30.0};
  s.positions = {{0.0, 0.0, 0.0}, {30.0, 0.0, 0.0}, {30.0, 0.0, 0.0}, {30.0, 40.0, 0.0}};
  const TripMetrics m = trip_metrics(s, 0.5);
  EXPECT_DOUBLE_EQ(m.travel_length, 70.0);        // 30 + 0 + 40
  EXPECT_DOUBLE_EQ(m.effective_travel_time, 20.0);  // two moving intervals
  EXPECT_DOUBLE_EQ(m.travel_time, 30.0);
}

TEST(Sessions, CoverageGapSplitsEvenWithinAbsenceThreshold) {
  // Absence of 30 s would normally be bridged, but a coverage gap sits in
  // the middle: presence must not be assumed across unobserved time.
  Trace t = make_trace({{0.0, {1}}, {10.0, {1}}, {40.0, {1}}, {50.0, {1}}});
  t.add_gap(15.0, 35.0);
  const auto sessions = extract_sessions(t);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_DOUBLE_EQ(sessions[0].logout, 10.0);
  EXPECT_DOUBLE_EQ(sessions[1].login, 40.0);
  for (const auto& s : sessions) {
    EXPECT_FALSE(t.spans_gap(s.login, s.logout));
  }
}

TEST(Sessions, SnapshotsInsideGapIgnored) {
  Trace t = make_trace({{0.0, {1}}, {10.0, {2}}, {20.0, {1}}});
  t.add_gap(5.0, 15.0);  // the t=10 snapshot is uncovered
  const auto sessions = extract_sessions(t);
  // Avatar 2 only ever appears inside the gap: no session for it.
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].avatar.value, 1u);
  EXPECT_EQ(sessions[1].avatar.value, 1u);
}

TEST(Sessions, EmptyTraceNoSessions) {
  const Trace t("x", 10.0);
  EXPECT_TRUE(extract_sessions(t).empty());
}

}  // namespace
}  // namespace slmob
