#include "analysis/contacts.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

// Builds a trace where avatar positions are given per snapshot; absent
// entries mean the avatar is offline.
struct TraceBuilder {
  Trace trace{"t", 10.0};
  Seconds now{0.0};

  TraceBuilder& snap(std::initializer_list<std::pair<std::uint32_t, double>> users) {
    Snapshot s;
    s.time = now;
    now += 10.0;
    for (const auto& [id, x] : users) s.fixes.push_back({AvatarId{id}, {x, 0.0, 22.0}});
    trace.add(std::move(s));
    return *this;
  }
};

TEST(Contacts, SingleSnapshotContactGetsTauDuration) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 5.0}});   // in range at r=10
  b.snap({{1, 0.0}, {2, 50.0}});  // out of range
  const auto analysis = analyze_contacts(b.trace, 10.0);
  ASSERT_EQ(analysis.intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.intervals[0].duration(), 10.0);
  EXPECT_DOUBLE_EQ(analysis.contact_times.median(), 10.0);
}

TEST(Contacts, MultiSnapshotContactDuration) {
  TraceBuilder b;
  for (int i = 0; i < 5; ++i) b.snap({{1, 0.0}, {2, 5.0}});  // 5 snapshots together
  b.snap({{1, 0.0}, {2, 100.0}});
  const auto analysis = analyze_contacts(b.trace, 10.0);
  ASSERT_EQ(analysis.intervals.size(), 1u);
  // Seen together t=0..40; credited 40 + tau = 50.
  EXPECT_DOUBLE_EQ(analysis.intervals[0].duration(), 50.0);
}

TEST(Contacts, ContactOpenAtTraceEndIsClosed) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 5.0}});
  b.snap({{1, 0.0}, {2, 5.0}});
  const auto analysis = analyze_contacts(b.trace, 10.0);
  ASSERT_EQ(analysis.intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.intervals[0].start, 0.0);
  EXPECT_DOUBLE_EQ(analysis.intervals[0].end, 20.0);
}

TEST(Contacts, InterContactTime) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 5.0}});    // contact 1: t=0, ends t=10
  b.snap({{1, 0.0}, {2, 100.0}});  // apart
  b.snap({{1, 0.0}, {2, 100.0}});  // apart
  b.snap({{1, 0.0}, {2, 5.0}});    // contact 2 starts t=30
  const auto analysis = analyze_contacts(b.trace, 10.0);
  ASSERT_EQ(analysis.inter_contact_times.size(), 1u);
  // ICT = start2 - end1 = 30 - 10 = 20.
  EXPECT_DOUBLE_EQ(analysis.inter_contact_times.median(), 20.0);
}

TEST(Contacts, AvatarLogoutClosesContact) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 5.0}});
  b.snap({{1, 0.0}});  // avatar 2 gone
  b.snap({{1, 0.0}, {2, 5.0}});
  const auto analysis = analyze_contacts(b.trace, 10.0);
  EXPECT_EQ(analysis.intervals.size(), 2u);
  EXPECT_EQ(analysis.inter_contact_times.size(), 1u);
}

TEST(Contacts, FirstContactTimes) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 100.0}});  // both appear, no contact
  b.snap({{1, 0.0}, {2, 100.0}});
  b.snap({{1, 0.0}, {2, 5.0}});    // first contact at t=20
  const auto analysis = analyze_contacts(b.trace, 10.0);
  ASSERT_EQ(analysis.first_contact_times.size(), 2u);
  EXPECT_DOUBLE_EQ(analysis.first_contact_times.median(), 20.0);
  EXPECT_EQ(analysis.users_seen, 2u);
  EXPECT_EQ(analysis.users_with_contact, 2u);
}

TEST(Contacts, ImmediateContactGetsHalfTau) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 5.0}});  // in contact at first sighting
  const auto analysis = analyze_contacts(b.trace, 10.0);
  ASSERT_EQ(analysis.first_contact_times.size(), 2u);
  EXPECT_DOUBLE_EQ(analysis.first_contact_times.median(), 5.0);
}

TEST(Contacts, UsersWithoutContactAreCensored) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 100.0}, {3, 200.0}});
  b.snap({{1, 0.0}, {2, 3.0}, {3, 200.0}});
  const auto analysis = analyze_contacts(b.trace, 10.0);
  EXPECT_EQ(analysis.users_seen, 3u);
  EXPECT_EQ(analysis.users_with_contact, 2u);
  EXPECT_EQ(analysis.first_contact_times.size(), 2u);
}

TEST(Contacts, RangeMatters) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 50.0}});
  b.snap({{1, 0.0}, {2, 50.0}});
  EXPECT_EQ(analyze_contacts(b.trace, 10.0).intervals.size(), 0u);
  EXPECT_EQ(analyze_contacts(b.trace, 80.0).intervals.size(), 1u);
}

TEST(Contacts, ThreeUsersPairwiseContacts) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 5.0}, {3, 8.0}});
  const auto analysis = analyze_contacts(b.trace, 10.0);
  // Pairs (1,2), (2,3), (1,3) all within 10.
  EXPECT_EQ(analysis.intervals.size(), 3u);
}

TEST(Contacts, IntervalsSortedByStart) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 5.0}, {3, 100.0}});
  b.snap({{1, 0.0}, {2, 50.0}, {3, 4.0}});
  b.snap({{1, 0.0}, {2, 50.0}, {3, 4.0}});
  const auto analysis = analyze_contacts(b.trace, 10.0);
  for (std::size_t i = 1; i < analysis.intervals.size(); ++i) {
    EXPECT_LE(analysis.intervals[i - 1].start, analysis.intervals[i].start);
  }
}

TEST(Contacts, EmptyTrace) {
  const Trace t("x", 10.0);
  const auto analysis = analyze_contacts(t, 10.0);
  EXPECT_TRUE(analysis.intervals.empty());
  EXPECT_EQ(analysis.users_seen, 0u);
}

TEST(Contacts, PairKeyCanonicalOrder) {
  TraceBuilder b;
  b.snap({{7, 0.0}, {3, 5.0}});
  const auto analysis = analyze_contacts(b.trace, 10.0);
  ASSERT_EQ(analysis.intervals.size(), 1u);
  EXPECT_LT(analysis.intervals[0].a.value, analysis.intervals[0].b.value);
}

TEST(ContactsCensoring, ContactTruncatedAtGapStartNeverBridged) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 5.0}});  // t=0, in contact
  b.snap({{1, 0.0}, {2, 5.0}});  // t=10
  b.snap({{1, 0.0}, {2, 5.0}});  // t=20
  b.trace.add_gap(30.0, 60.0);
  b.now = 60.0;
  b.snap({{1, 0.0}, {2, 5.0}});  // t=60, still in contact after the gap
  b.snap({{1, 0.0}, {2, 5.0}});  // t=70
  const auto analysis = analyze_contacts(b.trace, 10.0);
  // One contact per covered segment, not one bridged contact.
  ASSERT_EQ(analysis.intervals.size(), 2u);
  EXPECT_DOUBLE_EQ(analysis.intervals[0].start, 0.0);
  EXPECT_DOUBLE_EQ(analysis.intervals[0].end, 30.0);  // capped at gap start
  EXPECT_DOUBLE_EQ(analysis.intervals[1].start, 60.0);
  EXPECT_DOUBLE_EQ(analysis.intervals[1].end, 80.0);
  // And the pause between them is unobserved, so it yields no ICT sample.
  EXPECT_EQ(analysis.inter_contact_times.size(), 0u);
}

TEST(ContactsCensoring, InterContactChainCutAtGap) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 5.0}});    // contact ends t=0+tau
  b.snap({{1, 0.0}, {2, 100.0}});  // apart at t=10
  b.trace.add_gap(20.0, 40.0);
  b.now = 40.0;
  b.snap({{1, 0.0}, {2, 5.0}});    // t=40: would be ICT=30 if bridged
  b.snap({{1, 0.0}, {2, 100.0}});  // apart at t=50 (contact ends t=50)
  b.snap({{1, 0.0}, {2, 100.0}});  // t=60
  b.snap({{1, 0.0}, {2, 5.0}});    // t=70: same-segment ICT = 70 - 50 = 20
  const auto analysis = analyze_contacts(b.trace, 10.0);
  ASSERT_EQ(analysis.inter_contact_times.size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.inter_contact_times.median(), 20.0);
}

TEST(ContactsCensoring, FirstContactClockRestartsAfterGap) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 100.0}});  // both appear, no contact
  b.snap({{1, 0.0}, {2, 100.0}});
  b.trace.add_gap(20.0, 50.0);
  b.now = 50.0;
  b.snap({{1, 0.0}, {2, 5.0}});  // first contact right after the gap
  const auto analysis = analyze_contacts(b.trace, 10.0);
  ASSERT_EQ(analysis.first_contact_times.size(), 2u);
  // The pre-gap wait is censored: both users restart observation at t=50 and
  // are in contact immediately, so FT is the half-tau credit, not 50 s.
  EXPECT_DOUBLE_EQ(analysis.first_contact_times.median(), 5.0);
  EXPECT_EQ(analysis.users_seen, 2u);
}

TEST(ContactsCensoring, UncoveredSnapshotsAreIgnored) {
  TraceBuilder b;
  b.snap({{1, 0.0}, {2, 5.0}});  // t=0
  b.snap({{3, 0.0}, {4, 5.0}});  // t=10: inside the gap — bogus data
  b.trace.add_gap(5.0, 15.0);
  b.now = 20.0;
  b.snap({{1, 0.0}, {2, 5.0}});  // t=20
  const auto analysis = analyze_contacts(b.trace, 10.0);
  EXPECT_EQ(analysis.users_seen, 2u);  // avatars 3 and 4 were never observed
  for (const auto& interval : analysis.intervals) {
    EXPECT_LE(interval.b.value, 2u);
    EXPECT_FALSE(b.trace.spans_gap(interval.start, interval.end));
  }
}

}  // namespace
}  // namespace slmob
