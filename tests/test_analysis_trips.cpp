#include "analysis/trips.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

TEST(Trips, EmptyTrace) {
  const Trace t("x", 10.0);
  const TripAnalysis a = analyze_trips(t);
  EXPECT_EQ(a.sessions, 0u);
  EXPECT_TRUE(a.travel_lengths.empty());
}

TEST(Trips, OneMovingUser) {
  Trace t("x", 10.0);
  for (int i = 0; i < 4; ++i) {
    Snapshot s;
    s.time = i * 10.0;
    s.fixes = {{AvatarId{1}, {i * 20.0, 0.0, 22.0}}};  // 20 m per interval
    t.add(std::move(s));
  }
  const TripAnalysis a = analyze_trips(t);
  ASSERT_EQ(a.sessions, 1u);
  EXPECT_DOUBLE_EQ(a.travel_lengths.median(), 60.0);
  EXPECT_DOUBLE_EQ(a.effective_travel_times.median(), 30.0);
  EXPECT_DOUBLE_EQ(a.travel_times.median(), 30.0);
}

TEST(Trips, PausesExcludedFromEffectiveTime) {
  Trace t("x", 10.0);
  const double xs[] = {0.0, 20.0, 20.0, 20.0, 40.0};  // move, pause x2, move
  for (int i = 0; i < 5; ++i) {
    Snapshot s;
    s.time = i * 10.0;
    s.fixes = {{AvatarId{1}, {xs[i], 0.0, 22.0}}};
    t.add(std::move(s));
  }
  const TripAnalysis a = analyze_trips(t);
  EXPECT_DOUBLE_EQ(a.travel_times.median(), 40.0);
  EXPECT_DOUBLE_EQ(a.effective_travel_times.median(), 20.0);
  EXPECT_DOUBLE_EQ(a.travel_lengths.median(), 40.0);
}

TEST(Trips, SessionsSplitAcrossGaps) {
  Trace t("x", 10.0);
  const Seconds times[] = {0.0, 10.0, 100.0, 110.0};  // 90 s gap: two sessions
  for (const Seconds time : times) {
    Snapshot s;
    s.time = time;
    s.fixes = {{AvatarId{1}, {time, 0.0, 22.0}}};
    t.add(std::move(s));
  }
  const TripAnalysis a = analyze_trips(t);
  EXPECT_EQ(a.sessions, 2u);
}

TEST(Trips, PerUserSamplesIndependent) {
  Trace t("x", 10.0);
  for (int i = 0; i < 3; ++i) {
    Snapshot s;
    s.time = i * 10.0;
    s.fixes = {{AvatarId{1}, {0.0, 0.0, 22.0}},           // stationary
               {AvatarId{2}, {i * 30.0, 0.0, 22.0}}};     // fast mover
    t.add(std::move(s));
  }
  const TripAnalysis a = analyze_trips(t);
  ASSERT_EQ(a.sessions, 2u);
  EXPECT_DOUBLE_EQ(a.travel_lengths.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.travel_lengths.max(), 60.0);
}

}  // namespace
}  // namespace slmob
