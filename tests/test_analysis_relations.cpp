#include "analysis/relations.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

ContactInterval contact(std::uint32_t a, std::uint32_t b, Seconds start, Seconds end) {
  return {AvatarId{std::min(a, b)}, AvatarId{std::max(a, b)}, start, end};
}

TEST(Relations, EmptyInput) {
  const RelationGraph graph({});
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_EQ(graph.user_count(), 0u);
  EXPECT_DOUBLE_EQ(graph.acquaintance_fraction(), 0.0);
}

TEST(Relations, SingleEncounterIsNotAcquaintance) {
  const RelationGraph graph({contact(1, 2, 0.0, 30.0)});
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_DOUBLE_EQ(graph.acquaintance_fraction(), 0.0);
}

TEST(Relations, RepeatedEncountersFormRelation) {
  const RelationGraph graph({
      contact(1, 2, 0.0, 30.0),
      contact(1, 2, 100.0, 160.0),
      contact(1, 2, 500.0, 520.0),
  });
  ASSERT_EQ(graph.edge_count(), 1u);
  const Relation& rel = graph.relations()[0];
  EXPECT_EQ(rel.encounters, 3u);
  EXPECT_DOUBLE_EQ(rel.total_contact, 30.0 + 60.0 + 20.0);
  EXPECT_DOUBLE_EQ(rel.first_met, 0.0);
  EXPECT_DOUBLE_EQ(rel.last_seen_together, 520.0);
  EXPECT_DOUBLE_EQ(rel.mean_recontact_gap(), 260.0);
  EXPECT_EQ(graph.degree(AvatarId{1}), 1u);
  EXPECT_EQ(graph.degree(AvatarId{2}), 1u);
  EXPECT_EQ(graph.degree(AvatarId{3}), 0u);
}

TEST(Relations, AcquaintanceFraction) {
  const RelationGraph graph({
      contact(1, 2, 0.0, 10.0),
      contact(1, 2, 50.0, 60.0),   // pair (1,2): acquaintance
      contact(1, 3, 0.0, 10.0),    // pair (1,3): single encounter
      contact(2, 3, 0.0, 10.0),    // pair (2,3): single encounter
  });
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_NEAR(graph.acquaintance_fraction(), 1.0 / 3.0, 1e-12);
}

TEST(Relations, MinEncountersOption) {
  RelationGraphOptions options;
  options.min_encounters = 1;
  const RelationGraph graph({contact(1, 2, 0.0, 10.0)}, options);
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(graph.acquaintance_fraction(), 1.0);
}

TEST(Relations, StrongestRanksByContactTime) {
  const RelationGraph graph({
      contact(1, 2, 0.0, 10.0), contact(1, 2, 50.0, 60.0),     // strength 20
      contact(3, 4, 0.0, 100.0), contact(3, 4, 200.0, 400.0),  // strength 300
      contact(5, 6, 0.0, 50.0), contact(5, 6, 60.0, 80.0),     // strength 70
  });
  const auto top = graph.strongest(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].a.value, 3u);
  EXPECT_DOUBLE_EQ(top[0].total_contact, 300.0);
  EXPECT_EQ(top[1].a.value, 5u);
}

TEST(Relations, DistributionsMatchEdges) {
  const RelationGraph graph({
      contact(1, 2, 0.0, 10.0), contact(1, 2, 50.0, 60.0),
      contact(1, 3, 0.0, 20.0), contact(1, 3, 90.0, 120.0),
  });
  ASSERT_EQ(graph.edge_count(), 2u);
  EXPECT_EQ(graph.encounter_counts().size(), 2u);
  EXPECT_DOUBLE_EQ(graph.encounter_counts().median(), 2.0);
  EXPECT_EQ(graph.tie_strengths().size(), 2u);
  // User 1 has two acquaintances; users 2 and 3 one each.
  EXPECT_DOUBLE_EQ(graph.acquaintance_degrees().max(), 2.0);
  EXPECT_EQ(graph.user_count(), 3u);
}

TEST(Relations, PairOrderCanonical) {
  const RelationGraph graph({
      contact(9, 4, 0.0, 10.0),
      contact(4, 9, 50.0, 60.0),  // same pair, reversed order
  });
  ASSERT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.relations()[0].a.value, 4u);
  EXPECT_EQ(graph.relations()[0].b.value, 9u);
  EXPECT_EQ(graph.relations()[0].encounters, 2u);
}

}  // namespace
}  // namespace slmob
