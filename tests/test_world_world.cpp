#include "world/world.hpp"

#include <gtest/gtest.h>

#include <set>

#include "world/archetypes.hpp"

namespace slmob {
namespace {

std::unique_ptr<World> small_world(std::uint64_t seed = 1) {
  return make_world(LandArchetype::kDanceIsland, seed);
}

void run(World& world, Seconds from, Seconds to) {
  for (Seconds t = from; t < to; t += 1.0) world.tick(t, 1.0);
}

TEST(World, PopulationArrivesAndDeparts) {
  auto world = small_world();
  run(*world, 0.0, 3600.0);
  EXPECT_GT(world->stats().total_logins, 0u);
  EXPECT_GT(world->stats().total_logouts, 0u);
  EXPECT_GT(world->concurrent(), 0u);
}

TEST(World, AvatarsStayInsideLand) {
  auto world = small_world();
  for (Seconds t = 0.0; t < 1800.0; t += 1.0) {
    world->tick(t, 1.0);
    const auto& store = world->avatars();
    for (std::size_t i = 0; i < store.size(); ++i) {
      ASSERT_TRUE(world->land().contains(store.pos(i)))
          << "avatar " << store.id(i).value << " at " << store.pos(i);
    }
  }
}

TEST(World, DeterministicForSameSeed) {
  auto a = small_world(7);
  auto b = small_world(7);
  run(*a, 0.0, 1200.0);
  run(*b, 0.0, 1200.0);
  ASSERT_EQ(a->concurrent(), b->concurrent());
  const auto& sa = a->avatars();
  const auto& sb = b->avatars();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa.id(i), sb.id(i));
    EXPECT_EQ(sa.pos(i), sb.pos(i));
  }
}

TEST(World, VisitLogConsistent) {
  auto world = small_world();
  run(*world, 0.0, 3600.0);
  const auto& log = world->visit_log();
  EXPECT_EQ(log.size(), world->stats().total_logins);
  std::size_t open = 0;
  for (const auto& visit : log) {
    if (visit.logout < 0.0) {
      ++open;
    } else {
      EXPECT_GE(visit.logout, visit.login);
    }
  }
  EXPECT_EQ(open, world->concurrent());
}

TEST(World, RevisitsReuseIdentity) {
  auto world = small_world();
  run(*world, 0.0, 4.0 * 3600.0);
  std::set<std::uint32_t> ids;
  std::size_t visits = 0;
  for (const auto& visit : world->visit_log()) {
    ids.insert(visit.avatar.value);
    ++visits;
  }
  // With revisit_probability > 0 some visits share an identity.
  EXPECT_LT(ids.size(), visits);
}

TEST(World, ExternalAvatarLifecycle) {
  auto world = small_world();
  const auto id = world->add_external_avatar(0.0, {128.0, 128.0, 22.0});
  ASSERT_TRUE(id.has_value());
  auto avatar = world->find(*id);
  ASSERT_TRUE(avatar.has_value());
  EXPECT_TRUE(avatar->externally_controlled);

  world->steer_external(0.0, *id, {200.0, 128.0, 22.0}, 2.0);
  run(*world, 0.0, 10.0);
  avatar = world->find(*id);
  ASSERT_TRUE(avatar.has_value());
  EXPECT_GT(avatar->pos.x, 128.0);

  world->remove_external_avatar(10.0, *id);
  EXPECT_FALSE(world->find(*id).has_value());
}

TEST(World, ExternalAvatarNeverLogsOutOnItsOwn) {
  auto world = small_world();
  const auto id = world->add_external_avatar(0.0, {128.0, 128.0, 22.0});
  ASSERT_TRUE(id.has_value());
  run(*world, 0.0, 2.0 * 3600.0);
  EXPECT_TRUE(world->find(*id).has_value());
}

TEST(World, CapacityRejectsLogins) {
  Land land("tiny");
  land.add_poi({"p", {128, 128, 22}, 10.0, 1.0});
  land.add_spawn_point({10, 10, 22});
  land.set_capacity(1);
  PopulationParams pop;
  pop.target_unique_users = 86400.0;  // 1 login/s: the region fills instantly
  auto model = std::make_unique<PoiGravityModel>(land, PoiGravityParams{});
  World world(std::move(land), std::move(model), pop, 1);
  for (Seconds t = 0.0; t < 60.0; t += 1.0) world.tick(t, 1.0);
  EXPECT_LE(world.concurrent(), 1u);
  EXPECT_GT(world.stats().rejected_logins, 0u);
}

TEST(World, CuriosityDrawsUsersToIdleBot) {
  auto world = small_world(3);
  CuriosityParams curiosity;
  curiosity.enabled = true;
  curiosity.idle_threshold = 60.0;
  curiosity.approach_probability = 0.8;
  world->set_curiosity(curiosity);
  // A bot that logs in and never moves or chats.
  const auto bot = world->add_external_avatar(0.0, {128.0, 128.0, 22.0});
  ASSERT_TRUE(bot.has_value());
  run(*world, 0.0, 3600.0);
  EXPECT_GT(world->stats().curiosity_approaches, 0u);
}

TEST(World, MimicryPreventsCuriosity) {
  auto world = small_world(3);
  CuriosityParams curiosity;
  curiosity.enabled = true;
  curiosity.idle_threshold = 60.0;
  curiosity.approach_probability = 0.8;
  world->set_curiosity(curiosity);
  const auto bot = world->add_external_avatar(0.0, {128.0, 128.0, 22.0});
  ASSERT_TRUE(bot.has_value());
  for (Seconds t = 0.0; t < 3600.0; t += 1.0) {
    // Chatting every 30 s keeps the bot looking human.
    if (static_cast<int>(t) % 30 == 0) world->mark_social_activity(t, *bot);
    world->tick(t, 1.0);
  }
  EXPECT_EQ(world->stats().curiosity_approaches, 0u);
}

TEST(World, SittingFlagControlled) {
  auto world = small_world();
  const auto id = world->add_external_avatar(0.0, {128.0, 128.0, 22.0});
  ASSERT_TRUE(id.has_value());
  world->set_sitting(*id, true);
  EXPECT_TRUE(world->find(*id)->sitting);
  world->set_sitting(*id, false);
  EXPECT_FALSE(world->find(*id)->sitting);
}

TEST(World, DebugSyntheticLogsOutOnSchedule) {
  auto world = small_world();
  const AvatarId id = world->debug_add_synthetic(0.0, {100.0, 100.0, 22.0}, 50.0);
  run(*world, 0.0, 49.0);
  EXPECT_TRUE(world->find(id).has_value());
  run(*world, 49.0, 60.0);
  EXPECT_FALSE(world->find(id).has_value());
}

}  // namespace
}  // namespace slmob
