#include "lsl/interpreter.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace slmob::lsl {
namespace {

// Test host recording all world-facing calls.
class FakeHost : public LslHost {
 public:
  void ll_say(std::int64_t channel, const std::string& text) override {
    says.emplace_back(channel, text);
  }
  void ll_owner_say(const std::string& text) override { owner_says.push_back(text); }
  void ll_set_timer_event(double period) override { timer_period = period; }
  void ll_sensor_repeat(const std::string&, const std::string&, std::int64_t,
                        double range, double, double rate) override {
    sensor_range = range;
    sensor_rate = rate;
  }
  Vec3 ll_get_pos() override { return {64.0, 128.0, 22.0}; }
  double ll_get_time() override { return 123.0; }
  std::int64_t ll_get_unix_time() override { return 1000; }
  double ll_frand(double max) override { return max / 2.0; }
  std::string ll_http_request(const std::string& url, const List&,
                              const std::string& body) override {
    http_requests.emplace_back(url, body);
    return "req-" + std::to_string(http_requests.size());
  }
  std::int64_t ll_get_free_memory() override { return 9999; }
  std::size_t detected_count() const override { return detected.size(); }
  Vec3 detected_pos(std::size_t i) const override { return detected.at(i); }
  std::string detected_key(std::size_t i) const override {
    return "avatar-" + std::to_string(i + 1);
  }
  std::string detected_name(std::size_t i) const override {
    return "Resident " + std::to_string(i + 1);
  }

  std::vector<std::pair<std::int64_t, std::string>> says;
  std::vector<std::string> owner_says;
  std::vector<std::pair<std::string, std::string>> http_requests;
  double timer_period{0.0};
  double sensor_range{0.0};
  double sensor_rate{0.0};
  std::vector<Vec3> detected;
};

struct Fixture {
  FakeHost host;
};

TEST(LslInterp, StateEntryRunsOnStart) {
  FakeHost host;
  Interpreter interp("default { state_entry() { llSay(0, \"hello\"); } }", host);
  interp.start();
  ASSERT_EQ(host.says.size(), 1u);
  EXPECT_EQ(host.says[0].second, "hello");
}

TEST(LslInterp, GlobalInitialisersEvaluate) {
  FakeHost host;
  Interpreter interp(R"(
    integer gA = 2 + 3 * 4;
    float gB = 10.0 / 4.0;
    string gC = "x" + "y";
    default { state_entry() { } }
  )", host);
  interp.start();
  EXPECT_EQ(interp.global("gA")->as_int(), 14);
  EXPECT_DOUBLE_EQ(interp.global("gB")->as_float(), 2.5);
  EXPECT_EQ(interp.global("gC")->as_string(), "xy");
}

TEST(LslInterp, IntegerDivisionTruncates) {
  FakeHost host;
  Interpreter interp("integer g = 7 / 2; integer h = 7 % 2;"
                     "default { state_entry() { } }", host);
  interp.start();
  EXPECT_EQ(interp.global("g")->as_int(), 3);
  EXPECT_EQ(interp.global("h")->as_int(), 1);
}

TEST(LslInterp, DivisionByZeroFails) {
  FakeHost host;
  Interpreter interp("integer g;"
                     "default { state_entry() { g = 1 / 0; } }", host);
  EXPECT_THROW(interp.start(), LslError);
}

TEST(LslInterp, ControlFlowLoops) {
  FakeHost host;
  Interpreter interp(R"(
    integer gSum = 0;
    default { state_entry() {
      integer i;
      for (i = 1; i <= 10; i = i + 1) { gSum += i; }
      while (gSum > 50) { gSum = gSum - 1; }
      if (gSum == 50) { gSum = 100; } else { gSum = -1; }
    } }
  )", host);
  interp.start();
  EXPECT_EQ(interp.global("gSum")->as_int(), 100);
}

TEST(LslInterp, UserFunctionsAndRecursion) {
  FakeHost host;
  Interpreter interp(R"(
    integer fib(integer n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
    integer gResult = 0;
    default { state_entry() { gResult = fib(12); } }
  )", host);
  interp.start();
  EXPECT_EQ(interp.global("gResult")->as_int(), 144);
}

TEST(LslInterp, RunawayRecursionCaught) {
  FakeHost host;
  Interpreter interp(R"(
    boom() { boom(); }
    default { state_entry() { boom(); } }
  )", host);
  EXPECT_THROW(interp.start(), LslError);
}

TEST(LslInterp, InstructionBudgetStopsInfiniteLoop) {
  FakeHost host;
  Interpreter interp("default { state_entry() { while (1) { } } }", host);
  interp.set_instruction_budget(10000);
  EXPECT_THROW(interp.start(), LslError);
}

TEST(LslInterp, VectorOperations) {
  FakeHost host;
  Interpreter interp(R"(
    vector gV = <1.0, 2.0, 3.0>;
    float gDot = 0.0;
    float gX = 0.0;
    default { state_entry() {
      vector w = gV + <1.0, 1.0, 1.0>;
      gX = w.x;
      gDot = gV * <2.0, 0.0, 0.0>;
      gV.z = 9.0;
    } }
  )", host);
  interp.start();
  EXPECT_DOUBLE_EQ(interp.global("gX")->as_float(), 2.0);
  EXPECT_DOUBLE_EQ(interp.global("gDot")->as_float(), 2.0);
  EXPECT_DOUBLE_EQ(interp.global("gV")->as_vector().z, 9.0);
}

TEST(LslInterp, StringBuiltinsAndCasts) {
  FakeHost host;
  Interpreter interp(R"(
    string gS = "";
    integer gLen = 0;
    integer gIdx = 0;
    string gSub = "";
    default { state_entry() {
      gS = (string)42 + "," + (string)2;
      gLen = llStringLength(gS);
      gIdx = llSubStringIndex(gS, ",");
      gSub = llGetSubString(gS, 0, 1);
    } }
  )", host);
  interp.start();
  EXPECT_EQ(interp.global("gS")->as_string(), "42,2");
  EXPECT_EQ(interp.global("gLen")->as_int(), 4);
  EXPECT_EQ(interp.global("gIdx")->as_int(), 2);
  EXPECT_EQ(interp.global("gSub")->as_string(), "42");
}

TEST(LslInterp, ListBuiltins) {
  FakeHost host;
  Interpreter interp(R"(
    list gL = [1, "two", 3.0];
    integer gN = 0;
    string gJoined = "";
    string gItem = "";
    default { state_entry() {
      gL += 4;
      gN = llGetListLength(gL);
      gJoined = llDumpList2String([1, 2, 3], "|");
      gItem = llList2String(gL, 1);
    } }
  )", host);
  interp.start();
  EXPECT_EQ(interp.global("gN")->as_int(), 4);
  EXPECT_EQ(interp.global("gJoined")->as_string(), "1|2|3");
  EXPECT_EQ(interp.global("gItem")->as_string(), "two");
}

TEST(LslInterp, MathBuiltins) {
  FakeHost host;
  Interpreter interp(R"(
    integer gF = 0; integer gC = 0; integer gR = 0; float gQ = 0.0; float gD = 0.0;
    default { state_entry() {
      gF = llFloor(3.7);
      gC = llCeil(3.2);
      gR = llRound(3.5);
      gQ = llSqrt(16.0);
      gD = llVecDist(<0,0,0>, <3,4,0>);
    } }
  )", host);
  interp.start();
  EXPECT_EQ(interp.global("gF")->as_int(), 3);
  EXPECT_EQ(interp.global("gC")->as_int(), 4);
  EXPECT_EQ(interp.global("gR")->as_int(), 4);
  EXPECT_DOUBLE_EQ(interp.global("gQ")->as_float(), 4.0);
  EXPECT_DOUBLE_EQ(interp.global("gD")->as_float(), 5.0);
}

TEST(LslInterp, ConstantsAvailable) {
  FakeHost host;
  Interpreter interp(R"(
    float gPi = 0.0; integer gT = 0;
    default { state_entry() { gPi = PI; gT = TRUE; } }
  )", host);
  interp.start();
  EXPECT_NEAR(interp.global("gPi")->as_float(), 3.14159265, 1e-6);
  EXPECT_EQ(interp.global("gT")->as_int(), 1);
}

TEST(LslInterp, TimerAndSensorEvents) {
  FakeHost host;
  Interpreter interp(R"(
    integer gTimers = 0;
    integer gSeen = 0;
    default {
      state_entry() { llSetTimerEvent(5.0); llSensorRepeat("", "", AGENT, 96.0, PI, 10.0); }
      timer() { gTimers = gTimers + 1; }
      sensor(integer n) { gSeen += n; }
      no_sensor() { gSeen = gSeen - 1; }
    }
  )", host);
  interp.start();
  EXPECT_DOUBLE_EQ(host.timer_period, 5.0);
  EXPECT_DOUBLE_EQ(host.sensor_range, 96.0);
  interp.fire_timer();
  interp.fire_timer();
  EXPECT_EQ(interp.global("gTimers")->as_int(), 2);
  host.detected = {{1, 1, 1}, {2, 2, 2}};
  interp.fire_sensor(2);
  EXPECT_EQ(interp.global("gSeen")->as_int(), 2);
  interp.fire_no_sensor();
  EXPECT_EQ(interp.global("gSeen")->as_int(), 1);
}

TEST(LslInterp, DetectedAccessors) {
  FakeHost host;
  host.detected = {{10.0, 20.0, 30.0}};
  Interpreter interp(R"(
    vector gP; string gK;
    default {
      state_entry() { }
      sensor(integer n) { gP = llDetectedPos(0); gK = llDetectedKey(0); }
    }
  )", host);
  interp.start();
  interp.fire_sensor(1);
  EXPECT_EQ(interp.global("gP")->as_vector(), (Vec3{10.0, 20.0, 30.0}));
  EXPECT_EQ(interp.global("gK")->as_string(), "avatar-1");
}

TEST(LslInterp, HttpRequestAndResponse) {
  FakeHost host;
  Interpreter interp(R"(
    key gReq; integer gStatus = -1; string gBody;
    default {
      state_entry() { gReq = llHTTPRequest("http://x/y", [], "payload"); }
      http_response(key k, integer status, list meta, string body) {
        gStatus = status;
        gBody = body;
      }
    }
  )", host);
  interp.start();
  ASSERT_EQ(host.http_requests.size(), 1u);
  EXPECT_EQ(host.http_requests[0].second, "payload");
  interp.fire_http_response("req-1", 200, "ok");
  EXPECT_EQ(interp.global("gStatus")->as_int(), 200);
  EXPECT_EQ(interp.global("gBody")->as_string(), "ok");
}

TEST(LslInterp, StateTransitionFiresStateEntry) {
  FakeHost host;
  Interpreter interp(R"(
    integer gPhase = 0;
    default {
      state_entry() { gPhase = 1; state armed; }
    }
    state armed {
      state_entry() { gPhase = 2; }
      timer() { gPhase = 3; }
    }
  )", host);
  interp.start();
  EXPECT_EQ(interp.current_state(), "armed");
  EXPECT_EQ(interp.global("gPhase")->as_int(), 2);
  interp.fire_timer();
  EXPECT_EQ(interp.global("gPhase")->as_int(), 3);
}

TEST(LslInterp, EventsWithoutHandlersAreIgnored) {
  FakeHost host;
  Interpreter interp("default { state_entry() { } }", host);
  interp.start();
  EXPECT_NO_THROW(interp.fire_timer());
  EXPECT_NO_THROW(interp.fire_sensor(3));
  EXPECT_NO_THROW(interp.fire_http_response("k", 200, ""));
  EXPECT_TRUE(interp.has_handler("state_entry"));
  EXPECT_FALSE(interp.has_handler("timer"));
}

TEST(LslInterp, UndefinedVariableFails) {
  FakeHost host;
  Interpreter interp("default { state_entry() { integer a = nope; } }", host);
  EXPECT_THROW(interp.start(), LslError);
}

TEST(LslInterp, IncrementSemantics) {
  FakeHost host;
  Interpreter interp(R"(
    integer gPost = 0; integer gPre = 0; integer i = 5;
    default { state_entry() {
      gPost = i++;
      gPre = ++i;
    } }
  )", host);
  interp.start();
  EXPECT_EQ(interp.global("gPost")->as_int(), 5);
  EXPECT_EQ(interp.global("gPre")->as_int(), 7);
}

}  // namespace
}  // namespace slmob::lsl
