#include "trace/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace slmob {
namespace {

Trace make_random_trace(std::uint64_t seed, std::size_t snapshots) {
  Rng rng(seed);
  Trace t("Test Land", 10.0);
  for (std::size_t i = 0; i < snapshots; ++i) {
    Snapshot snap;
    snap.time = static_cast<double>(i) * 10.0;
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 20));
    for (std::size_t j = 0; j < n; ++j) {
      snap.fixes.push_back({AvatarId{static_cast<std::uint32_t>(rng.uniform_int(1, 100))},
                            {rng.uniform(0.0, 256.0), rng.uniform(0.0, 256.0), 22.0}});
    }
    t.add(std::move(snap));
  }
  return t;
}

void expect_traces_equal(const Trace& a, const Trace& b, double tol) {
  EXPECT_EQ(a.land_name(), b.land_name());
  EXPECT_DOUBLE_EQ(a.sampling_interval(), b.sampling_interval());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& sa = a.snapshots()[i];
    const auto& sb = b.snapshots()[i];
    EXPECT_DOUBLE_EQ(sa.time, sb.time);
    ASSERT_EQ(sa.fixes.size(), sb.fixes.size());
    for (std::size_t j = 0; j < sa.fixes.size(); ++j) {
      EXPECT_EQ(sa.fixes[j].id, sb.fixes[j].id);
      EXPECT_NEAR(sa.fixes[j].pos.x, sb.fixes[j].pos.x, tol);
      EXPECT_NEAR(sa.fixes[j].pos.y, sb.fixes[j].pos.y, tol);
      EXPECT_NEAR(sa.fixes[j].pos.z, sb.fixes[j].pos.z, tol);
    }
  }
}

class SerializeRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeRoundTrip, Binary) {
  const Trace original = make_random_trace(GetParam(), 30);
  const auto bytes = encode_trace(original);
  const Trace decoded = decode_trace(bytes);
  expect_traces_equal(original, decoded, 1e-4);  // f32 storage
}

TEST_P(SerializeRoundTrip, Csv) {
  const Trace original = make_random_trace(GetParam(), 10);
  const std::string csv = trace_to_csv(original);
  const Trace decoded = trace_from_csv(csv, original.land_name(), 10.0);
  // CSV drops empty snapshots (no rows to carry them); compare non-empty.
  Trace filtered(original.land_name(), original.sampling_interval());
  for (const auto& s : original.snapshots()) {
    if (!s.fixes.empty()) filtered.add(s);
  }
  expect_traces_equal(filtered, decoded, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRoundTrip, ::testing::Values(1, 2, 3, 42, 1234));

TEST(Serialize, BadMagicThrows) {
  std::vector<std::uint8_t> bytes{'X', 'X', 'X', 'X', 0, 0};
  EXPECT_THROW((void)decode_trace(bytes), DecodeError);
}

TEST(Serialize, TruncatedThrows) {
  const Trace t = make_random_trace(9, 5);
  auto bytes = encode_trace(t);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)decode_trace(bytes), DecodeError);
}

TEST(Serialize, TrailingBytesThrow) {
  const Trace t = make_random_trace(9, 2);
  auto bytes = encode_trace(t);
  bytes.push_back(0);
  EXPECT_THROW((void)decode_trace(bytes), DecodeError);
}

TEST(Serialize, GapsRoundTripBinary) {
  Trace original = make_random_trace(21, 30);
  original.add_gap(35.0, 60.0);
  original.add_gap(120.0, 155.0);
  const Trace decoded = decode_trace(encode_trace(original));
  expect_traces_equal(original, decoded, 1e-4);
  ASSERT_EQ(decoded.gaps().size(), 2u);
  EXPECT_EQ(decoded.gaps()[0], (CoverageGap{35.0, 60.0}));
  EXPECT_EQ(decoded.gaps()[1], (CoverageGap{120.0, 155.0}));
}

TEST(Serialize, GapsRoundTripCsv) {
  Trace original("Test Land", 10.0);
  Snapshot s;
  s.time = 0.0;
  s.fixes.push_back({AvatarId{1}, {10.0, 20.0, 22.0}});
  original.add(s);
  original.add_gap(15.0, 45.0);
  const Trace decoded = trace_from_csv(trace_to_csv(original), "Test Land", 10.0);
  ASSERT_EQ(decoded.gaps().size(), 1u);
  EXPECT_DOUBLE_EQ(decoded.gaps()[0].start, 15.0);
  EXPECT_DOUBLE_EQ(decoded.gaps()[0].end, 45.0);
  ASSERT_EQ(decoded.size(), 1u);
}

TEST(Serialize, Version1BytesStillDecode) {
  // A v1 file is a v3 file minus the trailing gap and degradation blocks;
  // old traces must keep loading (as gap-free) forever.
  const Trace original = make_random_trace(13, 8);
  auto bytes = encode_trace(original);
  bytes.resize(bytes.size() - 8);  // drop the u32 gap + degradation counts (0)
  bytes[4] = 1;                    // patch version u16 (little-endian) to 1
  const Trace decoded = decode_trace(bytes);
  expect_traces_equal(original, decoded, 1e-4);
  EXPECT_TRUE(decoded.gaps().empty());
}

TEST(Serialize, Version2BytesStillDecode) {
  // A v2 file is a v3 file minus the trailing degradation block; traces
  // written before sampling degradation existed must keep loading.
  Trace original = make_random_trace(13, 8);
  original.add_gap(12.0, 30.0);
  auto bytes = encode_trace(original);
  bytes.resize(bytes.size() - 4);  // drop the u32 degradation count (0)
  bytes[4] = 2;                    // patch version u16 (little-endian) to 2
  const Trace decoded = decode_trace(bytes);
  expect_traces_equal(original, decoded, 1e-4);
  ASSERT_EQ(decoded.gaps().size(), 1u);
  EXPECT_TRUE(decoded.degradations().empty());
}

TEST(Serialize, TruncatedGapBlockThrows) {
  Trace t = make_random_trace(9, 5);
  t.add_gap(12.0, 24.0);
  auto bytes = encode_trace(t);
  bytes.resize(bytes.size() - 8);  // cut into the gap record
  EXPECT_THROW((void)decode_trace(bytes), DecodeError);
}

TEST(Serialize, CsvCorruptGapRowThrows) {
  EXPECT_THROW(
      (void)trace_from_csv("time,avatar,x,y,z\ngap,50.0,20.0,0,0\n", "x", 10.0),
      std::invalid_argument);  // gap end before start
}

TEST(Serialize, FileRoundTrip) {
  const Trace original = make_random_trace(77, 12);
  const std::string path = ::testing::TempDir() + "/slmob_trace_test.slt";
  save_trace(original, path);
  const Trace loaded = load_trace(path);
  expect_traces_equal(original, loaded, 1e-4);
  std::remove(path.c_str());
}

TEST(Serialize, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/dir/file.slt"), std::runtime_error);
}

// Regression: the CLI convert path used to fopen/fwrite the CSV without
// checking results, so a failed write still exited 0 with a truncated file.
// save_trace_csv shares write_file_atomic's contract instead.
TEST(Serialize, SaveTraceCsvRoundTrips) {
  const Trace original = make_random_trace(91, 9);
  const std::string path = ::testing::TempDir() + "/slmob_trace_test.csv";
  save_trace_csv(original, path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  const std::string written{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
  EXPECT_EQ(written, trace_to_csv(original));
  std::remove(path.c_str());
}

TEST(Serialize, SaveTraceCsvUnwritablePathThrows) {
  const Trace original = make_random_trace(91, 3);
  EXPECT_THROW(save_trace_csv(original, "/nonexistent/dir/out.csv"), std::runtime_error);
}

TEST(Serialize, CsvMalformedRowThrows) {
  EXPECT_THROW((void)trace_from_csv("time,avatar,x,y,z\n1,2,3\n", "x", 10.0), DecodeError);
}

}  // namespace
}  // namespace slmob
