#include "trace/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace slmob {
namespace {

Trace make_random_trace(std::uint64_t seed, std::size_t snapshots) {
  Rng rng(seed);
  Trace t("Test Land", 10.0);
  for (std::size_t i = 0; i < snapshots; ++i) {
    Snapshot snap;
    snap.time = static_cast<double>(i) * 10.0;
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 20));
    for (std::size_t j = 0; j < n; ++j) {
      snap.fixes.push_back({AvatarId{static_cast<std::uint32_t>(rng.uniform_int(1, 100))},
                            {rng.uniform(0.0, 256.0), rng.uniform(0.0, 256.0), 22.0}});
    }
    t.add(std::move(snap));
  }
  return t;
}

void expect_traces_equal(const Trace& a, const Trace& b, double tol) {
  EXPECT_EQ(a.land_name(), b.land_name());
  EXPECT_DOUBLE_EQ(a.sampling_interval(), b.sampling_interval());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& sa = a.snapshots()[i];
    const auto& sb = b.snapshots()[i];
    EXPECT_DOUBLE_EQ(sa.time, sb.time);
    ASSERT_EQ(sa.fixes.size(), sb.fixes.size());
    for (std::size_t j = 0; j < sa.fixes.size(); ++j) {
      EXPECT_EQ(sa.fixes[j].id, sb.fixes[j].id);
      EXPECT_NEAR(sa.fixes[j].pos.x, sb.fixes[j].pos.x, tol);
      EXPECT_NEAR(sa.fixes[j].pos.y, sb.fixes[j].pos.y, tol);
      EXPECT_NEAR(sa.fixes[j].pos.z, sb.fixes[j].pos.z, tol);
    }
  }
}

class SerializeRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeRoundTrip, Binary) {
  const Trace original = make_random_trace(GetParam(), 30);
  const auto bytes = encode_trace(original);
  const Trace decoded = decode_trace(bytes);
  expect_traces_equal(original, decoded, 1e-4);  // f32 storage
}

TEST_P(SerializeRoundTrip, Csv) {
  const Trace original = make_random_trace(GetParam(), 10);
  const std::string csv = trace_to_csv(original);
  const Trace decoded = trace_from_csv(csv, original.land_name(), 10.0);
  // CSV drops empty snapshots (no rows to carry them); compare non-empty.
  Trace filtered(original.land_name(), original.sampling_interval());
  for (const auto& s : original.snapshots()) {
    if (!s.fixes.empty()) filtered.add(s);
  }
  expect_traces_equal(filtered, decoded, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRoundTrip, ::testing::Values(1, 2, 3, 42, 1234));

TEST(Serialize, BadMagicThrows) {
  std::vector<std::uint8_t> bytes{'X', 'X', 'X', 'X', 0, 0};
  EXPECT_THROW((void)decode_trace(bytes), DecodeError);
}

TEST(Serialize, TruncatedThrows) {
  const Trace t = make_random_trace(9, 5);
  auto bytes = encode_trace(t);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)decode_trace(bytes), DecodeError);
}

TEST(Serialize, TrailingBytesThrow) {
  const Trace t = make_random_trace(9, 2);
  auto bytes = encode_trace(t);
  bytes.push_back(0);
  EXPECT_THROW((void)decode_trace(bytes), DecodeError);
}

TEST(Serialize, FileRoundTrip) {
  const Trace original = make_random_trace(77, 12);
  const std::string path = ::testing::TempDir() + "/slmob_trace_test.slt";
  save_trace(original, path);
  const Trace loaded = load_trace(path);
  expect_traces_equal(original, loaded, 1e-4);
  std::remove(path.c_str());
}

TEST(Serialize, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/dir/file.slt"), std::runtime_error);
}

TEST(Serialize, CsvMalformedRowThrows) {
  EXPECT_THROW((void)trace_from_csv("time,avatar,x,y,z\n1,2,3\n", "x", 10.0), DecodeError);
}

}  // namespace
}  // namespace slmob
