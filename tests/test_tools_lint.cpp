// Tests for slmob-lint (tools/lint/): every rule family has a positive
// fixture (the violation is caught), a suppressed fixture (a justified
// allow() silences it) and a clean fixture (no false positive). Fixture
// files live in tests/lint_fixtures/ — excluded from real scans by
// should_scan() — and are fed to the engine under virtual src/-style paths
// because path prefixes drive rule scoping.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using slmob::lint::Finding;
using slmob::lint::LintResult;
using slmob::lint::lint_source;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(SLMOB_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

LintResult lint_fixture(const std::string& name, const std::string& virtual_path) {
  return lint_source(virtual_path, read_fixture(name));
}

std::size_t count_rule(const LintResult& r, const std::string& rule) {
  std::size_t n = 0;
  for (const auto& f : r.findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

TEST(LintDeterminism, PositiveFixtureCatchesEveryCheck) {
  const LintResult r = lint_fixture("determinism_positive.cpp", "src/fixture.cpp");
  EXPECT_EQ(count_rule(r, "determinism/random-device"), 1u);
  EXPECT_EQ(count_rule(r, "determinism/libc-rand"), 2u);
  EXPECT_EQ(count_rule(r, "determinism/wall-clock"), 3u);
  EXPECT_EQ(r.unsuppressed(), 6u);
}

TEST(LintDeterminism, SuppressedFixtureIsJustified) {
  const LintResult r = lint_fixture("determinism_suppressed.cpp", "src/fixture.cpp");
  EXPECT_EQ(r.unsuppressed(), 0u);
  std::size_t suppressed = 0;
  for (const auto& f : r.findings) {
    if (f.suppressed) {
      ++suppressed;
      EXPECT_FALSE(f.justification.empty());
    }
  }
  EXPECT_EQ(suppressed, 2u);
}

TEST(LintDeterminism, CleanFixtureHasNoFindings) {
  const LintResult r = lint_fixture("determinism_clean.cpp", "src/fixture.cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintDeterminism, WallClockAllowlistedInSeamAndBench) {
  const std::string text = read_fixture("determinism_positive.cpp");
  // The seam itself may name steady_clock; RNG rules still apply there.
  const LintResult seam = lint_source("src/util/wallclock.hpp", text);
  EXPECT_EQ(count_rule(seam, "determinism/wall-clock"), 0u);
  EXPECT_EQ(count_rule(seam, "determinism/random-device"), 1u);
  // Bench timing harnesses measure real elapsed time by design.
  const LintResult bench = lint_source("bench/fixture.cpp", text);
  EXPECT_EQ(count_rule(bench, "determinism/wall-clock"), 0u);
}

TEST(LintDeterminism, IgnoresNamesInStringsAndComments) {
  const LintResult r = lint_source("src/x.cpp",
                                   "// std::rand() in a comment\n"
                                   "const char* s = \"std::random_device\";\n"
                                   "/* steady_clock::now() */\n");
  EXPECT_TRUE(r.findings.empty());
}

// ---------------------------------------------------------------------------
// ordered-iteration
// ---------------------------------------------------------------------------

TEST(LintOrderedIteration, PositiveFixtureCatchesBothContainers) {
  const LintResult r = lint_fixture("ordered_iteration_positive.cpp", "src/fixture.cpp");
  EXPECT_EQ(count_rule(r, "ordered-iteration/unordered-range-for"), 2u);
}

TEST(LintOrderedIteration, ScopedToSrcAndTools) {
  const std::string text = read_fixture("ordered_iteration_positive.cpp");
  EXPECT_GT(lint_source("tools/fixture.cpp", text).unsuppressed(), 0u);
  // Test scaffolding may iterate unordered containers freely.
  EXPECT_EQ(lint_source("tests/fixture.cpp", text).unsuppressed(), 0u);
}

TEST(LintOrderedIteration, SuppressedFixtureIsJustified) {
  const LintResult r = lint_fixture("ordered_iteration_suppressed.cpp", "src/fixture.cpp");
  EXPECT_EQ(r.unsuppressed(), 0u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(r.findings[0].suppressed);
}

TEST(LintOrderedIteration, CleanFixtureHasNoFindings) {
  const LintResult r = lint_fixture("ordered_iteration_clean.cpp", "src/fixture.cpp");
  EXPECT_TRUE(r.findings.empty());
}

// ---------------------------------------------------------------------------
// checked-durability
// ---------------------------------------------------------------------------

TEST(LintCheckedDurability, PositiveFixtureCatchesAllThreeCalls) {
  const LintResult r = lint_fixture("checked_durability_positive.cpp", "src/fixture.cpp");
  EXPECT_EQ(count_rule(r, "checked-durability/discarded-result"), 3u);
}

TEST(LintCheckedDurability, SuppressedFixtureIsJustified) {
  const LintResult r =
      lint_fixture("checked_durability_suppressed.cpp", "src/fixture.cpp");
  EXPECT_EQ(r.unsuppressed(), 0u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(r.findings[0].suppressed);
  EXPECT_NE(r.findings[0].justification.find("read-only"), std::string::npos);
}

TEST(LintCheckedDurability, CleanFixtureHasNoFindings) {
  const LintResult r = lint_fixture("checked_durability_clean.cpp", "src/fixture.cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintCheckedDurability, UsedResultsAreNotFlagged) {
  const LintResult r = lint_source("src/x.cpp",
                                   "bool ok(std::FILE* f, const char* d, size_t n) {\n"
                                   "  if (std::fwrite(d, 1, n, f) != n) return false;\n"
                                   "  return std::fclose(f) == 0;\n"
                                   "}\n");
  EXPECT_TRUE(r.findings.empty());
}

// ---------------------------------------------------------------------------
// alloc-free
// ---------------------------------------------------------------------------

TEST(LintAllocFree, PositiveFixtureCatchesAllocationsOnlyInsideRegion) {
  const LintResult r = lint_fixture("alloc_free_positive.cpp", "src/fixture.cpp");
  // push_back + make_unique + std::function inside hot(); cold() is exempt.
  EXPECT_EQ(count_rule(r, "alloc-free/allocation"), 3u);
}

TEST(LintAllocFree, SuppressedFixtureIsJustified) {
  const LintResult r = lint_fixture("alloc_free_suppressed.cpp", "src/fixture.cpp");
  EXPECT_EQ(r.unsuppressed(), 0u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(r.findings[0].suppressed);
}

TEST(LintAllocFree, CleanFixtureHasNoFindings) {
  const LintResult r = lint_fixture("alloc_free_clean.cpp", "src/fixture.cpp");
  EXPECT_TRUE(r.findings.empty());
}

// ---------------------------------------------------------------------------
// float-determinism
// ---------------------------------------------------------------------------

TEST(LintFloatDeterminism, PositiveFixtureCatchesAccumulateAndReduce) {
  const LintResult r = lint_fixture("float_determinism_positive.cpp", "src/fixture.cpp");
  EXPECT_EQ(count_rule(r, "float-determinism/accumulate"), 1u);
  EXPECT_EQ(count_rule(r, "float-determinism/unordered-reduce"), 1u);
}

TEST(LintFloatDeterminism, ScopedToSrc) {
  const std::string text = read_fixture("float_determinism_positive.cpp");
  EXPECT_EQ(lint_source("bench/fixture.cpp", text).unsuppressed(), 0u);
}

TEST(LintFloatDeterminism, SuppressedFixtureIsJustified) {
  const LintResult r =
      lint_fixture("float_determinism_suppressed.cpp", "src/fixture.cpp");
  EXPECT_EQ(r.unsuppressed(), 0u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(r.findings[0].suppressed);
}

TEST(LintFloatDeterminism, IntegerAccumulateIsClean) {
  const LintResult r = lint_fixture("float_determinism_clean.cpp", "src/fixture.cpp");
  EXPECT_TRUE(r.findings.empty());
}

// ---------------------------------------------------------------------------
// header-hygiene
// ---------------------------------------------------------------------------

TEST(LintHeaderHygiene, PositiveFixtureCatchesGuardAndUsingNamespace) {
  const LintResult r = lint_fixture("header_hygiene_positive.hpp", "src/fixture.hpp");
  EXPECT_EQ(count_rule(r, "header-hygiene/missing-include-guard"), 1u);
  EXPECT_EQ(count_rule(r, "header-hygiene/using-namespace-header"), 1u);
}

TEST(LintHeaderHygiene, SuppressedFixtureIsJustified) {
  const LintResult r = lint_fixture("header_hygiene_suppressed.hpp", "src/fixture.hpp");
  EXPECT_EQ(r.unsuppressed(), 0u);
  EXPECT_EQ(r.findings.size(), 2u);
}

TEST(LintHeaderHygiene, CleanFixtureHasNoFindings) {
  const LintResult r = lint_fixture("header_hygiene_clean.hpp", "src/fixture.hpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintHeaderHygiene, SourceFilesAreExemptFromHeaderRules) {
  const std::string text = read_fixture("header_hygiene_positive.hpp");
  const LintResult r = lint_source("src/fixture.cpp", text);
  EXPECT_EQ(count_rule(r, "header-hygiene/missing-include-guard"), 0u);
  EXPECT_EQ(count_rule(r, "header-hygiene/using-namespace-header"), 0u);
}

TEST(LintHeaderHygiene, IncludeGuardCountsAsGuarded) {
  const LintResult r = lint_source("src/x.hpp",
                                   "#ifndef SLMOB_X_HPP\n"
                                   "#define SLMOB_X_HPP\n"
                                   "int x();\n"
                                   "#endif\n");
  EXPECT_EQ(count_rule(r, "header-hygiene/missing-include-guard"), 0u);
}

// ---------------------------------------------------------------------------
// lint (meta rules: the suppression protocol itself)
// ---------------------------------------------------------------------------

TEST(LintMeta, UnjustifiedAllowDoesNotSuppressAndIsFlagged) {
  const LintResult r = lint_fixture("lint_meta_positive.cpp", "src/fixture.cpp");
  EXPECT_EQ(count_rule(r, "lint/missing-justification"), 1u);
  EXPECT_EQ(count_rule(r, "lint/unknown-rule"), 1u);
  // The bare allow() must NOT silence the rand() it hovers over.
  EXPECT_EQ(count_rule(r, "determinism/libc-rand"), 1u);
  for (const auto& f : r.findings) EXPECT_FALSE(f.suppressed);
}

TEST(LintMeta, TrailingCommentOnPreviousLineDoesNotSuppressNextLine) {
  const LintResult r =
      lint_source("src/x.cpp",
                  "int x = 0;  // slmob-lint: allow(determinism) -- misplaced trailer\n"
                  "int y = std::rand();\n");
  EXPECT_EQ(r.unsuppressed(), 1u);
  EXPECT_EQ(count_rule(r, "determinism/libc-rand"), 1u);
}

TEST(LintMeta, LoneCommentOnPreviousLineSuppressesNextLine) {
  const LintResult r =
      lint_source("src/x.cpp",
                  "// slmob-lint: allow(determinism/libc-rand) -- exercised on purpose\n"
                  "int y = std::rand();\n");
  EXPECT_EQ(r.unsuppressed(), 0u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(r.findings[0].suppressed);
  EXPECT_EQ(r.findings[0].justification, "exercised on purpose");
}

TEST(LintMeta, FamilyPrefixMatchesAnyCheckInFamily) {
  const LintResult r = lint_source(
      "src/x.cpp",
      "int y = std::rand();  // slmob-lint: allow(determinism) -- family prefix\n");
  EXPECT_EQ(r.unsuppressed(), 0u);
}

TEST(LintMeta, SuppressionForWrongRuleDoesNotApply) {
  const LintResult r = lint_source(
      "src/x.cpp",
      "int y = std::rand();  // slmob-lint: allow(header-hygiene) -- wrong family\n");
  EXPECT_EQ(count_rule(r, "determinism/libc-rand"), 1u);
  for (const auto& f : r.findings) {
    if (f.rule == "determinism/libc-rand") {
      EXPECT_FALSE(f.suppressed);
    }
  }
}

// ---------------------------------------------------------------------------
// infrastructure: should_scan, JSON report, known_rules
// ---------------------------------------------------------------------------

TEST(LintInfra, ShouldScanFiltersExtensionsAndFixtures) {
  EXPECT_TRUE(slmob::lint::should_scan("src/stats/ecdf.cpp"));
  EXPECT_TRUE(slmob::lint::should_scan("src/util/wallclock.hpp"));
  EXPECT_FALSE(slmob::lint::should_scan("README.md"));
  EXPECT_FALSE(slmob::lint::should_scan("tests/lint_fixtures/determinism_positive.cpp"));
  EXPECT_FALSE(slmob::lint::should_scan("build/generated.cpp"));
}

TEST(LintInfra, KnownRulesAreSortedAndNamespaced) {
  const auto& rules = slmob::lint::known_rules();
  EXPECT_TRUE(std::is_sorted(rules.begin(), rules.end()));
  for (const auto& r : rules) {
    EXPECT_NE(r.find('/'), std::string::npos) << r;
  }
}

TEST(LintInfra, JsonReportCarriesFindingsAndEscapes) {
  const LintResult r =
      lint_source("src/x.cpp", "int y = std::rand();  // path with \"quotes\"\n");
  const std::string json = slmob::lint::findings_to_json(r);
  EXPECT_NE(json.find("\"rule\": \"determinism/libc-rand\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/x.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\": 1"), std::string::npos);
}

TEST(LintInfra, FindingsAreSortedByPathLineCol) {
  const LintResult r = slmob::lint::lint_sources(
      {{"src/b.cpp", "int y = std::rand();\n"},
       {"src/a.cpp", "int x = std::rand();\nint z = std::rand();\n"}});
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].path, "src/a.cpp");
  EXPECT_EQ(r.findings[0].line, 1);
  EXPECT_EQ(r.findings[1].path, "src/a.cpp");
  EXPECT_EQ(r.findings[1].line, 2);
  EXPECT_EQ(r.findings[2].path, "src/b.cpp");
}

// ---------------------------------------------------------------------------
// the gate itself: the real tree must be clean
// ---------------------------------------------------------------------------

TEST(LintGate, RepoTreeHasNoUnsuppressedFindings) {
  namespace fs = std::filesystem;
  const fs::path root{SLMOB_REPO_ROOT};
  ASSERT_TRUE(fs::exists(root));
  std::vector<slmob::lint::SourceFile> sources;
  for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel = fs::relative(entry.path(), root).generic_string();
      if (!slmob::lint::should_scan(rel)) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream os;
      os << in.rdbuf();
      sources.push_back({rel, os.str()});
    }
  }
  ASSERT_GT(sources.size(), 100u);  // sanity: the walk found the real tree
  const LintResult r = slmob::lint::lint_sources(sources);
  for (const auto& f : r.findings) {
    EXPECT_TRUE(f.suppressed) << f.path << ":" << f.line << " [" << f.rule << "] "
                              << f.message;
  }
}

}  // namespace
