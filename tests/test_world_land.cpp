#include "world/archetypes.hpp"
#include "world/land.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

TEST(Land, ClampKeepsPointsInside) {
  const Land land("x");
  const Vec3 p = land.clamp({-10.0, 300.0, 99.0});
  EXPECT_TRUE(land.contains(p));
  EXPECT_DOUBLE_EQ(p.z, land.ground_z());
}

TEST(Land, ContainsHalfOpen) {
  const Land land("x");
  EXPECT_TRUE(land.contains({0.0, 0.0, 0.0}));
  EXPECT_FALSE(land.contains({256.0, 10.0, 0.0}));
  EXPECT_FALSE(land.contains({-0.1, 10.0, 0.0}));
}

TEST(Land, RejectsBadPois) {
  Land land("x");
  EXPECT_THROW(land.add_poi({"p", {10, 10, 22}, -1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(land.add_poi({"p", {10, 10, 22}, 5.0, -1.0}), std::invalid_argument);
}

TEST(Land, RejectsNonPositiveSize) {
  EXPECT_THROW(Land("x", 0.0), std::invalid_argument);
  EXPECT_THROW(Land("x", -5.0), std::invalid_argument);
}

class ArchetypeTest : public ::testing::TestWithParam<LandArchetype> {};

TEST_P(ArchetypeTest, LandIsWellFormed) {
  const Land land = make_land(GetParam());
  EXPECT_FALSE(land.name().empty());
  EXPECT_FALSE(land.pois().empty());
  EXPECT_FALSE(land.spawn_points().empty());
  EXPECT_EQ(land.size(), kDefaultLandSize);
  for (const auto& poi : land.pois()) {
    EXPECT_TRUE(land.contains(poi.center)) << poi.name;
    EXPECT_GT(poi.radius, 0.0);
    EXPECT_GT(poi.weight, 0.0);
  }
  for (const auto& spawn : land.spawn_points()) EXPECT_TRUE(land.contains(spawn));
}

TEST_P(ArchetypeTest, PopulationMatchesLittlesLaw) {
  // avg_concurrent = rate * mean_session; mean = median * exp(sigma^2/2),
  // with the arrival rate scaled by 1/(1 - p_revisit).
  const PopulationParams p = make_population(GetParam());
  const double mean_session = p.session_median * std::exp(p.session_sigma * p.session_sigma / 2.0);
  const double rate = p.target_unique_users / (p.horizon * (1.0 - p.revisit_probability));
  const double implied_concurrency = rate * mean_session;
  double expected = 0.0;
  switch (GetParam()) {
    case LandArchetype::kApfelLand:
      expected = 13.0;
      break;
    case LandArchetype::kDanceIsland:
      expected = 34.0;
      break;
    case LandArchetype::kIsleOfView:
      expected = 65.0;
      break;
  }
  EXPECT_NEAR(implied_concurrency, expected, expected * 0.12);
}

TEST_P(ArchetypeTest, MakeWorldConstructs) {
  const auto world = make_world(GetParam(), 1);
  ASSERT_NE(world, nullptr);
  EXPECT_EQ(world->concurrent(), 0u);
  EXPECT_EQ(world->land().name(), archetype_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllLands, ArchetypeTest,
                         ::testing::Values(LandArchetype::kApfelLand,
                                           LandArchetype::kDanceIsland,
                                           LandArchetype::kIsleOfView));

TEST(Archetypes, DanceIslandIsPrivate) {
  EXPECT_EQ(make_land(LandArchetype::kDanceIsland).access(), LandAccess::kPrivate);
}

TEST(Archetypes, DanceVenueWithinWifiRange) {
  // The bar must sit inside the WiFi disc of the dance floor: this is what
  // keeps inter-contact times similar at both radii (paper §4).
  const Land land = make_land(LandArchetype::kDanceIsland);
  const auto& pois = land.pois();
  ASSERT_GE(pois.size(), 2u);
  EXPECT_LT(pois[0].center.distance2d_to(pois[1].center), 80.0);
}

}  // namespace
}  // namespace slmob
