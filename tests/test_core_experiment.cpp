#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

ExperimentConfig short_config(LandArchetype archetype, std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.archetype = archetype;
  cfg.duration = kSecondsPerHour;  // 1 h keeps the test quick
  cfg.seed = seed;
  return cfg;
}

TEST(Experiment, ProducesAllAnalyses) {
  const ExperimentResults res = run_experiment(short_config(LandArchetype::kDanceIsland));
  EXPECT_GT(res.summary.snapshot_count, 300u);
  EXPECT_GT(res.summary.unique_users, 20u);
  ASSERT_EQ(res.contacts.size(), 2u);
  ASSERT_EQ(res.graphs.size(), 2u);
  EXPECT_TRUE(res.contacts.contains(kBluetoothRange));
  EXPECT_TRUE(res.contacts.contains(kWifiRange));
  EXPECT_FALSE(res.contacts.at(kBluetoothRange).contact_times.empty());
  EXPECT_FALSE(res.trips.travel_times.empty());
  EXPECT_GT(res.zones.cells_per_side, 0u);
  EXPECT_GT(res.crawler_stats.snapshots_taken, 0u);
  EXPECT_GT(res.network_stats.sent, 0u);
}

TEST(Experiment, DeterministicForSeed) {
  const ExperimentResults a = run_experiment(short_config(LandArchetype::kApfelLand, 5));
  const ExperimentResults b = run_experiment(short_config(LandArchetype::kApfelLand, 5));
  EXPECT_EQ(a.summary.unique_users, b.summary.unique_users);
  EXPECT_DOUBLE_EQ(a.summary.avg_concurrent, b.summary.avg_concurrent);
  EXPECT_EQ(a.contacts.at(kBluetoothRange).intervals.size(),
            b.contacts.at(kBluetoothRange).intervals.size());
}

TEST(Experiment, SeedsChangeOutcome) {
  const ExperimentResults a = run_experiment(short_config(LandArchetype::kApfelLand, 1));
  const ExperimentResults b = run_experiment(short_config(LandArchetype::kApfelLand, 2));
  EXPECT_NE(a.contacts.at(kBluetoothRange).intervals.size(),
            b.contacts.at(kBluetoothRange).intervals.size());
}

TEST(Experiment, GroundTruthAnalysisMode) {
  ExperimentConfig cfg = short_config(LandArchetype::kDanceIsland);
  cfg.analyze_ground_truth = true;
  const ExperimentResults res = run_experiment(cfg);
  // Ground-truth positions are not metre-quantised.
  bool fractional_found = false;
  for (const auto& snap : res.trace.snapshots()) {
    for (const auto& fix : snap.fixes) {
      if (fix.pos.x != std::floor(fix.pos.x)) fractional_found = true;
    }
  }
  EXPECT_TRUE(fractional_found);
}

TEST(Experiment, WifiContactsDominateBluetooth) {
  const ExperimentResults res = run_experiment(short_config(LandArchetype::kIsleOfView));
  const auto& bt = res.contacts.at(kBluetoothRange);
  const auto& wifi = res.contacts.at(kWifiRange);
  // A superset radius yields at least as much total contact time.
  double bt_total = 0.0;
  double wifi_total = 0.0;
  for (const auto& c : bt.intervals) bt_total += c.duration();
  for (const auto& c : wifi.intervals) wifi_total += c.duration();
  EXPECT_GT(wifi_total, bt_total);
  // And no user has fewer first contacts.
  EXPECT_GE(wifi.users_with_contact, bt.users_with_contact);
}

TEST(Experiment, AnalyzeTraceStandalone) {
  Trace t("hand", 10.0);
  for (int i = 0; i < 10; ++i) {
    Snapshot s;
    s.time = i * 10.0;
    s.fixes = {{AvatarId{1}, {i * 2.0, 0.0, 22.0}}, {AvatarId{2}, {i * 2.0 + 5.0, 0.0, 22.0}}};
    t.add(std::move(s));
  }
  const ExperimentResults res = analyze_trace(std::move(t), {10.0});
  EXPECT_EQ(res.summary.unique_users, 2u);
  EXPECT_EQ(res.contacts.at(10.0).intervals.size(), 1u);
  EXPECT_EQ(res.trips.sessions, 2u);
}

TEST(Experiment, CuriosityPerturbationBiasesNaiveCrawler) {
  // A naive (non-mimicking) crawler attracts users; with mimicry the trace
  // matches the unperturbed world. This is the §2 effect of the paper.
  ExperimentConfig naive = short_config(LandArchetype::kApfelLand, 11);
  naive.duration = 2.0 * kSecondsPerHour;
  naive.testbed.crawler.mimicry.enabled = false;
  CuriosityParams curiosity;
  curiosity.enabled = true;
  curiosity.approach_probability = 0.5;
  naive.testbed.curiosity = curiosity;
  const ExperimentResults biased = run_experiment(naive);

  ExperimentConfig mimic = naive;
  mimic.testbed.crawler.mimicry.enabled = true;
  const ExperimentResults clean = run_experiment(mimic);

  // The crawler sits at the spawn point; users converging on it inflate
  // contact counts near that location (they pile on one spot).
  const auto biased_zone = biased.zones.max_occupancy;
  const auto clean_zone = clean.zones.max_occupancy;
  EXPECT_GT(biased_zone, clean_zone);
}

}  // namespace
}  // namespace slmob
