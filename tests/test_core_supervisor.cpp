#include "core/supervisor.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "trace/serialize.hpp"
#include "util/bytes.hpp"

namespace slmob {
namespace {

// The golden 3-land experiment under the shard-chaos scenario: every
// archetype once, consecutive seeds, three scripted shard crashes plus one
// stall per shard (FaultSchedule "shard-chaos").
std::vector<ExperimentConfig> three_lands(const std::string& faults = "shard-chaos",
                                          Seconds duration = 900.0) {
  const LandArchetype lands[] = {LandArchetype::kApfelLand, LandArchetype::kDanceIsland,
                                 LandArchetype::kIsleOfView};
  std::vector<ExperimentConfig> shards;
  for (std::size_t i = 0; i < 3; ++i) {
    ExperimentConfig cfg;
    cfg.archetype = lands[i];
    cfg.duration = duration;
    cfg.seed = 42 + i;
    cfg.fault_scenario = faults;
    cfg.ranges = {};
    shards.push_back(cfg);
  }
  return shards;
}

std::vector<std::uint32_t> digests(const std::vector<ShardResult>& results) {
  std::vector<std::uint32_t> out;
  for (const auto& r : results) out.push_back(crc32(encode_trace(r.trace)));
  return out;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Fast-recovery knobs for tests: small checkpoint segments, an aggressive
// watchdog and near-zero backoff, so a whole chaos run heals in seconds of
// wall time. None of these affect trace content.
SupervisorOptions test_options(const std::string& dir) {
  SupervisorOptions opt;
  opt.checkpoint_dir = dir;
  opt.checkpoint_every = 100.0;
  opt.heartbeat_every = 50.0;
  opt.watchdog_timeout_ms = 200.0;
  opt.backoff_base_ms = 1.0;
  opt.backoff_max_ms = 8.0;
  return opt;
}

// The supervisor's core invariant: a supervised run through >= 3 injected
// crashes and 1 stall per shard completes unattended and its traces are
// bit-identical to the uninterrupted (fault-ignoring) run — at every thread
// count. Shard-fault windows are invisible outside the supervisor, so plain
// run_sharded over the same configs IS the uninterrupted reference.
TEST(Supervisor, ChaosRunBitIdenticalToUninterruptedAcrossThreadCounts) {
  const auto shards = three_lands();
  ShardRunOptions plain;
  plain.threads = 1;
  const auto reference = digests(run_sharded(shards, plain));
  ASSERT_EQ(reference.size(), 3u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const std::string dir =
        fresh_dir("supervisor-chaos-t" + std::to_string(threads));
    SupervisorOptions opt = test_options(dir);
    opt.threads = threads;
    const SupervisedRun run = run_supervised(shards, opt);

    EXPECT_TRUE(run.all_completed()) << "thread count " << threads;
    EXPECT_FALSE(run.any_failed_partial());
    EXPECT_EQ(digests(run.shards), reference) << "thread count " << threads;

    std::uint64_t crashes = 0, stalls = 0;
    for (const auto& h : run.health) {
      crashes += h.crashes;
      stalls += h.stalls;
      EXPECT_EQ(h.phase, ShardPhase::kCompleted);
      EXPECT_GE(h.restarts, 1u) << "shard " << h.index << " was never restarted";
    }
    // shard-chaos scripts 3 crashes + 1 stall per shard.
    EXPECT_GE(crashes, 3u);
    EXPECT_GE(stalls, 1u);
  }
}

TEST(Supervisor, WatchdogDetectsStallWithinDeadlineAndRestarts) {
  std::vector<ExperimentConfig> one = three_lands("none");
  one.resize(1);
  // Programmatic schedule (not a named scenario): a single stall mid-run.
  one[0].testbed.faults.add(
      {FaultKind::kShardStall, 300.0, 301.0, 1.0, {}});

  ShardRunOptions plain;
  plain.threads = 1;
  const auto reference = digests(run_sharded(one, plain));

  SupervisorOptions opt = test_options(fresh_dir("supervisor-stall"));
  opt.threads = 1;
  const SupervisedRun run = run_supervised(one, opt);

  ASSERT_TRUE(run.all_completed());
  const ShardHealth& h = run.health[0];
  EXPECT_EQ(h.stalls, 1u);
  EXPECT_EQ(h.crashes, 0u);
  EXPECT_GE(h.watchdog_aborts, 1u);
  EXPECT_EQ(h.restarts, 1u);

  // The stall event records how long the watchdog took to cancel the wedged
  // shard: detection must happen within a small multiple of the deadline
  // (poll quantum + scheduling slack), never hang.
  ASSERT_EQ(h.events.size(), 1u);
  const ShardFaultEvent& ev = h.events[0];
  EXPECT_EQ(ev.kind, ShardFaultEvent::Kind::kInjectedStall);
  EXPECT_GE(ev.detect_ms, 0.0);
  EXPECT_LE(ev.detect_ms, 10.0 * opt.watchdog_timeout_ms);
  EXPECT_GE(ev.recovery_ms, 0.0);  // it resumed and ticked again

  EXPECT_EQ(digests(run.shards), reference);
}

TEST(Supervisor, HealthySlowShardIsNotFalselyKilled) {
  std::vector<ExperimentConfig> one = three_lands("none", 600.0);
  one.resize(1);

  ShardRunOptions plain;
  plain.threads = 1;
  const auto reference = digests(run_sharded(one, plain));

  // Each 50-virtual-second segment sleeps 150 wall ms — a shard crawling
  // along at a good fraction of the 400 ms deadline. Progress (heartbeats)
  // keeps arriving, so the watchdog must leave it alone.
  SupervisorOptions opt = test_options(fresh_dir("supervisor-slow"));
  opt.threads = 1;
  opt.watchdog_timeout_ms = 400.0;
  opt.test_segment_delay_ms = 150.0;
  const SupervisedRun run = run_supervised(one, opt);

  ASSERT_TRUE(run.all_completed());
  EXPECT_EQ(run.health[0].restarts, 0u);
  EXPECT_EQ(run.health[0].watchdog_aborts, 0u);
  EXPECT_TRUE(run.health[0].events.empty());
  EXPECT_EQ(digests(run.shards), reference);
}

TEST(Supervisor, RetryBudgetExhaustionDegradesToFailedPartial) {
  // Shard 1 carries two crash windows but gets a budget of one restart; the
  // other two shards are fault-free and must be untouched by its failure.
  auto shards = three_lands("none");
  shards[1].testbed.faults.add({FaultKind::kShardCrash, 300.0, 301.0, 1.0, {}});
  shards[1].testbed.faults.add({FaultKind::kShardCrash, 500.0, 501.0, 1.0, {}});

  ShardRunOptions plain;
  plain.threads = 1;
  const auto reference = digests(run_sharded(shards, plain));

  SupervisorOptions opt = test_options(fresh_dir("supervisor-budget"));
  opt.threads = 2;
  opt.max_restarts = 1;
  const SupervisedRun run = run_supervised(shards, opt);

  EXPECT_FALSE(run.all_completed());
  ASSERT_TRUE(run.any_failed_partial());
  const ShardHealth& h = run.health[1];
  EXPECT_TRUE(h.failed_partial);
  EXPECT_EQ(h.phase, ShardPhase::kFailedPartial);
  EXPECT_EQ(h.crashes, 2u);
  EXPECT_EQ(h.restarts, 1u);

  // Survivors are bit-identical to the uninterrupted run.
  EXPECT_EQ(crc32(encode_trace(run.shards[0].trace)), reference[0]);
  EXPECT_EQ(crc32(encode_trace(run.shards[2].trace)), reference[2]);

  // The salvaged partial trace is honest: it covers the run up to (at most)
  // the fatal crash and censors everything after as a trailing gap ending
  // at the planned end of the run.
  const Trace& partial = run.shards[1].trace;
  ASSERT_FALSE(partial.gaps().empty());
  EXPECT_DOUBLE_EQ(partial.gaps().back().end, 900.0);
  EXPECT_GT(partial.snapshots().size(), 0u);  // pre-crash capture survived
}

TEST(Supervisor, CorruptCheckpointFallsBackAndStillCompletes) {
  auto one = three_lands("none");
  one.resize(1);
  one[0].testbed.faults.add({FaultKind::kShardCrash, 450.0, 451.0, 1.0, {}});

  ShardRunOptions plain;
  plain.threads = 1;
  const auto reference = digests(run_sharded(one, plain));

  const std::string dir = fresh_dir("supervisor-corrupt");
  // Pre-plant garbage where the shard's checkpoint will live: the first
  // rotation shunts it to checkpoint.prev.slck, and any load that reaches
  // it must reject it loudly instead of resuming into garbage.
  const std::string shard_dir = dir + "/" + shard_dir_name(0, one[0].archetype);
  std::filesystem::create_directories(shard_dir);
  {
    std::FILE* f = std::fopen((shard_dir + "/" + kCheckpointFileName).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a checkpoint", f);
    ASSERT_EQ(std::fclose(f), 0);
  }

  SupervisorOptions opt = test_options(dir);
  opt.threads = 1;
  const SupervisedRun run = run_supervised(one, opt);

  ASSERT_TRUE(run.all_completed());
  EXPECT_EQ(digests(run.shards), reference);
}

TEST(Supervisor, BothCheckpointGenerationsCorruptColdRestartsAndCompletes) {
  auto one = three_lands("none");
  one.resize(1);
  one[0].testbed.faults.add({FaultKind::kShardCrash, 450.0, 451.0, 1.0, {}});

  ShardRunOptions plain;
  plain.threads = 1;
  const auto reference = digests(run_sharded(one, plain));

  const std::string dir = fresh_dir("supervisor-both-corrupt");
  const std::string shard_dir = dir + "/" + shard_dir_name(0, one[0].archetype);
  std::filesystem::create_directories(shard_dir);
  for (const char* name : {kCheckpointFileName, kCheckpointPrevFileName}) {
    std::FILE* f = std::fopen((shard_dir + "/" + name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage, both generations", f);
    ASSERT_EQ(std::fclose(f), 0);
  }

  SupervisorOptions opt = test_options(dir);
  opt.threads = 1;
  // No real checkpoint ever lands (segments longer than the run), so the
  // restart after the 450 s crash finds only the two pre-planted corpses:
  // the fallback chain exhausts both generations and the shard must cold-
  // restart from zero — and still reproduce the uninterrupted trace.
  opt.checkpoint_every = 1e9;
  const SupervisedRun run = run_supervised(one, opt);

  ASSERT_TRUE(run.all_completed());
  EXPECT_EQ(digests(run.shards), reference);
  EXPECT_GE(run.health[0].cold_restarts, 1u);
}

TEST(Supervisor, RequiresCheckpointDir) {
  EXPECT_THROW(run_supervised(three_lands(), SupervisorOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace slmob
