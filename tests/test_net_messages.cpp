#include "net/messages.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

template <typename T>
T round_trip(const T& msg) {
  const auto bytes = encode_message(Message{msg});
  const Message decoded = decode_message(bytes);
  return std::get<T>(decoded);
}

TEST(Messages, LoginRequestRoundTrip) {
  LoginRequest m;
  m.first_name = "slmob";
  m.last_name = "crawler";
  m.password_hash = 0xdeadbeefcafe1234ULL;
  m.circuit_code = 777;
  const auto r = round_trip(m);
  EXPECT_EQ(r.first_name, m.first_name);
  EXPECT_EQ(r.last_name, m.last_name);
  EXPECT_EQ(r.password_hash, m.password_hash);
  EXPECT_EQ(r.circuit_code, m.circuit_code);
}

TEST(Messages, LoginResponseRoundTrip) {
  LoginResponse m;
  m.ok = true;
  m.agent_id = 42;
  m.region_name = "Dance";
  m.spawn_x = 1.5f;
  m.spawn_y = 2.5f;
  m.spawn_z = 22.0f;
  const auto r = round_trip(m);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.agent_id, 42u);
  EXPECT_EQ(r.region_name, "Dance");
  EXPECT_EQ(r.spawn_x, 1.5f);
}

TEST(Messages, LoginResponseErrorRoundTrip) {
  LoginResponse m;
  m.ok = false;
  m.error = "region full";
  const auto r = round_trip(m);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "region full");
}

TEST(Messages, AgentUpdateRoundTrip) {
  AgentUpdate m;
  m.agent_id = 9;
  m.target_x = 100.0f;
  m.target_y = 200.0f;
  m.target_z = 22.0f;
  m.speed = 3.2f;
  m.flags = kAgentFlagSit;
  const auto r = round_trip(m);
  EXPECT_EQ(r.agent_id, 9u);
  EXPECT_EQ(r.speed, 3.2f);
  EXPECT_EQ(r.flags, kAgentFlagSit);
}

TEST(Messages, CoarseLocationUpdateRoundTrip) {
  CoarseLocationUpdate m;
  for (std::uint32_t i = 0; i < 100; ++i) {
    m.entries.push_back({i, static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i * 2),
                         static_cast<std::uint8_t>(5)});
  }
  const auto r = round_trip(m);
  ASSERT_EQ(r.entries.size(), 100u);
  EXPECT_EQ(r.entries[50].agent_id, 50u);
  EXPECT_EQ(r.entries[50].x, 50);
  EXPECT_EQ(r.entries[50].y, 100);
}

TEST(Messages, ChatRoundTrips) {
  ChatFromViewer v;
  v.agent_id = 3;
  v.message = "hi :)";
  v.channel = 0;
  EXPECT_EQ(round_trip(v).message, "hi :)");

  ChatFromSimulator s;
  s.from_agent = 4;
  s.from_name = "agent-4";
  s.message = "hello";
  const auto r = round_trip(s);
  EXPECT_EQ(r.from_agent, 4u);
  EXPECT_EQ(r.from_name, "agent-4");
}

TEST(Messages, AllTypesHaveDistinctTags) {
  EXPECT_EQ(message_type(Message{LoginRequest{}}), MessageType::kLoginRequest);
  EXPECT_EQ(message_type(Message{LoginResponse{}}), MessageType::kLoginResponse);
  EXPECT_EQ(message_type(Message{UseCircuitCode{}}), MessageType::kUseCircuitCode);
  EXPECT_EQ(message_type(Message{RegionHandshake{}}), MessageType::kRegionHandshake);
  EXPECT_EQ(message_type(Message{CompleteAgentMovement{}}),
            MessageType::kCompleteAgentMovement);
  EXPECT_EQ(message_type(Message{AgentUpdate{}}), MessageType::kAgentUpdate);
  EXPECT_EQ(message_type(Message{CoarseLocationUpdate{}}),
            MessageType::kCoarseLocationUpdate);
  EXPECT_EQ(message_type(Message{ChatFromViewer{}}), MessageType::kChatFromViewer);
  EXPECT_EQ(message_type(Message{ChatFromSimulator{}}), MessageType::kChatFromSimulator);
  EXPECT_EQ(message_type(Message{LogoutRequest{}}), MessageType::kLogoutRequest);
  EXPECT_EQ(message_type(Message{KickUser{}}), MessageType::kKickUser);
}

TEST(Messages, DecodeUnknownTypeThrows) {
  std::vector<std::uint8_t> bytes{0xff};
  EXPECT_THROW((void)decode_message(bytes), DecodeError);
}

TEST(Messages, DecodeTruncatedThrows) {
  auto bytes = encode_message(Message{LoginResponse{}});
  bytes.resize(3);
  EXPECT_THROW((void)decode_message(bytes), DecodeError);
}

TEST(Coarse, QuantizationFloorsToMetres) {
  const CoarseEntry e = quantize_coarse(1, 12.7, 200.9, 22.0, false);
  EXPECT_EQ(e.x, 12);
  EXPECT_EQ(e.y, 200);
  EXPECT_EQ(e.z4, 5);  // 22 / 4 = 5.5 -> 5
  const CoarsePosition p = dequantize_coarse(e);
  EXPECT_DOUBLE_EQ(p.x, 12.0);
  EXPECT_DOUBLE_EQ(p.y, 200.0);
  EXPECT_DOUBLE_EQ(p.z, 20.0);
}

TEST(Coarse, SittingReportsOrigin) {
  const CoarseEntry e = quantize_coarse(1, 100.0, 100.0, 22.0, true);
  EXPECT_EQ(e.x, 0);
  EXPECT_EQ(e.y, 0);
  EXPECT_EQ(e.z4, 0);
}

TEST(Coarse, ClampsOutOfRange) {
  const CoarseEntry e = quantize_coarse(1, -5.0, 300.0, 2000.0, false);
  EXPECT_EQ(e.x, 0);
  EXPECT_EQ(e.y, 255);
  EXPECT_EQ(e.z4, 255);
}

TEST(Coarse, QuantizationErrorBounded) {
  for (double x = 0.0; x < 256.0; x += 0.37) {
    const CoarseEntry e = quantize_coarse(1, x, x, 22.0, false);
    const CoarsePosition p = dequantize_coarse(e);
    EXPECT_LE(std::abs(p.x - x), 1.0);
  }
}

}  // namespace
}  // namespace slmob
