#include "lsl/value.hpp"

#include <gtest/gtest.h>

namespace slmob::lsl {
namespace {

TEST(LslValue, DefaultIsIntegerZero) {
  const Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 0);
  EXPECT_FALSE(v.truthy());
}

TEST(LslValue, NumericPromotion) {
  const Value i{std::int64_t{7}};
  EXPECT_DOUBLE_EQ(i.as_float(), 7.0);
  const Value f{2.9};
  EXPECT_EQ(f.as_int(), 2);  // truncation, as in LSL casts
}

TEST(LslValue, TypeErrorsThrow) {
  const Value s{std::string("x")};
  EXPECT_THROW((void)s.as_int(), std::runtime_error);
  EXPECT_THROW((void)s.as_vector(), std::runtime_error);
  const Value i{std::int64_t{1}};
  EXPECT_THROW((void)i.as_string(), std::runtime_error);
  EXPECT_THROW((void)i.as_list(), std::runtime_error);
}

TEST(LslValue, Truthiness) {
  EXPECT_FALSE(Value{std::int64_t{0}}.truthy());
  EXPECT_TRUE(Value{std::int64_t{-1}}.truthy());
  EXPECT_FALSE(Value{0.0}.truthy());
  EXPECT_TRUE(Value{0.001}.truthy());
  EXPECT_FALSE(Value{std::string{}}.truthy());
  EXPECT_TRUE(Value{std::string("a")}.truthy());
  EXPECT_FALSE(Value{Vec3{}}.truthy());
  EXPECT_TRUE((Value{Vec3{0.0, 1.0, 0.0}}.truthy()));
  EXPECT_FALSE(Value{List{}}.truthy());
  EXPECT_TRUE(Value{List{Value{}}}.truthy());
}

TEST(LslValue, ToStringConventions) {
  EXPECT_EQ(Value{std::int64_t{42}}.to_string(), "42");
  EXPECT_EQ(Value{1.5}.to_string(), "1.500000");  // 6 decimals, like LSL
  EXPECT_EQ(Value{std::string("hi")}.to_string(), "hi");
  EXPECT_EQ((Value{Vec3{1.0, 2.0, 3.0}}.to_string()), "<1.00000, 2.00000, 3.00000>");
  const List list{Value{std::int64_t{1}}, Value{std::string("x")}};
  EXPECT_EQ(Value{list}.to_string(), "1x");
}

TEST(LslValue, DefaultsPerType) {
  EXPECT_TRUE(Value::default_for(LslType::kInteger).is_int());
  EXPECT_TRUE(Value::default_for(LslType::kFloat).is_float());
  EXPECT_TRUE(Value::default_for(LslType::kString).is_string());
  EXPECT_TRUE(Value::default_for(LslType::kKey).is_string());
  EXPECT_TRUE(Value::default_for(LslType::kVector).is_vector());
  EXPECT_TRUE(Value::default_for(LslType::kList).is_list());
}

}  // namespace
}  // namespace slmob::lsl
