#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace slmob {
namespace {

TEST(ThreadPool, ConcurrencyCountsCaller) {
  const ThreadPool solo(1);
  EXPECT_EQ(solo.concurrency(), 1u);
  const ThreadPool four(4);
  EXPECT_EQ(four.concurrency(), 4u);
}

TEST(ThreadPool, DefaultConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
}

TEST(ThreadPool, DefaultConcurrencyClampsEnvToCoreCount) {
  // SLMOB_THREADS above the detected core count must not oversubscribe the
  // default pool (2 threads on 1 core benchmarked slower than 1).
  const char* saved = std::getenv("SLMOB_THREADS");
  const std::string restore = saved != nullptr ? saved : "";
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::size_t hw = hw_raw > 0 ? static_cast<std::size_t>(hw_raw) : 1;

  ASSERT_EQ(setenv("SLMOB_THREADS", "4096", 1), 0);
  EXPECT_EQ(ThreadPool::default_concurrency(), hw);
  ASSERT_EQ(setenv("SLMOB_THREADS", "1", 1), 0);
  EXPECT_EQ(ThreadPool::default_concurrency(), 1u);

  if (saved != nullptr) {
    setenv("SLMOB_THREADS", restore.c_str(), 1);
  } else {
    unsetenv("SLMOB_THREADS");
  }
}

TEST(ThreadPool, ExplicitConcurrencyIsNeverClamped) {
  // Tests and benches rely on real 2/4-thread pools even on 1-core hosts.
  const ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map<std::size_t>(pool, 1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ParallelForVisitsEachIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(500);
  parallel_for(pool, visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  parallel_for(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  const auto out = parallel_map<int>(pool, 0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(ThreadPool, SingleThreadPoolRunsSequentially) {
  ThreadPool pool(1);
  // With no workers, indices must be processed in order on the caller.
  std::vector<std::size_t> order;
  parallel_for(pool, 10, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, ExceptionCancelsRemainingWork) {
  ThreadPool pool(1);  // sequential => deterministic visit order
  std::size_t visited = 0;
  try {
    parallel_for(pool, 1000, [&](std::size_t i) {
      ++visited;
      if (i == 3) throw std::runtime_error("stop");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(visited, 4u);  // indices 0..3 ran, the rest were cancelled
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Every outer task itself fans work on the same (small) pool — with all
  // workers busy on outer tasks, inner work must still complete via caller
  // participation.
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  parallel_for(pool, 8, [&](std::size_t) {
    parallel_for(pool, 50, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 8u * 50u);
}

TEST(ThreadPool, ParallelMapResultsIdenticalForAnyConcurrency) {
  const auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    return parallel_map<double>(pool, 257, [](std::size_t i) {
      return static_cast<double>(i) * 1.5 + 1.0;
    });
  };
  const auto one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

TEST(ThreadPool, SubmitRunsTask) {
  std::atomic<bool> ran{false};
  {
    ThreadPool pool(2);
    pool.submit([&] { ran = true; });
  }  // destructor drains the queue
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, SubmitInlineWithoutWorkers) {
  ThreadPool pool(1);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, ManyItemsFewThreads) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  parallel_for(pool, 10000, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2L);
}

}  // namespace
}  // namespace slmob
