#include "net/circuit.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

namespace slmob {
namespace {

// Wires two circuit endpoints through a SimNetwork and pumps ticks.
struct CircuitPair {
  explicit CircuitPair(NetworkParams params = {}, std::uint64_t seed = 1,
                       CircuitParams circuit = {})
      : net(params, seed) {
    a_addr = net.register_node(nullptr);
    b_addr = net.register_node(nullptr);
    a = std::make_unique<CircuitEndpoint>(net, a_addr, b_addr, circuit);
    b = std::make_unique<CircuitEndpoint>(net, b_addr, a_addr, circuit);
    net.set_handler(a_addr, [this](NodeId, std::span<const std::uint8_t> bytes) {
      a->on_datagram(bytes);
    });
    net.set_handler(b_addr, [this](NodeId, std::span<const std::uint8_t> bytes) {
      b->on_datagram(bytes);
    });
    a->set_deliver([this](Message m) { at_a.push_back(std::move(m)); });
    b->set_deliver([this](Message m) { at_b.push_back(std::move(m)); });
  }

  void pump(Seconds from, Seconds to, Seconds dt = 1.0) {
    for (Seconds t = from; t < to; t += dt) {
      a->tick(t);
      b->tick(t);
      net.tick(t, dt);
    }
  }

  SimNetwork net;
  NodeId a_addr{};
  NodeId b_addr{};
  std::unique_ptr<CircuitEndpoint> a;
  std::unique_ptr<CircuitEndpoint> b;
  std::vector<Message> at_a;
  std::vector<Message> at_b;
};

ChatFromViewer chat(const std::string& text) {
  ChatFromViewer m;
  m.agent_id = 1;
  m.message = text;
  return m;
}

TEST(Circuit, UnreliableDelivery) {
  CircuitPair pair;
  pair.a->send(Message{chat("hello")}, /*reliable=*/false);
  pair.pump(0.0, 2.0);
  ASSERT_EQ(pair.at_b.size(), 1u);
  EXPECT_EQ(std::get<ChatFromViewer>(pair.at_b[0]).message, "hello");
}

TEST(Circuit, ReliableDeliveredOnLossyLink) {
  NetworkParams params;
  params.loss_rate = 0.25;
  CircuitPair pair(params, 3);
  for (int i = 0; i < 50; ++i) {
    pair.a->send(Message{chat("msg-" + std::to_string(i))}, /*reliable=*/true);
  }
  pair.pump(0.0, 120.0);
  EXPECT_EQ(pair.at_b.size(), 50u);  // all delivered despite 25% loss
  EXPECT_GT(pair.a->stats().retransmits, 0u);
  EXPECT_FALSE(pair.a->failed());
}

TEST(Circuit, DuplicatesSuppressed) {
  NetworkParams params;
  params.loss_rate = 0.25;
  CircuitPair pair(params, 7);
  for (int i = 0; i < 30; ++i) {
    pair.a->send(Message{chat(std::to_string(i))}, /*reliable=*/true);
  }
  pair.pump(0.0, 120.0);
  // Retransmissions happen, but each message is delivered exactly once.
  // Retransmitted packets may arrive out of order, so compare as sets.
  ASSERT_EQ(pair.at_b.size(), 30u);
  std::set<std::string> got;
  for (const auto& m : pair.at_b) got.insert(std::get<ChatFromViewer>(m).message);
  ASSERT_EQ(got.size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_TRUE(got.contains(std::to_string(i)));
}

TEST(Circuit, UnreliableLostOnLossyLinkStaysLost) {
  NetworkParams params;
  params.loss_rate = 1.0;  // everything dropped
  CircuitPair pair(params, 5);
  pair.a->send(Message{chat("gone")}, /*reliable=*/false);
  pair.pump(0.0, 5.0);
  EXPECT_TRUE(pair.at_b.empty());
  EXPECT_FALSE(pair.a->failed());  // unreliable sends don't kill the circuit
}

TEST(Circuit, ReliableFailsAfterMaxRetries) {
  NetworkParams params;
  params.loss_rate = 1.0;
  // Small timeouts so the capped backoff (1, 2, 2, 2 s) exhausts the retry
  // budget within a few seconds of virtual time.
  CircuitParams circuit;
  circuit.initial_rto = 1.0;
  circuit.min_rto = 0.5;
  circuit.max_rto = 2.0;
  circuit.max_retries = 3;
  CircuitPair pair(params, 5, circuit);
  bool failure_reported = false;
  pair.a->set_on_failure([&] { failure_reported = true; });
  pair.a->send(Message{chat("x")}, /*reliable=*/true);
  pair.pump(0.0, 30.0);
  EXPECT_TRUE(pair.a->failed());
  EXPECT_TRUE(failure_reported);
  EXPECT_GT(pair.a->stats().reliable_failures, 0u);
}

TEST(Circuit, AdaptiveRtoConvergesBelowInitialOnFastLink) {
  NetworkParams params;
  params.latency_min = 0.02;
  params.latency_max = 0.05;
  CircuitPair pair(params, 11);
  EXPECT_DOUBLE_EQ(pair.a->current_rto(), CircuitParams{}.initial_rto);
  EXPECT_LT(pair.a->srtt(), 0.0);  // no sample yet
  for (int i = 0; i < 20; ++i) {
    pair.a->send(Message{chat(std::to_string(i))}, /*reliable=*/true);
    pair.pump(i * 0.5, (i + 1) * 0.5, 0.1);
  }
  EXPECT_GE(pair.a->stats().rtt_samples, 10u);
  EXPECT_GT(pair.a->srtt(), 0.0);
  // A fast clean link must pull the RTO well below the 3 s cold-start
  // value, but never below the floor.
  EXPECT_LT(pair.a->current_rto(), CircuitParams{}.initial_rto);
  EXPECT_GE(pair.a->current_rto(), CircuitParams{}.min_rto);
  EXPECT_EQ(pair.a->stats().retransmits, 0u);
}

TEST(Circuit, RtoBacksOffExponentiallyWhileLinkIsDead) {
  NetworkParams params;
  params.loss_rate = 1.0;
  CircuitParams circuit;
  circuit.initial_rto = 1.0;
  circuit.max_rto = 8.0;
  circuit.max_retries = 10;
  CircuitPair pair(params, 5, circuit);
  pair.a->send(Message{chat("x")}, /*reliable=*/true);
  // Retries land at t = 1, 3, 7, 15, 23, 31, 39 (doubling to the 8 s cap):
  // 7 retransmits by t = 40 instead of 40 with a fixed 1 s timer.
  pair.pump(0.0, 40.0);
  EXPECT_FALSE(pair.a->failed());
  EXPECT_EQ(pair.a->stats().retransmits, 7u);
  EXPECT_EQ(pair.a->stats().rto_backoffs, 3u);  // 1→2→4→8, then capped
}

TEST(Circuit, AdaptiveRtoIsDeterministic) {
  const auto run = [] {
    NetworkParams params;
    params.loss_rate = 0.3;
    CircuitPair pair(params, 21);
    for (int i = 0; i < 40; ++i) {
      pair.a->send(Message{chat(std::to_string(i))}, /*reliable=*/true);
      pair.pump(i * 1.0, (i + 1) * 1.0, 0.25);
    }
    return std::tuple{pair.a->stats().retransmits, pair.a->stats().rtt_samples,
                      pair.a->stats().rto_backoffs, pair.a->srtt(),
                      pair.a->current_rto(), pair.at_b.size()};
  };
  EXPECT_EQ(run(), run());
}

TEST(Circuit, AcksAreExchanged) {
  CircuitPair pair;
  pair.a->send(Message{chat("x")}, /*reliable=*/true);
  pair.pump(0.0, 5.0);
  EXPECT_GT(pair.b->stats().acks_sent, 0u);
  EXPECT_GT(pair.a->stats().acks_received, 0u);
  EXPECT_EQ(pair.a->stats().retransmits, 0u);  // acked before RTO on clean link
}

TEST(Circuit, MalformedDatagramIgnored) {
  CircuitPair pair;
  const std::vector<std::uint8_t> garbage{0x99, 0x01, 0x02};
  pair.b->on_datagram(garbage);
  EXPECT_TRUE(pair.at_b.empty());
  EXPECT_FALSE(pair.b->failed());
}

TEST(Circuit, BidirectionalTraffic) {
  CircuitPair pair;
  pair.a->send(Message{chat("ping")}, true);
  pair.b->send(Message{chat("pong")}, true);
  pair.pump(0.0, 5.0);
  ASSERT_EQ(pair.at_b.size(), 1u);
  ASSERT_EQ(pair.at_a.size(), 1u);
  EXPECT_EQ(std::get<ChatFromViewer>(pair.at_a[0]).message, "pong");
}

TEST(Circuit, OrderingPreservedOnCleanLink) {
  // Latency range is narrower than the send spacing, so order holds.
  NetworkParams params;
  params.latency_min = 0.01;
  params.latency_max = 0.02;
  CircuitPair pair(params, 9);
  for (int i = 0; i < 10; ++i) {
    pair.a->send(Message{chat(std::to_string(i))}, false);
    pair.pump(i * 1.0, (i + 1) * 1.0);
  }
  ASSERT_EQ(pair.at_b.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(std::get<ChatFromViewer>(pair.at_b[static_cast<std::size_t>(i)]).message,
              std::to_string(i));
  }
}

}  // namespace
}  // namespace slmob
