#include "trace/query.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

Trace sample_trace() {
  Trace t("q", 10.0);
  for (int i = 0; i < 6; ++i) {
    Snapshot s;
    s.time = i * 10.0;
    s.fixes.push_back({AvatarId{1}, {10.0, 10.0, 22.0}});                 // stays NW
    s.fixes.push_back({AvatarId{2}, {200.0, 200.0, 22.0}});               // stays SE
    if (i >= 3) s.fixes.push_back({AvatarId{3}, {10.0 + i, 10.0, 22.0}});  // joins late NW
    t.add(std::move(s));
  }
  return t;
}

TEST(TraceQuery, NoFiltersIsIdentity) {
  const Trace t = sample_trace();
  const Trace out = TraceQuery{}.run(t);
  EXPECT_EQ(out.size(), t.size());
  EXPECT_EQ(out.summary().unique_users, t.summary().unique_users);
}

TEST(TraceQuery, TimeRangeHalfOpen) {
  const Trace out = TraceQuery{}.between(10.0, 30.0).run(sample_trace());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.snapshots().front().time, 10.0);
  EXPECT_DOUBLE_EQ(out.snapshots().back().time, 20.0);
}

TEST(TraceQuery, RegionBoxFiltersFixes) {
  RegionBox nw;
  nw.x0 = 0.0;
  nw.y0 = 0.0;
  nw.x1 = 128.0;
  nw.y1 = 128.0;
  const Trace out = TraceQuery{}.within(nw).run(sample_trace());
  for (const auto& snap : out.snapshots()) {
    for (const auto& fix : snap.fixes) {
      EXPECT_LT(fix.pos.x, 128.0);
      EXPECT_NE(fix.id.value, 2u);
    }
  }
  EXPECT_EQ(out.summary().unique_users, 2u);  // avatars 1 and 3
}

TEST(TraceQuery, AvatarFilter) {
  const Trace out = TraceQuery{}.avatars({AvatarId{2}}).run(sample_trace());
  EXPECT_EQ(out.summary().unique_users, 1u);
  for (const auto& snap : out.snapshots()) {
    for (const auto& fix : snap.fixes) EXPECT_EQ(fix.id.value, 2u);
  }
}

TEST(TraceQuery, StrideThins) {
  const Trace out = TraceQuery{}.stride(2).run(sample_trace());
  EXPECT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out.sampling_interval(), 20.0);
}

TEST(TraceQuery, DropEmpty) {
  RegionBox nowhere;
  nowhere.x0 = 250.0;
  nowhere.y0 = 250.0;
  nowhere.x1 = 251.0;
  nowhere.y1 = 251.0;
  EXPECT_EQ(TraceQuery{}.within(nowhere).run(sample_trace()).size(), 6u);
  EXPECT_EQ(TraceQuery{}.within(nowhere).drop_empty().run(sample_trace()).size(), 0u);
}

TEST(TraceQuery, Composition) {
  RegionBox nw;
  nw.x1 = 128.0;
  nw.y1 = 128.0;
  const Trace out =
      TraceQuery{}.between(30.0, 60.0).within(nw).avatars({AvatarId{3}}).run(sample_trace());
  EXPECT_EQ(out.summary().unique_users, 1u);
  EXPECT_EQ(out.size(), 3u);
}

TEST(TraceQuery, BadArgsThrow) {
  EXPECT_THROW(TraceQuery{}.between(10.0, 5.0), std::invalid_argument);
  EXPECT_THROW(TraceQuery{}.stride(0), std::invalid_argument);
  RegionBox bad;
  bad.x1 = -1.0;
  EXPECT_THROW(TraceQuery{}.within(bad), std::invalid_argument);
}

TEST(TraceQuery, VisitorsOf) {
  RegionBox se;
  se.x0 = 128.0;
  se.y0 = 128.0;
  const auto visitors = TraceQuery::visitors_of(sample_trace(), se);
  ASSERT_EQ(visitors.size(), 1u);
  EXPECT_TRUE(visitors.contains(AvatarId{2}));
}

TEST(TraceQuery, Presence) {
  const auto presence = TraceQuery::presence(sample_trace());
  EXPECT_DOUBLE_EQ(presence.at(AvatarId{1}), 1.0);
  EXPECT_DOUBLE_EQ(presence.at(AvatarId{3}), 0.5);
}

}  // namespace
}  // namespace slmob
