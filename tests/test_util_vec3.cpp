#include "util/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace slmob {
namespace {

TEST(Vec3, DefaultIsZero) {
  const Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, 5.0, 6.0};
  EXPECT_EQ(a + b, (Vec3{5.0, 7.0, 9.0}));
  EXPECT_EQ(b - a, (Vec3{3.0, 3.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(2.0 * a, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(b / 2.0, (Vec3{2.0, 2.5, 3.0}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1.0, 1.0, 1.0};
  v += Vec3{1.0, 2.0, 3.0};
  EXPECT_EQ(v, (Vec3{2.0, 3.0, 4.0}));
  v -= Vec3{2.0, 3.0, 4.0};
  EXPECT_EQ(v, Vec3{});
}

TEST(Vec3, NormAndDistance) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(Vec3{}.distance_to(v), 5.0);
}

TEST(Vec3, Distance2dIgnoresAltitude) {
  const Vec3 a{0.0, 0.0, 0.0};
  const Vec3 b{3.0, 4.0, 100.0};
  EXPECT_DOUBLE_EQ(a.distance2d_to(b), 5.0);
  EXPECT_GT(a.distance_to(b), 5.0);
}

TEST(Vec3, DirectionToIsUnit) {
  const Vec3 a{1.0, 1.0, 0.0};
  const Vec3 b{4.0, 5.0, 0.0};
  const Vec3 d = a.direction_to(b);
  EXPECT_NEAR(d.norm(), 1.0, 1e-12);
  EXPECT_NEAR(d.x, 0.6, 1e-12);
  EXPECT_NEAR(d.y, 0.8, 1e-12);
}

TEST(Vec3, DirectionToSelfIsZero) {
  const Vec3 a{1.0, 2.0, 3.0};
  EXPECT_EQ(a.direction_to(a), Vec3{});
}

}  // namespace
}  // namespace slmob
