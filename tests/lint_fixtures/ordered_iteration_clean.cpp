// Fixture: ordered containers iterate deterministically — no findings.
#include <map>
#include <vector>

int fixture_ordered_iteration_clean() {
  std::map<int, double> scores;
  std::vector<double> values;
  int n = 0;
  for (const auto& [id, score] : scores) n += id + static_cast<int>(score);
  for (const double v : values) n += static_cast<int>(v);
  return n;
}
