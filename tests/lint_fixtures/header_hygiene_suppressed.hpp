// slmob-lint: allow(header-hygiene/missing-include-guard) -- fixture exercising the suppression path
// Fixture header: findings silenced by justified suppressions.
#include <string>

// slmob-lint: allow(header-hygiene/using-namespace-header) -- fixture exercising the suppression path
using namespace std;

inline string fixture_header_hygiene_suppressed() { return "suppressed"; }
