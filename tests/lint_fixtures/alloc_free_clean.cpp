// Fixture: an annotated region with no allocation idioms is clean.
#include <cstddef>

struct FixtureClean {
  double acc = 0.0;

  // slmob:alloc-free -- pure arithmetic over caller-owned storage
  void hot(const double* xs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) acc += xs[i] * xs[i];
  }
};
