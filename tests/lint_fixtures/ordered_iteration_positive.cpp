// Fixture: range-for over unordered containers must fire in src/-scoped
// paths (the test feeds this file as src/fixture.cpp).
#include <string>
#include <unordered_map>
#include <unordered_set>

int fixture_ordered_iteration() {
  std::unordered_map<int, double> scores;
  std::unordered_set<std::string> names;
  int n = 0;
  for (const auto& [id, score] : scores) {  // ordered-iteration/unordered-range-for
    n += id;
    (void)score;
  }
  for (const auto& name : names) {  // ordered-iteration/unordered-range-for
    n += static_cast<int>(name.size());
  }
  return n;
}
