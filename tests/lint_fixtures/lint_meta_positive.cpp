// Fixture: the meta rules — a suppression without justification does NOT
// silence the underlying finding and is itself flagged; unknown rule names
// are flagged too.
#include <cstdlib>

int fixture_lint_meta() {
  // slmob-lint: allow(determinism/libc-rand)
  int a = std::rand();  // still fires: the allow above has no justification
  // slmob-lint: allow(no-such-rule) -- the rule name is bogus
  int b = 1;
  return a + b;
}
