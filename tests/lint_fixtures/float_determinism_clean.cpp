// Fixture: integer accumulation is order-insensitive — no findings.
#include <numeric>
#include <vector>

long fixture_float_determinism_clean(const std::vector<int>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0L);
}
