// Fixture: every determinism check must fire. This file is excluded from
// real scans (should_scan skips lint_fixtures/) and is fed to the engine by
// test_tools_lint.cpp under a src/-style virtual path.
#include <chrono>
#include <cstdlib>
#include <random>

int fixture_determinism() {
  std::random_device rd;              // determinism/random-device
  std::srand(42);                     // determinism/libc-rand
  int a = std::rand();                // determinism/libc-rand
  auto t = std::chrono::steady_clock::now();        // determinism/wall-clock
  auto w = std::chrono::system_clock::now();        // determinism/wall-clock
  auto u = std::time(nullptr);        // determinism/wall-clock
  (void)rd;
  (void)t;
  (void)w;
  (void)u;
  return a;
}
