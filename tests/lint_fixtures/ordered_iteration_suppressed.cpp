// Fixture: a sorted-after iteration carries a justified suppression.
#include <algorithm>
#include <unordered_map>
#include <vector>

int fixture_ordered_iteration_suppressed() {
  std::unordered_map<int, double> scores;
  std::vector<int> keys;
  // slmob-lint: allow(ordered-iteration) -- keys are sorted on the next line before any consumer
  for (const auto& [id, score] : scores) keys.push_back(id);
  std::sort(keys.begin(), keys.end());
  return static_cast<int>(keys.size());
}
