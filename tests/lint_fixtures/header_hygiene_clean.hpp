// Fixture header: guarded, namespaced — no findings.
#pragma once

#include <string>

namespace fixture {
inline std::string header_hygiene_clean() { return "clean header"; }
}  // namespace fixture
