// Fixture: a read-side close carries a justified suppression.
#include <cstdio>

long fixture_checked_durability_suppressed(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  std::fclose(f);
  return size;
}
