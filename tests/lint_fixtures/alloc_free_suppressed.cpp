// Fixture: amortized growth inside an alloc-free region is justified.
#include <vector>

struct FixtureAmortized {
  std::vector<double> buf;

  // slmob:alloc-free -- fixture hot path with retained capacity
  void hot(std::size_t m) {
    // slmob-lint: allow(alloc-free) -- buf keeps its capacity across calls; warm calls never allocate
    if (buf.size() < m) buf.resize(m);
  }
};
