// Fixture: seeded RNG and tick-driven time produce no determinism findings.
#include <cstdint>

struct Rng {
  std::uint64_t state;
  std::uint64_t next() { return state = state * 6364136223846793005ull + 1442695040888963407ull; }
};

std::uint64_t fixture_determinism_clean() {
  Rng rng{42};
  double sim_time = 0.0;
  sim_time += 10.0;  // tick-driven, not wall-clock
  return rng.next() + static_cast<std::uint64_t>(sim_time);
}
