// Fixture: order-sensitive float reductions must fire (src/-scoped).
#include <numeric>
#include <vector>

double fixture_float_determinism(const std::vector<double>& xs) {
  double mean = std::accumulate(xs.begin(), xs.end(), 0.0);  // float-determinism/accumulate
  double alt = std::reduce(xs.begin(), xs.end());            // float-determinism/unordered-reduce
  return mean + alt;
}
