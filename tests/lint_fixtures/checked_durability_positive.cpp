// Fixture: discarded durability-I/O results must fire.
#include <cstdio>

void fixture_checked_durability(const char* path, const char* data, std::size_t n) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) return;
  std::fwrite(data, 1, n, f);  // checked-durability/discarded-result
  std::fflush(f);              // checked-durability/discarded-result
  std::fclose(f);              // checked-durability/discarded-result
}
