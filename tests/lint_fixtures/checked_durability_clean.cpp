// Fixture: checked durability I/O produces no findings.
#include <cstdio>
#include <stdexcept>

void fixture_checked_durability_clean(const char* path, const char* data, std::size_t n) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) throw std::runtime_error("open failed");
  if (std::fwrite(data, 1, n, f) != n) throw std::runtime_error("short write");
  if (std::fflush(f) != 0 || std::fclose(f) != 0) throw std::runtime_error("close failed");
}
