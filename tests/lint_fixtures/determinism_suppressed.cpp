// Fixture: justified suppressions silence determinism findings.
#include <chrono>
#include <cstdlib>

int fixture_determinism_suppressed() {
  // slmob-lint: allow(determinism/libc-rand) -- fixture exercising the suppression path
  int a = std::rand();
  auto t = std::chrono::steady_clock::now();  // slmob-lint: allow(determinism) -- family-prefix suppression on the same line
  (void)t;
  return a;
}
