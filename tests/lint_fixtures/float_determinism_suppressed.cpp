// Fixture: a sorted-order sum carries a justified suppression.
#include <algorithm>
#include <numeric>
#include <vector>

double fixture_float_determinism_suppressed(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  // slmob-lint: allow(float-determinism/accumulate) -- summed in sorted (canonical) order
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}
