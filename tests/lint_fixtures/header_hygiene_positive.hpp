// Fixture header: no #pragma once / include guard, and a using-namespace.
// header-hygiene/missing-include-guard fires at line 1;
// header-hygiene/using-namespace-header fires below.
#include <string>

using namespace std;  // header-hygiene/using-namespace-header

inline string fixture_header_hygiene() { return "bad header"; }
