// Fixture: allocation idioms inside an annotated region must fire.
#include <functional>
#include <memory>
#include <vector>

struct FixtureKernel {
  std::vector<int> out;

  // slmob:alloc-free -- fixture hot path
  void hot(int n) {
    out.push_back(n);                       // alloc-free/allocation
    auto p = std::make_unique<int>(n);      // alloc-free/allocation
    std::function<int()> fn = [n] { return n; };  // alloc-free/allocation
    (void)p;
    (void)fn;
  }

  // No annotation: the same idioms are fine outside alloc-free regions.
  void cold(int n) { out.push_back(n); }
};
