#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

Snapshot snap(Seconds t, std::initializer_list<std::pair<std::uint32_t, Vec3>> fixes) {
  Snapshot s;
  s.time = t;
  for (const auto& [id, pos] : fixes) s.fixes.push_back({AvatarId{id}, pos});
  return s;
}

TEST(Trace, EmptySummary) {
  const Trace t("x", 10.0);
  const TraceSummary s = t.summary();
  EXPECT_EQ(s.unique_users, 0u);
  EXPECT_EQ(s.snapshot_count, 0u);
  EXPECT_EQ(s.avg_concurrent, 0.0);
}

TEST(Trace, RejectsOutOfOrderSnapshots) {
  Trace t("x", 10.0);
  t.add(snap(10.0, {}));
  EXPECT_THROW(t.add(snap(5.0, {})), std::invalid_argument);
  EXPECT_NO_THROW(t.add(snap(10.0, {})));  // equal times allowed
}

TEST(Trace, SummaryCountsUniqueAndConcurrent) {
  Trace t("x", 10.0);
  t.add(snap(0.0, {{1, {1, 1, 0}}, {2, {2, 2, 0}}}));
  t.add(snap(10.0, {{2, {3, 3, 0}}, {3, {4, 4, 0}}}));
  const TraceSummary s = t.summary();
  EXPECT_EQ(s.unique_users, 3u);
  EXPECT_DOUBLE_EQ(s.avg_concurrent, 2.0);
  EXPECT_EQ(s.max_concurrent, 2u);
  EXPECT_DOUBLE_EQ(s.duration, 10.0);
}

TEST(Trace, UniqueAvatarsSorted) {
  Trace t("x", 10.0);
  t.add(snap(0.0, {{5, {}}, {1, {}}}));
  t.add(snap(10.0, {{3, {}}}));
  const auto ids = t.unique_avatars();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0].value, 1u);
  EXPECT_EQ(ids[1].value, 3u);
  EXPECT_EQ(ids[2].value, 5u);
}

TEST(Trace, SnapshotFind) {
  const Snapshot s = snap(0.0, {{7, {1.0, 2.0, 3.0}}});
  const auto pos = s.find(AvatarId{7});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, (Vec3{1.0, 2.0, 3.0}));
  EXPECT_FALSE(s.find(AvatarId{8}).has_value());
}

TEST(Trace, SliceHalfOpen) {
  Trace t("x", 10.0);
  for (int i = 0; i < 5; ++i) t.add(snap(i * 10.0, {{1, {}}}));
  const Trace sliced = t.slice(10.0, 30.0);
  ASSERT_EQ(sliced.size(), 2u);
  EXPECT_DOUBLE_EQ(sliced.snapshots().front().time, 10.0);
  EXPECT_DOUBLE_EQ(sliced.snapshots().back().time, 20.0);
  EXPECT_EQ(sliced.land_name(), "x");
}

TEST(Trace, AddGapValidation) {
  Trace t("x", 10.0);
  EXPECT_THROW(t.add_gap(10.0, 10.0), std::invalid_argument);   // empty
  EXPECT_THROW(t.add_gap(20.0, 10.0), std::invalid_argument);   // reversed
  t.add_gap(10.0, 20.0);
  EXPECT_THROW(t.add_gap(15.0, 25.0), std::invalid_argument);   // overlaps
  EXPECT_THROW(t.add_gap(5.0, 8.0), std::invalid_argument);     // out of order
  EXPECT_NO_THROW(t.add_gap(20.0, 30.0));                       // abutting is fine
  EXPECT_EQ(t.gaps().size(), 2u);
}

TEST(Trace, CoverageQueriesAreHalfOpen) {
  Trace t("x", 10.0);
  t.add_gap(100.0, 200.0);
  EXPECT_TRUE(t.covered_at(99.9));
  EXPECT_FALSE(t.covered_at(100.0));
  EXPECT_FALSE(t.covered_at(199.9));
  EXPECT_TRUE(t.covered_at(200.0));

  EXPECT_FALSE(t.spans_gap(0.0, 100.0));   // ends exactly at gap start
  EXPECT_TRUE(t.spans_gap(0.0, 100.1));
  EXPECT_TRUE(t.spans_gap(150.0, 160.0));  // inside the gap
  EXPECT_FALSE(t.spans_gap(200.0, 300.0)); // starts exactly at gap end
  EXPECT_DOUBLE_EQ(t.gap_seconds(), 100.0);
}

TEST(Trace, SummaryReportsGaps) {
  Trace t("x", 10.0);
  t.add(snap(0.0, {{1, {}}}));
  t.add(snap(300.0, {{1, {}}}));
  t.add_gap(100.0, 200.0);
  t.add_gap(250.0, 280.0);
  const TraceSummary s = t.summary();
  EXPECT_EQ(s.gap_count, 2u);
  EXPECT_DOUBLE_EQ(s.gap_seconds, 130.0);
}

TEST(Trace, SliceClipsGaps) {
  Trace t("x", 10.0);
  for (int i = 0; i < 50; ++i) t.add(snap(i * 10.0, {{1, {}}}));
  t.add_gap(50.0, 150.0);
  t.add_gap(200.0, 300.0);
  t.add_gap(400.0, 450.0);
  const Trace sliced = t.slice(100.0, 250.0);
  ASSERT_EQ(sliced.gaps().size(), 2u);
  EXPECT_DOUBLE_EQ(sliced.gaps()[0].start, 100.0);  // clipped to slice start
  EXPECT_DOUBLE_EQ(sliced.gaps()[0].end, 150.0);
  EXPECT_DOUBLE_EQ(sliced.gaps()[1].start, 200.0);
  EXPECT_DOUBLE_EQ(sliced.gaps()[1].end, 250.0);    // clipped to slice end
}

TEST(Trace, StripSittingFixesRemovesOriginOnly) {
  Trace t("x", 10.0);
  t.add(snap(0.0, {{1, {0.0, 0.0, 0.0}}, {2, {5.0, 5.0, 22.0}}}));
  const std::size_t dropped = t.strip_sitting_fixes();
  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(t.snapshots().front().fixes.size(), 1u);
  EXPECT_EQ(t.snapshots().front().fixes.front().id.value, 2u);
}

}  // namespace
}  // namespace slmob
