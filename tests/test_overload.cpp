// Overload-protection layer: bounded queues, explicit shedding, graceful
// degradation. The contract under test is two-sided — under pressure every
// layer sheds deterministically and *counts* what it shed, and in a
// fault-free run every one of those counters is exactly zero (the protection
// layer is invisible until it is needed).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/metaverse_client.hpp"
#include "core/experiment.hpp"
#include "net/circuit.hpp"
#include "net/network.hpp"
#include "sensors/collector.hpp"
#include "sensors/deployment.hpp"
#include "sensors/sensor_object.hpp"
#include "server/sim_server.hpp"
#include "trace/journal.hpp"
#include "trace/serialize.hpp"
#include "trace/trace.hpp"
#include "analysis/zones.hpp"
#include "util/bytes.hpp"
#include "world/archetypes.hpp"

namespace slmob {
namespace {

// ---------------------------------------------------------------------------
// Network: bounded in-flight queue with priority classes.
// ---------------------------------------------------------------------------

TEST(OverloadNetwork, InFlightCapShedsByClassAndCountsIt) {
  NetworkParams params;
  params.latency_min = 5.0;  // nothing delivers during the burst tick
  params.latency_max = 6.0;
  params.max_in_flight = 4;
  SimNetwork net(params, 1);
  const NodeId a = net.register_node(nullptr);
  int delivered = 0;
  const NodeId b =
      net.register_node([&](NodeId, std::span<const std::uint8_t>) { ++delivered; });

  for (int i = 0; i < 10; ++i) net.send(a, b, {1}, PacketClass::kSnapshot);
  EXPECT_EQ(net.stats().shed_snapshot, 6u);  // 4 admitted, 6 shed
  for (int i = 0; i < 3; ++i) net.send(a, b, {2}, PacketClass::kSession);
  EXPECT_EQ(net.stats().shed_session, 3u);  // queue still full

  // Control-plane datagrams are admitted past the cap, always.
  net.send(a, b, {3}, PacketClass::kControl);
  for (Seconds t = 0.0; t < 8.0; t += 1.0) net.tick(t, 1.0);
  EXPECT_EQ(delivered, 5);  // 4 admitted snapshots + the control datagram
  EXPECT_EQ(net.stats().overload_shed(), 9u);
  EXPECT_GE(net.stats().in_flight_peak, 5u);  // cap + control overflow
}

TEST(OverloadNetwork, DefaultCapNeverShedsModestTraffic) {
  SimNetwork net({}, 1);
  const NodeId a = net.register_node(nullptr);
  int delivered = 0;
  const NodeId b =
      net.register_node([&](NodeId, std::span<const std::uint8_t>) { ++delivered; });
  for (int i = 0; i < 1000; ++i) net.send(a, b, {1}, PacketClass::kSnapshot);
  for (Seconds t = 0.0; t < 3.0; t += 1.0) net.tick(t, 1.0);
  EXPECT_EQ(delivered, 1000);
  EXPECT_EQ(net.stats().overload_shed(), 0u);
  EXPECT_GE(net.stats().in_flight_peak, 1000u);
}

// ---------------------------------------------------------------------------
// Circuit: bounded unacked window (deferral) and bounded deferred queue.
// ---------------------------------------------------------------------------

// Mirrors the CircuitPair harness of test_net_circuit.cpp.
struct CircuitPair {
  explicit CircuitPair(NetworkParams params = {}, std::uint64_t seed = 1,
                       CircuitParams circuit = {})
      : net(params, seed) {
    a_addr = net.register_node(nullptr);
    b_addr = net.register_node(nullptr);
    a = std::make_unique<CircuitEndpoint>(net, a_addr, b_addr, circuit);
    b = std::make_unique<CircuitEndpoint>(net, b_addr, a_addr, circuit);
    net.set_handler(a_addr, [this](NodeId, std::span<const std::uint8_t> bytes) {
      a->on_datagram(bytes);
    });
    net.set_handler(b_addr, [this](NodeId, std::span<const std::uint8_t> bytes) {
      b->on_datagram(bytes);
    });
    a->set_deliver([this](Message m) { at_a.push_back(std::move(m)); });
    b->set_deliver([this](Message m) { at_b.push_back(std::move(m)); });
  }

  void pump(Seconds from, Seconds to, Seconds dt = 1.0) {
    for (Seconds t = from; t < to; t += dt) {
      a->tick(t);
      b->tick(t);
      net.tick(t, dt);
    }
  }

  SimNetwork net;
  NodeId a_addr{};
  NodeId b_addr{};
  std::unique_ptr<CircuitEndpoint> a;
  std::unique_ptr<CircuitEndpoint> b;
  std::vector<Message> at_a;
  std::vector<Message> at_b;
};

ChatFromViewer chat(const std::string& text) {
  ChatFromViewer m;
  m.agent_id = 1;
  m.message = text;
  return m;
}

TEST(OverloadCircuit, UnackedWindowDefersButNeverLoses) {
  CircuitParams tight;
  tight.max_unacked = 2;
  CircuitPair pair({}, 1, tight);
  for (int i = 0; i < 30; ++i) {
    pair.a->send(Message{chat(std::to_string(i))}, /*reliable=*/true);
  }
  pair.pump(0.0, 120.0);
  EXPECT_EQ(pair.at_b.size(), 30u);  // backpressure delays, never drops
  EXPECT_GT(pair.a->stats().deferred_sends, 0u);
  EXPECT_EQ(pair.a->stats().reliable_failures, 0u);
  EXPECT_FALSE(pair.a->failed());
}

TEST(OverloadCircuit, DeferredQueueOverflowFailsTheCircuitLoudly) {
  CircuitParams tiny;
  tiny.max_unacked = 1;
  tiny.max_deferred = 4;
  CircuitPair pair({}, 1, tiny);
  bool failure_seen = false;
  pair.a->set_on_failure([&] { failure_seen = true; });
  // Synchronous burst with no pumping in between: 1 slot in flight, 4
  // deferred, the rest overflow the bounded deferred queue.
  for (int i = 0; i < 10; ++i) {
    pair.a->send(Message{chat("burst")}, /*reliable=*/true);
  }
  EXPECT_TRUE(pair.a->failed());
  EXPECT_TRUE(failure_seen);
  EXPECT_GE(pair.a->stats().reliable_failures, 1u);
}

// ---------------------------------------------------------------------------
// Server: admission headroom and per-tick message budget.
// ---------------------------------------------------------------------------

// Mirrors the Rig harness of test_server_client.cpp.
struct Rig {
  explicit Rig(LandArchetype archetype = LandArchetype::kDanceIsland,
               NetworkParams net_params = {}, SimServerParams server_params = {})
      : world(make_world(archetype, 1)), net(net_params, 2) {
    server = std::make_unique<SimServer>(net, *world, server_params);
  }

  MetaverseClient& add_client(const std::string& name) {
    clients.push_back(
        std::make_unique<MetaverseClient>(net, server->address(), name, "test"));
    return *clients.back();
  }

  void pump(Seconds from, Seconds to) {
    for (Seconds t = from; t < to; t += 1.0) {
      world->tick(t, 1.0);
      server->tick(t, 1.0);
      net.tick(t, 1.0);
      for (auto& c : clients) c->tick(t, 1.0);
    }
  }

  std::unique_ptr<World> world;
  SimNetwork net;
  std::unique_ptr<SimServer> server;
  std::vector<std::unique_ptr<MetaverseClient>> clients;
};

TEST(OverloadServer, AdmissionHeadroomRejectsLoginBeforeHardCapacity) {
  SimServerParams sp;
  sp.admission_headroom = 0.5;
  Rig rig(LandArchetype::kDanceIsland, {}, sp);
  // Half of the 100-avatar capacity: at the headroom line, not the hard cap.
  for (int i = 0; i < 50; ++i) {
    rig.world->debug_add_synthetic(0.0, {100.0, 100.0, 22.0}, 1e9);
  }
  auto& client = rig.add_client("late");
  client.login();
  rig.pump(0.0, 5.0);
  EXPECT_EQ(client.state(), ClientState::kLoginFailed);
  EXPECT_EQ(rig.server->stats().logins_rejected_overload, 1u);
  EXPECT_EQ(rig.server->stats().logins_rejected, 1u);
}

TEST(OverloadServer, DefaultHeadroomAdmitsUpToCapacity) {
  Rig rig;
  for (int i = 0; i < 99; ++i) {
    rig.world->debug_add_synthetic(0.0, {100.0, 100.0, 22.0}, 1e9);
  }
  auto& client = rig.add_client("almost-last");
  client.login();
  rig.pump(0.0, 5.0);
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(rig.server->stats().logins_rejected_overload, 0u);
}

TEST(OverloadServer, MessageBudgetShedsDataButKeepsSessionAlive) {
  SimServerParams sp;
  sp.max_messages_per_tick = 2;
  Rig rig(LandArchetype::kDanceIsland, {}, sp);
  auto& client = rig.add_client("chatty");
  client.login();
  rig.pump(0.0, 5.0);
  ASSERT_TRUE(client.connected());
  // A burst far past the budget, all landing inside one server tick.
  for (int i = 0; i < 20; ++i) client.say("spam " + std::to_string(i));
  rig.pump(5.0, 10.0);
  EXPECT_GT(rig.server->stats().messages_shed, 0u);
  // Shedding is data-plane only: the session survives the storm.
  EXPECT_TRUE(client.connected());
}

// ---------------------------------------------------------------------------
// Sensors: bounded HTTP bookkeeping and flush widening.
// ---------------------------------------------------------------------------

// Mirrors the SensorRig harness of test_sensors_object.cpp (empty land).
struct SensorRig {
  SensorRig()
      : world(empty_world()), net({}, 2), collector(net, "Isle Of View") {}

  static std::unique_ptr<World> empty_world() {
    Land land = make_land(LandArchetype::kIsleOfView);
    auto model = std::make_unique<PoiGravityModel>(land, PoiGravityParams{});
    PopulationParams pop;
    pop.target_unique_users = 1e-6;
    pop.revisit_probability = 0.0;
    return std::make_unique<World>(std::move(land), std::move(model), pop, 1);
  }

  SensorObject& make_sensor(Vec3 pos, std::string_view script,
                            SensorLimits limits = {}) {
    sensors.push_back(std::make_unique<SensorObject>(
        ObjectId{static_cast<std::uint32_t>(sensors.size() + 1)}, *world, net,
        collector.address(), pos, script, now, limits, 42));
    return *sensors.back();
  }

  void pump(Seconds duration) {
    const Seconds until = now + duration;
    for (; now < until; now += 1.0) {
      world->tick(now, 1.0);
      for (auto& s : sensors) s->tick(now, 1.0);
      net.tick(now, 1.0);
    }
  }

  std::unique_ptr<World> world;
  SimNetwork net;
  HttpCollector collector;
  std::vector<std::unique_ptr<SensorObject>> sensors;
  Seconds now{0.0};
};

// Fires a request every timer tick, unconditionally — unlike the default
// deployment script, whose gFlushing gate keeps at most one in flight.
constexpr std::string_view kFireAwayScript = R"(
default {
  state_entry() { llSetTimerEvent(1.0); }
  timer() { llHTTPRequest("http://c/r", [], "x"); }
}
)";

TEST(OverloadSensor, PendingTableCapDropsOldestAndCounts) {
  SensorRig rig;
  NetworkParams black_hole;
  black_hole.loss_rate = 1.0;  // no response ever comes back
  rig.net.set_params(black_hole);
  SensorLimits limits;
  limits.max_pending_http = 2;
  limits.http_timeout = 1e6;  // timeouts never clear the table for us
  limits.http_requests_per_minute = 1000;
  limits.max_flush_widen = 1;  // keep the timer at 1 s: isolate the cap
  auto& sensor = rig.make_sensor({128.0, 128.0, 22.0}, kFireAwayScript, limits);
  rig.pump(30.0);
  // Table fills to 2, then every further request evicts the stalest wait.
  EXPECT_GT(sensor.stats().http_pending_dropped, 10u);
  EXPECT_GT(sensor.stats().http_requests, 10u);  // kOldest still admits new ones
  EXPECT_FALSE(sensor.failed());
}

TEST(OverloadSensor, PendingTableKNewestRefusesTheNewRequest) {
  SensorRig rig;
  NetworkParams black_hole;
  black_hole.loss_rate = 1.0;
  rig.net.set_params(black_hole);
  SensorLimits limits;
  limits.max_pending_http = 2;
  limits.http_timeout = 1e6;
  limits.http_requests_per_minute = 1000;
  limits.max_flush_widen = 1;
  limits.http_drop_policy = DropPolicy::kNewest;
  auto& sensor = rig.make_sensor({128.0, 128.0, 22.0}, kFireAwayScript, limits);
  rig.pump(30.0);
  EXPECT_GT(sensor.stats().http_pending_dropped, 10u);
  // kNewest never sends past the cap: only the first 2 went on the wire.
  EXPECT_EQ(sensor.stats().http_requests, 2u);
  EXPECT_FALSE(sensor.failed());
}

TEST(OverloadSensor, ResponseQueueCapDropsAndCounts) {
  SensorRig rig;
  SensorLimits limits;
  limits.http_requests_per_minute = 0;  // every request queues a 499 reply
  limits.max_queued_responses = 2;
  // Eight requests in one timer fire flood the bounded response queue.
  auto& sensor = rig.make_sensor({128.0, 128.0, 22.0}, R"(
default {
  state_entry() { llSetTimerEvent(1.0); }
  timer() {
    integer i = 0;
    while (i < 8) {
      llHTTPRequest("http://c/r", [], "x");
      i = i + 1;
    }
  }
}
)",
                                 limits);
  rig.pump(10.0);
  EXPECT_GT(sensor.stats().http_responses_dropped, 0u);
  EXPECT_FALSE(sensor.failed());
}

TEST(OverloadSensor, ConsecutiveTimeoutsWidenTheFlushInterval) {
  SensorRig rig;
  NetworkParams black_hole;
  black_hole.loss_rate = 1.0;
  rig.net.set_params(black_hole);
  SensorLimits limits;
  limits.http_timeout = 3.0;
  auto& sensor = rig.make_sensor({128.0, 128.0, 22.0}, R"(
default {
  state_entry() { llSetTimerEvent(10.0); }
  timer() { llHTTPRequest("http://c/r", [], "x"); }
}
)",
                                 limits);
  rig.pump(120.0);
  EXPECT_GT(sensor.stats().http_timeouts, 0u);
  EXPECT_GT(sensor.stats().flushes_widened, 0u);
}

TEST(OverloadSensor, WideningDisabledWhenMaxFactorIsOne) {
  SensorRig rig;
  NetworkParams black_hole;
  black_hole.loss_rate = 1.0;
  rig.net.set_params(black_hole);
  SensorLimits limits;
  limits.http_timeout = 3.0;
  limits.max_flush_widen = 1;
  auto& sensor = rig.make_sensor({128.0, 128.0, 22.0}, R"(
default {
  state_entry() { llSetTimerEvent(10.0); }
  timer() { llHTTPRequest("http://c/r", [], "x"); }
}
)",
                                 limits);
  rig.pump(120.0);
  EXPECT_GT(sensor.stats().http_timeouts, 0u);
  EXPECT_EQ(sensor.stats().flushes_widened, 0u);
}

// ---------------------------------------------------------------------------
// Trace: SamplingDegradation windows and their serialization.
// ---------------------------------------------------------------------------

TEST(OverloadTrace, DegradationValidation) {
  Trace trace("L", 10.0);
  EXPECT_THROW(trace.add_degradation(10.0, 10.0, 2), std::invalid_argument);
  EXPECT_THROW(trace.add_degradation(20.0, 10.0, 2), std::invalid_argument);
  EXPECT_THROW(trace.add_degradation(10.0, 20.0, 1), std::invalid_argument);
  trace.add_degradation(10.0, 20.0, 2);
  EXPECT_THROW(trace.add_degradation(15.0, 25.0, 2), std::invalid_argument);
  EXPECT_THROW(trace.add_degradation(5.0, 8.0, 2), std::invalid_argument);
  trace.add_degradation(20.0, 30.0, 4);  // abutting is fine
  ASSERT_EQ(trace.degradations().size(), 2u);
}

TEST(OverloadTrace, FactorLookupAndDegradedSeconds) {
  Trace trace("L", 10.0);
  trace.add_degradation(100.0, 200.0, 2);
  trace.add_degradation(300.0, 340.0, 4);
  EXPECT_EQ(trace.degradation_factor_at(50.0), 1u);
  EXPECT_EQ(trace.degradation_factor_at(100.0), 2u);
  EXPECT_EQ(trace.degradation_factor_at(199.9), 2u);
  EXPECT_EQ(trace.degradation_factor_at(200.0), 1u);  // half-open
  EXPECT_EQ(trace.degradation_factor_at(320.0), 4u);
  EXPECT_DOUBLE_EQ(trace.degraded_seconds(), 140.0);
}

TEST(OverloadTrace, SerializeRoundTripsDegradations) {
  Trace trace("Isle of View", 10.0);
  for (int i = 0; i < 5; ++i) {
    Snapshot s;
    s.time = i * 10.0;
    s.fixes.push_back({AvatarId{7}, {10.0 + i, 20.0, 22.0}});
    trace.add(std::move(s));
  }
  trace.add_gap(50.0, 70.0);
  trace.add_degradation(75.0, 115.0, 2);
  trace.add_degradation(115.0, 155.0, 4);

  const auto bytes = encode_trace(trace);
  const Trace back = decode_trace(bytes);
  ASSERT_EQ(back.degradations().size(), 2u);
  EXPECT_EQ(back.degradations()[0], (SamplingDegradation{75.0, 115.0, 2}));
  EXPECT_EQ(back.degradations()[1], (SamplingDegradation{115.0, 155.0, 4}));
  // Idempotent re-encode: the windows survive bit-for-bit.
  EXPECT_EQ(crc32(encode_trace(back)), crc32(bytes));
}

// ---------------------------------------------------------------------------
// Journal: degrade frames round-trip; an open window is censored at salvage.
// ---------------------------------------------------------------------------

std::string temp_journal(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Snapshot snap_at(Seconds time) {
  Snapshot s;
  s.time = time;
  s.fixes.push_back({AvatarId{1}, {100.0, 100.0, 22.0}});
  return s;
}

TEST(OverloadJournal, DegradeWindowRoundTripsThroughSalvage) {
  const std::string path = temp_journal("overload_degrade.sltj");
  {
    TraceJournalWriter writer(path, 100.0);
    writer.begin("Isle of View", 10.0);
    writer.append_snapshot(snap_at(0.0));
    writer.append_snapshot(snap_at(10.0));
    writer.append_degrade_open(15.0, 2);
    writer.append_snapshot(snap_at(20.0));
    writer.append_degrade_close(15.0, 30.0, 2);
    writer.append_end(40.0);
  }
  const JournalSalvage s = salvage_journal(path);
  EXPECT_TRUE(s.clean_end);
  ASSERT_EQ(s.trace.degradations().size(), 1u);
  EXPECT_EQ(s.trace.degradations()[0], (SamplingDegradation{15.0, 30.0, 2}));
  EXPECT_EQ(s.trace.size(), 3u);
}

TEST(OverloadJournal, OpenDegradeWindowIsClosedAtCensoringBoundary) {
  const std::string path = temp_journal("overload_degrade_open.sltj");
  {
    TraceJournalWriter writer(path, 100.0);
    writer.begin("Isle of View", 10.0);
    writer.append_snapshot(snap_at(0.0));
    writer.append_snapshot(snap_at(10.0));
    writer.append_degrade_open(15.0, 2);
    // Killed here: no close, no end.
  }
  const JournalSalvage s = salvage_journal(path);
  EXPECT_FALSE(s.clean_end);
  // Coverage is only claimable to last snapshot + interval = 20; the open
  // degrade window is closed there and the rest of the planned run censored.
  ASSERT_EQ(s.trace.degradations().size(), 1u);
  EXPECT_EQ(s.trace.degradations()[0], (SamplingDegradation{15.0, 20.0, 2}));
  ASSERT_FALSE(s.trace.gaps().empty());
  EXPECT_EQ(s.trace.gaps().back(), (CoverageGap{20.0, 100.0}));
}

// ---------------------------------------------------------------------------
// Analysis: zone densities are rate-corrected by the degradation factor.
// ---------------------------------------------------------------------------

TEST(OverloadAnalysis, ZoneWeightingEqualsSnapshotReplication) {
  // Weighting a degraded snapshot by its factor must be exactly equivalent
  // to having captured it `factor` times: build one trace with a factor-4
  // window and a second trace where those snapshots are literally
  // quadrupled, and demand identical zone statistics.
  Trace degraded("L", 10.0);
  Trace replicated("L", 10.0);
  const auto cell0 = snap_at(0.0);
  for (const Seconds t : {0.0, 10.0}) {
    Snapshot s = snap_at(t);
    degraded.add(s);
    replicated.add(std::move(s));
  }
  (void)cell0;
  for (const Seconds t : {60.0, 100.0}) {
    Snapshot s;
    s.time = t;
    s.fixes.push_back({AvatarId{2}, {200.0, 60.0, 22.0}});
    s.fixes.push_back({AvatarId{3}, {210.0, 70.0, 22.0}});
    degraded.add(s);
    for (int k = 0; k < 4; ++k) replicated.add(s);
  }
  degraded.add_degradation(55.0, 140.0, 4);

  const ZoneAnalysis a = analyze_zones(degraded);
  const ZoneAnalysis b = analyze_zones(replicated);
  EXPECT_EQ(a.mean_per_cell, b.mean_per_cell);
  EXPECT_DOUBLE_EQ(a.empty_fraction, b.empty_fraction);
  EXPECT_EQ(a.max_occupancy, b.max_occupancy);
}

// ---------------------------------------------------------------------------
// End to end: the overload scenario engages the whole ladder; the same rig
// without faults keeps every protection counter at zero; and the protected
// run is still deterministic.
// ---------------------------------------------------------------------------

ExperimentConfig overload_config(const std::string& scenario) {
  ExperimentConfig cfg;
  cfg.archetype = LandArchetype::kIsleOfView;
  cfg.duration = 2.0 * 3600.0;
  cfg.seed = 42;
  cfg.ranges = {};
  cfg.fault_scenario = scenario;
  // A deliberately tight in-flight budget, so the scenario's latency spike
  // inflates the queue into its bound and the snapshot class gets shed.
  // Sized just above the fault-free rig's measured high-water mark (9), so
  // the cap binds only when the 25 s spike multiplies the in-flight depth.
  cfg.testbed.network.max_in_flight = 10;
  return cfg;
}

TEST(OverloadScenario, LadderEngagesAndRecordsDegradation) {
  const ExperimentResults r = run_experiment(overload_config("overload"));
  EXPECT_GT(r.network_stats.overload_shed(), 0u);
  EXPECT_GT(r.crawler_stats.degrade_escalations, 0u);
  EXPECT_GT(r.crawler_stats.degraded_snapshots, 0u);
  EXPECT_FALSE(r.trace.degradations().empty());
  EXPECT_GT(r.trace.degraded_seconds(), 0.0);
  // The run is still deterministic under the full ladder.
  const ExperimentResults again = run_experiment(overload_config("overload"));
  EXPECT_EQ(crc32(encode_trace(r.trace)), crc32(encode_trace(again.trace)));
}

TEST(OverloadScenario, FaultFreeRunKeepsEveryProtectionCounterAtZero) {
  const ExperimentResults r = run_experiment(overload_config("none"));
  EXPECT_EQ(r.network_stats.overload_shed(), 0u);
  EXPECT_EQ(r.crawler_stats.degrade_escalations, 0u);
  EXPECT_EQ(r.crawler_stats.degrade_recoveries, 0u);
  EXPECT_EQ(r.crawler_stats.degraded_snapshots, 0u);
  EXPECT_TRUE(r.trace.degradations().empty());
  EXPECT_EQ(r.server_stats.logins_rejected_overload, 0u);
  EXPECT_EQ(r.server_stats.messages_shed, 0u);
}

}  // namespace
}  // namespace slmob
