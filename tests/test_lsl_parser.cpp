#include "lsl/parser.hpp"

#include <gtest/gtest.h>

namespace slmob::lsl {
namespace {

TEST(LslParser, MinimalScript) {
  const Script s = parse("default { state_entry() { } }");
  ASSERT_EQ(s.states.size(), 1u);
  EXPECT_EQ(s.states[0].name, "default");
  ASSERT_EQ(s.states[0].handlers.size(), 1u);
  EXPECT_EQ(s.states[0].handlers[0].name, "state_entry");
}

TEST(LslParser, GlobalsWithInitializers) {
  const Script s = parse(R"(
    integer gCount = 0;
    string gName = "sensor";
    float gRate;
    vector gHome;
    default { state_entry() { } }
  )");
  ASSERT_EQ(s.globals.size(), 4u);
  EXPECT_EQ(s.globals[0].name, "gCount");
  EXPECT_NE(s.globals[0].init, nullptr);
  EXPECT_EQ(s.globals[2].init, nullptr);
  EXPECT_EQ(s.globals[3].type, LslType::kVector);
}

TEST(LslParser, UserFunctions) {
  const Script s = parse(R"(
    integer add(integer a, integer b) { return a + b; }
    flush() { }
    default { state_entry() { } }
  )");
  ASSERT_EQ(s.functions.size(), 2u);
  EXPECT_EQ(s.functions[0].return_type, LslType::kInteger);
  ASSERT_EQ(s.functions[0].params.size(), 2u);
  EXPECT_EQ(s.functions[1].return_type, LslType::kVoid);
}

TEST(LslParser, MultipleStatesAndTransitions) {
  const Script s = parse(R"(
    default { state_entry() { state running; } }
    state running { timer() { state default; } }
  )");
  ASSERT_EQ(s.states.size(), 2u);
  EXPECT_EQ(s.states[1].name, "running");
  ASSERT_EQ(s.states[0].handlers[0].body.size(), 1u);
  EXPECT_EQ(s.states[0].handlers[0].body[0]->kind, StmtKind::kStateChange);
  EXPECT_EQ(s.states[0].handlers[0].body[0]->name, "running");
}

TEST(LslParser, VectorLiteralAndMemberAccess) {
  const Script s = parse(R"(
    default { state_entry() {
      vector v = <1.0, 2.0, 3.0>;
      float x = v.x;
      v.y = 5.0;
    } }
  )");
  const auto& body = s.states[0].handlers[0].body;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0]->init->kind, ExprKind::kVectorLiteral);
  EXPECT_EQ(body[1]->init->kind, ExprKind::kMember);
  ASSERT_EQ(body[2]->kind, StmtKind::kExpr);
  EXPECT_EQ(body[2]->expr->kind, ExprKind::kAssign);
  EXPECT_TRUE(body[2]->expr->target_is_member);
}

TEST(LslParser, ControlFlow) {
  const Script s = parse(R"(
    default { timer() {
      integer i;
      for (i = 0; i < 10; i = i + 1) { }
      while (i > 0) { i = i - 1; }
      if (i == 0) { } else { }
    } }
  )");
  const auto& body = s.states[0].handlers[0].body;
  ASSERT_EQ(body.size(), 4u);
  EXPECT_EQ(body[1]->kind, StmtKind::kFor);
  EXPECT_EQ(body[2]->kind, StmtKind::kWhile);
  EXPECT_EQ(body[3]->kind, StmtKind::kIf);
  EXPECT_FALSE(body[3]->else_body.empty());
}

TEST(LslParser, CastExpression) {
  const Script s = parse(R"(
    default { state_entry() { string t = (string)42; } }
  )");
  const auto& init = s.states[0].handlers[0].body[0]->init;
  ASSERT_EQ(init->kind, ExprKind::kCast);
  EXPECT_EQ(init->cast_type, LslType::kString);
}

TEST(LslParser, RelationalVsVectorLiteralDisambiguation) {
  // 'a < b' must parse as comparison, '<1,2,3>' as vector literal.
  const Script s = parse(R"(
    default { state_entry() {
      integer a = 1;
      integer b = 2;
      if (a < b) { }
      vector v = <1, 2, 3>;
    } }
  )");
  const auto& body = s.states[0].handlers[0].body;
  EXPECT_EQ(body[2]->expr->op, "<");
  EXPECT_EQ(body[3]->init->kind, ExprKind::kVectorLiteral);
}

TEST(LslParser, ListLiteral) {
  const Script s = parse("default { state_entry() { list l = [1, \"a\", 2.0]; } }");
  const auto& init = s.states[0].handlers[0].body[0]->init;
  ASSERT_EQ(init->kind, ExprKind::kListLiteral);
  EXPECT_EQ(init->children.size(), 3u);
}

TEST(LslParser, SyntaxErrorsThrow) {
  EXPECT_THROW((void)parse("default { state_entry() { }"), LslError);   // missing }
  EXPECT_THROW((void)parse("integer x = ;\ndefault { }"), LslError);    // bad init
  EXPECT_THROW((void)parse("default { state_entry() { 1 = 2; } }"), LslError);
  EXPECT_THROW((void)parse(""), LslError);  // no states
  EXPECT_THROW((void)parse("default { timer() { jump foo; } }"), LslError);
}

TEST(LslParser, EventParameters) {
  const Script s = parse(R"(
    default {
      sensor(integer n) { }
      http_response(key k, integer status, list meta, string body) { }
    }
  )");
  ASSERT_EQ(s.states[0].handlers.size(), 2u);
  EXPECT_EQ(s.states[0].handlers[0].params.size(), 1u);
  EXPECT_EQ(s.states[0].handlers[1].params.size(), 4u);
  EXPECT_EQ(s.states[0].handlers[1].params[0].first, LslType::kKey);
}

TEST(LslParser, IncrementDecrement) {
  const Script s = parse("default { timer() { integer i; i++; --i; } }");
  const auto& body = s.states[0].handlers[0].body;
  EXPECT_EQ(body[1]->expr->kind, ExprKind::kIncrement);
  EXPECT_FALSE(body[1]->expr->is_prefix);
  EXPECT_TRUE(body[2]->expr->is_prefix);
}

TEST(LslParser, DefaultSensorScriptParses) {
  // The stock sensor script must always parse.
  EXPECT_NO_THROW((void)parse(R"(
string gCache = "";
flush() { llHTTPRequest("http://c/r", [], gCache); gCache = ""; }
default {
  state_entry() { llSensorRepeat("", "", AGENT, 96.0, PI, 10.0); }
  sensor(integer n) {
    integer i;
    for (i = 0; i < n; i = i + 1) {
      vector p = llDetectedPos(i);
      gCache += (string)p.x;
    }
  }
  no_sensor() { }
}
)"));
}

}  // namespace
}  // namespace slmob::lsl
