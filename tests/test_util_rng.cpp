#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace slmob {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) total += rng.uniform();
  EXPECT_NEAR(total / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo = saw_lo || v == 2;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  constexpr int kN = 100000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.15);
}

TEST(Rng, ForkIsIndependentStream) {
  Rng a(21);
  Rng fork = a.fork();
  // The fork must not replay the parent stream.
  std::vector<std::uint64_t> from_a;
  std::vector<std::uint64_t> from_fork;
  for (int i = 0; i < 32; ++i) {
    from_a.push_back(a.next());
    from_fork.push_back(fork.next());
  }
  EXPECT_NE(from_a, from_fork);
}

}  // namespace
}  // namespace slmob
