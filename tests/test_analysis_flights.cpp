#include "analysis/flights.hpp"

#include <gtest/gtest.h>

#include "stats/samplers.hpp"
#include "util/rng.hpp"

namespace slmob {
namespace {

// One avatar sampled every 10 s along the given x positions.
Trace path_trace(std::initializer_list<double> xs) {
  Trace t("f", 10.0);
  Seconds time = 0.0;
  for (const double x : xs) {
    Snapshot s;
    s.time = time;
    time += 10.0;
    s.fixes.push_back({AvatarId{1}, {x, 0.0, 22.0}});
    t.add(std::move(s));
  }
  return t;
}

TEST(Flights, StationaryUserIsOneLongPause) {
  const Trace t = path_trace({50.0, 50.0, 50.0, 50.0});
  const FlightAnalysis a = analyze_flights(t);
  EXPECT_EQ(a.flight_lengths.size(), 0u);
  ASSERT_EQ(a.pause_times.size(), 1u);
  EXPECT_DOUBLE_EQ(a.pause_times.median(), 30.0);
}

TEST(Flights, SingleFlightBetweenPauses) {
  // Pause (2 intervals), move 60 m over 2 intervals, pause again.
  const Trace t = path_trace({0.0, 0.0, 0.0, 30.0, 60.0, 60.0, 60.0});
  const FlightAnalysis a = analyze_flights(t);
  ASSERT_EQ(a.flight_lengths.size(), 1u);
  EXPECT_DOUBLE_EQ(a.flight_lengths.median(), 60.0);
  ASSERT_EQ(a.pause_times.size(), 2u);
}

TEST(Flights, TwoFlightsSplitByPause) {
  const Trace t = path_trace({0.0, 20.0, 20.0, 20.0, 50.0, 50.0, 50.0});
  const FlightAnalysis a = analyze_flights(t);
  ASSERT_EQ(a.flight_lengths.size(), 2u);
  EXPECT_DOUBLE_EQ(a.flight_lengths.min(), 20.0);
  EXPECT_DOUBLE_EQ(a.flight_lengths.max(), 30.0);
}

TEST(Flights, SubThresholdJitterIsPause) {
  // 1 m per 10 s = 0.1 m/s < threshold 0.15: still pausing.
  const Trace t = path_trace({0.0, 1.0, 0.0, 1.0, 0.0});
  const FlightAnalysis a = analyze_flights(t);
  EXPECT_EQ(a.flight_lengths.size(), 0u);
  EXPECT_EQ(a.pause_times.size(), 1u);
}

TEST(Flights, MinFlightLengthFilters) {
  FlightAnalysisOptions options;
  options.min_flight_length = 50.0;
  const Trace t = path_trace({0.0, 30.0, 30.0, 30.0});
  const FlightAnalysis a = analyze_flights(t, options);
  EXPECT_EQ(a.flight_lengths.size(), 0u);  // 30 m flight filtered out
}

TEST(Flights, OpenFlightAtLogoutIsClosed) {
  const Trace t = path_trace({0.0, 0.0, 30.0, 60.0});
  const FlightAnalysis a = analyze_flights(t);
  ASSERT_EQ(a.flight_lengths.size(), 1u);
  EXPECT_DOUBLE_EQ(a.flight_lengths.median(), 60.0);
}

TEST(Flights, MultipleSessionsIndependent) {
  Trace t("f", 10.0);
  // Session 1: fixes at t=0..20 moving; 100 s gap; session 2 stationary.
  const double xs1[] = {0.0, 30.0, 60.0};
  for (int i = 0; i < 3; ++i) {
    Snapshot s;
    s.time = i * 10.0;
    s.fixes.push_back({AvatarId{1}, {xs1[i], 0.0, 22.0}});
    t.add(std::move(s));
  }
  for (int i = 0; i < 3; ++i) {
    Snapshot s;
    s.time = 200.0 + i * 10.0;
    s.fixes.push_back({AvatarId{1}, {0.0, 0.0, 22.0}});
    t.add(std::move(s));
  }
  const FlightAnalysis a = analyze_flights(t);
  EXPECT_EQ(a.sessions_analyzed, 2u);
  EXPECT_EQ(a.flight_lengths.size(), 1u);  // the gap is not a 200 m flight
}

TEST(Flights, PowerLawFitOnSyntheticLevyTrace) {
  // Build a trace whose flight lengths are Pareto(5, 1.6): the fitter
  // should recover the exponent from the trace alone.
  Rng rng(3);
  ParetoSampler flights(5.0, 1.6);
  Trace t("levy", 10.0);
  double x = 0.0;
  Seconds time = 0.0;
  for (int leg = 0; leg < 3000; ++leg) {
    // Pause 3 snapshots.
    for (int p = 0; p < 3; ++p) {
      Snapshot s;
      s.time = time;
      time += 10.0;
      s.fixes.push_back({AvatarId{1}, {x, 0.0, 22.0}});
      t.add(std::move(s));
    }
    // One-interval flight of Pareto length (teleport-like, but the
    // decomposition only uses displacement).
    x += flights.sample(rng);
    Snapshot s;
    s.time = time;
    time += 10.0;
    s.fixes.push_back({AvatarId{1}, {x, 0.0, 22.0}});
    t.add(std::move(s));
  }
  FlightAnalysisOptions options;
  options.min_flight_length = 5.0;
  options.sessions.absence_threshold = 1e12;  // one long session
  const FlightAnalysis a = analyze_flights(t, options);
  ASSERT_GT(a.flight_lengths.size(), 2000u);
  EXPECT_NEAR(a.flight_fit.alpha, 1.6, 0.15);
}

}  // namespace
}  // namespace slmob
