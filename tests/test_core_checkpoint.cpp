#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "trace/serialize.hpp"

namespace slmob {
namespace {

ExperimentConfig short_config(std::uint64_t seed, const std::string& faults = "none") {
  ExperimentConfig cfg;
  cfg.archetype = LandArchetype::kIsleOfView;
  cfg.duration = 900.0;
  cfg.seed = seed;
  cfg.fault_scenario = faults;
  cfg.ranges = {};
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

CheckpointState sample_state() {
  CheckpointState state;
  state.archetype = LandArchetype::kDanceIsland;
  state.duration = 86400.0;
  state.seed = 1234;
  state.fault_scenario = "chaos";
  state.fault_seed = 99;
  state.out_path = "runs/dance.slt";
  state.checkpoint_every = 600.0;
  state.time = 7200.0;
  state.engine_tick = 7200;
  state.journal_offset = 123456;
  state.world_rng = {1, 2, 3, 4};
  state.network_rng = {5, 6, 7, 8};
  state.crawler_backoff_level = 2;
  state.crawler_snapshots = 700;
  state.crawler_relogins = 3;
  state.crawler_coverage_gaps = 2;
  state.world_logins = 4000;
  state.network_sent = 250000;
  return state;
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  const CheckpointState state = sample_state();
  EXPECT_EQ(decode_checkpoint(encode_checkpoint(state)), state);
}

TEST(Checkpoint, DecodeRejectsTampering) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(sample_state());
  EXPECT_THROW(decode_checkpoint({}), DecodeError);

  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(decode_checkpoint(bad_magic), DecodeError);

  // Any payload bit-flip fails the CRC — a checkpoint is trusted wholesale
  // (it gates a resumed measurement) so corruption must never half-decode.
  std::vector<std::uint8_t> flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x10;
  EXPECT_THROW(decode_checkpoint(flipped), DecodeError);

  std::vector<std::uint8_t> truncated = bytes;
  truncated.resize(bytes.size() - 3);
  EXPECT_THROW(decode_checkpoint(truncated), DecodeError);
}

TEST(Checkpoint, ByteFlipSweepNeverHalfDecodes) {
  // Like test_trace_journal's torn-tail sweep, but for the checkpoint file:
  // flip every single byte in turn and require a clean DecodeError (or, for
  // a lucky flip inside a string length that still CRC-fails, any decode
  // exception) — never UB, never a silently different state.
  const CheckpointState state = sample_state();
  const std::vector<std::uint8_t> bytes = encode_checkpoint(state);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> flipped = bytes;
      flipped[i] ^= mask;
      EXPECT_THROW(decode_checkpoint(flipped), DecodeError)
          << "byte " << i << " mask " << int(mask);
    }
  }
}

TEST(Checkpoint, TruncationSweepNeverHalfDecodes) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(sample_state());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(decode_checkpoint(truncated), DecodeError) << "length " << len;
  }
}

TEST(Checkpoint, RotatingSaveKeepsTwoGenerations) {
  const std::string dir = fresh_dir("checkpoint_rotate");
  std::filesystem::create_directories(dir);
  CheckpointState older = sample_state();
  older.time = 600.0;
  CheckpointState newer = sample_state();
  newer.time = 1200.0;

  save_checkpoint_rotating(older, dir);
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + kCheckpointPrevFileName));
  save_checkpoint_rotating(newer, dir);

  const CheckpointLoadResult loaded = try_load_checkpoint(dir);
  ASSERT_TRUE(loaded.state.has_value());
  EXPECT_FALSE(loaded.used_fallback);
  EXPECT_TRUE(loaded.diagnostic.empty());
  EXPECT_EQ(*loaded.state, newer);
}

TEST(Checkpoint, CorruptNewestGenerationFallsBackToPrevious) {
  const std::string dir = fresh_dir("checkpoint_fallback");
  std::filesystem::create_directories(dir);
  CheckpointState older = sample_state();
  older.time = 600.0;
  CheckpointState newer = sample_state();
  newer.time = 1200.0;
  save_checkpoint_rotating(older, dir);
  save_checkpoint_rotating(newer, dir);

  // Bit-flip the newest generation on disk.
  const std::string main_path = dir + "/" + kCheckpointFileName;
  std::vector<std::uint8_t> bytes = encode_checkpoint(newer);
  bytes[bytes.size() - 1] ^= 0x40;
  {
    std::FILE* f = std::fopen(main_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    ASSERT_EQ(std::fclose(f), 0);
  }

  const CheckpointLoadResult loaded = try_load_checkpoint(dir);
  ASSERT_TRUE(loaded.state.has_value());
  EXPECT_TRUE(loaded.used_fallback);
  // The rejection is loud and names the corrupt file and the CRC failure.
  EXPECT_NE(loaded.diagnostic.find(kCheckpointFileName), std::string::npos);
  EXPECT_NE(loaded.diagnostic.find("CRC"), std::string::npos);
  EXPECT_EQ(*loaded.state, older);
}

TEST(Checkpoint, AllGenerationsCorruptReportsBothAndYieldsNothing) {
  const std::string dir = fresh_dir("checkpoint_both_corrupt");
  std::filesystem::create_directories(dir);
  for (const char* name : {kCheckpointFileName, kCheckpointPrevFileName}) {
    std::FILE* f = std::fopen((dir + "/" + name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage", f);
    ASSERT_EQ(std::fclose(f), 0);
  }
  const CheckpointLoadResult loaded = try_load_checkpoint(dir);
  EXPECT_FALSE(loaded.state.has_value());
  EXPECT_NE(loaded.diagnostic.find(kCheckpointFileName), std::string::npos);
  EXPECT_NE(loaded.diagnostic.find(kCheckpointPrevFileName), std::string::npos);
}

TEST(Checkpoint, TryLoadOnFreshDirectoryIsSilentlyEmpty) {
  const std::string dir = fresh_dir("checkpoint_fresh");
  std::filesystem::create_directories(dir);
  const CheckpointLoadResult loaded = try_load_checkpoint(dir);
  EXPECT_FALSE(loaded.state.has_value());
  EXPECT_FALSE(loaded.used_fallback);
  EXPECT_TRUE(loaded.diagnostic.empty());  // nothing there is not an error
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string dir = fresh_dir("checkpoint_saveload");
  std::filesystem::create_directories(dir);
  const CheckpointState state = sample_state();
  save_checkpoint(state, dir);
  EXPECT_EQ(load_checkpoint(dir), state);
  EXPECT_THROW(load_checkpoint(fresh_dir("checkpoint_missing")), std::runtime_error);
}

TEST(Checkpoint, DurableRunMatchesPlainExperiment) {
  // Journal + checkpoint instrumentation must not perturb the measurement:
  // the captured trace is bit-identical to run_experiment's raw trace.
  const ExperimentConfig cfg = short_config(11);
  DurableRunOptions options;
  options.config = cfg;
  options.dir = fresh_dir("durable_vs_plain");
  options.checkpoint_every = 120.0;
  const DurableRunResult durable = run_durable(options);
  EXPECT_FALSE(durable.killed);
  EXPECT_GT(durable.checkpoints_written, 0u);

  ExperimentConfig plain = cfg;
  plain.ranges = {};
  Testbed bed(make_testbed_config(plain));
  bed.run_until(plain.duration);
  const Trace expected = bed.crawler()->take_trace();
  EXPECT_EQ(encode_trace(durable.trace), encode_trace(expected));
}

TEST(Checkpoint, KillAndResumeReproducesUnkilledTrace) {
  const ExperimentConfig cfg = short_config(21, "blackouts");

  DurableRunOptions uninterrupted;
  uninterrupted.config = cfg;
  uninterrupted.dir = fresh_dir("resume_baseline");
  uninterrupted.checkpoint_every = 120.0;
  const DurableRunResult baseline = run_durable(uninterrupted);
  ASSERT_FALSE(baseline.killed);

  DurableRunOptions killed = uninterrupted;
  killed.dir = fresh_dir("resume_killed");
  killed.kill_at = 437.0;  // mid-segment, mid-blackout-free stretch
  const DurableRunResult dead = run_durable(killed);
  EXPECT_TRUE(dead.killed);
  EXPECT_TRUE(dead.trace.empty());

  const DurableRunResult resumed = resume_durable(killed.dir);
  EXPECT_FALSE(resumed.killed);
  EXPECT_EQ(encode_trace(resumed.trace), encode_trace(baseline.trace));
  EXPECT_EQ(resumed.crawler_stats.snapshots_taken, baseline.crawler_stats.snapshots_taken);
  EXPECT_EQ(resumed.world_stats.total_logins, baseline.world_stats.total_logins);
  EXPECT_EQ(resumed.network_stats.sent, baseline.network_stats.sent);

  // The journal on disk also tells the whole story after the resume.
  const JournalSalvage s = salvage_journal(resumed.journal_path);
  EXPECT_TRUE(s.clean_end);
  EXPECT_EQ(encode_trace(s.trace), encode_trace(baseline.trace));
}

TEST(Checkpoint, ResumeIsDeterministicAcrossAttempts) {
  const ExperimentConfig cfg = short_config(31);
  DurableRunOptions options;
  options.config = cfg;
  options.dir = fresh_dir("resume_twice_a");
  options.checkpoint_every = 180.0;
  options.kill_at = 500.0;
  ASSERT_TRUE(run_durable(options).killed);

  // Two resumes of the same on-disk state (resume mutates the journal, so
  // clone the directory first) must produce byte-identical traces.
  const std::string copy = fresh_dir("resume_twice_b");
  std::filesystem::copy(options.dir, copy);
  const DurableRunResult first = resume_durable(options.dir);
  const DurableRunResult second = resume_durable(copy);
  EXPECT_EQ(encode_trace(first.trace), encode_trace(second.trace));
}

TEST(Checkpoint, ResumeSurvivesRepeatedKills) {
  // A run killed over and over — resumed each time from the latest
  // checkpoint — still converges to the uninterrupted trace.
  const ExperimentConfig cfg = short_config(41);
  DurableRunOptions options;
  options.config = cfg;
  options.dir = fresh_dir("resume_repeated");
  options.checkpoint_every = 120.0;
  options.kill_at = 250.0;
  ASSERT_TRUE(run_durable(options).killed);
  ASSERT_TRUE(resume_durable(options.dir, 619.0).killed);
  const DurableRunResult final_run = resume_durable(options.dir);
  ASSERT_FALSE(final_run.killed);

  DurableRunOptions uninterrupted;
  uninterrupted.config = cfg;
  uninterrupted.dir = fresh_dir("resume_repeated_baseline");
  uninterrupted.checkpoint_every = 120.0;
  const DurableRunResult baseline = run_durable(uninterrupted);
  EXPECT_EQ(encode_trace(final_run.trace), encode_trace(baseline.trace));
}

TEST(Checkpoint, ResumeRejectsWitnessMismatch) {
  const ExperimentConfig cfg = short_config(51);
  DurableRunOptions options;
  options.config = cfg;
  options.dir = fresh_dir("resume_mismatch");
  options.checkpoint_every = 120.0;
  options.kill_at = 300.0;
  ASSERT_TRUE(run_durable(options).killed);

  // Re-seed the identity but keep the witness: the replay diverges and the
  // resume must refuse rather than splice two different worlds together.
  CheckpointState ck = load_checkpoint(options.dir);
  ck.seed += 1;
  save_checkpoint(ck, options.dir);
  EXPECT_THROW(resume_durable(options.dir), std::runtime_error);
}

TEST(Checkpoint, KillBeforeFirstCheckpointLeavesSalvageableJournal) {
  const ExperimentConfig cfg = short_config(61);
  DurableRunOptions options;
  options.config = cfg;
  options.dir = fresh_dir("killed_early");
  options.checkpoint_every = 600.0;
  options.kill_at = 90.0;
  const DurableRunResult dead = run_durable(options);
  EXPECT_TRUE(dead.killed);
  EXPECT_EQ(dead.checkpoints_written, 0u);

  // No checkpoint yet -> not resumable, but the journal already holds every
  // sampled snapshot and salvage censors the unrun remainder.
  const JournalSalvage s = salvage_journal(dead.journal_path);
  EXPECT_FALSE(s.clean_end);
  EXPECT_GT(s.snapshots, 0u);
  ASSERT_FALSE(s.trace.gaps().empty());
  EXPECT_DOUBLE_EQ(s.trace.gaps().back().end, cfg.duration);
}

}  // namespace
}  // namespace slmob
