#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <array>
#include <random>
#include <string_view>

namespace slmob {
namespace {

// Bytewise reference implementation (the pre-slice-by-8 production code),
// kept here so the fast path is checked against it on arbitrary buffers.
std::uint32_t crc32_bytewise(std::span<const std::uint8_t> bytes) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_of(std::string_view s) {
  return crc32({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

TEST(Bytes, Crc32KnownVectors) {
  // The standard CRC-32/ISO-HDLC check values.
  EXPECT_EQ(crc32_of(""), 0x00000000u);
  EXPECT_EQ(crc32_of("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32_of("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32_of("abc"), 0x352441C2u);
  EXPECT_EQ(crc32_of("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
  const std::array<std::uint8_t, 4> zeros{0, 0, 0, 0};
  EXPECT_EQ(crc32(zeros), 0x2144DF1Cu);
}

TEST(Bytes, Crc32MatchesBytewiseOnRandomBuffers) {
  std::mt19937 rng(2026);
  std::uniform_int_distribution<int> byte(0, 255);
  // Lengths straddle the 8-byte slicing boundary and every tail residue.
  for (const std::size_t len :
       {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{8}, std::size_t{9},
        std::size_t{15}, std::size_t{16}, std::size_t{17}, std::size_t{63},
        std::size_t{255}, std::size_t{1024}, std::size_t{65537}}) {
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(byte(rng));
    EXPECT_EQ(crc32(buf), crc32_bytewise(buf)) << "len=" << len;
  }
}

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f32(1.5f);
  w.f64(-2.25);
  w.str("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f32(), 1.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.bytes()[0], 0x02);
  EXPECT_EQ(w.bytes()[1], 0x01);
}

TEST(Bytes, EmptyString) {
  ByteWriter w;
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.u32(), DecodeError);
}

TEST(Bytes, TruncatedStringThrows) {
  // Length prefix says 10 bytes but only 2 follow.
  std::vector<std::uint8_t> data{10, 0, 'a', 'b'};
  ByteReader r(data);
  EXPECT_THROW((void)r.str(), DecodeError);
}

TEST(Bytes, RawRoundTrip) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  ByteWriter w;
  w.raw(payload);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.raw(5), payload);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, RemainingCountsDown) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Bytes, OversizeStringThrows) {
  ByteWriter w;
  const std::string big(70000, 'x');
  EXPECT_THROW(w.str(big), std::length_error);
}

}  // namespace
}  // namespace slmob
