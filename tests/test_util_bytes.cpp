#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace slmob {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f32(1.5f);
  w.f64(-2.25);
  w.str("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f32(), 1.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.bytes()[0], 0x02);
  EXPECT_EQ(w.bytes()[1], 0x01);
}

TEST(Bytes, EmptyString) {
  ByteWriter w;
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.u32(), DecodeError);
}

TEST(Bytes, TruncatedStringThrows) {
  // Length prefix says 10 bytes but only 2 follow.
  std::vector<std::uint8_t> data{10, 0, 'a', 'b'};
  ByteReader r(data);
  EXPECT_THROW((void)r.str(), DecodeError);
}

TEST(Bytes, RawRoundTrip) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  ByteWriter w;
  w.raw(payload);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.raw(5), payload);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, RemainingCountsDown) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Bytes, OversizeStringThrows) {
  ByteWriter w;
  const std::string big(70000, 'x');
  EXPECT_THROW(w.str(big), std::length_error);
}

}  // namespace
}  // namespace slmob
