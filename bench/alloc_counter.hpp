// Process-wide heap allocation counter, for the zero-allocation gates on the
// warm packet path. The counting operator new/delete overrides live in
// alloc_counter.cpp, which is compiled ONLY into the bench executables that
// list it as a source — the library targets are never built with the
// override, so production binaries keep the system allocator untouched.
#pragma once

#include <cstddef>

namespace slmob::bench {

// Number of operator-new calls (scalar + array + aligned) since process
// start, all threads combined.
std::size_t allocation_count();

}  // namespace slmob::bench
