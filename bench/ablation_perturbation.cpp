// Ablation: the crawler-perturbation effect (§2 of the paper).
//
// "our initial experiments showed a steady convergence of user movements
// towards our crawler" — we reproduce that: a naive (idle, silent) crawler
// becomes an attractor; mimicry (random movement + canned chat) suppresses
// the effect. Measured as the inflation of zone occupancy around the
// crawler and the bias of the contact-time distribution.
#include <cstdio>

#include "bench_common.hpp"

using namespace slmob;
using namespace slmob::bench;

namespace {

ExperimentResults run_variant(LandArchetype archetype, const BenchOptions& options,
                              bool mimicry, bool curiosity_enabled) {
  ExperimentConfig cfg;
  cfg.archetype = archetype;
  cfg.duration = options.hours * kSecondsPerHour;
  cfg.seed = options.seed;
  cfg.testbed.crawler.mimicry.enabled = mimicry;
  CuriosityParams curiosity;
  curiosity.enabled = curiosity_enabled;
  cfg.testbed.curiosity = curiosity;
  return run_experiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::parse(argc, argv);
  if (options.hours > 6.0) options.hours = 6.0;  // 3 variants per land
  print_title("Ablation: crawler mimicry vs the curiosity perturbation",
              "La & Michiardi 2008, section 2 (perturbation of measurements)");

  std::printf("%-14s %-22s %10s %12s %12s %10s\n", "land", "variant", "max-zone",
              "CT med r10", "deg med r10", "approaches");
  for (const LandArchetype archetype :
       {LandArchetype::kApfelLand, LandArchetype::kDanceIsland}) {
    struct Variant {
      const char* name;
      bool mimicry;
      bool curiosity;
    };
    const Variant variants[] = {
        {"baseline(no curiosity)", true, false},
        {"naive crawler", false, true},
        {"mimicking crawler", true, true},
    };
    for (const auto& v : variants) {
      const ExperimentResults res = run_variant(archetype, options, v.mimicry, v.curiosity);
      const auto& ct = res.contacts.at(kBluetoothRange).contact_times;
      const auto& deg = res.graphs.at(kBluetoothRange).degrees;
      std::printf("%-14s %-22s %10zu %12.0f %12.0f %10llu\n",
                  res.trace.land_name().c_str(), v.name, res.zones.max_occupancy,
                  ct.empty() ? 0.0 : ct.median(), deg.empty() ? 0.0 : deg.median(),
                  static_cast<unsigned long long>(res.world_stats.curiosity_approaches));
    }
  }
  std::printf("\nExpected: the naive crawler draws users to itself (curiosity\n"
              "approaches > 0, inflated hot-spot occupancy); mimicry restores the\n"
              "baseline. This is why the crawler moves and chats (paper, section 2).\n");
  return 0;
}
