// durability_loss: scores the crash-safety of journaled measurement.
//
// For each fault scenario and each kill point (25/50/75 % of the run) the
// bench SIGKILLs a checkpointed run at that virtual time, then measures:
//  * frames_lost       — journal frames unrecoverable after the kill ALSO
//                        tears the final frame mid-byte (the acceptance bar
//                        is at most one: the frame in flight);
//  * recall_after_salvage — fraction of the full run's snapshots the torn
//                        journal still yields via salvage;
//  * prefix_exact      — every salvaged snapshot is bit-identical to the
//                        corresponding snapshot of the never-killed run
//                        (salvage recovers data, never invents it);
//  * resume_identical  — resuming two copies of the killed directory gives
//                        byte-identical traces (deterministic resume);
//  * resume_matches_baseline — the resumed trace equals the never-killed
//                        run's trace bit-for-bit.
//
// Results go to BENCH_durability.json; the bench exits non-zero when any
// determinism or loss bound is violated.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "trace/serialize.hpp"

namespace {

using namespace slmob;

struct CellScore {
  std::string scenario;
  double kill_fraction{0.0};
  std::size_t snapshots_full{0};
  std::size_t snapshots_at_kill{0};
  std::size_t snapshots_after_tear{0};
  std::size_t frames_lost{0};
  double recall_after_salvage{0.0};
  double salvage_gap_seconds{0.0};
  bool prefix_exact{false};
  bool resume_identical{false};
  bool resume_matches_baseline{false};
};

ExperimentConfig make_config(const std::string& scenario, double hours,
                             std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.archetype = LandArchetype::kIsleOfView;
  cfg.duration = hours * kSecondsPerHour;
  cfg.seed = seed;
  cfg.fault_scenario = scenario;
  cfg.ranges = {};
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "slmob_durability" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  std::fclose(f);
  return bytes;
}

bool snapshots_equal(const Snapshot& a, const Snapshot& b) {
  if (a.time != b.time || a.fixes.size() != b.fixes.size()) return false;
  for (std::size_t i = 0; i < a.fixes.size(); ++i) {
    if (a.fixes[i].id.value != b.fixes[i].id.value ||
        a.fixes[i].pos.x != b.fixes[i].pos.x || a.fixes[i].pos.y != b.fixes[i].pos.y ||
        a.fixes[i].pos.z != b.fixes[i].pos.z) {
      return false;
    }
  }
  return true;
}

CellScore score_cell(const std::string& scenario, double kill_fraction, double hours,
                     std::uint64_t seed, const DurableRunResult& baseline) {
  const ExperimentConfig cfg = make_config(scenario, hours, seed);
  const std::string tag =
      scenario + "_" + std::to_string(static_cast<int>(kill_fraction * 100.0));

  CellScore score;
  score.scenario = scenario;
  score.kill_fraction = kill_fraction;
  score.snapshots_full = baseline.trace.size();

  DurableRunOptions options;
  options.config = cfg;
  options.dir = fresh_dir("killed_" + tag);
  options.checkpoint_every = 300.0;
  options.kill_at = kill_fraction * cfg.duration;
  const DurableRunResult dead = run_durable(options);
  if (!dead.killed) {
    std::fprintf(stderr, "FAIL: %s did not register the kill\n", tag.c_str());
    std::exit(1);
  }

  // Salvage of the cleanly-flushed journal: everything sampled up to the
  // kill instant survives.
  const JournalSalvage clean = salvage_journal(dead.journal_path);
  score.snapshots_at_kill = clean.snapshots;
  score.salvage_gap_seconds = clean.trace.gap_seconds();

  // Now tear the final frame mid-byte, as a SIGKILL during fwrite would,
  // and salvage the remains.
  std::vector<std::uint8_t> torn_bytes = read_file_bytes(dead.journal_path);
  torn_bytes.resize(torn_bytes.size() - 1);
  const JournalSalvage torn = salvage_journal_bytes(torn_bytes);
  score.snapshots_after_tear = torn.snapshots;
  score.frames_lost = clean.snapshots - torn.snapshots;
  score.recall_after_salvage =
      score.snapshots_full == 0
          ? 0.0
          : static_cast<double>(torn.snapshots) / static_cast<double>(score.snapshots_full);

  // Salvage must be a bit-exact prefix of the never-killed run.
  score.prefix_exact = torn.snapshots <= baseline.trace.size();
  for (std::size_t i = 0; score.prefix_exact && i < torn.trace.size(); ++i) {
    score.prefix_exact =
        snapshots_equal(torn.trace.snapshots()[i], baseline.trace.snapshots()[i]);
  }

  // Resume determinism: two resumes of the same on-disk state (cloned, since
  // resume truncates the journal in place) and comparison to the baseline.
  const std::string copy = fresh_dir("killed_" + tag + "_copy");
  std::filesystem::remove_all(copy);
  std::filesystem::copy(options.dir, copy);
  const DurableRunResult resumed_a = resume_durable(options.dir);
  const DurableRunResult resumed_b = resume_durable(copy);
  const auto bytes_a = encode_trace(resumed_a.trace);
  score.resume_identical = bytes_a == encode_trace(resumed_b.trace);
  score.resume_matches_baseline = bytes_a == encode_trace(baseline.trace);
  return score;
}

void write_json(const std::vector<CellScore>& scores, double hours, std::uint64_t seed,
                bool pass, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"land\": \"Isle Of View\",\n");
  std::fprintf(f, "  \"hours\": %.2f,\n", hours);
  std::fprintf(f, "  \"seed\": %llu,\n", static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"pass\": %s,\n", pass ? "true" : "false");
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const CellScore& s = scores[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"kill_fraction\": %.2f, "
                 "\"snapshots_full\": %zu, \"snapshots_at_kill\": %zu, "
                 "\"snapshots_after_tear\": %zu, \"frames_lost\": %zu, "
                 "\"recall_after_salvage\": %.6f, \"salvage_gap_seconds\": %.1f, "
                 "\"prefix_exact\": %s, \"resume_identical\": %s, "
                 "\"resume_matches_baseline\": %s}%s\n",
                 s.scenario.c_str(), s.kill_fraction, s.snapshots_full,
                 s.snapshots_at_kill, s.snapshots_after_tear, s.frames_lost,
                 s.recall_after_salvage, s.salvage_gap_seconds,
                 s.prefix_exact ? "true" : "false", s.resume_identical ? "true" : "false",
                 s.resume_matches_baseline ? "true" : "false",
                 i + 1 < scores.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  // CI gates parse this JSON; a silently truncated write must fail loudly.
  if (std::fflush(f) != 0 || std::fclose(f) != 0) {
    std::fprintf(stderr, "error writing %s\n", path);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  double hours = 2.0;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
      hours = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      hours = 0.5;
    }
  }

  std::printf("durability_loss: %.1f h Isle Of View, seed %llu\n", hours,
              static_cast<unsigned long long>(seed));

  const std::vector<std::string> scenarios = {"none", "blackouts", "chaos"};
  const std::vector<double> kill_fractions = {0.25, 0.5, 0.75};

  std::vector<CellScore> scores;
  bool pass = true;
  for (const std::string& scenario : scenarios) {
    std::fprintf(stderr, "[bench] %s baseline (uninterrupted)...\n", scenario.c_str());
    DurableRunOptions base_options;
    base_options.config = make_config(scenario, hours, seed);
    base_options.dir = fresh_dir("baseline_" + scenario);
    base_options.checkpoint_every = 300.0;
    const DurableRunResult baseline = run_durable(base_options);

    for (const double frac : kill_fractions) {
      std::fprintf(stderr, "[bench] %s kill at %.0f%%...\n", scenario.c_str(),
                   frac * 100.0);
      CellScore s = score_cell(scenario, frac, hours, seed, baseline);
      // Acceptance bounds: a torn tail costs at most the frame in flight,
      // and resume is deterministic and faithful.
      if (s.frames_lost > 1 || !s.prefix_exact || !s.resume_identical ||
          !s.resume_matches_baseline) {
        std::fprintf(stderr, "FAIL: %s @ %.0f%% violates durability bounds\n",
                     scenario.c_str(), frac * 100.0);
        pass = false;
      }
      scores.push_back(std::move(s));
    }
  }

  std::printf("%-12s %6s %10s %8s %8s %8s %8s %8s\n", "scenario", "kill%", "snapshots",
              "lost", "recall", "prefix", "det", "match");
  for (const CellScore& s : scores) {
    std::printf("%-12s %6.0f %6zu/%-6zu %5zu %8.4f %8s %8s %8s\n", s.scenario.c_str(),
                s.kill_fraction * 100.0, s.snapshots_after_tear, s.snapshots_full,
                s.frames_lost, s.recall_after_salvage, s.prefix_exact ? "ok" : "FAIL",
                s.resume_identical ? "ok" : "FAIL",
                s.resume_matches_baseline ? "ok" : "FAIL");
  }

  write_json(scores, hours, seed, pass, "BENCH_durability.json");
  std::printf("wrote BENCH_durability.json (%s)\n", pass ? "pass" : "FAIL");
  return pass ? 0 : 1;
}
