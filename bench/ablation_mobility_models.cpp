// Ablation: POI-gravity vs classical mobility models.
//
// The paper's central spatial findings — hot-spot concentration (Fig. 3)
// and short travel distances (Fig. 4a) with power-law contact dynamics
// (Fig. 1) — require POI attraction. Random Waypoint and Levy Walk, run
// through the identical measurement pipeline, fail to reproduce them.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/testbed.hpp"
#include "world/levy_walk.hpp"
#include "world/random_waypoint.hpp"

using namespace slmob;
using namespace slmob::bench;

namespace {

std::unique_ptr<World> make_variant_world(LandArchetype archetype, int model,
                                          std::uint64_t seed) {
  Land land = make_land(archetype);
  std::unique_ptr<MobilityModel> mobility;
  switch (model) {
    case 0:
      mobility = std::make_unique<PoiGravityModel>(land, make_mobility_params(archetype));
      break;
    case 1:
      mobility = std::make_unique<RandomWaypointModel>();
      break;
    default:
      mobility = std::make_unique<LevyWalkModel>();
      break;
  }
  return std::make_unique<World>(std::move(land), std::move(mobility),
                                 make_population(archetype), seed);
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::parse(argc, argv);
  if (options.hours > 6.0) options.hours = 6.0;  // 3 models x 1 land
  print_title("Ablation: POI-gravity vs RandomWaypoint vs LevyWalk",
              "design choice behind the reproduction (DESIGN.md section 6)");

  const LandArchetype archetype = LandArchetype::kDanceIsland;
  const char* names[] = {"poi-gravity", "random-waypoint", "levy-walk"};

  std::printf("%-16s %10s %10s %12s %12s %12s %12s\n", "model", "empty%", "max-zone",
              "CT med r10", "ICT med r10", "len p90", "clust med");
  for (int model = 0; model < 3; ++model) {
    // Ground-truth recording (no crawler) keeps the comparison about
    // mobility, not instrumentation.
    auto world = make_variant_world(archetype, model, options.seed);
    SimEngine engine(1.0);
    GroundTruthRecorder recorder(*world, 10.0);
    engine.add(kPriorityWorld, [&](Seconds now, Seconds dt) { world->tick(now, dt); });
    engine.add(kPriorityMonitor,
               [&](Seconds now, Seconds dt) { recorder.tick(now, dt); });
    engine.run_until(options.hours * kSecondsPerHour);

    const ExperimentResults res = analyze_trace(recorder.take_trace(),
                                                {kBluetoothRange}, world->land().size());
    const auto& c = res.contacts.at(kBluetoothRange);
    const auto& g = res.graphs.at(kBluetoothRange);
    std::printf("%-16s %9.1f%% %10zu %12.0f %12.0f %12.0f %12.2f\n", names[model],
                res.zones.empty_fraction * 100.0, res.zones.max_occupancy,
                c.contact_times.empty() ? 0.0 : c.contact_times.median(),
                c.inter_contact_times.empty() ? 0.0 : c.inter_contact_times.median(),
                res.trips.travel_lengths.empty() ? 0.0
                                                 : res.trips.travel_lengths.quantile(0.9),
                g.clustering.empty() ? 0.0 : g.clustering.median());
  }
  std::printf("\nExpected: only poi-gravity shows the paper's signature — dense\n"
              "hot-spots (high max-zone, ~96%% empty cells), long in-POI contacts,\n"
              "short travel; RWP/Levy spread users uniformly (low max-zone) and\n"
              "their travel lengths are far larger.\n");
  return 0;
}
