// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary accepts:
//   --hours N   trace length in virtual hours (default 24, the paper's)
//   --seed N    experiment seed (default 42)
//   --quick     shorthand for --hours 4
// and prints the series/rows of one table or figure of the paper, plus a
// paper-vs-measured comparison where the paper states numbers.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace slmob::bench {

struct BenchOptions {
  double hours{24.0};
  std::uint64_t seed{42};

  static BenchOptions parse(int argc, char** argv);
};

// Runs (and caches, per process) the standard experiment for one land.
// Thread-safe: may be called from pool workers.
const ExperimentResults& land_results(LandArchetype archetype, const BenchOptions& options);

// Runs the experiments for several lands concurrently (one pool slot per
// land, single-threaded analysis inside each) and fills the land_results
// cache, so multi-land benches pay max() instead of sum() of the land
// simulation times. Honours SLMOB_THREADS.
void prewarm_lands(const std::vector<LandArchetype>& archetypes,
                   const BenchOptions& options);

// Resource probes ------------------------------------------------------------

// Peak RSS (high-water mark) of this process in MiB; 0 when the platform
// probe is unavailable. Thin wrapper over util/sysinfo. Note the kernel
// counter is a process-lifetime maximum: comparing two pipelines' footprints
// requires one process per pipeline (fork, as streaming_throughput does).
double peak_rss_mib();

// JSON output ----------------------------------------------------------------

// printf-style append, for building JSON bodies.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...);

// Rewrites `path` — a JSON object of named sections — with `section` set to
// `body` (full object text, braces included), preserving every other
// section so independent benches can share one BENCH file. A pre-section
// flat file ({"bench": "NAME", ...}) is migrated to a single section named
// NAME. The file is created when absent.
void update_bench_json(const std::string& path, const std::string& section,
                       const std::string& body);

// Pretty-printers ------------------------------------------------------------
void print_title(const std::string& title, const std::string& paper_ref);

// Prints a CCDF as ~18 log-spaced (x, 1-F(x)) points, one line per point.
void print_ccdf_log(const std::string& label, const Ecdf& dist, double lo_floor = 1.0);
// Prints a CDF as ~18 linearly spaced points.
void print_cdf(const std::string& label, const Ecdf& dist);
// One row of a paper-vs-measured comparison.
void print_compare(const std::string& metric, double paper, double measured);
void print_compare(const std::string& metric, const std::string& paper, double measured);

}  // namespace slmob::bench
