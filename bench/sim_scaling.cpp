// Sharded-simulation scaling bench, written to BENCH_sim.json:
//
//  * hot_path — World::tick throughput (avatar-ticks/s, real-time factor) at
//    ~1k/10k/100k frozen avatars, against a bench-local replica of the seed
//    revision's std::map world (baseline_world.*). The replica and the SoA
//    world run the same RNG draw sequence; positional lockstep is asserted
//    before timings are trusted.
//  * sharded_experiment — wall-clock of the 3-land experiment through
//    run_sharded at 1/2/4 threads, with a determinism gate: every shard's
//    serialized trace must be bit-identical at every thread count. The
//    >= 2.5x speedup gate applies on machines with >= 4 hardware threads
//    (shard parallelism cannot beat serial on fewer cores).
//  * packet_alloc — steady-state allocations per tick of the packet delivery
//    path (server broadcast -> network -> client decode), counted by the
//    global operator-new override in alloc_counter.cpp. Gate: zero.
//
//   sim_scaling [--hours H] [--seed S] [--quick] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "alloc_counter.hpp"
#include "baseline_world.hpp"
#include "bench_common.hpp"
#include "client/metaverse_client.hpp"
#include "core/shards.hpp"
#include "server/sim_server.hpp"
#include "trace/serialize.hpp"
#include "util/bytes.hpp"
#include "world/archetypes.hpp"
#include "world/poi_gravity.hpp"

using namespace slmob;
using namespace slmob::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Frozen-population scale world: Dance Island geometry and mobility with the
// capacity raised to `n` and the population process silenced (no arrivals,
// multi-year sessions), so a prefilled population of exactly n avatars
// persists through the measured window.
Land scale_land(std::size_t n) {
  Land land = make_land(LandArchetype::kDanceIsland);
  land.set_capacity(n + 8);  // head-room for bench clients
  return land;
}

PopulationParams frozen_population() {
  PopulationParams p = make_population(LandArchetype::kDanceIsland);
  p.target_unique_users = 1e-6;  // arrival rate ~ 0
  p.session_median = 1e9;        // nobody logs out mid-bench
  p.session_min = 1e9;
  p.session_cap = 2e9;
  return p;
}

std::unique_ptr<World> scale_world(std::size_t n, std::uint64_t seed) {
  Land land = scale_land(n);
  auto model = std::make_unique<PoiGravityModel>(
      land, make_mobility_params(LandArchetype::kDanceIsland));
  auto world =
      std::make_unique<World>(std::move(land), std::move(model), frozen_population(), seed);
  world->debug_prefill(0.0, n);
  return world;
}

std::unique_ptr<BaselineWorld> scale_baseline(std::size_t n, std::uint64_t seed) {
  Land land = scale_land(n);
  auto model = std::make_unique<PoiGravityModel>(
      land, make_mobility_params(LandArchetype::kDanceIsland));
  auto world = std::make_unique<BaselineWorld>(std::move(land), std::move(model),
                                               frozen_population(), seed);
  world->debug_prefill(0.0, n);
  return world;
}

// Positional digest over (id, x, y) of every avatar, for the SoA-vs-map
// lockstep assertion. Exact double bits — any divergence trips it.
std::uint32_t world_digest(const World& world) {
  ByteWriter w;
  const auto& store = world.avatars();
  for (std::size_t i = 0; i < store.size(); ++i) {
    w.u32(store.id(i).value);
    w.f64(store.pos(i).x);
    w.f64(store.pos(i).y);
  }
  return crc32(w.bytes());
}

std::uint32_t baseline_digest(const BaselineWorld& world) {
  ByteWriter w;
  for (const auto& [id, avatar] : world.avatars()) {
    w.u32(id.value);
    w.f64(avatar.pos.x);
    w.f64(avatar.pos.y);
  }
  return crc32(w.bytes());
}

struct HotRow {
  std::size_t avatars;
  std::size_t ticks;
  double baseline_seconds;
  double soa_seconds;
  bool lockstep;
};

HotRow measure_hot_path(std::size_t n, std::uint64_t seed) {
  auto world = scale_world(n, seed);
  auto baseline = scale_baseline(n, seed);

  // Enough ticks that small populations still produce a stable timing, but
  // bounded total work for the 100k case.
  const std::size_t ticks = std::max<std::size_t>(60, 3'000'000 / std::max<std::size_t>(n, 1));
  Seconds now = 0.0;
  // Warm-up (also first lockstep point).
  for (std::size_t t = 0; t < 10; ++t, now += 1.0) {
    world->tick(now, 1.0);
    baseline->tick(now, 1.0);
  }
  bool lockstep = world_digest(*world) == baseline_digest(*baseline) &&
                  world->concurrent() == n && baseline->concurrent() == n;

  const auto t_soa = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < ticks; ++t) world->tick(now + static_cast<double>(t), 1.0);
  const double soa_seconds = seconds_since(t_soa);

  const auto t_base = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < ticks; ++t) baseline->tick(now + static_cast<double>(t), 1.0);
  const double baseline_seconds = seconds_since(t_base);

  lockstep = lockstep && world_digest(*world) == baseline_digest(*baseline);
  return {n, ticks, baseline_seconds, soa_seconds, lockstep};
}

std::vector<ExperimentConfig> three_land_shards(const BenchOptions& options) {
  std::vector<ExperimentConfig> shards;
  std::size_t i = 0;
  for (const LandArchetype archetype : kAllArchetypes) {
    ExperimentConfig cfg;
    cfg.archetype = archetype;
    cfg.duration = options.hours * kSecondsPerHour;
    cfg.seed = options.seed + i++;
    cfg.ranges = {};  // collection only: the sim engine is what's timed
    shards.push_back(cfg);
  }
  return shards;
}

struct AllocReport {
  std::size_t avatars;
  std::size_t clients;
  std::size_t ticks;
  double world_allocs_per_tick;
  double packet_allocs_per_tick;
  double packet_us_per_tick;
  std::size_t coarse_updates_sent;
};

// Steady-state rig: frozen world + connected viewers receiving the coarse
// feed and streaming keepalives. Warm both directions of the packet path,
// then count allocations across a long window.
AllocReport measure_packet_allocs(std::uint64_t seed) {
  constexpr std::size_t kAvatars = 150;
  constexpr std::size_t kClients = 4;
  auto world = scale_world(kAvatars, seed);
  SimNetwork net({}, seed + 1);
  SimServer server(net, *world, {});
  std::vector<std::unique_ptr<MetaverseClient>> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<MetaverseClient>(net, server.address(),
                                                        "bench" + std::to_string(i), "load"));
    clients.back()->login();
  }

  const auto pump = [&](Seconds from, Seconds to, auto&& per_tick) {
    for (Seconds t = from; t < to; t += 1.0) per_tick(t);
  };
  const auto full_tick = [&](Seconds t) {
    world->tick(t, 1.0);
    server.tick(t, 1.0);
    net.tick(t, 1.0);
    for (auto& c : clients) c->tick(t, 1.0);
  };

  pump(0.0, 120.0, full_tick);  // login handshakes + every pool/scratch warm
  for (const auto& c : clients) {
    if (!c->connected()) std::fprintf(stderr, "WARNING: bench client not connected\n");
  }

  constexpr std::size_t kTicks = 300;
  std::size_t world_allocs = 0;
  std::size_t packet_allocs = 0;
  double packet_seconds = 0.0;
  const std::size_t coarse_before = server.stats().coarse_updates_sent;
  pump(120.0, 120.0 + static_cast<double>(kTicks), [&](Seconds t) {
    const std::size_t a0 = allocation_count();
    world->tick(t, 1.0);
    const std::size_t a1 = allocation_count();
    const auto t0 = std::chrono::steady_clock::now();
    server.tick(t, 1.0);
    net.tick(t, 1.0);
    for (auto& c : clients) c->tick(t, 1.0);
    packet_seconds += seconds_since(t0);
    const std::size_t a2 = allocation_count();
    world_allocs += a1 - a0;
    packet_allocs += a2 - a1;
  });

  AllocReport report;
  report.avatars = kAvatars;
  report.clients = kClients;
  report.ticks = kTicks;
  report.world_allocs_per_tick = static_cast<double>(world_allocs) / kTicks;
  report.packet_allocs_per_tick = static_cast<double>(packet_allocs) / kTicks;
  report.packet_us_per_tick = packet_seconds / kTicks * 1e6;
  report.coarse_updates_sent = server.stats().coarse_updates_sent - coarse_before;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::parse(argc, argv);
  std::string out_path = "BENCH_sim.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[i + 1];
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  print_title("Sharded simulation engine scaling (SoA hot path, packet delivery)",
              "infrastructure bench (no paper figure)");

  bool ok = true;

  // --- hot path: SoA world vs seed-revision map world ----------------------
  std::vector<std::size_t> sizes{1000, 10000};
  if (!quick) sizes.push_back(100000);
  std::vector<HotRow> hot;
  for (const std::size_t n : sizes) {
    const HotRow row = measure_hot_path(n, options.seed);
    const double av_ticks =
        static_cast<double>(row.avatars) * static_cast<double>(row.ticks);
    std::printf("hot path n=%-7zu  soa %8.4f s (%.2fM avatar-ticks/s, rtf %.0fx)   "
                "map %8.4f s   speedup %5.2fx   lockstep %s\n",
                row.avatars, row.soa_seconds, av_ticks / row.soa_seconds / 1e6,
                static_cast<double>(row.ticks) / row.soa_seconds, row.baseline_seconds,
                row.baseline_seconds / row.soa_seconds, row.lockstep ? "yes" : "NO");
    if (!row.lockstep) {
      std::fprintf(stderr, "ERROR: SoA world diverged from seed-replica world\n");
      ok = false;
    }
    hot.push_back(row);
  }

  // --- sharded 3-land experiment vs thread count ---------------------------
  const auto shards = three_land_shards(options);
  const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  struct ExpRow {
    std::size_t threads;
    double seconds;
    bool identical;
  };
  std::vector<ExpRow> experiment;
  std::vector<std::uint32_t> reference_digests;
  double serial_seconds = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ShardRunOptions run_options;
    run_options.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = run_sharded(shards, run_options);
    const double elapsed = seconds_since(t0);
    std::vector<std::uint32_t> digests;
    for (const auto& r : results) digests.push_back(crc32(encode_trace(r.trace)));
    bool identical = true;
    if (threads == 1) {
      serial_seconds = elapsed;
      reference_digests = digests;
    } else {
      identical = digests == reference_digests;
    }
    experiment.push_back({threads, elapsed, identical});
    std::printf("sharded 3-land %4.1f h  threads=%zu  %8.3f s   speedup %5.2fx   "
                "bit-identical %s\n",
                options.hours, threads, elapsed,
                elapsed > 0.0 ? serial_seconds / elapsed : 0.0, identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr, "ERROR: shard traces differ at %zu threads\n", threads);
      ok = false;
    }
  }
  const double best_seconds = experiment.back().seconds;
  const double speedup4 = best_seconds > 0.0 ? serial_seconds / best_seconds : 0.0;
  const bool speedup_gate_applies = hw >= 4;
  if (speedup_gate_applies && speedup4 < 2.5) {
    std::fprintf(stderr, "ERROR: 4-thread speedup %.2fx below the 2.5x gate\n", speedup4);
    ok = false;
  } else if (!speedup_gate_applies) {
    std::printf("speedup gate skipped: %zu hardware thread(s)\n", hw);
  }

  // --- packet path allocation gate -----------------------------------------
  const AllocReport alloc = measure_packet_allocs(options.seed);
  std::printf("packet path: %zu avatars, %zu viewers, %zu ticks — "
              "%.2f allocs/tick (world %.2f), %.1f us/tick, %zu coarse updates\n",
              alloc.avatars, alloc.clients, alloc.ticks, alloc.packet_allocs_per_tick,
              alloc.world_allocs_per_tick, alloc.packet_us_per_tick,
              alloc.coarse_updates_sent);
  if (alloc.packet_allocs_per_tick != 0.0) {
    std::fprintf(stderr, "ERROR: warm packet path allocated (%.2f allocs/tick)\n",
                 alloc.packet_allocs_per_tick);
    ok = false;
  }

  // --- BENCH_sim.json -------------------------------------------------------
  std::string body;
  appendf(body, "{\n");
  appendf(body, "    \"hours\": %.3f,\n", options.hours);
  appendf(body, "    \"seed\": %llu,\n", static_cast<unsigned long long>(options.seed));
  appendf(body, "    \"hardware_concurrency\": %zu,\n", hw);
  appendf(body, "    \"hot_path\": [\n");
  for (std::size_t i = 0; i < hot.size(); ++i) {
    const auto& r = hot[i];
    const double av_ticks = static_cast<double>(r.avatars) * static_cast<double>(r.ticks);
    appendf(body,
            "      {\"avatars\": %zu, \"ticks\": %zu, \"soa_seconds\": %.6f, "
            "\"map_seconds\": %.6f, \"avatar_ticks_per_second\": %.0f, "
            "\"real_time_factor\": %.1f, \"speedup_vs_map\": %.3f, \"lockstep\": %s}%s\n",
            r.avatars, r.ticks, r.soa_seconds, r.baseline_seconds,
            av_ticks / r.soa_seconds, static_cast<double>(r.ticks) / r.soa_seconds,
            r.baseline_seconds / r.soa_seconds, r.lockstep ? "true" : "false",
            i + 1 == hot.size() ? "" : ",");
  }
  appendf(body, "    ],\n");
  appendf(body, "    \"sharded_experiment\": {\n");
  appendf(body, "      \"lands\": 3,\n");
  appendf(body, "      \"results\": [\n");
  for (std::size_t i = 0; i < experiment.size(); ++i) {
    const auto& r = experiment[i];
    appendf(body,
            "        {\"threads\": %zu, \"seconds\": %.6f, \"speedup_vs_serial\": %.3f, "
            "\"bit_identical\": %s}%s\n",
            r.threads, r.seconds, r.seconds > 0.0 ? serial_seconds / r.seconds : 0.0,
            r.identical ? "true" : "false", i + 1 == experiment.size() ? "" : ",");
  }
  appendf(body, "      ],\n");
  appendf(body, "      \"speedup_4_threads\": %.3f,\n", speedup4);
  appendf(body, "      \"speedup_gate_applied\": %s,\n",
          speedup_gate_applies ? "true" : "false");
  appendf(body, "      \"trace_digests\": [");
  for (std::size_t i = 0; i < reference_digests.size(); ++i) {
    appendf(body, "%s\"%08x\"", i == 0 ? "" : ", ", reference_digests[i]);
  }
  appendf(body, "]\n    },\n");
  appendf(body, "    \"packet_alloc\": {\n");
  appendf(body, "      \"avatars\": %zu,\n", alloc.avatars);
  appendf(body, "      \"viewers\": %zu,\n", alloc.clients);
  appendf(body, "      \"ticks\": %zu,\n", alloc.ticks);
  appendf(body, "      \"packet_allocs_per_tick\": %.4f,\n", alloc.packet_allocs_per_tick);
  appendf(body, "      \"world_allocs_per_tick\": %.4f,\n", alloc.world_allocs_per_tick);
  appendf(body, "      \"packet_us_per_tick\": %.3f,\n", alloc.packet_us_per_tick);
  appendf(body, "      \"coarse_updates_sent\": %zu\n", alloc.coarse_updates_sent);
  appendf(body, "    }\n  }");
  update_bench_json(out_path, "sim_scaling", body);
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
