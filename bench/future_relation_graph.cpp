// Future-work reproduction (§5 of the paper): the relation ("acquaintance")
// graph of SL users, with the frequency and strength of contact between
// acquaintances, plus the Levy-flight decomposition of trajectories the
// conclusion alludes to (paper ref [8]).
#include <cstdio>

#include "analysis/flights.hpp"
#include "analysis/relations.hpp"
#include "bench_common.hpp"

using namespace slmob;
using namespace slmob::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::parse(argc, argv);
  prewarm_lands({std::begin(kAllArchetypes), std::end(kAllArchetypes)}, options);
  print_title("Future work: relation graph & flight decomposition",
              "La & Michiardi 2008, section 5 (conclusion and future work)");

  std::printf("%-14s %8s %8s %10s %12s %12s %14s\n", "land", "users", "ties",
              "acq-frac", "enc med", "strength med", "recontact med");
  for (const LandArchetype archetype : kAllArchetypes) {
    const ExperimentResults& res = land_results(archetype, options);
    const RelationGraph graph(res.contacts.at(kBluetoothRange).intervals);
    Ecdf gaps;
    for (const auto& rel : graph.relations()) {
      if (rel.encounters >= 2) gaps.add(rel.mean_recontact_gap());
    }
    std::printf("%-14s %8zu %8zu %9.1f%% %12.0f %12.0f %14.0f\n",
                res.trace.land_name().c_str(), graph.user_count(), graph.edge_count(),
                graph.acquaintance_fraction() * 100.0,
                graph.encounter_counts().empty() ? 0.0 : graph.encounter_counts().median(),
                graph.tie_strengths().empty() ? 0.0 : graph.tie_strengths().median(),
                gaps.empty() ? 0.0 : gaps.median());
  }

  std::printf("\n# strongest ties on Dance Island (regulars who dance together)\n");
  {
    const ExperimentResults& res = land_results(LandArchetype::kDanceIsland, options);
    const RelationGraph graph(res.contacts.at(kBluetoothRange).intervals);
    for (const auto& rel : graph.strongest(5)) {
      std::printf("users %u-%u: %zu encounters, %.0f s together, knew each other "
                  "for %.0f s\n",
                  rel.a.value, rel.b.value, rel.encounters, rel.total_contact,
                  rel.last_seen_together - rel.first_met);
    }
  }

  std::printf("\n# flight/pause decomposition (paper ref [8], Levy-walk metrics)\n");
  std::printf("%-14s %10s %12s %12s %12s %12s\n", "land", "flights", "len med",
              "len alpha", "pause med", "pause alpha");
  for (const LandArchetype archetype : kAllArchetypes) {
    const ExperimentResults& res = land_results(archetype, options);
    const FlightAnalysis f = analyze_flights(res.trace);
    std::printf("%-14s %10zu %12.0f %12.2f %12.0f %12.2f\n",
                res.trace.land_name().c_str(), f.flight_lengths.size(),
                f.flight_lengths.empty() ? 0.0 : f.flight_lengths.median(),
                f.flight_fit.alpha,
                f.pause_times.empty() ? 0.0 : f.pause_times.median(), f.pause_fit.alpha);
  }
  std::printf("\nExpected: a heavy-tailed flight distribution truncated by the land\n"
              "size, and power-law-ish pauses — the Levy-walk signature of human\n"
              "mobility, emerging here from POI attraction alone.\n");
  return 0;
}
