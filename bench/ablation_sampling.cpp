// Ablation: sampling granularity tau.
//
// The paper samples every tau = 10 s. This bench quantifies what coarser or
// finer sampling does to the contact metrics (short contacts are missed at
// large tau; CT quantisation bias grows with tau) — ground-truth recorders
// at different periods observe the same world.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/testbed.hpp"

using namespace slmob;
using namespace slmob::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::parse(argc, argv);
  if (options.hours > 6.0) options.hours = 6.0;
  print_title("Ablation: sampling interval tau (paper uses 10 s)",
              "methodology sensitivity (DESIGN.md section 6)");

  const std::vector<double> taus{2.0, 10.0, 30.0, 60.0};

  // One world, several recorders: every tau sees the same avatars.
  auto world = make_world(LandArchetype::kDanceIsland, options.seed);
  SimEngine engine(1.0);
  engine.add(kPriorityWorld, [&](Seconds now, Seconds dt) { world->tick(now, dt); });
  std::vector<std::unique_ptr<GroundTruthRecorder>> recorders;
  for (const double tau : taus) {
    recorders.push_back(std::make_unique<GroundTruthRecorder>(*world, tau));
    engine.add(kPriorityMonitor, [rec = recorders.back().get()](Seconds now, Seconds dt) {
      rec->tick(now, dt);
    });
  }
  engine.run_until(options.hours * kSecondsPerHour);

  std::printf("%-8s %10s %12s %12s %12s %12s\n", "tau(s)", "contacts", "CT med",
              "ICT med", "FT med", "CT p10");
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const Trace trace = recorders[i]->take_trace();
    const ContactAnalysis c = analyze_contacts(trace, kBluetoothRange);
    std::printf("%-8.0f %10zu %12.0f %12.0f %12.0f %12.0f\n", taus[i],
                c.intervals.size(),
                c.contact_times.empty() ? 0.0 : c.contact_times.median(),
                c.inter_contact_times.empty() ? 0.0 : c.inter_contact_times.median(),
                c.first_contact_times.empty() ? 0.0 : c.first_contact_times.median(),
                c.contact_times.empty() ? 0.0 : c.contact_times.quantile(0.1));
  }
  std::printf("\nExpected: coarser tau merges/misses short contacts (fewer contacts,\n"
              "inflated CT floor = tau); the paper's 10 s resolves the CT head while\n"
              "remaining cheap to collect.\n");
  return 0;
}
