// Streaming-vs-batch analysis bench: throughput (snapshots/s) and peak RSS
// of the single-pass StreamingAnalyzer against the batch analyze_trace
// pipeline on the same Isle-of-View trace, written to BENCH_analysis.json
// under the "streaming_throughput" section.
//
// Peak RSS (VmHWM) is a process-lifetime high-water mark and fork inherits
// the parent's resident pages, so every heavyweight step gets its own forked
// child: one child generates and saves the trace (keeping the full
// ExperimentResults out of the parent — a parent that held the 24 h trace
// would inflate every later child's measured peak), then each pipeline child
// loads/streams it cold and reports digest/seconds/rss through a small k=v
// file. Each configuration is run three times (fastest run scores
// throughput, largest scores RSS, digests must agree). On non-unix builds
// everything runs in-process and the RSS comparison is skipped.
//
// Gates (exit 1 on failure):
//  * every pipeline — batch and streaming at 1/2/4 threads — must produce
//    the same analysis fingerprint (bit-identical reports);
//  * streaming single-thread throughput must be >= batch single-thread;
//  * at >= 24 h (the paper's trace length) streaming peak RSS must be
//    <= 25% of batch. Short smoke runs skip this gate: at 2 h the ~6 MiB
//    process baseline dominates both sides and the ratio is meaningless.
//
//   streaming_throughput [--hours H] [--seed S] [--quick] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "analysis/analysis_report.hpp"
#include "analysis/streaming.hpp"
#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "trace/serialize.hpp"
#include "util/sysinfo.hpp"
#include "util/thread_pool.hpp"

using namespace slmob;
using namespace slmob::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct PipelineResult {
  std::uint32_t digest{0};
  double seconds{0.0};
  double rss_mib{0.0};
  std::size_t snapshots{0};
  // IncrementalProximity path statistics (streaming pipelines only): how
  // many snapshots needed a full kernel rebuild vs a delta update.
  std::size_t proximity_rebuilds{0};
  std::size_t proximity_delta_updates{0};
  bool ok{false};
};

// One pipeline, run to completion in this process. threads == 0 means the
// batch pipeline (single analysis thread); > 0 means streaming at that
// thread count. The saved trace already has sitting fixes stripped
// (run_experiment strips before analysis), so streaming keeps its own strip
// option off and both pipelines see identical input.
//
// seconds and rss_mib are sampled the moment the pipeline returns its
// report: the fingerprint computed afterwards serialises every sample into
// one buffer (tens of MiB on a 24 h trace), which is equality-check
// machinery, not pipeline cost, and would otherwise dominate the streaming
// side's high-water mark.
PipelineResult run_pipeline(const std::string& trace_path, std::size_t threads) {
  PipelineResult out;
  const auto t0 = std::chrono::steady_clock::now();
  if (threads == 0) {
    Trace trace = load_trace(trace_path);
    out.snapshots = trace.size();
    const ExperimentResults res = analyze_trace(
        std::move(trace), {kBluetoothRange, kWifiRange}, kDefaultLandSize,
        /*threads=*/1);
    out.seconds = seconds_since(t0);
    out.rss_mib = peak_rss_mib();
    out.digest = analysis_fingerprint(to_analysis_report(res));
  } else {
    StreamingOptions options;
    options.threads = threads;
    StreamingProgress progress;
    const AnalysisReport report = analyze_stream_file(trace_path, options, &progress);
    out.snapshots = progress.snapshots;
    out.proximity_rebuilds = progress.proximity_rebuilds;
    out.proximity_delta_updates = progress.proximity_delta_updates;
    out.seconds = seconds_since(t0);
    out.rss_mib = peak_rss_mib();
    out.digest = analysis_fingerprint(report);
  }
  out.ok = true;
  return out;
}

struct TraceStats {
  std::size_t snapshots{0};
  std::size_t unique_users{0};
  std::size_t gaps{0};
  bool ok{false};
};

// Runs the Isle-of-View experiment and saves its trace to `trace_path`.
TraceStats generate_trace(const BenchOptions& options, const std::string& trace_path) {
  const ExperimentResults& base = land_results(LandArchetype::kIsleOfView, options);
  save_trace(base.trace, trace_path);
  TraceStats st;
  st.snapshots = base.trace.size();
  st.unique_users = base.summary.unique_users;
  st.gaps = base.trace.gaps().size();
  st.ok = true;
  return st;
}

#if defined(__unix__)
// Forks a child to generate the trace so the parent never materialises the
// ExperimentResults; stats come back through `stats_path`.
TraceStats generate_trace_forked(const BenchOptions& options,
                                 const std::string& trace_path,
                                 const std::string& stats_path) {
  TraceStats out;
  const pid_t pid = fork();
  if (pid == 0) {
    const TraceStats st = generate_trace(options, trace_path);
    std::FILE* f = std::fopen(stats_path.c_str(), "wb");
    bool wrote = false;
    if (f != nullptr) {
      std::fprintf(f, "snapshots=%zu\nunique_users=%zu\ngaps=%zu\n", st.snapshots,
                   st.unique_users, st.gaps);
      // The parent parses this file; a truncated write must fail the child.
      wrote = std::fflush(f) == 0 && std::fclose(f) == 0;
    }
    std::_Exit(st.ok && wrote ? 0 : 1);
  }
  if (pid < 0) {
    std::perror("fork");
    return out;
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "trace generation child failed\n");
    return out;
  }
  std::FILE* f = std::fopen(stats_path.c_str(), "rb");
  if (f == nullptr) return out;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    std::sscanf(line, "snapshots=%zu", &out.snapshots);
    std::sscanf(line, "unique_users=%zu", &out.unique_users);
    std::sscanf(line, "gaps=%zu", &out.gaps);
  }
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  std::fclose(f);
  std::remove(stats_path.c_str());
  out.ok = true;
  return out;
}

// Forks a child that runs one pipeline and reports through `result_path`.
PipelineResult run_pipeline_forked(const std::string& trace_path, std::size_t threads,
                                   const std::string& result_path) {
  const pid_t pid = fork();
  if (pid == 0) {
    const PipelineResult r = run_pipeline(trace_path, threads);
    std::FILE* f = std::fopen(result_path.c_str(), "wb");
    bool wrote = false;
    if (f != nullptr) {
      std::fprintf(f,
                   "digest=%u\nseconds=%.9f\nrss_mib=%.6f\nsnapshots=%zu\n"
                   "proximity_rebuilds=%zu\nproximity_delta_updates=%zu\n",
                   r.digest, r.seconds, r.rss_mib, r.snapshots, r.proximity_rebuilds,
                   r.proximity_delta_updates);
      // The parent parses this file; a truncated write must fail the child.
      wrote = std::fflush(f) == 0 && std::fclose(f) == 0;
    }
    std::_Exit(wrote ? 0 : 1);
  }
  PipelineResult out;
  if (pid < 0) {
    std::perror("fork");
    return out;
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "pipeline child failed (threads=%zu)\n", threads);
    return out;
  }
  std::FILE* f = std::fopen(result_path.c_str(), "rb");
  if (f == nullptr) return out;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    unsigned digest = 0;
    if (std::sscanf(line, "digest=%u", &digest) == 1) out.digest = digest;
    std::sscanf(line, "seconds=%lf", &out.seconds);
    std::sscanf(line, "rss_mib=%lf", &out.rss_mib);
    std::sscanf(line, "snapshots=%zu", &out.snapshots);
    std::sscanf(line, "proximity_rebuilds=%zu", &out.proximity_rebuilds);
    std::sscanf(line, "proximity_delta_updates=%zu", &out.proximity_delta_updates);
  }
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  std::fclose(f);
  std::remove(result_path.c_str());
  out.ok = true;
  return out;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::parse(argc, argv);
  std::string out_path = "BENCH_analysis.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[i + 1];
  }
  print_title("Streaming vs batch analysis throughput (Isle of View)",
              "infrastructure bench (no paper figure)");

  const std::string trace_path =
      "streaming_throughput_" + std::to_string(options.seed) + ".slt";
#if defined(__unix__)
  const bool forked = true;
  const TraceStats stats =
      generate_trace_forked(options, trace_path, trace_path + ".stats");
  auto run = [&](std::size_t threads) {
    return run_pipeline_forked(trace_path, threads,
                               trace_path + "." + std::to_string(threads) + ".result");
  };
#else
  const bool forked = false;
  const TraceStats stats = generate_trace(options, trace_path);
  auto run = [&](std::size_t threads) { return run_pipeline(trace_path, threads); };
#endif
  if (!stats.ok) {
    std::fprintf(stderr, "ERROR: trace generation failed\n");
    return 1;
  }
  std::printf("trace: %zu snapshots, %zu unique users, %zu gaps\n", stats.snapshots,
              stats.unique_users, stats.gaps);

  // One run's wall time jitters by a few percent on a busy host — more than
  // the throughput gate's margin — so each configuration runs three times:
  // throughput scores the fastest run (the usual noise-robust estimate of a
  // pipeline's cost), peak RSS the largest (the conservative side of its
  // gate), and every repeat must reproduce the same digest.
  constexpr int kRepeats = 3;
  auto run_best = [&](std::size_t threads) {
    PipelineResult best;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const PipelineResult r = run(threads);
      if (!r.ok) return r;
      if (rep == 0) {
        best = r;
      } else {
        if (r.digest != best.digest) {
          std::fprintf(stderr,
                       "ERROR: digest varies across repeats (threads=%zu)\n", threads);
          best.ok = false;
          return best;
        }
        best.seconds = std::min(best.seconds, r.seconds);
        best.rss_mib = std::max(best.rss_mib, r.rss_mib);
      }
    }
    return best;
  };

  const PipelineResult batch = run_best(0);
  const std::vector<std::size_t> stream_threads{1, 2, 4};
  std::vector<PipelineResult> streaming;
  for (const std::size_t t : stream_threads) streaming.push_back(run_best(t));
  std::remove(trace_path.c_str());

  bool all_ok = batch.ok;
  for (const auto& s : streaming) all_ok = all_ok && s.ok;
  if (!all_ok) {
    std::fprintf(stderr, "ERROR: a pipeline run failed\n");
    return 1;
  }

  const double batch_rate =
      batch.seconds > 0.0 ? static_cast<double>(batch.snapshots) / batch.seconds : 0.0;
  std::printf("%-28s %8.3f s  %8.0f snap/s  %8.1f MiB  digest %08x\n",
              "batch (1 thread)", batch.seconds, batch_rate, batch.rss_mib,
              batch.digest);
  bool identical = true;
  for (std::size_t i = 0; i < streaming.size(); ++i) {
    const auto& s = streaming[i];
    const double rate =
        s.seconds > 0.0 ? static_cast<double>(s.snapshots) / s.seconds : 0.0;
    identical = identical && s.digest == batch.digest;
    std::printf("%-28s %8.3f s  %8.0f snap/s  %8.1f MiB  digest %08x%s\n",
                ("streaming (threads=" + std::to_string(stream_threads[i]) + ")").c_str(),
                s.seconds, rate, s.rss_mib, s.digest,
                s.digest == batch.digest ? "" : "  MISMATCH");
  }

  const PipelineResult& s1 = streaming.front();
  const double s1_rate =
      s1.seconds > 0.0 ? static_cast<double>(s1.snapshots) / s1.seconds : 0.0;
  const double rss_ratio = batch.rss_mib > 0.0 ? s1.rss_mib / batch.rss_mib : 0.0;
  const double throughput_ratio = batch_rate > 0.0 ? s1_rate / batch_rate : 0.0;
  // RSS is only meaningful when each pipeline got its own process and the
  // trace is big enough to dominate the process baseline.
  const bool rss_gate_enforced = forked && options.hours >= 24.0 && batch.rss_mib > 0.0;

  bool pass = true;
  if (!identical) {
    std::fprintf(stderr, "ERROR: streaming digest differs from batch\n");
    pass = false;
  }
  if (throughput_ratio < 1.0) {
    std::fprintf(stderr, "ERROR: streaming throughput %.0f snap/s < batch %.0f snap/s\n",
                 s1_rate, batch_rate);
    pass = false;
  }
  if (rss_gate_enforced && rss_ratio > 0.25) {
    std::fprintf(stderr, "ERROR: streaming peak RSS %.1f MiB > 25%% of batch %.1f MiB\n",
                 s1.rss_mib, batch.rss_mib);
    pass = false;
  }
  std::printf("throughput ratio (stream t=1 / batch): %.2fx\n", throughput_ratio);
  std::printf("peak RSS ratio  (stream t=1 / batch): %.2f%s\n", rss_ratio,
              rss_gate_enforced ? "" : "  (gate skipped: short run / no fork)");

  std::string body;
  appendf(body, "{\n");
  appendf(body, "    \"land\": \"isle_of_view\",\n");
  appendf(body, "    \"hours\": %.3f,\n", options.hours);
  appendf(body, "    \"seed\": %llu,\n", static_cast<unsigned long long>(options.seed));
  appendf(body, "    \"snapshots\": %zu,\n", batch.snapshots);
  appendf(body, "    \"hardware_concurrency\": %u,\n",
          std::thread::hardware_concurrency());
  appendf(body, "    \"default_concurrency\": %zu,\n", ThreadPool::default_concurrency());
  appendf(body, "    \"forked\": %s,\n", forked ? "true" : "false");
  appendf(body, "    \"repeats\": %d,\n", kRepeats);
  appendf(body,
          "    \"batch\": {\"threads\": 1, \"seconds\": %.6f, "
          "\"snapshots_per_second\": %.1f, \"peak_rss_mib\": %.2f},\n",
          batch.seconds, batch_rate, batch.rss_mib);
  appendf(body, "    \"streaming\": [\n");
  for (std::size_t i = 0; i < streaming.size(); ++i) {
    const auto& s = streaming[i];
    appendf(body,
            "      {\"threads\": %zu, \"seconds\": %.6f, "
            "\"snapshots_per_second\": %.1f, \"peak_rss_mib\": %.2f, "
            "\"proximity_rebuilds\": %zu, \"proximity_delta_updates\": %zu}%s\n",
            stream_threads[i], s.seconds,
            s.seconds > 0.0 ? static_cast<double>(s.snapshots) / s.seconds : 0.0,
            s.rss_mib, s.proximity_rebuilds, s.proximity_delta_updates,
            i + 1 == streaming.size() ? "" : ",");
  }
  appendf(body, "    ],\n");
  appendf(body, "    \"identical_across_modes\": %s,\n", identical ? "true" : "false");
  appendf(body, "    \"throughput_ratio_t1\": %.3f,\n", throughput_ratio);
  appendf(body, "    \"rss_ratio_t1\": %.3f,\n", rss_ratio);
  appendf(body, "    \"rss_gate_enforced\": %s,\n", rss_gate_enforced ? "true" : "false");
  appendf(body, "    \"gates_passed\": %s\n", pass ? "true" : "false");
  appendf(body, "  }");
  update_bench_json(out_path, "streaming_throughput", body);
  std::printf("wrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}
