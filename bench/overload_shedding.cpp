// overload_shedding: gates the overload-protection layer end to end.
//
// One rig carries both instruments the paper used — the external crawler and
// an in-world sensor grid flushing to an HTTP collector — on a shared
// network with deliberately tight queue bounds. The "overload" scenario (10x
// flash-crowd arrivals over the middle third, collector answering seconds
// late over a slightly wider window) is run against a fault-free control
// with the exact same bounds, and the bench enforces the contract:
//
//  * fault-free: every shed / defer / degrade counter is exactly zero — the
//    protection layer must be invisible until there is something to protect
//    against;
//  * overload: datagrams are shed (snapshot class), sampling degradation
//    windows are recorded on the trace, sensor flushes widen, the collector
//    defers acks — the pressure is measured, not silent;
//  * zero control-plane loss: no reliable send fails in either run;
//  * covered recall stays above a floor: whatever the crawler claims as
//    covered time is still honest measurement;
//  * peak RSS stays within a fixed budget (bounded queues actually bound);
//  * bit-identical traces: the overload rig twice with one seed, and a
//    4-shard crawler run at 1, 2 and 4 threads, must agree byte for byte.
//
// Writes every score to BENCH_overload.json; exits non-zero if any gate
// fails.
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_common.hpp"
#include "core/shards.hpp"
#include "core/testbed.hpp"
#include "net/fault_schedule.hpp"
#include "sensors/collector.hpp"
#include "sensors/deployment.hpp"
#include "sensors/object_runtime.hpp"
#include "trace/serialize.hpp"
#include "util/bytes.hpp"

namespace {

using namespace slmob;
using bench::appendf;

// Queue bounds tight enough that a 10x surge trips them while a fault-free
// run never does. The production defaults are deliberately generous; these
// are the bench's stress settings, not recommendations.
constexpr std::size_t kTightInFlight = 16;

struct RigScore {
  std::string scenario;
  // Overload-protection counters (all must be 0 fault-free).
  std::uint64_t shed_session{0};
  std::uint64_t shed_snapshot{0};
  std::uint64_t deferred_sends{0};
  std::uint64_t logins_rejected_overload{0};
  std::uint64_t messages_shed{0};
  std::uint64_t degrade_escalations{0};
  std::uint64_t degrade_recoveries{0};
  std::uint64_t degraded_snapshots{0};
  double degraded_seconds{0.0};
  std::size_t degradation_windows{0};
  std::uint64_t flushes_widened{0};
  std::uint64_t sensor_http_timeouts{0};
  std::uint64_t responses_delayed{0};
  std::uint64_t responses_dropped{0};
  std::uint64_t in_flight_peak{0};
  // Control-plane integrity.
  std::uint64_t reliable_failures{0};
  // Fidelity.
  double recall{0.0};
  double covered_recall{0.0};
  std::size_t snapshots{0};
  std::uint32_t trace_digest{0};

  bool operator==(const RigScore&) const = default;
};

// Fraction of ground-truth (snapshot, avatar) fixes the crawler captured
// (chaos_recall's scoring; covered_only restricts to time outside gaps).
double recall_vs_truth(const Trace& measured, const Trace& truth, bool covered_only) {
  const Seconds tau = truth.sampling_interval();
  std::size_t total = 0;
  std::size_t matched = 0;
  std::size_t m = 0;
  const auto& snaps = measured.snapshots();
  for (const auto& gt : truth.snapshots()) {
    if (covered_only && !measured.covered_at(gt.time)) continue;
    while (m < snaps.size() && snaps[m].time < gt.time - tau / 2.0) ++m;
    const bool have_window = m < snaps.size() && snaps[m].time < gt.time + tau / 2.0;
    std::unordered_set<std::uint32_t> present;
    if (have_window) {
      for (const auto& fix : snaps[m].fixes) present.insert(fix.id.value);
    }
    for (const auto& fix : gt.fixes) {
      ++total;
      if (present.contains(fix.id.value)) ++matched;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(matched) / static_cast<double>(total);
}

RigScore run_rig(const std::string& scenario, double hours, std::uint64_t seed) {
  const Seconds duration = hours * kSecondsPerHour;

  TestbedConfig cfg;
  cfg.archetype = LandArchetype::kIsleOfView;
  cfg.seed = seed;
  cfg.with_ground_truth = true;
  cfg.network.max_in_flight = kTightInFlight;
  if (scenario != "none") {
    cfg.faults = FaultSchedule::scenario(scenario, duration, seed);
  }
  Testbed bed(cfg);

  // Sensor grid + collector on the same world/network (the
  // arch_sensor_vs_crawler rig), so the snapshot-class traffic that the
  // tight in-flight bound sheds under surge actually exists.
  HttpCollector collector(bed.network(), bed.world().land().name());
  collector.set_faults(cfg.faults);
  ObjectRuntime runtime(bed.world(), bed.network(), seed ^ 0x5e);
  SensorGridConfig grid_cfg;
  grid_cfg.grid_side = 2;
  SensorGridDeployment grid(runtime, bed.world().land(), collector.address(), grid_cfg);
  grid.deploy_all(0.0);
  bed.engine().add(kPriorityServer, [&](Seconds now, Seconds dt) {
    collector.tick(now, dt);
    runtime.tick(now, dt);
  });
  bed.engine().add(kPriorityMonitor, [&](Seconds now, Seconds dt) { grid.tick(now, dt); });

  bed.run_until(duration);

  RigScore s;
  s.scenario = scenario;
  const NetworkStats& net = bed.network().stats();
  s.shed_session = net.shed_session;
  s.shed_snapshot = net.shed_snapshot;
  s.in_flight_peak = net.in_flight_peak;
  const CircuitStats circ = bed.client()->total_circuit_stats();
  s.deferred_sends = circ.deferred_sends;
  s.reliable_failures = circ.reliable_failures;
  const SimServerStats& server = bed.server().stats();
  s.logins_rejected_overload = server.logins_rejected_overload;
  s.messages_shed = server.messages_shed;
  const CrawlerStats& crawl = bed.crawler()->stats();
  s.degrade_escalations = crawl.degrade_escalations;
  s.degrade_recoveries = crawl.degrade_recoveries;
  s.degraded_snapshots = crawl.degraded_snapshots;
  // total_sensor_stats folds in expired generations: on public land the
  // sensor fleet turns over every object_lifetime seconds, and the counters
  // from sensors that lived through the surge must not vanish with them.
  const SensorObjectStats sensors = runtime.total_sensor_stats();
  s.flushes_widened = sensors.flushes_widened;
  s.sensor_http_timeouts = sensors.http_timeouts;
  s.responses_delayed = collector.stats().responses_delayed;
  s.responses_dropped = collector.stats().responses_dropped;

  const Trace truth = bed.ground_truth()->take_trace();
  const Trace crawled = bed.crawler()->take_trace();
  s.degraded_seconds = crawled.degraded_seconds();
  s.degradation_windows = crawled.degradations().size();
  s.snapshots = crawled.size();
  s.recall = recall_vs_truth(crawled, truth, /*covered_only=*/false);
  s.covered_recall = recall_vs_truth(crawled, truth, /*covered_only=*/true);
  s.trace_digest = crc32(encode_trace(crawled));
  return s;
}

std::uint64_t overload_counter_total(const RigScore& s) {
  return s.shed_session + s.shed_snapshot + s.deferred_sends +
         s.logins_rejected_overload + s.messages_shed + s.degrade_escalations +
         s.degrade_recoveries + s.degraded_snapshots + s.flushes_widened +
         s.responses_delayed + s.responses_dropped +
         static_cast<std::uint64_t>(s.degradation_windows);
}

// Crawler-only shards under the overload scenario at several thread counts:
// the protection layer must not perturb cross-shard determinism.
bool sharded_bit_identical(double hours, std::uint64_t seed,
                           std::vector<std::uint32_t>& digests_out) {
  std::vector<ExperimentConfig> shards;
  const LandArchetype lands[] = {LandArchetype::kIsleOfView, LandArchetype::kDanceIsland,
                                 LandArchetype::kApfelLand, LandArchetype::kIsleOfView};
  for (std::size_t i = 0; i < 4; ++i) {
    ExperimentConfig cfg;
    cfg.archetype = lands[i];
    cfg.duration = hours * kSecondsPerHour;
    cfg.seed = seed + i;
    cfg.fault_scenario = "overload";
    cfg.ranges = {};
    cfg.testbed.network.max_in_flight = kTightInFlight;
    shards.push_back(cfg);
  }

  bool identical = true;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ShardRunOptions opt;
    opt.threads = threads;
    const auto results = run_sharded(shards, opt);
    std::vector<std::uint32_t> digests;
    digests.reserve(results.size());
    for (const auto& r : results) digests.push_back(crc32(encode_trace(r.trace)));
    if (threads == 1) {
      digests_out = digests;
    } else if (digests != digests_out) {
      identical = false;
    }
  }
  return identical;
}

void append_score(std::string& body, const RigScore& s, bool last) {
  appendf(body,
          "    {\"scenario\": \"%s\", \"shed_session\": %llu, \"shed_snapshot\": %llu, "
          "\"deferred_sends\": %llu, \"logins_rejected_overload\": %llu, "
          "\"messages_shed\": %llu, \"degrade_escalations\": %llu, "
          "\"degrade_recoveries\": %llu, \"degraded_snapshots\": %llu, "
          "\"degraded_seconds\": %.1f, \"degradation_windows\": %zu, "
          "\"flushes_widened\": %llu, \"sensor_http_timeouts\": %llu, "
          "\"responses_delayed\": %llu, \"responses_dropped\": %llu, "
          "\"in_flight_peak\": %llu, "
          "\"reliable_failures\": %llu, \"recall\": %.6f, \"covered_recall\": %.6f, "
          "\"snapshots\": %zu, \"trace_digest\": \"%08x\"}%s\n",
          s.scenario.c_str(), static_cast<unsigned long long>(s.shed_session),
          static_cast<unsigned long long>(s.shed_snapshot),
          static_cast<unsigned long long>(s.deferred_sends),
          static_cast<unsigned long long>(s.logins_rejected_overload),
          static_cast<unsigned long long>(s.messages_shed),
          static_cast<unsigned long long>(s.degrade_escalations),
          static_cast<unsigned long long>(s.degrade_recoveries),
          static_cast<unsigned long long>(s.degraded_snapshots), s.degraded_seconds,
          s.degradation_windows, static_cast<unsigned long long>(s.flushes_widened),
          static_cast<unsigned long long>(s.sensor_http_timeouts),
          static_cast<unsigned long long>(s.responses_delayed),
          static_cast<unsigned long long>(s.responses_dropped),
          static_cast<unsigned long long>(s.in_flight_peak),
          static_cast<unsigned long long>(s.reliable_failures), s.recall,
          s.covered_recall, s.snapshots, s.trace_digest, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  double hours = 6.0;
  std::uint64_t seed = 42;
  double rss_budget_mib = 1024.0;
  double recall_floor = 0.45;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
      hours = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--rss-budget-mib") == 0 && i + 1 < argc) {
      rss_budget_mib = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--recall-floor") == 0 && i + 1 < argc) {
      recall_floor = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      hours = 2.0;
    }
  }

  std::printf("overload_shedding: %.1f h Isle Of View, seed %llu, in-flight cap %zu\n",
              hours, static_cast<unsigned long long>(seed), kTightInFlight);

  std::fprintf(stderr, "[bench] fault-free control...\n");
  const RigScore control = run_rig("none", hours, seed);
  std::fprintf(stderr, "[bench] overload (run 1/2)...\n");
  const RigScore overload = run_rig("overload", hours, seed);
  std::fprintf(stderr, "[bench] overload (run 2/2, determinism)...\n");
  const RigScore overload2 = run_rig("overload", hours, seed);
  std::fprintf(stderr, "[bench] sharded 1/2/4 threads...\n");
  std::vector<std::uint32_t> shard_digests;
  const bool shards_identical = sharded_bit_identical(hours / 2.0, seed, shard_digests);
  const double rss = bench::peak_rss_mib();

  struct Gate {
    const char* name;
    bool pass;
  };
  const std::vector<Gate> gates = {
      {"fault-free counters all zero", overload_counter_total(control) == 0},
      {"overload sheds datagrams", overload.shed_snapshot + overload.shed_session > 0},
      {"overload records degradation windows",
       overload.degrade_escalations > 0 && overload.degraded_seconds > 0.0 &&
           overload.degradation_windows > 0},
      {"overload widens sensor flushes", overload.flushes_widened > 0},
      {"collector defers under slow window", overload.responses_delayed > 0},
      {"zero control-plane loss",
       control.reliable_failures == 0 && overload.reliable_failures == 0},
      {"covered recall above floor", overload.covered_recall >= recall_floor},
      {"peak RSS within budget", rss == 0.0 || rss <= rss_budget_mib},
      {"overload rig deterministic", overload == overload2},
      {"sharded 1/2/4 threads bit-identical", shards_identical},
  };

  std::printf("%-28s %14s %14s\n", "counter", "fault-free", "overload");
  const auto row = [](const char* name, std::uint64_t a, std::uint64_t b) {
    std::printf("%-28s %14llu %14llu\n", name, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  };
  row("shed (session)", control.shed_session, overload.shed_session);
  row("shed (snapshot)", control.shed_snapshot, overload.shed_snapshot);
  row("deferred sends", control.deferred_sends, overload.deferred_sends);
  row("logins rejected", control.logins_rejected_overload,
      overload.logins_rejected_overload);
  row("messages shed", control.messages_shed, overload.messages_shed);
  row("degrade escalations", control.degrade_escalations, overload.degrade_escalations);
  row("degraded snapshots", control.degraded_snapshots, overload.degraded_snapshots);
  row("flushes widened", control.flushes_widened, overload.flushes_widened);
  row("acks delayed", control.responses_delayed, overload.responses_delayed);
  row("in-flight peak", control.in_flight_peak, overload.in_flight_peak);
  row("reliable failures", control.reliable_failures, overload.reliable_failures);
  std::printf("degraded seconds: %.0f | recall %.4f -> %.4f | covered recall %.4f "
              "(floor %.2f) | peak RSS %.0f MiB (budget %.0f)\n",
              overload.degraded_seconds, control.recall, overload.recall,
              overload.covered_recall, recall_floor, rss, rss_budget_mib);

  bool all_pass = true;
  for (const Gate& g : gates) {
    std::printf("gate %-38s %s\n", g.name, g.pass ? "PASS" : "FAIL");
    all_pass = all_pass && g.pass;
  }

  std::string body;
  appendf(body, "{\n");
  appendf(body, "  \"hours\": %.2f,\n", hours);
  appendf(body, "  \"seed\": %llu,\n", static_cast<unsigned long long>(seed));
  appendf(body, "  \"in_flight_cap\": %zu,\n", kTightInFlight);
  appendf(body, "  \"recall_floor\": %.2f,\n", recall_floor);
  appendf(body, "  \"rss_budget_mib\": %.0f,\n", rss_budget_mib);
  appendf(body, "  \"peak_rss_mib\": %.1f,\n", rss);
  appendf(body, "  \"all_gates_pass\": %s,\n", all_pass ? "true" : "false");
  appendf(body, "  \"gates\": {\n");
  for (std::size_t i = 0; i < gates.size(); ++i) {
    appendf(body, "    \"%s\": %s%s\n", gates[i].name, gates[i].pass ? "true" : "false",
            i + 1 < gates.size() ? "," : "");
  }
  appendf(body, "  },\n");
  appendf(body, "  \"shard_digests\": [");
  for (std::size_t i = 0; i < shard_digests.size(); ++i) {
    appendf(body, "%s\"%08x\"", i == 0 ? "" : ", ", shard_digests[i]);
  }
  appendf(body, "],\n");
  appendf(body, "  \"runs\": [\n");
  append_score(body, control, /*last=*/false);
  append_score(body, overload, /*last=*/true);
  appendf(body, "  ]\n}");
  bench::update_bench_json("BENCH_overload.json", "overload_shedding", body);
  std::printf("wrote BENCH_overload.json (%s)\n", all_pass ? "all gates PASS" : "GATE FAILURES");
  return all_pass ? 0 : 1;
}
