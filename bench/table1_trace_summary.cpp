// Table 1 (in-text, §3): trace summary per target land — total unique
// visitors and average number of concurrently logged-in users over a 24 h
// measurement.
#include <cstdio>

#include "bench_common.hpp"

using namespace slmob;
using namespace slmob::bench;

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::parse(argc, argv);
  prewarm_lands({std::begin(kAllArchetypes), std::end(kAllArchetypes)}, options);
  print_title("Table 1: trace summary (unique visitors / avg concurrent users)",
              "La & Michiardi 2008, section 3 (in-text trace summary)");

  struct PaperRow {
    LandArchetype archetype;
    double unique;
    double concurrent;
  };
  const PaperRow paper_rows[] = {
      {LandArchetype::kIsleOfView, 2656, 65},
      {LandArchetype::kDanceIsland, 3347, 34},
      {LandArchetype::kApfelLand, 1568, 13},
  };

  std::printf("%-14s %10s %10s %12s %12s %10s %10s\n", "land", "uniq(pap)", "uniq(meas)",
              "conc(pap)", "conc(meas)", "maxconc", "snapshots");
  for (const auto& row : paper_rows) {
    const ExperimentResults& res = land_results(row.archetype, options);
    // Scale the paper's 24 h unique-user count when running shorter traces.
    const double scale = options.hours / 24.0;
    std::printf("%-14s %10.0f %10zu %12.0f %12.1f %10zu %10zu\n",
                res.trace.land_name().c_str(), row.unique * scale,
                res.summary.unique_users, row.concurrent, res.summary.avg_concurrent,
                res.summary.max_concurrent, res.summary.snapshot_count);
  }

  std::printf("\n# session-time sanity (paper: longest ~4 h, 90%% of users < 1 h)\n");
  for (const auto& row : paper_rows) {
    const ExperimentResults& res = land_results(row.archetype, options);
    const auto& tt = res.trips.travel_times;
    if (tt.empty()) continue;
    std::printf("%-14s p90_session=%6.0fs  max_session=%6.0fs\n",
                res.trace.land_name().c_str(), tt.quantile(0.9), tt.max());
  }
  return 0;
}
