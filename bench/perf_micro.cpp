// Performance microbenchmarks (google-benchmark): the hot paths of the
// pipeline — wire codec, spatial index, contact extraction, graph metrics,
// LSL interpretation and world stepping.
#include <benchmark/benchmark.h>

#include "analysis/contacts.hpp"
#include "analysis/graphs.hpp"
#include "analysis/spatial_index.hpp"
#include "lsl/interpreter.hpp"
#include "net/messages.hpp"
#include "util/rng.hpp"
#include "world/archetypes.hpp"

namespace slmob {
namespace {

Snapshot random_snapshot(std::size_t n, Rng& rng) {
  Snapshot snap;
  snap.time = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    snap.fixes.push_back({AvatarId{static_cast<std::uint32_t>(i + 1)},
                          {rng.uniform(0.0, 256.0), rng.uniform(0.0, 256.0), 22.0}});
  }
  return snap;
}

void BM_EncodeCoarseLocationUpdate(benchmark::State& state) {
  CoarseLocationUpdate update;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0)); ++i) {
    update.entries.push_back({i, 100, 100, 5});
  }
  const Message msg{update};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_message(msg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeCoarseLocationUpdate)->Arg(10)->Arg(100);

void BM_DecodeCoarseLocationUpdate(benchmark::State& state) {
  CoarseLocationUpdate update;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0)); ++i) {
    update.entries.push_back({i, 100, 100, 5});
  }
  const auto bytes = encode_message(Message{update});
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_message(bytes));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeCoarseLocationUpdate)->Arg(10)->Arg(100);

void BM_SpatialGridPairs(benchmark::State& state) {
  Rng rng(1);
  const Snapshot snap = random_snapshot(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<Vec3> positions;
  for (const auto& f : snap.fixes) positions.push_back(f.pos);
  for (auto _ : state) {
    const SpatialGrid grid(positions, 10.0);
    benchmark::DoNotOptimize(grid.pairs_within());
  }
}
BENCHMARK(BM_SpatialGridPairs)->Arg(50)->Arg(100)->Arg(400);

void BM_ContactExtraction(benchmark::State& state) {
  // A 1 h Dance Island ground-truth trace.
  auto world = make_world(LandArchetype::kDanceIsland, 1);
  Trace trace("bench", 10.0);
  for (int t = 0; t < 3600; ++t) {
    world->tick(t, 1.0);
    if (t % 10 == 0) {
      Snapshot snap;
      snap.time = t;
      for (const auto& [id, avatar] : world->avatars()) snap.fixes.push_back({id, avatar.pos});
      trace.add(std::move(snap));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_contacts(trace, 10.0));
  }
}
BENCHMARK(BM_ContactExtraction);

void BM_GraphMetricsPerSnapshot(benchmark::State& state) {
  Rng rng(2);
  const Snapshot snap = random_snapshot(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    const LosGraph graph(snap, 20.0);
    benchmark::DoNotOptimize(graph.largest_component_diameter());
    benchmark::DoNotOptimize(graph.mean_clustering());
  }
}
BENCHMARK(BM_GraphMetricsPerSnapshot)->Arg(50)->Arg(100);

void BM_WorldTickHour(benchmark::State& state) {
  for (auto _ : state) {
    auto world = make_world(LandArchetype::kIsleOfView, 3);
    for (int t = 0; t < 3600; ++t) world->tick(t, 1.0);
    benchmark::DoNotOptimize(world->concurrent());
  }
}
BENCHMARK(BM_WorldTickHour)->Unit(benchmark::kMillisecond);

class NullHost : public lsl::LslHost {
 public:
  void ll_say(std::int64_t, const std::string&) override {}
  void ll_owner_say(const std::string&) override {}
  void ll_set_timer_event(double) override {}
  void ll_sensor_repeat(const std::string&, const std::string&, std::int64_t, double,
                        double, double) override {}
  Vec3 ll_get_pos() override { return {}; }
  double ll_get_time() override { return 0.0; }
  std::int64_t ll_get_unix_time() override { return 0; }
  double ll_frand(double max) override { return max / 2; }
  std::string ll_http_request(const std::string&, const lsl::List&,
                              const std::string&) override {
    return "k";
  }
  std::int64_t ll_get_free_memory() override { return 16384; }
  std::size_t detected_count() const override { return 0; }
  Vec3 detected_pos(std::size_t) const override { return {}; }
  std::string detected_key(std::size_t) const override { return {}; }
  std::string detected_name(std::size_t) const override { return {}; }
};

void BM_LslFibonacci(benchmark::State& state) {
  NullHost host;
  for (auto _ : state) {
    lsl::Interpreter interp(R"(
      integer fib(integer n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
      integer g;
      default { state_entry() { g = fib(15); } }
    )", host);
    interp.start();
    benchmark::DoNotOptimize(interp.global("g"));
  }
}
BENCHMARK(BM_LslFibonacci)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slmob

BENCHMARK_MAIN();
