// Performance microbenchmarks (google-benchmark): the hot paths of the
// pipeline — wire codec, spatial index, contact extraction, graph metrics,
// LSL interpretation and world stepping.
#include <benchmark/benchmark.h>

#include "alloc_counter.hpp"
#include "analysis/contacts.hpp"
#include "analysis/graphs.hpp"
#include "analysis/pair_kernel.hpp"
#include "analysis/spatial_index.hpp"
#include "client/metaverse_client.hpp"
#include "lsl/interpreter.hpp"
#include "net/messages.hpp"
#include "server/sim_server.hpp"
#include "util/rng.hpp"
#include "world/archetypes.hpp"
#include "world/poi_gravity.hpp"

namespace slmob {
namespace {

Snapshot random_snapshot(std::size_t n, Rng& rng) {
  Snapshot snap;
  snap.time = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    snap.fixes.push_back({AvatarId{static_cast<std::uint32_t>(i + 1)},
                          {rng.uniform(0.0, 256.0), rng.uniform(0.0, 256.0), 22.0}});
  }
  return snap;
}

void BM_EncodeCoarseLocationUpdate(benchmark::State& state) {
  CoarseLocationUpdate update;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0)); ++i) {
    update.entries.push_back({i, 100, 100, 5});
  }
  const Message msg{update};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_message(msg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeCoarseLocationUpdate)->Arg(10)->Arg(100);

void BM_DecodeCoarseLocationUpdate(benchmark::State& state) {
  CoarseLocationUpdate update;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0)); ++i) {
    update.entries.push_back({i, 100, 100, 5});
  }
  const auto bytes = encode_message(Message{update});
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_message(bytes));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeCoarseLocationUpdate)->Arg(10)->Arg(100);

void BM_SpatialGridPairs(benchmark::State& state) {
  Rng rng(1);
  const Snapshot snap = random_snapshot(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<Vec3> positions;
  for (const auto& f : snap.fixes) positions.push_back(f.pos);
  for (auto _ : state) {
    const SpatialGrid grid(positions, 10.0);
    benchmark::DoNotOptimize(grid.pairs_within());
  }
}
BENCHMARK(BM_SpatialGridPairs)->Arg(50)->Arg(100)->Arg(400);

// The batched kernel on the same snapshots, reusing one kernel across
// iterations (the ProximityCache warm path). items = pairs found;
// allocs_per_run must sit at zero once the scratch is warm.
void BM_PairKernelPairs(benchmark::State& state) {
  Rng rng(1);
  const Snapshot snap = random_snapshot(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<Vec3> positions;
  for (const auto& f : snap.fixes) positions.push_back(f.pos);
  PairKernel kernel;
  kernel.run(positions, 10.0);  // warm
  const std::size_t pairs = kernel.hits().size();
  const std::size_t allocs_before = bench::allocation_count();
  for (auto _ : state) {
    kernel.run(positions, 10.0);
    benchmark::DoNotOptimize(kernel.hits().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(pairs));
  state.counters["allocs_per_run"] =
      static_cast<double>(bench::allocation_count() - allocs_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_PairKernelPairs)->Arg(50)->Arg(100)->Arg(400);

// One enumeration at the WiFi range plus single-pass classification into
// the Bluetooth and WiFi lists — the exact ProximityCache build step.
void BM_PairKernelClassify(benchmark::State& state) {
  Rng rng(1);
  const Snapshot snap = random_snapshot(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<Vec3> positions;
  for (const auto& f : snap.fixes) positions.push_back(f.pos);
  const std::vector<double> ranges{10.0, 80.0};
  PairKernel kernel;
  std::vector<PairKernel::PairList> lists(ranges.size());
  for (auto _ : state) {
    kernel.run(positions, ranges.back());
    for (auto& l : lists) l.clear();
    kernel.classify(ranges, lists.data());
    benchmark::DoNotOptimize(lists.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PairKernelClassify)->Arg(100)->Arg(400);

void BM_ContactExtraction(benchmark::State& state) {
  // A 1 h Dance Island ground-truth trace.
  auto world = make_world(LandArchetype::kDanceIsland, 1);
  Trace trace("bench", 10.0);
  for (int t = 0; t < 3600; ++t) {
    world->tick(t, 1.0);
    if (t % 10 == 0) {
      Snapshot snap;
      snap.time = t;
      const auto& store = world->avatars();
      for (std::size_t i = 0; i < store.size(); ++i) {
        snap.fixes.push_back({store.id(i), store.pos(i)});
      }
      trace.add(std::move(snap));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_contacts(trace, 10.0));
  }
}
BENCHMARK(BM_ContactExtraction);

void BM_GraphMetricsPerSnapshot(benchmark::State& state) {
  Rng rng(2);
  const Snapshot snap = random_snapshot(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    const LosGraph graph(snap, 20.0);
    benchmark::DoNotOptimize(graph.largest_component_diameter());
    benchmark::DoNotOptimize(graph.mean_clustering());
  }
}
BENCHMARK(BM_GraphMetricsPerSnapshot)->Arg(50)->Arg(100);

void BM_WorldTickHour(benchmark::State& state) {
  for (auto _ : state) {
    auto world = make_world(LandArchetype::kIsleOfView, 3);
    for (int t = 0; t < 3600; ++t) world->tick(t, 1.0);
    benchmark::DoNotOptimize(world->concurrent());
  }
}
BENCHMARK(BM_WorldTickHour)->Unit(benchmark::kMillisecond);

// Frozen-population world at a fixed concurrency: Dance Island mobility with
// arrivals silenced and sessions stretched past the bench horizon, so every
// iteration ticks exactly n avatars.
std::unique_ptr<World> frozen_world(std::size_t n, std::uint64_t seed) {
  Land land = make_land(LandArchetype::kDanceIsland);
  land.set_capacity(n + 8);
  PopulationParams pop = make_population(LandArchetype::kDanceIsland);
  pop.target_unique_users = 1e-6;
  pop.session_median = 1e9;
  pop.session_min = 1e9;
  pop.session_cap = 2e9;
  auto model = std::make_unique<PoiGravityModel>(
      land, make_mobility_params(LandArchetype::kDanceIsland));
  auto world = std::make_unique<World>(std::move(land), std::move(model), pop, seed);
  world->debug_prefill(0.0, n);
  return world;
}

// Per-avatar cost of the SoA hot path (items = avatar-ticks), plus the
// steady-state allocation rate, counted by the operator-new override that is
// compiled into this binary only.
void BM_WorldTickSteadyState(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto world = frozen_world(n, 7);
  Seconds now = 0.0;
  for (int t = 0; t < 10; ++t, now += 1.0) world->tick(now, 1.0);  // warm-up
  const std::size_t allocs_before = bench::allocation_count();
  for (auto _ : state) {
    world->tick(now, 1.0);
    now += 1.0;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["allocs_per_tick"] =
      static_cast<double>(bench::allocation_count() - allocs_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_WorldTickSteadyState)->Arg(1000)->Arg(10000);

// Warm packet-delivery path: coarse broadcast every tick to connected
// viewers, keepalives back, network delivery in between. allocs_per_tick
// must sit at zero once pools and scratch buffers are warm.
void BM_SimServerTickBroadcast(benchmark::State& state) {
  auto world = frozen_world(150, 9);
  SimNetwork net({}, 2);
  SimServerParams params;
  params.coarse_interval = 1.0;  // broadcast every tick
  SimServer server(net, *world, params);
  std::vector<std::unique_ptr<MetaverseClient>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<MetaverseClient>(
        net, server.address(), "bench" + std::to_string(i), "load"));
    clients.back()->login();
  }
  Seconds now = 0.0;
  for (int t = 0; t < 60; ++t, now += 1.0) {
    world->tick(now, 1.0);
    server.tick(now, 1.0);
    net.tick(now, 1.0);
    for (auto& c : clients) c->tick(now, 1.0);
  }
  const std::size_t allocs_before = bench::allocation_count();
  for (auto _ : state) {
    server.tick(now, 1.0);
    net.tick(now, 1.0);
    for (auto& c : clients) c->tick(now, 1.0);
    now += 1.0;
  }
  state.SetItemsProcessed(state.iterations() * 150);
  state.counters["allocs_per_tick"] =
      static_cast<double>(bench::allocation_count() - allocs_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_SimServerTickBroadcast);

class NullHost : public lsl::LslHost {
 public:
  void ll_say(std::int64_t, const std::string&) override {}
  void ll_owner_say(const std::string&) override {}
  void ll_set_timer_event(double) override {}
  void ll_sensor_repeat(const std::string&, const std::string&, std::int64_t, double,
                        double, double) override {}
  Vec3 ll_get_pos() override { return {}; }
  double ll_get_time() override { return 0.0; }
  std::int64_t ll_get_unix_time() override { return 0; }
  double ll_frand(double max) override { return max / 2; }
  std::string ll_http_request(const std::string&, const lsl::List&,
                              const std::string&) override {
    return "k";
  }
  std::int64_t ll_get_free_memory() override { return 16384; }
  std::size_t detected_count() const override { return 0; }
  Vec3 detected_pos(std::size_t) const override { return {}; }
  std::string detected_key(std::size_t) const override { return {}; }
  std::string detected_name(std::size_t) const override { return {}; }
};

void BM_LslFibonacci(benchmark::State& state) {
  NullHost host;
  for (auto _ : state) {
    lsl::Interpreter interp(R"(
      integer fib(integer n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
      integer g;
      default { state_entry() { g = fib(15); } }
    )", host);
    interp.start();
    benchmark::DoNotOptimize(interp.global("g"));
  }
}
BENCHMARK(BM_LslFibonacci)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slmob

BENCHMARK_MAIN();
