// Figure 3: spatial distribution of users — CDF of the number of users per
// 20 m x 20 m cell. Hot-spot lands (Dance Island) show cells with tens of
// users while the bulk of the land is empty.
#include <cstdio>

#include "bench_common.hpp"

using namespace slmob;
using namespace slmob::bench;

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::parse(argc, argv);
  prewarm_lands({std::begin(kAllArchetypes), std::end(kAllArchetypes)}, options);
  print_title("Figure 3: zone occupation CDF (L = 20 m)",
              "La & Michiardi 2008, Fig. 3");

  std::printf("%-14s %6s %10s\n", "land", "users", "F(x)");
  for (const LandArchetype archetype : kAllArchetypes) {
    const ExperimentResults& res = land_results(archetype, options);
    const ZoneAnalysis& z = res.zones;
    for (int users = 0; users <= 25; ++users) {
      std::printf("%-14s %6d %10.4f\n", res.trace.land_name().c_str(), users,
                  z.occupancy.cdf(static_cast<double>(users)));
    }
  }

  std::printf("\n# qualitative checks (paper: large empty fraction; Dance has\n");
  std::printf("# hot-spots with several tens of users)\n");
  for (const LandArchetype archetype : kAllArchetypes) {
    const ExperimentResults& res = land_results(archetype, options);
    std::printf("%-14s empty cells=%5.1f%%  max occupancy=%zu users\n",
                res.trace.land_name().c_str(), res.zones.empty_fraction * 100.0,
                res.zones.max_occupancy);
  }

  std::printf("\n# mean-occupancy heat map (Dance Island, 13x13 cells, x10)\n");
  const ExperimentResults& dance = land_results(LandArchetype::kDanceIsland, options);
  const auto side = dance.zones.cells_per_side;
  for (std::size_t row = side; row-- > 0;) {
    for (std::size_t col = 0; col < side; ++col) {
      const double mean = dance.zones.mean_per_cell[row * side + col];
      const int shade = static_cast<int>(mean * 10.0);
      std::printf("%4d", shade);
    }
    std::printf("\n");
  }
  return 0;
}
