// Parallel-pipeline scaling bench: wall-clock of the full Isle-of-View
// analysis (CT/ICT/FT contacts, LoS graph metrics, zones, trips at 10 m and
// 80 m) versus analysis thread count, written to BENCH_analysis.json so the
// perf trajectory is tracked across PRs.
//
// Two baselines are timed alongside the thread sweep:
//  * "legacy": the pre-cache pipeline shape — every analysis rebuilds its
//    own per-snapshot proximity structure, strictly sequentially (what the
//    seed revision of this repo did);
//  * threads=1: the shared-ProximityCache pipeline on a single thread,
//    isolating the algorithmic win from the parallel win.
//
// The sweep asserts that every thread count reproduces the single-thread
// results exactly (same ECDF samples, same interval lists) before timing is
// trusted.
//
//   parallel_scaling [--hours H] [--seed S] [--quick] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "util/thread_pool.hpp"

using namespace slmob;
using namespace slmob::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Faithful replica of the seed-revision analysis pipeline, so the speedup
// numbers compare against what this repo actually shipped before the shared
// ProximityCache: a fresh hash-map grid per snapshot per analysis per range,
// unsorted adjacency lists with linear-scan clustering, a re-allocated BFS
// per eccentricity, and std::map bookkeeping in the contact tracker. Kept
// local to the bench so the library itself stays on the fast path.
namespace seed {

using IndexPair = std::pair<std::uint32_t, std::uint32_t>;

class Grid {
 public:
  Grid(const std::vector<Vec3>& positions, double radius)
      : positions_(positions), radius_(radius), cell_(radius) {
    for (std::uint32_t i = 0; i < positions_.size(); ++i) {
      cells_[key_for(positions_[i])].push_back(i);
    }
  }

  [[nodiscard]] std::vector<IndexPair> pairs_within() const {
    std::vector<IndexPair> out;
    for (std::uint32_t i = 0; i < positions_.size(); ++i) {
      const auto cx = static_cast<std::int32_t>(std::floor(positions_[i].x / cell_));
      const auto cy = static_cast<std::int32_t>(std::floor(positions_[i].y / cell_));
      for (std::int32_t dx = -1; dx <= 1; ++dx) {
        for (std::int32_t dy = -1; dy <= 1; ++dy) {
          const auto it = cells_.find(pack(cx + dx, cy + dy));
          if (it == cells_.end()) continue;
          for (const std::uint32_t j : it->second) {
            if (j <= i) continue;
            if (positions_[i].distance2d_to(positions_[j]) <= radius_) {
              out.emplace_back(i, j);
            }
          }
        }
      }
    }
    return out;
  }

 private:
  using CellKey = std::uint64_t;
  [[nodiscard]] static CellKey pack(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }
  [[nodiscard]] CellKey key_for(const Vec3& p) const {
    return pack(static_cast<std::int32_t>(std::floor(p.x / cell_)),
                static_cast<std::int32_t>(std::floor(p.y / cell_)));
  }

  const std::vector<Vec3>& positions_;
  double radius_;
  double cell_;
  std::unordered_map<CellKey, std::vector<std::uint32_t>> cells_;
};

class Graph {
 public:
  Graph(const Snapshot& snapshot, double range) {
    adj_.resize(snapshot.fixes.size());
    std::vector<Vec3> positions;
    positions.reserve(snapshot.fixes.size());
    for (const auto& fix : snapshot.fixes) positions.push_back(fix.pos);
    if (positions.empty()) return;
    const Grid grid(positions, range);
    for (const auto& [i, j] : grid.pairs_within()) {
      adj_[i].push_back(j);
      adj_[j].push_back(i);
    }
  }

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }
  [[nodiscard]] std::size_t degree(std::size_t i) const { return adj_.at(i).size(); }

  [[nodiscard]] std::vector<std::vector<std::uint32_t>> components() const {
    std::vector<std::vector<std::uint32_t>> out;
    std::vector<char> visited(adj_.size(), 0);
    for (std::uint32_t start = 0; start < adj_.size(); ++start) {
      if (visited[start]) continue;
      std::vector<std::uint32_t> comp;
      std::deque<std::uint32_t> queue{start};
      visited[start] = 1;
      while (!queue.empty()) {
        const std::uint32_t u = queue.front();
        queue.pop_front();
        comp.push_back(u);
        for (const std::uint32_t v : adj_[u]) {
          if (!visited[v]) {
            visited[v] = 1;
            queue.push_back(v);
          }
        }
      }
      out.push_back(std::move(comp));
    }
    return out;
  }

  [[nodiscard]] std::size_t eccentricity(std::uint32_t start) const {
    std::vector<std::int32_t> dist(adj_.size(), -1);
    std::deque<std::uint32_t> queue{start};
    dist[start] = 0;
    std::size_t ecc = 0;
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop_front();
      ecc = std::max(ecc, static_cast<std::size_t>(dist[u]));
      for (const std::uint32_t v : adj_[u]) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          queue.push_back(v);
        }
      }
    }
    return ecc;
  }

  [[nodiscard]] std::size_t largest_component_diameter() const {
    const auto comps = components();
    if (comps.empty()) return 0;
    const auto largest = std::max_element(
        comps.begin(), comps.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    std::size_t diameter = 0;
    for (const std::uint32_t u : *largest) {
      diameter = std::max(diameter, eccentricity(u));
    }
    return diameter;
  }

  [[nodiscard]] double clustering(std::size_t i) const {
    const auto& nbrs = adj_.at(i);
    const std::size_t k = nbrs.size();
    if (k < 2) return 0.0;
    std::size_t links = 0;
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a + 1; b < k; ++b) {
        const auto& na = adj_[nbrs[a]];
        if (std::find(na.begin(), na.end(), nbrs[b]) != na.end()) ++links;
      }
    }
    return 2.0 * static_cast<double>(links) /
           (static_cast<double>(k) * static_cast<double>(k - 1));
  }

  [[nodiscard]] double mean_clustering() const {
    if (adj_.empty()) return 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < adj_.size(); ++i) total += clustering(i);
    return total / static_cast<double>(adj_.size());
  }

 private:
  std::vector<std::vector<std::uint32_t>> adj_;
};

using PairKey = std::uint64_t;

PairKey pair_key(AvatarId a, AvatarId b) {
  const auto lo = std::min(a.value, b.value);
  const auto hi = std::max(a.value, b.value);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

struct OpenContact {
  Seconds start;
  Seconds last_seen;
};

ContactAnalysis analyze_contacts(const Trace& trace, double range) {
  ContactAnalysis out;
  out.range = range;
  const Seconds tau = trace.sampling_interval();

  std::unordered_map<PairKey, OpenContact> open;
  std::unordered_map<PairKey, Seconds> last_contact_end;
  std::map<AvatarId, Seconds> first_seen;
  std::map<AvatarId, Seconds> first_contact;

  const auto close_contact = [&](PairKey key, const OpenContact& contact) {
    const Seconds end = contact.last_seen + tau;
    const auto a = AvatarId{static_cast<std::uint32_t>(key >> 32)};
    const auto b = AvatarId{static_cast<std::uint32_t>(key & 0xffffffffu)};
    out.intervals.push_back({a, b, contact.start, end});
    out.contact_times.add(end - contact.start);
    if (const auto prev = last_contact_end.find(key); prev != last_contact_end.end()) {
      out.inter_contact_times.add(contact.start - prev->second);
    }
    last_contact_end[key] = end;
  };

  for (const auto& snap : trace.snapshots()) {
    for (const auto& fix : snap.fixes) {
      first_seen.try_emplace(fix.id, snap.time);
    }

    std::vector<Vec3> positions;
    positions.reserve(snap.fixes.size());
    for (const auto& fix : snap.fixes) positions.push_back(fix.pos);
    const Grid grid(positions, range);
    const auto pairs = grid.pairs_within();

    std::vector<PairKey> current;
    current.reserve(pairs.size());
    for (const auto& [i, j] : pairs) {
      const AvatarId a = snap.fixes[i].id;
      const AvatarId b = snap.fixes[j].id;
      const PairKey key = pair_key(a, b);
      current.push_back(key);
      auto [it, inserted] = open.try_emplace(key, OpenContact{snap.time, snap.time});
      if (!inserted) it->second.last_seen = snap.time;
      first_contact.try_emplace(a, snap.time);
      first_contact.try_emplace(b, snap.time);
    }
    std::sort(current.begin(), current.end());

    for (auto it = open.begin(); it != open.end();) {
      if (it->second.last_seen < snap.time &&
          !std::binary_search(current.begin(), current.end(), it->first)) {
        close_contact(it->first, it->second);
        it = open.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& [key, contact] : open) close_contact(key, contact);

  std::sort(out.intervals.begin(), out.intervals.end(),
            [](const ContactInterval& x, const ContactInterval& y) {
              return x.start < y.start;
            });

  out.users_seen = first_seen.size();
  out.users_with_contact = first_contact.size();
  for (const auto& [id, t_contact] : first_contact) {
    const Seconds t_seen = first_seen.at(id);
    const Seconds ft = t_contact - t_seen;
    out.first_contact_times.add(ft > 0.0 ? ft : tau / 2.0);
  }
  return out;
}

GraphMetrics analyze_graphs(const Trace& trace, double range) {
  GraphMetrics out;
  out.range = range;
  std::size_t isolated = 0;
  std::size_t degree_samples = 0;
  for (const auto& snap : trace.snapshots()) {
    if (snap.fixes.empty()) continue;
    const Graph graph(snap, range);
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      const auto deg = static_cast<double>(graph.degree(i));
      out.degrees.add(deg);
      ++degree_samples;
      if (graph.degree(i) == 0) ++isolated;
    }
    out.diameters.add(static_cast<double>(graph.largest_component_diameter()));
    out.clustering.add(graph.mean_clustering());
    ++out.snapshots_analyzed;
  }
  out.isolated_fraction =
      degree_samples == 0 ? 0.0
                          : static_cast<double>(isolated) / static_cast<double>(degree_samples);
  return out;
}

}  // namespace seed

// The seed pipeline: per-range contact and graph analyses each building
// their own per-snapshot grid, run back to back on one thread.
ExperimentResults legacy_analyze(const Trace& trace, const std::vector<double>& ranges) {
  ExperimentResults results;
  results.summary = trace.summary();
  for (const double r : ranges) {
    results.contacts.emplace(r, seed::analyze_contacts(trace, r));
    results.graphs.emplace(r, seed::analyze_graphs(trace, r));
  }
  results.zones = analyze_zones(trace);
  results.trips = analyze_trips(trace);
  return results;
}

bool same_ecdf(const Ecdf& a, const Ecdf& b) {
  const auto sa = a.sorted();
  const auto sb = b.sorted();
  if (sa.size() != sb.size()) return false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i] != sb[i]) return false;
  }
  return true;
}

bool same_results(const ExperimentResults& a, const ExperimentResults& b) {
  for (const auto& [r, ca] : a.contacts) {
    const auto& cb = b.contacts.at(r);
    if (ca.intervals.size() != cb.intervals.size()) return false;
    for (std::size_t i = 0; i < ca.intervals.size(); ++i) {
      if (ca.intervals[i].a != cb.intervals[i].a || ca.intervals[i].b != cb.intervals[i].b ||
          ca.intervals[i].start != cb.intervals[i].start ||
          ca.intervals[i].end != cb.intervals[i].end) {
        return false;
      }
    }
    if (!same_ecdf(ca.contact_times, cb.contact_times) ||
        !same_ecdf(ca.inter_contact_times, cb.inter_contact_times) ||
        !same_ecdf(ca.first_contact_times, cb.first_contact_times)) {
      return false;
    }
  }
  for (const auto& [r, ga] : a.graphs) {
    const auto& gb = b.graphs.at(r);
    if (!same_ecdf(ga.degrees, gb.degrees) || !same_ecdf(ga.diameters, gb.diameters) ||
        !same_ecdf(ga.clustering, gb.clustering) ||
        ga.isolated_fraction != gb.isolated_fraction) {
      return false;
    }
  }
  return same_ecdf(a.zones.occupancy, b.zones.occupancy) &&
         same_ecdf(a.trips.travel_lengths, b.trips.travel_lengths);
}

// Distribution-level equality against the seed pipeline: the cache pipeline
// tie-breaks equal-start intervals differently, so compare interval multisets
// and sorted ECDF samples instead of raw sequences.
bool same_distributions(const ExperimentResults& a, const ExperimentResults& b) {
  const auto interval_key = [](const ContactInterval& x) {
    return std::make_tuple(x.start, x.end, x.a.value, x.b.value);
  };
  for (const auto& [r, ca] : a.contacts) {
    const auto it = b.contacts.find(r);
    if (it == b.contacts.end()) return false;
    const auto& cb = it->second;
    auto ia = ca.intervals;
    auto ib = cb.intervals;
    const auto by_key = [&](const ContactInterval& x, const ContactInterval& y) {
      return interval_key(x) < interval_key(y);
    };
    std::sort(ia.begin(), ia.end(), by_key);
    std::sort(ib.begin(), ib.end(), by_key);
    if (ia.size() != ib.size()) return false;
    for (std::size_t i = 0; i < ia.size(); ++i) {
      if (interval_key(ia[i]) != interval_key(ib[i])) return false;
    }
    if (!same_ecdf(ca.contact_times, cb.contact_times) ||
        !same_ecdf(ca.inter_contact_times, cb.inter_contact_times) ||
        !same_ecdf(ca.first_contact_times, cb.first_contact_times) ||
        ca.users_seen != cb.users_seen || ca.users_with_contact != cb.users_with_contact) {
      return false;
    }
  }
  for (const auto& [r, ga] : a.graphs) {
    const auto it = b.graphs.find(r);
    if (it == b.graphs.end()) return false;
    const auto& gb = it->second;
    if (!same_ecdf(ga.degrees, gb.degrees) || !same_ecdf(ga.diameters, gb.diameters) ||
        !same_ecdf(ga.clustering, gb.clustering) ||
        ga.isolated_fraction != gb.isolated_fraction) {
      return false;
    }
  }
  return same_ecdf(a.zones.occupancy, b.zones.occupancy) &&
         same_ecdf(a.trips.travel_lengths, b.trips.travel_lengths);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::parse(argc, argv);
  std::string out_path = "BENCH_analysis.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[i + 1];
  }
  print_title("Parallel analysis pipeline scaling (Isle of View, 10 m + 80 m)",
              "infrastructure bench (no paper figure)");

  // Collect the trace once; the simulation stays single-threaded and is not
  // part of the timed region.
  const ExperimentResults& base = land_results(LandArchetype::kIsleOfView, options);
  const Trace& trace = base.trace;
  const std::vector<double> ranges{kBluetoothRange, kWifiRange};
  std::printf("trace: %zu snapshots, %zu unique users, %.1f avg concurrent\n",
              trace.size(), base.summary.unique_users, base.summary.avg_concurrent);

  const auto t_legacy = std::chrono::steady_clock::now();
  const ExperimentResults legacy = legacy_analyze(trace, ranges);
  const double legacy_seconds = seconds_since(t_legacy);
  std::printf("%-24s %8.3f s\n", "legacy (seed pipeline)", legacy_seconds);

  std::vector<std::size_t> thread_counts{1, 2, 4};
  const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  const std::size_t default_threads = ThreadPool::default_concurrency();
  if (default_threads > 4) thread_counts.push_back(default_threads);

  struct Row {
    std::size_t threads;
    double seconds;
    bool identical;
    bool published;  // timing published only when threads <= hardware_concurrency
  };
  std::vector<Row> rows;
  double t1_seconds = 0.0;
  ExperimentResults reference;
  for (const std::size_t threads : thread_counts) {
    const auto t0 = std::chrono::steady_clock::now();
    ExperimentResults res = analyze_trace(trace, ranges, kDefaultLandSize, threads);
    const double elapsed = seconds_since(t0);
    bool identical = true;
    if (threads == thread_counts.front()) {
      t1_seconds = elapsed;
      reference = std::move(res);
    } else {
      identical = same_results(reference, res);
    }
    // Oversubscribed counts still run for the determinism check, but their
    // wall-clock is scheduler noise on this machine — a 4-thread "speedup"
    // of 0.96x on a 1-core runner is not a regression signal — so the JSON
    // records them as skipped instead of as timing rows.
    const bool published = threads <= hw;
    rows.push_back({threads, elapsed, identical, published});
    std::printf("%-24s %8.3f s   speedup vs legacy %5.2fx   identical %s%s\n",
                ("threads=" + std::to_string(threads)).c_str(), elapsed,
                elapsed > 0.0 ? legacy_seconds / elapsed : 0.0,
                identical ? "yes" : "NO",
                published ? "" : "   (timing skipped: exceeds hardware_concurrency)");
  }

  const bool all_identical =
      std::all_of(rows.begin(), rows.end(), [](const Row& r) { return r.identical; });
  if (!all_identical) {
    std::fprintf(stderr, "ERROR: results differ across thread counts\n");
  }
  const bool matches_seed = same_distributions(reference, legacy);
  if (!matches_seed) {
    std::fprintf(stderr, "ERROR: cache pipeline distributions differ from seed pipeline\n");
  }

  std::string body;
  appendf(body, "{\n");
  appendf(body, "    \"land\": \"isle_of_view\",\n");
  appendf(body, "    \"hours\": %.3f,\n", options.hours);
  appendf(body, "    \"seed\": %llu,\n", static_cast<unsigned long long>(options.seed));
  appendf(body, "    \"snapshots\": %zu,\n", trace.size());
  appendf(body, "    \"unique_users\": %zu,\n", base.summary.unique_users);
  appendf(body, "    \"hardware_concurrency\": %zu,\n", hw);
  appendf(body, "    \"default_concurrency\": %zu,\n", default_threads);
  appendf(body, "    \"legacy_seconds\": %.6f,\n", legacy_seconds);
  appendf(body, "    \"deterministic_across_threads\": %s,\n",
          all_identical ? "true" : "false");
  appendf(body, "    \"matches_seed_distributions\": %s,\n",
          matches_seed ? "true" : "false");
  std::vector<const Row*> published;
  std::vector<const Row*> skipped;
  for (const Row& r : rows) (r.published ? published : skipped).push_back(&r);
  appendf(body, "    \"results\": [\n");
  for (std::size_t i = 0; i < published.size(); ++i) {
    const Row& r = *published[i];
    // Explicit ThreadPool(n) is never clamped, so requested == used.
    appendf(body,
            "      {\"threads\": %zu, \"threads_used\": %zu, \"seconds\": %.6f, "
            "\"speedup_vs_legacy\": %.3f, \"speedup_vs_1thread\": %.3f}%s\n",
            r.threads, r.threads, r.seconds,
            r.seconds > 0.0 ? legacy_seconds / r.seconds : 0.0,
            r.seconds > 0.0 ? t1_seconds / r.seconds : 0.0,
            i + 1 == published.size() ? "" : ",");
  }
  appendf(body, "    ],\n");
  appendf(body, "    \"skipped\": [\n");
  for (std::size_t i = 0; i < skipped.size(); ++i) {
    const Row& r = *skipped[i];
    appendf(body,
            "      {\"threads\": %zu, \"identical\": %s, "
            "\"reason\": \"exceeds hardware_concurrency (%zu)\"}%s\n",
            r.threads, r.identical ? "true" : "false", hw,
            i + 1 == skipped.size() ? "" : ",");
  }
  appendf(body, "    ]\n  }");
  update_bench_json(out_path, "parallel_scaling", body);
  std::printf("wrote %s\n", out_path.c_str());
  return (all_identical && matches_seed) ? 0 : 1;
}
