// chaos_recall: scores measurement robustness under scripted fault
// scenarios.
//
// For each named chaos scenario the crawler measures the same 6 h Isle of
// View run that a fault-free crawler measures, and the bench scores how much
// of the ground truth survives:
//  * recall          — fraction of ground-truth (snapshot, avatar) fixes the
//                      crawler captured, over the whole run;
//  * covered_recall  — same, but only over time the trace claims as covered
//                      (outside recorded gaps): high covered recall with low
//                      raw recall means the gaps are honest;
//  * ks_ct / ks_ict  — KS distance between the faulty run's censored CT/ICT
//                      distributions and the fault-free crawler's, at the
//                      Bluetooth range (distribution distortion, not just
//                      sample loss).
//
// Every scenario is run twice with the same seed; the bench asserts the two
// runs agree bit-for-bit on every score (deterministic fault injection) and
// writes all scores to BENCH_chaos.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/experiment.hpp"
#include "net/fault_schedule.hpp"
#include "stats/ks.hpp"

namespace {

using namespace slmob;

struct ScenarioScore {
  std::string name;
  double recall{0.0};
  double covered_recall{0.0};
  std::size_t gap_count{0};
  double gap_seconds{0.0};
  std::size_t snapshots{0};
  std::uint64_t relogins{0};
  double ks_ct{0.0};
  double ks_ict{0.0};

  bool operator==(const ScenarioScore&) const = default;
};

// Fraction of ground-truth fixes the crawler captured. A ground-truth fix
// (t, avatar) counts as captured when some crawler snapshot within half a
// sampling interval of t contains the avatar. `covered_only` restricts the
// denominator to ground-truth instants outside the trace's recorded gaps.
double recall_vs_truth(const Trace& measured, const Trace& truth, bool covered_only) {
  const Seconds tau = truth.sampling_interval();
  std::size_t total = 0;
  std::size_t matched = 0;
  std::size_t m = 0;  // advancing cursor into measured snapshots
  const auto& snaps = measured.snapshots();
  for (const auto& gt : truth.snapshots()) {
    if (covered_only && !measured.covered_at(gt.time)) continue;
    while (m < snaps.size() && snaps[m].time < gt.time - tau / 2.0) ++m;
    const bool have_window = m < snaps.size() && snaps[m].time < gt.time + tau / 2.0;
    std::unordered_set<std::uint32_t> present;
    if (have_window) {
      for (const auto& fix : snaps[m].fixes) present.insert(fix.id.value);
    }
    for (const auto& fix : gt.fixes) {
      ++total;
      if (present.contains(fix.id.value)) ++matched;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(matched) / static_cast<double>(total);
}

ExperimentResults run_scenario(const std::string& scenario, double hours,
                               std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.archetype = LandArchetype::kIsleOfView;
  cfg.duration = hours * kSecondsPerHour;
  cfg.seed = seed;
  cfg.ranges = {kBluetoothRange};
  cfg.fault_scenario = scenario;
  cfg.testbed.with_ground_truth = true;
  cfg.analysis_threads = 0;
  return run_experiment(cfg);
}

ScenarioScore score_scenario(const std::string& scenario, double hours,
                             std::uint64_t seed, const ExperimentResults& baseline) {
  const ExperimentResults res = run_scenario(scenario, hours, seed);
  const Trace& truth = *res.ground_truth;

  ScenarioScore score;
  score.name = scenario;
  score.recall = recall_vs_truth(res.trace, truth, /*covered_only=*/false);
  score.covered_recall = recall_vs_truth(res.trace, truth, /*covered_only=*/true);
  score.gap_count = res.summary.gap_count;
  score.gap_seconds = res.summary.gap_seconds;
  score.snapshots = res.summary.snapshot_count;
  score.relogins = res.crawler_stats.relogins;
  score.ks_ct = ks_distance(res.contacts.at(kBluetoothRange).contact_times,
                            baseline.contacts.at(kBluetoothRange).contact_times);
  score.ks_ict = ks_distance(res.contacts.at(kBluetoothRange).inter_contact_times,
                             baseline.contacts.at(kBluetoothRange).inter_contact_times);
  return score;
}

void write_json(const std::vector<ScenarioScore>& scores, double baseline_recall,
                double hours, std::uint64_t seed, bool deterministic,
                const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"land\": \"Isle Of View\",\n");
  std::fprintf(f, "  \"hours\": %.2f,\n", hours);
  std::fprintf(f, "  \"seed\": %llu,\n", static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"deterministic\": %s,\n", deterministic ? "true" : "false");
  std::fprintf(f, "  \"baseline_recall\": %.6f,\n", baseline_recall);
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const ScenarioScore& s = scores[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"recall\": %.6f, \"covered_recall\": %.6f, "
                 "\"gap_count\": %zu, \"gap_seconds\": %.1f, \"snapshots\": %zu, "
                 "\"relogins\": %llu, \"ks_ct\": %.6f, \"ks_ict\": %.6f}%s\n",
                 s.name.c_str(), s.recall, s.covered_recall, s.gap_count, s.gap_seconds,
                 s.snapshots, static_cast<unsigned long long>(s.relogins), s.ks_ct,
                 s.ks_ict, i + 1 < scores.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  // CI gates parse this JSON; a silently truncated write must fail loudly.
  if (std::fflush(f) != 0 || std::fclose(f) != 0) {
    std::fprintf(stderr, "error writing %s\n", path);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  double hours = 6.0;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
      hours = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      hours = 2.0;
    }
  }

  std::printf("chaos_recall: %0.1f h Isle Of View, seed %llu\n", hours,
              static_cast<unsigned long long>(seed));
  std::fprintf(stderr, "[bench] fault-free baseline...\n");
  const ExperimentResults baseline = run_scenario("none", hours, seed);
  const double baseline_recall =
      recall_vs_truth(baseline.trace, *baseline.ground_truth, false);

  const std::vector<std::string> scenarios = {"blackouts", "burst-loss",
                                              "region-flaps", "chaos"};
  std::vector<ScenarioScore> scores;
  bool deterministic = true;
  for (const std::string& scenario : scenarios) {
    std::fprintf(stderr, "[bench] scenario %s (run 1/2)...\n", scenario.c_str());
    ScenarioScore first = score_scenario(scenario, hours, seed, baseline);
    std::fprintf(stderr, "[bench] scenario %s (run 2/2)...\n", scenario.c_str());
    const ScenarioScore second = score_scenario(scenario, hours, seed, baseline);
    if (!(first == second)) {
      std::fprintf(stderr, "FAIL: scenario %s differs between identical runs\n",
                   scenario.c_str());
      deterministic = false;
    }
    scores.push_back(std::move(first));
  }

  std::printf("%-14s %8s %8s %6s %10s %10s %8s %8s\n", "scenario", "recall", "cov_rec",
              "gaps", "gap_sec", "relogins", "ks_ct", "ks_ict");
  std::printf("%-14s %8.4f %8s %6s %10s %10s %8s %8s\n", "none", baseline_recall, "-",
              "0", "0", "-", "-", "-");
  for (const ScenarioScore& s : scores) {
    std::printf("%-14s %8.4f %8.4f %6zu %10.0f %10llu %8.4f %8.4f\n", s.name.c_str(),
                s.recall, s.covered_recall, s.gap_count, s.gap_seconds,
                static_cast<unsigned long long>(s.relogins), s.ks_ct, s.ks_ict);
  }

  write_json(scores, baseline_recall, hours, seed, deterministic, "BENCH_chaos.json");
  std::printf("wrote BENCH_chaos.json (%s)\n",
              deterministic ? "deterministic" : "NON-DETERMINISTIC");
  return deterministic ? 0 : 1;
}
