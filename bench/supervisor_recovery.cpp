// supervisor_recovery: scores the self-healing run supervisor.
//
// Reference: plain run_sharded over the 3-land shard-chaos configs — shard
// fault windows are invisible outside the supervisor, so the same configs
// run uninterrupted ARE the ground truth. Against it the bench gates:
//  * digests_match     — the supervised run (3 injected crashes + 1 stall
//                        per shard) emits bit-identical traces at 1/2/4
//                        worker threads;
//  * max_frames_lost   — per injected crash, the journal trails the
//                        baseline capture by at most one frame (the
//                        snapshot in flight): baseline snapshots with
//                        time <= crash time minus snapshots journaled at
//                        the fault;
//  * max_recovery_ms   — every contained failure that resumed did so within
//                        a bounded wall time (detect -> backoff -> replay ->
//                        first completed segment);
//  * failed_partial    — a shard that exhausts its retry budget degrades:
//                        survivors still match the reference bit-for-bit and
//                        the salvaged partial trace analyzes cleanly with
//                        its unrun tail censored as a trailing gap.
//
// Results go to BENCH_supervision.json; exits non-zero when any gate fails.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/supervisor.hpp"
#include "trace/serialize.hpp"
#include "util/bytes.hpp"

namespace {

using namespace slmob;

// Per-supervised-run score; the failed-partial cell reuses the same record
// with the degradation fields filled in.
struct CellScore {
  std::string cell;
  std::size_t threads{0};
  bool all_completed{false};
  bool digests_match{false};
  std::uint64_t crashes{0};
  std::uint64_t stalls{0};
  std::uint64_t watchdog_aborts{0};
  std::uint64_t restarts{0};
  std::uint64_t max_frames_lost{0};
  double max_recovery_ms{0.0};
  // failed-partial cell only:
  bool failed_partial{false};
  bool survivors_match{false};
  bool partial_analysis_ok{false};
  std::size_t partial_snapshots{0};
  double partial_gap_end{0.0};
  bool pass{false};
};

std::vector<ExperimentConfig> three_lands(const std::string& faults, Seconds duration,
                                          std::uint64_t seed) {
  const LandArchetype lands[] = {LandArchetype::kApfelLand, LandArchetype::kDanceIsland,
                                 LandArchetype::kIsleOfView};
  std::vector<ExperimentConfig> shards;
  for (std::size_t i = 0; i < 3; ++i) {
    ExperimentConfig cfg;
    cfg.archetype = lands[i];
    cfg.duration = duration;
    cfg.seed = seed + i;
    cfg.fault_scenario = faults;
    cfg.ranges = {};
    shards.push_back(cfg);
  }
  return shards;
}

std::vector<std::uint32_t> digests(const std::vector<ShardResult>& results) {
  std::vector<std::uint32_t> out;
  for (const auto& r : results) out.push_back(crc32(encode_trace(r.trace)));
  return out;
}

std::string fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "slmob_supervision" / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

// Fast-recovery supervision knobs (none affect trace content): small
// checkpoint segments bound replay, an aggressive watchdog bounds stall
// detection, near-zero backoff bounds the heal loop.
SupervisorOptions bench_options(const std::string& dir, std::size_t threads) {
  SupervisorOptions opt;
  opt.checkpoint_dir = dir;
  opt.checkpoint_every = 150.0;
  opt.heartbeat_every = 50.0;
  opt.watchdog_timeout_ms = 1000.0;
  opt.backoff_base_ms = 2.0;
  opt.backoff_max_ms = 20.0;
  opt.threads = threads;
  return opt;
}

std::size_t snapshots_at_or_before(const Trace& trace, Seconds t) {
  std::size_t n = 0;
  for (const auto& snap : trace.snapshots()) n += snap.time <= t + 1e-9;
  return n;
}

// One supervised chaos run at `threads` workers, gated against the
// uninterrupted reference.
CellScore score_supervised(const std::vector<ExperimentConfig>& shards,
                           const std::vector<ShardResult>& baseline,
                           const std::vector<std::uint32_t>& reference,
                           std::size_t threads, double recovery_bound_ms) {
  CellScore s;
  s.cell = "supervised_t" + std::to_string(threads);
  s.threads = threads;

  const SupervisedRun run =
      run_supervised(shards, bench_options(fresh_dir(s.cell), threads));

  s.all_completed = run.all_completed();
  s.digests_match = digests(run.shards) == reference;
  bool frames_ok = true;
  bool recovery_ok = true;
  for (const auto& h : run.health) {
    s.crashes += h.crashes;
    s.stalls += h.stalls;
    s.watchdog_aborts += h.watchdog_aborts;
    s.restarts += h.restarts;
    for (const auto& ev : h.events) {
      if (ev.kind == ShardFaultEvent::Kind::kInjectedCrash) {
        // Journal durability across the crash: at most the frame in flight
        // separates what was journaled from what the uninterrupted run had
        // captured by the same virtual instant.
        const std::size_t captured =
            snapshots_at_or_before(baseline[h.index].trace, ev.at);
        const std::uint64_t lost =
            captured > ev.snapshots_at_fault
                ? captured - ev.snapshots_at_fault
                : 0;
        s.max_frames_lost = std::max(s.max_frames_lost, lost);
        frames_ok = frames_ok && lost <= 1;
      }
      if (ev.recovery_ms >= 0.0) {
        s.max_recovery_ms = std::max(s.max_recovery_ms, ev.recovery_ms);
        recovery_ok = recovery_ok && ev.recovery_ms <= recovery_bound_ms;
      } else if (ev.kind != ShardFaultEvent::Kind::kWatchdogAbort) {
        recovery_ok = false;  // a contained failure that never resumed
      }
    }
  }
  // shard-chaos scripts 3 crashes + 1 stall per shard, all of which must
  // have been exercised.
  s.pass = s.all_completed && s.digests_match && s.crashes >= 9 && s.stalls >= 3 &&
           frames_ok && recovery_ok;
  return s;
}

// Budget-exhaustion cell: only shard 1 carries crash windows and gets a
// budget of one restart, so its second crash is fatal. The run must degrade,
// not fail.
CellScore score_failed_partial(Seconds duration, std::uint64_t seed) {
  CellScore s;
  s.cell = "failed_partial";
  s.threads = 2;

  auto shards = three_lands("none", duration, seed);
  shards[1].testbed.faults.add(
      {FaultKind::kShardCrash, 0.35 * duration, 0.35 * duration + 1.0, 1.0, {}});
  shards[1].testbed.faults.add(
      {FaultKind::kShardCrash, 0.60 * duration, 0.60 * duration + 1.0, 1.0, {}});

  ShardRunOptions plain;
  plain.threads = 1;
  const auto reference = digests(run_sharded(shards, plain));

  SupervisorOptions opt = bench_options(fresh_dir(s.cell), s.threads);
  opt.max_restarts = 1;
  const SupervisedRun run = run_supervised(shards, opt);

  s.all_completed = run.all_completed();  // expected false
  s.failed_partial = run.any_failed_partial();
  for (const auto& h : run.health) {
    s.crashes += h.crashes;
    s.restarts += h.restarts;
  }
  s.survivors_match = crc32(encode_trace(run.shards[0].trace)) == reference[0] &&
                      crc32(encode_trace(run.shards[2].trace)) == reference[2];

  // The salvaged partial trace still supports the paper's gap-censored
  // analysis pipeline: pre-crash capture present, unrun tail censored as a
  // trailing gap to the planned end, analyze_trace runs clean.
  const Trace& partial = run.shards[1].trace;
  s.partial_snapshots = partial.snapshots().size();
  s.partial_gap_end = partial.gaps().empty() ? 0.0 : partial.gaps().back().end;
  try {
    const ExperimentResults res = analyze_trace(Trace(partial), {kBluetoothRange}, kDefaultLandSize, 1);
    s.partial_analysis_ok =
        res.summary.gap_count >= 1 && res.summary.snapshot_count == s.partial_snapshots;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: partial-trace analysis threw: %s\n", e.what());
    s.partial_analysis_ok = false;
  }

  s.pass = !s.all_completed && s.failed_partial && s.survivors_match &&
           s.partial_snapshots > 0 && s.partial_gap_end == duration &&
           s.partial_analysis_ok;
  return s;
}

void write_json(const std::vector<CellScore>& scores, double hours, std::uint64_t seed,
                bool pass, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scenario\": \"shard-chaos\",\n");
  std::fprintf(f, "  \"lands\": [\"Apfelland\", \"Dance\", \"Isle Of View\"],\n");
  std::fprintf(f, "  \"hours\": %.2f,\n", hours);
  std::fprintf(f, "  \"seed\": %llu,\n", static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"pass\": %s,\n", pass ? "true" : "false");
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const CellScore& s = scores[i];
    std::fprintf(f,
                 "    {\"cell\": \"%s\", \"threads\": %zu, \"all_completed\": %s, "
                 "\"digests_match\": %s, \"crashes\": %llu, \"stalls\": %llu, "
                 "\"watchdog_aborts\": %llu, \"restarts\": %llu, "
                 "\"max_frames_lost\": %llu, \"max_recovery_ms\": %.1f, "
                 "\"failed_partial\": %s, \"survivors_match\": %s, "
                 "\"partial_analysis_ok\": %s, \"partial_snapshots\": %zu, "
                 "\"partial_gap_end\": %.1f, \"pass\": %s}%s\n",
                 s.cell.c_str(), s.threads, s.all_completed ? "true" : "false",
                 s.digests_match ? "true" : "false",
                 static_cast<unsigned long long>(s.crashes),
                 static_cast<unsigned long long>(s.stalls),
                 static_cast<unsigned long long>(s.watchdog_aborts),
                 static_cast<unsigned long long>(s.restarts),
                 static_cast<unsigned long long>(s.max_frames_lost), s.max_recovery_ms,
                 s.failed_partial ? "true" : "false",
                 s.survivors_match ? "true" : "false",
                 s.partial_analysis_ok ? "true" : "false", s.partial_snapshots,
                 s.partial_gap_end, s.pass ? "true" : "false",
                 i + 1 < scores.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  // CI gates parse this JSON; a silently truncated write must fail loudly.
  if (std::fflush(f) != 0 || std::fclose(f) != 0) {
    std::fprintf(stderr, "error writing %s\n", path);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  double hours = 0.5;
  std::uint64_t seed = 42;
  double recovery_bound_ms = 15000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
      hours = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      hours = 0.25;
    }
  }
  const Seconds duration = hours * kSecondsPerHour;

  std::printf("supervisor_recovery: %.2f h x 3 lands, shard-chaos, seed %llu\n", hours,
              static_cast<unsigned long long>(seed));

  const auto shards = three_lands("shard-chaos", duration, seed);
  std::fprintf(stderr, "[bench] uninterrupted reference (run_sharded)...\n");
  ShardRunOptions plain;
  plain.threads = 1;
  const auto baseline = run_sharded(shards, plain);
  const auto reference = digests(baseline);

  std::vector<CellScore> scores;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::fprintf(stderr, "[bench] supervised chaos run, %zu threads...\n", threads);
    scores.push_back(
        score_supervised(shards, baseline, reference, threads, recovery_bound_ms));
  }
  std::fprintf(stderr, "[bench] retry-budget exhaustion (failed-partial)...\n");
  scores.push_back(score_failed_partial(duration, seed));

  bool pass = true;
  std::printf("%-14s %8s %8s %8s %8s %10s %12s %6s\n", "cell", "threads", "crashes",
              "stalls", "restarts", "max_lost", "max_rec_ms", "gate");
  for (const CellScore& s : scores) {
    pass = pass && s.pass;
    std::printf("%-14s %8zu %8llu %8llu %8llu %10llu %12.1f %6s\n", s.cell.c_str(),
                s.threads, static_cast<unsigned long long>(s.crashes),
                static_cast<unsigned long long>(s.stalls),
                static_cast<unsigned long long>(s.restarts),
                static_cast<unsigned long long>(s.max_frames_lost), s.max_recovery_ms,
                s.pass ? "ok" : "FAIL");
    if (!s.pass) {
      std::fprintf(stderr,
                   "FAIL: %s (completed=%d digests=%d failed_partial=%d survivors=%d "
                   "analysis=%d gap_end=%.1f)\n",
                   s.cell.c_str(), s.all_completed, s.digests_match, s.failed_partial,
                   s.survivors_match, s.partial_analysis_ok, s.partial_gap_end);
    }
  }

  write_json(scores, hours, seed, pass, "BENCH_supervision.json");
  std::printf("wrote BENCH_supervision.json (%s)\n", pass ? "pass" : "FAIL");
  return pass ? 0 : 1;
}
