// Figure 2 (a-f): line-of-sight network properties — node degree CCDF,
// network diameter CDF (largest connected component) and Watts-Strogatz
// clustering coefficient CDF, at r = 10 m and r = 80 m.
#include <cstdio>

#include "bench_common.hpp"

using namespace slmob;
using namespace slmob::bench;

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::parse(argc, argv);
  prewarm_lands({std::begin(kAllArchetypes), std::end(kAllArchetypes)}, options);
  print_title("Figure 2: line-of-sight network properties",
              "La & Michiardi 2008, Fig. 2(a)-(f)");

  for (const LandArchetype archetype : kAllArchetypes) {
    const ExperimentResults& res = land_results(archetype, options);
    const std::string land = res.trace.land_name();
    for (const double r : {kBluetoothRange, kWifiRange}) {
      const GraphMetrics& g = res.graphs.at(r);
      const std::string tag = land + " r=" + std::to_string(static_cast<int>(r));
      std::printf("# degree CCDF %s (n=%zu samples)\n", tag.c_str(), g.degrees.size());
      for (int d = 0; d <= static_cast<int>(g.degrees.max()); ++d) {
        std::printf("%-28s %6d %10.4f\n", ("deg " + tag).c_str(), d,
                    g.degrees.ccdf(static_cast<double>(d) - 0.5));
      }
      print_cdf("diam " + tag, g.diameters);
      print_cdf("clust " + tag, g.clustering);
    }
  }

  std::printf("\n# paper-vs-measured qualitative checks\n");
  const auto isolated = [&](LandArchetype a, double r) {
    return land_results(a, options).graphs.at(r).isolated_fraction * 100.0;
  };
  print_compare("Apfelland %users no neighbour r=10", 60.0,
                isolated(LandArchetype::kApfelLand, kBluetoothRange));
  print_compare("Dance %users no neighbour r=10", 10.0,
                isolated(LandArchetype::kDanceIsland, kBluetoothRange));
  print_compare("Isle Of View %users no neighbour r=10", 0.0,
                isolated(LandArchetype::kIsleOfView, kBluetoothRange));
  print_compare("Apfelland %users no neighbour r=80", 0.0,
                isolated(LandArchetype::kApfelLand, kWifiRange));
  print_compare("Dance %users no neighbour r=80", 0.0,
                isolated(LandArchetype::kDanceIsland, kWifiRange));
  print_compare("Isle Of View %users no neighbour r=80", 0.0,
                isolated(LandArchetype::kIsleOfView, kWifiRange));

  std::printf("\n# clustering medians (paper: high values => not random graphs)\n");
  for (const LandArchetype archetype : kAllArchetypes) {
    const ExperimentResults& res = land_results(archetype, options);
    for (const double r : {kBluetoothRange, kWifiRange}) {
      const auto& cl = res.graphs.at(r).clustering;
      std::printf("%-14s r=%2.0f median clustering = %.3f\n",
                  res.trace.land_name().c_str(), r, cl.empty() ? 0.0 : cl.median());
    }
  }

  std::printf("\n# Apfelland diameter paradox (paper: max diameter r=10 < r=80,\n");
  std::printf("# because small r fragments the land into small components)\n");
  const auto& apfel = land_results(LandArchetype::kApfelLand, options);
  std::printf("Apfelland max diameter r=10: %.0f   r=80: %.0f\n",
              apfel.graphs.at(kBluetoothRange).diameters.max(),
              apfel.graphs.at(kWifiRange).diameters.max());
  return 0;
}
