#include "alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

namespace slmob::bench {

std::size_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace slmob::bench

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
