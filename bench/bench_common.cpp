#include "bench_common.hpp"

#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <mutex>

#include "util/thread_pool.hpp"

namespace slmob::bench {
namespace {

struct CacheKey {
  LandArchetype archetype;
  double hours;
  std::uint64_t seed;
  bool operator<(const CacheKey& o) const {
    return std::tie(archetype, hours, seed) < std::tie(o.archetype, o.hours, o.seed);
  }
};

// Guards the results cache; experiments themselves run unlocked.
std::mutex cache_mutex;
std::map<CacheKey, ExperimentResults>& cache() {
  static std::map<CacheKey, ExperimentResults> instance;
  return instance;
}

ExperimentResults run_land(LandArchetype archetype, const BenchOptions& options,
                           std::size_t analysis_threads) {
  ExperimentConfig cfg;
  cfg.archetype = archetype;
  cfg.duration = options.hours * kSecondsPerHour;
  cfg.seed = options.seed;
  cfg.analysis_threads = analysis_threads;
  std::fprintf(stderr, "[bench] simulating %s (%.1f h, seed %llu)...\n",
               archetype_name(archetype).c_str(), options.hours,
               static_cast<unsigned long long>(options.seed));
  return run_experiment(cfg);
}

}  // namespace

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions options;
  if (const char* env = std::getenv("SLMOB_BENCH_HOURS")) {
    options.hours = std::atof(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
      options.hours = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options.hours = 4.0;
    }
  }
  if (options.hours <= 0.0) options.hours = 24.0;
  return options;
}

const ExperimentResults& land_results(LandArchetype archetype,
                                      const BenchOptions& options) {
  const CacheKey key{archetype, options.hours, options.seed};
  {
    const std::lock_guard<std::mutex> lock(cache_mutex);
    const auto it = cache().find(key);
    if (it != cache().end()) return it->second;
  }
  ExperimentResults res = run_land(archetype, options, /*analysis_threads=*/0);
  const std::lock_guard<std::mutex> lock(cache_mutex);
  // emplace is a no-op if another thread raced us to the same key.
  return cache().emplace(key, std::move(res)).first->second;
}

void prewarm_lands(const std::vector<LandArchetype>& archetypes,
                   const BenchOptions& options) {
  std::vector<LandArchetype> missing;
  {
    const std::lock_guard<std::mutex> lock(cache_mutex);
    for (const LandArchetype a : archetypes) {
      if (!cache().contains({a, options.hours, options.seed})) missing.push_back(a);
    }
  }
  if (missing.size() < 2) {
    for (const LandArchetype a : missing) (void)land_results(a, options);
    return;
  }
  ThreadPool pool(std::min(ThreadPool::default_concurrency(), missing.size()));
  auto all = parallel_map<ExperimentResults>(pool, missing.size(), [&](std::size_t i) {
    return run_land(missing[i], options, /*analysis_threads=*/1);
  });
  const std::lock_guard<std::mutex> lock(cache_mutex);
  for (std::size_t i = 0; i < missing.size(); ++i) {
    cache().emplace(CacheKey{missing[i], options.hours, options.seed}, std::move(all[i]));
  }
}

void print_title(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

void print_ccdf_log(const std::string& label, const Ecdf& dist, double lo_floor) {
  std::printf("# CCDF %s (n=%zu)\n", label.c_str(), dist.size());
  if (dist.empty()) {
    std::printf("#   (no samples)\n");
    return;
  }
  for (const auto& p : dist.ccdf_log_series(18, lo_floor)) {
    std::printf("%-28s %12.2f %10.4f\n", label.c_str(), p.x, p.y);
  }
}

void print_cdf(const std::string& label, const Ecdf& dist) {
  std::printf("# CDF %s (n=%zu)\n", label.c_str(), dist.size());
  if (dist.empty()) {
    std::printf("#   (no samples)\n");
    return;
  }
  for (const auto& p : dist.cdf_series(18)) {
    std::printf("%-28s %12.2f %10.4f\n", label.c_str(), p.x, p.y);
  }
}

void print_compare(const std::string& metric, double paper, double measured) {
  std::printf("%-44s paper=%-10.0f measured=%-10.1f\n", metric.c_str(), paper, measured);
}

void print_compare(const std::string& metric, const std::string& paper, double measured) {
  std::printf("%-44s paper=%-10s measured=%-10.1f\n", metric.c_str(), paper.c_str(),
              measured);
}

}  // namespace slmob::bench
