#include "bench_common.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "util/sysinfo.hpp"
#include "util/thread_pool.hpp"

namespace slmob::bench {
namespace {

struct CacheKey {
  LandArchetype archetype;
  double hours;
  std::uint64_t seed;
  bool operator<(const CacheKey& o) const {
    return std::tie(archetype, hours, seed) < std::tie(o.archetype, o.hours, o.seed);
  }
};

// Guards the results cache; experiments themselves run unlocked.
std::mutex cache_mutex;
std::map<CacheKey, ExperimentResults>& cache() {
  static std::map<CacheKey, ExperimentResults> instance;
  return instance;
}

ExperimentResults run_land(LandArchetype archetype, const BenchOptions& options,
                           std::size_t analysis_threads) {
  ExperimentConfig cfg;
  cfg.archetype = archetype;
  cfg.duration = options.hours * kSecondsPerHour;
  cfg.seed = options.seed;
  cfg.analysis_threads = analysis_threads;
  std::fprintf(stderr, "[bench] simulating %s (%.1f h, seed %llu)...\n",
               archetype_name(archetype).c_str(), options.hours,
               static_cast<unsigned long long>(options.seed));
  return run_experiment(cfg);
}

}  // namespace

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions options;
  if (const char* env = std::getenv("SLMOB_BENCH_HOURS")) {
    options.hours = std::atof(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
      options.hours = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options.hours = 4.0;
    }
  }
  if (options.hours <= 0.0) options.hours = 24.0;
  return options;
}

const ExperimentResults& land_results(LandArchetype archetype,
                                      const BenchOptions& options) {
  const CacheKey key{archetype, options.hours, options.seed};
  {
    const std::lock_guard<std::mutex> lock(cache_mutex);
    const auto it = cache().find(key);
    if (it != cache().end()) return it->second;
  }
  ExperimentResults res = run_land(archetype, options, /*analysis_threads=*/0);
  const std::lock_guard<std::mutex> lock(cache_mutex);
  // emplace is a no-op if another thread raced us to the same key.
  return cache().emplace(key, std::move(res)).first->second;
}

void prewarm_lands(const std::vector<LandArchetype>& archetypes,
                   const BenchOptions& options) {
  std::vector<LandArchetype> missing;
  {
    const std::lock_guard<std::mutex> lock(cache_mutex);
    for (const LandArchetype a : archetypes) {
      if (!cache().contains({a, options.hours, options.seed})) missing.push_back(a);
    }
  }
  if (missing.size() < 2) {
    for (const LandArchetype a : missing) (void)land_results(a, options);
    return;
  }
  ThreadPool pool(std::min(ThreadPool::default_concurrency(), missing.size()));
  auto all = parallel_map<ExperimentResults>(pool, missing.size(), [&](std::size_t i) {
    return run_land(missing[i], options, /*analysis_threads=*/1);
  });
  const std::lock_guard<std::mutex> lock(cache_mutex);
  for (std::size_t i = 0; i < missing.size(); ++i) {
    cache().emplace(CacheKey{missing[i], options.hours, options.seed}, std::move(all[i]));
  }
}

double peak_rss_mib() {
  return static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof buf - 1));
}

namespace {

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
  std::fclose(f);
  return text;
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
  return i;
}

// One-past-end of the JSON value starting at i (string, object, array or
// scalar). String escapes and nesting are respected; malformed text just
// scans to the end, which the caller treats as an unparseable file.
std::size_t scan_value(const std::string& s, std::size_t i) {
  if (i >= s.size()) return i;
  if (s[i] == '"') {
    ++i;
    while (i < s.size()) {
      if (s[i] == '\\') {
        i += 2;
      } else if (s[i] == '"') {
        return i + 1;
      } else {
        ++i;
      }
    }
    return i;
  }
  if (s[i] == '{' || s[i] == '[') {
    int depth = 0;
    while (i < s.size()) {
      if (s[i] == '"') {
        i = scan_value(s, i);
        continue;
      }
      if (s[i] == '{' || s[i] == '[') ++depth;
      if (s[i] == '}' || s[i] == ']') {
        --depth;
        if (depth == 0) return i + 1;
      }
      ++i;
    }
    return i;
  }
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' && s[i] != ' ' &&
         s[i] != '\t' && s[i] != '\n' && s[i] != '\r') {
    ++i;
  }
  return i;
}

}  // namespace

void update_bench_json(const std::string& path, const std::string& section,
                       const std::string& body) {
  // Parse the existing file into (name, value-text) pairs; any parse
  // trouble just drops the old content (benches own this file).
  std::vector<std::pair<std::string, std::string>> sections;
  const std::string text = slurp(path);
  do {
    std::size_t i = skip_ws(text, 0);
    if (i >= text.size() || text[i] != '{') break;
    ++i;
    bool flat = false;
    bool ok = true;
    std::vector<std::pair<std::string, std::string>> parsed;
    for (;;) {
      i = skip_ws(text, i);
      if (i >= text.size()) {
        ok = false;
        break;
      }
      if (text[i] == '}') break;
      if (text[i] == ',') {
        ++i;
        continue;
      }
      if (text[i] != '"') {
        ok = false;
        break;
      }
      const std::size_t key_end = scan_value(text, i);
      std::string key = text.substr(i + 1, key_end - i - 2);
      i = skip_ws(text, key_end);
      if (i >= text.size() || text[i] != ':') {
        ok = false;
        break;
      }
      i = skip_ws(text, i + 1);
      const std::size_t value_end = scan_value(text, i);
      std::string value = text.substr(i, value_end - i);
      if (value.empty()) {
        ok = false;
        break;
      }
      if (value[0] != '{') flat = true;  // sectioned files hold only objects
      parsed.emplace_back(std::move(key), std::move(value));
      i = value_end;
    }
    if (!ok || parsed.empty()) break;
    if (!flat) {
      sections = std::move(parsed);
      break;
    }
    // Legacy flat file: wrap the whole object as the section its "bench"
    // key names.
    std::string name = "legacy";
    std::string migrated = "{\n";
    for (std::size_t j = 0; j < parsed.size(); ++j) {
      if (parsed[j].first == "bench" && parsed[j].second.size() >= 2 &&
          parsed[j].second.front() == '"') {
        name = parsed[j].second.substr(1, parsed[j].second.size() - 2);
      }
      migrated += "    \"" + parsed[j].first + "\": " + parsed[j].second;
      migrated += j + 1 < parsed.size() ? ",\n" : "\n";
    }
    migrated += "  }";
    sections.emplace_back(std::move(name), std::move(migrated));
  } while (false);

  bool replaced = false;
  for (auto& [name, value] : sections) {
    if (name == section) {
      value = body;
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(section, body);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < sections.size(); ++i) {
    std::fprintf(f, "  \"%s\": %s%s\n", sections[i].first.c_str(),
                 sections[i].second.c_str(), i + 1 < sections.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  // CI gates parse this JSON; a silently truncated write must fail loudly.
  if (std::fflush(f) != 0 || std::fclose(f) != 0) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    std::exit(1);
  }
}

void print_title(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

void print_ccdf_log(const std::string& label, const Ecdf& dist, double lo_floor) {
  std::printf("# CCDF %s (n=%zu)\n", label.c_str(), dist.size());
  if (dist.empty()) {
    std::printf("#   (no samples)\n");
    return;
  }
  for (const auto& p : dist.ccdf_log_series(18, lo_floor)) {
    std::printf("%-28s %12.2f %10.4f\n", label.c_str(), p.x, p.y);
  }
}

void print_cdf(const std::string& label, const Ecdf& dist) {
  std::printf("# CDF %s (n=%zu)\n", label.c_str(), dist.size());
  if (dist.empty()) {
    std::printf("#   (no samples)\n");
    return;
  }
  for (const auto& p : dist.cdf_series(18)) {
    std::printf("%-28s %12.2f %10.4f\n", label.c_str(), p.x, p.y);
  }
}

void print_compare(const std::string& metric, double paper, double measured) {
  std::printf("%-44s paper=%-10.0f measured=%-10.1f\n", metric.c_str(), paper, measured);
}

void print_compare(const std::string& metric, const std::string& paper, double measured) {
  std::printf("%-44s paper=%-10s measured=%-10.1f\n", metric.c_str(), paper.c_str(),
              measured);
}

}  // namespace slmob::bench
