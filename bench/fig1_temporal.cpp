// Figure 1 (a-f): CCDFs of contact time (CT), inter-contact time (ICT) and
// first contact time (FT) for the three target lands at r = 10 m
// (Bluetooth) and r = 80 m (WiFi), plus the paper-vs-measured medians and
// the two-phase (power-law head + exponential cutoff) shape diagnostics.
#include <cstdio>

#include "bench_common.hpp"
#include "stats/fit.hpp"

using namespace slmob;
using namespace slmob::bench;

namespace {

struct MedianTargets {
  double ct10, ct80, ict, ft10, ft80;
};

const MedianTargets& targets(LandArchetype archetype) {
  static const MedianTargets apfel{30, 70, 400, 300, 30};
  static const MedianTargets dance{100, 300, 750, 20, 5};
  static const MedianTargets isle{60, 200, 400, 20, 5};
  switch (archetype) {
    case LandArchetype::kApfelLand:
      return apfel;
    case LandArchetype::kDanceIsland:
      return dance;
    case LandArchetype::kIsleOfView:
      return isle;
  }
  return apfel;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::parse(argc, argv);
  prewarm_lands({std::begin(kAllArchetypes), std::end(kAllArchetypes)}, options);
  print_title("Figure 1: temporal analysis (CT / ICT / FT CCDFs, r=10m and r=80m)",
              "La & Michiardi 2008, Fig. 1(a)-(f)");

  for (const LandArchetype archetype : kAllArchetypes) {
    const ExperimentResults& res = land_results(archetype, options);
    const std::string land = res.trace.land_name();
    for (const double r : {kBluetoothRange, kWifiRange}) {
      const ContactAnalysis& c = res.contacts.at(r);
      const std::string tag = land + " r=" + std::to_string(static_cast<int>(r));
      print_ccdf_log("CT " + tag, c.contact_times, 10.0);
      print_ccdf_log("ICT " + tag, c.inter_contact_times, 10.0);
      print_ccdf_log("FT " + tag, c.first_contact_times, 1.0);
    }
  }

  std::printf("\n# paper-vs-measured medians (seconds)\n");
  for (const LandArchetype archetype : kAllArchetypes) {
    const ExperimentResults& res = land_results(archetype, options);
    const std::string land = res.trace.land_name();
    const MedianTargets& t = targets(archetype);
    const auto median = [](const Ecdf& e) { return e.empty() ? 0.0 : e.median(); };
    print_compare(land + " median CT  r=10", t.ct10,
                  median(res.contacts.at(kBluetoothRange).contact_times));
    print_compare(land + " median CT  r=80", t.ct80,
                  median(res.contacts.at(kWifiRange).contact_times));
    print_compare(land + " median ICT r=10", t.ict,
                  median(res.contacts.at(kBluetoothRange).inter_contact_times));
    print_compare(land + " median ICT r=80", t.ict,
                  median(res.contacts.at(kWifiRange).inter_contact_times));
    print_compare(land + " median FT  r=10", t.ft10,
                  median(res.contacts.at(kBluetoothRange).first_contact_times));
    print_compare(land + " median FT  r=80", t.ft80,
                  median(res.contacts.at(kWifiRange).first_contact_times));
  }

  std::printf(
      "\n# two-phase shape check (paper: power-law head + exponential cutoff)\n");
  for (const LandArchetype archetype : kAllArchetypes) {
    const ExperimentResults& res = land_results(archetype, options);
    for (const char* which : {"CT", "ICT"}) {
      const auto& dist = which[0] == 'C'
                             ? res.contacts.at(kBluetoothRange).contact_times
                             : res.contacts.at(kBluetoothRange).inter_contact_times;
      if (dist.size() < 20) continue;
      const TwoPhaseFit fit = fit_two_phase(dist.sorted(), 10.0);
      std::printf("%-14s %-4s r=10: head alpha=%5.2f  tail rate=%8.5f  "
                  "crossover=%7.1fs  ks=%5.3f\n",
                  res.trace.land_name().c_str(), which, fit.head.alpha, fit.tail.rate,
                  fit.crossover, fit.ks);
    }
  }
  return 0;
}
