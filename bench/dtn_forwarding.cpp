// Downstream application (paper, abstract & conclusion): trace-driven
// evaluation of DTN forwarding schemes on the collected mobility traces.
// Compares epidemic, two-hop relay and direct delivery on each land at the
// Bluetooth range.
#include <cstdio>

#include "bench_common.hpp"
#include "dtn/dtn_simulator.hpp"

using namespace slmob;
using namespace slmob::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::parse(argc, argv);
  prewarm_lands({std::begin(kAllArchetypes), std::end(kAllArchetypes)}, options);
  if (options.hours > 6.0) options.hours = 6.0;
  print_title("Trace-driven DTN forwarding on Second Life mobility",
              "La & Michiardi 2008, motivating application (abstract, section 5)");

  std::printf("%-14s %-10s %10s %12s %12s %12s\n", "land", "scheme", "delivery",
              "delay med", "delay p90", "copies/msg");
  for (const LandArchetype archetype : kAllArchetypes) {
    const ExperimentResults& res = land_results(archetype, options);
    for (const RoutingScheme scheme :
         {RoutingScheme::kEpidemic, RoutingScheme::kTwoHopRelay,
          RoutingScheme::kDirectDelivery}) {
      DtnConfig cfg;
      cfg.scheme = scheme;
      cfg.range = kBluetoothRange;
      cfg.message_count = 300;
      cfg.seed = options.seed;
      const DtnResults dtn = simulate_dtn(res.trace, cfg);
      std::printf("%-14s %-10s %9.1f%% %12.0f %12.0f %12.1f\n",
                  res.trace.land_name().c_str(), routing_scheme_name(scheme),
                  dtn.delivery_ratio * 100.0,
                  dtn.delays.empty() ? 0.0 : dtn.delays.median(),
                  dtn.delays.empty() ? 0.0 : dtn.delays.quantile(0.9),
                  dtn.mean_copies_per_message);
    }
  }
  std::printf("\nExpected: epidemic >= two-hop >= direct in delivery ratio; denser\n"
              "lands (Isle Of View) deliver more and faster; epidemic pays with\n"
              "many copies. User churn (short sessions) caps even epidemic below\n"
              "100%%: destinations log out before any relay reaches them.\n");
  return 0;
}
