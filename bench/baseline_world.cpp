#include "baseline_world.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace slmob::bench {

BaselineWorld::BaselineWorld(Land land, std::unique_ptr<MobilityModel> model,
                             PopulationParams population, std::uint64_t seed)
    : land_(std::move(land)),
      model_(std::move(model)),
      population_(population),
      rng_(seed) {
  if (!model_) throw std::invalid_argument("BaselineWorld: null mobility model");
  if (land_.spawn_points().empty()) {
    throw std::invalid_argument("BaselineWorld: land has no spawn points");
  }
}

void BaselineWorld::tick(Seconds now, Seconds dt) {
  process_departures(now);
  process_arrivals(now, dt);

  for (auto& [id, avatar] : avatars_) {
    if (avatar.externally_controlled) {
      step_kinematics(avatar, dt);
      if (avatar.state == AvatarState::kTravelling &&
          avatar.pos.distance_to(avatar.waypoint) < 1e-9) {
        avatar.state = AvatarState::kPaused;
        avatar.pause_until = now + 1e18;
      }
      continue;
    }
    if (avatar.state == AvatarState::kPaused) {
      if (now >= avatar.pause_until) {
        decide(now, avatar);
      } else if (avatar.jitter_radius > 0.0 && rng_.bernoulli(avatar.jitter_rate * dt)) {
        const double r = avatar.jitter_radius * std::sqrt(rng_.uniform());
        const double theta = rng_.uniform(0.0, 6.283185307179586);
        avatar.waypoint = land_.clamp({avatar.anchor.x + r * std::cos(theta),
                                       avatar.anchor.y + r * std::sin(theta),
                                       land_.ground_z()});
        avatar.state = AvatarState::kTravelling;
      }
    }
    if (avatar.state == AvatarState::kTravelling) {
      const bool arrived = step_kinematics(avatar, dt);
      if (arrived) {
        avatar.state = AvatarState::kPaused;
        if (avatar.pause_until < now) avatar.pause_until = now;
      }
    }
  }
}

void BaselineWorld::process_arrivals(Seconds now, Seconds dt) {
  const std::size_t n = population_.arrivals(now, dt, rng_);
  for (std::size_t i = 0; i < n; ++i) admit_arrival(now);
}

void BaselineWorld::admit_arrival(Seconds now) {
  if (avatars_.size() >= land_.capacity()) {
    ++stats_.rejected_logins;
    return;
  }
  Avatar avatar;
  const double p_revisit = population_.params().revisit_probability;
  if (!departed_pool_.empty() && rng_.bernoulli(p_revisit)) {
    const auto idx = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(departed_pool_.size()) - 1));
    const DepartedUser user = departed_pool_[idx];
    departed_pool_[idx] = departed_pool_.back();
    departed_pool_.pop_back();
    avatar.id = user.id;
    avatar.kind = user.kind;
    avatar.home_poi = user.home_poi;
  } else {
    avatar.id = next_id();
    avatar.kind = model_->assign_kind(rng_);
  }
  const auto& spawns = land_.spawn_points();
  avatar.pos = spawns[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(spawns.size()) - 1))];
  avatar.login_time = now;
  Seconds session = population_.session_duration(rng_);
  if (avatar.kind == AvatarKind::kExplorer) {
    session = std::min(session * population_.params().explorer_session_multiplier,
                       population_.params().session_cap);
  }
  avatar.logout_at = now + session;
  avatar.last_intentional_move = now;

  const MobilityDecision d = model_->on_login(avatar, land_, rng_);
  apply_decision(now, avatar, d);

  ++stats_.total_logins;
  avatars_.emplace(avatar.id, avatar);
}

void BaselineWorld::process_departures(Seconds now) {
  for (auto it = avatars_.begin(); it != avatars_.end();) {
    Avatar& avatar = it->second;
    if (!avatar.externally_controlled && now >= avatar.logout_at) {
      ++stats_.total_logouts;
      if (!avatar.debug_pinned) {
        departed_pool_.push_back({avatar.id, avatar.kind, avatar.home_poi});
      }
      it = avatars_.erase(it);
    } else {
      ++it;
    }
  }
}

void BaselineWorld::decide(Seconds now, Avatar& avatar) {
  if (const auto target = attractor(now);
      target && rng_.bernoulli(curiosity_.approach_probability)) {
    ++stats_.curiosity_approaches;
    MobilityDecision d;
    const double r = curiosity_.approach_radius * std::sqrt(rng_.uniform());
    const double theta = rng_.uniform(0.0, 6.283185307179586);
    d.waypoint = land_.clamp({target->x + r * std::cos(theta),
                              target->y + r * std::sin(theta), land_.ground_z()});
    d.speed = 2.0;
    d.pause = rng_.uniform(20.0, 90.0);
    d.jitter_radius = 0.0;
    d.poi_index = -1;
    apply_decision(now, avatar, d);
    return;
  }
  apply_decision(now, avatar, model_->next(avatar, land_, rng_));
}

void BaselineWorld::apply_decision(Seconds now, Avatar& avatar, const MobilityDecision& d) {
  avatar.waypoint = land_.clamp(d.waypoint);
  avatar.speed = std::max(0.1, d.speed);
  avatar.state = AvatarState::kTravelling;
  avatar.pause_until = now + avatar.pos.distance_to(avatar.waypoint) / avatar.speed + d.pause;
  avatar.anchor = avatar.waypoint;
  avatar.jitter_radius = d.jitter_radius;
  avatar.jitter_rate = d.jitter_rate;
  avatar.current_poi = d.poi_index;
  if (avatar.home_poi < 0 && d.poi_index >= 0) avatar.home_poi = d.poi_index;
  avatar.last_intentional_move = now;
}

std::optional<Vec3> BaselineWorld::attractor(Seconds now) const {
  if (!curiosity_.enabled) return std::nullopt;
  // The seed revision scanned the whole population per decision to find a
  // bot-looking external avatar.
  for (const auto& [id, avatar] : avatars_) {
    if (!avatar.externally_controlled) continue;
    if (now - avatar.last_intentional_move > curiosity_.idle_threshold) return avatar.pos;
  }
  return std::nullopt;
}

void BaselineWorld::debug_prefill(Seconds now, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) admit_arrival(now);
}

}  // namespace slmob::bench
