// Figure 4 (a-c): trip analysis — CDFs of travel length, effective travel
// time (pauses excluded) and travel (login) time per user session.
#include <cstdio>

#include "bench_common.hpp"

using namespace slmob;
using namespace slmob::bench;

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::parse(argc, argv);
  prewarm_lands({std::begin(kAllArchetypes), std::end(kAllArchetypes)}, options);
  print_title("Figure 4: trip analysis (travel length / effective time / login time)",
              "La & Michiardi 2008, Fig. 4(a)-(c)");

  for (const LandArchetype archetype : kAllArchetypes) {
    const ExperimentResults& res = land_results(archetype, options);
    const std::string land = res.trace.land_name();
    print_cdf("travel_length " + land, res.trips.travel_lengths);
    print_cdf("eff_travel_time " + land, res.trips.effective_travel_times);
    print_cdf("travel_time " + land, res.trips.travel_times);
  }

  std::printf("\n# paper-vs-measured checks\n");
  const auto p90_len = [&](LandArchetype a) {
    const auto& d = land_results(a, options).trips.travel_lengths;
    return d.empty() ? 0.0 : d.quantile(0.9);
  };
  print_compare("Dance travel length p90 (m)", 230.0, p90_len(LandArchetype::kDanceIsland));
  print_compare("Apfelland travel length p90 (m)", 400.0, p90_len(LandArchetype::kApfelLand));
  print_compare("Isle Of View travel length p90 (m)", 500.0,
                p90_len(LandArchetype::kIsleOfView));

  const auto& isle = land_results(LandArchetype::kIsleOfView, options);
  const auto& lengths = isle.trips.travel_lengths;
  print_compare("Isle Of View %sessions > 2000 m", 2.0,
                lengths.empty() ? 0.0 : lengths.ccdf(2000.0) * 100.0);

  std::printf("\n# login-time checks (paper: 90%% < 1 h, longest ~4 h)\n");
  for (const LandArchetype archetype : kAllArchetypes) {
    const ExperimentResults& res = land_results(archetype, options);
    const auto& tt = res.trips.travel_times;
    if (tt.empty()) continue;
    std::printf("%-14s sessions=%zu  p90=%6.0fs (<3600: %s)  max=%6.0fs\n",
                res.trace.land_name().c_str(), res.trips.sessions, tt.quantile(0.9),
                tt.quantile(0.9) < 3600.0 ? "yes" : "NO", tt.max());
  }
  return 0;
}
