// Faithful replica of the seed-revision World: avatars in a
// std::map<AvatarId, Avatar>, whole-map scans for the curiosity attractor,
// per-decision map lookups. Kept local to the bench so the library stays on
// the SoA fast path; sim_scaling uses it to measure what the
// structure-of-arrays refactor actually bought, on the same RNG draw
// sequence (the replica and the real world stay in positional lockstep,
// which the bench asserts before timing is trusted).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "world/land.hpp"
#include "world/mobility.hpp"
#include "world/population.hpp"
#include "world/world.hpp"

namespace slmob::bench {

class BaselineWorld {
 public:
  BaselineWorld(Land land, std::unique_ptr<MobilityModel> model,
                PopulationParams population, std::uint64_t seed);

  void tick(Seconds now, Seconds dt);
  // Same admission path (and RNG draws per login) as World::debug_prefill.
  void debug_prefill(Seconds now, std::size_t n);

  [[nodiscard]] std::size_t concurrent() const { return avatars_.size(); }
  [[nodiscard]] const std::map<AvatarId, Avatar>& avatars() const { return avatars_; }

 private:
  void process_arrivals(Seconds now, Seconds dt);
  void process_departures(Seconds now);
  void admit_arrival(Seconds now);
  void decide(Seconds now, Avatar& avatar);
  void apply_decision(Seconds now, Avatar& avatar, const MobilityDecision& d);
  [[nodiscard]] std::optional<Vec3> attractor(Seconds now) const;
  AvatarId next_id() { return AvatarId{next_id_++}; }

  struct DepartedUser {
    AvatarId id;
    AvatarKind kind{AvatarKind::kRegular};
    std::int32_t home_poi{-1};
  };

  Land land_;
  std::unique_ptr<MobilityModel> model_;
  PopulationProcess population_;
  Rng rng_;
  std::map<AvatarId, Avatar> avatars_;
  std::uint32_t next_id_{1};
  std::vector<DepartedUser> departed_pool_;
  CuriosityParams curiosity_;
  WorldStats stats_;
};

}  // namespace slmob::bench
