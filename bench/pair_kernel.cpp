// pair_kernel: throughput and exactness gates for the batched proximity
// kernel (src/analysis/pair_kernel.*).
//
// The bench keeps a faithful replica of the pre-kernel SpatialGrid — a
// per-snapshot unordered_map hash grid with one sqrt per candidate pair —
// and, for every land archetype:
//  * times a full-trace pair enumeration sweep at the WiFi range for both
//    implementations (min of 3 passes) and gates the kernel at >= 1.5x the
//    legacy single-thread throughput in aggregate;
//  * asserts exact pair-set identity (same pairs, same distances, bitwise)
//    between legacy and kernel on every snapshot, with and without coverage
//    gaps (fault scenario "blackouts" supplies the gapped trace);
//  * asserts ProximityCache output is identical at 1/2/4 analysis threads
//    and that IncrementalProximity converges to the same per-snapshot pair
//    sets;
//  * asserts the warm kernel path performs zero heap allocations (second
//    full-trace pass, counted by the operator-new override compiled into
//    this binary only).
//
// Results land in the "pair_kernel" section of BENCH_analysis.json.
//
//   pair_kernel [--hours H] [--seed S] [--quick] [--out FILE]
//               [--ci-floor PAIRS_PER_SEC]
//
// --ci-floor makes the bench fail when kernel single-thread enumeration
// throughput (pairs/s, aggregate over lands) drops below the floor — the
// release-job perf smoke runs it on a 2 h trace against a committed value.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "alloc_counter.hpp"
#include "analysis/incremental_proximity.hpp"
#include "analysis/pair_kernel.hpp"
#include "analysis/proximity_cache.hpp"
#include "bench_common.hpp"
#include "util/thread_pool.hpp"

using namespace slmob;
using namespace slmob::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Replica of the pre-kernel SpatialGrid (hash-map cells, one distance2d_to
// per candidate), kept local to the bench so the speedup gate always
// compares against what this repo shipped before the kernel.
namespace legacy {

struct PairDist {
  std::uint32_t i;
  std::uint32_t j;
  double distance;
};

class Grid {
 public:
  Grid(const std::vector<Vec3>& positions, double radius)
      : positions_(positions), radius_(radius), cell_(radius) {
    coords_.reserve(positions_.size());
    cells_.reserve(positions_.size());
    for (std::uint32_t i = 0; i < positions_.size(); ++i) {
      const auto cx = static_cast<std::int32_t>(std::floor(positions_[i].x / cell_));
      const auto cy = static_cast<std::int32_t>(std::floor(positions_[i].y / cell_));
      coords_.push_back({cx, cy});
      cells_[pack(cx, cy)].push_back(i);
    }
  }

  [[nodiscard]] std::vector<PairDist> pairs_within_distance() const {
    std::vector<PairDist> out;
    out.reserve(positions_.size());
    for (std::uint32_t i = 0; i < positions_.size(); ++i) {
      const auto [cx, cy] = coords_[i];
      for (std::int32_t dx = -1; dx <= 1; ++dx) {
        for (std::int32_t dy = -1; dy <= 1; ++dy) {
          const auto it = cells_.find(pack(cx + dx, cy + dy));
          if (it == cells_.end()) continue;
          for (const std::uint32_t j : it->second) {
            if (j <= i) continue;
            const double d = positions_[i].distance2d_to(positions_[j]);
            if (d <= radius_) out.push_back({i, j, d});
          }
        }
      }
    }
    return out;
  }

 private:
  [[nodiscard]] static std::uint64_t pack(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }

  const std::vector<Vec3>& positions_;
  double radius_;
  double cell_;
  std::vector<std::pair<std::int32_t, std::int32_t>> coords_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
};

}  // namespace legacy

std::uint64_t bits_of(double d) {
  std::uint64_t b = 0;
  std::memcpy(&b, &d, sizeof b);
  return b;
}

using DistPair = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>;

const char* land_slug(LandArchetype a) {
  switch (a) {
    case LandArchetype::kApfelLand: return "apfel_land";
    case LandArchetype::kDanceIsland: return "dance_island";
    case LandArchetype::kIsleOfView: return "isle_of_view";
  }
  return "unknown";
}

std::vector<std::vector<Vec3>> snapshot_positions(const Trace& trace) {
  std::vector<std::vector<Vec3>> out;
  out.reserve(trace.size());
  for (const auto& snap : trace.snapshots()) {
    std::vector<Vec3> pos;
    pos.reserve(snap.fixes.size());
    for (const auto& fix : snap.fixes) pos.push_back(fix.pos);
    out.push_back(std::move(pos));
  }
  return out;
}

struct SweepTiming {
  double legacy_seconds{0.0};
  double kernel_seconds{0.0};
  std::uint64_t pairs{0};
};

// Times full-trace pair enumeration at r for both implementations, min of
// `repeats` passes each, and verifies bitwise (i, j, distance) set identity
// on every snapshot during the first pass.
SweepTiming time_sweep(const std::vector<std::vector<Vec3>>& snaps, double r,
                       int repeats, bool* identical) {
  SweepTiming t;
  t.legacy_seconds = 1e300;
  t.kernel_seconds = 1e300;
  PairKernel kernel;
  for (int rep = 0; rep < repeats; ++rep) {
    std::uint64_t legacy_pairs = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& pos : snaps) {
      const legacy::Grid grid(pos, r);
      legacy_pairs += grid.pairs_within_distance().size();
    }
    t.legacy_seconds = std::min(t.legacy_seconds, seconds_since(t0));

    std::uint64_t kernel_pairs = 0;
    const auto t1 = std::chrono::steady_clock::now();
    for (const auto& pos : snaps) {
      kernel.run(pos, r);
      kernel_pairs += kernel.hits().size();
    }
    t.kernel_seconds = std::min(t.kernel_seconds, seconds_since(t1));
    t.pairs = kernel_pairs;
    if (legacy_pairs != kernel_pairs) *identical = false;
  }
  for (const auto& pos : snaps) {
    const legacy::Grid grid(pos, r);
    std::set<DistPair> want;
    for (const auto& p : grid.pairs_within_distance()) {
      want.insert({p.i, p.j, bits_of(p.distance)});
    }
    kernel.run(pos, r);
    std::set<DistPair> got;
    for (const auto& h : kernel.hits()) got.insert({h.i, h.j, bits_of(std::sqrt(h.d2))});
    if (got != want) {
      *identical = false;
      return t;
    }
  }
  return t;
}

// ProximityCache at 1/2/4 threads must emit byte-identical pair lists, and
// IncrementalProximity must converge to the same per-snapshot pair sets.
bool modes_and_threads_agree(const Trace& trace, const std::vector<double>& ranges) {
  ThreadPool pool1(1);
  const ProximityCache reference(trace, ranges, &pool1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(threads);
    const ProximityCache cache(trace, ranges, &pool);
    for (std::size_t s = 0; s < trace.size(); ++s) {
      for (const double r : ranges) {
        if (cache.pairs(s, r) != reference.pairs(s, r)) return false;
      }
    }
  }
  IncrementalProximity inc(ranges);
  for (std::size_t s = 0; s < trace.size(); ++s) {
    inc.advance(trace.snapshots()[s]);
    for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
      auto a = inc.pairs(ri);
      auto b = reference.pairs(s, ranges[ri]);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b) return false;
    }
  }
  return true;
}

// Second full-trace pass over an already-warm kernel must not allocate.
std::size_t warm_pass_allocations(const std::vector<std::vector<Vec3>>& snaps,
                                  const std::vector<double>& ranges) {
  PairKernel kernel;
  std::vector<PairKernel::PairList> lists(ranges.size());
  const auto pass = [&] {
    for (const auto& pos : snaps) {
      if (pos.empty()) continue;
      kernel.run(pos, ranges.back());
      for (auto& l : lists) l.clear();
      kernel.classify(ranges, lists.data());
    }
  };
  pass();  // warm: scratch grows to the largest snapshot
  const std::size_t before = bench::allocation_count();
  pass();
  return bench::allocation_count() - before;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = BenchOptions::parse(argc, argv);
  std::string out_path = "BENCH_analysis.json";
  double ci_floor = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[i + 1];
    if (std::strcmp(argv[i], "--ci-floor") == 0 && i + 1 < argc) {
      ci_floor = std::strtod(argv[i + 1], nullptr);
    }
  }
  print_title("Batched proximity kernel vs legacy hash grid",
              "infrastructure bench (no paper figure)");

  const std::vector<double> ranges{kBluetoothRange, kWifiRange};
  const std::vector<LandArchetype> lands{
      LandArchetype::kApfelLand, LandArchetype::kDanceIsland, LandArchetype::kIsleOfView};
  prewarm_lands(lands, options);

  // Gapped traces: same lands under the blackout scenario, capped at 6 h —
  // they feed the identity checks only, never the timing.
  const double gap_hours = std::min(options.hours, 6.0);

  struct LandRow {
    std::string slug;
    std::size_t snapshots;
    std::uint64_t pairs;
    double legacy_seconds;
    double kernel_seconds;
  };
  std::vector<LandRow> rows;
  bool bitwise_identical = true;
  bool threads_modes_ok = true;
  bool gapped_ok = true;
  double legacy_total = 0.0;
  double kernel_total = 0.0;
  std::uint64_t pairs_total = 0;

  for (const LandArchetype land : lands) {
    const ExperimentResults& base = land_results(land, options);
    const auto snaps = snapshot_positions(base.trace);
    const SweepTiming t = time_sweep(snaps, kWifiRange, 3, &bitwise_identical);
    legacy_total += t.legacy_seconds;
    kernel_total += t.kernel_seconds;
    pairs_total += t.pairs;
    rows.push_back({land_slug(land), snaps.size(), t.pairs, t.legacy_seconds,
                    t.kernel_seconds});
    std::printf("%-14s %5zu snaps %9llu pairs   legacy %7.3f s   kernel %7.3f s   %5.2fx\n",
                land_slug(land), snaps.size(),
                static_cast<unsigned long long>(t.pairs), t.legacy_seconds,
                t.kernel_seconds,
                t.kernel_seconds > 0.0 ? t.legacy_seconds / t.kernel_seconds : 0.0);

    if (!modes_and_threads_agree(base.trace, ranges)) threads_modes_ok = false;

    ExperimentConfig cfg;
    cfg.archetype = land;
    cfg.duration = gap_hours * kSecondsPerHour;
    cfg.seed = options.seed;
    cfg.fault_scenario = "blackouts";
    cfg.analysis_threads = 1;
    const ExperimentResults gapped = run_experiment(cfg);
    const auto gap_snaps = snapshot_positions(gapped.trace);
    bool gap_identical = true;
    (void)time_sweep(gap_snaps, kWifiRange, 1, &gap_identical);
    if (!gap_identical || !modes_and_threads_agree(gapped.trace, ranges)) {
      gapped_ok = false;
    }
    std::printf("%-14s gapped trace: %zu snaps, %zu gaps, identity %s\n",
                land_slug(land), gapped.trace.size(), gapped.trace.gaps().size(),
                gapped_ok ? "yes" : "NO");
  }

  const ExperimentResults& iov = land_results(LandArchetype::kIsleOfView, options);
  const std::size_t warm_allocs = warm_pass_allocations(snapshot_positions(iov.trace), ranges);

  const double speedup = kernel_total > 0.0 ? legacy_total / kernel_total : 0.0;
  const double kernel_pairs_per_s =
      kernel_total > 0.0 ? static_cast<double>(pairs_total) / kernel_total : 0.0;
  std::printf("aggregate: %.2fx speedup, %.3g pairs/s kernel, warm allocs %zu\n",
              speedup, kernel_pairs_per_s, warm_allocs);

  const bool speedup_ok = speedup >= 1.5;
  const bool allocs_ok = warm_allocs == 0;
  const bool floor_ok = ci_floor <= 0.0 || kernel_pairs_per_s >= ci_floor;
  if (!bitwise_identical) {
    std::fprintf(stderr, "ERROR: kernel pairs/distances differ from legacy grid\n");
  }
  if (!threads_modes_ok) {
    std::fprintf(stderr, "ERROR: pair lists differ across thread counts or modes\n");
  }
  if (!gapped_ok) std::fprintf(stderr, "ERROR: identity failed on gapped traces\n");
  if (!speedup_ok) std::fprintf(stderr, "ERROR: speedup %.2fx below 1.5x gate\n", speedup);
  if (!allocs_ok) {
    std::fprintf(stderr, "ERROR: %zu allocations on the warm kernel path\n", warm_allocs);
  }
  if (!floor_ok) {
    std::fprintf(stderr, "ERROR: %.3g pairs/s below committed floor %.3g\n",
                 kernel_pairs_per_s, ci_floor);
  }

  std::string body;
  appendf(body, "{\n");
  appendf(body, "    \"hours\": %.3f,\n", options.hours);
  appendf(body, "    \"seed\": %llu,\n", static_cast<unsigned long long>(options.seed));
  appendf(body, "    \"range\": %.1f,\n", kWifiRange);
  appendf(body, "    \"lands\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LandRow& r = rows[i];
    appendf(body,
            "      {\"land\": \"%s\", \"snapshots\": %zu, \"pairs\": %llu, "
            "\"legacy_seconds\": %.6f, \"kernel_seconds\": %.6f, \"speedup\": %.3f}%s\n",
            r.slug.c_str(), r.snapshots, static_cast<unsigned long long>(r.pairs),
            r.legacy_seconds, r.kernel_seconds,
            r.kernel_seconds > 0.0 ? r.legacy_seconds / r.kernel_seconds : 0.0,
            i + 1 == rows.size() ? "" : ",");
  }
  appendf(body, "    ],\n");
  appendf(body, "    \"single_thread_speedup\": %.3f,\n", speedup);
  appendf(body, "    \"kernel_pairs_per_second\": %.1f,\n", kernel_pairs_per_s);
  appendf(body, "    \"bitwise_identical_to_legacy\": %s,\n",
          bitwise_identical ? "true" : "false");
  appendf(body, "    \"identical_across_threads_and_modes\": %s,\n",
          threads_modes_ok ? "true" : "false");
  appendf(body, "    \"identical_on_gapped_traces\": %s,\n", gapped_ok ? "true" : "false");
  appendf(body, "    \"warm_path_allocations\": %zu,\n", warm_allocs);
  appendf(body, "    \"speedup_gate_1_5x\": %s\n", speedup_ok ? "true" : "false");
  appendf(body, "  }");
  update_bench_json(out_path, "pair_kernel", body);
  std::printf("wrote %s\n", out_path.c_str());

  const bool ok = bitwise_identical && threads_modes_ok && gapped_ok && speedup_ok &&
                  allocs_ok && floor_ok;
  return ok ? 0 : 1;
}
