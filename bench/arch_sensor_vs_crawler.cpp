// Section 2 reproduction: the two monitoring architectures compared.
//
// Runs both instruments simultaneously on the same world and scores each
// against the protocol-free ground truth:
//   * sensor network  — in-world LSL objects (16-avatar sweeps, 16 KB cache,
//     HTTP rate limits, object expiry + replication);
//   * crawler         — a libsecondlife-style client sampling the minimap.
// Also demonstrates the hard failure of the sensor architecture on private
// land (Dance Island), which is why the paper built the crawler.
#include <cstdio>

#include "bench_common.hpp"
#include "core/testbed.hpp"
#include "sensors/collector.hpp"
#include "sensors/deployment.hpp"
#include "sensors/object_runtime.hpp"

using namespace slmob;
using namespace slmob::bench;

namespace {

// Fraction of ground-truth fixes (avatar present in a 10 s bin) that the
// measured trace also contains, and the mean position error of matches.
struct Fidelity {
  double recall{0.0};
  double mean_pos_error{0.0};
};

Fidelity score(const Trace& truth, const Trace& measured) {
  Fidelity f;
  std::size_t matched = 0;
  std::size_t total = 0;
  double err = 0.0;
  std::size_t m_idx = 0;
  for (const auto& snap : truth.snapshots()) {
    // Find the measured snapshot in the same 10 s bin.
    while (m_idx + 1 < measured.snapshots().size() &&
           measured.snapshots()[m_idx + 1].time <= snap.time + 5.0) {
      ++m_idx;
    }
    const Snapshot* msnap =
        m_idx < measured.snapshots().size() &&
                std::abs(measured.snapshots()[m_idx].time - snap.time) <= 10.0
            ? &measured.snapshots()[m_idx]
            : nullptr;
    for (const auto& fix : snap.fixes) {
      ++total;
      if (msnap == nullptr) continue;
      if (const auto pos = msnap->find(fix.id)) {
        ++matched;
        err += pos->distance2d_to(fix.pos);
      }
    }
  }
  if (total > 0) f.recall = static_cast<double>(matched) / static_cast<double>(total);
  if (matched > 0) f.mean_pos_error = err / static_cast<double>(matched);
  return f;
}

void run_land(LandArchetype archetype, const BenchOptions& options) {
  TestbedConfig cfg;
  cfg.archetype = archetype;
  cfg.seed = options.seed;
  cfg.with_ground_truth = true;
  Testbed bed(cfg);

  // Sensor architecture riding on the same world/network.
  HttpCollector collector(bed.network(), bed.world().land().name());
  ObjectRuntime runtime(bed.world(), bed.network(), options.seed ^ 0x5e);
  SensorGridConfig grid_cfg;
  grid_cfg.grid_side = 2;
  SensorGridDeployment grid(runtime, bed.world().land(), collector.address(), grid_cfg);
  const std::size_t deployed = grid.deploy_all(0.0);
  bed.engine().add(kPriorityServer,
                   [&](Seconds now, Seconds dt) { runtime.tick(now, dt); });
  bed.engine().add(kPriorityMonitor, [&](Seconds now, Seconds dt) { grid.tick(now, dt); });

  bed.run_until(options.hours * kSecondsPerHour);

  const Trace truth = bed.ground_truth()->take_trace();
  Trace crawled = bed.crawler()->take_trace();
  crawled.strip_sitting_fixes();
  const Trace sensed = collector.build_trace(10.0);

  const Fidelity crawler_f = score(truth, crawled);
  const Fidelity sensor_f = score(truth, sensed);

  std::printf("\n--- %s (%s land) ---\n", bed.world().land().name().c_str(),
              bed.world().land().access() == LandAccess::kPrivate ? "private" : "public");
  std::printf("ground truth: %zu unique users, avg conc %.1f\n",
              truth.summary().unique_users, truth.summary().avg_concurrent);
  std::printf("sensors deployed: %zu/4 (land policy), redeployments: %llu\n", deployed,
              static_cast<unsigned long long>(grid.stats().redeployments));
  std::printf("%-10s %8s %10s %10s %10s\n", "instrument", "recall", "pos-err(m)",
              "uniq-seen", "records");
  std::printf("%-10s %7.1f%% %10.2f %10zu %10zu\n", "crawler", crawler_f.recall * 100.0,
              crawler_f.mean_pos_error, crawled.summary().unique_users,
              crawled.snapshots().size());
  std::printf("%-10s %7.1f%% %10.2f %10zu %10llu\n", "sensors", sensor_f.recall * 100.0,
              sensor_f.mean_pos_error, sensed.summary().unique_users,
              static_cast<unsigned long long>(collector.stats().records));

  // Per-sensor limitation tallies.
  std::uint64_t truncated = 0;
  std::uint64_t throttled = 0;
  std::uint64_t errors = 0;
  for (const auto& obj : runtime.objects()) {
    truncated += obj->stats().detections_truncated;
    throttled += obj->stats().http_throttled;
    errors += obj->stats().script_errors;
  }
  std::printf("sensor limits hit: %llu detections lost to the 16-cap, %llu HTTP "
              "throttles, %llu script errors\n",
              static_cast<unsigned long long>(truncated),
              static_cast<unsigned long long>(throttled),
              static_cast<unsigned long long>(errors));
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::parse(argc, argv);
  if (options.hours > 6.0) options.hours = 6.0;  // this bench runs 2 rigs per land
  print_title("Architecture comparison: virtual sensors vs external crawler",
              "La & Michiardi 2008, section 2 (monitoring architectures)");
  for (const LandArchetype archetype : kAllArchetypes) run_land(archetype, options);
  std::printf("\nConclusion (matches the paper): the crawler monitors any land in\n"
              "its totality; the sensor network cannot enter private lands, loses\n"
              "detections to the 16-avatar cap in crowds, and is throttled by the\n"
              "platform's HTTP limits.\n");
  return 0;
}
