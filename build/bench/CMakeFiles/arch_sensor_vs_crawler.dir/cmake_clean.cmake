file(REMOVE_RECURSE
  "CMakeFiles/arch_sensor_vs_crawler.dir/arch_sensor_vs_crawler.cpp.o"
  "CMakeFiles/arch_sensor_vs_crawler.dir/arch_sensor_vs_crawler.cpp.o.d"
  "arch_sensor_vs_crawler"
  "arch_sensor_vs_crawler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_sensor_vs_crawler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
