# Empty dependencies file for arch_sensor_vs_crawler.
# This may be replaced when dependencies are built.
