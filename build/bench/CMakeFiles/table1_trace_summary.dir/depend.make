# Empty dependencies file for table1_trace_summary.
# This may be replaced when dependencies are built.
