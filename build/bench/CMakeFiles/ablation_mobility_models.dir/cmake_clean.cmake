file(REMOVE_RECURSE
  "CMakeFiles/ablation_mobility_models.dir/ablation_mobility_models.cpp.o"
  "CMakeFiles/ablation_mobility_models.dir/ablation_mobility_models.cpp.o.d"
  "ablation_mobility_models"
  "ablation_mobility_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mobility_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
