# Empty dependencies file for ablation_mobility_models.
# This may be replaced when dependencies are built.
