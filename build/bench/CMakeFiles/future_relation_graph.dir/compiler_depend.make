# Empty compiler generated dependencies file for future_relation_graph.
# This may be replaced when dependencies are built.
