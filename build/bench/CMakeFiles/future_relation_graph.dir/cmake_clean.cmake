file(REMOVE_RECURSE
  "CMakeFiles/future_relation_graph.dir/future_relation_graph.cpp.o"
  "CMakeFiles/future_relation_graph.dir/future_relation_graph.cpp.o.d"
  "future_relation_graph"
  "future_relation_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_relation_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
