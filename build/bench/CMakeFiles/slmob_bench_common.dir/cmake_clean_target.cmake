file(REMOVE_RECURSE
  "libslmob_bench_common.a"
)
