# Empty dependencies file for slmob_bench_common.
# This may be replaced when dependencies are built.
