file(REMOVE_RECURSE
  "CMakeFiles/slmob_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/slmob_bench_common.dir/bench_common.cpp.o.d"
  "libslmob_bench_common.a"
  "libslmob_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
