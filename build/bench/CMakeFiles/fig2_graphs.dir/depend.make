# Empty dependencies file for fig2_graphs.
# This may be replaced when dependencies are built.
