file(REMOVE_RECURSE
  "CMakeFiles/fig2_graphs.dir/fig2_graphs.cpp.o"
  "CMakeFiles/fig2_graphs.dir/fig2_graphs.cpp.o.d"
  "fig2_graphs"
  "fig2_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
