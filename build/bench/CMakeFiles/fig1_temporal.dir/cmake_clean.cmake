file(REMOVE_RECURSE
  "CMakeFiles/fig1_temporal.dir/fig1_temporal.cpp.o"
  "CMakeFiles/fig1_temporal.dir/fig1_temporal.cpp.o.d"
  "fig1_temporal"
  "fig1_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
