# Empty dependencies file for fig1_temporal.
# This may be replaced when dependencies are built.
