file(REMOVE_RECURSE
  "CMakeFiles/dtn_forwarding.dir/dtn_forwarding.cpp.o"
  "CMakeFiles/dtn_forwarding.dir/dtn_forwarding.cpp.o.d"
  "dtn_forwarding"
  "dtn_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
