# Empty compiler generated dependencies file for dtn_forwarding.
# This may be replaced when dependencies are built.
