# Empty compiler generated dependencies file for ablation_perturbation.
# This may be replaced when dependencies are built.
