file(REMOVE_RECURSE
  "CMakeFiles/ablation_perturbation.dir/ablation_perturbation.cpp.o"
  "CMakeFiles/ablation_perturbation.dir/ablation_perturbation.cpp.o.d"
  "ablation_perturbation"
  "ablation_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
