# Empty compiler generated dependencies file for fig4_trips.
# This may be replaced when dependencies are built.
