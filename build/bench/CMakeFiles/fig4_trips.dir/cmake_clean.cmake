file(REMOVE_RECURSE
  "CMakeFiles/fig4_trips.dir/fig4_trips.cpp.o"
  "CMakeFiles/fig4_trips.dir/fig4_trips.cpp.o.d"
  "fig4_trips"
  "fig4_trips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_trips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
