file(REMOVE_RECURSE
  "CMakeFiles/fig3_zone_occupation.dir/fig3_zone_occupation.cpp.o"
  "CMakeFiles/fig3_zone_occupation.dir/fig3_zone_occupation.cpp.o.d"
  "fig3_zone_occupation"
  "fig3_zone_occupation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_zone_occupation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
