# Empty dependencies file for fig3_zone_occupation.
# This may be replaced when dependencies are built.
