# Empty dependencies file for slmob_cli.
# This may be replaced when dependencies are built.
