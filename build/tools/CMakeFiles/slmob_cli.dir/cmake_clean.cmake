file(REMOVE_RECURSE
  "CMakeFiles/slmob_cli.dir/slmob_cli.cpp.o"
  "CMakeFiles/slmob_cli.dir/slmob_cli.cpp.o.d"
  "slmob"
  "slmob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
