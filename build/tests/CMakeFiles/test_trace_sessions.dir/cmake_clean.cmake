file(REMOVE_RECURSE
  "CMakeFiles/test_trace_sessions.dir/test_trace_sessions.cpp.o"
  "CMakeFiles/test_trace_sessions.dir/test_trace_sessions.cpp.o.d"
  "test_trace_sessions"
  "test_trace_sessions.pdb"
  "test_trace_sessions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
