file(REMOVE_RECURSE
  "CMakeFiles/test_lsl_value.dir/test_lsl_value.cpp.o"
  "CMakeFiles/test_lsl_value.dir/test_lsl_value.cpp.o.d"
  "test_lsl_value"
  "test_lsl_value.pdb"
  "test_lsl_value[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsl_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
