# Empty dependencies file for test_lsl_value.
# This may be replaced when dependencies are built.
