# Empty dependencies file for test_util_vec3.
# This may be replaced when dependencies are built.
