file(REMOVE_RECURSE
  "CMakeFiles/test_util_vec3.dir/test_util_vec3.cpp.o"
  "CMakeFiles/test_util_vec3.dir/test_util_vec3.cpp.o.d"
  "test_util_vec3"
  "test_util_vec3.pdb"
  "test_util_vec3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_vec3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
