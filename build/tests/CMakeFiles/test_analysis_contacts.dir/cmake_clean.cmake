file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_contacts.dir/test_analysis_contacts.cpp.o"
  "CMakeFiles/test_analysis_contacts.dir/test_analysis_contacts.cpp.o.d"
  "test_analysis_contacts"
  "test_analysis_contacts.pdb"
  "test_analysis_contacts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_contacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
