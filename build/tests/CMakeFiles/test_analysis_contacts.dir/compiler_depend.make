# Empty compiler generated dependencies file for test_analysis_contacts.
# This may be replaced when dependencies are built.
