# Empty compiler generated dependencies file for test_analysis_graphs.
# This may be replaced when dependencies are built.
