file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_graphs.dir/test_analysis_graphs.cpp.o"
  "CMakeFiles/test_analysis_graphs.dir/test_analysis_graphs.cpp.o.d"
  "test_analysis_graphs"
  "test_analysis_graphs.pdb"
  "test_analysis_graphs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
