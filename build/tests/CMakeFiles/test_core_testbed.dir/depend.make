# Empty dependencies file for test_core_testbed.
# This may be replaced when dependencies are built.
