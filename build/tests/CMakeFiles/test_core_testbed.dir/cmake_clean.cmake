file(REMOVE_RECURSE
  "CMakeFiles/test_core_testbed.dir/test_core_testbed.cpp.o"
  "CMakeFiles/test_core_testbed.dir/test_core_testbed.cpp.o.d"
  "test_core_testbed"
  "test_core_testbed.pdb"
  "test_core_testbed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
