# Empty dependencies file for test_sensors_http.
# This may be replaced when dependencies are built.
