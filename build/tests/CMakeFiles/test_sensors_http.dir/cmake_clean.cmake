file(REMOVE_RECURSE
  "CMakeFiles/test_sensors_http.dir/test_sensors_http.cpp.o"
  "CMakeFiles/test_sensors_http.dir/test_sensors_http.cpp.o.d"
  "test_sensors_http"
  "test_sensors_http.pdb"
  "test_sensors_http[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensors_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
