file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_flights.dir/test_analysis_flights.cpp.o"
  "CMakeFiles/test_analysis_flights.dir/test_analysis_flights.cpp.o.d"
  "test_analysis_flights"
  "test_analysis_flights.pdb"
  "test_analysis_flights[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_flights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
