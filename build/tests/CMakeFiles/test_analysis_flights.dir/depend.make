# Empty dependencies file for test_analysis_flights.
# This may be replaced when dependencies are built.
