file(REMOVE_RECURSE
  "CMakeFiles/test_crawler.dir/test_crawler.cpp.o"
  "CMakeFiles/test_crawler.dir/test_crawler.cpp.o.d"
  "test_crawler"
  "test_crawler.pdb"
  "test_crawler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crawler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
