# Empty dependencies file for test_crawler.
# This may be replaced when dependencies are built.
