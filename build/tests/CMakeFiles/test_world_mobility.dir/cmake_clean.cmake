file(REMOVE_RECURSE
  "CMakeFiles/test_world_mobility.dir/test_world_mobility.cpp.o"
  "CMakeFiles/test_world_mobility.dir/test_world_mobility.cpp.o.d"
  "test_world_mobility"
  "test_world_mobility.pdb"
  "test_world_mobility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_world_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
