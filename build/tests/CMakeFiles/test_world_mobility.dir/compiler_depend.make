# Empty compiler generated dependencies file for test_world_mobility.
# This may be replaced when dependencies are built.
