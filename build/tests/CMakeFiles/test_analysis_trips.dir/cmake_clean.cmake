file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_trips.dir/test_analysis_trips.cpp.o"
  "CMakeFiles/test_analysis_trips.dir/test_analysis_trips.cpp.o.d"
  "test_analysis_trips"
  "test_analysis_trips.pdb"
  "test_analysis_trips[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_trips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
