# Empty compiler generated dependencies file for test_analysis_trips.
# This may be replaced when dependencies are built.
