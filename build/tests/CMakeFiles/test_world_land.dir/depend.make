# Empty dependencies file for test_world_land.
# This may be replaced when dependencies are built.
