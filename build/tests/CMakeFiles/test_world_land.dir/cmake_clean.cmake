file(REMOVE_RECURSE
  "CMakeFiles/test_world_land.dir/test_world_land.cpp.o"
  "CMakeFiles/test_world_land.dir/test_world_land.cpp.o.d"
  "test_world_land"
  "test_world_land.pdb"
  "test_world_land[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_world_land.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
