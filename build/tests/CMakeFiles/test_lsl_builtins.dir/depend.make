# Empty dependencies file for test_lsl_builtins.
# This may be replaced when dependencies are built.
