file(REMOVE_RECURSE
  "CMakeFiles/test_lsl_builtins.dir/test_lsl_builtins.cpp.o"
  "CMakeFiles/test_lsl_builtins.dir/test_lsl_builtins.cpp.o.d"
  "test_lsl_builtins"
  "test_lsl_builtins.pdb"
  "test_lsl_builtins[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsl_builtins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
