file(REMOVE_RECURSE
  "CMakeFiles/test_net_network.dir/test_net_network.cpp.o"
  "CMakeFiles/test_net_network.dir/test_net_network.cpp.o.d"
  "test_net_network"
  "test_net_network.pdb"
  "test_net_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
