# Empty compiler generated dependencies file for test_net_network.
# This may be replaced when dependencies are built.
