# Empty dependencies file for test_trace_serialize.
# This may be replaced when dependencies are built.
