file(REMOVE_RECURSE
  "CMakeFiles/test_trace_serialize.dir/test_trace_serialize.cpp.o"
  "CMakeFiles/test_trace_serialize.dir/test_trace_serialize.cpp.o.d"
  "test_trace_serialize"
  "test_trace_serialize.pdb"
  "test_trace_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
