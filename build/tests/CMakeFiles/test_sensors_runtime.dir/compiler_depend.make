# Empty compiler generated dependencies file for test_sensors_runtime.
# This may be replaced when dependencies are built.
