file(REMOVE_RECURSE
  "CMakeFiles/test_sensors_runtime.dir/test_sensors_runtime.cpp.o"
  "CMakeFiles/test_sensors_runtime.dir/test_sensors_runtime.cpp.o.d"
  "test_sensors_runtime"
  "test_sensors_runtime.pdb"
  "test_sensors_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensors_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
