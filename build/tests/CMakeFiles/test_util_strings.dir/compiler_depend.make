# Empty compiler generated dependencies file for test_util_strings.
# This may be replaced when dependencies are built.
