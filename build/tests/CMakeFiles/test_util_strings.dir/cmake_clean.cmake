file(REMOVE_RECURSE
  "CMakeFiles/test_util_strings.dir/test_util_strings.cpp.o"
  "CMakeFiles/test_util_strings.dir/test_util_strings.cpp.o.d"
  "test_util_strings"
  "test_util_strings.pdb"
  "test_util_strings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
