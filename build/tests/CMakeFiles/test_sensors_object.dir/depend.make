# Empty dependencies file for test_sensors_object.
# This may be replaced when dependencies are built.
