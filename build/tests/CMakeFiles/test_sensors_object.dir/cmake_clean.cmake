file(REMOVE_RECURSE
  "CMakeFiles/test_sensors_object.dir/test_sensors_object.cpp.o"
  "CMakeFiles/test_sensors_object.dir/test_sensors_object.cpp.o.d"
  "test_sensors_object"
  "test_sensors_object.pdb"
  "test_sensors_object[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensors_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
