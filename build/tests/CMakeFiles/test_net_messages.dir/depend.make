# Empty dependencies file for test_net_messages.
# This may be replaced when dependencies are built.
