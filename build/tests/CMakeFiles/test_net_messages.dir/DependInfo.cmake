
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_net_messages.cpp" "tests/CMakeFiles/test_net_messages.dir/test_net_messages.cpp.o" "gcc" "tests/CMakeFiles/test_net_messages.dir/test_net_messages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/slmob_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/slmob_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/dtn/CMakeFiles/slmob_dtn.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/slmob_server.dir/DependInfo.cmake"
  "/root/repo/build/src/crawler/CMakeFiles/slmob_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/slmob_client.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/slmob_world.dir/DependInfo.cmake"
  "/root/repo/build/src/lsl/CMakeFiles/slmob_lsl.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/slmob_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/slmob_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/slmob_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/slmob_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slmob_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
