file(REMOVE_RECURSE
  "CMakeFiles/test_net_messages.dir/test_net_messages.cpp.o"
  "CMakeFiles/test_net_messages.dir/test_net_messages.cpp.o.d"
  "test_net_messages"
  "test_net_messages.pdb"
  "test_net_messages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
