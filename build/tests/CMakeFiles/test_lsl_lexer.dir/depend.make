# Empty dependencies file for test_lsl_lexer.
# This may be replaced when dependencies are built.
