file(REMOVE_RECURSE
  "CMakeFiles/test_lsl_lexer.dir/test_lsl_lexer.cpp.o"
  "CMakeFiles/test_lsl_lexer.dir/test_lsl_lexer.cpp.o.d"
  "test_lsl_lexer"
  "test_lsl_lexer.pdb"
  "test_lsl_lexer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsl_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
