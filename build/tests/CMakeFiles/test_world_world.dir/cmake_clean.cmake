file(REMOVE_RECURSE
  "CMakeFiles/test_world_world.dir/test_world_world.cpp.o"
  "CMakeFiles/test_world_world.dir/test_world_world.cpp.o.d"
  "test_world_world"
  "test_world_world.pdb"
  "test_world_world[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_world_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
