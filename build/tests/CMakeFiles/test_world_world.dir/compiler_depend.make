# Empty compiler generated dependencies file for test_world_world.
# This may be replaced when dependencies are built.
