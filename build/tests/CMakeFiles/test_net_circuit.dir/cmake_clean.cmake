file(REMOVE_RECURSE
  "CMakeFiles/test_net_circuit.dir/test_net_circuit.cpp.o"
  "CMakeFiles/test_net_circuit.dir/test_net_circuit.cpp.o.d"
  "test_net_circuit"
  "test_net_circuit.pdb"
  "test_net_circuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
