# Empty compiler generated dependencies file for test_core_experiment.
# This may be replaced when dependencies are built.
