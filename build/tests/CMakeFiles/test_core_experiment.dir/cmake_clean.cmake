file(REMOVE_RECURSE
  "CMakeFiles/test_core_experiment.dir/test_core_experiment.cpp.o"
  "CMakeFiles/test_core_experiment.dir/test_core_experiment.cpp.o.d"
  "test_core_experiment"
  "test_core_experiment.pdb"
  "test_core_experiment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
