file(REMOVE_RECURSE
  "CMakeFiles/test_trace_trace.dir/test_trace_trace.cpp.o"
  "CMakeFiles/test_trace_trace.dir/test_trace_trace.cpp.o.d"
  "test_trace_trace"
  "test_trace_trace.pdb"
  "test_trace_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
