# Empty compiler generated dependencies file for test_stats_fit.
# This may be replaced when dependencies are built.
