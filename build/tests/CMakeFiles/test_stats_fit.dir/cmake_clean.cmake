file(REMOVE_RECURSE
  "CMakeFiles/test_stats_fit.dir/test_stats_fit.cpp.o"
  "CMakeFiles/test_stats_fit.dir/test_stats_fit.cpp.o.d"
  "test_stats_fit"
  "test_stats_fit.pdb"
  "test_stats_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
