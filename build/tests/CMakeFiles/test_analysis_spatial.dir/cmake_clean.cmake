file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_spatial.dir/test_analysis_spatial.cpp.o"
  "CMakeFiles/test_analysis_spatial.dir/test_analysis_spatial.cpp.o.d"
  "test_analysis_spatial"
  "test_analysis_spatial.pdb"
  "test_analysis_spatial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
