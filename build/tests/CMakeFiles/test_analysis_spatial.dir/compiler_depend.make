# Empty compiler generated dependencies file for test_analysis_spatial.
# This may be replaced when dependencies are built.
