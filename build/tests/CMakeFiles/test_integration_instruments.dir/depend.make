# Empty dependencies file for test_integration_instruments.
# This may be replaced when dependencies are built.
