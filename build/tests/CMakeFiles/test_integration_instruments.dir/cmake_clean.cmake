file(REMOVE_RECURSE
  "CMakeFiles/test_integration_instruments.dir/test_integration_instruments.cpp.o"
  "CMakeFiles/test_integration_instruments.dir/test_integration_instruments.cpp.o.d"
  "test_integration_instruments"
  "test_integration_instruments.pdb"
  "test_integration_instruments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_instruments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
