# Empty dependencies file for test_analysis_zones.
# This may be replaced when dependencies are built.
