file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_zones.dir/test_analysis_zones.cpp.o"
  "CMakeFiles/test_analysis_zones.dir/test_analysis_zones.cpp.o.d"
  "test_analysis_zones"
  "test_analysis_zones.pdb"
  "test_analysis_zones[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
