# Empty dependencies file for test_lsl_interpreter.
# This may be replaced when dependencies are built.
