file(REMOVE_RECURSE
  "CMakeFiles/test_lsl_interpreter.dir/test_lsl_interpreter.cpp.o"
  "CMakeFiles/test_lsl_interpreter.dir/test_lsl_interpreter.cpp.o.d"
  "test_lsl_interpreter"
  "test_lsl_interpreter.pdb"
  "test_lsl_interpreter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsl_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
