# Empty compiler generated dependencies file for test_analysis_relations.
# This may be replaced when dependencies are built.
