file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_relations.dir/test_analysis_relations.cpp.o"
  "CMakeFiles/test_analysis_relations.dir/test_analysis_relations.cpp.o.d"
  "test_analysis_relations"
  "test_analysis_relations.pdb"
  "test_analysis_relations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_relations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
