file(REMOVE_RECURSE
  "CMakeFiles/test_util_bytes.dir/test_util_bytes.cpp.o"
  "CMakeFiles/test_util_bytes.dir/test_util_bytes.cpp.o.d"
  "test_util_bytes"
  "test_util_bytes.pdb"
  "test_util_bytes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
