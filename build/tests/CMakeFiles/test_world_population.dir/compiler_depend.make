# Empty compiler generated dependencies file for test_world_population.
# This may be replaced when dependencies are built.
