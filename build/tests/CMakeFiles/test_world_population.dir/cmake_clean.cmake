file(REMOVE_RECURSE
  "CMakeFiles/test_world_population.dir/test_world_population.cpp.o"
  "CMakeFiles/test_world_population.dir/test_world_population.cpp.o.d"
  "test_world_population"
  "test_world_population.pdb"
  "test_world_population[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_world_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
