file(REMOVE_RECURSE
  "CMakeFiles/test_lsl_parser.dir/test_lsl_parser.cpp.o"
  "CMakeFiles/test_lsl_parser.dir/test_lsl_parser.cpp.o.d"
  "test_lsl_parser"
  "test_lsl_parser.pdb"
  "test_lsl_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsl_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
