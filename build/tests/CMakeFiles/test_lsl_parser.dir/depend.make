# Empty dependencies file for test_lsl_parser.
# This may be replaced when dependencies are built.
