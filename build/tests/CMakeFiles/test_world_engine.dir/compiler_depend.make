# Empty compiler generated dependencies file for test_world_engine.
# This may be replaced when dependencies are built.
