file(REMOVE_RECURSE
  "CMakeFiles/test_world_engine.dir/test_world_engine.cpp.o"
  "CMakeFiles/test_world_engine.dir/test_world_engine.cpp.o.d"
  "test_world_engine"
  "test_world_engine.pdb"
  "test_world_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_world_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
