# Empty dependencies file for test_trace_query.
# This may be replaced when dependencies are built.
