file(REMOVE_RECURSE
  "CMakeFiles/test_trace_query.dir/test_trace_query.cpp.o"
  "CMakeFiles/test_trace_query.dir/test_trace_query.cpp.o.d"
  "test_trace_query"
  "test_trace_query.pdb"
  "test_trace_query[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
