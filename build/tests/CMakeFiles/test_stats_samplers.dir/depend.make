# Empty dependencies file for test_stats_samplers.
# This may be replaced when dependencies are built.
