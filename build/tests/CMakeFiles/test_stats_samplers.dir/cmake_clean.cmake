file(REMOVE_RECURSE
  "CMakeFiles/test_stats_samplers.dir/test_stats_samplers.cpp.o"
  "CMakeFiles/test_stats_samplers.dir/test_stats_samplers.cpp.o.d"
  "test_stats_samplers"
  "test_stats_samplers.pdb"
  "test_stats_samplers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_samplers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
