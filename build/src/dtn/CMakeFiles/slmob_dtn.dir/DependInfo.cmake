
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtn/dtn_simulator.cpp" "src/dtn/CMakeFiles/slmob_dtn.dir/dtn_simulator.cpp.o" "gcc" "src/dtn/CMakeFiles/slmob_dtn.dir/dtn_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/slmob_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/slmob_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/slmob_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slmob_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
