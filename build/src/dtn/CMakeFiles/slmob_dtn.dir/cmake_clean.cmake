file(REMOVE_RECURSE
  "CMakeFiles/slmob_dtn.dir/dtn_simulator.cpp.o"
  "CMakeFiles/slmob_dtn.dir/dtn_simulator.cpp.o.d"
  "libslmob_dtn.a"
  "libslmob_dtn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_dtn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
