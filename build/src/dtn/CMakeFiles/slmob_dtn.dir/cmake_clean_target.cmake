file(REMOVE_RECURSE
  "libslmob_dtn.a"
)
