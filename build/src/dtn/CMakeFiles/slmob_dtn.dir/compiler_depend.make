# Empty compiler generated dependencies file for slmob_dtn.
# This may be replaced when dependencies are built.
