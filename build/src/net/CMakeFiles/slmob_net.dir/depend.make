# Empty dependencies file for slmob_net.
# This may be replaced when dependencies are built.
