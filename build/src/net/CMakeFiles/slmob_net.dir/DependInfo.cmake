
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/circuit.cpp" "src/net/CMakeFiles/slmob_net.dir/circuit.cpp.o" "gcc" "src/net/CMakeFiles/slmob_net.dir/circuit.cpp.o.d"
  "/root/repo/src/net/messages.cpp" "src/net/CMakeFiles/slmob_net.dir/messages.cpp.o" "gcc" "src/net/CMakeFiles/slmob_net.dir/messages.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/slmob_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/slmob_net.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/slmob_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
