file(REMOVE_RECURSE
  "CMakeFiles/slmob_net.dir/circuit.cpp.o"
  "CMakeFiles/slmob_net.dir/circuit.cpp.o.d"
  "CMakeFiles/slmob_net.dir/messages.cpp.o"
  "CMakeFiles/slmob_net.dir/messages.cpp.o.d"
  "CMakeFiles/slmob_net.dir/network.cpp.o"
  "CMakeFiles/slmob_net.dir/network.cpp.o.d"
  "libslmob_net.a"
  "libslmob_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
