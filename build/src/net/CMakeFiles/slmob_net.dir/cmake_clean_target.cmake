file(REMOVE_RECURSE
  "libslmob_net.a"
)
