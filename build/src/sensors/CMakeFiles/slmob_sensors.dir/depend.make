# Empty dependencies file for slmob_sensors.
# This may be replaced when dependencies are built.
