file(REMOVE_RECURSE
  "libslmob_sensors.a"
)
