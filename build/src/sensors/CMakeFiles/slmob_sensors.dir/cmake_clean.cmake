file(REMOVE_RECURSE
  "CMakeFiles/slmob_sensors.dir/collector.cpp.o"
  "CMakeFiles/slmob_sensors.dir/collector.cpp.o.d"
  "CMakeFiles/slmob_sensors.dir/deployment.cpp.o"
  "CMakeFiles/slmob_sensors.dir/deployment.cpp.o.d"
  "CMakeFiles/slmob_sensors.dir/http.cpp.o"
  "CMakeFiles/slmob_sensors.dir/http.cpp.o.d"
  "CMakeFiles/slmob_sensors.dir/http_transport.cpp.o"
  "CMakeFiles/slmob_sensors.dir/http_transport.cpp.o.d"
  "CMakeFiles/slmob_sensors.dir/object_runtime.cpp.o"
  "CMakeFiles/slmob_sensors.dir/object_runtime.cpp.o.d"
  "CMakeFiles/slmob_sensors.dir/sensor_object.cpp.o"
  "CMakeFiles/slmob_sensors.dir/sensor_object.cpp.o.d"
  "libslmob_sensors.a"
  "libslmob_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
