
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/collector.cpp" "src/sensors/CMakeFiles/slmob_sensors.dir/collector.cpp.o" "gcc" "src/sensors/CMakeFiles/slmob_sensors.dir/collector.cpp.o.d"
  "/root/repo/src/sensors/deployment.cpp" "src/sensors/CMakeFiles/slmob_sensors.dir/deployment.cpp.o" "gcc" "src/sensors/CMakeFiles/slmob_sensors.dir/deployment.cpp.o.d"
  "/root/repo/src/sensors/http.cpp" "src/sensors/CMakeFiles/slmob_sensors.dir/http.cpp.o" "gcc" "src/sensors/CMakeFiles/slmob_sensors.dir/http.cpp.o.d"
  "/root/repo/src/sensors/http_transport.cpp" "src/sensors/CMakeFiles/slmob_sensors.dir/http_transport.cpp.o" "gcc" "src/sensors/CMakeFiles/slmob_sensors.dir/http_transport.cpp.o.d"
  "/root/repo/src/sensors/object_runtime.cpp" "src/sensors/CMakeFiles/slmob_sensors.dir/object_runtime.cpp.o" "gcc" "src/sensors/CMakeFiles/slmob_sensors.dir/object_runtime.cpp.o.d"
  "/root/repo/src/sensors/sensor_object.cpp" "src/sensors/CMakeFiles/slmob_sensors.dir/sensor_object.cpp.o" "gcc" "src/sensors/CMakeFiles/slmob_sensors.dir/sensor_object.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lsl/CMakeFiles/slmob_lsl.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/slmob_world.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/slmob_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/slmob_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/slmob_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slmob_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
