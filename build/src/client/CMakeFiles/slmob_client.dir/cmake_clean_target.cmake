file(REMOVE_RECURSE
  "libslmob_client.a"
)
