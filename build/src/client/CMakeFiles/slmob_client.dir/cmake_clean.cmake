file(REMOVE_RECURSE
  "CMakeFiles/slmob_client.dir/metaverse_client.cpp.o"
  "CMakeFiles/slmob_client.dir/metaverse_client.cpp.o.d"
  "libslmob_client.a"
  "libslmob_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
