# Empty compiler generated dependencies file for slmob_client.
# This may be replaced when dependencies are built.
