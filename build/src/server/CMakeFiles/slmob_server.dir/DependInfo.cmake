
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/sim_server.cpp" "src/server/CMakeFiles/slmob_server.dir/sim_server.cpp.o" "gcc" "src/server/CMakeFiles/slmob_server.dir/sim_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/slmob_net.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/slmob_world.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/slmob_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slmob_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
