file(REMOVE_RECURSE
  "libslmob_server.a"
)
