file(REMOVE_RECURSE
  "CMakeFiles/slmob_server.dir/sim_server.cpp.o"
  "CMakeFiles/slmob_server.dir/sim_server.cpp.o.d"
  "libslmob_server.a"
  "libslmob_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
