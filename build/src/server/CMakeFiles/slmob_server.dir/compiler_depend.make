# Empty compiler generated dependencies file for slmob_server.
# This may be replaced when dependencies are built.
