# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("stats")
subdirs("trace")
subdirs("world")
subdirs("net")
subdirs("server")
subdirs("client")
subdirs("crawler")
subdirs("lsl")
subdirs("sensors")
subdirs("analysis")
subdirs("dtn")
subdirs("core")
