# Empty compiler generated dependencies file for slmob_core.
# This may be replaced when dependencies are built.
