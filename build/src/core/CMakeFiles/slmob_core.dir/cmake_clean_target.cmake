file(REMOVE_RECURSE
  "libslmob_core.a"
)
