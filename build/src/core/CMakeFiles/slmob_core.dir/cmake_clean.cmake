file(REMOVE_RECURSE
  "CMakeFiles/slmob_core.dir/experiment.cpp.o"
  "CMakeFiles/slmob_core.dir/experiment.cpp.o.d"
  "CMakeFiles/slmob_core.dir/report.cpp.o"
  "CMakeFiles/slmob_core.dir/report.cpp.o.d"
  "CMakeFiles/slmob_core.dir/testbed.cpp.o"
  "CMakeFiles/slmob_core.dir/testbed.cpp.o.d"
  "libslmob_core.a"
  "libslmob_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
