# Empty compiler generated dependencies file for slmob_stats.
# This may be replaced when dependencies are built.
