file(REMOVE_RECURSE
  "libslmob_stats.a"
)
