file(REMOVE_RECURSE
  "CMakeFiles/slmob_stats.dir/ecdf.cpp.o"
  "CMakeFiles/slmob_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/slmob_stats.dir/fit.cpp.o"
  "CMakeFiles/slmob_stats.dir/fit.cpp.o.d"
  "CMakeFiles/slmob_stats.dir/histogram.cpp.o"
  "CMakeFiles/slmob_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/slmob_stats.dir/ks.cpp.o"
  "CMakeFiles/slmob_stats.dir/ks.cpp.o.d"
  "CMakeFiles/slmob_stats.dir/samplers.cpp.o"
  "CMakeFiles/slmob_stats.dir/samplers.cpp.o.d"
  "CMakeFiles/slmob_stats.dir/summary.cpp.o"
  "CMakeFiles/slmob_stats.dir/summary.cpp.o.d"
  "libslmob_stats.a"
  "libslmob_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
