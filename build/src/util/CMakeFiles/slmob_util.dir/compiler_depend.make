# Empty compiler generated dependencies file for slmob_util.
# This may be replaced when dependencies are built.
