file(REMOVE_RECURSE
  "libslmob_util.a"
)
