file(REMOVE_RECURSE
  "CMakeFiles/slmob_util.dir/bytes.cpp.o"
  "CMakeFiles/slmob_util.dir/bytes.cpp.o.d"
  "CMakeFiles/slmob_util.dir/csv.cpp.o"
  "CMakeFiles/slmob_util.dir/csv.cpp.o.d"
  "CMakeFiles/slmob_util.dir/log.cpp.o"
  "CMakeFiles/slmob_util.dir/log.cpp.o.d"
  "CMakeFiles/slmob_util.dir/rng.cpp.o"
  "CMakeFiles/slmob_util.dir/rng.cpp.o.d"
  "CMakeFiles/slmob_util.dir/strings.cpp.o"
  "CMakeFiles/slmob_util.dir/strings.cpp.o.d"
  "libslmob_util.a"
  "libslmob_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
