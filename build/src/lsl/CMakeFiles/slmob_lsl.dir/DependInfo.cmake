
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsl/interpreter.cpp" "src/lsl/CMakeFiles/slmob_lsl.dir/interpreter.cpp.o" "gcc" "src/lsl/CMakeFiles/slmob_lsl.dir/interpreter.cpp.o.d"
  "/root/repo/src/lsl/lexer.cpp" "src/lsl/CMakeFiles/slmob_lsl.dir/lexer.cpp.o" "gcc" "src/lsl/CMakeFiles/slmob_lsl.dir/lexer.cpp.o.d"
  "/root/repo/src/lsl/parser.cpp" "src/lsl/CMakeFiles/slmob_lsl.dir/parser.cpp.o" "gcc" "src/lsl/CMakeFiles/slmob_lsl.dir/parser.cpp.o.d"
  "/root/repo/src/lsl/value.cpp" "src/lsl/CMakeFiles/slmob_lsl.dir/value.cpp.o" "gcc" "src/lsl/CMakeFiles/slmob_lsl.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/slmob_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
