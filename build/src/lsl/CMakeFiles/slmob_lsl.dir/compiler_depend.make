# Empty compiler generated dependencies file for slmob_lsl.
# This may be replaced when dependencies are built.
