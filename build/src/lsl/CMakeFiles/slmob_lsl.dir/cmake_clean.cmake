file(REMOVE_RECURSE
  "CMakeFiles/slmob_lsl.dir/interpreter.cpp.o"
  "CMakeFiles/slmob_lsl.dir/interpreter.cpp.o.d"
  "CMakeFiles/slmob_lsl.dir/lexer.cpp.o"
  "CMakeFiles/slmob_lsl.dir/lexer.cpp.o.d"
  "CMakeFiles/slmob_lsl.dir/parser.cpp.o"
  "CMakeFiles/slmob_lsl.dir/parser.cpp.o.d"
  "CMakeFiles/slmob_lsl.dir/value.cpp.o"
  "CMakeFiles/slmob_lsl.dir/value.cpp.o.d"
  "libslmob_lsl.a"
  "libslmob_lsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_lsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
