file(REMOVE_RECURSE
  "libslmob_lsl.a"
)
