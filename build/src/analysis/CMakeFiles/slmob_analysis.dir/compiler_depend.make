# Empty compiler generated dependencies file for slmob_analysis.
# This may be replaced when dependencies are built.
