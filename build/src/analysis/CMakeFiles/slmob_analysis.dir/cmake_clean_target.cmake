file(REMOVE_RECURSE
  "libslmob_analysis.a"
)
