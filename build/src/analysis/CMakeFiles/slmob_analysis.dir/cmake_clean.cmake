file(REMOVE_RECURSE
  "CMakeFiles/slmob_analysis.dir/contacts.cpp.o"
  "CMakeFiles/slmob_analysis.dir/contacts.cpp.o.d"
  "CMakeFiles/slmob_analysis.dir/flights.cpp.o"
  "CMakeFiles/slmob_analysis.dir/flights.cpp.o.d"
  "CMakeFiles/slmob_analysis.dir/graphs.cpp.o"
  "CMakeFiles/slmob_analysis.dir/graphs.cpp.o.d"
  "CMakeFiles/slmob_analysis.dir/relations.cpp.o"
  "CMakeFiles/slmob_analysis.dir/relations.cpp.o.d"
  "CMakeFiles/slmob_analysis.dir/spatial_index.cpp.o"
  "CMakeFiles/slmob_analysis.dir/spatial_index.cpp.o.d"
  "CMakeFiles/slmob_analysis.dir/trips.cpp.o"
  "CMakeFiles/slmob_analysis.dir/trips.cpp.o.d"
  "CMakeFiles/slmob_analysis.dir/zones.cpp.o"
  "CMakeFiles/slmob_analysis.dir/zones.cpp.o.d"
  "libslmob_analysis.a"
  "libslmob_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
