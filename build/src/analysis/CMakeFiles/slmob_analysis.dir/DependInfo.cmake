
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/contacts.cpp" "src/analysis/CMakeFiles/slmob_analysis.dir/contacts.cpp.o" "gcc" "src/analysis/CMakeFiles/slmob_analysis.dir/contacts.cpp.o.d"
  "/root/repo/src/analysis/flights.cpp" "src/analysis/CMakeFiles/slmob_analysis.dir/flights.cpp.o" "gcc" "src/analysis/CMakeFiles/slmob_analysis.dir/flights.cpp.o.d"
  "/root/repo/src/analysis/graphs.cpp" "src/analysis/CMakeFiles/slmob_analysis.dir/graphs.cpp.o" "gcc" "src/analysis/CMakeFiles/slmob_analysis.dir/graphs.cpp.o.d"
  "/root/repo/src/analysis/relations.cpp" "src/analysis/CMakeFiles/slmob_analysis.dir/relations.cpp.o" "gcc" "src/analysis/CMakeFiles/slmob_analysis.dir/relations.cpp.o.d"
  "/root/repo/src/analysis/spatial_index.cpp" "src/analysis/CMakeFiles/slmob_analysis.dir/spatial_index.cpp.o" "gcc" "src/analysis/CMakeFiles/slmob_analysis.dir/spatial_index.cpp.o.d"
  "/root/repo/src/analysis/trips.cpp" "src/analysis/CMakeFiles/slmob_analysis.dir/trips.cpp.o" "gcc" "src/analysis/CMakeFiles/slmob_analysis.dir/trips.cpp.o.d"
  "/root/repo/src/analysis/zones.cpp" "src/analysis/CMakeFiles/slmob_analysis.dir/zones.cpp.o" "gcc" "src/analysis/CMakeFiles/slmob_analysis.dir/zones.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/slmob_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/slmob_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slmob_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
