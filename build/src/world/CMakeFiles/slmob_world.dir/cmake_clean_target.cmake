file(REMOVE_RECURSE
  "libslmob_world.a"
)
