
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/world/archetypes.cpp" "src/world/CMakeFiles/slmob_world.dir/archetypes.cpp.o" "gcc" "src/world/CMakeFiles/slmob_world.dir/archetypes.cpp.o.d"
  "/root/repo/src/world/avatar.cpp" "src/world/CMakeFiles/slmob_world.dir/avatar.cpp.o" "gcc" "src/world/CMakeFiles/slmob_world.dir/avatar.cpp.o.d"
  "/root/repo/src/world/engine.cpp" "src/world/CMakeFiles/slmob_world.dir/engine.cpp.o" "gcc" "src/world/CMakeFiles/slmob_world.dir/engine.cpp.o.d"
  "/root/repo/src/world/land.cpp" "src/world/CMakeFiles/slmob_world.dir/land.cpp.o" "gcc" "src/world/CMakeFiles/slmob_world.dir/land.cpp.o.d"
  "/root/repo/src/world/levy_walk.cpp" "src/world/CMakeFiles/slmob_world.dir/levy_walk.cpp.o" "gcc" "src/world/CMakeFiles/slmob_world.dir/levy_walk.cpp.o.d"
  "/root/repo/src/world/poi_gravity.cpp" "src/world/CMakeFiles/slmob_world.dir/poi_gravity.cpp.o" "gcc" "src/world/CMakeFiles/slmob_world.dir/poi_gravity.cpp.o.d"
  "/root/repo/src/world/population.cpp" "src/world/CMakeFiles/slmob_world.dir/population.cpp.o" "gcc" "src/world/CMakeFiles/slmob_world.dir/population.cpp.o.d"
  "/root/repo/src/world/random_waypoint.cpp" "src/world/CMakeFiles/slmob_world.dir/random_waypoint.cpp.o" "gcc" "src/world/CMakeFiles/slmob_world.dir/random_waypoint.cpp.o.d"
  "/root/repo/src/world/world.cpp" "src/world/CMakeFiles/slmob_world.dir/world.cpp.o" "gcc" "src/world/CMakeFiles/slmob_world.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/slmob_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/slmob_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
