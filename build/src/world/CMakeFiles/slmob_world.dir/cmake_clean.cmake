file(REMOVE_RECURSE
  "CMakeFiles/slmob_world.dir/archetypes.cpp.o"
  "CMakeFiles/slmob_world.dir/archetypes.cpp.o.d"
  "CMakeFiles/slmob_world.dir/avatar.cpp.o"
  "CMakeFiles/slmob_world.dir/avatar.cpp.o.d"
  "CMakeFiles/slmob_world.dir/engine.cpp.o"
  "CMakeFiles/slmob_world.dir/engine.cpp.o.d"
  "CMakeFiles/slmob_world.dir/land.cpp.o"
  "CMakeFiles/slmob_world.dir/land.cpp.o.d"
  "CMakeFiles/slmob_world.dir/levy_walk.cpp.o"
  "CMakeFiles/slmob_world.dir/levy_walk.cpp.o.d"
  "CMakeFiles/slmob_world.dir/poi_gravity.cpp.o"
  "CMakeFiles/slmob_world.dir/poi_gravity.cpp.o.d"
  "CMakeFiles/slmob_world.dir/population.cpp.o"
  "CMakeFiles/slmob_world.dir/population.cpp.o.d"
  "CMakeFiles/slmob_world.dir/random_waypoint.cpp.o"
  "CMakeFiles/slmob_world.dir/random_waypoint.cpp.o.d"
  "CMakeFiles/slmob_world.dir/world.cpp.o"
  "CMakeFiles/slmob_world.dir/world.cpp.o.d"
  "libslmob_world.a"
  "libslmob_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
