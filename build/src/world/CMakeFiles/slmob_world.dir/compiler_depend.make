# Empty compiler generated dependencies file for slmob_world.
# This may be replaced when dependencies are built.
