file(REMOVE_RECURSE
  "CMakeFiles/slmob_crawler.dir/crawler.cpp.o"
  "CMakeFiles/slmob_crawler.dir/crawler.cpp.o.d"
  "libslmob_crawler.a"
  "libslmob_crawler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_crawler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
