file(REMOVE_RECURSE
  "libslmob_crawler.a"
)
