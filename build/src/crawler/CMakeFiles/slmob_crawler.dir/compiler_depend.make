# Empty compiler generated dependencies file for slmob_crawler.
# This may be replaced when dependencies are built.
