# Empty dependencies file for slmob_trace.
# This may be replaced when dependencies are built.
