file(REMOVE_RECURSE
  "CMakeFiles/slmob_trace.dir/query.cpp.o"
  "CMakeFiles/slmob_trace.dir/query.cpp.o.d"
  "CMakeFiles/slmob_trace.dir/serialize.cpp.o"
  "CMakeFiles/slmob_trace.dir/serialize.cpp.o.d"
  "CMakeFiles/slmob_trace.dir/sessions.cpp.o"
  "CMakeFiles/slmob_trace.dir/sessions.cpp.o.d"
  "CMakeFiles/slmob_trace.dir/trace.cpp.o"
  "CMakeFiles/slmob_trace.dir/trace.cpp.o.d"
  "libslmob_trace.a"
  "libslmob_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slmob_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
