file(REMOVE_RECURSE
  "libslmob_trace.a"
)
