file(REMOVE_RECURSE
  "CMakeFiles/custom_land.dir/custom_land.cpp.o"
  "CMakeFiles/custom_land.dir/custom_land.cpp.o.d"
  "custom_land"
  "custom_land.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_land.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
