# Empty dependencies file for custom_land.
# This may be replaced when dependencies are built.
