# Empty compiler generated dependencies file for custom_land.
# This may be replaced when dependencies are built.
