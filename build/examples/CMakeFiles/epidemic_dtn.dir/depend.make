# Empty dependencies file for epidemic_dtn.
# This may be replaced when dependencies are built.
