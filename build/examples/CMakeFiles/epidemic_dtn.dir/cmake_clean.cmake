file(REMOVE_RECURSE
  "CMakeFiles/epidemic_dtn.dir/epidemic_dtn.cpp.o"
  "CMakeFiles/epidemic_dtn.dir/epidemic_dtn.cpp.o.d"
  "epidemic_dtn"
  "epidemic_dtn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epidemic_dtn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
