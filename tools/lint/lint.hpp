// slmob-lint — project-specific static analysis for the slmob tree.
//
// Every headline guarantee of this reproduction — bit-identical traces at
// any thread count, gap-censored analysis, crash-safe journals — is enforced
// at runtime by sanitizer jobs, replay witnesses and bench gates. This tool
// is the static layer in front of them: it stops invariant-breaking code
// from compiling into the tree at all, by scanning source text for the
// idioms that have historically broken those guarantees.
//
// The scanner is deliberately token-level (no libclang, no compile flags):
// it tokenizes C++ well enough to skip comments, strings and raw strings,
// then runs a fixed set of rule families over the token stream. False
// positives are expected and cheap — any finding can be suppressed in place
// with a justified comment:
//
//   // slmob-lint: allow(<rule>[, <rule>...]) -- <why this site is safe>
//
// placed on the offending line or alone on the line above it. The
// justification text after `--` is mandatory; a bare allow() is itself a
// finding. Rule names may be a full check ("determinism/wall-clock") or a
// family prefix ("determinism").
//
// Rule families (see DESIGN.md §16 for rationale):
//   determinism        unseeded RNG and wall-clock reads in simulation code
//   ordered-iteration  range-for over unordered containers in src/ + tools/
//   checked-durability discarded fwrite/fflush/fsync/fclose results
//   alloc-free         allocation idioms inside `// slmob:alloc-free` regions
//   float-determinism  order-sensitive float reductions in analysis kernels
//   header-hygiene     missing #pragma once / include guard, using namespace
//   lint               meta findings (unjustified or unknown suppressions)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace slmob::lint {

// One scanned source file: `path` is repo-relative with forward slashes
// (path prefixes drive rule scoping), `text` is the full file contents.
struct SourceFile {
  std::string path;
  std::string text;
};

struct Finding {
  std::string path;
  int line{0};
  int col{0};
  std::string rule;     // "family/check"
  std::string message;
  bool suppressed{false};          // matched a justified allow()
  std::string justification;       // the text after `--` when suppressed
};

struct LintResult {
  std::vector<Finding> findings;   // in (path, line, col) order
  std::size_t files_scanned{0};

  [[nodiscard]] std::size_t unsuppressed() const {
    std::size_t n = 0;
    for (const auto& f : findings) {
      if (!f.suppressed) ++n;
    }
    return n;
  }
};

// Runs every rule family over the given sources. Pure function of its
// input: no filesystem access, so tests feed fixture strings directly.
LintResult lint_sources(const std::vector<SourceFile>& sources);

// Convenience: lint one in-memory file.
LintResult lint_source(const std::string& path, const std::string& text);

// The rule identifiers this build knows, sorted — allow() names are
// validated against this list (family prefixes are accepted too).
const std::vector<std::string>& known_rules();

// True when `path` should be scanned at all (extension and skip-list
// check; lint fixtures with intentional violations are excluded).
bool should_scan(const std::string& path);

// Renders findings as a JSON report (machine-readable gate output).
std::string findings_to_json(const LintResult& result);

}  // namespace slmob::lint
