#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <string_view>

namespace slmob::lint {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class Kind { kIdent, kNumber, kString, kPunct };

struct Tok {
  Kind kind;
  std::string text;
  int line;
  int col;
};

// A suppression comment, parsed from `// slmob-lint: allow(a, b) -- why`.
struct Allow {
  std::vector<std::string> rules;
  bool justified{false};
  std::string justification;
  int line{0};
  bool alone{false};  // comment is the only thing on its line
};

struct Scan {
  std::vector<Tok> tokens;
  std::vector<Allow> allows;
  std::vector<int> alloc_free_lines;  // lines carrying `slmob:alloc-free`
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

std::string trim(std::string s) {
  const auto notspace = [](unsigned char c) { return std::isspace(c) == 0; };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), notspace));
  s.erase(std::find_if(s.rbegin(), s.rend(), notspace).base(), s.end());
  return s;
}

// Parses the body of a suppression comment. `tokens_on_line` tells whether
// any code token precedes the comment on its line (trailing style) or the
// comment stands alone (applies to the next line instead).
void parse_comment(const std::string& text, int line, bool alone, Scan& out) {
  // The marker must open the comment body; doc examples that quote the
  // syntax behind a nested `//` or prose are not live suppressions.
  std::size_t body = 0;
  if (text.size() >= 2 && (text.compare(0, 2, "//") == 0 || text.compare(0, 2, "/*") == 0)) {
    body = 2;
  }
  while (body < text.size() && std::isspace(static_cast<unsigned char>(text[body])) != 0) {
    ++body;
  }
  if (text.compare(body, 16, "slmob:alloc-free") == 0) {
    out.alloc_free_lines.push_back(line);
  }
  if (text.compare(body, 11, "slmob-lint:") != 0) return;
  const std::size_t tag = body;
  Allow allow;
  allow.line = line;
  allow.alone = alone;
  const std::size_t open = text.find("allow(", tag);
  if (open != std::string::npos) {
    const std::size_t close = text.find(')', open);
    if (close != std::string::npos) {
      std::string list = text.substr(open + 6, close - open - 6);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        const std::string rule = trim(list.substr(pos, comma - pos));
        if (!rule.empty()) allow.rules.push_back(rule);
        pos = comma + 1;
      }
      const std::size_t dash = text.find("--", close);
      if (dash != std::string::npos) {
        allow.justification = trim(text.substr(dash + 2));
        allow.justified = !allow.justification.empty();
      }
    }
  }
  out.allows.push_back(std::move(allow));
}

Scan tokenize(const std::string& text) {
  Scan out;
  int line = 1;
  int col = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  int last_token_line = 0;  // for deciding whether a comment stands alone

  const auto advance = [&](std::size_t k) {
    for (std::size_t j = 0; j < k && i < n; ++j, ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < n) {
    const char c = text[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const int at = line;
      const bool alone = last_token_line != line;
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      parse_comment(text.substr(i, end - i), at, alone, out);
      advance(end - i);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int at = line;
      const bool alone = last_token_line != line;
      std::size_t end = text.find("*/", i + 2);
      end = end == std::string::npos ? n : end + 2;
      parse_comment(text.substr(i, end - i), at, alone, out);
      advance(end - i);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && text[p] != '(') delim += text[p++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = text.find(closer, p);
      end = end == std::string::npos ? n : end + closer.size();
      out.tokens.push_back({Kind::kString, "<raw-string>", line, col});
      last_token_line = line;
      advance(end - i);
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < n && text[p] != quote) {
        p += text[p] == '\\' ? 2u : 1u;
      }
      out.tokens.push_back({Kind::kString, "<string>", line, col});
      last_token_line = line;
      advance(std::min(p + 1, n) - i);
      continue;
    }
    if (ident_start(c)) {
      std::size_t p = i + 1;
      while (p < n && ident_char(text[p])) ++p;
      out.tokens.push_back({Kind::kIdent, text.substr(i, p - i), line, col});
      last_token_line = line;
      advance(p - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])) != 0)) {
      // pp-number: digits, idents, dots, and exponent signs.
      std::size_t p = i + 1;
      while (p < n) {
        const char d = text[p];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++p;
        } else if ((d == '+' || d == '-') &&
                   (text[p - 1] == 'e' || text[p - 1] == 'E' || text[p - 1] == 'p' ||
                    text[p - 1] == 'P')) {
          ++p;
        } else {
          break;
        }
      }
      out.tokens.push_back({Kind::kNumber, text.substr(i, p - i), line, col});
      last_token_line = line;
      advance(p - i);
      continue;
    }
    // `::` folds into one token so qualification checks are single lookups.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      out.tokens.push_back({Kind::kPunct, "::", line, col});
      last_token_line = line;
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      out.tokens.push_back({Kind::kPunct, "->", line, col});
      last_token_line = line;
      advance(2);
      continue;
    }
    out.tokens.push_back({Kind::kPunct, std::string(1, c), line, col});
    last_token_line = line;
    advance(1);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule scoping
// ---------------------------------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header(const std::string& path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h");
}

// The only sanctioned wall-clock entry point (see DESIGN.md §16). Bench
// timing harnesses measure real elapsed time by design and are allowlisted
// as a path; everything else reaches the clock through util/wallclock.hpp.
bool wall_clock_allowed(const std::string& path) {
  return path == "src/util/wallclock.hpp" || starts_with(path, "bench/");
}

bool in_ordered_iteration_scope(const std::string& path) {
  return starts_with(path, "src/") || starts_with(path, "tools/");
}

bool in_float_scope(const std::string& path) { return starts_with(path, "src/"); }

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

const std::set<std::string>& clock_idents() {
  static const std::set<std::string> kClocks = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "clock_gettime", "gettimeofday", "timespec_get",
      "localtime",     "gmtime",       "mktime"};
  return kClocks;
}

const std::set<std::string>& durability_idents() {
  static const std::set<std::string> kCalls = {"fwrite", "fflush", "fsync", "fdatasync",
                                               "fclose"};
  return kCalls;
}

const std::set<std::string>& alloc_idents() {
  static const std::set<std::string> kAlloc = {
      "push_back", "emplace_back", "emplace",     "emplace_front", "insert",
      "resize",    "reserve",      "make_unique", "make_shared",   "malloc",
      "calloc",    "realloc",      "strdup",      "new"};
  return kAlloc;
}

const std::set<std::string>& unordered_types() {
  static const std::set<std::string> kTypes = {"unordered_map", "unordered_set",
                                               "unordered_multimap",
                                               "unordered_multiset"};
  return kTypes;
}

struct Ctx {
  const std::string& path;
  const std::vector<Tok>& toks;
  std::vector<Finding>& findings;

  void add(const Tok& at, std::string rule, std::string message) const {
    findings.push_back(
        {path, at.line, at.col, std::move(rule), std::move(message), false, {}});
  }
};

// Index of the matching close paren/brace for the opener at `open`.
// Returns toks.size() when unbalanced (torn fixture); callers stop there.
std::size_t match_forward(const std::vector<Tok>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Kind::kPunct) continue;
    if (toks[i].text == opener) ++depth;
    if (toks[i].text == closer && --depth == 0) return i;
  }
  return toks.size();
}

// True when token i is qualified as std::<name> (or ::<name> at global
// scope) rather than a member or a name in some other namespace.
bool std_qualified(const std::vector<Tok>& toks, std::size_t i) {
  if (i < 1 || toks[i - 1].text != "::") return false;
  return i < 2 || toks[i - 2].text == "std" || toks[i - 2].kind == Kind::kPunct;
}

bool member_access(const std::vector<Tok>& toks, std::size_t i) {
  return i >= 1 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
}

void check_determinism(const Ctx& c) {
  const auto& toks = c.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Kind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t == "random_device") {
      c.add(toks[i], "determinism/random-device",
            "std::random_device is non-deterministic; seed a slmob RNG instead");
      continue;
    }
    if ((t == "rand" || t == "srand") && i + 1 < toks.size() && toks[i + 1].text == "(" &&
        !member_access(toks, i)) {
      if (i >= 1 && toks[i - 1].text == "::" && !std_qualified(toks, i)) continue;
      c.add(toks[i], "determinism/libc-rand",
            t + "() uses hidden global state; use a seeded slmob RNG");
      continue;
    }
    if (wall_clock_allowed(c.path)) continue;
    if (clock_idents().contains(t)) {
      c.add(toks[i], "determinism/wall-clock",
            t + " reads the wall clock; go through util/wallclock.hpp (the only "
                "sanctioned entry point) so simulation stays replayable");
      continue;
    }
    if (t == "time" && i + 1 < toks.size() && toks[i + 1].text == "(" &&
        std_qualified(toks, i)) {
      c.add(toks[i], "determinism/wall-clock",
            "time() reads the wall clock; go through util/wallclock.hpp");
    }
  }
}

void check_ordered_iteration(const Ctx& c) {
  if (!in_ordered_iteration_scope(c.path)) return;
  const auto& toks = c.toks;

  // Pass 1: names declared with an unordered container type in this file.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Kind::kIdent || !unordered_types().contains(toks[i].text)) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" || toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Kind::kIdent) {
      unordered_names.insert(toks[j].text);
    }
  }

  // Pass 2: range-for statements whose range expression names one of them.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Kind::kIdent || toks[i].text != "for" || toks[i + 1].text != "(") {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    // Find the range-for `:` at depth 1 (``::`` is a distinct token).
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")") --depth;
      if (depth == 1 && toks[j].kind == Kind::kPunct && toks[j].text == ":") {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind != Kind::kIdent) continue;
      if (unordered_names.contains(toks[j].text) ||
          unordered_types().contains(toks[j].text)) {
        c.add(toks[i], "ordered-iteration/unordered-range-for",
              "range-for over unordered container '" + toks[j].text +
                  "': iteration order is implementation-defined and must not reach "
                  "traces, reports, CSV or journal frames — sort first or justify");
        break;
      }
    }
  }
}

void check_checked_durability(const Ctx& c) {
  const auto& toks = c.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Kind::kIdent || !durability_idents().contains(toks[i].text)) {
      continue;
    }
    if (toks[i + 1].text != "(") continue;
    if (member_access(toks, i)) continue;  // some_obj.fflush(...) is not libc
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close + 1 >= toks.size() || toks[close + 1].text != ";") continue;
    // Walk back over std:: qualification to the statement context.
    std::size_t k = i;
    if (k >= 1 && toks[k - 1].text == "::") k = k >= 2 ? k - 2 : 0;
    const bool discarded =
        k == 0 || toks[k - 1].text == ";" || toks[k - 1].text == "{" ||
        toks[k - 1].text == "}" || toks[k - 1].text == ")" ||
        toks[k - 1].text == ":" || toks[k - 1].text == "else";
    if (discarded) {
      c.add(toks[i], "checked-durability/discarded-result",
            "result of " + toks[i].text +
                "() is discarded; durability I/O errors must be checked (a full "
                "disk silently truncates the artefact) — check or justify");
    }
  }
}

void check_alloc_free(const Ctx& c, const std::vector<int>& regions) {
  const auto& toks = c.toks;
  for (const int anno_line : regions) {
    // The annotated function's body is the first brace block at or after
    // the annotation line.
    std::size_t open = toks.size();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind == Kind::kPunct && toks[i].text == "{" && toks[i].line >= anno_line) {
        open = i;
        break;
      }
    }
    if (open >= toks.size()) continue;
    const std::size_t close = match_forward(toks, open, "{", "}");
    for (std::size_t i = open + 1; i < close && i < toks.size(); ++i) {
      if (toks[i].kind != Kind::kIdent) continue;
      const std::string& t = toks[i].text;
      if (alloc_idents().contains(t) && !(t == "new" && member_access(toks, i))) {
        c.add(toks[i], "alloc-free/allocation",
              "'" + t + "' inside a slmob:alloc-free region; this path is gated "
                        "allocation-free by the alloc-counter benches — hoist the "
                        "allocation out of the hot path or justify (e.g. capacity "
                        "retained across calls)");
        continue;
      }
      if (t == "function" && std_qualified(toks, i)) {
        c.add(toks[i], "alloc-free/allocation",
              "std::function construction may heap-allocate inside a "
              "slmob:alloc-free region; use a function pointer or template");
      }
    }
  }
}

void check_float_determinism(const Ctx& c) {
  if (!in_float_scope(c.path)) return;
  const auto& toks = c.toks;
  const auto is_float_literal = [](const Tok& t) {
    if (t.kind != Kind::kNumber) return false;
    if (starts_with(t.text, "0x") || starts_with(t.text, "0X")) return false;
    return t.text.find('.') != std::string::npos ||
           t.text.find('e') != std::string::npos ||
           t.text.find('E') != std::string::npos || ends_with(t.text, "f") ||
           ends_with(t.text, "F");
  };
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Kind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t == "accumulate" && toks[i + 1].text == "(" && !member_access(toks, i)) {
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      for (std::size_t j = i + 2; j < close && j < toks.size(); ++j) {
        if (is_float_literal(toks[j])) {
          c.add(toks[i], "float-determinism/accumulate",
                "std::accumulate over floats: the sum depends on element order, "
                "which must be canonical (sorted) before reduction — sort first "
                "or justify");
          break;
        }
      }
      continue;
    }
    if ((t == "reduce" || t == "transform_reduce") && std_qualified(toks, i) &&
        toks[i + 1].text == "(") {
      c.add(toks[i], "float-determinism/unordered-reduce",
            "std::" + t + " has unspecified operand order; analysis kernels must "
                          "reduce in a canonical order (use std::accumulate over "
                          "sorted data)");
      continue;
    }
    if (t == "execution" && std_qualified(toks, i)) {
      c.add(toks[i], "float-determinism/unordered-reduce",
            "std::execution policies make evaluation order unspecified; use the "
            "ThreadPool fan-out with deterministic merge instead");
    }
  }
}

void check_header_hygiene(const Ctx& c, const std::string& text) {
  if (!is_header(c.path)) return;
  // Directive scan is line-anchored so a comment that merely mentions
  // "#pragma once" does not count as a guard.
  bool pragma_once = false;
  bool saw_ifndef = false;
  bool guard = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::size_t i = pos;
    while (i < eol && (text[i] == ' ' || text[i] == '\t')) ++i;
    const std::string_view line(text.data() + i, eol - i);
    if (line.rfind("#pragma", 0) == 0 && line.find("once") != std::string_view::npos) {
      pragma_once = true;
    } else if (line.rfind("#ifndef", 0) == 0) {
      saw_ifndef = true;
    } else if (saw_ifndef && line.rfind("#define", 0) == 0) {
      guard = true;
    }
    pos = eol + 1;
  }
  if (!pragma_once && !guard) {
    c.findings.push_back({c.path, 1, 1, "header-hygiene/missing-include-guard",
                          "header has neither #pragma once nor an include guard", false,
                          {}});
  }
  const auto& toks = c.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == Kind::kIdent && toks[i].text == "using" &&
        toks[i + 1].text == "namespace") {
      c.add(toks[i], "header-hygiene/using-namespace-header",
            "'using namespace' in a header leaks into every includer");
    }
  }
}

// ---------------------------------------------------------------------------
// Suppression application
// ---------------------------------------------------------------------------

bool allow_matches(const Allow& allow, const std::string& rule) {
  const std::string family = rule.substr(0, rule.find('/'));
  for (const auto& r : allow.rules) {
    if (r == rule || r == family) return true;
  }
  return false;
}

void apply_allows(const std::string& path, const std::vector<Allow>& allows,
                  std::vector<Finding>& findings) {
  for (auto& f : findings) {
    if (f.path != path) continue;
    for (const auto& allow : allows) {
      const bool same_line = allow.line == f.line;
      const bool line_above = allow.alone && allow.line == f.line - 1;
      if ((same_line || line_above) && allow_matches(allow, f.rule) && allow.justified) {
        f.suppressed = true;
        f.justification = allow.justification;
        break;
      }
    }
  }
  for (const auto& allow : allows) {
    if (allow.rules.empty()) {
      findings.push_back({path, allow.line, 1, "lint/malformed-suppression",
                          "slmob-lint comment without an allow(<rule>) clause", false,
                          {}});
      continue;
    }
    if (!allow.justified) {
      findings.push_back(
          {path, allow.line, 1, "lint/missing-justification",
           "suppression without a justification: write `allow(<rule>) -- <why this "
           "site is safe>`",
           false,
           {}});
    }
    for (const auto& r : allow.rules) {
      bool known = false;
      for (const auto& k : known_rules()) {
        if (k == r || starts_with(k, r + "/")) {
          known = true;
          break;
        }
      }
      if (!known) {
        findings.push_back({path, allow.line, 1, "lint/unknown-rule",
                            "allow() names unknown rule '" + r + "'", false, {}});
      }
    }
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kRules = {
      "alloc-free/allocation",
      "checked-durability/discarded-result",
      "determinism/libc-rand",
      "determinism/random-device",
      "determinism/wall-clock",
      "float-determinism/accumulate",
      "float-determinism/unordered-reduce",
      "header-hygiene/missing-include-guard",
      "header-hygiene/using-namespace-header",
      "lint/malformed-suppression",
      "lint/missing-justification",
      "lint/unknown-rule",
      "ordered-iteration/unordered-range-for",
  };
  return kRules;
}

bool should_scan(const std::string& path) {
  if (path.find("lint_fixtures") != std::string::npos) return false;
  if (starts_with(path, "build")) return false;
  return ends_with(path, ".cpp") || ends_with(path, ".hpp") || ends_with(path, ".cc") ||
         ends_with(path, ".h");
}

LintResult lint_sources(const std::vector<SourceFile>& sources) {
  LintResult result;
  for (const auto& src : sources) {
    ++result.files_scanned;
    const Scan scan = tokenize(src.text);
    std::vector<Finding> file_findings;
    Ctx ctx{src.path, scan.tokens, file_findings};
    check_determinism(ctx);
    check_ordered_iteration(ctx);
    check_checked_durability(ctx);
    check_alloc_free(ctx, scan.alloc_free_lines);
    check_float_determinism(ctx);
    check_header_hygiene(ctx, src.text);
    apply_allows(src.path, scan.allows, file_findings);
    for (auto& f : file_findings) result.findings.push_back(std::move(f));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
  return result;
}

LintResult lint_source(const std::string& path, const std::string& text) {
  return lint_sources({{path, text}});
}

std::string findings_to_json(const LintResult& result) {
  std::ostringstream os;
  os << "{\n  \"files_scanned\": " << result.files_scanned << ",\n";
  os << "  \"unsuppressed\": " << result.unsuppressed() << ",\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": \"" << json_escape(f.path) << "\", \"line\": " << f.line
       << ", \"col\": " << f.col << ", \"rule\": \"" << json_escape(f.rule)
       << "\", \"suppressed\": " << (f.suppressed ? "true" : "false")
       << ", \"message\": \"" << json_escape(f.message) << "\"";
    if (f.suppressed) {
      os << ", \"justification\": \"" << json_escape(f.justification) << "\"";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace slmob::lint
