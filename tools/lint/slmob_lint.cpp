// slmob-lint driver: walks the repo tree, runs the rule engine over every
// scannable source file, prints clickable file:line findings and exits
// nonzero when any unsuppressed finding remains. See lint.hpp for the rule
// families and the suppression protocol.
//
// Usage:
//   slmob-lint [--root DIR] [--json FILE] [--list]
//
//   --root DIR   repository root to scan (default: current directory)
//   --json FILE  also write the machine-readable findings report to FILE
//   --list       list every finding including suppressed ones, with the
//                written justification for each suppression (review mode)

#include "lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

const std::vector<std::string> kScanDirs = {"src", "tools", "bench", "tests", "examples"};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string rel_path(const fs::path& p, const fs::path& root) {
  std::string s = fs::relative(p, root).generic_string();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_out;
  bool list_all = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--list") {
      list_all = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: slmob-lint [--root DIR] [--json FILE] [--list]\n";
      return 0;
    } else {
      std::cerr << "slmob-lint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }
  if (!fs::exists(root)) {
    std::cerr << "slmob-lint: root '" << root.string() << "' does not exist\n";
    return 2;
  }

  // Collect files in sorted path order so the report is stable.
  std::vector<std::string> paths;
  for (const auto& dir : kScanDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel = rel_path(entry.path(), root);
      if (slmob::lint::should_scan(rel)) paths.push_back(rel);
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<slmob::lint::SourceFile> sources;
  sources.reserve(paths.size());
  for (const auto& rel : paths) {
    sources.push_back({rel, read_file(root / rel)});
  }

  const slmob::lint::LintResult result = slmob::lint::lint_sources(sources);

  std::size_t suppressed = 0;
  for (const auto& f : result.findings) {
    if (f.suppressed) {
      ++suppressed;
      if (list_all) {
        std::cout << f.path << ":" << f.line << ":" << f.col << ": allowed [" << f.rule
                  << "] -- " << f.justification << "\n";
      }
      continue;
    }
    std::cout << f.path << ":" << f.line << ":" << f.col << ": error [" << f.rule << "] "
              << f.message << "\n";
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary | std::ios::trunc);
    out << slmob::lint::findings_to_json(result);
    out.flush();
    if (!out) {
      std::cerr << "slmob-lint: failed to write report to '" << json_out << "'\n";
      return 2;
    }
  }

  const std::size_t bad = result.unsuppressed();
  std::cout << "slmob-lint: " << result.files_scanned << " files, " << bad
            << " unsuppressed finding" << (bad == 1 ? "" : "s") << ", " << suppressed
            << " justified suppression" << (suppressed == 1 ? "" : "s") << "\n";
  return bad == 0 ? 0 : 1;
}
