#!/usr/bin/env bash
# One-command lint gate: builds slmob-lint and runs it over the tree.
# Usage: tools/lint/run_lint.sh [--list] [extra slmob-lint args...]
# Exits nonzero when any unsuppressed finding remains.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
BUILD="${SLMOB_LINT_BUILD:-$ROOT/build}"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -S "$ROOT" >/dev/null
fi
cmake --build "$BUILD" --target slmob_lint -j >/dev/null

exec "$BUILD/tools/lint/slmob-lint" --root "$ROOT" --json "$BUILD/lint_findings.json" "$@"
