// slmob command-line tool: collect, inspect, convert and replay traces
// without writing C++.
//
//   slmob run     --land <l>[,<l>...] [--hours H] [--seed S] [--jobs J]
//                 [--faults <scenario>] [--fault-seed S] --out t.slt
//   slmob summary <trace.slt>
//   slmob analyze <trace.slt> [--range R]... [--threads N]
//   slmob sweep   --land <l>[,<l>...] --seeds N [--hours H] [--jobs J]
//   slmob convert <trace.slt> <trace.csv>   (direction by extension)
//   slmob dtn     <trace.slt> [--scheme epidemic|two-hop|direct] [--messages N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/streaming.hpp"
#include "core/checkpoint.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/shards.hpp"
#include "core/supervisor.hpp"
#include "util/thread_pool.hpp"
#include "dtn/dtn_simulator.hpp"
#include "trace/journal.hpp"
#include "trace/serialize.hpp"
#include "trace/stream.hpp"
#include "util/bytes.hpp"
#include "util/sysinfo.hpp"
#include "util/wallclock.hpp"

namespace {

using namespace slmob;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  slmob run --land <apfel|dance|isle>[,<land>...] [--hours H] [--seed S]\n"
               "            [--jobs J]\n"
               "            [--faults none|blackouts|burst-loss|region-flaps|\n"
               "                      collector-crash|overload|chaos|shard-chaos]\n"
               "            [--fault-seed S]\n"
               "            [--journal J.sltj | --checkpoint DIR [--checkpoint-every SEC]]\n"
               "            [--supervise [--max-restarts N] [--watchdog-timeout SEC]]\n"
               "            [--stats-csv F.csv] --out T.slt\n"
               "    (multi-land runs shard across threads; shard i uses seed S+i and\n"
               "     --out must disambiguate with {land} and/or {seed} placeholders)\n"
               "  slmob run --resume DIR [--jobs J] [--out T.slt]\n"
               "  slmob salvage <journal.sltj> [--out T.slt]\n"
               "  slmob summary <trace.slt|journal.sltj> [--stream]\n"
               "  slmob analyze <trace.slt|journal.sltj> [--range R]... [--threads N]\n"
               "                [--stream]\n"
               "  slmob sweep --land <l>[,<l>...] --seeds N [--seed-base S] [--hours H]\n"
               "              [--jobs J]\n"
               "  slmob convert <in.(slt|csv)> <out.(csv|slt)>\n"
               "  slmob dtn <trace.slt> [--scheme epidemic|two-hop|direct] [--messages N]\n"
               "  slmob report <trace.slt> <report.md> [--series]\n");
  return 2;
}

std::optional<LandArchetype> parse_land(const std::string& name) {
  if (name == "apfel" || name == "apfelland") return LandArchetype::kApfelLand;
  if (name == "dance") return LandArchetype::kDanceIsland;
  if (name == "isle" || name == "isleofview") return LandArchetype::kIsleOfView;
  return std::nullopt;
}

std::optional<std::vector<LandArchetype>> parse_lands(const std::string& list) {
  std::vector<LandArchetype> lands;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    const auto land = parse_land(list.substr(pos, comma - pos));
    if (!land) return std::nullopt;
    lands.push_back(*land);
    pos = comma + 1;
  }
  return lands;
}

// Short land name for {land} path substitution — matches the --land spelling.
std::string land_token(LandArchetype land) {
  switch (land) {
    case LandArchetype::kApfelLand: return "apfel";
    case LandArchetype::kDanceIsland: return "dance";
    case LandArchetype::kIsleOfView: return "isle";
  }
  return "land";
}

// Expands {land} and {seed} placeholders so one --out template names every
// shard's trace file.
std::string expand_out_path(std::string path, LandArchetype land, std::uint64_t seed) {
  const auto replace_all = [&path](const std::string& key, const std::string& value) {
    for (std::size_t pos = path.find(key); pos != std::string::npos;
         pos = path.find(key, pos)) {
      path.replace(pos, key.size(), value);
      pos += value.size();
    }
  };
  replace_all("{land}", land_token(land));
  replace_all("{seed}", std::to_string(seed));
  return path;
}

// Up-front writability probe for a run-output path: a 24 h crawl must not
// discover an unwritable --stats-csv only when it tries to save results.
// Opens the file for append (creating it if absent) and removes it again if
// this probe created it, so a failed run leaves no empty artefact behind.
bool probe_writable(const std::string& path) {
  const bool existed = [&] {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    // slmob-lint: allow(checked-durability) -- existence probe on a read-only handle; nothing written
    std::fclose(f);
    return true;
  }();
  FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  // slmob-lint: allow(checked-durability) -- writability probe, zero bytes written; the real save is checked
  std::fclose(f);
  if (!existed) std::remove(path.c_str());
  return true;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Reads a trace in any format, deciding by extension. A .sltj journal is
// salvaged in place (torn tails truncated, trailing gap added), so analyze/
// summary/convert work directly on the journal of a crashed run. Malformed
// input (truncated file, bad magic, corrupt rows) is reported with the file
// name.
Trace read_any(const std::string& path) {
  try {
    if (has_suffix(path, ".sltj")) {
      const JournalSalvage s = salvage_journal(path);
      if (s.torn) {
        std::fprintf(stderr,
                     "%s: torn tail truncated at byte %llu; remainder censored as a gap\n",
                     path.c_str(), static_cast<unsigned long long>(s.bytes_kept));
      }
      return s.trace;
    }
    if (path.size() > 4 && path.substr(path.size() - 4) == ".csv") {
      FILE* f = std::fopen(path.c_str(), "rb");
      if (f == nullptr) throw std::runtime_error("cannot open " + path);
      std::string text;
      char buf[65536];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
      // slmob-lint: allow(checked-durability) -- read-only stream; close failure cannot lose data
      std::fclose(f);
      return trace_from_csv(text, path, 10.0);
    }
    return load_trace(path);
  } catch (const DecodeError& e) {
    throw std::runtime_error(path + ": corrupt or truncated trace (" + e.what() + ")");
  }
}

// Shared tail of every run variant: strip transient sitting fixes (matching
// run_experiment's pre-analysis treatment), save, print the recap.
int finish_run(Trace trace, const CrawlerStats& crawler_stats, const std::string& out) {
  trace.strip_sitting_fixes();
  const TraceSummary s = trace.summary();
  save_trace(trace, out);
  std::printf("wrote %s: %zu snapshots, %zu unique users, avg conc %.1f\n", out.c_str(),
              s.snapshot_count, s.unique_users, s.avg_concurrent);
  if (s.gap_count > 0) {
    std::printf("coverage: %zu gaps, %.0f s uncovered (%zu relogins, %zu crawler backoff resets)\n",
                s.gap_count, s.gap_seconds,
                static_cast<std::size_t>(crawler_stats.relogins),
                static_cast<std::size_t>(crawler_stats.backoff_resets));
  }
  if (s.degradation_count > 0) {
    std::printf("degradation: %zu windows, %.0f s at reduced sampling rate "
                "(%zu escalations, %zu recoveries)\n",
                s.degradation_count, s.degraded_seconds,
                static_cast<std::size_t>(crawler_stats.degrade_escalations),
                static_cast<std::size_t>(crawler_stats.degrade_recoveries));
  }
  return 0;
}

// One line of shed/reject counters, printed only when the run actually hit
// overload protection — fault-free recaps stay byte-identical.
void print_overload_recap(const SimServerStats& server, const NetworkStats& net,
                          const CircuitStats& circuit) {
  const std::uint64_t total = server.logins_rejected_overload + server.messages_shed +
                              net.shed_session + net.shed_snapshot +
                              circuit.deferred_sends;
  if (total == 0) return;
  std::printf("overload: %llu logins rejected, %llu messages shed, "
              "%llu/%llu datagrams shed (session/snapshot), %llu sends deferred\n",
              static_cast<unsigned long long>(server.logins_rejected_overload),
              static_cast<unsigned long long>(server.messages_shed),
              static_cast<unsigned long long>(net.shed_session),
              static_cast<unsigned long long>(net.shed_snapshot),
              static_cast<unsigned long long>(circuit.deferred_sends));
}

int cmd_run(const std::vector<std::string>& args) {
  std::vector<LandArchetype> lands;
  double hours = 24.0;
  std::uint64_t seed = 42;
  std::uint64_t fault_seed = 0;
  std::string faults = "none";
  std::string out;
  std::string journal;
  std::string checkpoint_dir;
  std::string resume_dir;
  std::string stats_csv;
  double checkpoint_every = 600.0;
  bool supervise = false;
  std::uint64_t max_restarts = 5;
  double watchdog_timeout = 30.0;  // wall seconds
  std::size_t jobs = 0;  // 0 = SLMOB_THREADS env / hardware_concurrency
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--land" && i + 1 < args.size()) {
      const auto parsed = parse_lands(args[++i]);
      if (!parsed) return usage();
      lands = *parsed;
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      jobs = static_cast<std::size_t>(std::atoll(args[++i].c_str()));
    } else if (args[i] == "--hours" && i + 1 < args.size()) {
      hours = std::atof(args[++i].c_str());
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
    } else if (args[i] == "--faults" && i + 1 < args.size()) {
      faults = args[++i];
    } else if (args[i] == "--fault-seed" && i + 1 < args.size()) {
      fault_seed = static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out = args[++i];
    } else if (args[i] == "--journal" && i + 1 < args.size()) {
      journal = args[++i];
    } else if (args[i] == "--checkpoint" && i + 1 < args.size()) {
      checkpoint_dir = args[++i];
    } else if (args[i] == "--checkpoint-every" && i + 1 < args.size()) {
      checkpoint_every = std::atof(args[++i].c_str());
    } else if (args[i] == "--resume" && i + 1 < args.size()) {
      resume_dir = args[++i];
    } else if (args[i] == "--supervise") {
      supervise = true;
    } else if (args[i] == "--max-restarts" && i + 1 < args.size()) {
      max_restarts = static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
    } else if (args[i] == "--watchdog-timeout" && i + 1 < args.size()) {
      watchdog_timeout = std::atof(args[++i].c_str());
    } else if (args[i] == "--stats-csv" && i + 1 < args.size()) {
      stats_csv = args[++i];
    } else {
      return usage();
    }
  }

  if (!resume_dir.empty()) {
    // Identity (lands, hours, seeds, faults, out paths) comes from the shard
    // checkpoints; --out (with {land}/{seed} placeholders for multi-shard
    // runs) only overrides where the traces land. Accepts both a single
    // shard's directory and a multi-land run's directory of shard-NN-<land>
    // subdirectories.
    std::printf("resuming shards in %s...\n", resume_dir.c_str());
    auto results = resume_sharded(resume_dir, jobs);
    int rc = 0;
    for (auto& res : results) {
      const std::string path =
          out.empty() ? res.out_path : expand_out_path(out, res.archetype, res.seed);
      if (path.empty()) return usage();
      std::printf("resumed %s (seed %llu)\n", archetype_name(res.archetype).c_str(),
                  static_cast<unsigned long long>(res.seed));
      rc |= finish_run(std::move(res.trace), res.crawler_stats, path);
    }
    return rc;
  }

  if (lands.empty() || out.empty() || hours <= 0.0) return usage();
  if (!journal.empty() && !checkpoint_dir.empty()) return usage();
  if (!checkpoint_dir.empty() && checkpoint_every <= 0.0) return usage();
  if (!stats_csv.empty() && !supervise && lands.size() == 1) {
    std::fprintf(stderr,
                 "error: --stats-csv needs a sharded (multi-land) or --supervise run\n");
    return 2;
  }
  if (!stats_csv.empty() && !probe_writable(stats_csv)) {
    std::fprintf(stderr,
                 "error: --stats-csv %s is not writable (missing directory or "
                 "permissions?); fix the path before starting the run\n",
                 stats_csv.c_str());
    return 2;
  }

  if (supervise) {
    // Self-healing run: every shard executes behind the supervisor's crash
    // barrier, journaled + checkpointed, restarted from its last checkpoint
    // after a contained crash or watchdog-detected stall. Traces stay
    // bit-identical to an uninterrupted run.
    if (checkpoint_dir.empty()) {
      std::fprintf(stderr, "error: --supervise requires --checkpoint DIR\n");
      return 2;
    }
    if (!journal.empty()) {
      std::fprintf(stderr,
                   "error: --supervise runs are checkpointed; drop --journal\n");
      return 2;
    }
    std::vector<ExperimentConfig> shards;
    std::vector<std::string> outs;
    for (std::size_t i = 0; i < lands.size(); ++i) {
      ExperimentConfig cfg;
      cfg.archetype = lands[i];
      cfg.duration = hours * kSecondsPerHour;
      cfg.seed = seed + i;
      cfg.fault_scenario = faults;
      cfg.fault_seed = fault_seed;
      cfg.ranges = {};  // collection only
      shards.push_back(cfg);
      outs.push_back(expand_out_path(out, lands[i], cfg.seed));
    }
    for (std::size_t i = 0; i < outs.size(); ++i) {
      for (std::size_t j = i + 1; j < outs.size(); ++j) {
        if (outs[i] == outs[j]) {
          std::fprintf(stderr,
                       "error: --out %s maps shards %zu and %zu to the same file; "
                       "add {land} and/or {seed}\n",
                       out.c_str(), i, j);
          return 2;
        }
      }
    }

    SupervisorOptions options;
    options.threads = jobs;
    options.checkpoint_dir = checkpoint_dir;
    options.checkpoint_every = checkpoint_every;
    options.out_paths = outs;
    options.max_restarts = max_restarts;
    options.watchdog_timeout_ms = watchdog_timeout * 1000.0;
    const std::size_t threads = jobs == 0 ? ThreadPool::default_concurrency() : jobs;
    std::printf("supervising %zu shard(s) for %.1f h (seeds %llu..%llu, faults %s, "
                "%zu threads, retry budget %llu, watchdog %.1f s)...\n",
                lands.size(), hours, static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(seed + lands.size() - 1), faults.c_str(),
                threads, static_cast<unsigned long long>(max_restarts),
                watchdog_timeout);
    SupervisedRun run = run_supervised(shards, options);

    int rc = 0;
    // CSV before the recap loop: finish_run moves each trace out, and the
    // CSV reads trace-derived columns (degraded seconds) too.
    if (!stats_csv.empty()) {
      write_shard_stats_csv(run.shards, stats_csv);
      std::printf("wrote %s\n", stats_csv.c_str());
    }
    for (std::size_t i = 0; i < run.shards.size(); ++i) {
      auto& res = run.shards[i];
      const ShardHealth& h = run.health[i];
      std::printf("shard %zu %s (seed %llu): %s | crashes %llu, stalls %llu, "
                  "watchdog aborts %llu, restarts %llu (%llu cold), %zu checkpoints\n",
                  i, archetype_name(res.archetype).c_str(),
                  static_cast<unsigned long long>(res.seed), shard_phase_name(h.phase),
                  static_cast<unsigned long long>(h.crashes),
                  static_cast<unsigned long long>(h.stalls),
                  static_cast<unsigned long long>(h.watchdog_aborts),
                  static_cast<unsigned long long>(h.restarts),
                  static_cast<unsigned long long>(h.cold_restarts),
                  h.checkpoints_written);
      if (!h.last_error.empty()) {
        std::printf("  last error: %s\n", h.last_error.c_str());
      }
      const CircuitStats& c = res.circuit_stats;
      std::printf("  transport: %llu packets, %llu retransmits (%llu RTO backoffs), "
                  "%llu datagrams fault-dropped\n",
                  static_cast<unsigned long long>(c.packets_sent),
                  static_cast<unsigned long long>(c.retransmits),
                  static_cast<unsigned long long>(c.rto_backoffs),
                  static_cast<unsigned long long>(res.network_stats.fault_dropped));
      print_overload_recap(res.server_stats, res.network_stats, res.circuit_stats);
      rc |= finish_run(std::move(res.trace), res.crawler_stats, outs[i]);
    }
    if (run.any_failed_partial()) {
      std::fprintf(stderr,
                   "warning: at least one shard exhausted its retry budget and "
                   "degraded to failed-partial (salvaged trace is gap-censored)\n");
      return 1;
    }
    return rc;
  }

  if (lands.size() == 1) {
    const LandArchetype land = lands.front();
    ExperimentConfig cfg;
    cfg.archetype = land;
    cfg.duration = hours * kSecondsPerHour;
    cfg.seed = seed;
    cfg.fault_scenario = faults;
    cfg.fault_seed = fault_seed;
    cfg.ranges = {};  // collection only
    std::printf("crawling %s for %.1f h (seed %llu, faults %s)...\n",
                archetype_name(land).c_str(), hours,
                static_cast<unsigned long long>(seed), faults.c_str());

    if (!checkpoint_dir.empty()) {
      DurableRunOptions options;
      options.config = cfg;
      options.dir = checkpoint_dir;
      options.checkpoint_every = checkpoint_every;
      options.out_path = out;
      DurableRunResult res = run_durable(options);
      std::printf("journaled to %s (%zu checkpoints)\n", res.journal_path.c_str(),
                  res.checkpoints_written);
      return finish_run(std::move(res.trace), res.crawler_stats, out);
    }

    if (!journal.empty()) {
      // Journal-only durable run: salvageable after a crash, not resumable.
      Testbed bed(make_testbed_config(cfg));
      if (bed.crawler() == nullptr) {
        std::fprintf(stderr, "error: journaled run requires a crawler\n");
        return 1;
      }
      TraceJournalWriter writer(journal, cfg.duration);
      bed.crawler()->attach_journal(&writer);
      bed.run_until(cfg.duration);
      Trace trace = bed.crawler()->take_trace();
      writer.append_end(bed.engine().now());
      std::printf("journaled to %s\n", journal.c_str());
      return finish_run(std::move(trace), bed.crawler()->stats(), out);
    }

    const ExperimentResults res = run_experiment(cfg);
    save_trace(res.trace, out);
    std::printf("wrote %s: %zu snapshots, %zu unique users, avg conc %.1f\n", out.c_str(),
                res.summary.snapshot_count, res.summary.unique_users,
                res.summary.avg_concurrent);
    if (res.summary.gap_count > 0) {
      std::printf(
          "coverage: %zu gaps, %.0f s uncovered (%zu relogins, %zu crawler backoff resets)\n",
          res.summary.gap_count, res.summary.gap_seconds,
          static_cast<std::size_t>(res.crawler_stats.relogins),
          static_cast<std::size_t>(res.crawler_stats.backoff_resets));
    }
    if (res.summary.degradation_count > 0) {
      std::printf("degradation: %zu windows, %.0f s at reduced sampling rate "
                  "(%zu escalations, %zu recoveries)\n",
                  res.summary.degradation_count, res.summary.degraded_seconds,
                  static_cast<std::size_t>(res.crawler_stats.degrade_escalations),
                  static_cast<std::size_t>(res.crawler_stats.degrade_recoveries));
    }
    print_overload_recap(res.server_stats, res.network_stats, res.circuit_stats);
    return 0;
  }

  // Multi-land sharded run: shard i crawls lands[i] with seed base+i; all
  // shards execute concurrently on one pool and every trace is bit-identical
  // to running that land alone.
  if (!journal.empty()) {
    std::fprintf(stderr,
                 "error: --journal is single-land; use --checkpoint for sharded runs\n");
    return 2;
  }
  std::vector<ExperimentConfig> shards;
  std::vector<std::string> outs;
  for (std::size_t i = 0; i < lands.size(); ++i) {
    ExperimentConfig cfg;
    cfg.archetype = lands[i];
    cfg.duration = hours * kSecondsPerHour;
    cfg.seed = seed + i;
    cfg.fault_scenario = faults;
    cfg.fault_seed = fault_seed;
    cfg.ranges = {};  // collection only
    shards.push_back(cfg);
    outs.push_back(expand_out_path(out, lands[i], cfg.seed));
  }
  for (std::size_t i = 0; i < outs.size(); ++i) {
    for (std::size_t j = i + 1; j < outs.size(); ++j) {
      if (outs[i] == outs[j]) {
        std::fprintf(stderr,
                     "error: --out %s maps shards %zu and %zu to the same file; "
                     "add {land} and/or {seed}\n",
                     out.c_str(), i, j);
        return 2;
      }
    }
  }

  ShardRunOptions options;
  options.threads = jobs;
  options.checkpoint_dir = checkpoint_dir;
  options.checkpoint_every = checkpoint_every;
  options.out_paths = outs;
  const std::size_t threads = jobs == 0 ? ThreadPool::default_concurrency() : jobs;
  std::printf("crawling %zu lands for %.1f h (seeds %llu..%llu, faults %s, %zu threads)...\n",
              lands.size(), hours, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed + lands.size() - 1), faults.c_str(),
              threads);
  auto results = run_sharded(shards, options);
  int rc = 0;
  // CSV first: finish_run moves each trace out, and the CSV reads
  // trace-derived columns (degraded seconds) alongside the counters.
  if (!stats_csv.empty()) {
    write_shard_stats_csv(results, stats_csv);
    std::printf("wrote %s\n", stats_csv.c_str());
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    auto& res = results[i];
    std::printf("%s (seed %llu)", archetype_name(res.archetype).c_str(),
                static_cast<unsigned long long>(res.seed));
    if (!checkpoint_dir.empty()) {
      std::printf(" [%zu checkpoints]", res.checkpoints_written);
    }
    std::printf(": ");
    rc |= finish_run(std::move(res.trace), res.crawler_stats, outs[i]);
    print_overload_recap(res.server_stats, res.network_stats, res.circuit_stats);
  }
  return rc;
}

int cmd_salvage(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::string out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out = args[++i];
    } else {
      return usage();
    }
  }
  const JournalSalvage s = salvage_journal(args[0]);
  const char* state = s.clean_end ? "clean end" : s.torn ? "torn tail truncated" : "no end frame";
  std::printf("salvaged %s: %zu frames (%zu snapshots, %zu session events), "
              "%llu bytes kept, %s\n",
              args[0].c_str(), s.frames_read, s.snapshots, s.session_events,
              static_cast<unsigned long long>(s.bytes_kept), state);
  const TraceSummary sum = s.trace.summary();
  std::printf("trace: %.2f h of %.2f h planned, %zu unique users, %zu gaps "
              "(%.0f s uncovered)\n",
              sum.duration / kSecondsPerHour, s.planned_end / kSecondsPerHour,
              sum.unique_users, sum.gap_count, sum.gap_seconds);
  if (!out.empty()) {
    Trace trace = s.trace;
    trace.strip_sitting_fixes();
    save_trace(trace, out);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

// After a streamed pass, reports a torn journal tail the way read_any's
// salvage path does (the stream reader only knows once it hits the tear).
void warn_if_torn(const TraceStream* reader, const std::string& path) {
  if (const auto* j = dynamic_cast<const JournalFileStream*>(reader);
      j != nullptr && j->torn()) {
    std::fprintf(stderr,
                 "%s: torn tail truncated at byte %llu; remainder censored as a gap\n",
                 path.c_str(), static_cast<unsigned long long>(j->bytes_kept()));
  }
}

void print_summary(const std::string& land, Seconds sampling, const TraceSummary& s) {
  std::printf("land:            %s\n", land.c_str());
  std::printf("sampling:        every %.0f s\n", sampling);
  std::printf("snapshots:       %zu\n", s.snapshot_count);
  std::printf("duration:        %.2f h\n", s.duration / kSecondsPerHour);
  std::printf("unique users:    %zu\n", s.unique_users);
  std::printf("avg concurrent:  %.1f\n", s.avg_concurrent);
  std::printf("max concurrent:  %zu\n", s.max_concurrent);
  std::printf("coverage gaps:   %zu (%.0f s uncovered)\n", s.gap_count, s.gap_seconds);
  if (s.degradation_count > 0) {
    std::printf("degradation:     %zu windows (%.0f s at reduced sampling rate)\n",
                s.degradation_count, s.degraded_seconds);
  }
}

int cmd_summary(const std::vector<std::string>& args) {
  bool stream = false;
  std::string path;
  for (const auto& arg : args) {
    if (arg == "--stream") {
      stream = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  if (!stream) {
    const Trace trace = read_any(path);
    print_summary(trace.land_name(), trace.sampling_interval(), trace.summary());
    return 0;
  }

  // Single bounded-memory pass: no Trace is materialised, so this works on
  // traces far larger than RAM and doubles as a footprint/throughput probe.
  const auto t0 = wallclock::now();
  const auto reader = open_trace_stream(path);
  TraceSummary s;
  std::set<AvatarId> users;
  std::size_t total_fixes = 0;
  bool have_first = false;
  Seconds first_time = 0.0;
  Seconds last_time = 0.0;
  Seconds degrade_open_at = -1.0;
  for (;;) {
    const StreamEvent ev = reader->next();
    if (ev.kind == StreamEventKind::kEnd) break;
    if (ev.kind == StreamEventKind::kSnapshot) {
      ++s.snapshot_count;
      total_fixes += ev.snapshot->fixes.size();
      s.max_concurrent = std::max(s.max_concurrent, ev.snapshot->fixes.size());
      for (const auto& fix : ev.snapshot->fixes) users.insert(fix.id);
      if (!have_first) {
        have_first = true;
        first_time = ev.snapshot->time;
      }
      last_time = ev.snapshot->time;
    } else if (ev.kind == StreamEventKind::kGap) {
      ++s.gap_count;
      s.gap_seconds += ev.gap.length();
    } else if (ev.kind == StreamEventKind::kRateChange) {
      // A factor > 1 opens a degraded window (closing any open one first —
      // an escalation 2 -> 4 is two windows, matching the batch trace);
      // factor 1 closes the open window.
      if (degrade_open_at >= 0.0) {
        s.degraded_seconds += ev.time - degrade_open_at;
        degrade_open_at = -1.0;
      }
      if (ev.factor > 1) {
        ++s.degradation_count;
        degrade_open_at = ev.time;
      }
    }
  }
  if (s.snapshot_count > 0) {
    s.unique_users = users.size();
    s.avg_concurrent =
        static_cast<double>(total_fixes) / static_cast<double>(s.snapshot_count);
    s.duration = last_time - first_time;
  }
  const double secs =
      wallclock::seconds_since(t0);
  warn_if_torn(reader.get(), path);
  print_summary(reader->land_name(), reader->sampling_interval(), s);
  std::printf("pass:            %.2f s (%.0f snapshots/s)\n", secs,
              secs > 0.0 ? static_cast<double>(s.snapshot_count) / secs : 0.0);
  std::printf("peak memory:     %.1f MiB\n",
              static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));
  return 0;
}

// Shared by the batch and streaming analyze paths — both produce an
// AnalysisReport, so identical results print identically.
void print_report(const AnalysisReport& res) {
  for (const auto& [r, c] : res.contacts) {
    const auto& g = res.graphs.at(r);
    const auto median = [](const Ecdf& e) { return e.empty() ? 0.0 : e.median(); };
    std::printf("r=%.0fm: %zu contacts | CT med %.0fs | ICT med %.0fs | FT med %.0fs | "
                "deg med %.0f | isolated %.1f%% | clust med %.2f\n",
                r, c.intervals.size(), median(c.contact_times),
                median(c.inter_contact_times), median(c.first_contact_times),
                median(g.degrees), g.isolated_fraction * 100.0, median(g.clustering));
  }
  std::printf("zones: %.1f%% empty, busiest cell %zu users\n",
              res.zones.empty_fraction * 100.0, res.zones.max_occupancy);
  if (!res.trips.travel_lengths.empty()) {
    std::printf("trips: length med %.0fm p90 %.0fm | session med %.0fs max %.0fs\n",
                res.trips.travel_lengths.median(), res.trips.travel_lengths.quantile(0.9),
                res.trips.travel_times.median(), res.trips.travel_times.max());
  }
}

int cmd_analyze(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::vector<double> ranges;
  std::size_t threads = 0;  // 0 = SLMOB_THREADS env / hardware_concurrency
  bool stream = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--range" && i + 1 < args.size()) {
      ranges.push_back(std::atof(args[++i].c_str()));
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      threads = static_cast<std::size_t>(std::atoll(args[++i].c_str()));
    } else if (args[i] == "--stream") {
      stream = true;
    } else {
      return usage();
    }
  }
  if (ranges.empty()) ranges = {kBluetoothRange, kWifiRange};

  if (stream) {
    // Single-pass bounded-memory pipeline; bit-identical results to the
    // batch path below.
    StreamingOptions options;
    options.ranges = ranges;
    options.threads = threads;
    const auto t0 = wallclock::now();
    const auto reader = open_trace_stream(args[0]);
    StreamingAnalyzer analyzer(options);
    drive_stream(*reader, analyzer);
    const AnalysisReport report = analyzer.finish();
    const double secs =
        wallclock::seconds_since(t0);
    warn_if_torn(reader.get(), args[0]);
    print_report(report);
    const StreamingProgress p = analyzer.progress();
    std::printf("stream: %zu snapshots in %.2f s (%.0f snapshots/s), peak RSS %.1f MiB, "
                "%zu threads\n",
                p.snapshots, secs,
                secs > 0.0 ? static_cast<double>(p.snapshots) / secs : 0.0,
                static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0),
                analyzer.threads_used());
    std::printf("proximity: %zu delta updates, %zu rebuilds\n", p.proximity_delta_updates,
                p.proximity_rebuilds);
    return 0;
  }

  Trace trace = read_any(args[0]);
  const ExperimentResults res =
      analyze_trace(std::move(trace), ranges, kDefaultLandSize, threads);
  print_report(to_analysis_report(res));
  return 0;
}

// Multi-seed / multi-land experiment sweep on the sharded engine. Each
// (land, seed) cell is one shard with a single-threaded analysis (so J
// shards use J threads total), and rows print in deterministic (land, seed)
// order once all experiments finish.
int cmd_sweep(const std::vector<std::string>& args) {
  std::vector<LandArchetype> lands;
  std::size_t seeds = 0;
  std::uint64_t seed_base = 42;
  double hours = 24.0;
  std::size_t jobs = 0;  // 0 = SLMOB_THREADS env / hardware_concurrency
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--land" && i + 1 < args.size()) {
      const auto parsed = parse_lands(args[++i]);
      if (!parsed) return usage();
      lands = *parsed;
    } else if (args[i] == "--seeds" && i + 1 < args.size()) {
      seeds = static_cast<std::size_t>(std::atoll(args[++i].c_str()));
    } else if (args[i] == "--seed-base" && i + 1 < args.size()) {
      seed_base = static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
    } else if (args[i] == "--hours" && i + 1 < args.size()) {
      hours = std::atof(args[++i].c_str());
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      jobs = static_cast<std::size_t>(std::atoll(args[++i].c_str()));
    } else {
      return usage();
    }
  }
  if (lands.empty() || seeds == 0 || hours <= 0.0) return usage();

  std::vector<ExperimentConfig> cells;
  for (const LandArchetype land : lands) {
    for (std::size_t s = 0; s < seeds; ++s) {
      ExperimentConfig cfg;
      cfg.archetype = land;
      cfg.duration = hours * kSecondsPerHour;
      cfg.seed = seed_base + s;
      cells.push_back(cfg);
    }
  }

  const std::size_t threads = jobs == 0 ? ThreadPool::default_concurrency() : jobs;
  std::printf("sweeping %zu experiments (%zu lands x %zu seeds, %.1f h, %zu threads)\n",
              cells.size(), lands.size(), seeds, hours, threads);
  const auto results = run_experiments_sharded(cells, jobs);

  std::printf("%-12s %6s %8s %8s %10s %10s %10s\n", "land", "seed", "users", "conc",
              "ct_med", "ict_med", "deg_med");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& res = results[i];
    const auto& c = res.contacts.at(kBluetoothRange);
    const auto& g = res.graphs.at(kBluetoothRange);
    const auto median = [](const Ecdf& e) { return e.empty() ? 0.0 : e.median(); };
    std::printf("%-12s %6llu %8zu %8.1f %10.0f %10.0f %10.0f\n",
                archetype_name(cells[i].archetype).c_str(),
                static_cast<unsigned long long>(cells[i].seed), res.summary.unique_users,
                res.summary.avg_concurrent, median(c.contact_times),
                median(c.inter_contact_times), median(g.degrees));
  }
  return 0;
}

int cmd_convert(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const Trace trace = read_any(args[0]);
  const std::string& out = args[1];
  if (out.size() > 4 && out.substr(out.size() - 4) == ".csv") {
    // Atomic + checked: the old fopen/fwrite path returned success even
    // when a full disk truncated the CSV mid-write.
    save_trace_csv(trace, out);
  } else {
    save_trace(trace, out);
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_report(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  ReportOptions options;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--series") {
      options.include_series = true;
    } else {
      return usage();
    }
  }
  Trace trace = read_any(args[0]);
  const ExperimentResults res = analyze_trace(std::move(trace), {kBluetoothRange, kWifiRange});
  write_report(res, args[1], options);
  std::printf("wrote %s\n", args[1].c_str());
  return 0;
}

int cmd_dtn(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  DtnConfig cfg;
  Trace trace = read_any(args[0]);
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--scheme" && i + 1 < args.size()) {
      const std::string s = args[++i];
      if (s == "epidemic") {
        cfg.scheme = RoutingScheme::kEpidemic;
      } else if (s == "two-hop") {
        cfg.scheme = RoutingScheme::kTwoHopRelay;
      } else if (s == "direct") {
        cfg.scheme = RoutingScheme::kDirectDelivery;
      } else {
        return usage();
      }
    } else if (args[i] == "--messages" && i + 1 < args.size()) {
      cfg.message_count = static_cast<std::size_t>(std::atoll(args[++i].c_str()));
    } else if (args[i] == "--range" && i + 1 < args.size()) {
      cfg.range = std::atof(args[++i].c_str());
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
    } else {
      return usage();
    }
  }
  const DtnResults res = simulate_dtn(trace, cfg);
  std::printf("%s @ r=%.0fm: delivery %.1f%% (%zu/%zu), delay med %.0fs p90 %.0fs, "
              "%.1f copies/message\n",
              routing_scheme_name(cfg.scheme), cfg.range, res.delivery_ratio * 100.0,
              res.messages_delivered, res.messages_created,
              res.delays.empty() ? 0.0 : res.delays.median(),
              res.delays.empty() ? 0.0 : res.delays.quantile(0.9),
              res.mean_copies_per_message);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  try {
    if (command == "run") return cmd_run(args);
    if (command == "salvage") return cmd_salvage(args);
    if (command == "summary") return cmd_summary(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "dtn") return cmd_dtn(args);
    if (command == "report") return cmd_report(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
