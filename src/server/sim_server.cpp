#include "server/sim_server.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace slmob {

SimServer::SimServer(SimNetwork& network, World& world, SimServerParams params)
    : network_(network), world_(world), params_(params) {
  address_ = network_.register_node(
      [this](NodeId from, std::span<const std::uint8_t> bytes) { on_datagram(from, bytes); });
}

CircuitEndpoint& SimServer::circuit_for(NodeId from) {
  auto it = clients_.find(from);
  if (it == clients_.end()) {
    ClientSession session;
    session.circuit =
        std::make_unique<CircuitEndpoint>(network_, address_, from, params_.circuit);
    session.circuit->set_deliver(
        [this, from](Message& msg) { handle_message(from, msg); });
    it = clients_.emplace(from, std::move(session)).first;
  }
  return *it->second.circuit;
}

void SimServer::on_datagram(NodeId from, std::span<const std::uint8_t> bytes) {
  if (down_) {
    // A crashed region neither parses nor acknowledges anything: clients'
    // reliable sends exhaust their retries and fail, exactly like a host
    // that went away mid-trace.
    ++stats_.datagrams_ignored_down;
    return;
  }
  circuit_for(from).on_datagram(bytes);
  if (const auto it = clients_.find(from); it != clients_.end()) {
    it->second.last_receive = now_;
  }
}

void SimServer::handle_message(NodeId from, Message& msg) {
  ++messages_this_tick_;
  std::visit(
      [&](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, LoginRequest>) {
          handle_login(from, m);
        } else if constexpr (std::is_same_v<T, UseCircuitCode>) {
          // Circuit confirmation; nothing else to do in-sim.
        } else if constexpr (std::is_same_v<T, CompleteAgentMovement>) {
          auto it = clients_.find(from);
          if (it != clients_.end()) it->second.movement_complete = true;
        } else if constexpr (std::is_same_v<T, AgentUpdate> ||
                             std::is_same_v<T, ChatFromViewer>) {
          // Data-plane messages respect the per-tick budget; control-plane
          // (login/logout/handshake) is always processed, so an overloaded
          // region stays joinable and leavable.
          if (messages_this_tick_ > params_.max_messages_per_tick) {
            ++stats_.messages_shed;
            return;
          }
          if constexpr (std::is_same_v<T, AgentUpdate>) {
            handle_agent_update(from, m);
          } else {
            handle_chat(from, m);
          }
        } else if constexpr (std::is_same_v<T, LogoutRequest>) {
          handle_logout(from);
        } else {
          log_warn("server", "unexpected message type from client");
        }
      },
      msg);
}

void SimServer::handle_login(NodeId from, const LoginRequest& req) {
  auto& session = clients_.at(from);  // circuit_for created it
  session.circuit_code = req.circuit_code;

  // Re-login over a session we still hold (e.g. the client force-dropped
  // after its feed went silent, faster than our session timeout): retire the
  // old avatar, or it would haunt the world as a phantom user.
  if (session.avatar.value != 0) {
    world_.remove_external_avatar(now_, session.avatar);
    session.avatar = AvatarId{};
    session.movement_complete = false;
  }

  LoginResponse resp;
  // Capacity-aware admission control: reject while occupancy is at or above
  // the headroom threshold, before touching the world. The reject is a
  // first-class, counted event the client can back off from — not a silent
  // failure at the hard capacity wall.
  if (params_.admission_headroom < 1.0) {
    const auto admitted_cap = static_cast<std::size_t>(
        params_.admission_headroom * static_cast<double>(world_.land().capacity()));
    if (world_.avatars().size() >= admitted_cap) {
      ++stats_.logins_rejected;
      ++stats_.logins_rejected_overload;
      resp.ok = false;
      resp.error = "server busy";
      session.circuit->send(resp, /*reliable=*/true);
      return;
    }
  }
  // A capacity flap shrinks admission below the land's nominal capacity.
  const double cap_factor = params_.faults.capacity_factor_at(now_);
  if (cap_factor < 1.0) {
    const auto reduced = static_cast<std::size_t>(
        cap_factor * static_cast<double>(world_.land().capacity()));
    if (world_.avatars().size() >= reduced) {
      ++stats_.logins_rejected;
      resp.ok = false;
      resp.error = "region full";
      session.circuit->send(resp, /*reliable=*/true);
      return;
    }
  }

  const auto& spawns = world_.land().spawn_points();
  const Vec3 spawn = spawns.front();
  const auto avatar_id = world_.add_external_avatar(now_, spawn);

  if (!avatar_id) {
    ++stats_.logins_rejected;
    resp.ok = false;
    resp.error = "region full";
    session.circuit->send(resp, /*reliable=*/true);
    return;
  }
  ++stats_.logins_accepted;
  session.avatar = *avatar_id;
  resp.ok = true;
  resp.agent_id = avatar_id->value;
  resp.region_name = world_.land().name();
  const Vec3 pos = world_.find(*avatar_id)->pos;
  resp.spawn_x = static_cast<float>(pos.x);
  resp.spawn_y = static_cast<float>(pos.y);
  resp.spawn_z = static_cast<float>(pos.z);
  session.circuit->send(resp, /*reliable=*/true);

  RegionHandshake handshake;
  handshake.region_name = world_.land().name();
  handshake.region_size = static_cast<float>(world_.land().size());
  handshake.capacity = static_cast<std::uint32_t>(world_.land().capacity());
  session.circuit->send(handshake, /*reliable=*/true);
}

void SimServer::handle_agent_update(NodeId from, const AgentUpdate& update) {
  const auto it = clients_.find(from);
  if (it == clients_.end() || it->second.avatar.value != update.agent_id) {
    // Traffic for a session we no longer hold (e.g. dropped by the circuit
    // timeout while the client still believes it is connected): tell the
    // client so it can re-login instead of feeding a zombie session.
    if (it != clients_.end() && it->second.avatar.value == 0) {
      KickUser kick;
      kick.reason = "no session";
      it->second.circuit->send(kick, /*reliable=*/false);
    }
    return;
  }
  const AvatarId id = it->second.avatar;
  if ((update.flags & kAgentFlagSit) != 0) world_.set_sitting(id, true);
  if ((update.flags & kAgentFlagStand) != 0) world_.set_sitting(id, false);
  if (update.speed > 0.0f) {
    world_.steer_external(now_, id,
                          {update.target_x, update.target_y, update.target_z},
                          update.speed);
  }
}

void SimServer::handle_chat(NodeId from, const ChatFromViewer& chat) {
  const auto it = clients_.find(from);
  if (it == clients_.end() || it->second.avatar.value != chat.agent_id) return;
  ++stats_.chat_messages;
  const AvatarId speaker = it->second.avatar;
  world_.mark_social_activity(now_, speaker);
  const auto& store = world_.avatars();
  const auto speaker_idx = store.index_of(speaker);
  if (!speaker_idx) return;
  const Vec3 speaker_pos = store.pos(*speaker_idx);

  // Audible set via the world's spatial grid: one range query instead of a
  // per-listener distance check against the whole population.
  const auto& audible = world_.within(speaker_pos, params_.chat_range);

  ChatFromSimulator out;
  out.from_agent = speaker.value;
  out.from_name = "agent-" + std::to_string(speaker.value);
  out.message = chat.message;
  for (auto& [node, session] : clients_) {
    if (node == from || !session.movement_complete) continue;
    const auto listener_idx = store.index_of(session.avatar);
    if (!listener_idx) continue;
    if (std::binary_search(audible.begin(), audible.end(),
                           static_cast<std::uint32_t>(*listener_idx))) {
      session.circuit->send(out, /*reliable=*/false);
    }
  }
}

void SimServer::handle_logout(NodeId from) {
  const auto it = clients_.find(from);
  if (it == clients_.end()) return;
  ++stats_.logouts;
  world_.remove_external_avatar(now_, it->second.avatar);
  clients_.erase(it);
}

void SimServer::broadcast_coarse_locations() {
  // No connected client is ready for the feed: skip building and encoding
  // the update entirely (the common case while the crawler is between
  // regions, and always in ground-truth-only runs).
  bool any_ready = false;
  for (const auto& [node, session] : clients_) {
    if (session.movement_complete) {
      any_ready = true;
      break;
    }
  }
  if (!any_ready) return;

  auto& update = std::get<CoarseLocationUpdate>(coarse_msg_);
  update.entries.clear();
  const auto& store = world_.avatars();
  update.entries.reserve(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    const Vec3& p = store.pos(i);
    update.entries.push_back(
        quantize_coarse(store.id(i).value, p.x, p.y, p.z, store.sitting(i)));
  }
  // Encode once, fan the same bytes out over every circuit.
  encode_message_to(coarse_msg_, coarse_body_);
  for (auto& [node, session] : clients_) {
    if (!session.movement_complete) continue;
    // The coarse feed is bulk observation data: lowest priority class, first
    // to be shed when the network's in-flight queue saturates.
    session.circuit->send_encoded(coarse_body_.bytes(), /*reliable=*/false,
                                  PacketClass::kSnapshot);
    ++stats_.coarse_updates_sent;
  }
}

void SimServer::tick(Seconds now, Seconds dt) {
  (void)dt;
  now_ = now;
  messages_this_tick_ = 0;

  // Scheduled region crash: on entry drop every circuit, session and avatar
  // at once; while down ignore all traffic and emit nothing; on exit resume
  // with an empty region, accepting fresh logins.
  const bool scheduled_down = params_.faults.region_down_at(now);
  if (scheduled_down && !down_) {
    down_ = true;
    ++stats_.crashes;
    for (auto& [node, session] : clients_) {
      if (session.avatar.value != 0) world_.remove_external_avatar(now, session.avatar);
      ++stats_.sessions_crashed;
    }
    clients_.clear();
    log_warn("server", "region crash window entered: all sessions dropped");
  } else if (!scheduled_down && down_) {
    down_ = false;
    log_info("server", "region recovered; accepting logins again");
  }
  if (down_) return;

  for (auto it = clients_.begin(); it != clients_.end();) {
    it->second.circuit->tick(now);
    const bool dead = it->second.circuit->failed();
    const bool timed_out = now - it->second.last_receive > params_.session_timeout;
    if (dead || timed_out) {
      // Dead or silent circuit: drop the session and its avatar so the
      // client can re-login on a fresh circuit.
      ++stats_.session_timeouts;
      world_.remove_external_avatar(now, it->second.avatar);
      it = clients_.erase(it);
    } else {
      ++it;
    }
  }
  if (!last_coarse_ || now - *last_coarse_ >= params_.coarse_interval) {
    broadcast_coarse_locations();
    last_coarse_ = now;
  }
}

}  // namespace slmob
