// SimServer: hosts one region (one World) and speaks the wire protocol.
//
// Responsibilities, mirroring what the 2008 SL simulator did for a
// libsecondlife client:
//  * login handshake: LoginRequest -> LoginResponse + RegionHandshake,
//    admitting the agent into the world (subject to region capacity);
//  * movement: AgentUpdate steers the agent's avatar (and sit/stand flags);
//  * chat: ChatFromViewer is echoed as ChatFromSimulator to every connected
//    client whose avatar is within earshot, and registered with the world as
//    social activity (this is what makes crawler mimicry effective);
//  * minimap feed: every `coarse_interval`, a CoarseLocationUpdate with the
//    quantised position of every avatar on the land is sent to each client;
//  * logout: LogoutRequest removes the agent.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/circuit.hpp"
#include "net/messages.hpp"
#include "net/network.hpp"
#include "world/world.hpp"

namespace slmob {

struct SimServerParams {
  // How often the minimap (coarse location) feed is pushed to clients. The
  // real service pushed every few seconds; the crawler samples every 10 s.
  Seconds coarse_interval{5.0};
  // Chat audibility radius in metres (SL "say" range was 20 m).
  double chat_range{20.0};
  // A session with no datagrams for this long is dropped (circuit timeout),
  // so a client whose circuit died can eventually re-login.
  Seconds session_timeout{60.0};
  CircuitParams circuit;
  // Scripted region faults: kRegionCrash windows drop every session and
  // silence the server until the window ends; kCapacityFlap windows scale
  // the admission capacity. Transport kinds are ignored here.
  FaultSchedule faults;
  // --- Overload protection ---------------------------------------------------
  // Explicit admission control: logins are rejected ("server busy") once the
  // world holds at least admission_headroom * capacity avatars — a
  // capacity-aware reject the client sees immediately, instead of the
  // implicit flap of add_external_avatar failing at the hard capacity. 1.0
  // keeps today's behaviour.
  double admission_headroom{1.0};
  // Bounded per-tick message budget: data-plane messages (AgentUpdate,
  // ChatFromViewer) past this count in one tick are shed (counted); control
  // messages (login, logout, handshake) are always processed. The default
  // is far above any fault-free tick's traffic.
  std::size_t max_messages_per_tick{4096};
};

struct SimServerStats {
  std::uint64_t logins_accepted{0};
  std::uint64_t logins_rejected{0};
  std::uint64_t coarse_updates_sent{0};
  std::uint64_t chat_messages{0};
  std::uint64_t logouts{0};
  std::uint64_t session_timeouts{0};       // sessions dropped by silence/circuit death
  std::uint64_t crashes{0};                // region-crash windows entered
  std::uint64_t sessions_crashed{0};       // sessions dropped by a crash
  std::uint64_t datagrams_ignored_down{0}; // traffic discarded while crashed
  // Overload-protection counters (both zero in fault-free runs).
  std::uint64_t logins_rejected_overload{0};  // admission-headroom rejects
  std::uint64_t messages_shed{0};             // data messages past the tick budget
};

class SimServer {
 public:
  SimServer(SimNetwork& network, World& world, SimServerParams params = {});

  [[nodiscard]] NodeId address() const { return address_; }
  [[nodiscard]] const SimServerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t connected_clients() const { return clients_.size(); }
  [[nodiscard]] World& world() { return world_; }
  // True while a scheduled region-crash window is active.
  [[nodiscard]] bool down() const { return down_; }

  // Engine hook (kPriorityServer).
  void tick(Seconds now, Seconds dt);

 private:
  struct ClientSession {
    std::unique_ptr<CircuitEndpoint> circuit;
    std::uint32_t circuit_code{0};
    AvatarId avatar;
    bool movement_complete{false};
    Seconds last_receive{0.0};
  };

  void on_datagram(NodeId from, std::span<const std::uint8_t> bytes);
  void handle_message(NodeId from, Message& msg);
  void handle_login(NodeId from, const LoginRequest& req);
  void handle_agent_update(NodeId from, const AgentUpdate& update);
  void handle_chat(NodeId from, const ChatFromViewer& chat);
  void handle_logout(NodeId from);
  void broadcast_coarse_locations();
  CircuitEndpoint& circuit_for(NodeId from);

  SimNetwork& network_;
  World& world_;
  SimServerParams params_;
  NodeId address_;
  Seconds now_{0.0};
  // Time of the last coarse broadcast; empty until the first one, which
  // therefore happens on the first tick.
  std::optional<Seconds> last_coarse_;
  bool down_{false};
  std::map<NodeId, ClientSession> clients_;
  SimServerStats stats_;
  std::size_t messages_this_tick_{0};
  // The per-broadcast CoarseLocationUpdate is built and encoded exactly once
  // per interval into these reused buffers, then fanned out to every circuit
  // as pre-encoded bytes — the steady-state feed allocates nothing.
  Message coarse_msg_{CoarseLocationUpdate{}};
  ByteWriter coarse_body_;
};

}  // namespace slmob
