#include "crawler/crawler.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace slmob {

Crawler::Crawler(MetaverseClient& client, CrawlerConfig config, std::uint64_t seed)
    : client_(client),
      config_(config),
      rng_(seed),
      trace_("", config.sample_interval) {
  ClientCallbacks callbacks;
  callbacks.on_coarse = [this](Seconds now, const CoarseLocationUpdate& update) {
    on_coarse(now, update);
  };
  client_.set_callbacks(std::move(callbacks));
}

void Crawler::start() {
  running_ = true;
  client_.login();
}

void Crawler::stop() {
  running_ = false;
  client_.logout();
}

void Crawler::on_coarse(Seconds now, const CoarseLocationUpdate& update) {
  ++stats_.coarse_updates_seen;
  latest_entries_ = update.entries;
  latest_entries_time_ = now;
}

void Crawler::act_human(Seconds now) {
  if (!config_.mimicry.enabled) return;
  if (now >= next_move_) {
    const double step = rng_.uniform(config_.mimicry.step_min, config_.mimicry.step_max);
    const double theta = rng_.uniform(0.0, 6.283185307179586);
    // Random walk anchored at the spawn area; clamping keeps it in-land.
    const Vec3 base = client_.spawn_position();
    const Vec3 target{
        std::clamp(base.x + step * std::cos(theta) * rng_.uniform(0.5, 3.0), 1.0,
                   config_.land_size - 1.0),
        std::clamp(base.y + step * std::sin(theta) * rng_.uniform(0.5, 3.0), 1.0,
                   config_.land_size - 1.0),
        base.z};
    client_.move_to(target, 2.0);
    ++stats_.moves_made;
    next_move_ = now + rng_.exponential(config_.mimicry.move_period);
  }
  if (now >= next_chat_) {
    const auto& phrases = config_.mimicry.phrases;
    if (!phrases.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(phrases.size()) - 1));
      client_.say(phrases[idx]);
      ++stats_.chat_lines_sent;
    }
    next_chat_ = now + rng_.exponential(config_.mimicry.chat_period);
  }
}

void Crawler::tick(Seconds now, Seconds dt) {
  (void)dt;
  if (!running_) return;

  if (trace_.land_name().empty() && !client_.region_name().empty()) {
    trace_ = Trace(client_.region_name(), config_.sample_interval);
  }

  switch (client_.state()) {
    case ClientState::kKicked:
    case ClientState::kLoginFailed:
      // Paced re-login: the server holds the dead session until its circuit
      // timeout expires, so hammering login would only be dropped as
      // duplicates.
      if (config_.auto_relogin && now >= next_login_retry_) {
        next_login_retry_ = now + 15.0;
        ++stats_.relogins;
        log_info("crawler", "circuit lost; re-logging in");
        client_.login();
      }
      return;
    case ClientState::kLoggingIn:
    case ClientState::kDisconnected:
      return;
    case ClientState::kConnected:
      break;
  }

  // Feed liveness: a connected client that stops receiving the minimap feed
  // has lost its session (however that happened); reconnect.
  if (latest_entries_time_ >= 0.0 && now - latest_entries_time_ > 60.0) {
    log_info("crawler", "minimap feed went silent; reconnecting");
    latest_entries_time_ = -1.0;
    client_.force_disconnect();
    return;
  }

  act_human(now);

  if (now >= next_sample_) {
    next_sample_ = now + config_.sample_interval;
    // Stale minimap data (older than one sampling interval) means we just
    // reconnected; skip rather than record outdated positions.
    if (latest_entries_time_ < 0.0 ||
        now - latest_entries_time_ > config_.sample_interval) {
      ++stats_.empty_snapshots;
      return;
    }
    Snapshot snap;
    snap.time = now;
    snap.fixes.reserve(latest_entries_.size());
    for (const auto& entry : latest_entries_) {
      if (entry.agent_id == client_.agent_id()) continue;  // exclude ourselves
      const CoarsePosition p = dequantize_coarse(entry);
      snap.fixes.push_back({AvatarId{entry.agent_id}, Vec3{p.x, p.y, p.z}});
    }
    trace_.add(std::move(snap));
    ++stats_.snapshots_taken;
  }
}

}  // namespace slmob
