#include "crawler/crawler.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace slmob {

Crawler::Crawler(MetaverseClient& client, CrawlerConfig config, std::uint64_t seed)
    : client_(client),
      config_(config),
      rng_(seed),
      trace_("", config.sample_interval) {
  ClientCallbacks callbacks;
  callbacks.on_coarse = [this](Seconds now, const CoarseLocationUpdate& update) {
    on_coarse(now, update);
  };
  client_.set_callbacks(std::move(callbacks));
}

void Crawler::start() {
  running_ = true;
  client_.login();
}

void Crawler::stop() {
  running_ = false;
  client_.logout();
}

void Crawler::on_coarse(Seconds now, const CoarseLocationUpdate& update) {
  ++stats_.coarse_updates_seen;
  // An arrival that closes an interarrival hole wider than the pressure
  // window is evidence the snapshot class was being shed upstream — remember
  // when, so the next sample still judges itself pressured even though the
  // feed looks fresh again by then. Blackouts never trip this: a dead feed
  // produces no arrivals at all, and the crawler force-disconnects (which
  // resets latest_entries_time_) before the feed can "recover" mid-session.
  if (latest_entries_time_ >= 0.0 &&
      now - latest_entries_time_ > config_.degrade_feed_age) {
    feed_gap_recovered_at_ = now;
  }
  latest_entries_ = update.entries;
  latest_entries_time_ = now;
}

void Crawler::act_human(Seconds now) {
  if (!config_.mimicry.enabled) return;
  if (now >= next_move_) {
    const double step = rng_.uniform(config_.mimicry.step_min, config_.mimicry.step_max);
    const double theta = rng_.uniform(0.0, 6.283185307179586);
    // Random walk anchored at the spawn area; clamping keeps it in-land.
    const Vec3 base = client_.spawn_position();
    const Vec3 target{
        std::clamp(base.x + step * std::cos(theta) * rng_.uniform(0.5, 3.0), 1.0,
                   config_.land_size - 1.0),
        std::clamp(base.y + step * std::sin(theta) * rng_.uniform(0.5, 3.0), 1.0,
                   config_.land_size - 1.0),
        base.z};
    client_.move_to(target, 2.0);
    ++stats_.moves_made;
    next_move_ = now + rng_.exponential(config_.mimicry.move_period);
  }
  if (now >= next_chat_) {
    const auto& phrases = config_.mimicry.phrases;
    if (!phrases.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(phrases.size()) - 1));
      client_.say(phrases[idx]);
      ++stats_.chat_lines_sent;
    }
    next_chat_ = now + rng_.exponential(config_.mimicry.chat_period);
  }
}

void Crawler::journal_begin_if_needed() {
  if (journal_ != nullptr && !journal_->begun()) {
    journal_->begin(trace_.land_name(), config_.sample_interval);
  }
}

void Crawler::live_begin_if_needed() {
  if (live_sink_ != nullptr && !live_begun_) {
    live_begun_ = true;
    live_sink_->on_begin(trace_.land_name(), config_.sample_interval);
  }
}

Trace Crawler::take_trace() {
  if (gap_open_ && last_tick_ > gap_start_) {
    trace_.add_gap(gap_start_, last_tick_);
    gap_open_ = false;
    ++stats_.coverage_gaps;
    if (journal_ != nullptr) journal_->append_gap_close(gap_start_, last_tick_);
    if (live_sink_ != nullptr) {
      live_begin_if_needed();
      live_sink_->on_gap(gap_start_, last_tick_);
    }
  }
  if (degrade_factor_ > 1) {
    // A degradation window still open at hand-over closes after the trailing
    // gap (stream order: gap, then the rate change back to 1). The close is
    // pushed to at least one nominal interval past the open so the window is
    // never zero-length even if hand-over lands on the opening sample.
    const Seconds end = std::max(last_tick_, degrade_start_ + config_.sample_interval);
    trace_.add_degradation(degrade_start_, end, degrade_factor_);
    if (journal_ != nullptr) {
      journal_->append_degrade_close(degrade_start_, end, degrade_factor_);
    }
    if (live_sink_ != nullptr) {
      live_begin_if_needed();
      live_sink_->on_rate_change(end, 1);
    }
    degrade_factor_ = 1;
  }
  return std::move(trace_);
}

void Crawler::set_degrade_factor(Seconds now, std::uint32_t factor) {
  if (factor == degrade_factor_) return;
  // Called only at sample instants, so a window being closed is at least one
  // effective interval old — never zero-length.
  if (degrade_factor_ > 1) {
    trace_.add_degradation(degrade_start_, now, degrade_factor_);
    if (journal_ != nullptr) {
      journal_begin_if_needed();
      journal_->append_degrade_close(degrade_start_, now, degrade_factor_);
    }
  }
  if (factor > 1) {
    degrade_start_ = now;
    if (journal_ != nullptr) {
      journal_begin_if_needed();
      journal_->append_degrade_open(now, factor);
    }
  }
  degrade_factor_ = factor;
  if (live_sink_ != nullptr) {
    live_begin_if_needed();
    live_sink_->on_rate_change(now, factor);
  }
  log_info("crawler", factor > 1
                          ? "overload: sampling degraded to 1/" +
                                std::to_string(factor) + " rate"
                          : "overload cleared: nominal sampling restored");
}

void Crawler::update_degradation(Seconds now, bool pressured) {
  if (pressured) {
    clean_samples_ = 0;
    if (++pressured_samples_ >= config_.degrade_after) {
      pressured_samples_ = 0;
      if (degrade_factor_ < config_.max_degrade_factor) {
        set_degrade_factor(now, degrade_factor_ * 2);
        ++stats_.degrade_escalations;
      }
    }
  } else {
    pressured_samples_ = 0;
    if (degrade_factor_ > 1 && ++clean_samples_ >= config_.recover_after) {
      clean_samples_ = 0;
      set_degrade_factor(now, degrade_factor_ / 2);
      ++stats_.degrade_recoveries;
    }
  }
}

void Crawler::tick(Seconds now, Seconds dt) {
  (void)dt;
  if (!running_) return;
  last_tick_ = now;

  if (trace_.land_name().empty() && !client_.region_name().empty()) {
    trace_ = Trace(client_.region_name(), config_.sample_interval);
  }

  switch (client_.state()) {
    case ClientState::kKicked:
    case ClientState::kDropped:
    case ClientState::kLoginFailed:
      // Paced re-login with exponential backoff: the server holds the dead
      // session until its circuit timeout expires, and during blackouts or
      // region crashes every attempt is wasted anyway, so the retry interval
      // doubles per consecutive failure (deterministically jittered to avoid
      // phase-locking with scheduled faults).
      note_sampling_outage(now);
      if (config_.auto_relogin && now >= next_login_retry_) {
        const Seconds base = std::min(
            config_.relogin_backoff_max,
            config_.relogin_backoff_base *
                std::pow(2.0, static_cast<double>(std::min(backoff_level_, 20u))));
        const double jitter = 1.0 + config_.relogin_jitter * rng_.uniform(-1.0, 1.0);
        next_login_retry_ = now + base * jitter;
        ++backoff_level_;
        ++stats_.relogins;
        log_info("crawler", "connection lost; re-logging in");
        if (journal_ != nullptr && journal_->begun()) {
          journal_->append_session(now, SessionEvent::kRelogin);
        }
        client_.login();
      }
      return;
    case ClientState::kLoggingIn:
    case ClientState::kDisconnected:
      note_sampling_outage(now);
      return;
    case ClientState::kConnected:
      break;
  }

  // Feed liveness: a connected client that stops receiving the minimap feed
  // has lost its session (however that happened); reconnect.
  if (latest_entries_time_ >= 0.0 &&
      now - latest_entries_time_ > config_.feed_stale_timeout) {
    log_info("crawler", "minimap feed went silent; reconnecting");
    latest_entries_time_ = -1.0;
    ++stats_.feed_reconnects;
    if (journal_ != nullptr && journal_->begun()) {
      journal_->append_session(now, SessionEvent::kFeedReconnect);
    }
    client_.force_disconnect();
    return;
  }

  act_human(now);

  if (now >= next_sample_) {
    // Stale minimap data (older than one nominal sampling interval) means we
    // just reconnected or the feed is fully shed; skip rather than record
    // outdated positions.
    if (latest_entries_time_ < 0.0 ||
        now - latest_entries_time_ > config_.sample_interval) {
      // A skip with a *recently* alive feed is the loudest pressure signal
      // the crawler gets: upstream shed the snapshot class hard enough that
      // a whole broadcast interval passed with nothing, so it counts against
      // the ladder like a pressured sample. The age bound keeps outages out:
      // once the feed has been silent longer than an interval plus the
      // pressure window, this is a dead session (blackout, lost circuit) —
      // coverage gaps already record those, and a dead feed ages past the
      // bound before it can contribute a second observation, so an outage
      // alone can never escalate (degrade_after >= 2). Uncounted skips
      // deliberately leave the hysteresis counters untouched either way.
      if (config_.degradation_enabled && latest_entries_time_ >= 0.0 &&
          now - latest_entries_time_ <=
              config_.sample_interval + config_.degrade_feed_age) {
        update_degradation(now, true);
      }
      next_sample_ = now + effective_interval();
      ++stats_.empty_snapshots;
      open_gap_if_needed(now);
      return;
    }
    if (gap_open_) {
      // Sampling recovered: the gap closes at this snapshot, which is the
      // first covered instant after the outage. The sink hears the gap
      // before the snapshot, preserving the stream ordering contract.
      trace_.add_gap(gap_start_, now);
      gap_open_ = false;
      ++stats_.coverage_gaps;
      if (journal_ != nullptr) journal_->append_gap_close(gap_start_, now);
      if (live_sink_ != nullptr) {
        live_begin_if_needed();
        live_sink_->on_gap(gap_start_, now);
      }
    }
    if (backoff_level_ > 0) {
      backoff_level_ = 0;
      ++stats_.backoff_resets;
    }
    // Overload ladder: judge pressure at this sample instant, emit any rate
    // change *before* the snapshot (stream ordering contract), then schedule
    // the next sample at the possibly-new effective interval. RNG-free, so
    // uncongested runs keep an identical draw sequence.
    if (config_.degradation_enabled) {
      const bool rtt_fresh =
          client_.circuit_last_rtt_at() >= 0.0 &&
          now - client_.circuit_last_rtt_at() <= config_.degrade_rtt_freshness;
      // A hole in the feed that closed since the previous sample still
      // counts: the pressure was real even if this sample's data is fresh.
      const bool recent_feed_hole =
          feed_gap_recovered_at_ >= 0.0 &&
          now - feed_gap_recovered_at_ <= config_.sample_interval;
      const bool pressured =
          (now - latest_entries_time_ > config_.degrade_feed_age) ||
          recent_feed_hole ||
          (rtt_fresh && client_.circuit_srtt() > config_.degrade_rtt_threshold);
      update_degradation(now, pressured);
    }
    next_sample_ = now + effective_interval();
    if (degrade_factor_ > 1) ++stats_.degraded_snapshots;
    Snapshot snap;
    snap.time = now;
    snap.fixes.reserve(latest_entries_.size());
    for (const auto& entry : latest_entries_) {
      if (entry.agent_id == client_.agent_id()) continue;  // exclude ourselves
      const CoarsePosition p = dequantize_coarse(entry);
      snap.fixes.push_back({AvatarId{entry.agent_id}, Vec3{p.x, p.y, p.z}});
    }
    if (journal_ != nullptr) {
      journal_begin_if_needed();
      journal_->append_snapshot(snap);
    }
    if (live_sink_ != nullptr) {
      live_begin_if_needed();
      live_sink_->on_snapshot(snap);
    }
    trace_.add(std::move(snap));
    ++stats_.snapshots_taken;
  }
}

void Crawler::open_gap_if_needed(Seconds now) {
  // A gap only makes sense once the trace has something before it; outages
  // before the very first snapshot are simply a later trace start.
  if (!gap_open_ && stats_.snapshots_taken > 0) {
    gap_open_ = true;
    gap_start_ = now;
    // The open mark lets salvage censor from the true outage start when the
    // process dies mid-gap (the close frame that would normally record it
    // never gets written).
    if (journal_ != nullptr) journal_->append_gap_open(gap_start_);
  }
}

void Crawler::note_sampling_outage(Seconds now) {
  // Called while sampling is impossible (disconnected / logging in). Keeps
  // the sampling clock advancing and marks the first missed sample as the
  // start of a coverage gap. Ladder hysteresis does not survive the outage:
  // the ladder judges *this session's* congestion, and pressure observed
  // before a session drop must not combine with the (retransmission-
  // inflated, hence pressured-looking) relogin handshake RTT to fake a
  // sustained-pressure streak — the outage itself is already accounted for
  // by the coverage gap.
  pressured_samples_ = 0;
  clean_samples_ = 0;
  if (now < next_sample_) return;
  next_sample_ = now + effective_interval();
  open_gap_if_needed(now);
}

}  // namespace slmob
