#include "crawler/crawler.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace slmob {

Crawler::Crawler(MetaverseClient& client, CrawlerConfig config, std::uint64_t seed)
    : client_(client),
      config_(config),
      rng_(seed),
      trace_("", config.sample_interval) {
  ClientCallbacks callbacks;
  callbacks.on_coarse = [this](Seconds now, const CoarseLocationUpdate& update) {
    on_coarse(now, update);
  };
  client_.set_callbacks(std::move(callbacks));
}

void Crawler::start() {
  running_ = true;
  client_.login();
}

void Crawler::stop() {
  running_ = false;
  client_.logout();
}

void Crawler::on_coarse(Seconds now, const CoarseLocationUpdate& update) {
  ++stats_.coarse_updates_seen;
  latest_entries_ = update.entries;
  latest_entries_time_ = now;
}

void Crawler::act_human(Seconds now) {
  if (!config_.mimicry.enabled) return;
  if (now >= next_move_) {
    const double step = rng_.uniform(config_.mimicry.step_min, config_.mimicry.step_max);
    const double theta = rng_.uniform(0.0, 6.283185307179586);
    // Random walk anchored at the spawn area; clamping keeps it in-land.
    const Vec3 base = client_.spawn_position();
    const Vec3 target{
        std::clamp(base.x + step * std::cos(theta) * rng_.uniform(0.5, 3.0), 1.0,
                   config_.land_size - 1.0),
        std::clamp(base.y + step * std::sin(theta) * rng_.uniform(0.5, 3.0), 1.0,
                   config_.land_size - 1.0),
        base.z};
    client_.move_to(target, 2.0);
    ++stats_.moves_made;
    next_move_ = now + rng_.exponential(config_.mimicry.move_period);
  }
  if (now >= next_chat_) {
    const auto& phrases = config_.mimicry.phrases;
    if (!phrases.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(phrases.size()) - 1));
      client_.say(phrases[idx]);
      ++stats_.chat_lines_sent;
    }
    next_chat_ = now + rng_.exponential(config_.mimicry.chat_period);
  }
}

void Crawler::journal_begin_if_needed() {
  if (journal_ != nullptr && !journal_->begun()) {
    journal_->begin(trace_.land_name(), config_.sample_interval);
  }
}

void Crawler::live_begin_if_needed() {
  if (live_sink_ != nullptr && !live_begun_) {
    live_begun_ = true;
    live_sink_->on_begin(trace_.land_name(), config_.sample_interval);
  }
}

Trace Crawler::take_trace() {
  if (gap_open_ && last_tick_ > gap_start_) {
    trace_.add_gap(gap_start_, last_tick_);
    gap_open_ = false;
    ++stats_.coverage_gaps;
    if (journal_ != nullptr) journal_->append_gap_close(gap_start_, last_tick_);
    if (live_sink_ != nullptr) {
      live_begin_if_needed();
      live_sink_->on_gap(gap_start_, last_tick_);
    }
  }
  return std::move(trace_);
}

void Crawler::tick(Seconds now, Seconds dt) {
  (void)dt;
  if (!running_) return;
  last_tick_ = now;

  if (trace_.land_name().empty() && !client_.region_name().empty()) {
    trace_ = Trace(client_.region_name(), config_.sample_interval);
  }

  switch (client_.state()) {
    case ClientState::kKicked:
    case ClientState::kDropped:
    case ClientState::kLoginFailed:
      // Paced re-login with exponential backoff: the server holds the dead
      // session until its circuit timeout expires, and during blackouts or
      // region crashes every attempt is wasted anyway, so the retry interval
      // doubles per consecutive failure (deterministically jittered to avoid
      // phase-locking with scheduled faults).
      note_sampling_outage(now);
      if (config_.auto_relogin && now >= next_login_retry_) {
        const Seconds base = std::min(
            config_.relogin_backoff_max,
            config_.relogin_backoff_base *
                std::pow(2.0, static_cast<double>(std::min(backoff_level_, 20u))));
        const double jitter = 1.0 + config_.relogin_jitter * rng_.uniform(-1.0, 1.0);
        next_login_retry_ = now + base * jitter;
        ++backoff_level_;
        ++stats_.relogins;
        log_info("crawler", "connection lost; re-logging in");
        if (journal_ != nullptr && journal_->begun()) {
          journal_->append_session(now, SessionEvent::kRelogin);
        }
        client_.login();
      }
      return;
    case ClientState::kLoggingIn:
    case ClientState::kDisconnected:
      note_sampling_outage(now);
      return;
    case ClientState::kConnected:
      break;
  }

  // Feed liveness: a connected client that stops receiving the minimap feed
  // has lost its session (however that happened); reconnect.
  if (latest_entries_time_ >= 0.0 &&
      now - latest_entries_time_ > config_.feed_stale_timeout) {
    log_info("crawler", "minimap feed went silent; reconnecting");
    latest_entries_time_ = -1.0;
    ++stats_.feed_reconnects;
    if (journal_ != nullptr && journal_->begun()) {
      journal_->append_session(now, SessionEvent::kFeedReconnect);
    }
    client_.force_disconnect();
    return;
  }

  act_human(now);

  if (now >= next_sample_) {
    next_sample_ = now + config_.sample_interval;
    // Stale minimap data (older than one sampling interval) means we just
    // reconnected; skip rather than record outdated positions.
    if (latest_entries_time_ < 0.0 ||
        now - latest_entries_time_ > config_.sample_interval) {
      ++stats_.empty_snapshots;
      open_gap_if_needed(now);
      return;
    }
    if (gap_open_) {
      // Sampling recovered: the gap closes at this snapshot, which is the
      // first covered instant after the outage. The sink hears the gap
      // before the snapshot, preserving the stream ordering contract.
      trace_.add_gap(gap_start_, now);
      gap_open_ = false;
      ++stats_.coverage_gaps;
      if (journal_ != nullptr) journal_->append_gap_close(gap_start_, now);
      if (live_sink_ != nullptr) {
        live_begin_if_needed();
        live_sink_->on_gap(gap_start_, now);
      }
    }
    if (backoff_level_ > 0) {
      backoff_level_ = 0;
      ++stats_.backoff_resets;
    }
    Snapshot snap;
    snap.time = now;
    snap.fixes.reserve(latest_entries_.size());
    for (const auto& entry : latest_entries_) {
      if (entry.agent_id == client_.agent_id()) continue;  // exclude ourselves
      const CoarsePosition p = dequantize_coarse(entry);
      snap.fixes.push_back({AvatarId{entry.agent_id}, Vec3{p.x, p.y, p.z}});
    }
    if (journal_ != nullptr) {
      journal_begin_if_needed();
      journal_->append_snapshot(snap);
    }
    if (live_sink_ != nullptr) {
      live_begin_if_needed();
      live_sink_->on_snapshot(snap);
    }
    trace_.add(std::move(snap));
    ++stats_.snapshots_taken;
  }
}

void Crawler::open_gap_if_needed(Seconds now) {
  // A gap only makes sense once the trace has something before it; outages
  // before the very first snapshot are simply a later trace start.
  if (!gap_open_ && stats_.snapshots_taken > 0) {
    gap_open_ = true;
    gap_start_ = now;
    // The open mark lets salvage censor from the true outage start when the
    // process dies mid-gap (the close frame that would normally record it
    // never gets written).
    if (journal_ != nullptr) journal_->append_gap_open(gap_start_);
  }
}

void Crawler::note_sampling_outage(Seconds now) {
  // Called while sampling is impossible (disconnected / logging in). Keeps
  // the sampling clock advancing and marks the first missed sample as the
  // start of a coverage gap.
  if (now < next_sample_) return;
  next_sample_ = now + config_.sample_interval;
  open_gap_if_needed(now);
}

}  // namespace slmob
