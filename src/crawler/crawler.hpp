// Crawler: the measurement instrument of the paper.
//
// It logs into the target land as a normal user (so private lands are no
// obstacle) and records, every `sample_interval` (tau = 10 s in the paper),
// a snapshot of the position of every avatar on the land, taken from the
// CoarseLocationUpdate minimap feed. Its own avatar is excluded from the
// trace.
//
// Mimicry: a motionless, silent avatar is conspicuous — the paper reports
// users steadily converging on their first crawler. With mimicry enabled
// the crawler wanders randomly across the land and broadcasts canned chat
// phrases, which suppresses the world's curiosity perturbation.
//
// Robustness: if the circuit dies (packet loss bursts — the paper blames
// libsecondlife instabilities for interrupted long traces), the crawler
// re-logs-in automatically and the trace simply has a short gap.
#pragma once

#include <string>
#include <vector>

#include "client/metaverse_client.hpp"
#include "trace/trace.hpp"

namespace slmob {

struct MimicryConfig {
  bool enabled{true};
  // Mean interval between wander moves / chat lines (exponentially jittered).
  Seconds move_period{45.0};
  Seconds chat_period{120.0};
  // Wander step length range (m).
  double step_min{5.0};
  double step_max{40.0};
  std::vector<std::string> phrases{
      "hi :)", "nice place!", "anyone from germany?", "lol",
      "how do i dance?", "brb", "cool build", "this party rocks",
  };
};

struct CrawlerConfig {
  Seconds sample_interval{10.0};  // the paper's tau
  MimicryConfig mimicry;
  bool auto_relogin{true};
  double land_size{256.0};
};

struct CrawlerStats {
  std::uint64_t snapshots_taken{0};
  std::uint64_t coarse_updates_seen{0};
  std::uint64_t relogins{0};
  std::uint64_t chat_lines_sent{0};
  std::uint64_t moves_made{0};
  std::uint64_t empty_snapshots{0};  // no coarse data fresh enough
};

class Crawler {
 public:
  Crawler(MetaverseClient& client, CrawlerConfig config, std::uint64_t seed = 7);

  // Starts the login handshake; sampling begins once connected.
  void start();
  void stop();

  // Engine hook (kPriorityMonitor). Assumes client.tick runs earlier in the
  // same engine tick (kPriorityClient).
  void tick(Seconds now, Seconds dt);

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] Trace take_trace() { return std::move(trace_); }
  [[nodiscard]] const CrawlerStats& stats() const { return stats_; }

 private:
  void on_coarse(Seconds now, const CoarseLocationUpdate& update);
  void act_human(Seconds now);

  MetaverseClient& client_;
  CrawlerConfig config_;
  Rng rng_;
  Trace trace_;
  bool running_{false};

  // Latest minimap state.
  std::vector<CoarseEntry> latest_entries_;
  Seconds latest_entries_time_{-1.0};

  Seconds next_sample_{0.0};
  Seconds next_move_{0.0};
  Seconds next_chat_{0.0};
  Seconds next_login_retry_{0.0};
  CrawlerStats stats_;
};

}  // namespace slmob
