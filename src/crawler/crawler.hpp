// Crawler: the measurement instrument of the paper.
//
// It logs into the target land as a normal user (so private lands are no
// obstacle) and records, every `sample_interval` (tau = 10 s in the paper),
// a snapshot of the position of every avatar on the land, taken from the
// CoarseLocationUpdate minimap feed. Its own avatar is excluded from the
// trace.
//
// Mimicry: a motionless, silent avatar is conspicuous — the paper reports
// users steadily converging on their first crawler. With mimicry enabled
// the crawler wanders randomly across the land and broadcasts canned chat
// phrases, which suppresses the world's curiosity perturbation.
//
// Robustness: if the circuit dies (packet loss bursts — the paper blames
// libsecondlife instabilities for interrupted long traces), the crawler
// re-logs-in automatically and the trace simply has a short gap.
#pragma once

#include <string>
#include <vector>

#include "client/metaverse_client.hpp"
#include "trace/journal.hpp"
#include "trace/stream.hpp"
#include "trace/trace.hpp"

namespace slmob {

struct MimicryConfig {
  bool enabled{true};
  // Mean interval between wander moves / chat lines (exponentially jittered).
  Seconds move_period{45.0};
  Seconds chat_period{120.0};
  // Wander step length range (m).
  double step_min{5.0};
  double step_max{40.0};
  std::vector<std::string> phrases{
      "hi :)", "nice place!", "anyone from germany?", "lol",
      "how do i dance?", "brb", "cool build", "this party rocks",
  };
};

struct CrawlerConfig {
  Seconds sample_interval{10.0};  // the paper's tau
  MimicryConfig mimicry;
  bool auto_relogin{true};
  double land_size{256.0};
  // Re-login pacing: exponential backoff starting at `relogin_backoff_base`
  // (the historical fixed retry interval), doubling per consecutive failure
  // up to `relogin_backoff_max`, with deterministic +/- `relogin_jitter`
  // fractional jitter drawn from the crawler's seeded RNG. The backoff
  // level resets once sampling succeeds again.
  Seconds relogin_backoff_base{15.0};
  Seconds relogin_backoff_max{240.0};
  double relogin_jitter{0.25};
  // A connected client whose minimap feed has been silent for this long has
  // lost its session however the server sees it; drop and re-login.
  Seconds feed_stale_timeout{60.0};
  // --- Graceful sampling degradation (overload ladder) ----------------------
  // Under sustained load pressure the crawler doubles its effective sampling
  // interval (factor 2, then 4) instead of losing coverage outright, and
  // records each degraded window on the trace (SamplingDegradation) so
  // analysis can rate-correct the densities. Pressure is judged at each
  // sample instant from three signals: the minimap feed's age (the snapshot-
  // class feed is the first traffic shed upstream), a feed hole wider than
  // degrade_feed_age that closed within the last sample interval (the shed
  // happened even if the feed looks fresh again by the time we sample), and
  // the client circuit's smoothed RTT (inflated by retransmissions under
  // congestion).
  bool degradation_enabled{true};
  std::uint32_t max_degrade_factor{4};
  Seconds degrade_feed_age{6.0};        // feed older than this = pressured
  Seconds degrade_rtt_threshold{1.5};   // SRTT above this = pressured
  // The RTT estimate only counts as pressure while it is *current*: the
  // newest sample must be at most this old. The crawler's steady-state
  // traffic is unreliable-only, so RTT samples are sparse (login handshakes,
  // mostly) — without this gate a single estimate measured during relogin
  // churn would pin the pressure signal long after the congestion is gone.
  Seconds degrade_rtt_freshness{10.0};
  std::uint32_t degrade_after{2};       // consecutive pressured samples to step up
  std::uint32_t recover_after{3};       // consecutive clean samples to step down
};

struct CrawlerStats {
  std::uint64_t snapshots_taken{0};
  std::uint64_t coarse_updates_seen{0};
  std::uint64_t relogins{0};
  std::uint64_t chat_lines_sent{0};
  std::uint64_t moves_made{0};
  std::uint64_t empty_snapshots{0};   // no coarse data fresh enough
  std::uint64_t feed_reconnects{0};   // drops after a silent minimap feed
  std::uint64_t coverage_gaps{0};     // gaps recorded on the trace
  std::uint64_t backoff_resets{0};    // times sampling recovered after faults
  // Overload-ladder counters (all zero in fault-free runs).
  std::uint64_t degrade_escalations{0};  // sampling factor steps up (1->2, 2->4)
  std::uint64_t degrade_recoveries{0};   // sampling factor steps back down
  std::uint64_t degraded_snapshots{0};   // snapshots taken at factor > 1
};

class Crawler {
 public:
  Crawler(MetaverseClient& client, CrawlerConfig config, std::uint64_t seed = 7);

  // Starts the login handshake; sampling begins once connected.
  void start();
  void stop();

  // Engine hook (kPriorityMonitor). Assumes client.tick runs earlier in the
  // same engine tick (kPriorityClient).
  void tick(Seconds now, Seconds dt);

  [[nodiscard]] const Trace& trace() const { return trace_; }
  // Hands the trace over; an outage still running at that point is recorded
  // as a trailing coverage gap first, so the trace never silently claims
  // coverage up to the end of a run the crawler did not survive.
  [[nodiscard]] Trace take_trace();
  [[nodiscard]] const CrawlerStats& stats() const { return stats_; }
  // Re-login pacing state; checkpoints record it so a resumed run can prove
  // the replayed crawler is in the same state as the one that crashed.
  [[nodiscard]] std::uint32_t backoff_level() const { return backoff_level_; }
  // Effective sampling factor currently in force (1 = nominal rate).
  [[nodiscard]] std::uint32_t degrade_factor() const { return degrade_factor_; }

  // Attaches a write-ahead journal (non-owning; nullptr detaches). Every
  // snapshot, gap and session event is mirrored to the journal as it is
  // recorded in memory, so a kill at any instant loses at most the frame in
  // flight. The journal's kBegin frame is written lazily with the first
  // record, once the land name is known. Journaling draws nothing from the
  // crawler's RNG: a journal-off run is bit-identical with or without this
  // code path.
  void attach_journal(TraceJournalWriter* journal) { journal_ = journal; }

  // Attaches a live analysis sink (non-owning; nullptr detaches), fed at
  // the same hook points as the journal: on_begin lazily with the first
  // snapshot (once the land name is known), every snapshot as it is
  // recorded, every coverage gap as it closes (including the trailing gap
  // take_trace records for an outage still open at hand-over). Events
  // arrive per the stream ordering contract of trace/stream.hpp, so an
  // attached StreamingAnalyzer computes during the run the exact report the
  // batch pipeline would compute from take_trace(). Snapshots are forwarded
  // unstripped — a sink comparing against run_experiment (which strips
  // sitting fixes) should enable its own strip option. The sink draws
  // nothing from the crawler's RNG: runs are bit-identical with or without
  // one attached.
  void attach_live_sink(LiveTraceSink* sink) { live_sink_ = sink; }

 private:
  void on_coarse(Seconds now, const CoarseLocationUpdate& update);
  void act_human(Seconds now);
  void open_gap_if_needed(Seconds now);
  void note_sampling_outage(Seconds now);
  void journal_begin_if_needed();
  void live_begin_if_needed();
  // Overload ladder: hysteresis counters feed set_degrade_factor, which
  // closes/opens the trace window and mirrors the change to journal + sink.
  void update_degradation(Seconds now, bool pressured);
  void set_degrade_factor(Seconds now, std::uint32_t factor);
  [[nodiscard]] Seconds effective_interval() const {
    return config_.sample_interval * static_cast<double>(degrade_factor_);
  }

  MetaverseClient& client_;
  CrawlerConfig config_;
  Rng rng_;
  Trace trace_;
  bool running_{false};

  // Latest minimap state.
  std::vector<CoarseEntry> latest_entries_;
  Seconds latest_entries_time_{-1.0};
  // When an arrival last closed an interarrival hole wider than
  // degrade_feed_age (negative until it happens); feeds the overload ladder.
  Seconds feed_gap_recovered_at_{-1.0};

  Seconds next_sample_{0.0};
  Seconds next_move_{0.0};
  Seconds next_chat_{0.0};
  Seconds next_login_retry_{0.0};
  std::uint32_t backoff_level_{0};  // consecutive re-login attempts
  // Open coverage gap: sampling has been impossible since gap_start_.
  bool gap_open_{false};
  Seconds gap_start_{0.0};
  // Overload ladder state: current factor, start of the open degradation
  // window (meaningful while degrade_factor_ > 1), hysteresis counters.
  std::uint32_t degrade_factor_{1};
  Seconds degrade_start_{0.0};
  std::uint32_t pressured_samples_{0};
  std::uint32_t clean_samples_{0};
  Seconds last_tick_{0.0};
  TraceJournalWriter* journal_{nullptr};
  LiveTraceSink* live_sink_{nullptr};
  bool live_begun_{false};
  CrawlerStats stats_;
};

}  // namespace slmob
