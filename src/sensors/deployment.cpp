#include "sensors/deployment.hpp"

#include <algorithm>
#include <cmath>

namespace slmob {

std::string default_sensor_script(Seconds sweep_rate) {
  // Kept small: every sweep appends CSV records to gCache; once the cache
  // outgrows FLUSH_AT the script flushes to the collector.
  //
  // Delivery is at-least-once with stable identity: a flush freezes the
  // payload into gInflight under a fresh sequence number (first line
  // "#sensor,<key>,seq,<n>"), and a failed flush (throttle 499, timeout 408)
  // retries the *same* payload under the *same* number until a 200 lands.
  // A 408 whose request was actually delivered therefore produces an exact
  // duplicate the collector can recognise and drop — records are never
  // re-labelled by a retry. New sweeps keep accumulating in gCache meanwhile;
  // records are dropped only when the 16 KB script memory would be exceeded
  // (counted via gDropped).
  std::string script = R"LSL(
string gCache = "";
string gInflight = "";
integer gSeq = 0;
integer gFlushing = FALSE;
integer gDropped = 0;
integer FLUSH_AT = 9000;

flush() {
    if (gFlushing) return;
    if (llStringLength(gInflight) == 0) {
        if (llStringLength(gCache) == 0) return;
        gSeq = gSeq + 1;
        gInflight = "#sensor," + (string)llGetKey() + ",seq," + (string)gSeq +
            "\n" + gCache;
        gCache = "";
    }
    gFlushing = TRUE;
    llHTTPRequest("http://collector.example/report", [], gInflight);
}

default {
    state_entry() {
        llSensorRepeat("", "", AGENT, 96.0, PI, %RATE%);
        llSetTimerEvent(30.0);
    }
    sensor(integer n) {
        integer i;
        string t = (string)llGetUnixTime();
        for (i = 0; i < n; i = i + 1) {
            vector p = llDetectedPos(i);
            string rec = t + "," + llDetectedKey(i) + "," + (string)p.x + "," +
                (string)p.y + "," + (string)p.z + "\n";
            if (llGetFreeMemory() > llStringLength(rec) + 2048) {
                gCache += rec;
            } else {
                gDropped = gDropped + 1;
            }
        }
        if (llStringLength(gCache) > FLUSH_AT) {
            flush();
        }
    }
    no_sensor() {
    }
    timer() {
        flush();
    }
    http_response(key k, integer status, list meta, string body) {
        gFlushing = FALSE;
        if (status == 200) {
            gInflight = "";
        }
    }
}
)LSL";
  const std::string token = "%RATE%";
  script.replace(script.find(token), token.size(), std::to_string(sweep_rate));
  return script;
}

SensorGridDeployment::SensorGridDeployment(ObjectRuntime& runtime, const Land& land,
                                           NodeId collector, SensorGridConfig config)
    : runtime_(runtime), collector_(collector), config_(config) {
  script_ = default_sensor_script(config_.sweep_rate);
  const double step = land.size() / static_cast<double>(config_.grid_side);
  for (std::size_t gy = 0; gy < config_.grid_side; ++gy) {
    for (std::size_t gx = 0; gx < config_.grid_side; ++gx) {
      positions_.push_back(land.clamp({(static_cast<double>(gx) + 0.5) * step,
                                       (static_cast<double>(gy) + 0.5) * step,
                                       land.ground_z()}));
    }
  }
  current_.assign(positions_.size(), ObjectId{0});
  backoff_level_.assign(positions_.size(), 0);
  next_attempt_.assign(positions_.size(), 0.0);
}

// Deploys a replacement into slot `i`, advancing or resetting that slot's
// exponential backoff (replication_interval x 2^level, capped).
bool SensorGridDeployment::try_deploy(std::size_t i, Seconds now) {
  ObjectId id;
  const DeployResult result =
      runtime_.deploy(positions_[i], script_, collector_, now, config_.limits,
                      config_.authorized, &id);
  if (result == DeployResult::kOk) {
    current_[i] = id;
    backoff_level_[i] = 0;
    next_attempt_[i] = now;
    return true;
  }
  ++stats_.failed_deployments;
  const double factor = std::pow(2.0, static_cast<double>(backoff_level_[i]));
  const Seconds delay =
      std::min(config_.replication_interval * factor, config_.redeploy_backoff_max);
  next_attempt_[i] = now + delay;
  if (config_.replication_interval * factor < config_.redeploy_backoff_max) {
    ++backoff_level_[i];
  }
  return false;
}

std::size_t SensorGridDeployment::deploy_all(Seconds now) {
  std::size_t deployed = 0;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (try_deploy(i, now)) ++deployed;
  }
  return deployed;
}

std::size_t SensorGridDeployment::live_sensors() const {
  std::size_t live = 0;
  for (const auto id : current_) {
    if (id.value != 0 && runtime_.alive(id)) ++live;
  }
  return live;
}

void SensorGridDeployment::tick(Seconds now, Seconds dt) {
  (void)dt;
  if (now < next_check_) return;
  next_check_ = now + config_.replication_interval;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const bool dead =
        current_[i].value == 0 || !runtime_.alive(current_[i]);
    // Also replace sensors whose script crashed (memory exhaustion).
    const SensorObject* object =
        current_[i].value == 0 ? nullptr : runtime_.find(current_[i]);
    if (!dead && object != nullptr && !object->failed()) continue;
    if (now < next_attempt_[i]) {
      ++stats_.backoff_skips;
      continue;
    }
    if (try_deploy(i, now)) ++stats_.redeployments;
  }
}

}  // namespace slmob
