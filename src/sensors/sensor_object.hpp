// SensorObject: one in-world scripted object (the paper's "virtual sensor").
//
// A sensor is an LSL-scripted object subject to the platform limits the
// paper §2 documents:
//  * llSensorRepeat detects at most 16 agents per sweep, within 96 m;
//  * script memory is 16 KB — the cache the paper mentions;
//  * llHTTPRequest is rate-limited; throttled requests fail with status 499;
//  * objects on public land expire after a land-dependent lifetime
//    (enforced by ObjectRuntime, not here).
//
// The object implements LslHost: all world access of the script goes
// through the limits enforced here.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "lsl/interpreter.hpp"
#include "net/network.hpp"
#include "sensors/http.hpp"
#include "sensors/http_transport.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "world/world.hpp"

namespace slmob {

// Which end of a bounded queue gives way when it is full.
enum class DropPolicy : std::uint8_t {
  kOldest,  // evict the oldest entry to admit the new one
  kNewest,  // refuse the new entry, keep the backlog
};

struct SensorLimits {
  std::size_t max_detected{16};
  double max_range{96.0};
  std::size_t script_memory{16 * 1024};
  std::size_t http_requests_per_minute{20};
  Seconds http_timeout{10.0};
  // Bounded HTTP bookkeeping: a collector that stays down for a long window
  // must not grow pending_http_/queued_responses_ without limit. Evicted
  // entries get a synthetic 503 so the script's state machine never wedges
  // waiting on a response that will not come.
  std::size_t max_pending_http{64};
  std::size_t max_queued_responses{64};
  DropPolicy http_drop_policy{DropPolicy::kOldest};
  // Graceful flush degradation: while HTTP responses keep failing (throttle,
  // timeout, drop), the script's timer interval is stretched by up to this
  // factor (doubling per consecutive failure), so a congested or slow
  // collector sees fewer, larger flushes instead of a retry storm. 1
  // disables widening.
  std::uint32_t max_flush_widen{4};
};

struct SensorObjectStats {
  std::uint64_t sweeps{0};
  std::uint64_t detections{0};
  std::uint64_t detections_truncated{0};  // avatars in range beyond the cap
  std::uint64_t http_requests{0};
  std::uint64_t http_throttled{0};
  std::uint64_t http_timeouts{0};
  std::uint64_t script_errors{0};
  // Entries evicted from the bounded HTTP queues (zero unless the collector
  // stayed unreachable long enough to fill them).
  std::uint64_t http_pending_dropped{0};
  std::uint64_t http_responses_dropped{0};
  // Timer firings re-armed at a widened interval (flush degradation active).
  std::uint64_t flushes_widened{0};

  SensorObjectStats& operator+=(const SensorObjectStats& other) {
    sweeps += other.sweeps;
    detections += other.detections;
    detections_truncated += other.detections_truncated;
    http_requests += other.http_requests;
    http_throttled += other.http_throttled;
    http_timeouts += other.http_timeouts;
    script_errors += other.script_errors;
    http_pending_dropped += other.http_pending_dropped;
    http_responses_dropped += other.http_responses_dropped;
    flushes_widened += other.flushes_widened;
    return *this;
  }
};

class SensorObject final : public lsl::LslHost {
 public:
  // `script` is LSL source; throws LslError if it does not parse.
  SensorObject(ObjectId id, const World& world, SimNetwork& network, NodeId collector,
               Vec3 position, std::string_view script, Seconds now, SensorLimits limits,
               std::uint64_t seed);
  ~SensorObject() override;

  SensorObject(const SensorObject&) = delete;
  SensorObject& operator=(const SensorObject&) = delete;

  // Runs timers, sensor sweeps and HTTP timeouts. Call every engine tick.
  void tick(Seconds now, Seconds dt);

  [[nodiscard]] ObjectId id() const { return id_; }
  [[nodiscard]] Vec3 position() const { return position_; }
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::string& last_error() const { return last_error_; }
  [[nodiscard]] const SensorObjectStats& stats() const { return stats_; }
  [[nodiscard]] NodeId address() const { return address_; }
  // Approximate script memory in use (limits enforcement + llGetFreeMemory).
  [[nodiscard]] std::size_t memory_usage() const;

  // --- LslHost -------------------------------------------------------------
  void ll_say(std::int64_t channel, const std::string& text) override;
  void ll_owner_say(const std::string& text) override;
  void ll_set_timer_event(double period_seconds) override;
  void ll_sensor_repeat(const std::string& name, const std::string& key, std::int64_t type,
                        double range, double arc, double rate) override;
  Vec3 ll_get_pos() override { return position_; }
  std::string ll_get_key() override { return "object-" + std::to_string(id_.value); }
  double ll_get_time() override { return now_ - created_at_; }
  std::int64_t ll_get_unix_time() override { return static_cast<std::int64_t>(now_); }
  double ll_frand(double max) override { return rng_.uniform(0.0, max); }
  std::string ll_http_request(const std::string& url, const lsl::List& params,
                              const std::string& body) override;
  std::int64_t ll_get_free_memory() override;

  std::size_t detected_count() const override { return detected_.size(); }
  Vec3 detected_pos(std::size_t i) const override { return detected_.at(i).pos; }
  std::string detected_key(std::size_t i) const override {
    return "avatar-" + std::to_string(detected_.at(i).id.value);
  }
  std::string detected_name(std::size_t i) const override {
    return "Resident " + std::to_string(detected_.at(i).id.value);
  }

 private:
  struct Detection {
    AvatarId id;
    Vec3 pos;
  };
  struct PendingHttp {
    std::string key;
    Seconds deadline;
  };

  void sweep(Seconds now);
  void fail_script(const std::string& what);
  void enforce_memory_limit();
  void deliver_response(const std::string& key, std::int64_t status,
                        const std::string& body);
  // Schedules a synthetic response, applying the bounded-queue drop policy.
  void queue_response(Seconds due, const std::string& key, std::int64_t status,
                      const std::string& body);
  // Current flush-widening factor: 1 while responses succeed, doubling per
  // consecutive HTTP failure up to limits_.max_flush_widen.
  [[nodiscard]] std::uint32_t flush_widen_factor() const;
  void on_datagram(std::span<const std::uint8_t> bytes);
  template <typename Fn>
  void guarded(Fn&& fn);

  ObjectId id_;
  const World& world_;
  SimNetwork& network_;
  NodeId collector_;
  NodeId address_;
  Vec3 position_;
  SensorLimits limits_;
  Rng rng_;
  Seconds created_at_;
  Seconds now_;

  std::unique_ptr<lsl::Interpreter> interp_;
  bool failed_{false};
  std::string last_error_;

  // timer event
  double timer_period_{0.0};
  Seconds next_timer_{0.0};
  // sensor repeat
  bool sensor_active_{false};
  double sensor_range_{0.0};
  double sensor_rate_{0.0};
  Seconds next_sweep_{0.0};
  std::vector<Detection> detected_;

  // HTTP state
  std::uint32_t next_request_id_{1};
  std::uint32_t consecutive_http_failures_{0};
  std::deque<Seconds> recent_http_;  // send timestamps for rate limiting
  std::vector<PendingHttp> pending_http_;
  // Responses scheduled for synthetic delivery (throttle failures).
  std::vector<std::tuple<Seconds, std::string, std::int64_t, std::string>> queued_responses_;
  HttpReassembler reassembler_;

  SensorObjectStats stats_;
};

}  // namespace slmob
