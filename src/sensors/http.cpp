#include "sensors/http.hpp"

#include "util/strings.hpp"

namespace slmob {
namespace {

std::string serialize_headers(const std::vector<HttpHeader>& headers,
                              std::size_t body_size) {
  std::string out;
  bool have_length = false;
  for (const auto& h : headers) {
    out += h.name + ": " + h.value + "\r\n";
    if (iequals(h.name, "Content-Length")) have_length = true;
  }
  if (!have_length) out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  out += "\r\n";
  return out;
}

// Parses headers + body starting after the start line; returns false on
// malformed framing.
bool parse_rest(std::string_view text, std::size_t header_start,
                std::vector<HttpHeader>& headers, std::string& body) {
  std::size_t pos = header_start;
  for (;;) {
    const std::size_t eol = text.find("\r\n", pos);
    if (eol == std::string_view::npos) return false;
    if (eol == pos) {  // blank line: end of headers
      pos = eol + 2;
      break;
    }
    const std::string_view line = text.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    headers.push_back({std::string(trim(line.substr(0, colon))),
                       std::string(trim(line.substr(colon + 1)))});
    pos = eol + 2;
  }
  body.assign(text.substr(pos));
  for (const auto& h : headers) {
    if (iequals(h.name, "Content-Length")) {
      const long long n = parse_non_negative_int(h.value);
      if (n < 0 || static_cast<std::size_t>(n) > body.size()) return false;
      body.resize(static_cast<std::size_t>(n));
    }
  }
  return true;
}

std::optional<std::string> find_header(const std::vector<HttpHeader>& headers,
                                       std::string_view name) {
  for (const auto& h : headers) {
    if (iequals(h.name, name)) return h.value;
  }
  return std::nullopt;
}

}  // namespace

std::string HttpRequest::serialize() const {
  return method + " " + path + " HTTP/1.0\r\n" + serialize_headers(headers, body.size()) +
         body;
}

std::optional<std::string> HttpRequest::header(std::string_view name) const {
  return find_header(headers, name);
}

std::string HttpResponse::serialize() const {
  return "HTTP/1.0 " + std::to_string(status) + " " + reason + "\r\n" +
         serialize_headers(headers, body.size()) + body;
}

std::optional<std::string> HttpResponse::header(std::string_view name) const {
  return find_header(headers, name);
}

std::optional<HttpRequest> parse_http_request(std::string_view text) {
  const std::size_t eol = text.find("\r\n");
  if (eol == std::string_view::npos) return std::nullopt;
  const auto parts = split(text.substr(0, eol), ' ');
  if (parts.size() != 3 || !starts_with(parts[2], "HTTP/")) return std::nullopt;
  HttpRequest req;
  req.method = parts[0];
  req.path = parts[1];
  if (!parse_rest(text, eol + 2, req.headers, req.body)) return std::nullopt;
  return req;
}

std::optional<HttpResponse> parse_http_response(std::string_view text) {
  const std::size_t eol = text.find("\r\n");
  if (eol == std::string_view::npos) return std::nullopt;
  const std::string_view line = text.substr(0, eol);
  if (!starts_with(line, "HTTP/")) return std::nullopt;
  const auto parts = split(line, ' ');
  if (parts.size() < 2) return std::nullopt;
  HttpResponse resp;
  const long long status = parse_non_negative_int(parts[1]);
  if (status < 100 || status > 599) return std::nullopt;
  resp.status = static_cast<int>(status);
  resp.reason = parts.size() > 2 ? parts[2] : "";
  if (!parse_rest(text, eol + 2, resp.headers, resp.body)) return std::nullopt;
  return resp;
}

}  // namespace slmob
