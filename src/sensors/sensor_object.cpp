#include "sensors/sensor_object.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace slmob {
namespace {

std::size_t value_bytes(const lsl::Value& v) {
  if (v.is_string()) return 16 + v.as_string().size();
  if (v.is_list()) {
    std::size_t total = 16;
    for (const auto& item : v.as_list()) total += value_bytes(item);
    return total;
  }
  return 16;
}

}  // namespace

SensorObject::SensorObject(ObjectId id, const World& world, SimNetwork& network,
                           NodeId collector, Vec3 position, std::string_view script,
                           Seconds now, SensorLimits limits, std::uint64_t seed)
    : id_(id),
      world_(world),
      network_(network),
      collector_(collector),
      position_(world.land().clamp(position)),
      limits_(limits),
      rng_(seed),
      created_at_(now),
      now_(now) {
  address_ = network_.register_node(
      [this](NodeId from, std::span<const std::uint8_t> bytes) {
        if (from == collector_) on_datagram(bytes);
      });
  interp_ = std::make_unique<lsl::Interpreter>(script, *this);
  guarded([&] { interp_->start(); });
}

SensorObject::~SensorObject() {
  // Deregister by installing a null handler; SimNetwork keeps the slot.
  network_.set_handler(address_, nullptr);
}

template <typename Fn>
void SensorObject::guarded(Fn&& fn) {
  if (failed_) return;
  try {
    fn();
    enforce_memory_limit();
  } catch (const std::exception& e) {
    fail_script(e.what());
  }
}

void SensorObject::fail_script(const std::string& what) {
  failed_ = true;
  last_error_ = what;
  ++stats_.script_errors;
  log_warn("sensor", "script failed: " + what);
}

std::size_t SensorObject::memory_usage() const {
  std::size_t total = 0;
  for (const auto& [name, value] : interp_->globals()) total += value_bytes(value);
  return total;
}

void SensorObject::enforce_memory_limit() {
  if (memory_usage() > limits_.script_memory) {
    // Real LSL crashes the script with a stack-heap collision.
    throw lsl::LslError("stack-heap collision (script memory exceeded)", 0, 0);
  }
}

std::int64_t SensorObject::ll_get_free_memory() {
  const std::size_t used = memory_usage();
  return used >= limits_.script_memory
             ? 0
             : static_cast<std::int64_t>(limits_.script_memory - used);
}

void SensorObject::ll_say(std::int64_t channel, const std::string& text) {
  (void)channel;
  (void)text;  // nobody listens to sensors; kept for script debugging
}

void SensorObject::ll_owner_say(const std::string& text) {
  if (Logger::instance().enabled(LogLevel::kDebug)) {
    log_debug("sensor", "owner say: " + text);
  }
}

void SensorObject::ll_set_timer_event(double period_seconds) {
  timer_period_ = period_seconds;
  next_timer_ = period_seconds > 0.0 ? now_ + period_seconds : 0.0;
}

void SensorObject::ll_sensor_repeat(const std::string& name, const std::string& key,
                                    std::int64_t type, double range, double arc,
                                    double rate) {
  (void)name;
  (void)key;
  (void)type;  // only AGENT scans are meaningful here
  (void)arc;   // sensors are omnidirectional
  sensor_active_ = rate > 0.0;
  sensor_range_ = std::min(range, limits_.max_range);
  sensor_rate_ = std::max(rate, 1.0);
  next_sweep_ = now_ + sensor_rate_;
}

std::string SensorObject::ll_http_request(const std::string& url, const lsl::List& params,
                                          const std::string& body) {
  (void)params;
  const std::string key = "http-" + std::to_string(id_.value) + "-" +
                          std::to_string(next_request_id_);
  const std::uint32_t message_id = next_request_id_++;

  // Rate limiting (the platform restriction the paper calls out).
  while (!recent_http_.empty() && now_ - recent_http_.front() > 60.0) {
    recent_http_.pop_front();
  }
  if (recent_http_.size() >= limits_.http_requests_per_minute) {
    ++stats_.http_throttled;
    queue_response(now_ + 1.0, key, 499, "throttled");
    return key;
  }

  // Bounded pending table: a collector that stays unreachable accumulates
  // pending entries no faster than they time out, but the cap makes the
  // bound explicit rather than emergent. kNewest refuses this request (503,
  // nothing sent); kOldest abandons the stalest wait with a 503 so its
  // script-side state machine is released, then admits this one.
  if (pending_http_.size() >= limits_.max_pending_http) {
    ++stats_.http_pending_dropped;
    if (limits_.http_drop_policy == DropPolicy::kNewest) {
      queue_response(now_, key, 503, "dropped");
      return key;
    }
    queue_response(now_, pending_http_.front().key, 503, "dropped");
    pending_http_.erase(pending_http_.begin());
  }
  recent_http_.push_back(now_);
  ++stats_.http_requests;

  HttpRequest req;
  req.method = "POST";
  // Path part of the URL; the host part is implied (the collector node).
  const std::size_t scheme = url.find("//");
  const std::size_t slash =
      url.find('/', scheme == std::string::npos ? 0 : scheme + 2);
  req.path = slash == std::string::npos ? "/" : url.substr(slash);
  req.headers.push_back({"X-Request-Key", key});
  req.headers.push_back({"X-Sensor-Id", std::to_string(id_.value)});
  req.body = body;
  for (auto& frag : fragment_http_message(message_id, req.serialize())) {
    // Sensor flushes are bulk observation data: snapshot class, shed first
    // when the network's in-flight budget saturates (a lost flush is retried
    // by the script after its 408).
    network_.send(address_, collector_, std::move(frag), PacketClass::kSnapshot);
  }
  pending_http_.push_back({key, now_ + limits_.http_timeout});
  return key;
}

void SensorObject::queue_response(Seconds due, const std::string& key,
                                  std::int64_t status, const std::string& body) {
  if (queued_responses_.size() >= limits_.max_queued_responses) {
    ++stats_.http_responses_dropped;
    if (limits_.http_drop_policy == DropPolicy::kNewest) return;
    queued_responses_.erase(queued_responses_.begin());
  }
  queued_responses_.emplace_back(due, key, status, body);
}

void SensorObject::on_datagram(std::span<const std::uint8_t> bytes) {
  const auto message = reassembler_.feed(collector_, bytes);
  if (!message) return;
  const auto resp = parse_http_response(*message);
  if (!resp) return;
  const auto key = resp->header("X-Request-Key");
  if (!key) return;
  deliver_response(*key, resp->status, resp->body);
}

void SensorObject::deliver_response(const std::string& key, std::int64_t status,
                                    const std::string& body) {
  const auto it = std::find_if(pending_http_.begin(), pending_http_.end(),
                               [&](const PendingHttp& p) { return p.key == key; });
  if (it != pending_http_.end()) pending_http_.erase(it);
  // Feed the flush-degradation ladder: a lost or dropped flush (timeout 408,
  // queue drop 503) signals collector/network distress and widens the next
  // timer interval; a success restores the nominal rate. 499 (the platform's
  // own rate limiter) is already backpressure and is deliberately excluded.
  if (status == 200) {
    consecutive_http_failures_ = 0;
  } else if (status == 408 || status == 503) {
    ++consecutive_http_failures_;
  }
  guarded([&] { interp_->fire_http_response(key, status, body); });
}

std::uint32_t SensorObject::flush_widen_factor() const {
  if (consecutive_http_failures_ == 0 || limits_.max_flush_widen <= 1) return 1;
  const std::uint32_t shift = std::min<std::uint32_t>(consecutive_http_failures_, 16);
  return std::min<std::uint32_t>(1u << shift, limits_.max_flush_widen);
}

void SensorObject::sweep(Seconds now) {
  ++stats_.sweeps;
  // Nearest-first detection, capped at max_detected — llSensor semantics.
  // The world's grid answers the range query; indices come back ascending
  // (= id order), matching the full scan this replaces.
  std::vector<Detection> in_range;
  const auto& store = world_.avatars();
  for (const std::uint32_t i : world_.within(position_, sensor_range_)) {
    in_range.push_back({store.id(i), store.pos(i)});
  }
  std::sort(in_range.begin(), in_range.end(), [&](const Detection& a, const Detection& b) {
    return position_.distance2d_to(a.pos) < position_.distance2d_to(b.pos);
  });
  if (in_range.size() > limits_.max_detected) {
    stats_.detections_truncated += in_range.size() - limits_.max_detected;
    in_range.resize(limits_.max_detected);
  }
  detected_ = std::move(in_range);
  stats_.detections += detected_.size();
  guarded([&] {
    if (detected_.empty()) {
      interp_->fire_no_sensor();
    } else {
      interp_->fire_sensor(static_cast<std::int64_t>(detected_.size()));
    }
  });
  detected_.clear();
  (void)now;
}

void SensorObject::tick(Seconds now, Seconds dt) {
  (void)dt;
  now_ = now;
  if (failed_) return;

  // Synthetic (throttle) responses due.
  for (std::size_t i = 0; i < queued_responses_.size();) {
    if (std::get<0>(queued_responses_[i]) <= now) {
      auto [due, key, status, body] = std::move(queued_responses_[i]);
      queued_responses_.erase(queued_responses_.begin() + static_cast<std::ptrdiff_t>(i));
      deliver_response(key, status, body);
    } else {
      ++i;
    }
  }
  // HTTP timeouts (lost fragments, dead collector). Routed through
  // deliver_response so the 408 feeds the flush-widening ladder exactly like
  // a queue-drop 503 — a timed-out flush is the clearest distress signal the
  // sensor gets.
  for (std::size_t i = 0; i < pending_http_.size();) {
    if (pending_http_[i].deadline <= now) {
      const std::string key = pending_http_[i].key;
      pending_http_.erase(pending_http_.begin() + static_cast<std::ptrdiff_t>(i));
      ++stats_.http_timeouts;
      deliver_response(key, 408, "timeout");
    } else {
      ++i;
    }
  }
  if (failed_) return;

  if (timer_period_ > 0.0 && now >= next_timer_) {
    // Under HTTP failure pressure the timer (the script's flush driver) is
    // re-armed at a widened interval — graceful degradation instead of a
    // retry storm against a struggling collector.
    const std::uint32_t widen = flush_widen_factor();
    next_timer_ = now + timer_period_ * static_cast<double>(widen);
    if (widen > 1) ++stats_.flushes_widened;
    guarded([&] { interp_->fire_timer(); });
  }
  if (sensor_active_ && now >= next_sweep_) {
    next_sweep_ = now + sensor_rate_;
    sweep(now);
  }
  reassembler_.gc();
}

}  // namespace slmob
