#include "sensors/http_transport.hpp"

#include "util/bytes.hpp"

namespace slmob {

std::vector<std::vector<std::uint8_t>> fragment_http_message(std::uint32_t message_id,
                                                             std::string_view message) {
  std::vector<std::vector<std::uint8_t>> out;
  const std::size_t count =
      message.empty() ? 1 : (message.size() + kHttpFragmentPayload - 1) / kHttpFragmentPayload;
  if (count > 0xffff) throw std::length_error("fragment_http_message: message too large");
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t offset = i * kHttpFragmentPayload;
    const std::size_t len = std::min(kHttpFragmentPayload, message.size() - offset);
    ByteWriter w;
    w.u32(message_id);
    w.u16(static_cast<std::uint16_t>(i));
    w.u16(static_cast<std::uint16_t>(count));
    const auto* p = reinterpret_cast<const std::uint8_t*>(message.data() + offset);
    w.raw({p, len});
    out.push_back(w.take());
  }
  return out;
}

std::optional<std::string> HttpReassembler::feed(NodeId from,
                                                 std::span<const std::uint8_t> bytes) {
  try {
    ByteReader r(bytes);
    const std::uint32_t id = r.u32();
    const std::uint16_t index = r.u16();
    const std::uint16_t count = r.u16();
    if (count == 0 || index >= count) {
      ++malformed_;
      return std::nullopt;
    }
    const auto payload = r.raw(r.remaining());
    auto& partial = partial_[{from, id}];
    if (partial.pieces.empty()) partial.pieces.resize(count);
    if (partial.pieces.size() != count) {
      ++malformed_;
      partial_.erase({from, id});
      return std::nullopt;
    }
    if (partial.pieces[index].empty()) {
      partial.pieces[index].assign(payload.begin(), payload.end());
      ++partial.received;
    }
    if (partial.received < count) return std::nullopt;
    std::string message;
    for (const auto& piece : partial.pieces) message += piece;
    partial_.erase({from, id});
    return message;
  } catch (const DecodeError&) {
    ++malformed_;
    return std::nullopt;
  }
}

void HttpReassembler::gc(std::size_t max_partial) {
  while (partial_.size() > max_partial) partial_.erase(partial_.begin());
}

}  // namespace slmob
