#include "sensors/object_runtime.hpp"

#include <algorithm>

#include "lsl/lexer.hpp"
#include "util/log.hpp"

namespace slmob {

ObjectRuntime::ObjectRuntime(const World& world, SimNetwork& network, std::uint64_t seed)
    : world_(world), network_(network), rng_(seed) {}

Seconds ObjectRuntime::lifetime_for_land() const {
  const Land& land = world_.land();
  switch (land.access()) {
    case LandAccess::kPrivate:
      return 1e18;  // authorised objects persist
    case LandAccess::kPublic:
      return land.object_lifetime();
    case LandAccess::kSandbox:
      return std::min(land.object_lifetime(), 600.0);
  }
  return land.object_lifetime();
}

DeployResult ObjectRuntime::deploy(Vec3 position, std::string_view script,
                                   NodeId collector, Seconds now,
                                   const SensorLimits& limits, bool authorized,
                                   ObjectId* out_id) {
  if (world_.land().access() == LandAccess::kPrivate && !authorized) {
    ++stats_.rejected;
    return DeployResult::kForbiddenPrivateLand;
  }
  const ObjectId id{next_object_id_++};
  try {
    auto object = std::make_unique<SensorObject>(id, world_, network_, collector, position,
                                                 script, now, limits, rng_.next());
    objects_.push_back(std::move(object));
    expiry_.push_back(now + lifetime_for_land());
  } catch (const lsl::LslError& e) {
    ++stats_.rejected;
    log_warn("objects", std::string("script rejected: ") + e.what());
    return DeployResult::kBadScript;
  }
  ++stats_.deployed;
  if (out_id != nullptr) *out_id = id;
  return DeployResult::kOk;
}

SensorObject* ObjectRuntime::find(ObjectId id) {
  for (auto& object : objects_) {
    if (object->id() == id) return object.get();
  }
  return nullptr;
}

bool ObjectRuntime::alive(ObjectId id) const {
  return std::any_of(objects_.begin(), objects_.end(),
                     [&](const auto& object) { return object->id() == id; });
}

void ObjectRuntime::tick(Seconds now, Seconds dt) {
  for (std::size_t i = 0; i < objects_.size();) {
    if (now >= expiry_[i]) {
      ++stats_.expired;
      retired_sensor_stats_ += objects_[i]->stats();
      objects_.erase(objects_.begin() + static_cast<std::ptrdiff_t>(i));
      expiry_.erase(expiry_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  for (auto& object : objects_) object->tick(now, dt);
}

}  // namespace slmob
