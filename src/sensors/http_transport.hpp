// Datagram transport for HTTP messages with fragmentation/reassembly.
//
// SimNetwork delivers datagrams up to one MTU; an HTTP message (a sensor
// cache flush approaches 16 KB) is split into numbered fragments and
// reassembled at the receiver, like a minimal TCP segment stream. There is
// no retransmission: a lost fragment loses the message, and the requester
// times out (status 408) — the sensor script is responsible for retrying.
//
// Fragment layout: u32 message id | u16 index | u16 count | payload bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace slmob {

inline constexpr std::size_t kHttpFragmentPayload = 1200;

// Splits `message` into fragments ready for SimNetwork::send.
std::vector<std::vector<std::uint8_t>> fragment_http_message(std::uint32_t message_id,
                                                             std::string_view message);

// Stateful reassembler; feed fragments, get completed messages.
class HttpReassembler {
 public:
  // Returns the full message when `bytes` completes one; nullopt otherwise.
  // Malformed fragments are dropped (counted).
  std::optional<std::string> feed(NodeId from, std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::uint64_t malformed() const { return malformed_; }
  // Drops partial messages older than one tick-cycle; call occasionally to
  // bound memory (lost fragments would otherwise leak buffers).
  void gc(std::size_t max_partial = 256);

 private:
  struct Partial {
    std::vector<std::string> pieces;
    std::size_t received{0};
  };
  std::map<std::pair<NodeId, std::uint32_t>, Partial> partial_;
  std::uint64_t malformed_{0};
};

}  // namespace slmob
