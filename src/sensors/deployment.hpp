// SensorGridDeployment: covers a land with virtual sensors and keeps the
// grid alive by re-deploying replacements when objects expire — the
// "replicates all sensors in the same position at regular time intervals"
// strategy of the paper.
#pragma once

#include <string>
#include <vector>

#include "sensors/collector.hpp"
#include "sensors/object_runtime.hpp"

namespace slmob {

// The stock sensor script: sweep every SWEEP_RATE seconds, append
// "time,key,x,y,z" records to the in-script cache, flush over HTTP before
// the 16 KB script memory is exhausted, retry failed flushes.
// %URL% is substituted with the collector URL before deployment.
std::string default_sensor_script(Seconds sweep_rate = 10.0);

struct SensorGridConfig {
  // Sensors per side (2 => 2x2 grid; 96 m range covers a 256 m land).
  std::size_t grid_side{2};
  Seconds sweep_rate{10.0};
  SensorLimits limits;
  // How often to check for expired sensors and re-deploy.
  Seconds replication_interval{60.0};
  // Failed deployments back off exponentially per grid slot
  // (replication_interval x 2^failures, capped here) instead of hammering a
  // full or crashed region every check.
  Seconds redeploy_backoff_max{960.0};
  bool authorized{false};  // owner permission on private land
};

struct SensorGridStats {
  std::uint64_t redeployments{0};
  std::uint64_t failed_deployments{0};
  std::uint64_t backoff_skips{0};  // checks skipped while a slot was backing off
};

class SensorGridDeployment {
 public:
  SensorGridDeployment(ObjectRuntime& runtime, const Land& land, NodeId collector,
                       SensorGridConfig config);

  // Initial deployment; returns the number of sensors successfully placed
  // (0 on private land without authorisation).
  std::size_t deploy_all(Seconds now);

  // Re-deploys replacements for expired sensors (kPriorityMonitor).
  void tick(Seconds now, Seconds dt);

  [[nodiscard]] const SensorGridStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t live_sensors() const;
  [[nodiscard]] const std::vector<Vec3>& positions() const { return positions_; }

 private:
  bool try_deploy(std::size_t i, Seconds now);

  ObjectRuntime& runtime_;
  NodeId collector_;
  SensorGridConfig config_;
  std::vector<Vec3> positions_;
  std::vector<ObjectId> current_;  // parallel to positions_; id 0 = none
  // Per-slot retry backoff, parallel to positions_.
  std::vector<std::uint32_t> backoff_level_;
  std::vector<Seconds> next_attempt_;
  std::string script_;
  Seconds next_check_{0.0};
  SensorGridStats stats_;
};

}  // namespace slmob
