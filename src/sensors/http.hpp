// Minimal HTTP/1.0 message framing.
//
// The sensor architecture reports to an external web server over HTTP (the
// paper §2). We implement just enough of HTTP to make that path honest:
// request line, headers, Content-Length body; status line for responses.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace slmob {

struct HttpHeader {
  std::string name;
  std::string value;
};

struct HttpRequest {
  std::string method{"POST"};
  std::string path{"/"};
  std::vector<HttpHeader> headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] std::optional<std::string> header(std::string_view name) const;
};

struct HttpResponse {
  int status{200};
  std::string reason{"OK"};
  std::vector<HttpHeader> headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] std::optional<std::string> header(std::string_view name) const;
};

// Parsers return nullopt on malformed input.
std::optional<HttpRequest> parse_http_request(std::string_view text);
std::optional<HttpResponse> parse_http_response(std::string_view text);

}  // namespace slmob
