// HttpCollector: the paper's external web server. Sensors flush their
// caches to it via HTTP POST; the collector parses the position records and
// can render them as a Trace comparable to the crawler's.
//
// Record format (one per line in the POST body):
//   <unix_time>,avatar-<id>,<x>,<y>,<z>
// An optional leading "#sensor,<key>,seq,<n>" line identifies the flush;
// the collector drops whole flushes it has already seen for that sensor, so
// the sensor side can retry timed-out requests (at-least-once delivery)
// without double-counting records.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sensors/http.hpp"
#include "sensors/http_transport.hpp"
#include "trace/trace.hpp"

namespace slmob {

struct CollectorStats {
  std::uint64_t requests{0};
  std::uint64_t bad_requests{0};
  std::uint64_t records{0};
  std::uint64_t malformed_records{0};
  std::uint64_t bytes_received{0};
  // Whole flushes dropped because their (sensor, seq) was already recorded —
  // the delivered-but-timed-out retry case.
  std::uint64_t duplicate_flushes{0};
  // Datagrams discarded while a kCollectorCrash window was active.
  std::uint64_t dropped_while_down{0};
  // Acks held back by a kCollectorSlow window (sent late from tick()).
  std::uint64_t responses_delayed{0};
  // Acks discarded because the bounded deferred-response queue was full;
  // the sensor times out (408) and retries, dedup absorbs the replay.
  std::uint64_t responses_dropped{0};
};

class HttpCollector {
 public:
  explicit HttpCollector(SimNetwork& network, std::string land_name = "sensor-trace");

  [[nodiscard]] NodeId address() const { return address_; }
  [[nodiscard]] const CollectorStats& stats() const { return stats_; }

  // Installs the rig's fault schedule; kCollectorCrash and kCollectorSlow
  // windows are consulted. Requires tick() to be driven so the collector
  // knows the time (and, for slow windows, flushes deferred acks).
  void set_faults(FaultSchedule faults) { faults_ = std::move(faults); }
  // Advances the collector's clock (register with the engine when faults are
  // in play; without faults the collector is purely reactive and needs none).
  void tick(Seconds now, Seconds dt);

  [[nodiscard]] bool down_at(Seconds t) const { return faults_.collector_down_at(t); }

  // Builds a snapshot trace by binning records into `interval`-second bins;
  // an avatar reported by several overlapping sensors in one bin appears
  // once (first report wins).
  [[nodiscard]] Trace build_trace(Seconds interval = 10.0) const;

  struct Record {
    double time;
    std::uint32_t avatar;
    Vec3 pos;
  };
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }

 private:
  void on_datagram(NodeId from, std::span<const std::uint8_t> bytes);
  void handle_request(NodeId from, const HttpRequest& request);

  // Bounded backlog of acks held by a kCollectorSlow window. A slow web
  // server must not buffer unboundedly: past this, acks are dropped and the
  // sensor's retry path takes over.
  static constexpr std::size_t kMaxDeferredResponses = 256;
  struct DeferredResponse {
    Seconds due;
    NodeId to;
    std::vector<std::vector<std::uint8_t>> fragments;
  };

  SimNetwork& network_;
  NodeId address_{};
  std::string land_name_;
  FaultSchedule faults_;
  Seconds now_{0.0};
  HttpReassembler reassembler_;
  std::uint32_t next_response_id_{1};
  std::vector<Record> records_;
  // Flush sequence numbers already recorded, per sensor key.
  std::map<std::string, std::set<std::uint64_t>> seen_flushes_;
  // FIFO of acks awaiting their kCollectorSlow release time.
  std::deque<DeferredResponse> deferred_responses_;
  CollectorStats stats_;
};

}  // namespace slmob
