// ObjectRuntime: server-side hosting of in-world scripted objects.
//
// Enforces the land policies the paper describes:
//  * deployment on private lands is forbidden without authorisation;
//  * objects on public/sandbox land expire after the land's object
//    lifetime (sandboxes aggressively), and are removed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sensors/sensor_object.hpp"

namespace slmob {

enum class DeployResult {
  kOk,
  kForbiddenPrivateLand,
  kBadScript,
};

struct ObjectRuntimeStats {
  std::uint64_t deployed{0};
  std::uint64_t rejected{0};
  std::uint64_t expired{0};
};

class ObjectRuntime {
 public:
  ObjectRuntime(const World& world, SimNetwork& network, std::uint64_t seed = 99);

  // Deploys a scripted sensor at `position`. `authorized` models owner
  // permission on private land. On success `out_id` receives the object id.
  DeployResult deploy(Vec3 position, std::string_view script, NodeId collector,
                      Seconds now, const SensorLimits& limits, bool authorized,
                      ObjectId* out_id = nullptr);

  // Expires due objects and ticks the rest (kPriorityServer).
  void tick(Seconds now, Seconds dt);

  [[nodiscard]] const std::vector<std::unique_ptr<SensorObject>>& objects() const {
    return objects_;
  }
  [[nodiscard]] SensorObject* find(ObjectId id);
  [[nodiscard]] bool alive(ObjectId id) const;
  [[nodiscard]] const ObjectRuntimeStats& stats() const { return stats_; }
  // Sensor stats summed over the whole deployment history: expired
  // generations are folded in at removal time, so counters accumulated
  // before a lifetime rollover (on public/sandbox land the fleet turns over
  // every object_lifetime seconds) are not lost with the object.
  [[nodiscard]] SensorObjectStats total_sensor_stats() const {
    SensorObjectStats total = retired_sensor_stats_;
    for (const auto& object : objects_) total += object->stats();
    return total;
  }

 private:
  [[nodiscard]] Seconds lifetime_for_land() const;

  const World& world_;
  SimNetwork& network_;
  Rng rng_;
  std::uint32_t next_object_id_{1};
  std::vector<std::unique_ptr<SensorObject>> objects_;
  std::vector<Seconds> expiry_;  // parallel to objects_
  ObjectRuntimeStats stats_;
  SensorObjectStats retired_sensor_stats_;  // summed from expired objects
};

}  // namespace slmob
