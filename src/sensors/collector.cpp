#include "sensors/collector.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/strings.hpp"

namespace slmob {

HttpCollector::HttpCollector(SimNetwork& network, std::string land_name)
    : network_(network), land_name_(std::move(land_name)) {
  address_ = network_.register_node(
      [this](NodeId from, std::span<const std::uint8_t> bytes) { on_datagram(from, bytes); });
}

void HttpCollector::tick(Seconds now, Seconds dt) {
  (void)dt;
  now_ = now;
  // Release acks whose kCollectorSlow hold has expired (FIFO: due times are
  // monotone because the added delay is constant within a window).
  while (!deferred_responses_.empty() && deferred_responses_.front().due <= now) {
    DeferredResponse resp = std::move(deferred_responses_.front());
    deferred_responses_.pop_front();
    for (auto& frag : resp.fragments) {
      network_.send(address_, resp.to, std::move(frag));
    }
  }
}

void HttpCollector::on_datagram(NodeId from, std::span<const std::uint8_t> bytes) {
  if (faults_.collector_down_at(now_)) {
    // Crashed web server: the datagram vanishes — no reassembly, no record,
    // no ack. The sensor's request times out (408) and is retried later
    // under the same sequence number.
    ++stats_.dropped_while_down;
    return;
  }
  const auto message = reassembler_.feed(from, bytes);
  if (!message) return;
  stats_.bytes_received += message->size();
  const auto request = parse_http_request(*message);
  if (!request) {
    ++stats_.bad_requests;
    return;
  }
  handle_request(from, *request);
  reassembler_.gc();
}

void HttpCollector::handle_request(NodeId from, const HttpRequest& request) {
  ++stats_.requests;
  // "#sensor,<key>,seq,<n>" header line: dedup whole flushes. A retried
  // flush that was in fact delivered (the 200 was lost or late) arrives
  // again byte-identical; record it once, but still acknowledge so the
  // sensor stops retrying.
  bool duplicate = false;
  for (const auto& line : split(request.body, '\n')) {
    if (trim(line).empty()) continue;
    if (line[0] == '#') {
      const auto fields = split(line, ',');
      if (fields.size() == 4 && fields[0] == "#sensor" && fields[2] == "seq") {
        try {
          const std::uint64_t seq = std::stoull(fields[3]);
          duplicate = !seen_flushes_[fields[1]].insert(seq).second;
        } catch (...) {
          ++stats_.malformed_records;
        }
      } else {
        ++stats_.malformed_records;
      }
      continue;
    }
    if (duplicate) continue;
    const auto fields = split(line, ',');
    bool ok = fields.size() == 5 && starts_with(fields[1], "avatar-");
    if (ok) {
      try {
        Record rec{};
        rec.time = std::stod(fields[0]);
        rec.avatar = static_cast<std::uint32_t>(std::stoul(fields[1].substr(7)));
        rec.pos = {std::stod(fields[2]), std::stod(fields[3]), std::stod(fields[4])};
        records_.push_back(rec);
        ++stats_.records;
      } catch (...) {
        ok = false;
      }
    }
    if (!ok) ++stats_.malformed_records;
  }
  if (duplicate) ++stats_.duplicate_flushes;

  HttpResponse response;
  response.status = 200;
  response.reason = "OK";
  if (const auto key = request.header("X-Request-Key")) {
    response.headers.push_back({"X-Request-Key", *key});
  }
  response.body = "ok";
  auto fragments = fragment_http_message(next_response_id_++, response.serialize());

  // A kCollectorSlow window models an overloaded web server: the flush is
  // recorded immediately (the bytes did arrive), but the ack sits in a
  // bounded backlog for the window's added delay. Long enough delays push
  // sensors past their timeout into retries — the load spiral the sensor
  // side's dedup and bounded queues must absorb.
  const Seconds delay = faults_.collector_delay_at(now_);
  if (delay > 0.0) {
    if (deferred_responses_.size() >= kMaxDeferredResponses) {
      ++stats_.responses_dropped;
      return;
    }
    ++stats_.responses_delayed;
    deferred_responses_.push_back({now_ + delay, from, std::move(fragments)});
    return;
  }
  for (auto& frag : fragments) {
    network_.send(address_, from, std::move(frag));
  }
}

Trace HttpCollector::build_trace(Seconds interval) const {
  // Bin records, dedupe avatars within a bin.
  std::map<std::int64_t, std::map<std::uint32_t, Vec3>> bins;
  for (const auto& rec : records_) {
    const auto bin = static_cast<std::int64_t>(std::floor(rec.time / interval));
    bins[bin].try_emplace(rec.avatar, rec.pos);
  }
  Trace trace(land_name_, interval);
  for (const auto& [bin, avatars] : bins) {
    Snapshot snap;
    snap.time = static_cast<double>(bin) * interval;
    for (const auto& [id, pos] : avatars) snap.fixes.push_back({AvatarId{id}, pos});
    trace.add(std::move(snap));
  }
  return trace;
}

}  // namespace slmob
