#include "dtn/dtn_simulator.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "analysis/spatial_index.hpp"
#include "util/rng.hpp"

namespace slmob {

const char* routing_scheme_name(RoutingScheme scheme) {
  switch (scheme) {
    case RoutingScheme::kDirectDelivery:
      return "direct";
    case RoutingScheme::kTwoHopRelay:
      return "two-hop";
    case RoutingScheme::kEpidemic:
      return "epidemic";
  }
  return "?";
}

namespace {

struct Message {
  std::uint32_t id;
  std::uint32_t src;
  std::uint32_t dst;
  Seconds created;
  Seconds expires;
};

}  // namespace

DtnResults simulate_dtn(const Trace& trace, const DtnConfig& config) {
  if (trace.empty()) throw std::invalid_argument("simulate_dtn: empty trace");
  if (config.creation_window <= 0.0 || config.creation_window > 1.0) {
    throw std::invalid_argument("simulate_dtn: creation_window must be in (0,1]");
  }
  DtnResults results;
  results.scheme = config.scheme;
  Rng rng(config.seed);

  const auto& snaps = trace.snapshots();
  const Seconds t0 = snaps.front().time;
  const Seconds t1 = snaps.back().time;
  const Seconds window_end = t0 + (t1 - t0) * config.creation_window;

  // Plan message creations: pick creation snapshots uniformly within the
  // window, then src/dst among users present in that snapshot.
  std::vector<std::size_t> creation_snapshots;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    if (snaps[i].time <= window_end && snaps[i].fixes.size() >= 2) {
      creation_snapshots.push_back(i);
    }
  }
  if (creation_snapshots.empty()) {
    throw std::invalid_argument("simulate_dtn: no usable creation snapshots");
  }

  std::map<std::size_t, std::vector<Message>> creations;  // snapshot -> messages
  std::vector<DtnMessageOutcome> outcomes(config.message_count);
  for (std::uint32_t m = 0; m < config.message_count; ++m) {
    const std::size_t snap_idx = creation_snapshots[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(creation_snapshots.size()) - 1))];
    const auto& fixes = snaps[snap_idx].fixes;
    const auto pick = [&] {
      return fixes[static_cast<std::size_t>(
                       rng.uniform_int(0, static_cast<std::int64_t>(fixes.size()) - 1))]
          .id.value;
    };
    const std::uint32_t src = pick();
    std::uint32_t dst = pick();
    for (int attempt = 0; attempt < 16 && dst == src; ++attempt) dst = pick();
    if (dst == src) continue;  // degenerate snapshot; message dropped
    Message msg{m, src, dst, snaps[snap_idx].time, snaps[snap_idx].time + config.ttl};
    creations[snap_idx].push_back(msg);
    outcomes[m] = {src, dst, msg.created, -1.0, 1};
    ++results.messages_created;
  }

  // buffers[node] = message ids carried. relays_allowed: for two-hop, only
  // the source spreads copies.
  std::map<std::uint32_t, std::set<std::uint32_t>> buffers;
  std::vector<Message> messages(config.message_count,
                                Message{0, 0, 0, 0.0, -1.0});  // by id; expires<0 = unused
  std::vector<char> delivered(config.message_count, 0);

  const auto transfer = [&](std::uint32_t from, std::uint32_t to, Seconds now) {
    auto from_it = buffers.find(from);
    if (from_it == buffers.end()) return;
    // Copy out ids first: we mutate buffers[to].
    const std::vector<std::uint32_t> carried(from_it->second.begin(),
                                             from_it->second.end());
    for (const std::uint32_t id : carried) {
      const Message& msg = messages[id];
      if (delivered[id] || msg.expires < 0.0 || now > msg.expires) continue;
      if (to == msg.dst) {
        delivered[id] = 1;
        outcomes[id].delivered = now;
        continue;
      }
      switch (config.scheme) {
        case RoutingScheme::kDirectDelivery:
          break;  // only delivery above
        case RoutingScheme::kTwoHopRelay:
          if (from == msg.src && buffers[to].insert(id).second) ++outcomes[id].copies;
          break;
        case RoutingScheme::kEpidemic:
          if (buffers[to].insert(id).second) ++outcomes[id].copies;
          break;
      }
    }
  };

  for (std::size_t s = 0; s < snaps.size(); ++s) {
    const Snapshot& snap = snaps[s];
    // Inject messages created at this snapshot.
    if (const auto it = creations.find(s); it != creations.end()) {
      for (const Message& msg : it->second) {
        messages[msg.id] = msg;
        buffers[msg.src].insert(msg.id);
      }
    }
    if (snap.fixes.size() < 2) continue;
    std::vector<Vec3> positions;
    positions.reserve(snap.fixes.size());
    for (const auto& fix : snap.fixes) positions.push_back(fix.pos);
    const SpatialGrid grid(positions, config.range);
    for (const auto& [i, j] : grid.pairs_within()) {
      const std::uint32_t a = snap.fixes[i].id.value;
      const std::uint32_t b = snap.fixes[j].id.value;
      transfer(a, b, snap.time);
      transfer(b, a, snap.time);
    }
  }

  double copies_total = 0.0;
  for (std::uint32_t m = 0; m < config.message_count; ++m) {
    if (messages[m].expires < 0.0) continue;  // never created
    if (delivered[m]) {
      ++results.messages_delivered;
      results.delays.add(outcomes[m].delay());
    }
    copies_total += static_cast<double>(outcomes[m].copies);
  }
  if (results.messages_created > 0) {
    results.delivery_ratio = static_cast<double>(results.messages_delivered) /
                             static_cast<double>(results.messages_created);
    results.mean_copies_per_message =
        copies_total / static_cast<double>(results.messages_created);
  }
  results.outcomes = std::move(outcomes);
  return results;
}

}  // namespace slmob
