// Trace-driven Delay-Tolerant-Network simulator.
//
// The paper's stated purpose for its traces is "trace-driven simulations of
// communication schemes in delay tolerant networks". This module replays a
// mobility trace and evaluates classic DTN forwarding schemes over the
// line-of-sight contacts it contains:
//  * DirectDelivery — the source holds the message until it meets the
//    destination;
//  * TwoHopRelay    — the source hands copies to relays; relays deliver
//    only to the destination (Grossglauser-Tse);
//  * Epidemic       — every encounter exchanges all missing messages.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/ecdf.hpp"
#include "trace/trace.hpp"

namespace slmob {

enum class RoutingScheme { kDirectDelivery, kTwoHopRelay, kEpidemic };

const char* routing_scheme_name(RoutingScheme scheme);

struct DtnConfig {
  RoutingScheme scheme{RoutingScheme::kEpidemic};
  double range{10.0};           // communication range (m)
  std::size_t message_count{200};
  Seconds ttl{kSecondsPerDay};  // messages expire after this
  std::uint64_t seed{1};
  // Messages are created uniformly over the first `creation_window` fraction
  // of the trace so late messages still have time to be delivered.
  double creation_window{0.5};
};

struct DtnMessageOutcome {
  std::uint32_t src{0};
  std::uint32_t dst{0};
  Seconds created{0.0};
  Seconds delivered{-1.0};  // < 0: not delivered
  std::size_t copies{1};    // total copies that existed (overhead)

  [[nodiscard]] bool is_delivered() const { return delivered >= 0.0; }
  [[nodiscard]] Seconds delay() const { return delivered - created; }
};

struct DtnResults {
  RoutingScheme scheme{};
  double delivery_ratio{0.0};
  Ecdf delays;  // delivered messages only
  double mean_copies_per_message{0.0};
  std::size_t messages_created{0};
  std::size_t messages_delivered{0};
  std::vector<DtnMessageOutcome> outcomes;
};

// Replays `trace` and routes synthetic messages between users of the trace.
// Sources and destinations are sampled from users present when the message
// is created; a destination that never reappears makes the message
// undeliverable (counted in the ratio), which is exactly the churn effect a
// virtual world trace exhibits.
DtnResults simulate_dtn(const Trace& trace, const DtnConfig& config);

}  // namespace slmob
