#include "analysis/contacts.hpp"

#include <algorithm>
#include <unordered_map>

#include "analysis/proximity_cache.hpp"

namespace slmob {
namespace {

using PairKey = std::uint64_t;

PairKey pair_key(AvatarId a, AvatarId b) {
  const auto lo = std::min(a.value, b.value);
  const auto hi = std::max(a.value, b.value);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

struct OpenContact {
  Seconds start;
  Seconds last_seen;
};

}  // namespace

ContactAnalysis analyze_contacts(const Trace& trace, const ProximityCache& cache,
                                 double range, const ContactOptions& options) {
  (void)options;
  ContactAnalysis out;
  out.range = range;
  const Seconds tau = trace.sampling_interval();

  std::unordered_map<PairKey, OpenContact> open;
  // Per-pair end time of the previous contact, for ICT.
  std::unordered_map<PairKey, Seconds> last_contact_end;
  // Per-user first appearance and first-contact time, for FT.
  std::unordered_map<AvatarId, Seconds> first_seen;
  std::unordered_map<AvatarId, Seconds> first_contact;

  const auto close_contact = [&](PairKey key, const OpenContact& contact) {
    const Seconds end = contact.last_seen + tau;
    const auto a = AvatarId{static_cast<std::uint32_t>(key >> 32)};
    const auto b = AvatarId{static_cast<std::uint32_t>(key & 0xffffffffu)};
    out.intervals.push_back({a, b, contact.start, end});
    out.contact_times.add(end - contact.start);
    if (const auto prev = last_contact_end.find(key); prev != last_contact_end.end()) {
      out.inter_contact_times.add(contact.start - prev->second);
    }
    last_contact_end[key] = end;
  };

  const auto& snaps = trace.snapshots();
  for (std::size_t s = 0; s < snaps.size(); ++s) {
    const auto& snap = snaps[s];
    for (const auto& fix : snap.fixes) {
      first_seen.try_emplace(fix.id, snap.time);
    }

    // In-range pairs of this snapshot, from the shared cache.
    const auto& pairs = cache.pairs(s, range);
    std::vector<PairKey> current;
    current.reserve(pairs.size());
    for (const auto& [i, j] : pairs) {
      const AvatarId a = snap.fixes[i].id;
      const AvatarId b = snap.fixes[j].id;
      const PairKey key = pair_key(a, b);
      current.push_back(key);
      auto [it, inserted] = open.try_emplace(key, OpenContact{snap.time, snap.time});
      if (!inserted) it->second.last_seen = snap.time;
      first_contact.try_emplace(a, snap.time);
      first_contact.try_emplace(b, snap.time);
    }
    std::sort(current.begin(), current.end());

    // Close contacts not present in this snapshot.
    for (auto it = open.begin(); it != open.end();) {
      if (it->second.last_seen < snap.time &&
          !std::binary_search(current.begin(), current.end(), it->first)) {
        close_contact(it->first, it->second);
        it = open.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Close whatever is still open at the end of the trace.
  for (const auto& [key, contact] : open) close_contact(key, contact);

  std::sort(out.intervals.begin(), out.intervals.end(),
            [](const ContactInterval& x, const ContactInterval& y) {
              return std::tie(x.start, x.a.value, x.b.value) <
                     std::tie(y.start, y.a.value, y.b.value);
            });

  out.users_seen = first_seen.size();
  out.users_with_contact = first_contact.size();
  std::vector<Seconds> first_contact_samples;
  first_contact_samples.reserve(first_contact.size());
  for (const auto& [id, t_contact] : first_contact) {
    const Seconds t_seen = first_seen.at(id);
    // FT = 0 would vanish on the paper's log axis; credit half a sampling
    // interval to a user already in contact at its first snapshot.
    const Seconds ft = t_contact - t_seen;
    first_contact_samples.push_back(ft > 0.0 ? ft : tau / 2.0);
  }
  // unordered_map iteration order is implementation-defined; sort so the FT
  // sample sequence does not depend on hashing details.
  std::sort(first_contact_samples.begin(), first_contact_samples.end());
  for (const Seconds ft : first_contact_samples) out.first_contact_times.add(ft);
  return out;
}

ContactAnalysis analyze_contacts(const Trace& trace, double range,
                                 const ContactOptions& options) {
  const ProximityCache cache(trace, {range});
  return analyze_contacts(trace, cache, range, options);
}

}  // namespace slmob
