#include "analysis/contacts.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "analysis/proximity_cache.hpp"

namespace slmob {
namespace {

using PairKey = std::uint64_t;

PairKey pair_key(AvatarId a, AvatarId b) {
  const auto lo = std::min(a.value, b.value);
  const auto hi = std::max(a.value, b.value);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

struct OpenContact {
  Seconds start;
  Seconds last_seen;
};

}  // namespace

ContactAnalysis analyze_contacts(const Trace& trace, const ProximityCache& cache,
                                 double range, const ContactOptions& options) {
  (void)options;
  ContactAnalysis out;
  out.range = range;
  const Seconds tau = trace.sampling_interval();
  // Censoring only engages when the trace records coverage gaps; a gap-free
  // trace takes exactly the historical path (bit-identical results).
  const bool gap_aware = !trace.gaps().empty();

  std::unordered_map<PairKey, OpenContact> open;
  // Per-pair end time of the previous contact, for ICT.
  std::unordered_map<PairKey, Seconds> last_contact_end;
  // Per-user first appearance and first-contact time, for FT.
  std::unordered_map<AvatarId, Seconds> first_seen;
  std::unordered_map<AvatarId, Seconds> first_contact;
  // Distinct users over covered snapshots; only maintained when gap-aware
  // (first_seen entries get censored away at gaps, so its size undercounts).
  std::unordered_set<AvatarId> seen_ever;

  const auto close_contact = [&](PairKey key, const OpenContact& contact,
                                 Seconds end_cap) {
    const Seconds end = std::min(contact.last_seen + tau, end_cap);
    const auto a = AvatarId{static_cast<std::uint32_t>(key >> 32)};
    const auto b = AvatarId{static_cast<std::uint32_t>(key & 0xffffffffu)};
    out.intervals.push_back({a, b, contact.start, end});
    out.contact_times.add(end - contact.start);
    if (const auto prev = last_contact_end.find(key); prev != last_contact_end.end()) {
      out.inter_contact_times.add(contact.start - prev->second);
    }
    last_contact_end[key] = end;
  };
  constexpr Seconds kNoCap = std::numeric_limits<double>::infinity();

  // Censor all running observations at a coverage gap starting at `cap`:
  // open contacts are truncated there (never bridged), the ICT chain is cut
  // (an inter-contact time spanning unobserved time would be fabricated),
  // and users still waiting for a first contact restart their FT clock if
  // they reappear after the gap.
  const auto censor_at_gap = [&](Seconds cap) {
    std::vector<PairKey> keys;
    keys.reserve(open.size());
    // slmob-lint: allow(ordered-iteration) -- collects keys only; sorted on the next line before any consumer
    for (const auto& [key, contact] : open) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const PairKey key : keys) close_contact(key, open.at(key), cap);
    open.clear();
    last_contact_end.clear();
    for (auto it = first_seen.begin(); it != first_seen.end();) {
      if (first_contact.find(it->first) == first_contact.end()) {
        it = first_seen.erase(it);
      } else {
        ++it;
      }
    }
  };

  // Start of the first gap after covered instant `t` (callers guarantee one
  // exists); the truncation point for observations running at `t`.
  const auto next_gap_start = [&](Seconds t) {
    for (const auto& gap : trace.gaps()) {
      if (gap.end > t) return gap.start;
    }
    return t;
  };

  const auto& snaps = trace.snapshots();
  bool have_prev = false;
  Seconds prev_time = 0.0;
  for (std::size_t s = 0; s < snaps.size(); ++s) {
    const auto& snap = snaps[s];
    if (gap_aware) {
      if (!trace.covered_at(snap.time)) continue;
      if (have_prev && trace.spans_gap(prev_time, snap.time)) {
        censor_at_gap(next_gap_start(prev_time));
      }
      have_prev = true;
      prev_time = snap.time;
      for (const auto& fix : snap.fixes) seen_ever.insert(fix.id);
    }
    for (const auto& fix : snap.fixes) {
      first_seen.try_emplace(fix.id, snap.time);
    }

    // In-range pairs of this snapshot, from the shared cache.
    const auto& pairs = cache.pairs(s, range);
    std::vector<PairKey> current;
    current.reserve(pairs.size());
    for (const auto& [i, j] : pairs) {
      const AvatarId a = snap.fixes[i].id;
      const AvatarId b = snap.fixes[j].id;
      const PairKey key = pair_key(a, b);
      current.push_back(key);
      auto [it, inserted] = open.try_emplace(key, OpenContact{snap.time, snap.time});
      if (!inserted) it->second.last_seen = snap.time;
      first_contact.try_emplace(a, snap.time);
      first_contact.try_emplace(b, snap.time);
    }
    std::sort(current.begin(), current.end());

    // Close contacts not present in this snapshot.
    for (auto it = open.begin(); it != open.end();) {
      if (it->second.last_seen < snap.time &&
          !std::binary_search(current.begin(), current.end(), it->first)) {
        close_contact(it->first, it->second, kNoCap);
        it = open.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Close whatever is still open at the end of the trace. If the trace ends
  // inside (or right before) a recorded gap, those contacts are truncated at
  // the gap edge like any other.
  Seconds final_cap = kNoCap;
  if (gap_aware && have_prev && !trace.covered_at(prev_time + tau)) {
    final_cap = next_gap_start(prev_time);
  }
  // slmob-lint: allow(ordered-iteration) -- intervals are re-sorted just below; Ecdf samples are order-invisible (every reader sorts)
  for (const auto& [key, contact] : open) close_contact(key, contact, final_cap);

  std::sort(out.intervals.begin(), out.intervals.end(),
            [](const ContactInterval& x, const ContactInterval& y) {
              return std::tie(x.start, x.a.value, x.b.value) <
                     std::tie(y.start, y.a.value, y.b.value);
            });

  out.users_seen = gap_aware ? seen_ever.size() : first_seen.size();
  out.users_with_contact = first_contact.size();
  std::vector<Seconds> first_contact_samples;
  first_contact_samples.reserve(first_contact.size());
  // slmob-lint: allow(ordered-iteration) -- FT samples are sorted below before entering the Ecdf
  for (const auto& [id, t_contact] : first_contact) {
    const Seconds t_seen = first_seen.at(id);
    // FT = 0 would vanish on the paper's log axis; credit half a sampling
    // interval to a user already in contact at its first snapshot.
    const Seconds ft = t_contact - t_seen;
    first_contact_samples.push_back(ft > 0.0 ? ft : tau / 2.0);
  }
  // unordered_map iteration order is implementation-defined; sort so the FT
  // sample sequence does not depend on hashing details.
  std::sort(first_contact_samples.begin(), first_contact_samples.end());
  for (const Seconds ft : first_contact_samples) out.first_contact_times.add(ft);
  return out;
}

ContactAnalysis analyze_contacts(const Trace& trace, double range,
                                 const ContactOptions& options) {
  const ProximityCache cache(trace, {range});
  return analyze_contacts(trace, cache, range, options);
}

// ---------------------------------------------------------------------------
// ContactStream: the batch loop above, unrolled one snapshot at a time. The
// censoring logic runs unconditionally against the tracker's gaps-so-far; on
// a gap-free stream every censor predicate is vacuously false and the code
// path is the historical one.

namespace {
constexpr Seconds kStreamNoCap = std::numeric_limits<double>::infinity();
}  // namespace

ContactStream::ContactStream(double range, Seconds tau, const GapTracker& gaps)
    : tau_(tau), gaps_(&gaps) {
  out_.range = range;
}

void ContactStream::close_contact(std::uint64_t key, const OpenContact& contact,
                                  Seconds end_cap) {
  const Seconds end = std::min(contact.last_seen + tau_, end_cap);
  const auto a = AvatarId{static_cast<std::uint32_t>(key >> 32)};
  const auto b = AvatarId{static_cast<std::uint32_t>(key & 0xffffffffu)};
  out_.intervals.push_back({a, b, contact.start, end});
  out_.contact_times.add(end - contact.start);
  if (epochs_active_) interval_epochs_.push_back(censor_epoch_);
  if (sink_) sink_(out_.intervals.back());
}

void ContactStream::censor_at_gap(Seconds cap) {
  if (!epochs_active_) {
    epochs_active_ = true;
    interval_epochs_.assign(out_.intervals.size(), 0);
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(open_.size());
  for (const auto& [key, contact] : open_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) close_contact(key, open_.at(key), cap);
  open_.clear();
  ++censor_epoch_;
  for (auto it = first_seen_.begin(); it != first_seen_.end();) {
    if (first_contact_.find(it->first) == first_contact_.end()) {
      it = first_seen_.erase(it);
    } else {
      ++it;
    }
  }
}

// users_seen falls back to first_seen_ on a gap-free stream (exactly like the
// batch loop), so the covered-users set only needs maintaining once a gap
// exists. Until the first gap no censoring has happened, so first_seen_ still
// holds every user ever seen and can seed the set retroactively.
void ContactStream::seed_seen_ever() {
  for (const auto& [id, t] : first_seen_) seen_ever_.insert(id);
  seen_seeded_ = true;
}

void ContactStream::on_snapshot(const Snapshot& snap, const PairList& pairs) {
  if (!seen_seeded_ && gaps_->any()) seed_seen_ever();
  if (have_prev_ && gaps_->spans_gap(prev_time_, snap.time)) {
    censor_at_gap(gaps_->next_gap_start(prev_time_));
  }
  have_prev_ = true;
  prev_time_ = snap.time;
  if (seen_seeded_) {
    for (const auto& fix : snap.fixes) seen_ever_.insert(fix.id);
  }
  for (const auto& fix : snap.fixes) {
    first_seen_.try_emplace(fix.id, snap.time);
  }

  current_.clear();
  current_.reserve(pairs.size());
  for (const auto& [i, j] : pairs) {
    const AvatarId a = snap.fixes[i].id;
    const AvatarId b = snap.fixes[j].id;
    const std::uint64_t key = pair_key(a, b);
    current_.push_back(key);
    auto [it, inserted] = open_.try_emplace(key, OpenContact{snap.time, snap.time});
    if (!inserted) it->second.last_seen = snap.time;
    first_contact_.try_emplace(a, snap.time);
    first_contact_.try_emplace(b, snap.time);
  }
  std::sort(current_.begin(), current_.end());

  for (auto it = open_.begin(); it != open_.end();) {
    if (it->second.last_seen < snap.time &&
        !std::binary_search(current_.begin(), current_.end(), it->first)) {
      close_contact(it->first, it->second, kStreamNoCap);
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
}

// Emits one ICT sample per consecutive pair of same-pair intervals whose
// censoring epochs match (see the header note for why this equals the
// batch per-pair-map rule). Per pair, closure order is chronological, so
// ordering intervals by (pair, start) recovers the chains; the samples land
// in the distribution in a different order than the batch loop emits them,
// which is invisible — every consumer of an Ecdf reads it sorted.
void ContactStream::derive_inter_contact_times() {
  auto& intervals = out_.intervals;
  if (intervals.size() < 2) return;
  const auto by_pair_then_start = [](const ContactInterval& x, const ContactInterval& y) {
    return std::tie(x.a.value, x.b.value, x.start) <
           std::tie(y.a.value, y.b.value, y.start);
  };
  if (!epochs_active_) {
    // No censor ever fired: every consecutive pair of contacts chains, and
    // the intervals can be sorted in place (finish() re-sorts them into
    // output order right after). This is the whole-trace common case, kept
    // free of scratch allocations on purpose: the streaming engine's peak
    // memory on a gap-free day-long trace is measured by the benchmark.
    std::sort(intervals.begin(), intervals.end(), by_pair_then_start);
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      const ContactInterval& prev = intervals[i - 1];
      const ContactInterval& cur = intervals[i];
      if (prev.a == cur.a && prev.b == cur.b) {
        out_.inter_contact_times.add(cur.start - prev.end);
      }
    }
    return;
  }
  // Censored stream: epochs are recorded per closure index, so sort an
  // index view instead of the intervals themselves.
  std::vector<std::uint32_t> order(intervals.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
    return by_pair_then_start(intervals[x], intervals[y]);
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    const ContactInterval& prev = intervals[order[i - 1]];
    const ContactInterval& cur = intervals[order[i]];
    if (prev.a == cur.a && prev.b == cur.b &&
        interval_epochs_[order[i - 1]] == interval_epochs_[order[i]]) {
      out_.inter_contact_times.add(cur.start - prev.end);
    }
  }
}

ContactAnalysis ContactStream::finish() {
  // A trailing gap (journal salvage) may arrive after the last snapshot.
  if (!seen_seeded_ && gaps_->any()) seed_seen_ever();
  Seconds final_cap = kStreamNoCap;
  if (gaps_->any() && have_prev_ && !gaps_->covered_at(prev_time_ + tau_)) {
    final_cap = gaps_->next_gap_start(prev_time_);
  }
  for (const auto& [key, contact] : open_) close_contact(key, contact, final_cap);
  open_.clear();

  derive_inter_contact_times();
  std::sort(out_.intervals.begin(), out_.intervals.end(),
            [](const ContactInterval& x, const ContactInterval& y) {
              return std::tie(x.start, x.a.value, x.b.value) <
                     std::tie(y.start, y.a.value, y.b.value);
            });

  out_.users_seen = gaps_->any() ? seen_ever_.size() : first_seen_.size();
  out_.users_with_contact = first_contact_.size();
  std::vector<Seconds> first_contact_samples;
  first_contact_samples.reserve(first_contact_.size());
  for (const auto& [id, t_contact] : first_contact_) {
    const Seconds t_seen = first_seen_.at(id);
    const Seconds ft = t_contact - t_seen;
    first_contact_samples.push_back(ft > 0.0 ? ft : tau_ / 2.0);
  }
  std::sort(first_contact_samples.begin(), first_contact_samples.end());
  for (const Seconds ft : first_contact_samples) out_.first_contact_times.add(ft);
  return std::move(out_);
}

}  // namespace slmob
