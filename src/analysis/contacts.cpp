#include "analysis/contacts.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "analysis/proximity_cache.hpp"

namespace slmob {
namespace {

using PairKey = std::uint64_t;

PairKey pair_key(AvatarId a, AvatarId b) {
  const auto lo = std::min(a.value, b.value);
  const auto hi = std::max(a.value, b.value);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

struct OpenContact {
  Seconds start;
  Seconds last_seen;
};

}  // namespace

ContactAnalysis analyze_contacts(const Trace& trace, const ProximityCache& cache,
                                 double range, const ContactOptions& options) {
  (void)options;
  ContactAnalysis out;
  out.range = range;
  const Seconds tau = trace.sampling_interval();
  // Censoring only engages when the trace records coverage gaps; a gap-free
  // trace takes exactly the historical path (bit-identical results).
  const bool gap_aware = !trace.gaps().empty();

  std::unordered_map<PairKey, OpenContact> open;
  // Per-pair end time of the previous contact, for ICT.
  std::unordered_map<PairKey, Seconds> last_contact_end;
  // Per-user first appearance and first-contact time, for FT.
  std::unordered_map<AvatarId, Seconds> first_seen;
  std::unordered_map<AvatarId, Seconds> first_contact;
  // Distinct users over covered snapshots; only maintained when gap-aware
  // (first_seen entries get censored away at gaps, so its size undercounts).
  std::unordered_set<AvatarId> seen_ever;

  const auto close_contact = [&](PairKey key, const OpenContact& contact,
                                 Seconds end_cap) {
    const Seconds end = std::min(contact.last_seen + tau, end_cap);
    const auto a = AvatarId{static_cast<std::uint32_t>(key >> 32)};
    const auto b = AvatarId{static_cast<std::uint32_t>(key & 0xffffffffu)};
    out.intervals.push_back({a, b, contact.start, end});
    out.contact_times.add(end - contact.start);
    if (const auto prev = last_contact_end.find(key); prev != last_contact_end.end()) {
      out.inter_contact_times.add(contact.start - prev->second);
    }
    last_contact_end[key] = end;
  };
  constexpr Seconds kNoCap = std::numeric_limits<double>::infinity();

  // Censor all running observations at a coverage gap starting at `cap`:
  // open contacts are truncated there (never bridged), the ICT chain is cut
  // (an inter-contact time spanning unobserved time would be fabricated),
  // and users still waiting for a first contact restart their FT clock if
  // they reappear after the gap.
  const auto censor_at_gap = [&](Seconds cap) {
    std::vector<PairKey> keys;
    keys.reserve(open.size());
    for (const auto& [key, contact] : open) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const PairKey key : keys) close_contact(key, open.at(key), cap);
    open.clear();
    last_contact_end.clear();
    for (auto it = first_seen.begin(); it != first_seen.end();) {
      if (first_contact.find(it->first) == first_contact.end()) {
        it = first_seen.erase(it);
      } else {
        ++it;
      }
    }
  };

  // Start of the first gap after covered instant `t` (callers guarantee one
  // exists); the truncation point for observations running at `t`.
  const auto next_gap_start = [&](Seconds t) {
    for (const auto& gap : trace.gaps()) {
      if (gap.end > t) return gap.start;
    }
    return t;
  };

  const auto& snaps = trace.snapshots();
  bool have_prev = false;
  Seconds prev_time = 0.0;
  for (std::size_t s = 0; s < snaps.size(); ++s) {
    const auto& snap = snaps[s];
    if (gap_aware) {
      if (!trace.covered_at(snap.time)) continue;
      if (have_prev && trace.spans_gap(prev_time, snap.time)) {
        censor_at_gap(next_gap_start(prev_time));
      }
      have_prev = true;
      prev_time = snap.time;
      for (const auto& fix : snap.fixes) seen_ever.insert(fix.id);
    }
    for (const auto& fix : snap.fixes) {
      first_seen.try_emplace(fix.id, snap.time);
    }

    // In-range pairs of this snapshot, from the shared cache.
    const auto& pairs = cache.pairs(s, range);
    std::vector<PairKey> current;
    current.reserve(pairs.size());
    for (const auto& [i, j] : pairs) {
      const AvatarId a = snap.fixes[i].id;
      const AvatarId b = snap.fixes[j].id;
      const PairKey key = pair_key(a, b);
      current.push_back(key);
      auto [it, inserted] = open.try_emplace(key, OpenContact{snap.time, snap.time});
      if (!inserted) it->second.last_seen = snap.time;
      first_contact.try_emplace(a, snap.time);
      first_contact.try_emplace(b, snap.time);
    }
    std::sort(current.begin(), current.end());

    // Close contacts not present in this snapshot.
    for (auto it = open.begin(); it != open.end();) {
      if (it->second.last_seen < snap.time &&
          !std::binary_search(current.begin(), current.end(), it->first)) {
        close_contact(it->first, it->second, kNoCap);
        it = open.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Close whatever is still open at the end of the trace. If the trace ends
  // inside (or right before) a recorded gap, those contacts are truncated at
  // the gap edge like any other.
  Seconds final_cap = kNoCap;
  if (gap_aware && have_prev && !trace.covered_at(prev_time + tau)) {
    final_cap = next_gap_start(prev_time);
  }
  for (const auto& [key, contact] : open) close_contact(key, contact, final_cap);

  std::sort(out.intervals.begin(), out.intervals.end(),
            [](const ContactInterval& x, const ContactInterval& y) {
              return std::tie(x.start, x.a.value, x.b.value) <
                     std::tie(y.start, y.a.value, y.b.value);
            });

  out.users_seen = gap_aware ? seen_ever.size() : first_seen.size();
  out.users_with_contact = first_contact.size();
  std::vector<Seconds> first_contact_samples;
  first_contact_samples.reserve(first_contact.size());
  for (const auto& [id, t_contact] : first_contact) {
    const Seconds t_seen = first_seen.at(id);
    // FT = 0 would vanish on the paper's log axis; credit half a sampling
    // interval to a user already in contact at its first snapshot.
    const Seconds ft = t_contact - t_seen;
    first_contact_samples.push_back(ft > 0.0 ? ft : tau / 2.0);
  }
  // unordered_map iteration order is implementation-defined; sort so the FT
  // sample sequence does not depend on hashing details.
  std::sort(first_contact_samples.begin(), first_contact_samples.end());
  for (const Seconds ft : first_contact_samples) out.first_contact_times.add(ft);
  return out;
}

ContactAnalysis analyze_contacts(const Trace& trace, double range,
                                 const ContactOptions& options) {
  const ProximityCache cache(trace, {range});
  return analyze_contacts(trace, cache, range, options);
}

}  // namespace slmob
