// Incrementally maintained proximity pairs for streaming analysis.
//
// ProximityCache rebuilds a SpatialGrid from scratch for every snapshot; at
// tau = 10 s most avatars have not moved between samples, so nearly all of
// that work recomputes pairs that cannot have changed. IncrementalProximity
// keeps a persistent structure-of-arrays state across snapshots — one slot
// per live avatar (id, position, grid cell) plus a cell -> slots map and a
// per-slot adjacency list of (partner, twin index, planar distance) — and on
// each
// advance() only touches avatars that entered, left or moved:
//
//   departures  drop the slot, its cell entry and its adjacency edges;
//   moves       drop the slot's edges and re-home its cell entry;
//   arrivals    allocate a slot (from the free list) and a cell entry;
//   finally every entered-or-moved ("dirty") slot rescans its 3x3 cell
//   neighbourhood, re-adding edges with freshly computed distances.
//
// Invariant after every advance: the edge set is exactly { (a, b) live :
// dist2d(a, b) <= r_max }, each edge stored once per endpoint with the same
// distance value SpatialGrid would compute. Stored distances stay bit-exact
// across snapshots because distance2d_to of two unmoved points is a pure
// function of their coordinates, so emitted pair lists are bit-identical to
// ProximityCache's per-snapshot rebuild (as sets; emission order differs,
// which no downstream consumer observes).
//
// When the fraction of changed avatars exceeds `churn_threshold` the delta
// path would touch most slots anyway, so the snapshot is answered by a full
// rebuild (identical to a fresh SpatialGrid) that also reseeds the
// persistent state. A snapshot containing duplicate avatar ids (two fixes,
// one id) cannot be represented by the id-keyed state; it is answered by a
// transient grid and the next snapshot rebuilds.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/pair_kernel.hpp"
#include "trace/trace.hpp"
#include "util/vec3.hpp"

namespace slmob {

class IncrementalProximity {
 public:
  using PairList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

  // `ranges` as in ProximityCache: deduplicated ascending, each > 0 (throws
  // std::invalid_argument otherwise). Pairs are maintained at the largest
  // radius; smaller radii filter by the recorded distance.
  explicit IncrementalProximity(std::vector<double> ranges,
                                double churn_threshold = 0.35);

  // Advances to the next snapshot (must be fed in time order). Afterwards
  // positions() and pairs() describe exactly this snapshot.
  void advance(const Snapshot& snapshot);

  // Requested radii, ascending and deduplicated.
  [[nodiscard]] const std::vector<double>& ranges() const { return ranges_; }
  // Index into pairs() for `range`; throws std::invalid_argument when the
  // range was not requested at construction.
  [[nodiscard]] std::size_t range_index(double range) const;

  // Positions of the current snapshot's fixes, in fix order.
  [[nodiscard]] const std::vector<Vec3>& positions() const { return positions_; }
  // Pairs (i < j, fix indices) of the current snapshot within ranges()[ri].
  [[nodiscard]] const PairList& pairs(std::size_t ri) const { return lists_[ri]; }

  [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] std::size_t delta_updates() const { return delta_updates_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    AvatarId id{};
    Vec3 pos{};
    std::int32_t cx{0};
    std::int32_t cy{0};
  };
  // Half-edge: each pair is stored once per endpoint, and `twin` is the
  // index of the mirror entry inside adj_[peer]. Removing a slot's edges is
  // then O(1) per edge (swap-remove the twin, re-point the swapped-in
  // edge's own twin) instead of a linear scan of every peer's list — the
  // scan made delta updates O(degree^2) per mover, which at WiFi range
  // (degree ~50) cost more than a full grid rebuild.
  struct Edge {
    std::uint32_t peer{0};
    std::uint32_t twin{0};
    double distance{0.0};
  };

  [[nodiscard]] static std::uint64_t pack(std::int32_t cx, std::int32_t cy);
  [[nodiscard]] std::int32_t cell_of(double v) const;

  void full_rebuild(const Snapshot& snapshot);
  void delta_update(const Snapshot& snapshot);
  void transient_snapshot();
  void reset_state();
  void emit_lists(const Snapshot& snapshot);
  void add_edge(std::uint32_t a, std::uint32_t b, double distance);
  void remove_adjacency(std::uint32_t slot);
  void remove_from_cell(std::uint32_t slot);
  void mark_dirty(std::uint32_t slot);
  std::uint32_t alloc_slot();

  std::vector<double> ranges_;
  double churn_threshold_;
  double cell_{0.0};  // grid cell size = largest range

  // Persistent SoA state (valid_ == true between snapshots on the delta path).
  bool valid_{false};
  std::vector<Slot> slots_;
  std::vector<std::vector<Edge>> adj_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<std::uint32_t, std::uint32_t> slot_of_;  // id -> slot
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
  std::vector<std::uint32_t> active_;  // slots of the previous snapshot

  // Per-advance scratch.
  std::uint64_t epoch_{0};
  std::vector<std::uint64_t> seen_epoch_;
  std::vector<std::uint64_t> dirty_epoch_;
  std::vector<std::uint32_t> dirty_rank_;
  std::vector<std::uint32_t> dirty_;
  std::vector<std::uint32_t> fix_slot_;     // fix index -> slot
  std::vector<std::uint32_t> fix_of_slot_;  // slot -> fix index

  // Batched kernel answering full rebuilds and duplicate-id transient
  // snapshots; persistent so its scratch survives across snapshots.
  PairKernel kernel_;

  // Current snapshot's answer.
  std::vector<Vec3> positions_;
  std::vector<PairList> lists_;

  std::size_t rebuilds_{0};
  std::size_t delta_updates_{0};
};

}  // namespace slmob
