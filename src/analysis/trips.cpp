#include "analysis/trips.hpp"

#include <algorithm>

namespace slmob {

TripAnalysis analyze_trips(const Trace& trace, const SessionExtractionOptions& options) {
  TripAnalysis out;
  const auto sessions = extract_sessions(trace, options);
  out.sessions = sessions.size();
  for (const auto& session : sessions) {
    const TripMetrics m = trip_metrics(session, options.movement_epsilon);
    out.travel_lengths.add(m.travel_length);
    out.effective_travel_times.add(m.effective_travel_time);
    out.travel_times.add(m.travel_time);
  }
  return out;
}

void TripStream::on_session(const Session& session) {
  entries_.push_back(
      {session.avatar, session.login, trip_metrics(session, movement_epsilon_)});
}

TripAnalysis TripStream::finish() {
  // (avatar, login) pairs are unique, so this order is total and matches
  // extract_sessions' sort exactly.
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    if (a.avatar != b.avatar) return a.avatar < b.avatar;
    return a.login < b.login;
  });
  TripAnalysis out;
  out.sessions = entries_.size();
  for (const Entry& e : entries_) {
    out.travel_lengths.add(e.metrics.travel_length);
    out.effective_travel_times.add(e.metrics.effective_travel_time);
    out.travel_times.add(e.metrics.travel_time);
  }
  return out;
}

}  // namespace slmob
