#include "analysis/trips.hpp"

namespace slmob {

TripAnalysis analyze_trips(const Trace& trace, const SessionExtractionOptions& options) {
  TripAnalysis out;
  const auto sessions = extract_sessions(trace, options);
  out.sessions = sessions.size();
  for (const auto& session : sessions) {
    const TripMetrics m = trip_metrics(session, options.movement_epsilon);
    out.travel_lengths.add(m.travel_length);
    out.effective_travel_times.add(m.effective_travel_time);
    out.travel_times.add(m.travel_time);
  }
  return out;
}

}  // namespace slmob
