// Uniform-grid spatial index for range queries over one snapshot.
//
// Contact extraction and graph construction both need "all pairs within r";
// the grid reduces that from O(n^2) distance checks to neighbours of the
// 3x3 cell block around each point. Cell size equals the query radius.
//
// Since PR 9 the storage is a cell-sorted SoA layout (PairKernel) instead of
// an unordered_map of per-cell index vectors: construction counting-sorts the
// points once, pair queries stream contiguous lanes with auto-vectorized
// dx*dx + dy*dy comparisons, and point queries scan at most three contiguous
// lane ranges. Results are bit-identical to the historical hash-grid (same
// pairs, same distances — see pair_kernel.hpp for the threshold argument);
// only the emission order changed, which no caller depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/pair_kernel.hpp"
#include "util/vec3.hpp"

namespace slmob {

// An index pair (i < j) with its planar distance, as produced by
// SpatialGrid::pairs_within_distance. Keeping the distance lets one grid
// built at the largest radius answer all smaller radii by filtering.
struct IndexPairDistance {
  std::uint32_t i{0};
  std::uint32_t j{0};
  double distance{0.0};
};

class SpatialGrid {
 public:
  // `radius` is the query radius the grid is built for; `positions` indexes
  // are preserved in query results. Construction cell-sorts the points; pair
  // enumeration runs lazily on the first pairs_* call (near_point-only users
  // such as World::within never pay for it).
  SpatialGrid(const std::vector<Vec3>& positions, double radius);

  // All index pairs (i < j) with planar distance <= radius.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs_within() const;

  // Same pairs, each with its planar distance.
  [[nodiscard]] std::vector<IndexPairDistance> pairs_within_distance() const;

  // Indices within radius of positions[i], excluding i itself.
  [[nodiscard]] std::vector<std::uint32_t> neighbors_of(std::uint32_t i) const;

  // Indices within radius of an arbitrary point p (which need not be one of
  // the indexed positions). Used by the simulation side — chat audibility
  // and sensor sweeps — to replace full population scans.
  [[nodiscard]] std::vector<std::uint32_t> near_point(const Vec3& p) const;
  // Same query without allocating: appends the matching indices to `out`
  // (which the caller clears and reuses across queries).
  void near_point(const Vec3& p, std::vector<std::uint32_t>& out) const;

 private:
  // Runs the deferred pair enumeration once. Not safe to race from multiple
  // threads on a shared grid; every current caller builds and queries its
  // grid on one worker (near_point alone never enumerates and stays safe).
  void ensure_enumerated() const;

  const std::vector<Vec3>& positions_;
  double radius_;
  mutable PairKernel kernel_;
  mutable bool enumerated_{false};
};

}  // namespace slmob
