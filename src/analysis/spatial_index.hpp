// Uniform-grid spatial index for range queries over one snapshot.
//
// Contact extraction and graph construction both need "all pairs within r";
// the grid reduces that from O(n^2) distance checks to neighbours of the
// 3x3 cell block around each point. Cell size equals the query radius.
// Per-point cell coordinates are derived once at construction and reused by
// every query.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/vec3.hpp"

namespace slmob {

// An index pair (i < j) with its planar distance, as produced by
// SpatialGrid::pairs_within_distance. Keeping the distance lets one grid
// built at the largest radius answer all smaller radii by filtering.
struct IndexPairDistance {
  std::uint32_t i{0};
  std::uint32_t j{0};
  double distance{0.0};
};

class SpatialGrid {
 public:
  // `radius` is the query radius the grid is built for; `positions` indexes
  // are preserved in query results.
  SpatialGrid(const std::vector<Vec3>& positions, double radius);

  // All index pairs (i < j) with planar distance <= radius.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs_within() const;

  // Same pairs, each with its planar distance.
  [[nodiscard]] std::vector<IndexPairDistance> pairs_within_distance() const;

  // Indices within radius of positions[i], excluding i itself.
  [[nodiscard]] std::vector<std::uint32_t> neighbors_of(std::uint32_t i) const;

  // Indices within radius of an arbitrary point p (which need not be one of
  // the indexed positions). Used by the simulation side — chat audibility
  // and sensor sweeps — to replace full population scans.
  [[nodiscard]] std::vector<std::uint32_t> near_point(const Vec3& p) const;
  // Same query without allocating: appends the matching indices to `out`
  // (which the caller clears and reuses across queries).
  void near_point(const Vec3& p, std::vector<std::uint32_t>& out) const;

 private:
  using CellKey = std::uint64_t;
  struct CellCoord {
    std::int32_t cx{0};
    std::int32_t cy{0};
  };
  [[nodiscard]] CellCoord coord_for(const Vec3& p) const;
  [[nodiscard]] static CellKey pack(std::int32_t cx, std::int32_t cy);

  template <typename Emit>
  void for_each_pair(Emit&& emit) const;

  const std::vector<Vec3>& positions_;
  double radius_;
  double cell_;
  std::vector<CellCoord> coords_;  // cell coordinates of positions_[i]
  std::unordered_map<CellKey, std::vector<std::uint32_t>> cells_;
};

}  // namespace slmob
