// Shared per-snapshot proximity structure for the analysis pipeline.
//
// Every §3 analysis needs, per snapshot, "all avatar pairs within r" for one
// or more radii (10 m Bluetooth and 80 m WiFi in the paper). Building a
// spatial index per (snapshot, range, analysis) repeats the same work four
// times per snapshot; the cache instead runs ONE PairKernel pass per
// snapshot at the largest requested radius and classifies every radius from
// the recorded dist² in a single sweep — pairs within 10 m are a subset of
// pairs within 80 m.
//
// The cache is immutable after construction, so any number of analysis
// threads can read it concurrently; construction itself fans per-snapshot
// kernel runs across a ThreadPool when one is supplied, each worker reusing
// a thread_local kernel (allocation-free once warm). Pair lists preserve
// the kernel's cell-traversal order, so analyses consuming the cache are
// deterministic for any thread count.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "trace/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/vec3.hpp"

namespace slmob {

class ProximityCache {
 public:
  using PairList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

  // Builds pair lists for every snapshot of `trace` at every radius in
  // `ranges` (deduplicated; each must be > 0). When `pool` is non-null the
  // per-snapshot builds run in parallel on it. The cache keeps fix indices,
  // not avatar ids: pair (i, j) refers to snapshot.fixes[i] / fixes[j].
  ProximityCache(const Trace& trace, const std::vector<double>& ranges,
                 ThreadPool* pool = nullptr);

  [[nodiscard]] std::size_t snapshot_count() const { return positions_.size(); }
  // Requested radii, ascending and deduplicated.
  [[nodiscard]] const std::vector<double>& ranges() const { return ranges_; }

  // Positions of snapshot `snap`'s fixes, in fix order.
  [[nodiscard]] const std::vector<Vec3>& positions(std::size_t snap) const {
    return positions_.at(snap);
  }

  // Pairs (i < j) of snapshot `snap` within `range`. `range` must be one of
  // ranges() (throws std::invalid_argument otherwise).
  [[nodiscard]] const PairList& pairs(std::size_t snap, double range) const;

 private:
  [[nodiscard]] std::size_t range_index(double range) const;

  std::vector<double> ranges_;
  std::vector<std::vector<Vec3>> positions_;       // [snap]
  std::vector<std::vector<PairList>> pair_lists_;  // [snap][range index]
};

}  // namespace slmob
