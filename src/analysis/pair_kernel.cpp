#include "analysis/pair_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace slmob {
namespace {

// floor(v / cell) as a signed cell coordinate. int64 so that coordinates far
// outside the usual [0, 1024) region range stay well-defined.
std::int64_t cell_coord(double v, double cell) {
  return static_cast<std::int64_t>(std::floor(v / cell));
}

}  // namespace

double squared_radius_threshold(double radius) {
  if (!(radius > 0.0) || !std::isfinite(radius)) {
    throw std::invalid_argument("squared_radius_threshold: radius must be positive");
  }
  constexpr double inf = std::numeric_limits<double>::infinity();
  double t = radius * radius;
  if (!std::isfinite(t)) t = std::numeric_limits<double>::max();
  // Walk up while the predicate still holds, then back down to the last
  // passing value. r*r is within a few ulps of the true boundary, so each
  // loop runs at most a handful of iterations.
  while (std::isfinite(t) && std::sqrt(t) <= radius) t = std::nextafter(t, inf);
  do {
    t = std::nextafter(t, -inf);
  } while (std::sqrt(t) > radius);
  return t;
}

void PairKernel::run(std::span<const Vec3> positions, double r_max) {
  build(positions, r_max);
  enumerate();
}

void PairKernel::build(std::span<const Vec3> positions, double r_max) {
  if (!(r_max > 0.0)) {
    throw std::invalid_argument("PairKernel: radius must be positive");
  }
  if (positions.size() > 0xffffffffull) {
    throw std::invalid_argument("PairKernel: too many positions");
  }
  n_ = positions.size();
  cell_ = r_max;
  threshold2_ = squared_radius_threshold(r_max);
  hits_.clear();
  xs_.resize(n_);
  ys_.resize(n_);
  idx_.resize(n_);
  if (n_ == 0) {
    dense_ = true;
    grid_w_ = 0;
    grid_h_ = 0;
    cell_start_.assign(1, 0);
    cell_keys_.clear();
    return;
  }

  pcx_.resize(n_);
  pcy_.resize(n_);
  std::int64_t min_cx = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_cx = std::numeric_limits<std::int64_t>::min();
  std::int64_t min_cy = min_cx;
  std::int64_t max_cy = max_cx;
  for (std::size_t p = 0; p < n_; ++p) {
    const std::int64_t cx = cell_coord(positions[p].x, cell_);
    const std::int64_t cy = cell_coord(positions[p].y, cell_);
    min_cx = std::min(min_cx, cx);
    max_cx = std::max(max_cx, cx);
    min_cy = std::min(min_cy, cy);
    max_cy = std::max(max_cy, cy);
  }
  min_cx_ = min_cx;
  min_cy_ = min_cy;
  const std::uint64_t w = static_cast<std::uint64_t>(max_cx - min_cx) + 1;
  const std::uint64_t h = static_cast<std::uint64_t>(max_cy - min_cy) + 1;
  if (w > 0xffffffffull || h > 0xffffffffull) {
    throw std::invalid_argument("PairKernel: coordinate spread too large for radius");
  }
  // Re-derive biased per-point cell coordinates now that the origin is known.
  for (std::size_t p = 0; p < n_; ++p) {
    pcx_[p] = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(cell_coord(positions[p].x, cell_) - min_cx));
    pcy_[p] = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(cell_coord(positions[p].y, cell_) - min_cy));
  }

  // A dense row-major cell table is O(n + cells) to build and lookup-free to
  // walk, but only pays off while the bounding box stays compact; scattered
  // inputs (a few avatars teleported across a huge span) fall back to a
  // sorted-key table. Both lay cells out in ascending (cy, cx) order.
  const std::uint64_t limit = std::max<std::uint64_t>(4 * static_cast<std::uint64_t>(n_), 64);
  dense_ = w <= limit && h <= limit && w * h <= limit;
  if (dense_) {
    grid_w_ = static_cast<std::size_t>(w);
    grid_h_ = static_cast<std::size_t>(h);
    build_dense(positions, static_cast<std::size_t>(w * h));
  } else {
    grid_w_ = 0;
    grid_h_ = 0;
    build_sparse(positions);
  }
}

void PairKernel::build_dense(std::span<const Vec3> positions, std::size_t cells) {
  cell_start_.assign(cells + 1, 0);
  point_cell_.resize(n_);
  const std::size_t w = grid_w_;
  for (std::size_t p = 0; p < n_; ++p) {
    const std::size_t cid = static_cast<std::size_t>(static_cast<std::uint32_t>(pcy_[p])) * w +
                            static_cast<std::uint32_t>(pcx_[p]);
    point_cell_[p] = static_cast<std::uint32_t>(cid);
    ++cell_start_[cid + 1];
  }
  for (std::size_t c = 1; c <= cells; ++c) cell_start_[c] += cell_start_[c - 1];
  cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
  // Placing points in ascending input order keeps each cell's lanes sorted
  // by original index — the within-cell pair order every caller sees.
  for (std::size_t p = 0; p < n_; ++p) {
    const std::uint32_t pos = cursor_[point_cell_[p]]++;
    xs_[pos] = positions[p].x;
    ys_[pos] = positions[p].y;
    idx_[pos] = static_cast<std::uint32_t>(p);
  }
  cell_keys_.clear();
}

void PairKernel::build_sparse(std::span<const Vec3> positions) {
  keyed_.resize(n_);
  for (std::size_t p = 0; p < n_; ++p) {
    keyed_[p] = {key_of(static_cast<std::uint32_t>(pcx_[p]),
                        static_cast<std::uint32_t>(pcy_[p])),
                 static_cast<std::uint32_t>(p)};
  }
  // Ties (same cell) sort by original index, matching the dense layout.
  std::sort(keyed_.begin(), keyed_.end());
  cell_keys_.clear();
  cell_start_.clear();
  for (std::size_t k = 0; k < n_; ++k) {
    if (k == 0 || keyed_[k].first != keyed_[k - 1].first) {
      cell_keys_.push_back(keyed_[k].first);
      cell_start_.push_back(static_cast<std::uint32_t>(k));
    }
    const std::uint32_t p = keyed_[k].second;
    xs_[k] = positions[p].x;
    ys_[k] = positions[p].y;
    idx_[k] = p;
  }
  cell_start_.push_back(static_cast<std::uint32_t>(n_));
}

void PairKernel::enumerate() {
  hits_.clear();
  if (n_ < 2) return;
  if (dense_) {
    enumerate_dense();
  } else {
    enumerate_sparse();
  }
}

void PairKernel::enumerate_dense() {
  const std::size_t w = grid_w_;
  const std::size_t h = grid_h_;
  for (std::size_t gy = 0; gy < h; ++gy) {
    const std::size_t row = gy * w;
    for (std::size_t gx = 0; gx < w; ++gx) {
      const std::size_t c = row + gx;
      const std::size_t s = cell_start_[c];
      const std::size_t e = cell_start_[c + 1];
      if (s == e) continue;
      tile_self(s, e);
      // Half stencil: every unordered cell pair at Chebyshev distance <= 1
      // is visited exactly once — the east neighbour, plus the south-west /
      // south / south-east cells, whose lanes are contiguous in the CSR
      // layout and therefore form a single tile.
      if (gx + 1 < w) tile(s, e, cell_start_[c + 1], cell_start_[c + 2]);
      if (gy + 1 < h) {
        const std::size_t lo = row + w + (gx > 0 ? gx - 1 : 0);
        const std::size_t hi = row + w + (gx + 1 < w ? gx + 1 : w - 1);
        tile(s, e, cell_start_[lo], cell_start_[hi + 1]);
      }
    }
  }
}

void PairKernel::enumerate_sparse() {
  const std::size_t cells = cell_keys_.size();
  for (std::size_t ci = 0; ci < cells; ++ci) {
    const std::uint64_t key = cell_keys_[ci];
    const std::size_t s = cell_start_[ci];
    const std::size_t e = cell_start_[ci + 1];
    tile_self(s, e);
    const auto gx = static_cast<std::uint32_t>(key & 0xffffffffu);
    const auto gy = static_cast<std::uint32_t>(key >> 32);
    // The east neighbour's key is key + 1, and no other key can sort between
    // them, so it is present iff it is the immediate successor.
    if (gx != 0xffffffffu && ci + 1 < cells && cell_keys_[ci + 1] == key + 1) {
      tile(s, e, cell_start_[ci + 1], cell_start_[ci + 2]);
    }
    // South-west .. south-east have consecutive keys on row gy + 1; the
    // present subset is contiguous in cell_keys_, hence one tile.
    if (gy != 0xffffffffu) {
      const std::uint64_t klo = key_of(gx > 0 ? gx - 1 : 0, gy + 1);
      const std::uint64_t khi = key_of(gx != 0xffffffffu ? gx + 1 : gx, gy + 1);
      const auto first = cell_keys_.begin() + static_cast<std::ptrdiff_t>(ci + 1);
      const auto lo = std::lower_bound(first, cell_keys_.end(), klo);
      const auto hi = std::upper_bound(lo, cell_keys_.end(), khi);
      if (lo != hi) {
        const auto lo_ci = static_cast<std::size_t>(lo - cell_keys_.begin());
        const auto hi_ci = static_cast<std::size_t>(hi - cell_keys_.begin());
        tile(s, e, cell_start_[lo_ci], cell_start_[hi_ci]);
      }
    }
  }
}

// slmob:alloc-free -- pair enumeration inner loop; bench gate: pair_kernel allocs_per_run == 0
void PairKernel::tile(std::size_t a0, std::size_t a1, std::size_t b0, std::size_t b1) {
  const std::size_t m = b1 - b0;
  if (m == 0) return;
  // slmob-lint: allow(alloc-free) -- d2buf_/hits_ keep their capacity across runs; warm calls never allocate (gated)
  if (d2buf_.size() < m) d2buf_.resize(m);
  const double* bx = xs_.data() + b0;
  const double* by = ys_.data() + b0;
  double* buf = d2buf_.data();
  for (std::size_t a = a0; a < a1; ++a) {
    const double ax = xs_[a];
    const double ay = ys_[a];
    // Branch-free comparison-only lanes: the compiler vectorizes this loop;
    // hits are collected in a second, rare-branch pass.
    for (std::size_t k = 0; k < m; ++k) {
      const double dx = ax - bx[k];
      const double dy = ay - by[k];
      buf[k] = dx * dx + dy * dy;
    }
    const std::uint32_t ia = idx_[a];
    for (std::size_t k = 0; k < m; ++k) {
      if (buf[k] <= threshold2_) {
        const std::uint32_t ib = idx_[b0 + k];
        // slmob-lint: allow(alloc-free) -- hits_ capacity is retained across runs; warm calls never allocate (gated)
        hits_.push_back({ia < ib ? ia : ib, ia < ib ? ib : ia, buf[k]});
      }
    }
  }
}

// slmob:alloc-free -- same-cell enumeration; bench gate: pair_kernel allocs_per_run == 0
void PairKernel::tile_self(std::size_t s, std::size_t e) {
  if (e - s < 2) return;
  // slmob-lint: allow(alloc-free) -- d2buf_ keeps its capacity across runs; warm calls never allocate (gated)
  if (d2buf_.size() < e - s - 1) d2buf_.resize(e - s - 1);
  double* buf = d2buf_.data();
  for (std::size_t a = s; a + 1 < e; ++a) {
    const double ax = xs_[a];
    const double ay = ys_[a];
    const double* bx = xs_.data() + a + 1;
    const double* by = ys_.data() + a + 1;
    const std::size_t m = e - a - 1;
    for (std::size_t k = 0; k < m; ++k) {
      const double dx = ax - bx[k];
      const double dy = ay - by[k];
      buf[k] = dx * dx + dy * dy;
    }
    for (std::size_t k = 0; k < m; ++k) {
      // Within a cell the lanes are sorted by original index: i < j already.
      // slmob-lint: allow(alloc-free) -- hits_ capacity is retained across runs; warm calls never allocate (gated)
      if (buf[k] <= threshold2_) hits_.push_back({idx_[a], idx_[a + 1 + k], buf[k]});
    }
  }
}

// slmob:alloc-free -- multi-radius hit classification; bench gate: pair_kernel allocs_per_run == 0
void PairKernel::classify(std::span<const double> ranges, PairList* lists) {
  // slmob-lint: allow(alloc-free) -- range_t2_ holds <= 4 radii and keeps capacity; warm calls never allocate (gated)
  range_t2_.resize(ranges.size());
  for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
    range_t2_[ri] = squared_radius_threshold(ranges[ri]);
  }
  const std::size_t nr = ranges.size();
  for (const Hit& h : hits_) {
    std::size_t ri = 0;
    while (ri < nr && range_t2_[ri] < h.d2) ++ri;
    // slmob-lint: allow(alloc-free) -- caller-owned lists are reserved/reused by ProximityCache; warm calls never allocate (gated)
    for (; ri < nr; ++ri) lists[ri].emplace_back(h.i, h.j);
  }
}

void PairKernel::scan_near(double px, double py, std::size_t b0, std::size_t b1,
                           std::vector<std::uint32_t>& out) const {
  for (std::size_t k = b0; k < b1; ++k) {
    const double dx = px - xs_[k];
    const double dy = py - ys_[k];
    if (dx * dx + dy * dy <= threshold2_) out.push_back(idx_[k]);
  }
}

void PairKernel::near(const Vec3& p, std::vector<std::uint32_t>& out) const {
  if (n_ == 0) return;
  const std::int64_t cx = cell_coord(p.x, cell_) - min_cx_;
  const std::int64_t cy = cell_coord(p.y, cell_) - min_cy_;
  if (dense_) {
    const auto w = static_cast<std::int64_t>(grid_w_);
    const auto h = static_cast<std::int64_t>(grid_h_);
    for (std::int64_t gy = cy - 1; gy <= cy + 1; ++gy) {
      if (gy < 0 || gy >= h) continue;
      std::int64_t lo = cx - 1;
      std::int64_t hi = cx + 1;
      if (hi < 0 || lo >= w) continue;
      lo = std::max<std::int64_t>(lo, 0);
      hi = std::min<std::int64_t>(hi, w - 1);
      const std::size_t base = static_cast<std::size_t>(gy) * grid_w_;
      scan_near(p.x, p.y, cell_start_[base + static_cast<std::size_t>(lo)],
                cell_start_[base + static_cast<std::size_t>(hi) + 1], out);
    }
  } else {
    constexpr std::int64_t kMax = 0xffffffffll;
    for (std::int64_t gy = cy - 1; gy <= cy + 1; ++gy) {
      if (gy < 0 || gy > kMax) continue;
      std::int64_t lo = cx - 1;
      std::int64_t hi = cx + 1;
      if (hi < 0 || lo > kMax) continue;
      lo = std::max<std::int64_t>(lo, 0);
      hi = std::min<std::int64_t>(hi, kMax);
      const std::uint64_t klo = key_of(static_cast<std::uint32_t>(lo),
                                       static_cast<std::uint32_t>(gy));
      const std::uint64_t khi = key_of(static_cast<std::uint32_t>(hi),
                                       static_cast<std::uint32_t>(gy));
      const auto it_lo = std::lower_bound(cell_keys_.begin(), cell_keys_.end(), klo);
      const auto it_hi = std::upper_bound(it_lo, cell_keys_.end(), khi);
      if (it_lo != it_hi) {
        const auto lo_ci = static_cast<std::size_t>(it_lo - cell_keys_.begin());
        const auto hi_ci = static_cast<std::size_t>(it_hi - cell_keys_.begin());
        scan_near(p.x, p.y, cell_start_[lo_ci], cell_start_[hi_ci], out);
      }
    }
  }
}

}  // namespace slmob
