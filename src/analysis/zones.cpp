#include "analysis/zones.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/proximity_cache.hpp"

namespace slmob {
namespace {

// Snapshot indices the zone analysis may use: all of them for a gap-free
// trace, only snapshots outside coverage gaps otherwise (occupancy inside a
// gap is unknown, not zero).
std::vector<std::size_t> covered_indices(const Trace& trace) {
  const auto& snaps = trace.snapshots();
  std::vector<std::size_t> indices;
  indices.reserve(snaps.size());
  const bool gap_aware = !trace.gaps().empty();
  for (std::size_t s = 0; s < snaps.size(); ++s) {
    if (gap_aware && !trace.covered_at(snaps[s].time)) continue;
    indices.push_back(s);
  }
  return indices;
}

// Shared core: `for_each_position(s, fn)` calls fn(pos) for every avatar
// position of snapshot s, in fix order; `weight_of(s)` is snapshot s's
// rate-correction weight (1 at the nominal sampling rate, the degradation
// factor inside a degraded window). With all weights 1 the arithmetic is
// exactly the historical unweighted computation.
template <typename ForEachPosition, typename WeightOf>
ZoneAnalysis analyze_zones_impl(const std::vector<std::size_t>& indices,
                                ForEachPosition&& for_each_position, WeightOf&& weight_of,
                                double land_size, double cell_size) {
  if (land_size <= 0.0 || cell_size <= 0.0) {
    throw std::invalid_argument("analyze_zones: bad sizes");
  }
  ZoneAnalysis out;
  out.cell_size = cell_size;
  const auto side = static_cast<std::size_t>(std::ceil(land_size / cell_size));
  out.cells_per_side = side;
  const std::size_t n_cells = side * side;
  out.mean_per_cell.assign(n_cells, 0.0);

  std::vector<std::uint32_t> counts(n_cells);
  std::size_t empty_samples = 0;
  std::size_t total_samples = 0;
  std::size_t total_weight = 0;
  for (const std::size_t s : indices) {
    std::fill(counts.begin(), counts.end(), 0);
    for_each_position(s, [&](const Vec3& pos) {
      auto cx = static_cast<std::size_t>(std::clamp(pos.x, 0.0, land_size - 1e-9) /
                                         cell_size);
      auto cy = static_cast<std::size_t>(std::clamp(pos.y, 0.0, land_size - 1e-9) /
                                         cell_size);
      cx = std::min(cx, side - 1);
      cy = std::min(cy, side - 1);
      ++counts[cy * side + cx];
    });
    const std::uint32_t w = weight_of(s);
    total_weight += w;
    for (std::size_t c = 0; c < n_cells; ++c) {
      for (std::uint32_t rep = 0; rep < w; ++rep) {
        out.occupancy.add(static_cast<double>(counts[c]));
      }
      out.mean_per_cell[c] += static_cast<double>(w) * static_cast<double>(counts[c]);
      out.max_occupancy = std::max(out.max_occupancy, static_cast<std::size_t>(counts[c]));
      if (counts[c] == 0) empty_samples += w;
      total_samples += w;
    }
  }
  if (total_samples > 0) {
    out.empty_fraction =
        static_cast<double>(empty_samples) / static_cast<double>(total_samples);
    for (auto& m : out.mean_per_cell) {
      m /= static_cast<double>(total_weight);
    }
  }
  return out;
}

}  // namespace

ZoneAnalysis analyze_zones(const Trace& trace, double land_size, double cell_size) {
  const auto& snaps = trace.snapshots();
  return analyze_zones_impl(
      covered_indices(trace),
      [&](std::size_t s, auto&& fn) {
        for (const auto& fix : snaps[s].fixes) fn(fix.pos);
      },
      [&](std::size_t s) { return trace.degradation_factor_at(snaps[s].time); },
      land_size, cell_size);
}

ZoneAnalysis analyze_zones(const Trace& trace, const ProximityCache& cache,
                           double land_size, double cell_size) {
  const auto& snaps = trace.snapshots();
  return analyze_zones_impl(
      covered_indices(trace),
      [&](std::size_t s, auto&& fn) {
        for (const Vec3& pos : cache.positions(s)) fn(pos);
      },
      [&](std::size_t s) { return trace.degradation_factor_at(snaps[s].time); },
      land_size, cell_size);
}

ZoneStream::ZoneStream(double land_size, double cell_size) : land_size_(land_size) {
  if (land_size <= 0.0 || cell_size <= 0.0) {
    throw std::invalid_argument("analyze_zones: bad sizes");
  }
  out_.cell_size = cell_size;
  const auto side = static_cast<std::size_t>(std::ceil(land_size / cell_size));
  out_.cells_per_side = side;
  out_.mean_per_cell.assign(side * side, 0.0);
  counts_.resize(side * side);
}

void ZoneStream::on_snapshot(const std::vector<Vec3>& positions, std::uint32_t weight) {
  const std::size_t side = out_.cells_per_side;
  const double cell_size = out_.cell_size;
  std::fill(counts_.begin(), counts_.end(), 0);
  for (const Vec3& pos : positions) {
    auto cx = static_cast<std::size_t>(std::clamp(pos.x, 0.0, land_size_ - 1e-9) /
                                       cell_size);
    auto cy = static_cast<std::size_t>(std::clamp(pos.y, 0.0, land_size_ - 1e-9) /
                                       cell_size);
    cx = std::min(cx, side - 1);
    cy = std::min(cy, side - 1);
    ++counts_[cy * side + cx];
  }
  total_weight_ += weight;
  for (std::size_t c = 0; c < counts_.size(); ++c) {
    for (std::uint32_t rep = 0; rep < weight; ++rep) {
      out_.occupancy.add(static_cast<double>(counts_[c]));
    }
    out_.mean_per_cell[c] += static_cast<double>(weight) * static_cast<double>(counts_[c]);
    out_.max_occupancy = std::max(out_.max_occupancy, static_cast<std::size_t>(counts_[c]));
    if (counts_[c] == 0) empty_samples_ += weight;
    total_samples_ += weight;
  }
}

ZoneAnalysis ZoneStream::finish() {
  if (total_samples_ > 0) {
    out_.empty_fraction =
        static_cast<double>(empty_samples_) / static_cast<double>(total_samples_);
    for (auto& m : out_.mean_per_cell) {
      m /= static_cast<double>(total_weight_);
    }
  }
  return std::move(out_);
}

}  // namespace slmob
