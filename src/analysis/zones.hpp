// Zone occupation (Fig. 3 of the paper): divide the land into L x L cells
// (L = 20 m) and look at the distribution of per-cell user counts across
// all snapshots. Hot-spot lands show a long tail (tens of users in a cell)
// while most cells are empty.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/ecdf.hpp"
#include "trace/trace.hpp"

namespace slmob {

// Rate correction: a snapshot taken inside a SamplingDegradation window
// stands for `factor` nominal sampling intervals of observation, so it
// contributes with integer weight = factor to every time-weighted quantity
// (occupancy samples, empty fraction, per-cell means). Traces without
// degradation windows weight every snapshot 1 and reproduce the historical
// results bit for bit.
struct ZoneAnalysis {
  double cell_size{20.0};
  std::size_t cells_per_side{0};
  Ecdf occupancy;                 // one sample per (cell, snapshot-weight)
  double empty_fraction{0.0};     // weighted fraction of cell samples == 0
  std::size_t max_occupancy{0};
  // Time-averaged occupancy per cell, row-major (heat map of the land).
  std::vector<double> mean_per_cell;
};

class ProximityCache;

ZoneAnalysis analyze_zones(const Trace& trace, double land_size = 256.0,
                           double cell_size = 20.0);

// Same, but reads per-snapshot position arrays from the shared cache instead
// of walking each snapshot's fixes again. `cache` must cover `trace`.
ZoneAnalysis analyze_zones(const Trace& trace, const ProximityCache& cache,
                           double land_size = 256.0, double cell_size = 20.0);

// Incremental zone occupation over a snapshot stream: feed the position
// array (fix order) of every covered snapshot — empty snapshots included,
// they contribute all-zero cell samples exactly as in batch. Bit-identical
// to analyze_zones, including Ecdf sample insertion order.
class ZoneStream {
 public:
  // Throws std::invalid_argument on non-positive sizes (as analyze_zones).
  explicit ZoneStream(double land_size = 256.0, double cell_size = 20.0);

  // `weight` is the snapshot's rate-correction factor (the degradation
  // factor in force at its time; 1 at the nominal rate).
  void on_snapshot(const std::vector<Vec3>& positions, std::uint32_t weight = 1);
  [[nodiscard]] ZoneAnalysis finish();

 private:
  double land_size_;
  ZoneAnalysis out_;
  std::vector<std::uint32_t> counts_;
  std::size_t empty_samples_{0};
  std::size_t total_samples_{0};
  std::size_t total_weight_{0};
};

}  // namespace slmob
