// Zone occupation (Fig. 3 of the paper): divide the land into L x L cells
// (L = 20 m) and look at the distribution of per-cell user counts across
// all snapshots. Hot-spot lands show a long tail (tens of users in a cell)
// while most cells are empty.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/ecdf.hpp"
#include "trace/trace.hpp"

namespace slmob {

struct ZoneAnalysis {
  double cell_size{20.0};
  std::size_t cells_per_side{0};
  Ecdf occupancy;                 // one sample per (cell, snapshot)
  double empty_fraction{0.0};     // fraction of (cell, snapshot) samples == 0
  std::size_t max_occupancy{0};
  // Time-averaged occupancy per cell, row-major (heat map of the land).
  std::vector<double> mean_per_cell;
};

class ProximityCache;

ZoneAnalysis analyze_zones(const Trace& trace, double land_size = 256.0,
                           double cell_size = 20.0);

// Same, but reads per-snapshot position arrays from the shared cache instead
// of walking each snapshot's fixes again. `cache` must cover `trace`.
ZoneAnalysis analyze_zones(const Trace& trace, const ProximityCache& cache,
                           double land_size = 256.0, double cell_size = 20.0);

// Incremental zone occupation over a snapshot stream: feed the position
// array (fix order) of every covered snapshot — empty snapshots included,
// they contribute all-zero cell samples exactly as in batch. Bit-identical
// to analyze_zones, including Ecdf sample insertion order.
class ZoneStream {
 public:
  // Throws std::invalid_argument on non-positive sizes (as analyze_zones).
  explicit ZoneStream(double land_size = 256.0, double cell_size = 20.0);

  void on_snapshot(const std::vector<Vec3>& positions);
  [[nodiscard]] ZoneAnalysis finish();

 private:
  double land_size_;
  ZoneAnalysis out_;
  std::vector<std::uint32_t> counts_;
  std::size_t empty_samples_{0};
  std::size_t total_samples_{0};
  std::size_t snapshots_{0};
};

}  // namespace slmob
