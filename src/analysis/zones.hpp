// Zone occupation (Fig. 3 of the paper): divide the land into L x L cells
// (L = 20 m) and look at the distribution of per-cell user counts across
// all snapshots. Hot-spot lands show a long tail (tens of users in a cell)
// while most cells are empty.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/ecdf.hpp"
#include "trace/trace.hpp"

namespace slmob {

struct ZoneAnalysis {
  double cell_size{20.0};
  std::size_t cells_per_side{0};
  Ecdf occupancy;                 // one sample per (cell, snapshot)
  double empty_fraction{0.0};     // fraction of (cell, snapshot) samples == 0
  std::size_t max_occupancy{0};
  // Time-averaged occupancy per cell, row-major (heat map of the land).
  std::vector<double> mean_per_cell;
};

class ProximityCache;

ZoneAnalysis analyze_zones(const Trace& trace, double land_size = 256.0,
                           double cell_size = 20.0);

// Same, but reads per-snapshot position arrays from the shared cache instead
// of walking each snapshot's fixes again. `cache` must cover `trace`.
ZoneAnalysis analyze_zones(const Trace& trace, const ProximityCache& cache,
                           double land_size = 256.0, double cell_size = 20.0);

}  // namespace slmob
