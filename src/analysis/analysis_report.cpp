#include "analysis/analysis_report.hpp"

#include <cstring>
#include <sstream>

#include "util/bytes.hpp"

namespace slmob {
namespace {

// Bitwise double comparison: NaN == NaN, +0 != -0. The equivalence contract
// is "same bits", not "numerically close".
bool bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

std::string diff_scalar(const std::string& name, double a, double b) {
  if (bits_equal(a, b)) return {};
  std::ostringstream os;
  os.precision(17);
  os << name << ": " << a << " != " << b;
  return os.str();
}

std::string diff_count(const std::string& name, std::size_t a, std::size_t b) {
  if (a == b) return {};
  std::ostringstream os;
  os << name << ": " << a << " != " << b;
  return os.str();
}

std::string diff_ecdf(const std::string& name, const Ecdf& a, const Ecdf& b) {
  if (a.size() != b.size()) return diff_count(name + ".size", a.size(), b.size());
  const auto sa = a.sorted();
  const auto sb = b.sorted();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (!bits_equal(sa[i], sb[i])) {
      std::ostringstream os;
      os.precision(17);
      os << name << "[" << i << "]: " << sa[i] << " != " << sb[i];
      return os.str();
    }
  }
  return {};
}

std::string diff_fit(const std::string& name, const PowerLawFit& a, const PowerLawFit& b) {
  if (auto d = diff_scalar(name + ".alpha", a.alpha, b.alpha); !d.empty()) return d;
  if (auto d = diff_scalar(name + ".xmin", a.xmin, b.xmin); !d.empty()) return d;
  return diff_count(name + ".n", a.n, b.n);
}

std::string diff_summary(const TraceSummary& a, const TraceSummary& b) {
  if (auto d = diff_count("summary.unique_users", a.unique_users, b.unique_users); !d.empty())
    return d;
  if (auto d = diff_scalar("summary.avg_concurrent", a.avg_concurrent, b.avg_concurrent);
      !d.empty())
    return d;
  if (auto d = diff_count("summary.max_concurrent", a.max_concurrent, b.max_concurrent);
      !d.empty())
    return d;
  if (auto d = diff_scalar("summary.duration", a.duration, b.duration); !d.empty()) return d;
  if (auto d = diff_count("summary.snapshot_count", a.snapshot_count, b.snapshot_count);
      !d.empty())
    return d;
  if (auto d = diff_count("summary.gap_count", a.gap_count, b.gap_count); !d.empty()) return d;
  if (auto d = diff_scalar("summary.gap_seconds", a.gap_seconds, b.gap_seconds); !d.empty())
    return d;
  if (auto d = diff_count("summary.degradation_count", a.degradation_count,
                          b.degradation_count);
      !d.empty())
    return d;
  return diff_scalar("summary.degraded_seconds", a.degraded_seconds, b.degraded_seconds);
}

std::string diff_contacts(const std::string& name, const ContactAnalysis& a,
                          const ContactAnalysis& b) {
  if (auto d = diff_scalar(name + ".range", a.range, b.range); !d.empty()) return d;
  if (a.intervals.size() != b.intervals.size())
    return diff_count(name + ".intervals.size", a.intervals.size(), b.intervals.size());
  for (std::size_t i = 0; i < a.intervals.size(); ++i) {
    const auto& x = a.intervals[i];
    const auto& y = b.intervals[i];
    if (x.a != y.a || x.b != y.b || !bits_equal(x.start, y.start) ||
        !bits_equal(x.end, y.end)) {
      std::ostringstream os;
      os << name << ".intervals[" << i << "] differs";
      return os.str();
    }
  }
  if (auto d = diff_ecdf(name + ".contact_times", a.contact_times, b.contact_times); !d.empty())
    return d;
  if (auto d = diff_ecdf(name + ".inter_contact_times", a.inter_contact_times,
                         b.inter_contact_times);
      !d.empty())
    return d;
  if (auto d = diff_ecdf(name + ".first_contact_times", a.first_contact_times,
                         b.first_contact_times);
      !d.empty())
    return d;
  if (auto d = diff_count(name + ".users_seen", a.users_seen, b.users_seen); !d.empty())
    return d;
  return diff_count(name + ".users_with_contact", a.users_with_contact, b.users_with_contact);
}

std::string diff_graphs(const std::string& name, const GraphMetrics& a, const GraphMetrics& b) {
  if (auto d = diff_scalar(name + ".range", a.range, b.range); !d.empty()) return d;
  if (auto d = diff_ecdf(name + ".degrees", a.degrees, b.degrees); !d.empty()) return d;
  if (auto d = diff_ecdf(name + ".diameters", a.diameters, b.diameters); !d.empty()) return d;
  if (auto d = diff_ecdf(name + ".clustering", a.clustering, b.clustering); !d.empty()) return d;
  if (auto d = diff_count(name + ".snapshots_analyzed", a.snapshots_analyzed,
                          b.snapshots_analyzed);
      !d.empty())
    return d;
  return diff_scalar(name + ".isolated_fraction", a.isolated_fraction, b.isolated_fraction);
}

std::string diff_zones(const ZoneAnalysis& a, const ZoneAnalysis& b) {
  if (auto d = diff_scalar("zones.cell_size", a.cell_size, b.cell_size); !d.empty()) return d;
  if (auto d = diff_count("zones.cells_per_side", a.cells_per_side, b.cells_per_side);
      !d.empty())
    return d;
  if (auto d = diff_ecdf("zones.occupancy", a.occupancy, b.occupancy); !d.empty()) return d;
  if (auto d = diff_scalar("zones.empty_fraction", a.empty_fraction, b.empty_fraction);
      !d.empty())
    return d;
  if (auto d = diff_count("zones.max_occupancy", a.max_occupancy, b.max_occupancy); !d.empty())
    return d;
  if (a.mean_per_cell.size() != b.mean_per_cell.size())
    return diff_count("zones.mean_per_cell.size", a.mean_per_cell.size(),
                      b.mean_per_cell.size());
  for (std::size_t i = 0; i < a.mean_per_cell.size(); ++i) {
    if (!bits_equal(a.mean_per_cell[i], b.mean_per_cell[i])) {
      std::ostringstream os;
      os << "zones.mean_per_cell[" << i << "] differs";
      return os.str();
    }
  }
  return {};
}

std::string diff_trips(const TripAnalysis& a, const TripAnalysis& b) {
  if (auto d = diff_ecdf("trips.travel_lengths", a.travel_lengths, b.travel_lengths);
      !d.empty())
    return d;
  if (auto d = diff_ecdf("trips.effective_travel_times", a.effective_travel_times,
                         b.effective_travel_times);
      !d.empty())
    return d;
  if (auto d = diff_ecdf("trips.travel_times", a.travel_times, b.travel_times); !d.empty())
    return d;
  return diff_count("trips.sessions", a.sessions, b.sessions);
}

std::string diff_flights(const FlightAnalysis& a, const FlightAnalysis& b) {
  if (auto d = diff_ecdf("flights.flight_lengths", a.flight_lengths, b.flight_lengths);
      !d.empty())
    return d;
  if (auto d = diff_ecdf("flights.pause_times", a.pause_times, b.pause_times); !d.empty())
    return d;
  if (auto d = diff_count("flights.sessions_analyzed", a.sessions_analyzed,
                          b.sessions_analyzed);
      !d.empty())
    return d;
  if (auto d = diff_fit("flights.flight_fit", a.flight_fit, b.flight_fit); !d.empty()) return d;
  return diff_fit("flights.pause_fit", a.pause_fit, b.pause_fit);
}

std::string diff_relations(const RelationSummary& a, const RelationSummary& b) {
  if (a.relations.size() != b.relations.size())
    return diff_count("relations.size", a.relations.size(), b.relations.size());
  for (std::size_t i = 0; i < a.relations.size(); ++i) {
    const auto& x = a.relations[i];
    const auto& y = b.relations[i];
    if (x.a != y.a || x.b != y.b || x.encounters != y.encounters ||
        !bits_equal(x.total_contact, y.total_contact) ||
        !bits_equal(x.first_met, y.first_met) ||
        !bits_equal(x.last_seen_together, y.last_seen_together)) {
      std::ostringstream os;
      os << "relations[" << i << "] differs";
      return os.str();
    }
  }
  if (auto d = diff_count("relations.user_count", a.user_count, b.user_count); !d.empty())
    return d;
  if (auto d = diff_scalar("relations.acquaintance_fraction", a.acquaintance_fraction,
                           b.acquaintance_fraction);
      !d.empty())
    return d;
  if (auto d = diff_ecdf("relations.encounter_counts", a.encounter_counts, b.encounter_counts);
      !d.empty())
    return d;
  if (auto d = diff_ecdf("relations.tie_strengths", a.tie_strengths, b.tie_strengths);
      !d.empty())
    return d;
  return diff_ecdf("relations.acquaintance_degrees", a.acquaintance_degrees,
                   b.acquaintance_degrees);
}

void put_ecdf(ByteWriter& w, const Ecdf& e) {
  w.u64(static_cast<std::uint64_t>(e.size()));
  for (const double x : e.sorted()) w.f64(x);
}

void put_fit(ByteWriter& w, const PowerLawFit& f) {
  w.f64(f.alpha);
  w.f64(f.xmin);
  w.u64(static_cast<std::uint64_t>(f.n));
}

}  // namespace

std::string analysis_diff(const AnalysisReport& a, const AnalysisReport& b) {
  if (auto d = diff_summary(a.summary, b.summary); !d.empty()) return d;

  if (a.contacts.size() != b.contacts.size())
    return diff_count("contacts.size", a.contacts.size(), b.contacts.size());
  for (auto ia = a.contacts.begin(), ib = b.contacts.begin(); ia != a.contacts.end();
       ++ia, ++ib) {
    std::ostringstream key;
    key << "contacts[" << ia->first << "]";
    if (!bits_equal(ia->first, ib->first)) return key.str() + ": range key differs";
    if (auto d = diff_contacts(key.str(), ia->second, ib->second); !d.empty()) return d;
  }

  if (a.graphs.size() != b.graphs.size())
    return diff_count("graphs.size", a.graphs.size(), b.graphs.size());
  for (auto ia = a.graphs.begin(), ib = b.graphs.begin(); ia != a.graphs.end(); ++ia, ++ib) {
    std::ostringstream key;
    key << "graphs[" << ia->first << "]";
    if (!bits_equal(ia->first, ib->first)) return key.str() + ": range key differs";
    if (auto d = diff_graphs(key.str(), ia->second, ib->second); !d.empty()) return d;
  }

  if (auto d = diff_zones(a.zones, b.zones); !d.empty()) return d;
  if (auto d = diff_trips(a.trips, b.trips); !d.empty()) return d;

  if (a.flights.has_value() != b.flights.has_value()) return "flights: presence differs";
  if (a.flights) {
    if (auto d = diff_flights(*a.flights, *b.flights); !d.empty()) return d;
  }
  if (a.relations.has_value() != b.relations.has_value()) return "relations: presence differs";
  if (a.relations) {
    if (auto d = diff_relations(*a.relations, *b.relations); !d.empty()) return d;
  }
  return {};
}

std::uint32_t analysis_fingerprint(const AnalysisReport& report) {
  ByteWriter w;
  const TraceSummary& s = report.summary;
  w.u64(static_cast<std::uint64_t>(s.unique_users));
  w.f64(s.avg_concurrent);
  w.u64(static_cast<std::uint64_t>(s.max_concurrent));
  w.f64(s.duration);
  w.u64(static_cast<std::uint64_t>(s.snapshot_count));
  w.u64(static_cast<std::uint64_t>(s.gap_count));
  w.f64(s.gap_seconds);
  w.u64(static_cast<std::uint64_t>(s.degradation_count));
  w.f64(s.degraded_seconds);

  w.u64(static_cast<std::uint64_t>(report.contacts.size()));
  for (const auto& [range, c] : report.contacts) {
    w.f64(range);
    w.f64(c.range);
    w.u64(static_cast<std::uint64_t>(c.intervals.size()));
    for (const auto& iv : c.intervals) {
      w.u32(iv.a.value);
      w.u32(iv.b.value);
      w.f64(iv.start);
      w.f64(iv.end);
    }
    put_ecdf(w, c.contact_times);
    put_ecdf(w, c.inter_contact_times);
    put_ecdf(w, c.first_contact_times);
    w.u64(static_cast<std::uint64_t>(c.users_seen));
    w.u64(static_cast<std::uint64_t>(c.users_with_contact));
  }

  w.u64(static_cast<std::uint64_t>(report.graphs.size()));
  for (const auto& [range, g] : report.graphs) {
    w.f64(range);
    w.f64(g.range);
    put_ecdf(w, g.degrees);
    put_ecdf(w, g.diameters);
    put_ecdf(w, g.clustering);
    w.u64(static_cast<std::uint64_t>(g.snapshots_analyzed));
    w.f64(g.isolated_fraction);
  }

  const ZoneAnalysis& z = report.zones;
  w.f64(z.cell_size);
  w.u64(static_cast<std::uint64_t>(z.cells_per_side));
  put_ecdf(w, z.occupancy);
  w.f64(z.empty_fraction);
  w.u64(static_cast<std::uint64_t>(z.max_occupancy));
  w.u64(static_cast<std::uint64_t>(z.mean_per_cell.size()));
  for (const double m : z.mean_per_cell) w.f64(m);

  const TripAnalysis& t = report.trips;
  put_ecdf(w, t.travel_lengths);
  put_ecdf(w, t.effective_travel_times);
  put_ecdf(w, t.travel_times);
  w.u64(static_cast<std::uint64_t>(t.sessions));

  w.u8(report.flights ? 1 : 0);
  if (report.flights) {
    const FlightAnalysis& f = *report.flights;
    put_ecdf(w, f.flight_lengths);
    put_ecdf(w, f.pause_times);
    w.u64(static_cast<std::uint64_t>(f.sessions_analyzed));
    put_fit(w, f.flight_fit);
    put_fit(w, f.pause_fit);
  }

  w.u8(report.relations ? 1 : 0);
  if (report.relations) {
    const RelationSummary& r = *report.relations;
    w.u64(static_cast<std::uint64_t>(r.relations.size()));
    for (const auto& rel : r.relations) {
      w.u32(rel.a.value);
      w.u32(rel.b.value);
      w.u64(static_cast<std::uint64_t>(rel.encounters));
      w.f64(rel.total_contact);
      w.f64(rel.first_met);
      w.f64(rel.last_seen_together);
    }
    w.u64(static_cast<std::uint64_t>(r.user_count));
    w.f64(r.acquaintance_fraction);
    put_ecdf(w, r.encounter_counts);
    put_ecdf(w, r.tie_strengths);
    put_ecdf(w, r.acquaintance_degrees);
  }

  return crc32(w.bytes());
}

}  // namespace slmob
