// Trip analysis (Fig. 4 of the paper): per-user travel length, effective
// travel time (motion only) and travel/login time, computed from
// reconstructed sessions.
#pragma once

#include <vector>

#include "stats/ecdf.hpp"
#include "trace/sessions.hpp"
#include "trace/trace.hpp"

namespace slmob {

struct TripAnalysis {
  Ecdf travel_lengths;          // metres, one sample per session
  Ecdf effective_travel_times;  // seconds
  Ecdf travel_times;            // seconds (session duration)
  std::size_t sessions{0};
};

TripAnalysis analyze_trips(const Trace& trace,
                           const SessionExtractionOptions& options = {});

// Incremental trip analysis fed by a SessionStream sink. Sessions arrive in
// closure order; per-session metrics are buffered (the session itself is
// not) and emitted at finish() in (avatar, login) order — the batch
// extractor's order — so Ecdf sample sequences are bit-identical to
// analyze_trips.
class TripStream {
 public:
  explicit TripStream(const SessionExtractionOptions& options = {})
      : movement_epsilon_(options.movement_epsilon) {}

  void on_session(const Session& session);
  [[nodiscard]] TripAnalysis finish();

 private:
  struct Entry {
    AvatarId avatar;
    Seconds login{0.0};
    TripMetrics metrics;
  };
  double movement_epsilon_;
  std::vector<Entry> entries_;
};

}  // namespace slmob
