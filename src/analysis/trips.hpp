// Trip analysis (Fig. 4 of the paper): per-user travel length, effective
// travel time (motion only) and travel/login time, computed from
// reconstructed sessions.
#pragma once

#include "stats/ecdf.hpp"
#include "trace/sessions.hpp"
#include "trace/trace.hpp"

namespace slmob {

struct TripAnalysis {
  Ecdf travel_lengths;          // metres, one sample per session
  Ecdf effective_travel_times;  // seconds
  Ecdf travel_times;            // seconds (session duration)
  std::size_t sessions{0};
};

TripAnalysis analyze_trips(const Trace& trace,
                           const SessionExtractionOptions& options = {});

}  // namespace slmob
