// Batched cell-sorted proximity kernel shared by the batch, streaming and
// incremental analysis paths.
//
// Every §3 result of the paper reduces to the same per-snapshot question —
// "which avatar pairs are within r" — and the hash-grid answer (one
// unordered_map lookup per 3x3 neighbour cell, one sqrt per candidate pair)
// dominated analysis wall-clock. The kernel answers it from a cell-sorted
// structure-of-arrays layout instead:
//
//   build      bins every point into a uniform grid of cell size r_max and
//              counting-sorts it so each cell's x[] / y[] / original-index[]
//              lanes are contiguous (CSR cell-offset table). When the
//              bounding box is compact the cell table is dense (row-major
//              (cy, cx), O(n + cells)); widely scattered inputs fall back to
//              a sorted-key table with identical cell ordering, so both
//              layouts enumerate pairs in the same sequence.
//   enumerate  walks cells in row-major order and visits every unordered
//              cell pair at Chebyshev distance <= 1 exactly once: the cell
//              against itself, its east neighbour, and the contiguous
//              three-cell run below it (one tile, not three — the CSR layout
//              makes the south-west/south/south-east lanes adjacent). Each
//              tile computes dx*dx + dy*dy over contiguous lanes into a
//              scratch row — a branch-free, comparison-only loop the
//              compiler auto-vectorizes — then collects hits with
//              d2 <= squared_radius_threshold(r_max).
//   classify   fans the recorded hits into per-radius pair lists in a single
//              pass over the computed dist² (a pair within a smaller radius
//              is necessarily within r_max).
//
// Bit-identity with the historical SpatialGrid predicate
// (std::sqrt(dx*dx + dy*dy) <= r): squared_radius_threshold(r) is the
// largest double t with fl(sqrt(t)) <= r, and a correctly-rounded sqrt is
// monotone, so {d2 : fl(sqrt(d2)) <= r} == {d2 : d2 <= t} — the kernel
// accepts exactly the pairs the grid accepted, including ties at exactly
// distance r, without taking a square root per candidate. The distances the
// callers store (std::sqrt of the recorded d2) are bit-identical too, since
// dx*dx equals (-dx)*(-dx) exactly and the summation order matches
// Vec3::distance2d_to.
//
// All state is persistent scratch: a kernel reused across snapshots stops
// allocating once it has seen the largest one (gated by bench/alloc_counter
// in bench/pair_kernel.cpp). One kernel per worker thread; instances are
// not thread-safe.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/vec3.hpp"

namespace slmob {

// Largest double t such that std::sqrt(t) <= radius. Comparing squared
// distances against this threshold is exactly equivalent to comparing
// std::sqrt of them against `radius` (sqrt is correctly rounded, hence
// monotone). `radius` must be positive and finite.
[[nodiscard]] double squared_radius_threshold(double radius);

class PairKernel {
 public:
  // One in-range pair: fix indices i < j into the positions passed to run(),
  // and their squared planar distance.
  struct Hit {
    std::uint32_t i{0};
    std::uint32_t j{0};
    double d2{0.0};
  };

  using PairList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

  // build + enumerate: afterwards hits() holds every pair (i < j) with
  // planar distance <= r_max, in cell-traversal order. Throws
  // std::invalid_argument when r_max <= 0.
  void run(std::span<const Vec3> positions, double r_max);

  // Cell-sorts `positions` without enumerating pairs; near() answers point
  // queries against the built layout. run() == build() + enumerate().
  void build(std::span<const Vec3> positions, double r_max);
  void enumerate();

  [[nodiscard]] std::span<const Hit> hits() const { return hits_; }
  [[nodiscard]] std::size_t size() const { return n_; }

  // Appends each hit to lists[ri] for every ri with distance <= ranges[ri],
  // classified from the recorded dist² in one pass. `ranges` must be
  // ascending, each in (0, r_max]; `lists` must have ranges.size() entries.
  void classify(std::span<const double> ranges, PairList* lists);

  // Indices (into the built positions) within the build radius of `p`,
  // appended to `out` in cell-traversal order. Read-only: safe to call
  // concurrently once built.
  void near(const Vec3& p, std::vector<std::uint32_t>& out) const;

 private:
  void build_dense(std::span<const Vec3> positions, std::size_t cells);
  void build_sparse(std::span<const Vec3> positions);
  void enumerate_dense();
  void enumerate_sparse();
  // All pairs between lanes [a0, a1) and lanes [b0, b1) (disjoint ranges).
  void tile(std::size_t a0, std::size_t a1, std::size_t b0, std::size_t b1);
  // All pairs within lanes [s, e) of one cell.
  void tile_self(std::size_t s, std::size_t e);
  void scan_near(double px, double py, std::size_t b0, std::size_t b1,
                 std::vector<std::uint32_t>& out) const;

  [[nodiscard]] static std::uint64_t key_of(std::uint32_t gx, std::uint32_t gy) {
    return (static_cast<std::uint64_t>(gy) << 32) | gx;
  }

  std::size_t n_{0};
  double cell_{0.0};        // cell size == build radius
  double threshold2_{0.0};  // squared_radius_threshold(build radius)
  std::int64_t min_cx_{0};
  std::int64_t min_cy_{0};
  std::size_t grid_w_{0};  // dense table width/height (0 when sparse)
  std::size_t grid_h_{0};
  bool dense_{true};

  // Cell-sorted SoA lanes: xs_/ys_/idx_[k] describe the k-th point of the
  // sorted order; cell_start_ is the CSR offset table (dense: cell id
  // (cy*W + cx); sparse: index into cell_keys_).
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<std::uint32_t> idx_;
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint64_t> cell_keys_;  // sparse only, ascending

  // Build scratch.
  std::vector<std::int32_t> pcx_;
  std::vector<std::int32_t> pcy_;
  std::vector<std::uint32_t> point_cell_;
  std::vector<std::uint32_t> cursor_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed_;

  // Enumeration scratch and output.
  std::vector<double> d2buf_;
  std::vector<double> range_t2_;
  std::vector<Hit> hits_;
};

}  // namespace slmob
