// Flight/pause decomposition of user trajectories.
//
// The paper's conclusion calls for "further study in the specification of
// new metrics to define human mobility"; the natural candidates are the
// flight-length and pause-time statistics of Rhee et al. ("On the
// Levy-walk nature of human mobility", INFOCOM 2008 — the paper's ref [8]).
// This module extracts them from sampled traces:
//
//   * a *pause* is a maximal run of fixes with per-interval displacement
//     below `pause_speed_threshold` (metres/second);
//   * a *flight* is the straight-line displacement between two consecutive
//     pauses (turning angles below the sampling resolution are absorbed,
//     as in the original methodology's rectangular model simplification).
#pragma once

#include "stats/ecdf.hpp"
#include "stats/fit.hpp"
#include "trace/sessions.hpp"
#include "trace/trace.hpp"

namespace slmob {

struct FlightAnalysisOptions {
  // Below this speed a sampled interval counts as pausing. Coarse positions
  // are metre-quantised at 10 s sampling, so 0.15 m/s is the noise floor.
  double pause_speed_threshold{0.15};
  // Flights shorter than this are quantisation residue and are discarded.
  double min_flight_length{2.0};
  SessionExtractionOptions sessions;
};

struct FlightAnalysis {
  Ecdf flight_lengths;  // metres
  Ecdf pause_times;     // seconds
  std::size_t sessions_analyzed{0};
  // MLE power-law exponents (Rhee et al. report ~1.5-2 for human walks).
  PowerLawFit flight_fit;
  PowerLawFit pause_fit;
};

FlightAnalysis analyze_flights(const Trace& trace,
                               const FlightAnalysisOptions& options = {});

// Incremental flight/pause decomposition fed by a SessionStream sink. Each
// session is decomposed on arrival (only its samples are buffered, not the
// fixes); finish() replays the per-session sample runs in (avatar, login)
// order, matching analyze_flights bit for bit, fits included.
class FlightStream {
 public:
  explicit FlightStream(const FlightAnalysisOptions& options = {})
      : options_(options) {}

  void on_session(const Session& session);
  [[nodiscard]] FlightAnalysis finish();

 private:
  struct Entry {
    AvatarId avatar;
    Seconds login{0.0};
    std::vector<double> flight_lengths;  // in-session emission order
    std::vector<Seconds> pause_times;
  };
  FlightAnalysisOptions options_;
  std::vector<Entry> entries_;
  std::size_t sessions_analyzed_{0};
};

}  // namespace slmob
