#include "analysis/proximity_cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/pair_kernel.hpp"

namespace slmob {

ProximityCache::ProximityCache(const Trace& trace, const std::vector<double>& ranges,
                               ThreadPool* pool) {
  ranges_ = ranges;
  std::sort(ranges_.begin(), ranges_.end());
  ranges_.erase(std::unique(ranges_.begin(), ranges_.end()), ranges_.end());
  for (const double r : ranges_) {
    if (r <= 0.0) throw std::invalid_argument("ProximityCache: ranges must be positive");
  }

  const auto& snaps = trace.snapshots();
  positions_.resize(snaps.size());
  pair_lists_.resize(snaps.size());

  const auto build_snapshot = [&](std::size_t s) {
    const auto& fixes = snaps[s].fixes;
    auto& pos = positions_[s];
    pos.reserve(fixes.size());
    for (const auto& fix : fixes) pos.push_back(fix.pos);

    auto& lists = pair_lists_[s];
    lists.resize(ranges_.size());
    if (ranges_.empty() || pos.empty()) return;

    // One kernel pass at the largest radius answers every radius: a pair
    // within a smaller r is necessarily within r_max, and classify() fans
    // each hit into the per-radius lists from its recorded dist² — exactly
    // the <= r predicate a per-radius grid would apply. The kernel is
    // per-worker persistent scratch: after the first few snapshots the warm
    // path stops allocating.
    thread_local PairKernel kernel;
    kernel.run(pos, ranges_.back());
    kernel.classify(ranges_, lists.data());
  };

  if (pool != nullptr && pool->concurrency() > 1) {
    parallel_for(*pool, snaps.size(), build_snapshot);
  } else {
    for (std::size_t s = 0; s < snaps.size(); ++s) build_snapshot(s);
  }
}

std::size_t ProximityCache::range_index(double range) const {
  const auto it = std::lower_bound(ranges_.begin(), ranges_.end(), range);
  if (it == ranges_.end() || *it != range) {
    throw std::invalid_argument("ProximityCache: range was not requested at build time");
  }
  return static_cast<std::size_t>(it - ranges_.begin());
}

const ProximityCache::PairList& ProximityCache::pairs(std::size_t snap,
                                                      double range) const {
  return pair_lists_.at(snap).at(range_index(range));
}

}  // namespace slmob
