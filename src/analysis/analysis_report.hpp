// The complete result of analyzing one trace, as a plain value.
//
// Batch (run_experiment / analyze_*) and streaming (StreamingAnalyzer)
// pipelines both produce an AnalysisReport, and the two must agree bit for
// bit on the same input — that equivalence is the streaming engine's
// correctness contract and is asserted by tests and by the
// streaming_throughput bench. analysis_diff explains the first mismatch in
// words; analysis_fingerprint condenses a report to a CRC so forked bench
// processes can compare results across address spaces.
//
// Equality convention: Ecdfs compare by their sorted() sample sequence,
// bitwise. Sample *insertion* order is not part of the contract — the batch
// contact extractor already closes final contacts in hash-map order, so no
// reported quantity may depend on it (Ecdf::mean() is the only accessor
// that does, and nothing report-facing uses it).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "analysis/contacts.hpp"
#include "analysis/flights.hpp"
#include "analysis/graphs.hpp"
#include "analysis/relations.hpp"
#include "analysis/trips.hpp"
#include "analysis/zones.hpp"
#include "trace/trace.hpp"

namespace slmob {

struct AnalysisReport {
  TraceSummary summary;
  // Keyed by communication range; one entry per requested radius.
  std::map<double, ContactAnalysis> contacts;
  std::map<double, GraphMetrics> graphs;
  ZoneAnalysis zones;
  TripAnalysis trips;
  // Optional heavier analyses (off by default in both pipelines).
  std::optional<FlightAnalysis> flights;
  std::optional<RelationSummary> relations;
};

// Human-readable description of the first difference between two reports,
// or "" when they are equivalent. Scalars compare exactly (bitwise for
// doubles), Ecdfs by sorted sample sequence, interval/relation lists
// elementwise.
[[nodiscard]] std::string analysis_diff(const AnalysisReport& a, const AnalysisReport& b);

[[nodiscard]] inline bool analysis_equal(const AnalysisReport& a, const AnalysisReport& b) {
  return analysis_diff(a, b).empty();
}

// CRC-32 over a canonical serialization of the report (sorted Ecdf samples
// as raw f64 bits). Two reports are fingerprint-equal iff analysis_equal —
// up to CRC collision — which lets forked bench children compare results
// through tiny result files.
[[nodiscard]] std::uint32_t analysis_fingerprint(const AnalysisReport& report);

}  // namespace slmob
