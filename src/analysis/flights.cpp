#include "analysis/flights.hpp"

#include <algorithm>

namespace slmob {

FlightAnalysis analyze_flights(const Trace& trace, const FlightAnalysisOptions& options) {
  FlightAnalysis out;
  const auto sessions = extract_sessions(trace, options.sessions);
  out.sessions_analyzed = sessions.size();

  for (const auto& session : sessions) {
    if (session.positions.size() < 2) continue;

    // Classify each sampling interval as moving or paused.
    Vec3 flight_start = session.positions.front();
    bool in_pause = true;
    Seconds pause_start = session.times.front();

    for (std::size_t i = 1; i < session.positions.size(); ++i) {
      const Seconds dt = session.times[i] - session.times[i - 1];
      if (dt <= 0.0) continue;
      const double speed =
          session.positions[i].distance_to(session.positions[i - 1]) / dt;
      const bool moving = speed > options.pause_speed_threshold;
      if (moving && in_pause) {
        // Pause ends, flight begins.
        const Seconds pause = session.times[i - 1] - pause_start;
        if (pause > 0.0) out.pause_times.add(pause);
        flight_start = session.positions[i - 1];
        in_pause = false;
      } else if (!moving && !in_pause) {
        // Flight ends, pause begins.
        const double length = session.positions[i - 1].distance_to(flight_start);
        if (length >= options.min_flight_length) out.flight_lengths.add(length);
        pause_start = session.times[i - 1];
        in_pause = true;
      }
    }
    // Close whatever phase is open at logout.
    if (in_pause) {
      const Seconds pause = session.times.back() - pause_start;
      if (pause > 0.0) out.pause_times.add(pause);
    } else {
      const double length = session.positions.back().distance_to(flight_start);
      if (length >= options.min_flight_length) out.flight_lengths.add(length);
    }
  }

  if (!out.flight_lengths.empty()) {
    out.flight_fit =
        fit_power_law(out.flight_lengths.sorted(), options.min_flight_length);
  }
  if (!out.pause_times.empty()) {
    out.pause_fit = fit_power_law(out.pause_times.sorted(), 10.0);
  }
  return out;
}

void FlightStream::on_session(const Session& session) {
  ++sessions_analyzed_;  // batch counts every session, even unusable ones
  if (session.positions.size() < 2) return;

  Entry entry;
  entry.avatar = session.avatar;
  entry.login = session.login;

  // Same state machine as analyze_flights, emitting into the entry buffers.
  Vec3 flight_start = session.positions.front();
  bool in_pause = true;
  Seconds pause_start = session.times.front();
  for (std::size_t i = 1; i < session.positions.size(); ++i) {
    const Seconds dt = session.times[i] - session.times[i - 1];
    if (dt <= 0.0) continue;
    const double speed =
        session.positions[i].distance_to(session.positions[i - 1]) / dt;
    const bool moving = speed > options_.pause_speed_threshold;
    if (moving && in_pause) {
      const Seconds pause = session.times[i - 1] - pause_start;
      if (pause > 0.0) entry.pause_times.push_back(pause);
      flight_start = session.positions[i - 1];
      in_pause = false;
    } else if (!moving && !in_pause) {
      const double length = session.positions[i - 1].distance_to(flight_start);
      if (length >= options_.min_flight_length) entry.flight_lengths.push_back(length);
      pause_start = session.times[i - 1];
      in_pause = true;
    }
  }
  if (in_pause) {
    const Seconds pause = session.times.back() - pause_start;
    if (pause > 0.0) entry.pause_times.push_back(pause);
  } else {
    const double length = session.positions.back().distance_to(flight_start);
    if (length >= options_.min_flight_length) entry.flight_lengths.push_back(length);
  }
  if (!entry.flight_lengths.empty() || !entry.pause_times.empty()) {
    entries_.push_back(std::move(entry));
  }
}

FlightAnalysis FlightStream::finish() {
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    if (a.avatar != b.avatar) return a.avatar < b.avatar;
    return a.login < b.login;
  });
  FlightAnalysis out;
  out.sessions_analyzed = sessions_analyzed_;
  for (const Entry& e : entries_) {
    for (const double length : e.flight_lengths) out.flight_lengths.add(length);
    for (const Seconds pause : e.pause_times) out.pause_times.add(pause);
  }
  if (!out.flight_lengths.empty()) {
    out.flight_fit =
        fit_power_law(out.flight_lengths.sorted(), options_.min_flight_length);
  }
  if (!out.pause_times.empty()) {
    out.pause_fit = fit_power_law(out.pause_times.sorted(), 10.0);
  }
  return out;
}

}  // namespace slmob
