#include "analysis/spatial_index.hpp"

#include <cmath>
#include <stdexcept>

namespace slmob {

SpatialGrid::SpatialGrid(const std::vector<Vec3>& positions, double radius)
    : positions_(positions), radius_(radius), cell_(radius) {
  if (radius <= 0.0) throw std::invalid_argument("SpatialGrid: radius must be positive");
  coords_.reserve(positions_.size());
  cells_.reserve(positions_.size());
  for (std::uint32_t i = 0; i < positions_.size(); ++i) {
    const CellCoord c = coord_for(positions_[i]);
    coords_.push_back(c);
    cells_[pack(c.cx, c.cy)].push_back(i);
  }
}

SpatialGrid::CellKey SpatialGrid::pack(std::int32_t cx, std::int32_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

SpatialGrid::CellCoord SpatialGrid::coord_for(const Vec3& p) const {
  return {static_cast<std::int32_t>(std::floor(p.x / cell_)),
          static_cast<std::int32_t>(std::floor(p.y / cell_))};
}

template <typename Emit>
void SpatialGrid::for_each_pair(Emit&& emit) const {
  for (std::uint32_t i = 0; i < positions_.size(); ++i) {
    const CellCoord c = coords_[i];
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells_.find(pack(c.cx + dx, c.cy + dy));
        if (it == cells_.end()) continue;
        for (const std::uint32_t j : it->second) {
          if (j <= i) continue;
          const double d = positions_[i].distance2d_to(positions_[j]);
          if (d <= radius_) emit(i, j, d);
        }
      }
    }
  }
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> SpatialGrid::pairs_within() const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  out.reserve(positions_.size());
  for_each_pair([&](std::uint32_t i, std::uint32_t j, double) { out.emplace_back(i, j); });
  return out;
}

std::vector<IndexPairDistance> SpatialGrid::pairs_within_distance() const {
  std::vector<IndexPairDistance> out;
  out.reserve(positions_.size());
  for_each_pair([&](std::uint32_t i, std::uint32_t j, double d) {
    out.push_back({i, j, d});
  });
  return out;
}

std::vector<std::uint32_t> SpatialGrid::near_point(const Vec3& p) const {
  std::vector<std::uint32_t> out;
  near_point(p, out);
  return out;
}

void SpatialGrid::near_point(const Vec3& p, std::vector<std::uint32_t>& out) const {
  const CellCoord c = coord_for(p);
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = cells_.find(pack(c.cx + dx, c.cy + dy));
      if (it == cells_.end()) continue;
      for (const std::uint32_t j : it->second) {
        if (p.distance2d_to(positions_[j]) <= radius_) out.push_back(j);
      }
    }
  }
}

std::vector<std::uint32_t> SpatialGrid::neighbors_of(std::uint32_t i) const {
  std::vector<std::uint32_t> out;
  if (i >= positions_.size()) throw std::out_of_range("SpatialGrid::neighbors_of");
  const CellCoord c = coords_[i];
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = cells_.find(pack(c.cx + dx, c.cy + dy));
      if (it == cells_.end()) continue;
      for (const std::uint32_t j : it->second) {
        if (j != i && positions_[i].distance2d_to(positions_[j]) <= radius_) {
          out.push_back(j);
        }
      }
    }
  }
  return out;
}

}  // namespace slmob
