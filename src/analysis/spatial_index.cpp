#include "analysis/spatial_index.hpp"

#include <cmath>
#include <stdexcept>

namespace slmob {

SpatialGrid::SpatialGrid(const std::vector<Vec3>& positions, double radius)
    : positions_(positions), radius_(radius) {
  if (radius <= 0.0) throw std::invalid_argument("SpatialGrid: radius must be positive");
  kernel_.build(positions_, radius_);
}

void SpatialGrid::ensure_enumerated() const {
  if (!enumerated_) {
    kernel_.enumerate();
    enumerated_ = true;
  }
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> SpatialGrid::pairs_within() const {
  ensure_enumerated();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  out.reserve(kernel_.hits().size());
  for (const PairKernel::Hit& h : kernel_.hits()) out.emplace_back(h.i, h.j);
  return out;
}

std::vector<IndexPairDistance> SpatialGrid::pairs_within_distance() const {
  ensure_enumerated();
  std::vector<IndexPairDistance> out;
  out.reserve(kernel_.hits().size());
  for (const PairKernel::Hit& h : kernel_.hits()) {
    out.push_back({h.i, h.j, std::sqrt(h.d2)});
  }
  return out;
}

std::vector<std::uint32_t> SpatialGrid::near_point(const Vec3& p) const {
  std::vector<std::uint32_t> out;
  near_point(p, out);
  return out;
}

void SpatialGrid::near_point(const Vec3& p, std::vector<std::uint32_t>& out) const {
  kernel_.near(p, out);
}

std::vector<std::uint32_t> SpatialGrid::neighbors_of(std::uint32_t i) const {
  if (i >= positions_.size()) throw std::out_of_range("SpatialGrid::neighbors_of");
  std::vector<std::uint32_t> out;
  kernel_.near(positions_[i], out);
  // A point is within radius of itself; drop the query index (duplicate
  // positions at other indices legitimately stay).
  std::erase(out, i);
  return out;
}

}  // namespace slmob
