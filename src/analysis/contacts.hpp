// Contact-opportunity analysis (§3.1 of the paper).
//
// Given a sampled trace and a communication range r, a contact between two
// users is a maximal run of consecutive snapshots in which their distance is
// <= r. Because the trace is sampled every tau seconds, a contact observed
// in snapshots [t_s .. t_e] is credited duration (t_e - t_s) + tau: a pair
// seen together exactly once was in range for at least one sampling period.
//
// Metrics produced:
//  * CT  — contact time: duration of each contact interval;
//  * ICT — inter-contact time: gap between consecutive contacts of the same
//          pair (start_{k+1} - end_k);
//  * FT  — first contact time: per user, the wait between its first
//          appearance in the trace and its first contact with anyone
//          (users that never have a contact are excluded, i.e. censored).
//
// Coverage gaps: when the trace records crawler coverage gaps, every metric
// is censored at gap edges — contacts running into a gap are truncated at
// the gap start (never bridged across it), no ICT sample spans a gap, and
// users awaiting a first contact restart their FT observation after the gap.
// Gap-free traces are analyzed exactly as before, bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/ecdf.hpp"
#include "trace/trace.hpp"

namespace slmob {

// A closed contact interval between a pair of users (a.value < b.value).
struct ContactInterval {
  AvatarId a;
  AvatarId b;
  Seconds start{0.0};
  Seconds end{0.0};

  [[nodiscard]] Seconds duration() const { return end - start; }
};

struct ContactAnalysis {
  double range{0.0};
  std::vector<ContactInterval> intervals;  // time-ordered by start
  Ecdf contact_times;
  Ecdf inter_contact_times;
  Ecdf first_contact_times;
  std::size_t users_seen{0};
  std::size_t users_with_contact{0};
};

struct ContactOptions {
  // A pair unobserved (either user absent from a snapshot) is out of
  // contact; no gap tolerance is applied — this matches the conservative
  // reading of the paper's definition.
};

class ProximityCache;

// Extracts all contacts from `trace` with communication range `range`.
ContactAnalysis analyze_contacts(const Trace& trace, double range,
                                 const ContactOptions& options = {});

// Same, but reads per-snapshot in-range pairs from a prebuilt cache instead
// of building a SpatialGrid per snapshot. `range` must be one of the radii
// the cache was built with; `cache` must cover the same trace.
ContactAnalysis analyze_contacts(const Trace& trace, const ProximityCache& cache,
                                 double range, const ContactOptions& options = {});

}  // namespace slmob
