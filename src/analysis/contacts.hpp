// Contact-opportunity analysis (§3.1 of the paper).
//
// Given a sampled trace and a communication range r, a contact between two
// users is a maximal run of consecutive snapshots in which their distance is
// <= r. Because the trace is sampled every tau seconds, a contact observed
// in snapshots [t_s .. t_e] is credited duration (t_e - t_s) + tau: a pair
// seen together exactly once was in range for at least one sampling period.
//
// Metrics produced:
//  * CT  — contact time: duration of each contact interval;
//  * ICT — inter-contact time: gap between consecutive contacts of the same
//          pair (start_{k+1} - end_k);
//  * FT  — first contact time: per user, the wait between its first
//          appearance in the trace and its first contact with anyone
//          (users that never have a contact are excluded, i.e. censored).
//
// Coverage gaps: when the trace records crawler coverage gaps, every metric
// is censored at gap edges — contacts running into a gap are truncated at
// the gap start (never bridged across it), no ICT sample spans a gap, and
// users awaiting a first contact restart their FT observation after the gap.
// Gap-free traces are analyzed exactly as before, bit for bit.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "stats/ecdf.hpp"
#include "trace/stream.hpp"
#include "trace/trace.hpp"

namespace slmob {

// A closed contact interval between a pair of users (a.value < b.value).
struct ContactInterval {
  AvatarId a;
  AvatarId b;
  Seconds start{0.0};
  Seconds end{0.0};

  [[nodiscard]] Seconds duration() const { return end - start; }
};

struct ContactAnalysis {
  double range{0.0};
  std::vector<ContactInterval> intervals;  // time-ordered by start
  Ecdf contact_times;
  Ecdf inter_contact_times;
  Ecdf first_contact_times;
  std::size_t users_seen{0};
  std::size_t users_with_contact{0};
};

struct ContactOptions {
  // A pair unobserved (either user absent from a snapshot) is out of
  // contact; no gap tolerance is applied — this matches the conservative
  // reading of the paper's definition.
};

class ProximityCache;

// Extracts all contacts from `trace` with communication range `range`.
ContactAnalysis analyze_contacts(const Trace& trace, double range,
                                 const ContactOptions& options = {});

// Same, but reads per-snapshot in-range pairs from a prebuilt cache instead
// of building a SpatialGrid per snapshot. `range` must be one of the radii
// the cache was built with; `cache` must cover the same trace.
ContactAnalysis analyze_contacts(const Trace& trace, const ProximityCache& cache,
                                 double range, const ContactOptions& options = {});

// Incremental contact extraction over a snapshot stream: feed every covered
// snapshot (empty ones too — absence is what closes contacts) with its
// in-range pair list, in time order, and call finish() once. Censoring reads
// the shared GapTracker, which by the stream ordering contract already holds
// every gap relevant to the snapshot being processed, so results are
// bit-identical to analyze_contacts on the completed trace (gap-free traces
// included: with no gaps tracked, the censor branches never fire).
class ContactStream {
 public:
  using PairList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

  ContactStream(double range, Seconds tau, const GapTracker& gaps);

  // Optional: observe every contact interval as it closes (closure order;
  // per pair this is chronological). Used to chain relation analysis.
  void set_interval_sink(std::function<void(const ContactInterval&)> sink) {
    sink_ = std::move(sink);
  }

  void on_snapshot(const Snapshot& snapshot, const PairList& pairs);
  [[nodiscard]] ContactAnalysis finish();

 private:
  struct OpenContact {
    Seconds start;
    Seconds last_seen;
  };
  void close_contact(std::uint64_t key, const OpenContact& contact, Seconds end_cap);
  void censor_at_gap(Seconds cap);
  void derive_inter_contact_times();

  Seconds tau_;
  const GapTracker* gaps_;
  std::function<void(const ContactInterval&)> sink_;
  ContactAnalysis out_;
  std::unordered_map<std::uint64_t, OpenContact> open_;
  std::unordered_map<AvatarId, Seconds> first_seen_;
  std::unordered_map<AvatarId, Seconds> first_contact_;
  std::unordered_set<AvatarId> seen_ever_;
  std::vector<std::uint64_t> current_;  // scratch: this snapshot's pair keys
  // ICT is derived at finish() from consecutive intervals of the same pair
  // instead of a per-pair "end of previous contact" map — that map holds an
  // entry for every pair that ever met and was the stream's largest
  // non-output allocation on a day-long trace. The batch rule "a gap cuts
  // the ICT chain" (the map is cleared at every censor) is reproduced by a
  // censoring epoch: every censor bumps it, every interval records the
  // epoch of its closure, and consecutive contacts of a pair chain only
  // when their epochs match. An interval closed by the censor itself
  // records the pre-bump epoch, so — exactly like the map, which the
  // censor clears right after writing it — it can never chain forward.
  // Epoch storage is allocated lazily at the first censor; a gap-free
  // stream (no censors, every pair chains) records nothing.
  std::uint32_t censor_epoch_{0};
  std::vector<std::uint32_t> interval_epochs_;
  bool epochs_active_{false};
  void seed_seen_ever();
  bool seen_seeded_{false};
  bool have_prev_{false};
  Seconds prev_time_{0.0};
};

}  // namespace slmob
