// Relation ("acquaintance") graph analysis.
//
// Implements the future-work direction §5 of the paper sketches: "to build
// the network of 'relationships' among SL users. Based on the 'relation
// graph', new questions can be addressed such as the frequency and the
// strength of contact between acquaintances."
//
// The relation graph aggregates the whole measurement period: vertices are
// users, and an edge connects two users who shared at least
// `min_encounters` distinct contacts. Edges carry the paper's two proposed
// quantities:
//   * frequency — the number of distinct contact intervals of the pair;
//   * strength  — their total accumulated contact time.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "analysis/contacts.hpp"
#include "stats/ecdf.hpp"

namespace slmob {

struct Relation {
  AvatarId a;
  AvatarId b;
  std::size_t encounters{0};     // frequency of contact
  Seconds total_contact{0.0};    // strength of the tie
  Seconds first_met{0.0};
  Seconds last_seen_together{0.0};

  // Mean gap between consecutive encounters; 0 for single-encounter pairs.
  [[nodiscard]] Seconds mean_recontact_gap() const {
    if (encounters < 2) return 0.0;
    return (last_seen_together - first_met) / static_cast<double>(encounters - 1);
  }
};

struct RelationGraphOptions {
  // Pairs with fewer distinct contacts than this are chance proximity, not
  // an acquaintance.
  std::size_t min_encounters{2};
};

class RelationGraph {
 public:
  // Builds the graph from extracted contact intervals (analyze_contacts).
  RelationGraph(const std::vector<ContactInterval>& intervals,
                RelationGraphOptions options = {});

  [[nodiscard]] const std::vector<Relation>& relations() const { return relations_; }
  [[nodiscard]] std::size_t user_count() const { return degree_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return relations_.size(); }

  // Number of acquaintances of a user (0 if the user has none).
  [[nodiscard]] std::size_t degree(AvatarId user) const;

  // Distributions over edges / vertices:
  [[nodiscard]] Ecdf encounter_counts() const;   // frequency of contact
  [[nodiscard]] Ecdf tie_strengths() const;      // total contact seconds
  [[nodiscard]] Ecdf acquaintance_degrees() const;

  // Strongest ties first (by total contact time); at most `k` entries.
  [[nodiscard]] std::vector<Relation> strongest(std::size_t k) const;

  // Fraction of all pairs-with-any-contact that qualified as acquaintances
  // (repeated encounters). The paper's "are re-meetings common?" question.
  [[nodiscard]] double acquaintance_fraction() const { return acquaintance_fraction_; }

 private:
  std::vector<Relation> relations_;
  std::map<AvatarId, std::size_t> degree_;
  double acquaintance_fraction_{0.0};
};

// Value-type summary of a relation graph, as carried by an AnalysisReport.
struct RelationSummary {
  std::vector<Relation> relations;  // acquaintances, sorted by (a, b)
  std::size_t user_count{0};        // users with >= 1 acquaintance
  double acquaintance_fraction{0.0};
  Ecdf encounter_counts;
  Ecdf tie_strengths;
  Ecdf acquaintance_degrees;
};

// Snapshot of an existing graph into the summary form (the batch path).
RelationSummary summarize_relations(const RelationGraph& graph);

// Incremental relation aggregation fed by a ContactStream interval sink.
// Intervals of one pair arrive chronologically (contacts close in time
// order per pair), so per-pair accumulation order — and hence every
// floating-point sum — matches RelationGraph built from the full interval
// list. finish() is bit-identical to summarize_relations(RelationGraph(...)).
class RelationStream {
 public:
  explicit RelationStream(RelationGraphOptions options = {}) : options_(options) {}

  void on_interval(const ContactInterval& interval);
  [[nodiscard]] RelationSummary finish();

 private:
  RelationGraphOptions options_;
  std::unordered_map<std::uint64_t, Relation> pairs_;
};

}  // namespace slmob
