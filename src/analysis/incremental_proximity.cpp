#include "analysis/incremental_proximity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace slmob {

IncrementalProximity::IncrementalProximity(std::vector<double> ranges,
                                           double churn_threshold)
    : ranges_(std::move(ranges)), churn_threshold_(churn_threshold) {
  std::sort(ranges_.begin(), ranges_.end());
  ranges_.erase(std::unique(ranges_.begin(), ranges_.end()), ranges_.end());
  for (const double r : ranges_) {
    if (r <= 0.0) throw std::invalid_argument("ProximityCache: ranges must be positive");
  }
  if (!ranges_.empty()) cell_ = ranges_.back();
  lists_.resize(ranges_.size());
}

std::size_t IncrementalProximity::range_index(double range) const {
  const auto it = std::lower_bound(ranges_.begin(), ranges_.end(), range);
  if (it == ranges_.end() || *it != range) {
    throw std::invalid_argument("ProximityCache: range was not requested at build time");
  }
  return static_cast<std::size_t>(it - ranges_.begin());
}

std::uint64_t IncrementalProximity::pack(std::int32_t cx, std::int32_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

std::int32_t IncrementalProximity::cell_of(double v) const {
  return static_cast<std::int32_t>(std::floor(v / cell_));
}

void IncrementalProximity::advance(const Snapshot& snapshot) {
  const auto& fixes = snapshot.fixes;
  const std::size_t n = fixes.size();

  positions_.clear();
  positions_.reserve(n);
  for (const auto& fix : fixes) positions_.push_back(fix.pos);
  if (ranges_.empty()) return;

  ++epoch_;
  fix_slot_.assign(n, kNoSlot);

  // Classify this snapshot's fixes against the persistent state.
  std::size_t matched = 0;
  std::size_t moved = 0;
  std::size_t entered = 0;
  bool duplicate_ids = false;
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = slot_of_.find(fixes[i].id.value);
    if (it == slot_of_.end()) {
      ++entered;
      continue;
    }
    const std::uint32_t s = it->second;
    if (seen_epoch_[s] == epoch_) {
      duplicate_ids = true;
      break;
    }
    seen_epoch_[s] = epoch_;
    fix_slot_[i] = s;
    ++matched;
    if (!(slots_[s].pos == fixes[i].pos)) ++moved;
  }
  if (!duplicate_ids && entered > 1) {
    std::unordered_set<std::uint32_t> fresh;
    fresh.reserve(entered);
    for (std::size_t i = 0; i < n && !duplicate_ids; ++i) {
      if (fix_slot_[i] == kNoSlot && !fresh.insert(fixes[i].id.value).second) {
        duplicate_ids = true;
      }
    }
  }
  if (duplicate_ids) {
    // Two fixes sharing an id cannot live in the id-keyed slot state; answer
    // this snapshot from a one-off kernel pass and reseed on the next one.
    transient_snapshot();
    reset_state();
    ++rebuilds_;
    return;
  }

  const std::size_t departed = valid_ ? active_.size() - matched : 0;
  const std::size_t basis =
      std::max({n, valid_ ? active_.size() : std::size_t{0}, std::size_t{1}});
  const bool rebuild =
      !valid_ || static_cast<double>(entered + departed + moved) >
                     churn_threshold_ * static_cast<double>(basis);
  if (rebuild) {
    full_rebuild(snapshot);
    ++rebuilds_;
  } else {
    delta_update(snapshot);
    ++delta_updates_;
  }
  emit_lists(snapshot);
}

void IncrementalProximity::reset_state() {
  valid_ = false;
  slots_.clear();
  adj_.clear();
  free_.clear();
  slot_of_.clear();
  cells_.clear();
  active_.clear();
  seen_epoch_.clear();
  dirty_epoch_.clear();
  dirty_rank_.clear();
}

void IncrementalProximity::full_rebuild(const Snapshot& snapshot) {
  const auto& fixes = snapshot.fixes;
  const std::uint32_t n = static_cast<std::uint32_t>(fixes.size());

  reset_state();
  slots_.resize(n);
  adj_.assign(n, {});
  seen_epoch_.assign(n, epoch_);
  dirty_epoch_.assign(n, 0);
  dirty_rank_.assign(n, 0);
  active_.resize(n);
  slot_of_.reserve(n);
  cells_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Slot& s = slots_[i];
    s.id = fixes[i].id;
    s.pos = fixes[i].pos;
    s.cx = cell_of(s.pos.x);
    s.cy = cell_of(s.pos.y);
    cells_[pack(s.cx, s.cy)].push_back(i);
    slot_of_.emplace(s.id.value, i);
    fix_slot_[i] = i;
    active_[i] = i;
  }
  // Slot index == fix index after a rebuild, so the kernel's hits map
  // straight onto edges. std::sqrt of the recorded dist² is bit-identical to
  // the distance2d_to value the cell rescan on the delta path computes.
  kernel_.run(positions_, cell_);
  for (const PairKernel::Hit& h : kernel_.hits()) {
    add_edge(h.i, h.j, std::sqrt(h.d2));
  }
  valid_ = true;
}

void IncrementalProximity::add_edge(std::uint32_t a, std::uint32_t b,
                                    double distance) {
  adj_[a].push_back({b, static_cast<std::uint32_t>(adj_[b].size()), distance});
  adj_[b].push_back(
      {a, static_cast<std::uint32_t>(adj_[a].size()) - 1, distance});
}

void IncrementalProximity::remove_adjacency(std::uint32_t slot) {
  // There is at most one edge per pair and never a self-edge, so the entry
  // swapped into the vacated position can never belong to `slot` — the loop
  // only ever mutates peers' lists, and adj_[slot] stays stable under it.
  for (const Edge& e : adj_[slot]) {
    auto& peer_edges = adj_[e.peer];
    const std::uint32_t k = e.twin;
    peer_edges[k] = peer_edges.back();
    peer_edges.pop_back();
    if (k < peer_edges.size()) {
      const Edge& moved = peer_edges[k];
      adj_[moved.peer][moved.twin].twin = k;
    }
  }
  adj_[slot].clear();
}

void IncrementalProximity::remove_from_cell(std::uint32_t slot) {
  const auto it = cells_.find(pack(slots_[slot].cx, slots_[slot].cy));
  auto& list = it->second;
  for (std::size_t k = 0; k < list.size(); ++k) {
    if (list[k] == slot) {
      list[k] = list.back();
      list.pop_back();
      break;
    }
  }
  if (list.empty()) cells_.erase(it);
}

void IncrementalProximity::mark_dirty(std::uint32_t slot) {
  dirty_epoch_[slot] = epoch_;
  dirty_rank_[slot] = static_cast<std::uint32_t>(dirty_.size());
  dirty_.push_back(slot);
}

std::uint32_t IncrementalProximity::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t s = free_.back();
    free_.pop_back();
    return s;
  }
  const std::uint32_t s = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  adj_.emplace_back();
  seen_epoch_.push_back(0);
  dirty_epoch_.push_back(0);
  dirty_rank_.push_back(0);
  return s;
}

void IncrementalProximity::delta_update(const Snapshot& snapshot) {
  const auto& fixes = snapshot.fixes;
  const std::size_t n = fixes.size();
  dirty_.clear();

  // 1. Departures: slots live last snapshot but absent from this one. Their
  // edges must go first so a freed slot reused below starts clean.
  for (const std::uint32_t s : active_) {
    if (seen_epoch_[s] == epoch_) continue;
    remove_adjacency(s);
    remove_from_cell(s);
    slot_of_.erase(slots_[s].id.value);
    free_.push_back(s);
  }

  // 2. Moves: drop stale edges, re-home the cell entry, update the position.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t s = fix_slot_[i];
    if (s == kNoSlot || slots_[s].pos == fixes[i].pos) continue;
    remove_adjacency(s);
    const std::int32_t cx = cell_of(fixes[i].pos.x);
    const std::int32_t cy = cell_of(fixes[i].pos.y);
    if (cx != slots_[s].cx || cy != slots_[s].cy) {
      remove_from_cell(s);
      slots_[s].cx = cx;
      slots_[s].cy = cy;
      cells_[pack(cx, cy)].push_back(s);
    }
    slots_[s].pos = fixes[i].pos;
    mark_dirty(s);
  }

  // 3. Arrivals.
  for (std::size_t i = 0; i < n; ++i) {
    if (fix_slot_[i] != kNoSlot) continue;
    const std::uint32_t s = alloc_slot();
    Slot& slot = slots_[s];
    slot.id = fixes[i].id;
    slot.pos = fixes[i].pos;
    slot.cx = cell_of(slot.pos.x);
    slot.cy = cell_of(slot.pos.y);
    cells_[pack(slot.cx, slot.cy)].push_back(s);
    slot_of_.emplace(slot.id.value, s);
    seen_epoch_[s] = epoch_;
    fix_slot_[i] = s;
    mark_dirty(s);
  }

  // 4. Rescan: every dirty slot re-derives its edges from the 3x3 cell
  // block. A dirty-dirty pair would be found twice; the rank check keeps
  // only the discovery from the earlier-marked slot.
  for (const std::uint32_t s : dirty_) {
    const Slot& a = slots_[s];
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells_.find(pack(a.cx + dx, a.cy + dy));
        if (it == cells_.end()) continue;
        for (const std::uint32_t t : it->second) {
          if (t == s) continue;
          if (dirty_epoch_[t] == epoch_ && dirty_rank_[t] < dirty_rank_[s]) continue;
          const double d = a.pos.distance2d_to(slots_[t].pos);
          if (d <= cell_) add_edge(s, t, d);
        }
      }
    }
  }

  active_.resize(n);
  for (std::size_t i = 0; i < n; ++i) active_[i] = fix_slot_[i];
}

void IncrementalProximity::emit_lists(const Snapshot& snapshot) {
  const std::size_t n = snapshot.fixes.size();
  for (auto& list : lists_) list.clear();
  if (n == 0) return;
  fix_of_slot_.resize(slots_.size());
  for (std::size_t i = 0; i < n; ++i) {
    fix_of_slot_[fix_slot_[i]] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t fi = static_cast<std::uint32_t>(i);
    for (const Edge& e : adj_[fix_slot_[i]]) {
      const std::uint32_t fj = fix_of_slot_[e.peer];
      if (fj <= fi) continue;
      for (std::size_t ri = 0; ri < ranges_.size(); ++ri) {
        if (e.distance <= ranges_[ri]) lists_[ri].emplace_back(fi, fj);
      }
    }
  }
}

void IncrementalProximity::transient_snapshot() {
  // One kernel pass over the raw fix list; handles duplicate ids because it
  // never keys by id. positions_ was already filled by advance().
  for (auto& list : lists_) list.clear();
  kernel_.run(positions_, cell_);
  kernel_.classify(ranges_, lists_.data());
}

}  // namespace slmob
