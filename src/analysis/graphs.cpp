#include "analysis/graphs.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "analysis/spatial_index.hpp"

namespace slmob {

LosGraph::LosGraph(const Snapshot& snapshot, double range) {
  adj_.resize(snapshot.fixes.size());
  std::vector<Vec3> positions;
  positions.reserve(snapshot.fixes.size());
  for (const auto& fix : snapshot.fixes) positions.push_back(fix.pos);
  if (positions.empty()) return;
  const SpatialGrid grid(positions, range);
  for (const auto& [i, j] : grid.pairs_within()) {
    adj_[i].push_back(j);
    adj_[j].push_back(i);
  }
}

std::size_t LosGraph::edge_count() const {
  std::size_t total = 0;
  for (const auto& n : adj_) total += n.size();
  return total / 2;
}

std::vector<std::vector<std::uint32_t>> LosGraph::components() const {
  std::vector<std::vector<std::uint32_t>> out;
  std::vector<char> visited(adj_.size(), 0);
  for (std::uint32_t start = 0; start < adj_.size(); ++start) {
    if (visited[start]) continue;
    std::vector<std::uint32_t> comp;
    std::deque<std::uint32_t> queue{start};
    visited[start] = 1;
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop_front();
      comp.push_back(u);
      for (const std::uint32_t v : adj_[u]) {
        if (!visited[v]) {
          visited[v] = 1;
          queue.push_back(v);
        }
      }
    }
    out.push_back(std::move(comp));
  }
  return out;
}

std::size_t LosGraph::eccentricity(std::uint32_t start) const {
  std::vector<std::int32_t> dist(adj_.size(), -1);
  std::deque<std::uint32_t> queue{start};
  dist[start] = 0;
  std::size_t ecc = 0;
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    ecc = std::max(ecc, static_cast<std::size_t>(dist[u]));
    for (const std::uint32_t v : adj_[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return ecc;
}

std::size_t LosGraph::largest_component_diameter() const {
  const auto comps = components();
  if (comps.empty()) return 0;
  const auto largest = std::max_element(
      comps.begin(), comps.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  std::size_t diameter = 0;
  for (const std::uint32_t u : *largest) {
    diameter = std::max(diameter, eccentricity(u));
  }
  return diameter;
}

double LosGraph::clustering(std::size_t i) const {
  const auto& nbrs = adj_.at(i);
  const std::size_t k = nbrs.size();
  if (k < 2) return 0.0;
  std::size_t links = 0;
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) {
      const auto& na = adj_[nbrs[a]];
      if (std::find(na.begin(), na.end(), nbrs[b]) != na.end()) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) / (static_cast<double>(k) * static_cast<double>(k - 1));
}

double LosGraph::mean_clustering() const {
  if (adj_.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < adj_.size(); ++i) total += clustering(i);
  return total / static_cast<double>(adj_.size());
}

GraphMetrics analyze_graphs(const Trace& trace, double range, std::size_t stride) {
  if (stride == 0) throw std::invalid_argument("analyze_graphs: stride must be >= 1");
  GraphMetrics out;
  out.range = range;
  std::size_t isolated = 0;
  std::size_t degree_samples = 0;
  const auto& snaps = trace.snapshots();
  for (std::size_t s = 0; s < snaps.size(); s += stride) {
    const auto& snap = snaps[s];
    if (snap.fixes.empty()) continue;
    const LosGraph graph(snap, range);
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      const auto deg = static_cast<double>(graph.degree(i));
      out.degrees.add(deg);
      ++degree_samples;
      if (graph.degree(i) == 0) ++isolated;
    }
    out.diameters.add(static_cast<double>(graph.largest_component_diameter()));
    out.clustering.add(graph.mean_clustering());
    ++out.snapshots_analyzed;
  }
  out.isolated_fraction =
      degree_samples == 0 ? 0.0
                          : static_cast<double>(isolated) / static_cast<double>(degree_samples);
  return out;
}

}  // namespace slmob
