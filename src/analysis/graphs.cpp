#include "analysis/graphs.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "analysis/proximity_cache.hpp"
#include "analysis/spatial_index.hpp"
#include "util/thread_pool.hpp"

namespace slmob {

LosGraph::LosGraph(const Snapshot& snapshot, double range) {
  adj_.resize(snapshot.fixes.size());
  std::vector<Vec3> positions;
  positions.reserve(snapshot.fixes.size());
  for (const auto& fix : snapshot.fixes) positions.push_back(fix.pos);
  if (positions.empty()) return;
  const SpatialGrid grid(positions, range);
  add_pairs(grid.pairs_within());
  sort_adjacency();
}

LosGraph::LosGraph(std::size_t node_count,
                   const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs) {
  adj_.resize(node_count);
  add_pairs(pairs);
  sort_adjacency();
}

void LosGraph::add_pairs(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs) {
  for (const auto& [i, j] : pairs) {
    adj_[i].push_back(j);
    adj_[j].push_back(i);
  }
}

void LosGraph::sort_adjacency() {
  for (auto& n : adj_) std::sort(n.begin(), n.end());
}

std::size_t LosGraph::edge_count() const {
  std::size_t total = 0;
  for (const auto& n : adj_) total += n.size();
  return total / 2;
}

std::vector<std::vector<std::uint32_t>> LosGraph::components() const {
  std::vector<std::vector<std::uint32_t>> out;
  std::vector<char> visited(adj_.size(), 0);
  for (std::uint32_t start = 0; start < adj_.size(); ++start) {
    if (visited[start]) continue;
    std::vector<std::uint32_t> comp;
    std::deque<std::uint32_t> queue{start};
    visited[start] = 1;
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop_front();
      comp.push_back(u);
      for (const std::uint32_t v : adj_[u]) {
        if (!visited[v]) {
          visited[v] = 1;
          queue.push_back(v);
        }
      }
    }
    out.push_back(std::move(comp));
  }
  return out;
}

std::size_t LosGraph::eccentricity(std::uint32_t start) const {
  std::vector<std::int32_t> dist(adj_.size(), -1);
  std::deque<std::uint32_t> queue{start};
  dist[start] = 0;
  std::size_t ecc = 0;
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    ecc = std::max(ecc, static_cast<std::size_t>(dist[u]));
    for (const std::uint32_t v : adj_[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return ecc;
}

std::size_t LosGraph::largest_component_diameter() const {
  const auto comps = components();
  if (comps.empty()) return 0;
  const auto largest = std::max_element(
      comps.begin(), comps.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  if (largest->size() < 2) return 0;
  // One BFS per component node, sharing the distance array and a flat queue
  // across sweeps; only the component's entries need resetting in between.
  std::vector<std::int32_t> dist(adj_.size(), -1);
  std::vector<std::uint32_t> queue;
  queue.reserve(largest->size());
  std::size_t diameter = 0;
  for (const std::uint32_t src : *largest) {
    for (const std::uint32_t u : *largest) dist[u] = -1;
    queue.clear();
    queue.push_back(src);
    dist[src] = 0;
    std::size_t ecc = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t u = queue[head];
      ecc = std::max(ecc, static_cast<std::size_t>(dist[u]));
      for (const std::uint32_t v : adj_[u]) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          queue.push_back(v);
        }
      }
    }
    diameter = std::max(diameter, ecc);
  }
  return diameter;
}

double LosGraph::clustering(std::size_t i) const {
  const auto& nbrs = adj_.at(i);
  const std::size_t k = nbrs.size();
  if (k < 2) return 0.0;
  std::size_t links = 0;
  for (std::size_t a = 0; a < k; ++a) {
    const auto& na = adj_[nbrs[a]];
    for (std::size_t b = a + 1; b < k; ++b) {
      if (std::binary_search(na.begin(), na.end(), nbrs[b])) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) / (static_cast<double>(k) * static_cast<double>(k - 1));
}

double LosGraph::mean_clustering() const {
  if (adj_.empty()) return 0.0;
  // Neighbour-mark triangle counting: for node i, flag N(i), then walk each
  // neighbour's adjacency counting flagged entries. O(sum_a deg(a)^2) array
  // probes instead of O(k^2 log k) binary searches per node, with the exact
  // same integer link counts (so the summed doubles are bit-identical to
  // summing clustering(i)).
  std::vector<char> marked(adj_.size(), 0);
  double total = 0.0;
  for (std::size_t i = 0; i < adj_.size(); ++i) {
    const auto& nbrs = adj_[i];
    const std::size_t k = nbrs.size();
    if (k < 2) continue;
    for (const std::uint32_t a : nbrs) marked[a] = 1;
    std::size_t links = 0;
    for (const std::uint32_t a : nbrs) {
      for (const std::uint32_t b : adj_[a]) {
        if (b > a && marked[b]) ++links;
      }
    }
    for (const std::uint32_t a : nbrs) marked[a] = 0;
    total +=
        2.0 * static_cast<double>(links) / (static_cast<double>(k) * static_cast<double>(k - 1));
  }
  return total / static_cast<double>(adj_.size());
}

namespace {

// Partial aggregate over one contiguous chunk of snapshots. Counts are kept
// raw so chunk merging can recompute the isolated fraction exactly.
struct GraphChunk {
  Ecdf degrees;
  Ecdf diameters;
  Ecdf clustering;
  std::size_t snapshots_analyzed{0};
  std::size_t isolated{0};
  std::size_t degree_samples{0};
};

// Aggregates metrics of one snapshot graph into a chunk.
void accumulate(GraphChunk& chunk, const LosGraph& graph) {
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    const std::size_t deg = graph.degree(i);
    chunk.degrees.add(static_cast<double>(deg));
    ++chunk.degree_samples;
    if (deg == 0) ++chunk.isolated;
  }
  chunk.diameters.add(static_cast<double>(graph.largest_component_diameter()));
  chunk.clustering.add(graph.mean_clustering());
  ++chunk.snapshots_analyzed;
}

GraphMetrics finalize(std::vector<GraphChunk> chunks, double range) {
  GraphMetrics out;
  out.range = range;
  std::size_t isolated = 0;
  std::size_t degree_samples = 0;
  for (auto& chunk : chunks) {
    out.degrees.merge(chunk.degrees);
    out.diameters.merge(chunk.diameters);
    out.clustering.merge(chunk.clustering);
    out.snapshots_analyzed += chunk.snapshots_analyzed;
    isolated += chunk.isolated;
    degree_samples += chunk.degree_samples;
  }
  out.isolated_fraction =
      degree_samples == 0 ? 0.0
                          : static_cast<double>(isolated) / static_cast<double>(degree_samples);
  return out;
}

}  // namespace

GraphMetrics analyze_graphs(const Trace& trace, double range, std::size_t stride) {
  if (stride == 0) throw std::invalid_argument("analyze_graphs: stride must be >= 1");
  GraphChunk chunk;
  const auto& snaps = trace.snapshots();
  const bool gap_aware = !trace.gaps().empty();
  for (std::size_t s = 0; s < snaps.size(); s += stride) {
    const auto& snap = snaps[s];
    if (snap.fixes.empty()) continue;
    // Snapshots inside a coverage gap carry no valid observation.
    if (gap_aware && !trace.covered_at(snap.time)) continue;
    accumulate(chunk, LosGraph(snap, range));
  }
  std::vector<GraphChunk> chunks;
  chunks.push_back(std::move(chunk));
  return finalize(std::move(chunks), range);
}

GraphMetrics analyze_graphs(const Trace& trace, const ProximityCache& cache,
                            double range, std::size_t stride, ThreadPool* pool) {
  if (stride == 0) throw std::invalid_argument("analyze_graphs: stride must be >= 1");
  const auto& snaps = trace.snapshots();
  const bool gap_aware = !trace.gaps().empty();
  std::vector<std::size_t> indices;
  indices.reserve(snaps.size() / stride + 1);
  for (std::size_t s = 0; s < snaps.size(); s += stride) {
    if (snaps[s].fixes.empty()) continue;
    if (gap_aware && !trace.covered_at(snaps[s].time)) continue;
    indices.push_back(s);
  }

  const auto analyze_index = [&](std::size_t s) {
    return LosGraph(snaps[s].fixes.size(), cache.pairs(s, range));
  };

  // Contiguous chunks of the index list; merged in chunk order, the ECDF
  // sample sequences concatenate to exactly the sequential snapshot order,
  // whatever the chunk count or scheduling.
  std::size_t n_chunks = 1;
  if (pool != nullptr && pool->concurrency() > 1 && indices.size() > 1) {
    n_chunks = std::min(indices.size(), pool->concurrency() * 4);
  }
  const std::size_t per_chunk = (indices.size() + n_chunks - 1) / std::max<std::size_t>(n_chunks, 1);

  const auto build_chunk = [&](std::size_t c) {
    GraphChunk chunk;
    const std::size_t lo = c * per_chunk;
    const std::size_t hi = std::min(indices.size(), lo + per_chunk);
    for (std::size_t k = lo; k < hi; ++k) {
      accumulate(chunk, analyze_index(indices[k]));
    }
    return chunk;
  };

  std::vector<GraphChunk> chunks;
  if (n_chunks > 1) {
    chunks = parallel_map<GraphChunk>(*pool, n_chunks, build_chunk);
  } else {
    chunks.push_back(build_chunk(0));
  }
  return finalize(std::move(chunks), range);
}

void GraphStream::on_snapshot(
    std::size_t node_count,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs) {
  if (node_count == 0) return;  // batch skips empty snapshots
  const auto n = static_cast<std::uint32_t>(node_count);

  // CSR adjacency by counting sort: degree pass, prefix sum, scatter.
  csr_offsets_.assign(n + 1, 0);
  for (const auto& [i, j] : pairs) {
    ++csr_offsets_[i + 1];
    ++csr_offsets_[j + 1];
  }
  for (std::uint32_t i = 0; i < n; ++i) csr_offsets_[i + 1] += csr_offsets_[i];
  csr_cursor_.assign(csr_offsets_.begin(), csr_offsets_.end() - 1);
  csr_adj_.resize(pairs.size() * 2);
  for (const auto& [i, j] : pairs) {
    csr_adj_[csr_cursor_[i]++] = j;
    csr_adj_[csr_cursor_[j]++] = i;
  }
  const auto nbr_begin = [&](std::uint32_t i) { return csr_offsets_[i]; };
  const auto nbr_end = [&](std::uint32_t i) { return csr_offsets_[i + 1]; };

  // Degree samples, in node order like the batch loop.
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t deg = nbr_end(i) - nbr_begin(i);
    degrees_.add(static_cast<double>(deg));
    ++degree_samples_;
    if (deg == 0) ++isolated_;
  }

  // Largest connected component (first one wins a size tie, matching
  // LosGraph::components + max_element on discovery order). comp_ doubles
  // as the BFS queue: a component is exactly what the BFS visits.
  visited_.assign(n, 0);
  largest_.clear();
  for (std::uint32_t start = 0; start < n; ++start) {
    if (visited_[start]) continue;
    comp_.clear();
    comp_.push_back(start);
    visited_[start] = 1;
    for (std::size_t head = 0; head < comp_.size(); ++head) {
      const std::uint32_t u = comp_[head];
      for (std::uint32_t e = nbr_begin(u); e < nbr_end(u); ++e) {
        const std::uint32_t v = csr_adj_[e];
        if (!visited_[v]) {
          visited_[v] = 1;
          comp_.push_back(v);
        }
      }
    }
    if (comp_.size() > largest_.size()) std::swap(largest_, comp_);
  }

  // Diameter: BFS from every node of the largest component, resetting only
  // that component's distances between sweeps.
  std::size_t diameter = 0;
  if (largest_.size() >= 2) {
    dist_.assign(n, -1);
    for (const std::uint32_t src : largest_) {
      for (const std::uint32_t u : largest_) dist_[u] = -1;
      comp_.clear();
      comp_.push_back(src);
      dist_[src] = 0;
      std::size_t ecc = 0;
      for (std::size_t head = 0; head < comp_.size(); ++head) {
        const std::uint32_t u = comp_[head];
        ecc = std::max(ecc, static_cast<std::size_t>(dist_[u]));
        for (std::uint32_t e = nbr_begin(u); e < nbr_end(u); ++e) {
          const std::uint32_t v = csr_adj_[e];
          if (dist_[v] < 0) {
            dist_[v] = dist_[u] + 1;
            comp_.push_back(v);
          }
        }
      }
      diameter = std::max(diameter, ecc);
    }
  }
  diameters_.add(static_cast<double>(diameter));

  // Mean clustering by neighbour marking, same integer link counts (and so
  // the same floating-point sum) as LosGraph::mean_clustering.
  marked_.assign(n, 0);
  double total = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::size_t k = nbr_end(i) - nbr_begin(i);
    if (k < 2) continue;
    for (std::uint32_t e = nbr_begin(i); e < nbr_end(i); ++e) marked_[csr_adj_[e]] = 1;
    std::size_t links = 0;
    for (std::uint32_t e = nbr_begin(i); e < nbr_end(i); ++e) {
      const std::uint32_t a = csr_adj_[e];
      for (std::uint32_t f = nbr_begin(a); f < nbr_end(a); ++f) {
        const std::uint32_t b = csr_adj_[f];
        if (b > a && marked_[b]) ++links;
      }
    }
    for (std::uint32_t e = nbr_begin(i); e < nbr_end(i); ++e) marked_[csr_adj_[e]] = 0;
    total += 2.0 * static_cast<double>(links) /
             (static_cast<double>(k) * static_cast<double>(k - 1));
  }
  clustering_.add(total / static_cast<double>(n));
  ++snapshots_analyzed_;
}

GraphMetrics GraphStream::finish() {
  GraphMetrics out;
  out.range = range_;
  out.degrees = std::move(degrees_);
  out.diameters = std::move(diameters_);
  out.clustering = std::move(clustering_);
  out.snapshots_analyzed = snapshots_analyzed_;
  out.isolated_fraction =
      degree_samples_ == 0
          ? 0.0
          : static_cast<double>(isolated_) / static_cast<double>(degree_samples_);
  return out;
}

}  // namespace slmob
