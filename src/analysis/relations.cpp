#include "analysis/relations.hpp"

#include <algorithm>
#include <unordered_map>

namespace slmob {
namespace {

std::uint64_t pair_key(AvatarId a, AvatarId b) {
  const auto lo = std::min(a.value, b.value);
  const auto hi = std::max(a.value, b.value);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

RelationGraph::RelationGraph(const std::vector<ContactInterval>& intervals,
                             RelationGraphOptions options) {
  std::unordered_map<std::uint64_t, Relation> pairs;
  for (const auto& interval : intervals) {
    auto [it, inserted] = pairs.try_emplace(pair_key(interval.a, interval.b));
    Relation& rel = it->second;
    if (inserted) {
      rel.a = AvatarId{std::min(interval.a.value, interval.b.value)};
      rel.b = AvatarId{std::max(interval.a.value, interval.b.value)};
      rel.first_met = interval.start;
    }
    rel.first_met = std::min(rel.first_met, interval.start);
    rel.last_seen_together = std::max(rel.last_seen_together, interval.end);
    ++rel.encounters;
    rel.total_contact += interval.duration();
  }

  std::size_t acquaintances = 0;
  // slmob-lint: allow(ordered-iteration) -- relations_ is sorted canonically right after this loop; degree_ is an ordered map
  for (auto& [key, rel] : pairs) {
    if (rel.encounters >= options.min_encounters) {
      ++acquaintances;
      ++degree_[rel.a];
      ++degree_[rel.b];
      relations_.push_back(rel);
    }
  }
  if (!pairs.empty()) {
    acquaintance_fraction_ =
        static_cast<double>(acquaintances) / static_cast<double>(pairs.size());
  }
  std::sort(relations_.begin(), relations_.end(), [](const Relation& x, const Relation& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
}

std::size_t RelationGraph::degree(AvatarId user) const {
  const auto it = degree_.find(user);
  return it == degree_.end() ? 0 : it->second;
}

Ecdf RelationGraph::encounter_counts() const {
  Ecdf out;
  for (const auto& rel : relations_) out.add(static_cast<double>(rel.encounters));
  return out;
}

Ecdf RelationGraph::tie_strengths() const {
  Ecdf out;
  for (const auto& rel : relations_) out.add(rel.total_contact);
  return out;
}

Ecdf RelationGraph::acquaintance_degrees() const {
  Ecdf out;
  for (const auto& [user, deg] : degree_) out.add(static_cast<double>(deg));
  return out;
}

std::vector<Relation> RelationGraph::strongest(std::size_t k) const {
  std::vector<Relation> sorted = relations_;
  std::sort(sorted.begin(), sorted.end(), [](const Relation& x, const Relation& y) {
    return x.total_contact > y.total_contact;
  });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

RelationSummary summarize_relations(const RelationGraph& graph) {
  RelationSummary out;
  out.relations = graph.relations();
  out.user_count = graph.user_count();
  out.acquaintance_fraction = graph.acquaintance_fraction();
  out.encounter_counts = graph.encounter_counts();
  out.tie_strengths = graph.tie_strengths();
  out.acquaintance_degrees = graph.acquaintance_degrees();
  return out;
}

void RelationStream::on_interval(const ContactInterval& interval) {
  auto [it, inserted] = pairs_.try_emplace(pair_key(interval.a, interval.b));
  Relation& rel = it->second;
  if (inserted) {
    rel.a = AvatarId{std::min(interval.a.value, interval.b.value)};
    rel.b = AvatarId{std::max(interval.a.value, interval.b.value)};
    rel.first_met = interval.start;
  }
  rel.first_met = std::min(rel.first_met, interval.start);
  rel.last_seen_together = std::max(rel.last_seen_together, interval.end);
  ++rel.encounters;
  rel.total_contact += interval.duration();
}

RelationSummary RelationStream::finish() {
  RelationSummary out;
  std::size_t acquaintances = 0;
  std::map<AvatarId, std::size_t> degree;
  for (auto& [key, rel] : pairs_) {
    if (rel.encounters >= options_.min_encounters) {
      ++acquaintances;
      ++degree[rel.a];
      ++degree[rel.b];
      out.relations.push_back(rel);
    }
  }
  if (!pairs_.empty()) {
    out.acquaintance_fraction =
        static_cast<double>(acquaintances) / static_cast<double>(pairs_.size());
  }
  std::sort(out.relations.begin(), out.relations.end(),
            [](const Relation& x, const Relation& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  out.user_count = degree.size();
  for (const auto& rel : out.relations) {
    out.encounter_counts.add(static_cast<double>(rel.encounters));
    out.tie_strengths.add(rel.total_contact);
  }
  for (const auto& [user, deg] : degree) {
    out.acquaintance_degrees.add(static_cast<double>(deg));
  }
  return out;
}

}  // namespace slmob
