// Line-of-sight network analysis (§3.2 of the paper).
//
// For each snapshot, the communication graph has one vertex per avatar and
// an edge between any two within range r. Aggregated over the measurement
// period the paper reports:
//  * node degree CCDF (one sample per avatar per snapshot),
//  * CDF of the diameter of the largest connected component (one sample per
//    snapshot),
//  * CDF of the mean Watts-Strogatz clustering coefficient (one sample per
//    snapshot: the mean over that snapshot's nodes).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "stats/ecdf.hpp"
#include "trace/trace.hpp"

namespace slmob {

class ProximityCache;
class ThreadPool;

// Adjacency-list graph of one snapshot. Adjacency lists are sorted at
// construction so edge lookups (clustering) can binary-search.
class LosGraph {
 public:
  LosGraph(const Snapshot& snapshot, double range);
  // Builds the graph from a precomputed pair list (i < j, indices into the
  // snapshot's fixes) — the ProximityCache fast path.
  LosGraph(std::size_t node_count,
           const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs);

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }
  // Neighbour indices of node i, ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(std::size_t i) const {
    return adj_.at(i);
  }
  [[nodiscard]] std::size_t degree(std::size_t i) const { return adj_.at(i).size(); }
  [[nodiscard]] std::size_t edge_count() const;

  // Connected components as vectors of node indices.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> components() const;
  // Longest shortest path within the largest connected component. 0 for an
  // empty graph or singleton component.
  [[nodiscard]] std::size_t largest_component_diameter() const;
  // Watts-Strogatz clustering coefficient of node i (0 when degree < 2).
  [[nodiscard]] double clustering(std::size_t i) const;
  // Mean clustering over all nodes (0 for an empty graph).
  [[nodiscard]] double mean_clustering() const;

 private:
  void add_pairs(const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs);
  void sort_adjacency();
  // BFS eccentricity of `start` restricted to its component.
  [[nodiscard]] std::size_t eccentricity(std::uint32_t start) const;
  std::vector<std::vector<std::uint32_t>> adj_;
};

struct GraphMetrics {
  double range{0.0};
  Ecdf degrees;     // per (avatar, snapshot)
  Ecdf diameters;   // per snapshot
  Ecdf clustering;  // per snapshot (mean over nodes)
  std::size_t snapshots_analyzed{0};
  double isolated_fraction{0.0};  // fraction of degree samples equal to 0
};

// Computes graph metrics over all snapshots with >= 1 avatar. `stride`
// analyses every stride-th snapshot (1 = all; larger for quick looks).
GraphMetrics analyze_graphs(const Trace& trace, double range, std::size_t stride = 1);

// Same, but builds each snapshot's graph from the shared cache, and — when
// `pool` is non-null — fans contiguous snapshot chunks across it, merging
// partial results in snapshot order so the output (including ECDF sample
// order) is identical for any thread count.
GraphMetrics analyze_graphs(const Trace& trace, const ProximityCache& cache,
                            double range, std::size_t stride = 1,
                            ThreadPool* pool = nullptr);

// Incremental graph metrics over a snapshot stream: feed every covered
// snapshot (stride 1) with its in-range pair list, in time order. Empty
// snapshots are skipped internally, matching the batch guard. Sample
// insertion order equals the batch single-chunk order, so results are
// bit-identical to analyze_graphs.
//
// Unlike the batch path, which builds a LosGraph (a vector-of-vectors with
// per-node allocations and sorts) for every snapshot, the stream keeps one
// flat CSR adjacency plus BFS/marker scratch and rebuilds them in place —
// zero allocations per snapshot once warm, and contiguous neighbour scans
// in the BFS and triangle loops. Degree, diameter and clustering values
// don't depend on neighbour order (distances are exact, link counts are set
// cardinalities), so the metrics stay bit-identical to the LosGraph path.
class GraphStream {
 public:
  explicit GraphStream(double range) : range_(range) {}

  void on_snapshot(std::size_t node_count,
                   const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs);
  [[nodiscard]] GraphMetrics finish();

 private:
  double range_;
  Ecdf degrees_;
  Ecdf diameters_;
  Ecdf clustering_;
  std::size_t snapshots_analyzed_{0};
  std::size_t isolated_{0};
  std::size_t degree_samples_{0};
  // Per-snapshot scratch, reused across calls (sized to the largest
  // snapshot seen). CSR layout: neighbours of node i occupy
  // csr_adj_[csr_offsets_[i] .. csr_offsets_[i + 1]).
  std::vector<std::uint32_t> csr_offsets_;
  std::vector<std::uint32_t> csr_cursor_;
  std::vector<std::uint32_t> csr_adj_;
  std::vector<std::uint32_t> comp_;     // BFS worklist of the current component
  std::vector<std::uint32_t> largest_;  // biggest component so far
  std::vector<std::int32_t> dist_;
  std::vector<char> visited_;
  std::vector<char> marked_;
};

}  // namespace slmob
