// Line-of-sight network analysis (§3.2 of the paper).
//
// For each snapshot, the communication graph has one vertex per avatar and
// an edge between any two within range r. Aggregated over the measurement
// period the paper reports:
//  * node degree CCDF (one sample per avatar per snapshot),
//  * CDF of the diameter of the largest connected component (one sample per
//    snapshot),
//  * CDF of the mean Watts-Strogatz clustering coefficient (one sample per
//    snapshot: the mean over that snapshot's nodes).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "stats/ecdf.hpp"
#include "trace/trace.hpp"

namespace slmob {

class ProximityCache;
class ThreadPool;

// Adjacency-list graph of one snapshot. Adjacency lists are sorted at
// construction so edge lookups (clustering) can binary-search.
class LosGraph {
 public:
  LosGraph(const Snapshot& snapshot, double range);
  // Builds the graph from a precomputed pair list (i < j, indices into the
  // snapshot's fixes) — the ProximityCache fast path.
  LosGraph(std::size_t node_count,
           const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs);

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }
  // Neighbour indices of node i, ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(std::size_t i) const {
    return adj_.at(i);
  }
  [[nodiscard]] std::size_t degree(std::size_t i) const { return adj_.at(i).size(); }
  [[nodiscard]] std::size_t edge_count() const;

  // Connected components as vectors of node indices.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> components() const;
  // Longest shortest path within the largest connected component. 0 for an
  // empty graph or singleton component.
  [[nodiscard]] std::size_t largest_component_diameter() const;
  // Watts-Strogatz clustering coefficient of node i (0 when degree < 2).
  [[nodiscard]] double clustering(std::size_t i) const;
  // Mean clustering over all nodes (0 for an empty graph).
  [[nodiscard]] double mean_clustering() const;

 private:
  void add_pairs(const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs);
  void sort_adjacency();
  // BFS eccentricity of `start` restricted to its component.
  [[nodiscard]] std::size_t eccentricity(std::uint32_t start) const;
  std::vector<std::vector<std::uint32_t>> adj_;
};

struct GraphMetrics {
  double range{0.0};
  Ecdf degrees;     // per (avatar, snapshot)
  Ecdf diameters;   // per snapshot
  Ecdf clustering;  // per snapshot (mean over nodes)
  std::size_t snapshots_analyzed{0};
  double isolated_fraction{0.0};  // fraction of degree samples equal to 0
};

// Computes graph metrics over all snapshots with >= 1 avatar. `stride`
// analyses every stride-th snapshot (1 = all; larger for quick looks).
GraphMetrics analyze_graphs(const Trace& trace, double range, std::size_t stride = 1);

// Same, but builds each snapshot's graph from the shared cache, and — when
// `pool` is non-null — fans contiguous snapshot chunks across it, merging
// partial results in snapshot order so the output (including ECDF sample
// order) is identical for any thread count.
GraphMetrics analyze_graphs(const Trace& trace, const ProximityCache& cache,
                            double range, std::size_t stride = 1,
                            ThreadPool* pool = nullptr);

}  // namespace slmob
