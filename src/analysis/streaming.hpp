// Streaming incremental analysis engine.
//
// StreamingAnalyzer consumes a trace one snapshot at a time (as a
// LiveTraceSink — fed by drive_stream over any TraceStream, or live by the
// crawler) and produces the same AnalysisReport the batch pipeline
// (analyze_trace) computes from a fully materialised Trace, bit for bit.
// Memory is bounded by *concurrent* users — the persistent proximity state,
// per-consumer open records, buffered per-session samples and a fixed-size
// snapshot window — never by trace duration; no snapshot is retained beyond
// its window.
//
// One pass, all metrics: each snapshot advances the IncrementalProximity
// state once (all radii share it) and is buffered — snapshot, positions,
// per-range pair lists — into a fixed-size window. When the window fills,
// per-consumer tasks — contacts and graphs per range, zones, the session ->
// trips/flights chain — each run over the whole window as one tight loop,
// fanned across a thread pool. Windowing exists purely for throughput:
// switching six consumer hot loops every snapshot thrashes the instruction
// cache and branch predictors enough to lose to the batch pipeline, while
// per-window loops match batch's tight per-analysis passes. Tasks own
// disjoint consumer state and every consumer sees its inputs in time order
// with a barrier between windows, so results are identical for any thread
// count, 1 included. Deferring consumption is sound by the stream ordering
// contract: every gap covering a buffered snapshot was recorded before that
// snapshot arrived, and later gaps start strictly after it, so gap
// predicates answer identically at flush time.
//
// Gap handling is always on: consumers censor against the gaps seen so far
// (GapTracker), which by the stream ordering contract (trace/stream.hpp)
// answers exactly as the finished trace's gap list would. On gap-free
// traces no censor predicate ever fires and the historical batch results
// are reproduced exactly.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/analysis_report.hpp"
#include "analysis/flights.hpp"
#include "analysis/incremental_proximity.hpp"
#include "analysis/relations.hpp"
#include "analysis/trips.hpp"
#include "analysis/zones.hpp"
#include "trace/sessions.hpp"
#include "trace/stream.hpp"
#include "util/thread_pool.hpp"

namespace slmob {

struct StreamingOptions {
  // Communication radii, as in analyze_trace (defaults: the paper's
  // Bluetooth and WiFi ranges).
  std::vector<double> ranges{10.0, 80.0};
  double land_size{256.0};
  double zone_cell_size{20.0};
  // Total analysis threads including the caller; 0 = default_concurrency().
  std::size_t threads{0};
  // IncrementalProximity full-rebuild threshold (fraction of changed
  // avatars per snapshot).
  double churn_threshold{0.35};
  // Covered snapshots buffered between consumer fan-outs (>= 1; throws
  // std::invalid_argument on 0). Larger windows amortise consumer switching
  // at the price of `window` retained snapshots; results are identical for
  // every value.
  std::size_t window{64};
  // Drop (0,0,0) fixes per snapshot — equals Trace::strip_sitting_fixes on
  // the whole trace, making results comparable to run_experiment (which
  // strips before analyzing). The CLI batch path does not strip.
  bool strip_sitting_fixes{false};
  // Optional heavier analyses, off by default (batch analyze_trace does not
  // compute them either).
  bool flights{false};
  bool relations{false};
  // Contact range feeding the relation graph; must be one of `ranges`.
  double relation_range{10.0};
  SessionExtractionOptions sessions;
  FlightAnalysisOptions flight_options;
  RelationGraphOptions relation_options;
};

// Monotonic counters, readable between snapshots (e.g. by the crawler's
// status line while an attached analyzer is running).
struct StreamingProgress {
  std::size_t snapshots{0};
  std::size_t covered_snapshots{0};  // snapshots outside any known gap
  std::size_t gaps{0};
  std::size_t users_seen{0};
  std::size_t max_concurrent{0};
  Seconds last_time{0.0};
  std::size_t proximity_rebuilds{0};
  std::size_t proximity_delta_updates{0};
};

class StreamingAnalyzer final : public LiveTraceSink {
 public:
  // Throws std::invalid_argument on bad ranges / zone sizes, or when
  // `relations` is requested with a relation_range not in `ranges`.
  explicit StreamingAnalyzer(StreamingOptions options = {});
  ~StreamingAnalyzer() override;

  StreamingAnalyzer(const StreamingAnalyzer&) = delete;
  StreamingAnalyzer& operator=(const StreamingAnalyzer&) = delete;

  // LiveTraceSink: feed in time order; on_begin first, gaps per the stream
  // ordering contract.
  void on_begin(const std::string& land_name, Seconds sampling_interval) override;
  void on_snapshot(const Snapshot& snapshot) override;
  void on_gap(Seconds start, Seconds end) override;
  // Rate-change events from the overload ladder: snapshots arriving while a
  // degradation window is open carry integer weight = factor into every
  // time-weighted consumer (currently zones), matching the batch pipeline's
  // Trace::degradation_factor_at correction.
  void on_rate_change(Seconds time, std::uint32_t factor) override;

  // Finalises every consumer and assembles the report. Call once, after the
  // last event.
  [[nodiscard]] AnalysisReport finish();

  [[nodiscard]] StreamingProgress progress() const { return progress_; }
  [[nodiscard]] std::size_t threads_used() const { return pool_.concurrency(); }

 private:
  struct RangeConsumers;  // per-range contact + graph streams

  // One covered snapshot held for deferred consumption: the (possibly
  // stripped) snapshot itself plus the proximity answer computed for it.
  // Entries are reused across flushes, so their vectors keep capacity.
  struct WindowEntry {
    Snapshot snap;
    std::vector<Vec3> positions;
    std::vector<IncrementalProximity::PairList> lists;
    // Rate-correction weight: the degradation factor in force at snap.time.
    std::uint32_t weight{1};
  };

  void flush_window();

  StreamingOptions options_;
  ThreadPool pool_;
  GapTracker gaps_;
  DegradationTracker rates_;
  IncrementalProximity prox_;
  std::unique_ptr<ZoneStream> zones_;
  std::vector<std::unique_ptr<RangeConsumers>> per_range_;
  std::unique_ptr<SessionStream> sessions_;
  std::unique_ptr<TripStream> trips_;
  std::unique_ptr<FlightStream> flights_;
  std::unique_ptr<RelationStream> relations_;
  // Per-consumer loops over window_[0, win_used_); built once in on_begin.
  std::vector<std::function<void()>> window_tasks_;
  std::vector<WindowEntry> window_;
  std::size_t win_used_{0};

  // Summary bookkeeping (matches Trace::summary on the accumulated trace).
  std::set<AvatarId> unique_users_;
  std::size_t total_fixes_{0};
  bool have_first_{false};
  Seconds first_time_{0.0};
  Seconds last_time_{0.0};

  StreamingProgress progress_;
  Snapshot stripped_;  // scratch for strip_sitting_fixes
  bool begun_{false};
  bool finished_{false};
};

// Drives `stream` through a StreamingAnalyzer and returns the report.
[[nodiscard]] AnalysisReport analyze_stream(TraceStream& stream,
                                            const StreamingOptions& options = {});

// Opens `path` (.slt / .sltj / .csv) and streams it. `progress_out`, when
// non-null, receives the final progress counters (snapshots/s inputs).
[[nodiscard]] AnalysisReport analyze_stream_file(const std::string& path,
                                                 const StreamingOptions& options = {},
                                                 StreamingProgress* progress_out = nullptr);

}  // namespace slmob
