#include "analysis/streaming.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/sysinfo.hpp"

namespace slmob {

// Per-range consumer pair. Each instance is owned by exactly one snapshot
// task (contacts) plus one graph task, so tasks never share mutable state.
struct StreamingAnalyzer::RangeConsumers {
  RangeConsumers(double r, std::size_t index, Seconds tau, const GapTracker& gaps)
      : range(r), ri(index), contacts(r, tau, gaps), graphs(r) {}

  double range;
  std::size_t ri;  // index into IncrementalProximity::pairs()
  ContactStream contacts;
  GraphStream graphs;
  bool feeds_relations{false};
};

StreamingAnalyzer::StreamingAnalyzer(StreamingOptions options)
    : options_(std::move(options)),
      pool_(options_.threads),
      prox_(options_.ranges, options_.churn_threshold) {
  if (options_.window == 0) {
    throw std::invalid_argument("StreamingAnalyzer: window must be >= 1");
  }
  // Bounded peak RSS is this engine's contract; make the allocator return
  // freed pages and grow sample buffers without copying (see sysinfo.hpp).
  tune_malloc_for_streaming();
  window_.resize(options_.window);
  zones_ = std::make_unique<ZoneStream>(options_.land_size, options_.zone_cell_size);
  if (options_.relations) {
    const auto& rs = prox_.ranges();
    if (std::find(rs.begin(), rs.end(), options_.relation_range) == rs.end()) {
      throw std::invalid_argument(
          "StreamingAnalyzer: relation_range must be one of ranges");
    }
    relations_ = std::make_unique<RelationStream>(options_.relation_options);
  }

  // The session chain is shared: one SessionStream feeds trips (always) and
  // flights (optional). Sessions are extracted with options_.sessions;
  // flight_options.sessions is unused here (FlightStream only applies the
  // speed/length thresholds), so batch equivalence with analyze_flights
  // requires flight_options.sessions == sessions — true for the defaults.
  sessions_ = std::make_unique<SessionStream>(gaps_, options_.sessions);
  trips_ = std::make_unique<TripStream>(options_.sessions);
  if (options_.flights) {
    flights_ = std::make_unique<FlightStream>(options_.flight_options);
  }
  sessions_->set_sink([this](Session&& session) {
    trips_->on_session(session);
    if (flights_) flights_->on_session(session);
  });
}

StreamingAnalyzer::~StreamingAnalyzer() = default;

void StreamingAnalyzer::on_begin(const std::string& /*land_name*/,
                                 Seconds sampling_interval) {
  if (begun_) return;
  begun_ = true;

  for (std::size_t ri = 0; ri < prox_.ranges().size(); ++ri) {
    const double r = prox_.ranges()[ri];
    auto rc = std::make_unique<RangeConsumers>(r, ri, sampling_interval, gaps_);
    if (relations_ && r == options_.relation_range) {
      rc->feeds_relations = true;
      rc->contacts.set_interval_sink(
          [this](const ContactInterval& interval) { relations_->on_interval(interval); });
    }
    per_range_.push_back(std::move(rc));
  }

  // One task list, rebuilt never: each task walks the buffered window as a
  // tight per-consumer loop (window_[0, win_used_) is read-only during a
  // flush) and appends to exactly one consumer. Looping per consumer rather
  // than fanning out per snapshot keeps each consumer's hot loop resident
  // instead of cycling all six through the instruction cache every 10
  // simulated seconds.
  for (auto& rc : per_range_) {
    RangeConsumers* c = rc.get();
    window_tasks_.emplace_back([this, c] {
      for (std::size_t k = 0; k < win_used_; ++k)
        c->contacts.on_snapshot(window_[k].snap, window_[k].lists[c->ri]);
    });
    window_tasks_.emplace_back([this, c] {
      for (std::size_t k = 0; k < win_used_; ++k)
        c->graphs.on_snapshot(window_[k].snap.fixes.size(), window_[k].lists[c->ri]);
    });
  }
  window_tasks_.emplace_back([this] {
    for (std::size_t k = 0; k < win_used_; ++k)
      zones_->on_snapshot(window_[k].positions, window_[k].weight);
  });
  window_tasks_.emplace_back([this] {
    for (std::size_t k = 0; k < win_used_; ++k)
      sessions_->on_snapshot(window_[k].snap);
  });
}

void StreamingAnalyzer::on_snapshot(const Snapshot& snapshot) {
  if (!begun_) throw std::logic_error("StreamingAnalyzer: on_begin was not called");

  const Snapshot* use = &snapshot;
  if (options_.strip_sitting_fixes) {
    stripped_.time = snapshot.time;
    stripped_.fixes.clear();
    for (const auto& fix : snapshot.fixes) {
      const bool origin = fix.pos.x == 0.0 && fix.pos.y == 0.0 && fix.pos.z == 0.0;
      if (!origin) stripped_.fixes.push_back(fix);
    }
    use = &stripped_;
  }

  // Summary bookkeeping, replicating Trace::summary on the trace the
  // snapshots would have formed. Every snapshot counts, covered or not.
  total_fixes_ += use->fixes.size();
  for (const auto& fix : use->fixes) unique_users_.insert(fix.id);
  if (!have_first_) {
    have_first_ = true;
    first_time_ = use->time;
  }
  last_time_ = use->time;
  ++progress_.snapshots;
  const bool covered = gaps_.covered_at(use->time);
  if (covered) ++progress_.covered_snapshots;
  progress_.users_seen = unique_users_.size();
  progress_.max_concurrent = std::max(progress_.max_concurrent, use->fixes.size());
  progress_.last_time = use->time;

  // A snapshot inside a recorded coverage gap carries no valid observation:
  // every batch analysis skips it (it still counts toward the summary,
  // which Trace::summary computes over all snapshots). The stream ordering
  // contract guarantees any gap covering this snapshot is already known, so
  // the gaps-so-far answer equals the finished trace's.
  if (!covered) return;

  prox_.advance(*use);
  progress_.proximity_rebuilds = prox_.rebuilds();
  progress_.proximity_delta_updates = prox_.delta_updates();

  // Buffer the snapshot with its proximity answer; consumers run when the
  // window fills (or in finish). Deferring is safe: by the stream ordering
  // contract every gap relevant to this snapshot is already in gaps_, and
  // gaps arriving later start strictly after use->time, so every censor
  // predicate a consumer evaluates at flush time answers exactly as it
  // would have here. Copy-assignment into a reused entry keeps the window's
  // allocations warm after the first lap.
  WindowEntry& entry = window_[win_used_];
  entry.snap.time = use->time;
  entry.snap.fixes = use->fixes;
  entry.weight = rates_.current_factor();
  entry.positions = prox_.positions();
  entry.lists.resize(prox_.ranges().size());
  for (std::size_t ri = 0; ri < entry.lists.size(); ++ri) {
    entry.lists[ri] = prox_.pairs(ri);
  }
  if (++win_used_ == window_.size()) flush_window();
}

void StreamingAnalyzer::flush_window() {
  if (win_used_ == 0) return;
  parallel_for(pool_, window_tasks_.size(),
               [&](std::size_t i) { window_tasks_[i](); });
  win_used_ = 0;
}

void StreamingAnalyzer::on_gap(Seconds start, Seconds end) {
  gaps_.add(start, end);
  ++progress_.gaps;
}

void StreamingAnalyzer::on_rate_change(Seconds time, std::uint32_t factor) {
  rates_.set_factor(time, factor);
}

AnalysisReport StreamingAnalyzer::finish() {
  if (finished_) throw std::logic_error("StreamingAnalyzer: finish called twice");
  finished_ = true;
  // A source with zero events never called on_begin; with no snapshots the
  // sampling interval is unobservable in any output, so any value yields
  // the batch empty-trace report.
  if (!begun_) on_begin("", 10.0);
  flush_window();  // drain the partially filled last window

  AnalysisReport report;
  TraceSummary& s = report.summary;
  s.snapshot_count = progress_.snapshots;
  s.gap_count = gaps_.gaps().size();
  s.gap_seconds = gaps_.gap_seconds();
  s.degradation_count = rates_.windows().size();
  s.degraded_seconds = rates_.degraded_seconds();
  if (progress_.snapshots > 0) {
    s.unique_users = unique_users_.size();
    s.max_concurrent = progress_.max_concurrent;
    s.avg_concurrent =
        static_cast<double>(total_fixes_) / static_cast<double>(progress_.snapshots);
    s.duration = last_time_ - first_time_;
  }

  // Pre-create map nodes so finish tasks only write through references
  // (same discipline as batch analyze_trace).
  if (options_.flights) report.flights.emplace();
  if (relations_) report.relations.emplace();
  std::vector<std::function<void()>> tasks;
  for (auto& rc : per_range_) {
    RangeConsumers* c = rc.get();
    ContactAnalysis& contacts = report.contacts[c->range];
    tasks.emplace_back([this, c, &contacts, &report] {
      contacts = c->contacts.finish();
      // The relation stream consumes this range's interval sink, so its
      // finish must follow this contact finish — same task, sequentially.
      if (c->feeds_relations) *report.relations = relations_->finish();
    });
    GraphMetrics& graphs = report.graphs[c->range];
    tasks.emplace_back([c, &graphs] { graphs = c->graphs.finish(); });
  }
  tasks.emplace_back([this, &report] { report.zones = zones_->finish(); });
  tasks.emplace_back([this, &report] {
    // Session closure emits into trips/flights, so the whole chain is one
    // sequential task.
    sessions_->finish();
    report.trips = trips_->finish();
    if (flights_) *report.flights = flights_->finish();
  });

  parallel_for(pool_, tasks.size(), [&](std::size_t i) { tasks[i](); });
  return report;
}

AnalysisReport analyze_stream(TraceStream& stream, const StreamingOptions& options) {
  StreamingAnalyzer analyzer(options);
  drive_stream(stream, analyzer);
  return analyzer.finish();
}

AnalysisReport analyze_stream_file(const std::string& path,
                                   const StreamingOptions& options,
                                   StreamingProgress* progress_out) {
  const auto stream = open_trace_stream(path);
  StreamingAnalyzer analyzer(options);
  drive_stream(*stream, analyzer);
  AnalysisReport report = analyzer.finish();
  if (progress_out != nullptr) *progress_out = analyzer.progress();
  return report;
}

}  // namespace slmob
