// Empirical distributions.
//
// Every figure in the paper is a CDF or CCDF of some per-user or per-pair
// metric; Ecdf is the single representation behind all of them. Samples are
// kept sorted; evaluation is O(log n).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace slmob {

struct EcdfPoint {
  double x{0.0};
  double y{0.0};  // F(x) for CDF output, 1 - F(x) for CCDF output
};

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  void add(double sample);
  // Appends another distribution's samples, preserving their insertion
  // order. Used to merge per-chunk partial results of a parallel analysis
  // back into snapshot order.
  void merge(const Ecdf& other);
  // Re-sorts after a batch of add() calls; called lazily by accessors.
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  // F(x) = P[X <= x].
  [[nodiscard]] double cdf(double x) const;
  // 1 - F(x) = P[X > x].
  [[nodiscard]] double ccdf(double x) const;
  // q-quantile for q in [0, 1]; q=0.5 is the median. Uses the lower
  // (inverse-CDF) convention. Throws std::logic_error when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  // Sorted view of the samples.
  [[nodiscard]] std::span<const double> sorted() const;

  // Evaluates the CDF on `n` points linearly spaced over [min, max].
  [[nodiscard]] std::vector<EcdfPoint> cdf_series(std::size_t n) const;
  // Evaluates the CCDF on `n` points log-spaced over [max(min, lo_floor), max],
  // matching the paper's log-x CCDF plots.
  [[nodiscard]] std::vector<EcdfPoint> ccdf_log_series(std::size_t n, double lo_floor = 1.0) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_{true};
};

// Renders a series as "x<TAB>y" lines, used by bench binaries to emit
// figure data in a gnuplot-friendly form.
std::string format_series(const std::vector<EcdfPoint>& series);

}  // namespace slmob
